package rna

import (
	"time"

	"repro/internal/data"
	"repro/internal/rng"
	"repro/internal/workload"
)

// simStep is a fixed 50 ms ± 10% step sampler for facade tests and benches.
type simStep struct{}

func (simStep) Sample(src *rng.Source) time.Duration {
	return workload.Balanced{Base: 50 * time.Millisecond, Jitter: 0.1}.Sample(src)
}

func (simStep) Mean() time.Duration { return 50 * time.Millisecond }

// simSpec is a small model spec for facade tests and benches.
func simSpec() workload.ModelSpec {
	return workload.ResNet56()
}

// benchBlobs builds the shared benchmark dataset.
func benchBlobs(src *rng.Source) (*data.Dataset, error) {
	return data.Blobs(src, 10, 8, 40, 0.4)
}
