// TCP cluster: run real concurrent RNA training over actual TCP sockets on
// localhost — the same worker runtime, controller and ring AllReduce the
// in-memory examples use, but with every gradient chunk crossing a real
// network stack.
package main

import (
	"fmt"
	"log"
	"time"

	rna "repro"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/rng"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	src := rng.New(42)
	full, err := data.Blobs(src, 6, 8, 80, 0.35)
	if err != nil {
		return err
	}
	train, val, err := full.Split(src, 0.2)
	if err != nil {
		return err
	}
	m, err := model.NewLogistic(train)
	if err != nil {
		return err
	}

	const workers = 4
	cfg := rna.TrainConfig{
		Model:          m,
		Batch:          func(s *rng.Source) []int { return train.Batch(s, 32) },
		LR:             0.25,
		Momentum:       0.9,
		Iterations:     150,
		StalenessBound: 2,
		Seed:           42,
	}

	fmt.Printf("training on %d workers over localhost TCP with the RNA protocol...\n", workers)
	start := time.Now()
	results, err := rna.TrainClusterTCP(workers, 2, rna.PolicyPowerOfChoices, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("done in %v wall clock\n", time.Since(start).Round(time.Millisecond))

	// All ranks hold identical parameters: verify and score.
	for r := 1; r < workers; r++ {
		if !results[r].Params.Equal(results[0].Params, 1e-9) {
			return fmt.Errorf("rank %d parameters diverged", r)
		}
	}
	fmt.Println("all ranks converged to identical parameters")
	valModel, err := model.NewLogistic(val)
	if err != nil {
		return err
	}
	top1, _, err := valModel.Accuracy(results[0].Params, model.All(val), 1)
	if err != nil {
		return err
	}
	for r, res := range results {
		fmt.Printf("  rank %d: %3d real + %2d null contributions\n", r, res.Contributed, res.NullContribs)
	}
	fmt.Printf("validation top-1 accuracy: %.1f%%\n", top1*100)
	return nil
}
