// Quickstart: train one model twice on a simulated 8-worker cluster with
// random stragglers — once with the Horovod-style blocking AllReduce, once
// with RNA — and compare time-to-target.
package main

import (
	"fmt"
	"log"
	"time"

	rna "repro"
	"repro/internal/data"
	"repro/internal/hetero"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A synthetic 10-class classification problem with a held-out split.
	src := rng.New(42)
	full, err := data.Blobs(src, 10, 8, 60, 0.45)
	if err != nil {
		return err
	}
	train, val, err := full.Split(src, 0.2)
	if err != nil {
		return err
	}
	m, err := model.NewLogistic(train)
	if err != nil {
		return err
	}

	base := rna.SimulationConfig{
		Workers:     8,
		Model:       m,
		Dataset:     train,
		EvalSet:     val,
		BatchSize:   32,
		LR:          0.3,
		Momentum:    0.9,
		WeightDecay: 1e-4,
		// ResNet50-class workload with random 0-50 ms slowdowns plus
		// rare severe transient stragglers (co-located workload bursts).
		Step: workload.Balanced{Base: 140 * time.Millisecond, Jitter: 0.05},
		Spec: workload.ResNet50(),
		Comm: workload.DefaultComm(),
		Injector: hetero.Stack{
			hetero.UniformRandom{Lo: 0, Hi: 50 * time.Millisecond},
			hetero.TransientSpikes{P: 0.02, Lo: time.Second, Hi: 2 * time.Second},
		},
		TargetLoss:    0.30,
		MaxIterations: 4000,
		Seed:          42,
	}

	var baseline time.Duration
	for _, strat := range []rna.Strategy{rna.Horovod, rna.RNA} {
		cfg := base
		cfg.Strategy = strat
		res, err := rna.Simulate(cfg)
		if err != nil {
			return err
		}
		if strat == rna.Horovod {
			baseline = res.VirtualTime
		}
		fmt.Printf("%-8v reached loss %.3f in %8v (%4d iterations, val top-1 %.1f%%)\n",
			strat, res.FinalLoss, res.VirtualTime.Round(time.Millisecond),
			res.Iterations, res.ValTop1*100)
		if strat == rna.RNA {
			fmt.Printf("\nRNA speedup over Horovod: %.2fx\n",
				float64(baseline)/float64(res.VirtualTime))
		}
	}
	return nil
}
