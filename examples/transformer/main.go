// Transformer throughput scaling: the paper's Fig. 9 scenario. Sweep the
// cluster from 4 to 32 processes on the WMT17-style Transformer workload
// (sentence-length imbalance plus random slowdowns) and compare
// synchronizations per second across protocols.
package main

import (
	"fmt"
	"log"
	"time"

	rna "repro"
	"repro/internal/data"
	"repro/internal/hetero"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	src := rng.New(42)
	full, err := data.Blobs(src, 10, 8, 60, 0.45)
	if err != nil {
		return err
	}
	train, val, err := full.Split(src, 0.2)
	if err != nil {
		return err
	}
	m, err := model.NewLogistic(train)
	if err != nil {
		return err
	}

	spec := workload.Transformer()
	strategies := []rna.Strategy{rna.Horovod, rna.EagerSGD, rna.ADPSGD, rna.RNA}

	fmt.Println("Transformer/WMT17 throughput (synchronizations per virtual second):")
	fmt.Printf("%-10s", "procs")
	for _, s := range strategies {
		fmt.Printf("  %12v", s)
	}
	fmt.Println()
	for _, n := range []int{4, 8, 16, 32} {
		fmt.Printf("%-10d", n)
		for _, strat := range strategies {
			res, err := rna.Simulate(rna.SimulationConfig{
				Strategy:      strat,
				Workers:       n,
				Model:         m,
				Dataset:       train,
				EvalSet:       val,
				BatchSize:     32,
				LR:            0.3,
				Momentum:      0.9,
				Step:          workload.SentenceBatchSampler(spec.BaseStep),
				Spec:          spec,
				Comm:          workload.DefaultComm(),
				Injector:      hetero.UniformRandom{Lo: 0, Hi: 30 * time.Millisecond},
				MaxIterations: 300,
				Seed:          42,
			})
			if err != nil {
				return err
			}
			fmt.Printf("  %12.2f", res.Throughput())
		}
		fmt.Println()
	}
	fmt.Println("\n(RNA keeps its advantage as the cluster grows; the BSP barrier pays the max of n delays.)")
	return nil
}
