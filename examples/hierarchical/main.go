// Hierarchical synchronization: the paper's Section 4 scenario. Half the
// cluster is deterministically slower (mixed heterogeneity); the ζ > v
// grouping rule partitions workers into speed-homogeneous RNA groups glued
// together by an asynchronous parameter server, recovering the speedup
// plain RNA loses to the persistent slowdown.
package main

import (
	"fmt"
	"log"
	"time"

	rna "repro"
	"repro/internal/data"
	"repro/internal/hetero"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const workers = 8
	inj := hetero.NewMixedGroups(workers)
	fmt.Printf("cluster: %d workers, %s\n\n", workers, inj.Describe())

	// Show the grouping decision on profiled task times.
	src := rng.New(9)
	obs := make([][]time.Duration, workers)
	base := workload.Balanced{Base: 140 * time.Millisecond, Jitter: 0.05}
	for w := range obs {
		stepSrc := src.Split(2 * w)
		delaySrc := src.Split(2*w + 1)
		obs[w] = make([]time.Duration, 32)
		for i := range obs[w] {
			obs[w][i] = base.Sample(stepSrc) + inj.Delay(delaySrc, w, i)
		}
	}
	groups, err := topology.PartitionByObservations(obs)
	if err != nil {
		return err
	}
	fmt.Printf("the zeta > v rule forms %d groups:\n", len(groups))
	for i, g := range groups {
		fmt.Printf("  group %d: workers %v\n", i, g.Members)
	}
	fmt.Println()

	// Compare plain RNA against hierarchical RNA on the mixed cluster.
	dsrc := rng.New(42)
	full, err := data.Blobs(dsrc, 10, 8, 60, 0.45)
	if err != nil {
		return err
	}
	train, val, err := full.Split(dsrc, 0.2)
	if err != nil {
		return err
	}
	m, err := model.NewLogistic(train)
	if err != nil {
		return err
	}

	var horovodTime time.Duration
	for _, strat := range []rna.Strategy{rna.Horovod, rna.RNA, rna.RNAHierarchical} {
		res, err := rna.Simulate(rna.SimulationConfig{
			Strategy:      strat,
			Workers:       workers,
			Model:         m,
			Dataset:       train,
			EvalSet:       val,
			BatchSize:     32,
			LR:            0.3,
			Momentum:      0.9,
			Step:          base,
			Spec:          workload.ResNet50(),
			Comm:          workload.DefaultComm(),
			Injector:      inj,
			TargetLoss:    0.40,
			MaxIterations: 4000,
			Seed:          42,
		})
		if err != nil {
			return err
		}
		if strat == rna.Horovod {
			horovodTime = res.VirtualTime
		}
		fmt.Printf("%-8v to loss 0.40: %8v (%.2fx vs Horovod), val top-1 %.1f%%\n",
			strat, res.VirtualTime.Round(time.Millisecond),
			float64(horovodTime)/float64(res.VirtualTime), res.ValTop1*100)
	}
	fmt.Println("\n(plain RNA's probabilistic sampling cannot dodge a deterministic slowdown;")
	fmt.Println(" grouping makes each ring homogeneous and the PS absorbs the speed difference.)")
	return nil
}
