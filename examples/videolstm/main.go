// Video LSTM: the paper's inherent load-imbalance scenario. Batch times of
// an LSTM over variable-length UCF101 videos follow a long-tail
// distribution (mean 1219 ms, σ 760 ms), so even a *homogeneous* cluster
// straggles. This example prints the batch-time distribution and compares
// all protocols on the imbalanced workload.
package main

import (
	"fmt"
	"log"
	"time"

	rna "repro"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Show the imbalance the workload injects (Fig. 2 of the paper).
	sampler := workload.VideoBatchSampler()
	src := rng.New(7)
	times := stats.NewSample(2000)
	for i := 0; i < 2000; i++ {
		times.Add(float64(sampler.Sample(src)) / float64(time.Millisecond))
	}
	mean, err := times.Mean()
	if err != nil {
		return err
	}
	sd, _ := times.StdDev()
	box, _ := times.Box()
	fmt.Printf("LSTM/UCF101 batch times over 2000 batches: mean %.0f ms, stddev %.0f ms\n", mean, sd)
	fmt.Printf("  %s\n\n", box)
	hist, err := stats.NewHistogram(times.Values(), 10, 0, 5000)
	if err != nil {
		return err
	}
	fmt.Println(hist.Render(40))

	// Train under the imbalance with each strategy.
	dsrc := rng.New(42)
	full, err := data.Blobs(dsrc, 10, 8, 60, 0.45)
	if err != nil {
		return err
	}
	train, val, err := full.Split(dsrc, 0.2)
	if err != nil {
		return err
	}
	m, err := model.NewLogistic(train)
	if err != nil {
		return err
	}

	fmt.Println("training to loss 0.40 on 8 workers (no injected delays — the tail is the straggler):")
	var baseline time.Duration
	for _, strat := range []rna.Strategy{rna.Horovod, rna.EagerSGD, rna.ADPSGD, rna.RNA} {
		res, err := rna.Simulate(rna.SimulationConfig{
			Strategy:      strat,
			Workers:       8,
			Model:         m,
			Dataset:       train,
			EvalSet:       val,
			BatchSize:     32,
			LR:            0.3,
			Momentum:      0.9,
			Step:          sampler,
			Spec:          workload.LSTM(),
			Comm:          workload.DefaultComm(),
			TargetLoss:    0.40,
			MaxIterations: 3000,
			Seed:          42,
		})
		if err != nil {
			return err
		}
		if strat == rna.Horovod {
			baseline = res.VirtualTime
		}
		fmt.Printf("  %-10v %8v to target (%.2fx vs Horovod), mean iter %v, val top-1 %.1f%%\n",
			strat, res.VirtualTime.Round(time.Millisecond),
			float64(baseline)/float64(res.VirtualTime),
			res.MeanIterTime().Round(time.Millisecond), res.ValTop1*100)
	}
	return nil
}
