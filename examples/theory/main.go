// Theory: empirically verify the convergence analysis of the paper's
// Section 5 on a noisy quadratic objective — the O(1/sqrt(K)) rate of
// Theorem 5.1 and the staleness-independence of Theorem 5.2.
package main

import (
	"fmt"
	"log"

	rna "repro"
)

func main() {
	rep, err := rna.RunExperiment("theory-convergence", rna.ExperimentOptions{Seed: 42, Scale: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n\n%s", rep.Title, rep.Body)
}
