// Package rna is a Go implementation of RNA — Randomized Non-blocking
// AllReduce — the straggler-tolerant decentralized synchronization protocol
// of "Mitigating Stragglers in the Decentralized Training on Heterogeneous
// Clusters" (Middleware 2020), together with every substrate the paper
// depends on: a ring AllReduce collective layer over in-memory and TCP
// transports, the probe-based central controller (power-of-two-choices
// initiator selection), the cross-iteration worker runtime with
// staleness-weighted gradient accumulation, a parameter server for the
// hierarchical scheme, the baselines it is evaluated against (Horovod-style
// BSP, eager-SGD, AD-PSGD), and a deterministic virtual-time cluster
// simulator that regenerates all of the paper's tables and figures.
//
// Three entry points:
//
//   - Train / TrainCluster run real concurrent training on the goroutine
//     runtime (in-memory or TCP transport).
//   - Simulate runs a protocol on the virtual-time engine at any cluster
//     scale, returning both system metrics (per-iteration times,
//     breakdowns) and statistical metrics (loss curves, accuracy).
//   - RunExperiment reproduces a specific paper table or figure.
package rna

import (
	"fmt"
	"time"

	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/ps"
	"repro/internal/tensor"
	"repro/internal/topology"
	"repro/internal/trainsim"
	"repro/internal/transport"
)

// Strategy selects a synchronization protocol for simulation.
type Strategy = trainsim.Strategy

// The protocols under evaluation.
const (
	// Horovod is the bulk-synchronous ring AllReduce baseline.
	Horovod = trainsim.Horovod
	// RNA is the paper's randomized non-blocking AllReduce.
	RNA = trainsim.RNA
	// RNAHierarchical adds the grouped parameter-server scheme.
	RNAHierarchical = trainsim.RNAHierarchical
	// EagerSGD is the majority partial collective baseline.
	EagerSGD = trainsim.EagerSGD
	// EagerSGDSolo is eager-SGD's solo variant.
	EagerSGDSolo = trainsim.EagerSGDSolo
	// ADPSGD is asynchronous decentralized parallel SGD.
	ADPSGD = trainsim.ADPSGD
)

// SimulationConfig configures a virtual-time training run.
type SimulationConfig = trainsim.Config

// SimulationResult reports a virtual-time training run.
type SimulationResult = trainsim.Result

// Simulate executes a virtual-time training run; see trainsim.Config for
// the knobs (strategy, workers, workload, heterogeneity, termination).
func Simulate(cfg SimulationConfig) (*SimulationResult, error) {
	return trainsim.Run(cfg)
}

// TrainConfig configures a real (goroutine-runtime) training worker.
type TrainConfig = core.TrainConfig

// TrainResult reports a real training worker's outcome.
type TrainResult = core.Result

// Policy selects the controller's trigger rule for the real runtime.
type Policy = controller.Policy

// Controller trigger policies for the real runtime.
const (
	// PolicyAllReady is the BSP barrier (Horovod semantics).
	PolicyAllReady = controller.AllReady
	// PolicyRandom probes one random worker per iteration.
	PolicyRandom = controller.RandomInitiator
	// PolicyPowerOfChoices probes q random workers (RNA's default, q=2).
	PolicyPowerOfChoices = controller.PowerOfChoices
	// PolicyMajority fires on ⌊n/2⌋+1 ready workers (eager-SGD).
	PolicyMajority = controller.Majority
	// PolicySolo fires on the first ready worker.
	PolicySolo = controller.Solo
)

// TrainCluster runs `workers` concurrent training workers in-process over
// an in-memory mesh under the given trigger policy: PolicyAllReady runs the
// BSP worker, PolicyMajority/PolicySolo run the eager-SGD worker (newest
// gradient or a stale duplicate, no accumulation), and the probe policies
// run the RNA worker (decoupled compute/communication, staleness-weighted
// accumulation). It returns one result per rank; all ranks finish with
// identical parameters.
func TrainCluster(workers, probes int, policy Policy, cfg TrainConfig) ([]*TrainResult, error) {
	if workers < 1 {
		return nil, fmt.Errorf("rna: %d workers", workers)
	}
	net, err := transport.NewLocalNetwork(workers)
	if err != nil {
		return nil, err
	}
	defer func() { _ = net.Close() }()

	ctrl, err := controller.New(policy, workers, probes, cfg.Seed)
	if err != nil {
		return nil, err
	}

	results := make([]*TrainResult, workers)
	errs := make([]error, workers)
	done := make(chan int)
	for i, mesh := range net.Endpoints() {
		i, mesh := i, mesh
		go func() {
			results[i], errs[i] = runWorker(mesh, ctrl, policy, cfg)
			done <- i
		}()
	}
	for range results {
		<-done
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("rna: worker %d: %w", i, err)
		}
	}
	return results, nil
}

// runWorker dispatches a rank to the worker implementation matching the
// trigger policy.
func runWorker(mesh transport.Mesh, ctrl *controller.Controller, policy Policy, cfg TrainConfig) (*TrainResult, error) {
	switch policy {
	case controller.AllReady:
		return core.RunBSPWorker(mesh, ctrl, cfg)
	case controller.Majority, controller.Solo:
		return core.RunEagerWorker(mesh, ctrl, cfg)
	default:
		return core.RunRNAWorker(mesh, ctrl, cfg)
	}
}

// TrainClusterTCP is TrainCluster over real localhost TCP connections.
func TrainClusterTCP(workers, probes int, policy Policy, cfg TrainConfig) ([]*TrainResult, error) {
	if workers < 1 {
		return nil, fmt.Errorf("rna: %d workers", workers)
	}
	meshes, err := transport.NewTCPCluster(workers)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()

	ctrl, err := controller.New(policy, workers, probes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	results := make([]*TrainResult, workers)
	errs := make([]error, workers)
	done := make(chan int)
	for i, mesh := range meshes {
		i, mesh := i, mesh
		go func() {
			results[i], errs[i] = runWorker(mesh, ctrl, policy, cfg)
			done <- i
		}()
	}
	for range results {
		<-done
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("rna: worker %d: %w", i, err)
		}
	}
	return results, nil
}

// ExperimentOptions tunes a paper-experiment run.
type ExperimentOptions = experiment.Options

// ExperimentReport is a rendered paper table/figure plus its key metrics.
type ExperimentReport = experiment.Report

// RunExperiment reproduces one of the paper's tables or figures by ID (see
// ExperimentIDs).
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentReport, error) {
	return experiment.Run(id, opts)
}

// ExperimentIDs lists the reproducible tables and figures.
func ExperimentIDs() []string { return experiment.IDs() }

// ExperimentTitle returns the display title of an experiment ID.
func ExperimentTitle(id string) (string, error) { return experiment.Title(id) }

// ADPSGDResult reports one gossip worker's outcome on the real runtime.
type ADPSGDResult = core.ADPSGDResult

// TrainClusterADPSGD runs `workers` AD-PSGD gossip workers in-process over
// an in-memory mesh: each worker alternates local SGD with atomic pairwise
// model averaging against a random peer. Unlike the collective protocols,
// ranks end with approximately (not exactly) consensual models; use
// ConsensusModel to average them.
func TrainClusterADPSGD(workers int, cfg TrainConfig) ([]*ADPSGDResult, error) {
	if workers < 2 {
		return nil, fmt.Errorf("rna: AD-PSGD needs at least 2 workers, got %d", workers)
	}
	net, err := transport.NewLocalNetwork(workers)
	if err != nil {
		return nil, err
	}
	results := make([]*ADPSGDResult, workers)
	errs := make([]error, workers)
	done := make(chan int)
	for i, mesh := range net.Endpoints() {
		i, mesh := i, mesh
		go func() {
			results[i], errs[i] = core.RunADPSGDWorker(mesh, cfg)
			done <- i
		}()
	}
	for range results {
		<-done
	}
	// Close only after every worker returned: responders serve peers'
	// averaging requests until the mesh closes.
	_ = net.Close()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("rna: worker %d: %w", i, err)
		}
	}
	return results, nil
}

// ConsensusModel averages the final models of an AD-PSGD run.
func ConsensusModel(results []*ADPSGDResult) (tensor.Vector, error) {
	return core.ConsensusParams(results)
}

// Group is one speed-homogeneous worker group of the hierarchical scheme.
type Group = topology.Group

// PartitionWorkers applies the paper's ζ > v grouping rule to profiled
// per-task times: obs[w] holds worker w's observed step durations. See
// topology.PartitionByObservations.
func PartitionWorkers(obs [][]time.Duration) ([]Group, error) {
	return topology.PartitionByObservations(obs)
}

// TrainClusterHierarchical runs the Section 4 hierarchical scheme on the
// real runtime: each group runs RNA internally over its own sub-mesh and
// controller; group leaders periodically exchange accumulated updates with
// a shared parameter server and broadcast the global model inside their
// group (every psEvery group synchronizations; 0 selects the default).
func TrainClusterHierarchical(groups []Group, probes, psEvery int, cfg TrainConfig) ([]*TrainResult, error) {
	workers := 0
	for _, g := range groups {
		workers += g.Size()
	}
	if workers < 1 {
		return nil, fmt.Errorf("rna: empty groups")
	}
	net, err := transport.NewLocalNetwork(workers)
	if err != nil {
		return nil, err
	}
	defer func() { _ = net.Close() }()

	store := ps.NewStore(1)
	if err := core.SeedStore(store, cfg); err != nil {
		return nil, err
	}
	ctrls := make([]*controller.Controller, len(groups))
	for gi, g := range groups {
		ctrls[gi], err = controller.New(controller.PowerOfChoices, g.Size(), probes, cfg.Seed+int64(gi))
		if err != nil {
			return nil, err
		}
	}
	hcfg := core.HierarchicalConfig{Train: cfg, Groups: groups, Store: store, PSEvery: psEvery}

	results := make([]*TrainResult, workers)
	errs := make([]error, workers)
	done := make(chan int)
	for i, mesh := range net.Endpoints() {
		i, mesh := i, mesh
		go func() {
			results[i], errs[i] = core.RunHierarchicalWorker(mesh, ctrls, hcfg)
			done <- i
		}()
	}
	for range results {
		<-done
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("rna: worker %d: %w", i, err)
		}
	}
	return results, nil
}
