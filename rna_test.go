package rna

import (
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/rng"
)

func facadeConfig(t *testing.T) (TrainConfig, *data.Dataset) {
	t.Helper()
	src := rng.New(5)
	ds, err := data.Blobs(src, 4, 5, 50, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewLogistic(ds)
	if err != nil {
		t.Fatal(err)
	}
	return TrainConfig{
		Model:      m,
		Batch:      func(s *rng.Source) []int { return ds.Batch(s, 16) },
		LR:         0.25,
		Momentum:   0.9,
		Iterations: 40,
		Seed:       11,
	}, ds
}

func TestTrainClusterRNA(t *testing.T) {
	cfg, ds := facadeConfig(t)
	results, err := TrainCluster(4, 2, PolicyPowerOfChoices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	for r := 1; r < 4; r++ {
		if !results[r].Params.Equal(results[0].Params, 1e-9) {
			t.Fatalf("rank %d params diverged", r)
		}
	}
	cls := cfg.Model.(model.Classifier)
	top1, _, err := cls.Accuracy(results[0].Params, model.All(ds), 1)
	if err != nil {
		t.Fatal(err)
	}
	if top1 < 0.8 {
		t.Errorf("top-1 = %v after facade RNA training", top1)
	}
}

func TestTrainClusterBSP(t *testing.T) {
	cfg, _ := facadeConfig(t)
	results, err := TrainCluster(3, 0, PolicyAllReady, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Contributed != cfg.Iterations {
		t.Errorf("BSP contributed = %d, want %d", results[0].Contributed, cfg.Iterations)
	}
}

func TestTrainClusterTCP(t *testing.T) {
	cfg, _ := facadeConfig(t)
	cfg.Iterations = 15
	results, err := TrainClusterTCP(3, 2, PolicyPowerOfChoices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 3; r++ {
		if !results[r].Params.Equal(results[0].Params, 1e-9) {
			t.Fatalf("rank %d params diverged over TCP", r)
		}
	}
}

func TestTrainClusterInvalid(t *testing.T) {
	cfg, _ := facadeConfig(t)
	if _, err := TrainCluster(0, 2, PolicyPowerOfChoices, cfg); err == nil {
		t.Error("0 workers should error")
	}
	if _, err := TrainClusterTCP(0, 2, PolicyPowerOfChoices, cfg); err == nil {
		t.Error("0 TCP workers should error")
	}
	if _, err := TrainCluster(2, 0, PolicyPowerOfChoices, cfg); err == nil {
		t.Error("power-of-choices with q=0 should error")
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) == 0 {
		t.Fatal("no experiments registered")
	}
	title, err := ExperimentTitle(ids[0])
	if err != nil || title == "" {
		t.Fatalf("title = (%q, %v)", title, err)
	}
	rep, err := RunExperiment("fig10", ExperimentOptions{Seed: 3, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Body == "" {
		t.Error("empty report")
	}
}

func TestSimulateFacade(t *testing.T) {
	cfg, ds := facadeConfig(t)
	_ = cfg
	m, err := model.NewLogistic(ds)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(SimulationConfig{
		Strategy:      RNA,
		Workers:       4,
		Model:         m,
		Dataset:       ds,
		BatchSize:     16,
		LR:            0.25,
		Momentum:      0.9,
		Step:          simStep{},
		Spec:          simSpec(),
		MaxIterations: 50,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 50 {
		t.Errorf("iterations = %d", res.Iterations)
	}
	if res.TrainAcc < 0.7 {
		t.Errorf("train accuracy = %v", res.TrainAcc)
	}
}

func TestTrainClusterADPSGD(t *testing.T) {
	cfg, ds := facadeConfig(t)
	cfg.Iterations = 60
	results, err := TrainClusterADPSGD(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	consensus, err := ConsensusModel(results)
	if err != nil {
		t.Fatal(err)
	}
	cls := cfg.Model.(model.Classifier)
	top1, _, err := cls.Accuracy(consensus, model.All(ds), 1)
	if err != nil {
		t.Fatal(err)
	}
	if top1 < 0.75 {
		t.Errorf("AD-PSGD consensus top-1 = %v", top1)
	}
	if _, err := TrainClusterADPSGD(1, cfg); err == nil {
		t.Error("single-worker AD-PSGD should error")
	}
}

func TestTrainClusterHierarchical(t *testing.T) {
	cfg, ds := facadeConfig(t)
	cfg.Iterations = 60
	groups := []Group{{Members: []int{0, 1}}, {Members: []int{2, 3}}}
	results, err := TrainClusterHierarchical(groups, 2, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	// Within-group equality.
	if !results[0].Params.Equal(results[1].Params, 1e-9) {
		t.Error("group 0 ranks diverged")
	}
	if !results[2].Params.Equal(results[3].Params, 1e-9) {
		t.Error("group 1 ranks diverged")
	}
	cls := cfg.Model.(model.Classifier)
	top1, _, err := cls.Accuracy(results[0].Params, model.All(ds), 1)
	if err != nil {
		t.Fatal(err)
	}
	if top1 < 0.75 {
		t.Errorf("hierarchical facade top-1 = %v", top1)
	}
	if _, err := TrainClusterHierarchical(nil, 2, 0, cfg); err == nil {
		t.Error("empty groups should error")
	}
}

func TestPartitionWorkersFacade(t *testing.T) {
	obs := [][]time.Duration{
		{100 * time.Millisecond, 100 * time.Millisecond},
		{100 * time.Millisecond, 100 * time.Millisecond},
		{500 * time.Millisecond, 500 * time.Millisecond},
		{500 * time.Millisecond, 500 * time.Millisecond},
	}
	groups, err := PartitionWorkers(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %+v", groups)
	}
}
