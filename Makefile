GO ?= go

.PHONY: all vet build test race bench collective-bench check

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI gate: static analysis, full build, race-enabled tests.
check: vet build race

# bench runs the collective and kernel micro-benchmarks interactively.
bench:
	$(GO) test -run xxx -bench 'BenchmarkRingAllReduce|BenchmarkPartialRingAllReduce' -benchmem ./internal/collective/
	$(GO) test -run xxx -bench BenchmarkTensorKernels -benchmem ./internal/tensor/

# collective-bench regenerates the machine-readable BENCH_collective.json.
collective-bench:
	$(GO) run ./cmd/rnabench -collective -collective-out BENCH_collective.json
