GO ?= go

.PHONY: all vet build test race bench bench-smoke fuzz-smoke microbench calibrate collective-bench train-bench check

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI gate: static analysis, full build, race-enabled tests.
check: vet build race

# bench refreshes both machine-readable benchmark reports
# (BENCH_collective.json and BENCH_train.json).
bench: collective-bench train-bench

# bench-smoke runs a tiny end-to-end overlap benchmark (real BSP workers over
# TCP, multi-bucket reducer pipeline, bit-identity asserted) without writing
# any JSON — a seconds-long CI check that the benchmark harness still works.
bench-smoke:
	$(GO) run ./cmd/rnabench -bench-smoke

# fuzz-smoke runs each wire-protocol fuzz target for a short budget — enough
# to cover the seeded v1 corpus (header truncations, forged fields, hello
# garbage, parameter-server push/pull/ack frames with packed mode<<24|chunk
# tags) plus a burst of mutations, quick enough for CI.
fuzz-smoke:
	$(GO) test ./internal/transport/ -run '^$$' -fuzz FuzzReadMessage -fuzztime 20s
	$(GO) test ./internal/transport/ -run '^$$' -fuzz FuzzReadHello -fuzztime 10s

# microbench runs the collective, kernel, model and engine micro-benchmarks
# interactively.
microbench:
	$(GO) test -run xxx -bench 'BenchmarkRingAllReduce|BenchmarkPartialRingAllReduce' -benchmem ./internal/collective/
	$(GO) test -run xxx -bench BenchmarkTensorKernels -benchmem ./internal/tensor/
	$(GO) test -run xxx -bench BenchmarkModel -benchmem ./internal/model/
	$(GO) test -run xxx -bench BenchmarkTrainsim -benchmem ./internal/trainsim/

# collective-bench regenerates the machine-readable BENCH_collective.json
# (per-algorithm sweep + crossover table). Run `make calibrate` first to
# drive the auto rows with constants fitted on this machine.
collective-bench:
	$(GO) run ./cmd/rnabench -collective -collective-out BENCH_collective.json

# calibrate fits the per-algorithm alpha-beta cost model on this machine and
# persists it for the auto-selector.
calibrate:
	$(GO) run ./cmd/rnabench -calibrate -calibration CALIBRATION_collective.json

# train-bench regenerates the machine-readable BENCH_train.json.
train-bench:
	$(GO) run ./cmd/rnabench -train -train-out BENCH_train.json
