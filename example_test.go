package rna_test

import (
	"fmt"
	"time"

	rna "repro"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/workload"
)

// ExampleSimulate runs RNA on a simulated 8-worker cluster with random
// stragglers and reports whether it reached the target loss.
func ExampleSimulate() {
	src := rng.New(42)
	ds, err := data.Blobs(src, 4, 5, 40, 0.2)
	if err != nil {
		fmt.Println(err)
		return
	}
	m, err := model.NewLogistic(ds)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := rna.Simulate(rna.SimulationConfig{
		Strategy:      rna.RNA,
		Workers:       8,
		Model:         m,
		Dataset:       ds,
		BatchSize:     16,
		LR:            0.3,
		Step:          workload.Balanced{Base: 100 * time.Millisecond, Jitter: 0.05},
		Spec:          workload.ResNet56(),
		Comm:          workload.DefaultComm(),
		TargetLoss:    0.3,
		MaxIterations: 500,
		Seed:          42,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("reached target:", res.ReachedTarget)
	// Output: reached target: true
}

// ExampleTrainCluster trains 4 real concurrent workers with the RNA
// protocol and verifies the cross-rank parameter invariant.
func ExampleTrainCluster() {
	src := rng.New(7)
	ds, err := data.Blobs(src, 3, 4, 40, 0.2)
	if err != nil {
		fmt.Println(err)
		return
	}
	m, err := model.NewLogistic(ds)
	if err != nil {
		fmt.Println(err)
		return
	}
	results, err := rna.TrainCluster(4, 2, rna.PolicyPowerOfChoices, rna.TrainConfig{
		Model:      m,
		Batch:      func(s *rng.Source) []int { return ds.Batch(s, 16) },
		LR:         0.25,
		Iterations: 50,
		Seed:       7,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	identical := true
	for r := 1; r < len(results); r++ {
		if !results[r].Params.Equal(results[0].Params, 1e-9) {
			identical = false
		}
	}
	fmt.Println("all ranks identical:", identical)
	// Output: all ranks identical: true
}

// ExamplePartitionWorkers groups a mixed-speed cluster with the paper's
// ζ > v rule.
func ExamplePartitionWorkers() {
	obs := make([][]time.Duration, 4)
	for w := range obs {
		base := 100 * time.Millisecond
		if w >= 2 {
			base = 400 * time.Millisecond
		}
		obs[w] = []time.Duration{base, base + time.Millisecond, base - time.Millisecond}
	}
	groups, err := rna.PartitionWorkers(obs)
	if err != nil {
		fmt.Println(err)
		return
	}
	for i, g := range groups {
		fmt.Printf("group %d: %v\n", i, g.Members)
	}
	// Output:
	// group 0: [0 1]
	// group 1: [2 3]
}
