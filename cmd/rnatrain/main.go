// Command rnatrain trains a classifier on a synthetic dataset with real
// concurrent workers (goroutine runtime) under a chosen synchronization
// policy, over the in-memory or TCP transport.
//
// Usage:
//
//	rnatrain -workers 4 -policy rna -iters 200
//	rnatrain -workers 3 -policy bsp -transport tcp -straggler 2=5ms
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	rna "repro"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/rng"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rnatrain:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rnatrain", flag.ContinueOnError)
	var (
		workers   = fs.Int("workers", 4, "number of training workers")
		policy    = fs.String("policy", "rna", "sync policy: rna, bsp, majority, solo, random, adpsgd")
		probes    = fs.Int("probes", 2, "probe count for the rna policy")
		iters     = fs.Int("iters", 200, "training iterations")
		batch     = fs.Int("batch", 32, "per-worker batch size")
		lr        = fs.Float64("lr", 0.25, "learning rate")
		momentum  = fs.Float64("momentum", 0.9, "SGD momentum")
		bound     = fs.Int("bound", 2, "staleness bound")
		seed      = fs.Int64("seed", 1, "random seed")
		transport = fs.String("transport", "mem", "transport: mem or tcp")
		straggler = fs.String("straggler", "", "inject delay, e.g. 2=5ms slows worker 2 by 5ms per step")
		classes   = fs.Int("classes", 10, "synthetic dataset classes")
		features  = fs.Int("features", 8, "synthetic dataset features")
		save      = fs.String("save", "", "write the final model checkpoint to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var pol rna.Policy
	gossip := false
	switch *policy {
	case "rna":
		pol = rna.PolicyPowerOfChoices
	case "bsp":
		pol = rna.PolicyAllReady
	case "majority":
		pol = rna.PolicyMajority
	case "solo":
		pol = rna.PolicySolo
	case "random":
		pol = rna.PolicyRandom
	case "adpsgd":
		gossip = true
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	src := rng.New(*seed)
	full, err := data.Blobs(src, *classes, *features, 60, 0.45)
	if err != nil {
		return err
	}
	train, val, err := full.Split(src, 0.2)
	if err != nil {
		return err
	}
	m, err := model.NewLogistic(train)
	if err != nil {
		return err
	}

	slowWorker, slowDelay, err := parseStraggler(*straggler)
	if err != nil {
		return err
	}

	cfg := rna.TrainConfig{
		Model:          m,
		Batch:          func(s *rng.Source) []int { return train.Batch(s, *batch) },
		LR:             *lr,
		Momentum:       *momentum,
		Iterations:     *iters,
		StalenessBound: *bound,
		Seed:           *seed,
	}

	fmt.Printf("training %d-class logistic regression on %d workers (%s policy, %s transport)\n",
		*classes, *workers, *policy, *transport)
	if slowDelay > 0 {
		fmt.Printf("injecting %v per-step delay on worker %d\n", slowDelay, slowWorker)
		cfg.SlowDown = func(rank, _ int) time.Duration {
			if rank == slowWorker {
				return slowDelay
			}
			return 0
		}
	}
	start := time.Now()
	var finalParams []float64
	if gossip {
		if *transport == "tcp" {
			return fmt.Errorf("adpsgd is only wired for the in-memory transport")
		}
		results, err := rna.TrainClusterADPSGD(*workers, cfg)
		if err != nil {
			return err
		}
		consensus, err := rna.ConsensusModel(results)
		if err != nil {
			return err
		}
		finalParams = consensus
		fmt.Printf("done in %v wall clock\n", time.Since(start).Round(time.Millisecond))
		fmt.Printf("rank0: %d averagings, %d conflicts\n", results[0].Averagings, results[0].Conflicts)
	} else {
		var results []*rna.TrainResult
		if *transport == "tcp" {
			results, err = rna.TrainClusterTCP(*workers, *probes, pol, cfg)
		} else {
			results, err = rna.TrainCluster(*workers, *probes, pol, cfg)
		}
		if err != nil {
			return err
		}
		finalParams = results[0].Params
		fmt.Printf("done in %v wall clock\n", time.Since(start).Round(time.Millisecond))
		fmt.Printf("rank0: %d real contributions, %d null contributions\n",
			results[0].Contributed, results[0].NullContribs)
	}

	valModel, err := model.NewLogistic(val)
	if err != nil {
		return err
	}
	top1, top5, err := valModel.Accuracy(finalParams, model.All(val), 5)
	if err != nil {
		return err
	}
	fmt.Printf("validation: top-1 %.1f%%, top-5 %.1f%%\n", top1*100, top5*100)
	if *save != "" {
		ck := model.Checkpoint{Step: int64(*iters), Params: finalParams}
		if err := model.SaveCheckpoint(*save, ck); err != nil {
			return err
		}
		fmt.Printf("checkpoint written to %s\n", *save)
	}
	return nil
}

// parseStraggler parses "rank=duration" (e.g. "2=5ms").
func parseStraggler(s string) (int, time.Duration, error) {
	if s == "" {
		return -1, 0, nil
	}
	parts := strings.SplitN(s, "=", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("straggler spec %q, want rank=duration", s)
	}
	rank, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("straggler rank: %w", err)
	}
	d, err := time.ParseDuration(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("straggler delay: %w", err)
	}
	return rank, d, nil
}
