package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/collective"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// Collective micro-benchmark mode: rnabench -collective re-measures the ring
// AllReduce hot path with testing.Benchmark and writes a machine-readable
// BENCH_collective.json next to the repo's recorded numbers, so perf
// regressions show up as a diff instead of an anecdote.

// collectiveBenchCase is one measured configuration.
type collectiveBenchCase struct {
	Name        string  `json:"name"`
	Ranks       int     `json:"ranks"`
	Dim         int     `json:"dim"`
	NsPerOp     int64   `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// collectiveBenchReport is the BENCH_collective.json schema.
type collectiveBenchReport struct {
	// Seed are the checked-in numbers for the pre-optimization serial ring
	// (measured on the same benchmark definitions at the seed commit).
	Seed []collectiveBenchCase `json:"seed_baseline"`
	// Current are the numbers measured by this run.
	Current []collectiveBenchCase `json:"current"`
	// GateSpeedup/GateAllocRatio compare the n8/dim262144 acceptance case
	// (current vs seed): throughput ratio and allocs-per-op ratio.
	GateSpeedup    float64 `json:"gate_speedup_throughput"`
	GateAllocRatio float64 `json:"gate_alloc_reduction"`
}

// seedBaseline is the seed implementation measured with the identical
// benchmark bodies (BenchmarkRingAllReduce / BenchmarkPartialRingAllReduce)
// before the pipelined ring landed.
var seedBaseline = []collectiveBenchCase{
	{Name: "RingAllReduce", Ranks: 4, Dim: 1 << 10, NsPerOp: 28989, MBPerSec: 282.56, BytesPerOp: 147556, AllocsPerOp: 54},
	{Name: "RingAllReduce", Ranks: 8, Dim: 1 << 18, NsPerOp: 7414451, MBPerSec: 282.85, BytesPerOp: 29375459, AllocsPerOp: 188},
	{Name: "RingAllReduce", Ranks: 16, Dim: 1 << 20, NsPerOp: 119230024, MBPerSec: 70.36, BytesPerOp: 246674329, AllocsPerOp: 637},
	{Name: "PartialRingAllReduce", Ranks: 8, Dim: 1 << 18, NsPerOp: 8880643, MBPerSec: 236.15, BytesPerOp: 31477612, AllocsPerOp: 196},
}

func benchRing(name string, n, dim int, body func(m transport.Mesh, iter int64, v tensor.Vector) error) (collectiveBenchCase, error) {
	net, err := transport.NewLocalNetwork(n)
	if err != nil {
		return collectiveBenchCase{}, err
	}
	defer func() { _ = net.Close() }()
	vecs := make([]tensor.Vector, n)
	for i := range vecs {
		vecs[i] = tensor.New(dim)
		for j := range vecs[i] {
			vecs[i][j] = float64(i + j)
		}
	}
	eps := net.Endpoints()
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(dim * 8))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			done := make(chan error, n)
			for _, m := range eps {
				m := m
				go func() { done <- body(m, int64(i), vecs[m.Rank()]) }()
			}
			for range eps {
				if err := <-done; err != nil && benchErr == nil {
					benchErr = err
				}
			}
		}
	})
	if benchErr != nil {
		return collectiveBenchCase{}, fmt.Errorf("%s n%d dim%d: %w", name, n, dim, benchErr)
	}
	mbps := 0.0
	if s := res.T.Seconds(); s > 0 {
		mbps = float64(res.Bytes) * float64(res.N) / 1e6 / s
	}
	return collectiveBenchCase{
		Name:        name,
		Ranks:       n,
		Dim:         dim,
		NsPerOp:     res.NsPerOp(),
		MBPerSec:    mbps,
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}, nil
}

// runCollectiveBench measures the recorded configurations and writes the
// JSON report to outPath.
func runCollectiveBench(outPath string) error {
	ring := func(m transport.Mesh, iter int64, v tensor.Vector) error {
		return collective.RingAllReduce(m, iter, v, collective.OpAverage)
	}
	partial := func(m transport.Mesh, iter int64, v tensor.Vector) error {
		pr, err := collective.PartialRingAllReduce(m, iter, v, m.Rank()%2 == 0)
		if err == nil {
			pr.Release()
		}
		return err
	}
	configs := []struct {
		name   string
		n, dim int
		body   func(m transport.Mesh, iter int64, v tensor.Vector) error
	}{
		{"RingAllReduce", 4, 1 << 10, ring},
		{"RingAllReduce", 8, 1 << 18, ring},
		{"RingAllReduce", 16, 1 << 20, ring},
		{"PartialRingAllReduce", 8, 1 << 18, partial},
	}
	rep := collectiveBenchReport{Seed: seedBaseline}
	for _, c := range configs {
		fmt.Fprintf(os.Stderr, "collective bench: %s n%d dim%d...\n", c.name, c.n, c.dim)
		res, err := benchRing(c.name, c.n, c.dim, c.body)
		if err != nil {
			return err
		}
		rep.Current = append(rep.Current, res)
	}
	for _, cur := range rep.Current {
		for _, seed := range rep.Seed {
			if cur.Name == "RingAllReduce" && cur.Name == seed.Name && cur.Ranks == 8 && seed.Ranks == 8 && cur.Dim == seed.Dim {
				rep.GateSpeedup = cur.MBPerSec / seed.MBPerSec
				if cur.AllocsPerOp > 0 {
					rep.GateAllocRatio = float64(seed.AllocsPerOp) / float64(cur.AllocsPerOp)
				}
			}
		}
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "collective bench: wrote %s (gate speedup %.2fx, alloc reduction %.1fx)\n",
		outPath, rep.GateSpeedup, rep.GateAllocRatio)
	return nil
}
