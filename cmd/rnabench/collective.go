package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/collective"
	"repro/internal/tensor"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Collective micro-benchmark mode: rnabench -collective re-measures the ring
// AllReduce hot path with testing.Benchmark and writes a machine-readable
// BENCH_collective.json next to the repo's recorded numbers, so perf
// regressions show up as a diff instead of an anecdote.

// collectiveBenchCase is one measured configuration.
type collectiveBenchCase struct {
	Name        string  `json:"name"`
	Ranks       int     `json:"ranks"`
	Dim         int     `json:"dim"`
	NsPerOp     int64   `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// algoBenchCase is one (algorithm, ranks, dim) point of the multi-algorithm
// sweep.
type algoBenchCase struct {
	Algorithm string  `json:"algorithm"`
	Ranks     int     `json:"ranks"`
	Dim       int     `json:"dim"`
	NsPerOp   int64   `json:"ns_per_op"`
	MBPerSec  float64 `json:"mb_per_sec"`
}

// compressionBenchCase is one (dtype, ranks, dim) point of the compressed
// ring sweep, measured over real TCP loopback (the in-memory mesh moves no
// bytes, so only the TCP path shows the wire saving). MBPerSec counts the
// LOGICAL fp64 payload (8·dim bytes), so dtype rows are directly comparable:
// a narrower wire shows up as higher effective throughput.
type compressionBenchCase struct {
	Dtype     string  `json:"dtype"`
	Ranks     int     `json:"ranks"`
	Dim       int     `json:"dim"`
	NsPerOp   int64   `json:"ns_per_op"`
	MBPerSec  float64 `json:"mb_per_sec"`
	WireRatio float64 `json:"wire_ratio"`
}

// scalingRow is one rank-count point of the 8→1024 scaling sweep: the flat
// ring and the topology-aware multi-level schedule at the bandwidth-bound
// dim, with aggregate goodput (n·8·dim logical bytes reduced per second —
// the weak-scaling measure that is meaningful on a single-host in-process
// mesh, where every rank shares the same cores and perfect scaling means
// the aggregate rate holds as n grows).
type scalingRow struct {
	Ranks        int     `json:"ranks"`
	Dim          int     `json:"dim"`
	Levels       string  `json:"levels"`
	RingNs       int64   `json:"ring_ns"`
	MultiLevelNs int64   `json:"multi_level_ns"`
	RingAggMBps  float64 `json:"ring_agg_mb_per_sec"`
	MultiAggMBps float64 `json:"multi_agg_mb_per_sec"`
	// Efficiency is the multi-level aggregate goodput relative to the
	// first bandwidth-bound point — the first rank count whose working
	// set (n·8·dim bytes) exceeds scalingBWBoundBytes and therefore runs
	// at DRAM bandwidth rather than cache bandwidth. Cache-resident
	// points report >1 (they run faster than the DRAM-bound baseline);
	// the scaling gate reads the bandwidth-bound points only, where
	// perfect weak scaling keeps the aggregate rate flat.
	Efficiency float64 `json:"scaling_efficiency"`
}

// crossoverRow summarizes one (ranks, dim) point: the measured cost of each
// schedule, which fixed schedule won, what the auto-selector picked, and the
// selection regret — the picked schedule's fixed-run timing vs the best
// fixed run.
type crossoverRow struct {
	Ranks             int     `json:"ranks"`
	Dim               int     `json:"dim"`
	RingNs            int64   `json:"ring_ns"`
	HalvingDoublingNs int64   `json:"halving_doubling_ns"`
	TreeNs            int64   `json:"tree_ns"`
	AutoNs            int64   `json:"auto_ns"`
	Best              string  `json:"best"`
	AutoPick          string  `json:"auto_pick"`
	AutoWithinPct     float64 `json:"auto_within_pct"`
}

// collectiveBenchReport is the BENCH_collective.json schema.
type collectiveBenchReport struct {
	// Seed are the checked-in numbers for the pre-optimization serial ring
	// (measured on the same benchmark definitions at the seed commit).
	Seed []collectiveBenchCase `json:"seed_baseline"`
	// Current are the numbers measured by this run.
	Current []collectiveBenchCase `json:"current"`
	// GateSpeedup/GateAllocRatio compare the n8/dim262144 acceptance case
	// (current vs seed): throughput ratio and allocs-per-op ratio.
	GateSpeedup    float64 `json:"gate_speedup_throughput"`
	GateAllocRatio float64 `json:"gate_alloc_reduction"`
	// CalibrationSource records which cost model drove the auto rows:
	// "default" or the calibration file path.
	CalibrationSource string `json:"calibration_source"`
	// Algorithms is the per-algorithm sweep over (ranks, dim).
	Algorithms []algoBenchCase `json:"algorithms"`
	// Crossover condenses the sweep into one row per (ranks, dim).
	Crossover []crossoverRow `json:"crossover"`
	// GateSmallTensorSpeedup is min(ring_ns / halving_doubling_ns) over the
	// small-tensor points (dim <= 4096, ranks >= 8); the acceptance bar is
	// >= 1.5.
	GateSmallTensorSpeedup float64 `json:"gate_small_tensor_speedup"`
	// GateAutoWithinPct is max over all points of the selection regret —
	// how far the schedule the auto-selector picks lands above the best
	// fixed run, in percent; the bar is <= 10.
	GateAutoWithinPct float64 `json:"gate_auto_within_pct"`
	// Compression is the compressed end-to-end AllReduce sweep over TCP
	// loopback. Only the allgather half of the ring compresses (the
	// reduce-scatter ships fp64 partial sums to keep the reduction exact),
	// so even a free fp16 codec caps these rows at 1.6x — the honest
	// end-to-end number.
	Compression []compressionBenchCase `json:"compression"`
	// WirePath is the transport-level sweep: a TCP ring cycle where every
	// byte ships the dtype — codec + link + decode with no fp64 reduce
	// traffic mixed in — over connections paced to an emulated 500 Mbit/s
	// link (see wireLinkRate), the bandwidth-bound regime the compression
	// targets. This is the path the fp16 gate measures.
	WirePath []compressionBenchCase `json:"wire_path"`
	// WirePathLinkMBps records the emulated link rate of the WirePath rows
	// in MB/s, so the numbers are interpretable later.
	WirePathLinkMBps float64 `json:"wire_path_link_mbps"`
	// GateFp16WireSpeedup is the fp16 wire path's effective MB/s over the
	// fp64 wire path's at the n8/dim262144 point; the bar is >= 1.8.
	GateFp16WireSpeedup float64 `json:"gate_fp16_wire_speedup"`
	// Overlap is the comm/compute-overlap sweep: real BSP workers over a
	// paced TCP cluster, reducer pipeline vs sequential bucket schedule.
	Overlap []overlapBenchRow `json:"overlap"`
	// GateOverlapSpeedup is the pipelined schedule's speedup over the
	// sequential one at the comm-bound mlp-large/500Mbit point; the bar is
	// >= 1.3. GateOverlapInFlight is the peak concurrently in-flight bucket
	// collectives there; the bar is >= 2.
	GateOverlapSpeedup  float64 `json:"gate_overlap_speedup"`
	GateOverlapInFlight int     `json:"gate_overlap_in_flight"`
	// Scaling is the 8→1024 rank-count sweep (flat ring vs multi-level at
	// the bandwidth-bound dim). GateScalingEfficiency is the multi-level
	// aggregate-goodput retention at the largest rank count (bar >= 0.8);
	// GateMultiLevelWin is max(multi_ns / ring_ns) over the points with
	// >= 256 ranks (bar <= 1.0 — the level tree must not lose to the flat
	// ring where its message-count advantage is decisive).
	Scaling               []scalingRow `json:"scaling"`
	GateScalingEfficiency float64      `json:"gate_scaling_efficiency"`
	GateMultiLevelWin     float64      `json:"gate_multi_level_win"`
	// Framing is the v1 wire-protocol sweep (see framing.go): codec cost,
	// header overhead and sustained TCP message rate across 64 B – 8 MiB
	// payloads, plus the small-tensor e2e AllReduce comparison against the
	// pre-framing seed. GateFramingSmallSpeedup is min(seed/current) over the
	// small dims (bar >= 1.2); GateFramingAllocsPerOp is the worst codec
	// allocation count (bar == 0); GateFramingHeaderPct is the header
	// overhead at a 256 KiB payload (bar <= 1).
	Framing                 []framingRow      `json:"framing"`
	FramingSmallTCP         []framingSmallRow `json:"framing_small_tcp"`
	GateFramingSmallSpeedup float64           `json:"gate_framing_small_speedup"`
	GateFramingAllocsPerOp  int64             `json:"gate_framing_allocs_per_op"`
	GateFramingHeaderPct    float64           `json:"gate_framing_header_pct"`
	// Skew is the heterogeneous-fabric sweep (see skewbench.go): the
	// online skew engine vs the equal-chunk ring over per-peer paced TCP
	// links at 4:1 skew, with the engine's measured link rates and
	// converged plan recorded per row. GateSkewSpeedup is the speedup at
	// the 256 KiB point (bar >= 1.4); GateSkewConvergeIters is how many
	// iterations a fresh engine needs before its plan weights land within
	// 5% of the oracle fabric's (bar <= 20).
	Skew                  []skewRow `json:"skew"`
	GateSkewSpeedup       float64   `json:"gate_skew_speedup_256k"`
	GateSkewConvergeIters int       `json:"gate_skew_converge_iters"`
	// Sharded is the owner-computes half-collective sweep (see
	// shardbench.go): ReduceScatter, AllGather, their composition — the
	// schedule the sharded optimizer path runs every iteration — and the
	// fused pipelined ring at the n8/256K acceptance point.
	// GateShardedComposedRatio is composed ns / fused ring ns; the bar is
	// <= 1.1 — first-classing the halves must not give up more than 10%.
	Sharded                  []collectiveBenchCase `json:"sharded"`
	GateShardedComposedRatio float64               `json:"gate_sharded_composed_ratio"`
	// PS is the parameter-server sweep (see psbench.go): aggregate
	// concurrent push-pull throughput by group count for the in-process
	// snapshot store (with the seed single-lock store as the baseline
	// column) and for the networked TCP PS service at f64/f16 wires.
	// GatePSSpeedup is the 8-group in-memory throughput over the seed
	// store's (bar >= 2.0); GatePSBitwise records that an ordered chunked
	// f64 exchange sequence over TCP bitwise-matched the loopback store.
	PS            []psRow `json:"ps"`
	GatePSSpeedup float64 `json:"gate_ps_speedup_8group"`
	GatePSBitwise bool    `json:"gate_ps_tcp_bitwise"`
}

// seedBaseline is the seed implementation measured with the identical
// benchmark bodies (BenchmarkRingAllReduce / BenchmarkPartialRingAllReduce)
// before the pipelined ring landed.
var seedBaseline = []collectiveBenchCase{
	{Name: "RingAllReduce", Ranks: 4, Dim: 1 << 10, NsPerOp: 28989, MBPerSec: 282.56, BytesPerOp: 147556, AllocsPerOp: 54},
	{Name: "RingAllReduce", Ranks: 8, Dim: 1 << 18, NsPerOp: 7414451, MBPerSec: 282.85, BytesPerOp: 29375459, AllocsPerOp: 188},
	{Name: "RingAllReduce", Ranks: 16, Dim: 1 << 20, NsPerOp: 119230024, MBPerSec: 70.36, BytesPerOp: 246674329, AllocsPerOp: 637},
	{Name: "PartialRingAllReduce", Ranks: 8, Dim: 1 << 18, NsPerOp: 8880643, MBPerSec: 236.15, BytesPerOp: 31477612, AllocsPerOp: 196},
}

func benchRing(name string, n, dim int, body func(m transport.Mesh, iter int64, v tensor.Vector) error) (collectiveBenchCase, error) {
	net, err := transport.NewLocalNetwork(n)
	if err != nil {
		return collectiveBenchCase{}, err
	}
	defer func() { _ = net.Close() }()
	vecs := make([]tensor.Vector, n)
	for i := range vecs {
		vecs[i] = tensor.New(dim)
		for j := range vecs[i] {
			vecs[i][j] = float64(i + j)
		}
	}
	eps := net.Endpoints()
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(dim * 8))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			done := make(chan error, n)
			for _, m := range eps {
				m := m
				go func() { done <- body(m, int64(i), vecs[m.Rank()]) }()
			}
			for range eps {
				if err := <-done; err != nil && benchErr == nil {
					benchErr = err
				}
			}
		}
	})
	if benchErr != nil {
		return collectiveBenchCase{}, fmt.Errorf("%s n%d dim%d: %w", name, n, dim, benchErr)
	}
	mbps := 0.0
	if s := res.T.Seconds(); s > 0 {
		mbps = float64(res.Bytes) * float64(res.N) / 1e6 / s
	}
	return collectiveBenchCase{
		Name:        name,
		Ranks:       n,
		Dim:         dim,
		NsPerOp:     res.NsPerOp(),
		MBPerSec:    mbps,
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}, nil
}

// algoSweepRanks / algoSweepDims define the (ranks, dim) grid of the
// multi-algorithm sweep; every algorithm is measured at every point. The
// dims cover the tiny/small regime where the log-depth schedules win, the
// crossover region (16K), and the bandwidth-bound regime where the
// pipelined ring wins.
var (
	algoSweepRanks = []int{8, 16}
	algoSweepDims  = []int{1 << 8, 1 << 10, 1 << 14, 1 << 16, 1 << 18}
	algoSweepAlgos = []collective.Algorithm{
		collective.AlgoRing, collective.AlgoHalvingDoubling,
		collective.AlgoTree, collective.AlgoAuto,
	}
	// algoSweepReps repeats each measurement and keeps the fastest run
	// (benchstat-style min), damping scheduler noise: the collectives are
	// sub-millisecond multi-goroutine ops, where a single testing.Benchmark
	// run can swing tens of percent on a busy host. Five reps keep the
	// near-tie points (where two schedules are within noise of each other)
	// from flipping the regret gate on an unlucky run.
	algoSweepReps = 5
)

// runAlgoSweep measures every algorithm at every (ranks, dim) grid point and
// condenses the result into crossover rows plus the two acceptance gates.
func runAlgoSweep(rep *collectiveBenchReport) error {
	ns := make(map[[2]int]map[string]int64)
	for _, n := range algoSweepRanks {
		for _, dim := range algoSweepDims {
			point := map[string]int64{}
			for _, algo := range algoSweepAlgos {
				algo := algo
				fmt.Fprintf(os.Stderr, "collective bench: %s n%d dim%d...\n", algo, n, dim)
				var best collectiveBenchCase
				for r := 0; r < algoSweepReps; r++ {
					res, err := benchRing(algo.String(), n, dim, func(m transport.Mesh, iter int64, v tensor.Vector) error {
						return collective.AllReduceWith(m, iter, v, collective.OpAverage, algo)
					})
					if err != nil {
						return err
					}
					if r == 0 || res.NsPerOp < best.NsPerOp {
						best = res
					}
				}
				rep.Algorithms = append(rep.Algorithms, algoBenchCase{
					Algorithm: algo.String(), Ranks: n, Dim: dim,
					NsPerOp: best.NsPerOp, MBPerSec: best.MBPerSec,
				})
				point[algo.String()] = best.NsPerOp
			}
			ns[[2]int{n, dim}] = point
		}
	}

	rep.GateSmallTensorSpeedup = 0
	rep.GateAutoWithinPct = 0
	for _, n := range algoSweepRanks {
		for _, dim := range algoSweepDims {
			point := ns[[2]int{n, dim}]
			row := crossoverRow{
				Ranks: n, Dim: dim,
				RingNs:            point[collective.AlgoRing.String()],
				HalvingDoublingNs: point[collective.AlgoHalvingDoubling.String()],
				TreeNs:            point[collective.AlgoTree.String()],
				AutoNs:            point[collective.AlgoAuto.String()],
				AutoPick:          collective.SelectAlgorithm(n, dim).String(),
			}
			best := row.RingNs
			row.Best = collective.AlgoRing.String()
			if row.HalvingDoublingNs < best {
				best, row.Best = row.HalvingDoublingNs, collective.AlgoHalvingDoubling.String()
			}
			if row.TreeNs < best {
				best, row.Best = row.TreeNs, collective.AlgoTree.String()
			}
			// Selection regret: the auto path IS the picked algorithm plus a
			// branch-free Select call, so comparing the picked algorithm's
			// fixed-run timing against the best fixed run isolates what the
			// selector costs from run-to-run benchmark noise. AutoNs (the
			// independently measured auto run) stays in the row for
			// transparency.
			row.AutoWithinPct = (float64(point[row.AutoPick])/float64(best) - 1) * 100
			if row.AutoWithinPct < 0 {
				row.AutoWithinPct = 0
			}
			rep.Crossover = append(rep.Crossover, row)

			if n >= 8 && dim <= 4096 {
				speedup := float64(row.RingNs) / float64(row.HalvingDoublingNs)
				if rep.GateSmallTensorSpeedup == 0 || speedup < rep.GateSmallTensorSpeedup {
					rep.GateSmallTensorSpeedup = speedup
				}
			}
			if row.AutoWithinPct > rep.GateAutoWithinPct {
				rep.GateAutoWithinPct = row.AutoWithinPct
			}
		}
	}
	return nil
}

// compressionSweep defines the compressed-ring grid: the two bandwidth-bound
// acceptance points, every wire dtype at each.
var (
	compressionPoints = []struct{ n, dim int }{{8, 1 << 18}, {16, 1 << 20}}
	compressionDtypes = []tensor.Dtype{tensor.F64, tensor.F32, tensor.F16, tensor.I8}
	compressionReps   = 3
)

// benchCompressedTCP measures one ring AllReduce configuration over a real
// TCP loopback cluster with the given wire dtype (error feedback enabled, as
// in training).
func benchCompressedTCP(n, dim int, wire tensor.Dtype) (compressionBenchCase, error) {
	meshes, err := transport.NewTCPCluster(n)
	if err != nil {
		return compressionBenchCase{}, err
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	vecs := make([]tensor.Vector, n)
	residuals := make([]tensor.Vector, n)
	for i := range vecs {
		vecs[i] = tensor.New(dim)
		for j := range vecs[i] {
			vecs[i][j] = float64(i+j) * 1e-3
		}
		residuals[i] = tensor.New(dim)
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(dim * 8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			done := make(chan error, n)
			for _, m := range meshes {
				m := m
				go func() {
					done <- collective.AllReduceOpts(m, int64(i), vecs[m.Rank()], collective.OpAverage, collective.Options{
						Algorithm: collective.AlgoRing, Compression: wire, Residual: residuals[m.Rank()],
					})
				}()
			}
			for range meshes {
				if err := <-done; err != nil && benchErr == nil {
					benchErr = err
				}
			}
		}
	})
	if benchErr != nil {
		return compressionBenchCase{}, fmt.Errorf("compressed ring %v n%d dim%d: %w", wire, n, dim, benchErr)
	}
	mbps := 0.0
	if s := res.T.Seconds(); s > 0 {
		mbps = float64(res.Bytes) * float64(res.N) / 1e6 / s
	}
	return compressionBenchCase{
		Dtype: wire.String(), Ranks: n, Dim: dim,
		NsPerOp: res.NsPerOp(), MBPerSec: mbps,
		WireRatio: wire.WireRatio(),
	}, nil
}

// runCompressionSweep measures every wire dtype at every compression point.
// These are end-to-end AllReduce numbers: the reduce-scatter half always ships
// fp64 partial sums (the determinism contract), so the dtype only thins the
// allgather half and the ideal fp16 end-to-end ceiling is 1.6x.
func runCompressionSweep(rep *collectiveBenchReport) error {
	for _, p := range compressionPoints {
		for _, wire := range compressionDtypes {
			fmt.Fprintf(os.Stderr, "collective bench: compressed ring %v n%d dim%d (TCP)...\n", wire, p.n, p.dim)
			var best compressionBenchCase
			for r := 0; r < compressionReps; r++ {
				res, err := benchCompressedTCP(p.n, p.dim, wire)
				if err != nil {
					return err
				}
				if r == 0 || res.NsPerOp < best.NsPerOp {
					best = res
				}
			}
			rep.Compression = append(rep.Compression, best)
		}
	}
	return nil
}

// wireLinkRate is the emulated link bandwidth of the wire-path sweep:
// 500 Mbit/s, a commodity-cluster fabric. Unthrottled loopback on this
// container is CPU-bound — every wire byte is just more kernel copy work, so
// byte savings and codec cost trade against each other and no "bandwidth-
// bound point" exists. Pacing each connection to a real link speed restores
// the regime the paper (and the gate) is about: serialization delay
// dominates, and shipping 4x fewer bytes shows up as ~4x the effective
// throughput.
const wireLinkRate = 500e6 / 8

// benchWirePathTCP measures the transport wire path in isolation: every rank
// sends one dim-element tensor with the given wire dtype to its right
// neighbor and receives one from its left, over TCP loopback paced to
// wireLinkRate. Unlike the AllReduce rows there is no fp64 reduce-scatter
// traffic mixed in — every byte on the socket is dtype-encoded, so the
// measurement is exactly encode + link + decode. MBPerSec again counts the
// LOGICAL 8·dim bytes.
func benchWirePathTCP(n, dim int, wire tensor.Dtype) (compressionBenchCase, error) {
	meshes, err := transport.NewTCPCluster(n)
	if err != nil {
		return compressionBenchCase{}, err
	}
	for _, m := range meshes {
		m.SetLinkRate(wireLinkRate)
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	vecs := make([]tensor.Vector, n)
	for i := range vecs {
		vecs[i] = tensor.New(dim)
		for j := range vecs[i] {
			// Gradient-scale magnitudes: the fp16 fast path (normals) is the
			// regime training traffic lives in.
			vecs[i][j] = float64(i+j) * 1e-3
		}
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(dim * 8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			done := make(chan error, n)
			for _, m := range meshes {
				m := m
				go func() {
					right := (m.Rank() + 1) % n
					left := (m.Rank() - 1 + n) % n
					if err := m.Send(right, transport.Message{
						Type: transport.MsgReduce, Iter: int64(i),
						Dtype: wire, Payload: vecs[m.Rank()],
					}); err != nil {
						done <- err
						return
					}
					msg, err := m.Recv(left)
					if err == nil {
						transport.PutPayload(msg.Payload)
					}
					done <- err
				}()
			}
			for range meshes {
				if err := <-done; err != nil && benchErr == nil {
					benchErr = err
				}
			}
		}
	})
	if benchErr != nil {
		return compressionBenchCase{}, fmt.Errorf("wire path %v n%d dim%d: %w", wire, n, dim, benchErr)
	}
	mbps := 0.0
	if s := res.T.Seconds(); s > 0 {
		mbps = float64(res.Bytes) * float64(res.N) / 1e6 / s
	}
	return compressionBenchCase{
		Dtype: wire.String(), Ranks: n, Dim: dim,
		NsPerOp: res.NsPerOp(), MBPerSec: mbps,
		WireRatio: wire.WireRatio(),
	}, nil
}

// runWirePathSweep measures every wire dtype on the transport-only path and
// derives the fp16-vs-fp64 wire throughput gate at the n8/dim262144 point.
func runWirePathSweep(rep *collectiveBenchReport) error {
	rep.WirePathLinkMBps = wireLinkRate / 1e6
	var f64MBps, f16MBps float64
	for _, p := range compressionPoints {
		for _, wire := range compressionDtypes {
			fmt.Fprintf(os.Stderr, "collective bench: wire path %v n%d dim%d (TCP, %.0f MB/s emulated link)...\n", wire, p.n, p.dim, wireLinkRate/1e6)
			var best compressionBenchCase
			for r := 0; r < compressionReps; r++ {
				res, err := benchWirePathTCP(p.n, p.dim, wire)
				if err != nil {
					return err
				}
				if r == 0 || res.NsPerOp < best.NsPerOp {
					best = res
				}
			}
			rep.WirePath = append(rep.WirePath, best)
			if p.n == 8 && p.dim == 1<<18 {
				switch wire {
				case tensor.F64:
					f64MBps = best.MBPerSec
				case tensor.F16:
					f16MBps = best.MBPerSec
				}
			}
		}
	}
	if f64MBps > 0 {
		rep.GateFp16WireSpeedup = f16MBps / f64MBps
	}
	return nil
}

// Scaling sweep: rank counts 8→1024 on the in-memory mesh at one
// bandwidth-bound dim. testing.Benchmark would pick its own iteration
// count — a 1024-rank flat ring costs seconds per op (2·1023 serialized
// steps × 1024 ranks ≈ 2M messages) — so the sweep times rounds manually
// and keeps the fastest of a few reps.
var (
	scalingDim    = 1 << 16
	scalingPoints = []struct {
		ranks  int
		branch int // level-0 group size of the multi-level plan
	}{{8, 4}, {64, 8}, {256, 16}, {1024, 32}}
	scalingReps = 5
	// scalingBWBoundBytes separates the cache-resident small-rank points
	// from the memory-bandwidth-bound regime the scaling gate is about:
	// on this in-process mesh every transferred byte is a memory copy, so
	// once the per-op working set clears the last-level cache the
	// aggregate rate is DRAM-bound — the single-host analog of the
	// network-bandwidth-bound regime. 64 MiB is comfortably past any LLC
	// in this container class.
	scalingBWBoundBytes = 64 << 20
)

// timeScalingRound runs `run` on every endpoint concurrently (one SPMD
// collective round) and returns the wall-clock ns, refreshing the vectors
// first so every round reduces identical data.
func timeScalingRound(eps []transport.Mesh, vecs []tensor.Vector, iter int64, run func(m transport.Mesh, iter int64, v tensor.Vector) error) (int64, error) {
	for i := range vecs {
		for j := range vecs[i] {
			vecs[i][j] = float64(i%7) + float64(j%13)*1e-3
		}
	}
	// Collect between rounds so a GC cycle over the gigabyte-scale
	// 1024-rank heap does not land inside a timed round — the min-of-reps
	// then measures the schedule, not the collector.
	runtime.GC()
	done := make(chan error, len(eps))
	start := time.Now()
	for _, m := range eps {
		m := m
		go func() { done <- run(m, iter, vecs[m.Rank()]) }()
	}
	var firstErr error
	for range eps {
		if err := <-done; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return time.Since(start).Nanoseconds(), firstErr
}

// runScalingSweep measures flat ring vs multi-level at each rank count and
// derives the two scaling gates.
func runScalingSweep(rep *collectiveBenchReport) error {
	for _, p := range scalingPoints {
		plan, err := topology.UniformPlan(p.ranks, []int{p.branch})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "collective bench: scaling n%d dim%d (%s)...\n", p.ranks, scalingDim, plan)
		net, err := transport.NewLocalNetwork(p.ranks)
		if err != nil {
			return err
		}
		vecs := make([]tensor.Vector, p.ranks)
		for i := range vecs {
			vecs[i] = tensor.New(scalingDim)
		}
		eps := net.Endpoints()
		row := scalingRow{Ranks: p.ranks, Dim: scalingDim, Levels: plan.String()}
		iter := int64(0)
		for _, alg := range []struct {
			ns  *int64
			run func(m transport.Mesh, iter int64, v tensor.Vector) error
		}{
			{&row.RingNs, func(m transport.Mesh, iter int64, v tensor.Vector) error {
				return collective.RingAllReduce(m, iter, v, collective.OpAverage)
			}},
			{&row.MultiLevelNs, func(m transport.Mesh, iter int64, v tensor.Vector) error {
				return collective.MultiLevelAllReduce(m, iter, v, collective.OpAverage, plan)
			}},
		} {
			for r := 0; r <= scalingReps; r++ { // rep 0 is the warmup
				ns, err := timeScalingRound(eps, vecs, iter, alg.run)
				iter++
				if err != nil {
					_ = net.Close()
					return fmt.Errorf("scaling n%d: %w", p.ranks, err)
				}
				if r > 0 && (*alg.ns == 0 || ns < *alg.ns) {
					*alg.ns = ns
				}
			}
		}
		if err := net.Close(); err != nil {
			return err
		}
		aggBytes := float64(p.ranks) * 8 * float64(scalingDim)
		row.RingAggMBps = aggBytes / 1e6 / (float64(row.RingNs) / 1e9)
		row.MultiAggMBps = aggBytes / 1e6 / (float64(row.MultiLevelNs) / 1e9)
		rep.Scaling = append(rep.Scaling, row)
		fmt.Fprintf(os.Stderr, "collective bench: scaling n%d ring %.0fms multi %.0fms\n",
			p.ranks, float64(row.RingNs)/1e6, float64(row.MultiLevelNs)/1e6)
	}
	// Efficiency is relative to the first bandwidth-bound (DRAM-resident)
	// point; see scalingRow.Efficiency.
	var baseAgg float64
	for i := range rep.Scaling {
		row := &rep.Scaling[i]
		if baseAgg == 0 && float64(row.Ranks)*8*float64(row.Dim) >= float64(scalingBWBoundBytes) {
			baseAgg = row.MultiAggMBps
		}
	}
	if baseAgg == 0 { // sweep too small to leave cache; fall back to the first point
		baseAgg = rep.Scaling[0].MultiAggMBps
	}
	for i := range rep.Scaling {
		rep.Scaling[i].Efficiency = rep.Scaling[i].MultiAggMBps / baseAgg
	}
	last := rep.Scaling[len(rep.Scaling)-1]
	rep.GateScalingEfficiency = last.Efficiency
	rep.GateMultiLevelWin = 0
	for _, row := range rep.Scaling {
		if row.Ranks < 256 {
			continue
		}
		if ratio := float64(row.MultiLevelNs) / float64(row.RingNs); ratio > rep.GateMultiLevelWin {
			rep.GateMultiLevelWin = ratio
		}
	}
	return nil
}

// smokeScaling is the bench-smoke slice of the sweep: one 64-rank round of
// ring and multi-level at a small dim, multi-level results asserted
// bit-identical across ranks and within fp tolerance of the flat ring.
func smokeScaling() error {
	const n, dim = 64, 1 << 12
	plan, err := topology.UniformPlan(n, []int{8})
	if err != nil {
		return err
	}
	net, err := transport.NewLocalNetwork(n)
	if err != nil {
		return err
	}
	defer func() { _ = net.Close() }()
	eps := net.Endpoints()
	// timeScalingRound refreshes both sets to the identical per-rank
	// pattern, so the two schedules reduce the same inputs.
	ringVecs := make([]tensor.Vector, n)
	mlVecs := make([]tensor.Vector, n)
	for i := range ringVecs {
		ringVecs[i] = tensor.New(dim)
		mlVecs[i] = tensor.New(dim)
	}
	if _, err := timeScalingRound(eps, ringVecs, 0, func(m transport.Mesh, iter int64, v tensor.Vector) error {
		return collective.RingAllReduce(m, iter, v, collective.OpAverage)
	}); err != nil {
		return fmt.Errorf("64-rank ring: %w", err)
	}
	if _, err := timeScalingRound(eps, mlVecs, 1, func(m transport.Mesh, iter int64, v tensor.Vector) error {
		return collective.MultiLevelAllReduce(m, iter, v, collective.OpAverage, plan)
	}); err != nil {
		return fmt.Errorf("64-rank multi-level: %w", err)
	}
	for r := 1; r < n; r++ {
		for j := 0; j < dim; j++ {
			if mlVecs[r][j] != mlVecs[0][j] {
				return fmt.Errorf("64-rank multi-level: rank %d not bit-identical at [%d]", r, j)
			}
		}
	}
	for j := 0; j < dim; j++ {
		if d := mlVecs[0][j] - ringVecs[0][j]; d > 1e-9 || d < -1e-9 {
			return fmt.Errorf("64-rank multi-level diverges from ring at [%d]: %v vs %v", j, mlVecs[0][j], ringVecs[0][j])
		}
	}
	return nil
}

// runCollectiveBench measures the recorded configurations and writes the
// JSON report to outPath. calibrationPath optionally points at a persisted
// `rnabench -calibrate` model for the auto rows.
func runCollectiveBench(outPath, calibrationPath string) error {
	ring := func(m transport.Mesh, iter int64, v tensor.Vector) error {
		return collective.RingAllReduce(m, iter, v, collective.OpAverage)
	}
	partial := func(m transport.Mesh, iter int64, v tensor.Vector) error {
		pr, err := collective.PartialRingAllReduce(m, iter, v, m.Rank()%2 == 0)
		if err == nil {
			pr.Release()
		}
		return err
	}
	configs := []struct {
		name   string
		n, dim int
		body   func(m transport.Mesh, iter int64, v tensor.Vector) error
	}{
		{"RingAllReduce", 4, 1 << 10, ring},
		{"RingAllReduce", 8, 1 << 18, ring},
		{"RingAllReduce", 16, 1 << 20, ring},
		{"PartialRingAllReduce", 8, 1 << 18, partial},
	}
	rep := collectiveBenchReport{Seed: seedBaseline}
	source, err := loadCalibrationIfPresent(calibrationPath)
	if err != nil {
		return err
	}
	rep.CalibrationSource = source
	fmt.Fprintf(os.Stderr, "collective bench: cost model from %s\n", source)
	for _, c := range configs {
		fmt.Fprintf(os.Stderr, "collective bench: %s n%d dim%d...\n", c.name, c.n, c.dim)
		res, err := benchRing(c.name, c.n, c.dim, c.body)
		if err != nil {
			return err
		}
		rep.Current = append(rep.Current, res)
	}
	if err := runAlgoSweep(&rep); err != nil {
		return err
	}
	if err := runCompressionSweep(&rep); err != nil {
		return err
	}
	if err := runWirePathSweep(&rep); err != nil {
		return err
	}
	if err := runOverlapSweep(&rep); err != nil {
		return err
	}
	if err := runScalingSweep(&rep); err != nil {
		return err
	}
	if err := runFramingSweep(&rep); err != nil {
		return err
	}
	if err := runSkewSweep(&rep); err != nil {
		return err
	}
	if err := runShardSweep(&rep); err != nil {
		return err
	}
	if err := runPSSweep(&rep); err != nil {
		return err
	}
	for _, cur := range rep.Current {
		for _, seed := range rep.Seed {
			if cur.Name == "RingAllReduce" && cur.Name == seed.Name && cur.Ranks == 8 && seed.Ranks == 8 && cur.Dim == seed.Dim {
				rep.GateSpeedup = cur.MBPerSec / seed.MBPerSec
				if cur.AllocsPerOp > 0 {
					rep.GateAllocRatio = float64(seed.AllocsPerOp) / float64(cur.AllocsPerOp)
				}
			}
		}
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "collective bench: wrote %s (gate speedup %.2fx, alloc reduction %.1fx)\n",
		outPath, rep.GateSpeedup, rep.GateAllocRatio)
	fmt.Fprintf(os.Stderr, "collective bench: small-tensor hd-vs-ring %.2fx (gate >= 1.5), auto within %.1f%% of best (gate <= 10)\n",
		rep.GateSmallTensorSpeedup, rep.GateAutoWithinPct)
	fmt.Fprintf(os.Stderr, "collective bench: fp16 wire speedup %.2fx over fp64 (gate >= 1.8)\n",
		rep.GateFp16WireSpeedup)
	fmt.Fprintf(os.Stderr, "collective bench: overlap speedup %.2fx (gate >= 1.3), %d bucket collectives in flight (gate >= 2)\n",
		rep.GateOverlapSpeedup, rep.GateOverlapInFlight)
	fmt.Fprintf(os.Stderr, "collective bench: scaling efficiency %.2f at n%d (gate >= 0.8), multi-level/ring %.2fx at >=256 ranks (gate <= 1.0)\n",
		rep.GateScalingEfficiency, rep.Scaling[len(rep.Scaling)-1].Ranks, rep.GateMultiLevelWin)
	fmt.Fprintf(os.Stderr, "collective bench: framing small-tensor speedup %.2fx (gate >= 1.2), codec allocs/op %d (gate == 0), header %.3f%% at 256KiB (gate <= 1)\n",
		rep.GateFramingSmallSpeedup, rep.GateFramingAllocsPerOp, rep.GateFramingHeaderPct)
	fmt.Fprintf(os.Stderr, "collective bench: skew speedup %.2fx at 256KiB/4:1 (gate >= 1.4), plan within 5%% of oracle in %d iters (gate <= 20)\n",
		rep.GateSkewSpeedup, rep.GateSkewConvergeIters)
	fmt.Fprintf(os.Stderr, "collective bench: sharded RS+AG / fused ring %.2fx at n8/256K (gate <= 1.1)\n",
		rep.GateShardedComposedRatio)
	return nil
}
