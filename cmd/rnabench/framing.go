package main

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"testing"

	"repro/internal/collective"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// Framing sweep: the v1 wire protocol measured in isolation (codec cost,
// header overhead, message rate) and end to end (TCP ring AllReduce on
// small tensors, where per-frame overhead dominates). Three acceptance
// gates ride on it:
//
//   - gate_framing_small_speedup  >= 1.2 — e2e TCP ring AllReduce (n=8) on
//     tensors of <= 4 KiB against the recorded pre-framing seed timings
//     (larger dims are measured and reported but sit outside the gate:
//     they are bandwidth-bound, not framing-bound);
//   - gate_framing_allocs_per_op  == 0  — steady-state encode+decode of a
//     frame allocates nothing (pooled payloads, zero-copy f64 views);
//   - gate_framing_header_pct    <= 1  — header bytes are <= 1% of the
//     frame at a 256 KiB payload.

// framingRow is one payload-size point of the codec sweep.
type framingRow struct {
	// PayloadBytes is the logical f64 payload size (8·elems).
	PayloadBytes int `json:"payload_bytes"`
	// FrameBytes is the full v1 frame size for that payload.
	FrameBytes int `json:"frame_bytes"`
	// HeaderPct is the framing overhead: 100·(FrameBytes−PayloadBytes)/FrameBytes.
	HeaderPct float64 `json:"header_pct"`
	// EncodeDecodeNs is the steady-state cost of one encode+decode cycle.
	EncodeDecodeNs int64 `json:"encode_decode_ns"`
	// AllocsPerOp is the allocation count per encode+decode cycle.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// MsgsPerSec is the sustained one-way message rate over a real TCP
	// connection (sender flooding, receiver draining).
	MsgsPerSec float64 `json:"msgs_per_sec"`
	// MBPerSec is the corresponding payload throughput.
	MBPerSec float64 `json:"mb_per_sec"`
}

// framingSmallRow is one small-tensor point of the e2e AllReduce gate.
type framingSmallRow struct {
	Dim       int     `json:"dim"`
	SeedNs    int64   `json:"seed_ns"`
	CurrentNs int64   `json:"current_ns"`
	Speedup   float64 `json:"speedup"`
}

// framingSeedSmallTCP are the TCP ring AllReduce (n=8) timings recorded at
// the pre-framing seed commit with the identical benchmark body — the
// baseline of the 1.2x gate. Small dims only: that is where per-message
// overhead (per-frame syscalls, reader-goroutine handoffs, header bytes)
// dominates and frame coalescing pays.
var framingSeedSmallTCP = map[int]int64{
	128:  304582,
	512:  292231,
	2048: 393781,
	4096: 513527,
}

// framingPayloadElems sweeps 64 B → 8 MiB payloads (f64 elements).
var framingPayloadElems = []int{8, 64, 512, 4096, 32768, 262144, 1048576}

const framingRanks = 8

// benchFramingCodec measures steady-state encode+decode of one frame and its
// allocation count. The decode side runs the production zero-copy path (a
// bufio reader over the encoded bytes) and returns the pooled buffers after
// each cycle, so the pools reach steady state immediately.
func benchFramingCodec(elems int) (nsPerOp int64, allocs int64, err error) {
	msg := transport.Message{Type: transport.MsgChunk, Iter: 1, Payload: make([]float64, elems)}
	for i := range msg.Payload {
		msg.Payload[i] = float64(i) * 1e-3
	}
	buf, err := transport.Encode(nil, msg)
	if err != nil {
		return 0, 0, err
	}
	rd := bytes.NewReader(buf)
	br := bufio.NewReaderSize(rd, 1<<16)
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf, benchErr = transport.Encode(buf[:0], msg)
			if benchErr != nil {
				return
			}
			rd.Reset(buf)
			br.Reset(rd)
			out, err := transport.ReadMessage(br)
			if err != nil {
				benchErr = err
				return
			}
			transport.PutPayload(out.Payload)
			transport.PutIndices(out.Indices)
		}
	})
	if benchErr != nil {
		return 0, 0, benchErr
	}
	return res.NsPerOp(), res.AllocsPerOp(), nil
}

// benchFramingRate measures the sustained one-way message rate between two
// TCP mesh ranks: the sender floods SendOwned frames (exercising frame
// coalescing and the writev path), the receiver drains and recycles.
func benchFramingRate(elems int) (msgsPerSec, mbPerSec float64, err error) {
	meshes, err := transport.NewTCPCluster(2)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(elems * 8))
		b.ResetTimer()
		errCh := make(chan error, 1)
		go func() {
			for i := 0; i < b.N; i++ {
				p := transport.GetPayload(elems)
				for j := range p {
					p[j] = float64(j)
				}
				if err := meshes[0].SendOwned(1, transport.Message{
					Type: transport.MsgChunk, Iter: int64(i), Payload: p,
				}); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}()
		for i := 0; i < b.N; i++ {
			msg, err := meshes[1].Recv(0)
			if err != nil {
				benchErr = err
				break
			}
			transport.PutPayload(msg.Payload)
		}
		if err := <-errCh; err != nil && benchErr == nil {
			benchErr = err
		}
	})
	if benchErr != nil {
		return 0, 0, benchErr
	}
	if s := res.T.Seconds(); s > 0 {
		msgsPerSec = float64(res.N) / s
		mbPerSec = float64(res.Bytes) * float64(res.N) / 1e6 / s
	}
	return msgsPerSec, mbPerSec, nil
}

// benchFramingSmallTCP measures one small-dim TCP ring AllReduce point with
// the same body the seed numbers were recorded with.
func benchFramingSmallTCP(dim int) (int64, error) {
	meshes, err := transport.NewTCPCluster(framingRanks)
	if err != nil {
		return 0, err
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	vecs := make([]tensor.Vector, framingRanks)
	for i := range vecs {
		vecs[i] = tensor.New(dim)
		for j := range vecs[i] {
			vecs[i][j] = float64(i + j)
		}
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			done := make(chan error, framingRanks)
			for _, m := range meshes {
				m := m
				go func() {
					done <- collective.AllReduceWith(m, int64(i), vecs[m.Rank()], collective.OpAverage, collective.AlgoRing)
				}()
			}
			for range meshes {
				if err := <-done; err != nil && benchErr == nil {
					benchErr = err
				}
			}
		}
	})
	if benchErr != nil {
		return 0, benchErr
	}
	return res.NsPerOp(), nil
}

// runFramingSweep fills the framing section of the report and derives its
// three gates.
func runFramingSweep(rep *collectiveBenchReport) error {
	const reps = 3
	for _, elems := range framingPayloadElems {
		fmt.Fprintf(os.Stderr, "collective bench: framing codec %dB payload...\n", elems*8)
		row := framingRow{
			PayloadBytes: elems * 8,
			FrameBytes:   transport.FrameBytes(elems),
		}
		row.HeaderPct = 100 * float64(row.FrameBytes-row.PayloadBytes) / float64(row.FrameBytes)
		for r := 0; r < reps; r++ {
			ns, allocs, err := benchFramingCodec(elems)
			if err != nil {
				return err
			}
			if r == 0 || ns < row.EncodeDecodeNs {
				row.EncodeDecodeNs = ns
			}
			if r == 0 || allocs > row.AllocsPerOp {
				row.AllocsPerOp = allocs // keep the WORST rep: the gate is 0
			}
		}
		for r := 0; r < reps; r++ {
			msgs, mb, err := benchFramingRate(elems)
			if err != nil {
				return err
			}
			if msgs > row.MsgsPerSec {
				row.MsgsPerSec = msgs
				row.MBPerSec = mb
			}
		}
		rep.Framing = append(rep.Framing, row)
		if row.PayloadBytes == 256<<10 {
			rep.GateFramingHeaderPct = row.HeaderPct
		}
		if row.AllocsPerOp > rep.GateFramingAllocsPerOp {
			rep.GateFramingAllocsPerOp = row.AllocsPerOp
		}
	}

	for _, dim := range []int{128, 512, 2048, 4096} {
		fmt.Fprintf(os.Stderr, "collective bench: framing e2e TCP ring n%d dim%d...\n", framingRanks, dim)
		var best int64
		for r := 0; r < 5; r++ {
			ns, err := benchFramingSmallTCP(dim)
			if err != nil {
				return err
			}
			if r == 0 || ns < best {
				best = ns
			}
		}
		row := framingSmallRow{Dim: dim, SeedNs: framingSeedSmallTCP[dim], CurrentNs: best}
		row.Speedup = float64(row.SeedNs) / float64(row.CurrentNs)
		rep.FramingSmallTCP = append(rep.FramingSmallTCP, row)
		if dim*8 > 4<<10 {
			continue // reported, but outside the <= 4 KiB gate
		}
		if rep.GateFramingSmallSpeedup == 0 || row.Speedup < rep.GateFramingSmallSpeedup {
			rep.GateFramingSmallSpeedup = row.Speedup
		}
	}
	return nil
}
