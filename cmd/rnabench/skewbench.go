package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/collective"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// Skew sweep: the heterogeneity-aware weighted exchange vs the equal-chunk
// ring on an asymmetric emulated fabric (per-peer paced TCP loopback, one
// slow rank). The engine is given NO rate hints — it discovers the skew
// from its own send timings and re-plans online; each row records the rates
// it actually measured alongside the plan it converged to.

// skewRow is one (dim) point of the skew sweep.
type skewRow struct {
	Ranks int `json:"ranks"`
	Dim   int `json:"dim"`
	// LinkSkew is the configured fast:slow link-rate ratio;
	// FastLinkMBps the fast rate (the slow rank runs at fast/skew).
	LinkSkew     float64 `json:"link_skew"`
	FastLinkMBps float64 `json:"fast_link_mb_per_sec"`
	// EqualRingNs / SkewNs are the fastest timed rounds of the plain ring
	// and the converged skew engine on the same fabric; Speedup is their
	// ratio.
	EqualRingNs int64   `json:"equal_ring_ns"`
	SkewNs      int64   `json:"skew_ns"`
	Speedup     float64 `json:"speedup"`
	// MeasuredLinkMBps are the per-rank mean outgoing rates the planning
	// rank gathered for the last epoch (the inputs the plan was derived
	// from), and PlanWeights the mean-normalized weight vector it
	// converged to.
	MeasuredLinkMBps []float64 `json:"measured_link_rates_mb_per_sec"`
	PlanWeights      []float64 `json:"plan_weights"`
}

var (
	skewRanks = 8
	skewRatio = 4.0
	// skewFastRateCap bounds the fast-link pacing; 400 MB/s leaves loopback
	// CPU headroom so the pacing stays honest.
	skewFastRateCap = 400e6
	// skewDims spans 256 KiB – 16 MiB of fp64 payload.
	skewDims = []int{1 << 15, 1 << 17, 1 << 19, 1 << 21}
	// skewWarmups lets the EWMA converge before timing; skewReps timed
	// rounds, keep the fastest.
	skewWarmups = 6
	skewReps    = 3
	// skewConvergeCap bounds the convergence probe; the gate requires the
	// plan to be within 5% of the oracle by iteration 20.
	skewConvergeCap = 30
)

// skewFastRateFor picks the fast-link rate for a dim so serialization delay
// stays dominant at every point of the sweep: ~200 B/s per element puts the
// slow-link ring at roughly 280 ms per round regardless of dim, far above
// the few milliseconds of per-round synchronization overhead that would
// otherwise flatten the small-payload points into the latency-bound regime
// (where the gate comparison measures scheduler noise, not link skew). Each
// row records the rate it ran at (FastLinkMBps).
func skewFastRateFor(dim int) float64 {
	rate := 200 * float64(dim)
	if rate > skewFastRateCap {
		rate = skewFastRateCap
	}
	return rate
}

// newSkewCluster builds an n-rank TCP cluster where every rank's outgoing
// links run at fast B/s except the last rank's, which run at fast/skew.
func newSkewCluster(n int, fast, skew float64) ([]*transport.TCPMesh, error) {
	meshes, err := transport.NewTCPCluster(n)
	if err != nil {
		return nil, err
	}
	for _, m := range meshes {
		rate := fast
		if m.Rank() == n-1 {
			rate = fast / skew
		}
		for to := 0; to < n; to++ {
			if to == m.Rank() {
				continue
			}
			if err := m.SetPeerLinkRate(to, rate); err != nil {
				for _, c := range meshes {
					_ = c.Close()
				}
				return nil, err
			}
		}
	}
	return meshes, nil
}

// timeSkewRound runs one SPMD round over the cluster and returns wall ns.
func timeSkewRound(meshes []*transport.TCPMesh, vecs []tensor.Vector, run func(m *transport.TCPMesh, v tensor.Vector) error) (int64, error) {
	for i := range vecs {
		for j := range vecs[i] {
			vecs[i][j] = float64(i%5) + float64(j%11)*1e-3
		}
	}
	done := make(chan error, len(meshes))
	start := time.Now()
	for _, m := range meshes {
		m := m
		go func() { done <- run(m, vecs[m.Rank()]) }()
	}
	var firstErr error
	for range meshes {
		if err := <-done; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return time.Since(start).Nanoseconds(), firstErr
}

// oracleWeights is the mean-normalized weight vector of the configured
// fabric: n−1 fast ranks at `skew`× the slow rank's rate.
func oracleWeights(n int, skew float64) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = skew
		if i == n-1 {
			w[i] = 1
		}
		sum += w[i]
	}
	mean := sum / float64(n)
	for i := range w {
		w[i] /= mean
	}
	return w
}

// weightsWithinPct reports whether every mean-normalized weight is within
// pct percent of the oracle's.
func weightsWithinPct(got, oracle []float64, pct float64) bool {
	if len(got) != len(oracle) {
		return false
	}
	for i := range got {
		if math.Abs(got[i]-oracle[i]) > pct/100*oracle[i] {
			return false
		}
	}
	return true
}

// runSkewConvergence counts the iterations the online re-planner needs on a
// fresh engine (no rate hints, replan every call) until its plan weights
// are within 5% of the oracle fabric's, up to skewConvergeCap.
func runSkewConvergence(dim int) (int, error) {
	n := skewRanks
	meshes, err := newSkewCluster(n, skewFastRateFor(dim), skewRatio)
	if err != nil {
		return 0, err
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	engines := make([]*collective.SkewEngine, n)
	for _, m := range meshes {
		e, err := collective.NewSkewEngine(m, collective.SkewOptions{})
		if err != nil {
			return 0, err
		}
		defer e.Close()
		engines[m.Rank()] = e
	}
	vecs := make([]tensor.Vector, n)
	for i := range vecs {
		vecs[i] = tensor.New(dim)
	}
	oracle := oracleWeights(n, skewRatio)
	for it := 1; it <= skewConvergeCap; it++ {
		if _, err := timeSkewRound(meshes, vecs, func(m *transport.TCPMesh, v tensor.Vector) error {
			return engines[m.Rank()].AllReduce(int64(it), v, collective.OpAverage)
		}); err != nil {
			return 0, fmt.Errorf("skew convergence iter %d: %w", it, err)
		}
		if weightsWithinPct(engines[0].Partition().Weights, oracle, 5) {
			return it, nil
		}
	}
	return 0, fmt.Errorf("skew plan not within 5%% of oracle after %d iterations (weights %v, oracle %v)",
		skewConvergeCap, engines[0].Partition().Weights, oracle)
}

// runSkewSweep measures equal ring vs skew engine at every dim and derives
// the two skew gates.
func runSkewSweep(rep *collectiveBenchReport) error {
	n := skewRanks
	for _, dim := range skewDims {
		fast := skewFastRateFor(dim)
		fmt.Fprintf(os.Stderr, "collective bench: skew n%d dim%d (TCP, %.0f:%.0f MB/s links)...\n",
			n, dim, fast/1e6, fast/skewRatio/1e6)
		meshes, err := newSkewCluster(n, fast, skewRatio)
		if err != nil {
			return err
		}
		vecs := make([]tensor.Vector, n)
		for i := range vecs {
			vecs[i] = tensor.New(dim)
		}
		row := skewRow{
			Ranks: n, Dim: dim, LinkSkew: skewRatio,
			FastLinkMBps: fast / 1e6,
		}
		// Equal-chunk ring baseline on the same fabric.
		for r := 0; r <= skewReps; r++ { // rep 0 warms the connections
			ns, err := timeSkewRound(meshes, vecs, func(m *transport.TCPMesh, v tensor.Vector) error {
				return collective.RingAllReduce(m, int64(r), v, collective.OpAverage)
			})
			if err != nil {
				closeAll(meshes)
				return fmt.Errorf("skew bench ring n%d dim%d: %w", n, dim, err)
			}
			if r > 0 && (row.EqualRingNs == 0 || ns < row.EqualRingNs) {
				row.EqualRingNs = ns
			}
		}
		// Skew engine: warm up until the online plan settles, then time.
		engines := make([]*collective.SkewEngine, n)
		enginesErr := func() error {
			for _, m := range meshes {
				e, err := collective.NewSkewEngine(m, collective.SkewOptions{})
				if err != nil {
					return err
				}
				engines[m.Rank()] = e
			}
			return nil
		}()
		if enginesErr != nil {
			closeAll(meshes)
			return enginesErr
		}
		iter := int64(100)
		for r := 0; r < skewWarmups+skewReps; r++ {
			ns, err := timeSkewRound(meshes, vecs, func(m *transport.TCPMesh, v tensor.Vector) error {
				return engines[m.Rank()].AllReduce(iter, v, collective.OpAverage)
			})
			iter++
			if err != nil {
				closeAll(meshes)
				return fmt.Errorf("skew bench engine n%d dim%d: %w", n, dim, err)
			}
			if r >= skewWarmups && (row.SkewNs == 0 || ns < row.SkewNs) {
				row.SkewNs = ns
			}
		}
		// Record what the engine measured and planned: rank 0's gathered
		// rate snapshot is the full per-rank vector the plan was derived
		// from (the numbers behind each row).
		rates := engines[0].LastRates()
		row.MeasuredLinkMBps = make([]float64, len(rates))
		for i, r := range rates {
			row.MeasuredLinkMBps[i] = r / 1e6
		}
		row.PlanWeights = append([]float64(nil), engines[0].Partition().Weights...)
		for _, e := range engines {
			e.Close()
		}
		closeAll(meshes)
		row.Speedup = float64(row.EqualRingNs) / float64(row.SkewNs)
		rep.Skew = append(rep.Skew, row)
		fmt.Fprintf(os.Stderr, "collective bench: skew n%d dim%d ring %.1fms skew %.1fms (%.2fx)\n",
			n, dim, float64(row.EqualRingNs)/1e6, float64(row.SkewNs)/1e6, row.Speedup)
		if dim == 1<<15 {
			rep.GateSkewSpeedup = row.Speedup
		}
	}
	iters, err := runSkewConvergence(1 << 15)
	if err != nil {
		return err
	}
	rep.GateSkewConvergeIters = iters
	return nil
}

func closeAll(meshes []*transport.TCPMesh) {
	for _, m := range meshes {
		_ = m.Close()
	}
}

// smokeSkew is the bench-smoke slice: a 4-rank TCP cluster at 3:1 link
// skew, the engine converged onto an unequal plan, and the result asserted
// BIT-IDENTICAL to the in-memory equal-chunk ring on the same inputs — the
// partition must never change the numbers.
func smokeSkew() error {
	const n, dim = 4, 1 << 14
	const fast, ratio = 100e6, 3.0
	meshes, err := newSkewCluster(n, fast, ratio)
	if err != nil {
		return err
	}
	defer closeAll(meshes)
	engines := make([]*collective.SkewEngine, n)
	for _, m := range meshes {
		e, err := collective.NewSkewEngine(m, collective.SkewOptions{})
		if err != nil {
			return err
		}
		defer e.Close()
		engines[m.Rank()] = e
	}
	vecs := make([]tensor.Vector, n)
	for i := range vecs {
		vecs[i] = tensor.New(dim)
	}
	// Let the online planner observe the fabric and go non-uniform.
	for it := 0; it < 5; it++ {
		if _, err := timeSkewRound(meshes, vecs, func(m *transport.TCPMesh, v tensor.Vector) error {
			return engines[m.Rank()].AllReduce(int64(it), v, collective.OpAverage)
		}); err != nil {
			return fmt.Errorf("skew smoke warmup: %w", err)
		}
	}
	part := engines[0].Partition()
	if part.Uniform() {
		return fmt.Errorf("skew smoke: engine still uniform after warmup (weights %v)", part.Weights)
	}
	// One more timed round on fixed inputs, then the reference ring on an
	// in-memory mesh over the same inputs.
	skewVecs := make([]tensor.Vector, n)
	ringVecs := make([]tensor.Vector, n)
	for i := range skewVecs {
		skewVecs[i] = tensor.New(dim)
		ringVecs[i] = tensor.New(dim)
		for j := range skewVecs[i] {
			skewVecs[i][j] = float64(i%5) + float64(j%11)*1e-3
			ringVecs[i][j] = skewVecs[i][j]
		}
	}
	done := make(chan error, n)
	for _, m := range meshes {
		m := m
		go func() { done <- engines[m.Rank()].AllReduce(99, skewVecs[m.Rank()], collective.OpAverage) }()
	}
	for range meshes {
		if err := <-done; err != nil {
			return fmt.Errorf("skew smoke round: %w", err)
		}
	}
	net, err := transport.NewLocalNetwork(n)
	if err != nil {
		return err
	}
	defer func() { _ = net.Close() }()
	for _, m := range net.Endpoints() {
		m := m
		go func() { done <- collective.RingAllReduce(m, 99, ringVecs[m.Rank()], collective.OpAverage) }()
	}
	for range net.Endpoints() {
		if err := <-done; err != nil {
			return fmt.Errorf("skew smoke ring reference: %w", err)
		}
	}
	for r := 0; r < n; r++ {
		for j := 0; j < dim; j++ {
			if math.Float64bits(skewVecs[r][j]) != math.Float64bits(ringVecs[r][j]) {
				return fmt.Errorf("skew smoke: rank %d not bit-identical to ring at [%d]: %x vs %x",
					r, j, math.Float64bits(skewVecs[r][j]), math.Float64bits(ringVecs[r][j]))
			}
		}
	}
	return nil
}

// smokeRingRegression is the benchmark-regression guard: re-measure the
// uniform-fabric in-memory ring at the recorded n8/dim262144 acceptance
// point and fail if it lands more than 10% above the ns/op recorded in
// BENCH_collective.json. Min-of-reps damps scheduler noise; a missing or
// unreadable JSON (fresh checkout mid-rework) skips the guard rather than
// failing CI on infrastructure.
func smokeRingRegression(benchPath string) error {
	recorded, err := recordedRingNs(benchPath, 8, 1<<18)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-smoke: ring regression guard skipped (%v)\n", err)
		return nil
	}
	var best int64
	for r := 0; r < 5; r++ {
		res, err := benchRing("RingAllReduce", 8, 1<<18, func(m transport.Mesh, iter int64, v tensor.Vector) error {
			return collective.RingAllReduce(m, iter, v, collective.OpAverage)
		})
		if err != nil {
			return err
		}
		if best == 0 || res.NsPerOp < best {
			best = res.NsPerOp
		}
	}
	if float64(best) > 1.10*float64(recorded) {
		return fmt.Errorf("uniform-fabric ring regressed: %d ns/op vs recorded %d ns/op (>10%%)", best, recorded)
	}
	fmt.Fprintf(os.Stderr, "bench-smoke: ring regression guard ok (%d ns/op vs recorded %d)\n", best, recorded)
	return nil
}

// recordedRingNs pulls the current RingAllReduce ns/op at (ranks, dim) from
// the recorded benchmark JSON.
func recordedRingNs(path string, ranks, dim int) (int64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var rep collectiveBenchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return 0, err
	}
	for _, c := range rep.Current {
		if c.Name == "RingAllReduce" && c.Ranks == ranks && c.Dim == dim {
			return c.NsPerOp, nil
		}
	}
	return 0, fmt.Errorf("no recorded RingAllReduce n%d dim%d row in %s", ranks, dim, path)
}
