// Command rnabench regenerates the paper's tables and figures.
//
// Usage:
//
//	rnabench -list
//	rnabench [-scale 1.0] [-seed 1] [-workers 8] fig6 table3 ...
//	rnabench all
//	rnabench -calibrate [-calibration CALIBRATION_collective.json]
//	rnabench -collective [-collective-out BENCH_collective.json] [-calibration CALIBRATION_collective.json]
//	rnabench -train [-train-out BENCH_train.json]
//	rnabench -ps [-collective-out BENCH_collective.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	rna "repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rnabench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rnabench", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list experiment IDs and exit")
		scale   = fs.Float64("scale", 1.0, "iteration-budget scale in (0,1]")
		seed    = fs.Int64("seed", 1, "random seed")
		workers = fs.Int("workers", 0, "override cluster size (0 = experiment default)")
		jsonOut = fs.Bool("json", false, "emit the reports as a JSON array on stdout")

		collectiveBench = fs.Bool("collective", false, "run the AllReduce micro-benchmarks (per-algorithm sweep + crossover table) and write BENCH_collective.json")
		collectiveOut   = fs.String("collective-out", "BENCH_collective.json", "output path for -collective")

		calibrate       = fs.Bool("calibrate", false, "fit the per-algorithm alpha-beta cost model on this machine and write it to -calibration")
		calibrationPath = fs.String("calibration", "CALIBRATION_collective.json", "cost-model file: written by -calibrate, loaded by -collective when present")
		calRanks        = fs.Int("calibrate-ranks", 16, "mesh size for -calibrate probes")
		calSmall        = fs.Int("calibrate-small", 1024, "latency-dominated probe dim for -calibrate")
		calLarge        = fs.Int("calibrate-large", 1<<16, "bandwidth-dominated probe dim for -calibrate")
		calRounds       = fs.Int("calibrate-rounds", 30, "timed collectives averaged per -calibrate probe")

		trainBench = fs.Bool("train", false, "run the training-engine benchmarks and write BENCH_train.json")
		trainOut   = fs.String("train-out", "BENCH_train.json", "output path for -train")

		psBench = fs.Bool("ps", false, "run only the parameter-server sweep (push-pull throughput vs group count, in-memory + TCP, f64 + f16 wires) and merge its rows into -collective-out")

		benchSmoke = fs.Bool("bench-smoke", false, "run a tiny end-to-end overlap benchmark (real workers over TCP, bit-identity asserted) without writing any JSON; CI wiring check")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *calibrate {
		return runCalibrate(*calibrationPath, *calRanks, *calSmall, *calLarge, *calRounds)
	}
	if *collectiveBench {
		return runCollectiveBench(*collectiveOut, *calibrationPath)
	}
	if *trainBench {
		return runTrainBench(*trainOut)
	}
	if *psBench {
		return runPSBench(*collectiveOut)
	}
	if *benchSmoke {
		return runBenchSmoke()
	}
	if *list {
		for _, id := range rna.ExperimentIDs() {
			title, err := rna.ExperimentTitle(id)
			if err != nil {
				return err
			}
			fmt.Printf("%-20s %s\n", id, title)
		}
		return nil
	}
	ids := fs.Args()
	if len(ids) == 0 {
		fs.Usage()
		return fmt.Errorf("no experiments given (use -list to see IDs, or 'all')")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = rna.ExperimentIDs()
	}
	opts := rna.ExperimentOptions{Seed: *seed, Scale: *scale, Workers: *workers}
	var reports []*rna.ExperimentReport
	for _, id := range ids {
		rep, err := rna.RunExperiment(id, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *jsonOut {
			reports = append(reports, rep)
			continue
		}
		fmt.Printf("=== %s: %s ===\n\n%s\n", rep.ID, rep.Title, rep.Body)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(reports)
	}
	return nil
}
