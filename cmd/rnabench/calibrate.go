package main

import (
	"fmt"
	"os"

	"repro/internal/collective"
)

// Calibration mode: rnabench -calibrate probes each AllReduce algorithm at a
// latency-dominated and a bandwidth-dominated size on this machine, fits the
// per-algorithm α–β constants, and persists them. rnabench -collective (and
// any program that calls collective.LoadCalibration + SetCostModel) then
// drives the auto-selector with the fitted model instead of the shipped
// defaults.
func runCalibrate(outPath string, ranks, smallDim, largeDim, rounds int) error {
	fmt.Fprintf(os.Stderr, "calibrate: probing ring / halving-doubling / tree...\n")
	cal, err := collective.Calibrate(ranks, smallDim, largeDim, rounds)
	if err != nil {
		return err
	}
	if err := cal.Save(outPath); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "calibrate: %d ranks, dims %d/%d, %d rounds -> %s\n",
		cal.Ranks, cal.SmallDim, cal.LargeDim, cal.Rounds, outPath)
	for _, row := range []struct {
		name string
		c    collective.AlgoCost
	}{
		{"ring", cal.Model.Ring},
		{"halving-doubling", cal.Model.HalvingDoubling},
		{"tree", cal.Model.Tree},
	} {
		fmt.Fprintf(os.Stderr, "calibrate: %-17s alpha=%.0fns beta=%.3fns/B\n",
			row.name, row.c.AlphaNs, row.c.BetaNsPerByte)
	}
	// Link classes (probed at >= 8 ranks): level l of a multi-level
	// schedule is priced with Links[l], so the level planner can tell a
	// near group from a far one.
	for l, c := range cal.Model.Links {
		fmt.Fprintf(os.Stderr, "calibrate: link class %d      alpha=%.0fns beta=%.3fns/B\n",
			l, c.AlphaNs, c.BetaNsPerByte)
	}
	return nil
}

// loadCalibrationIfPresent installs a persisted calibration into the
// auto-selector and reports where the model came from. A missing file is not
// an error — the shipped defaults apply. A calibration fitted on a
// differently shaped host (GOMAXPROCS/NumCPU fingerprint mismatch) is
// rejected with a warning instead of silently driving the selector with a
// stale fit.
func loadCalibrationIfPresent(path string) (string, error) {
	cal, err := collective.LoadCalibration(path)
	if err != nil {
		if os.IsNotExist(err) {
			return "default", nil
		}
		return "", err
	}
	if !cal.FingerprintMatches() {
		gmp, ncpu := collective.HostFingerprint()
		fmt.Fprintf(os.Stderr,
			"warning: %s was calibrated on GOMAXPROCS=%d NumCPU=%d but this host is GOMAXPROCS=%d NumCPU=%d; "+
				"using built-in constants (re-run `rnabench -calibrate`)\n",
			path, cal.GoMaxProcs, cal.NumCPU, gmp, ncpu)
		return "default (stale calibration rejected)", nil
	}
	collective.SetCostModel(cal.Model)
	return path, nil
}
