package main

import (
	"os"
	"testing"
)

// TestFramingProbe is a manual probe of the framing sweep (set
// RNABENCH_FRAMING_PROBE=1 to run); CI skips it.
func TestFramingProbe(t *testing.T) {
	if os.Getenv("RNABENCH_FRAMING_PROBE") == "" {
		t.Skip("probe only")
	}
	var rep collectiveBenchReport
	if err := runFramingSweep(&rep); err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Framing {
		t.Logf("payload %dB frame %dB header %.3f%% codec %dns allocs %d rate %.0f msg/s %.1f MB/s",
			row.PayloadBytes, row.FrameBytes, row.HeaderPct, row.EncodeDecodeNs, row.AllocsPerOp, row.MsgsPerSec, row.MBPerSec)
	}
	for _, row := range rep.FramingSmallTCP {
		t.Logf("dim %d seed %dns current %dns speedup %.2fx", row.Dim, row.SeedNs, row.CurrentNs, row.Speedup)
	}
	t.Logf("gates: small %.2fx allocs %d header %.3f%%",
		rep.GateFramingSmallSpeedup, rep.GateFramingAllocsPerOp, rep.GateFramingHeaderPct)
}
