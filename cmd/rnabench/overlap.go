package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/collective"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// Overlap benchmark: real core BSP workers over a TCP cluster paced to an
// emulated commodity link, A/B-ing the reducer pipeline (bucket collectives
// launched during backprop) against the sequential reference schedule
// (identical bucket plan, each collective joined before the next launches).
// Both variants run the same data path, so the measured gap is purely the
// comm/compute overlap — and the final parameters must match bitwise, which
// the harness asserts on every point.

// overlapBenchRow is one (model, fusion, link) point of the overlap sweep.
type overlapBenchRow struct {
	Model    string  `json:"model"`
	Ranks    int     `json:"ranks"`
	Dim      int     `json:"dim"`
	Buckets  int     `json:"buckets"`
	FusionKB int     `json:"fusion_kb"`
	LinkMBps float64 `json:"link_mbps"`
	// SeqMsPerIter / OverlapMsPerIter are wall-clock per training step
	// (slowest rank), sequential vs pipelined schedule.
	SeqMsPerIter     float64 `json:"seq_ms_per_iter"`
	OverlapMsPerIter float64 `json:"overlap_ms_per_iter"`
	Speedup          float64 `json:"speedup"`
	// MaxInFlight is the peak number of concurrently in-flight bucket
	// collectives on one mesh (max across ranks).
	MaxInFlight int `json:"max_in_flight"`
}

// overlapPoint describes one sweep configuration.
type overlapPoint struct {
	name              string
	ranks             int
	features, hidden  int
	classes, perClass int
	batch             int
	fusionBytes       int
	iters             int
	linkRate          float64 // bytes/s outbound per connection; 0 = unthrottled
	gate              bool    // this point feeds the acceptance gates
}

// overlapSweep: bucket size x model size x link rate. The gate point is the
// large comm-bound MLP on the 500 Mbit/s emulated link (wireLinkRate), where
// hiding the reduction behind the backward pass must buy >= 1.3x.
var overlapSweep = []overlapPoint{
	// MLP-large, 500 Mbit/s: the comm-bound acceptance point, at two fusion
	// thresholds to show the bucket-size tradeoff.
	{name: "mlp-large", ranks: 4, features: 256, hidden: 512, classes: 16, perClass: 40,
		batch: 96, fusionBytes: 128 << 10, iters: 10, linkRate: wireLinkRate, gate: true},
	{name: "mlp-large", ranks: 4, features: 256, hidden: 512, classes: 16, perClass: 40,
		batch: 96, fusionBytes: 512 << 10, iters: 10, linkRate: wireLinkRate},
	// MLP-small on the same link: little to hide, overlap should be ~neutral.
	{name: "mlp-small", ranks: 4, features: 64, hidden: 64, classes: 8, perClass: 40,
		batch: 64, fusionBytes: 32 << 10, iters: 10, linkRate: wireLinkRate},
	// MLP-large on unthrottled loopback: compute-bound regime.
	{name: "mlp-large", ranks: 4, features: 256, hidden: 512, classes: 16, perClass: 40,
		batch: 96, fusionBytes: 128 << 10, iters: 10, linkRate: 0},
}

const overlapBenchReps = 3

// buildOverlapConfig constructs the shared worker config and reports the
// bucket-plan size for the point.
func buildOverlapConfig(p overlapPoint) (core.TrainConfig, int, error) {
	ds, err := data.Blobs(rng.New(7), p.classes, p.features, p.perClass, 0.3)
	if err != nil {
		return core.TrainConfig{}, 0, err
	}
	m, err := model.NewMLP(ds, p.hidden)
	if err != nil {
		return core.TrainConfig{}, 0, err
	}
	cfg := core.TrainConfig{
		Model:       m,
		Batch:       func(src *rng.Source) []int { return ds.Batch(src, p.batch) },
		LR:          0.05,
		Momentum:    0.9,
		Iterations:  p.iters,
		Seed:        42,
		Overlap:     true,
		FusionBytes: p.fusionBytes,
	}
	plan := model.PlanBuckets(model.Buckets(m), p.fusionBytes)
	if err := model.ValidateBuckets(plan, m.Dim()); err != nil {
		return core.TrainConfig{}, 0, err
	}
	return cfg, len(plan), nil
}

// runOverlapWorkers runs p.ranks BSP workers over a fresh TCP cluster and
// returns the slowest rank's wall-clock, the peak in-flight gauge, and rank
// 0's final parameters (for the bit-identity assertion).
func runOverlapWorkers(p overlapPoint, cfg core.TrainConfig) (time.Duration, int, tensor.Vector, error) {
	meshes, err := transport.NewTCPCluster(p.ranks)
	if err != nil {
		return 0, 0, nil, err
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	if p.linkRate > 0 {
		for _, m := range meshes {
			m.SetLinkRate(p.linkRate)
		}
	}
	ctrl, err := controller.New(controller.AllReady, p.ranks, 0, 1)
	if err != nil {
		return 0, 0, nil, err
	}
	results := make([]*core.Result, p.ranks)
	errs := make([]error, p.ranks)
	done := make(chan int, p.ranks)
	start := time.Now()
	for i, m := range meshes {
		i, m := i, m
		go func() {
			results[i], errs[i] = core.RunBSPWorker(m, ctrl, cfg)
			done <- i
		}()
	}
	for range meshes {
		<-done
	}
	elapsed := time.Since(start)
	maxInFlight := 0
	for i := range meshes {
		if errs[i] != nil {
			return 0, 0, nil, errs[i]
		}
		if results[i].MaxInFlight > maxInFlight {
			maxInFlight = results[i].MaxInFlight
		}
	}
	return elapsed, maxInFlight, results[0].Params, nil
}

// benchOverlapPoint measures one sweep point, keeping the fastest of
// overlapBenchReps runs per schedule, and asserts the two schedules agree
// bitwise on the final parameters.
func benchOverlapPoint(p overlapPoint) (overlapBenchRow, error) {
	cfg, buckets, err := buildOverlapConfig(p)
	if err != nil {
		return overlapBenchRow{}, err
	}
	var (
		seqBest, overBest time.Duration
		maxInFlight       int
		seqParams         tensor.Vector
	)
	for r := 0; r < overlapBenchReps; r++ {
		seqCfg := cfg
		seqCfg.OverlapSerial = true
		seqT, _, sp, err := runOverlapWorkers(p, seqCfg)
		if err != nil {
			return overlapBenchRow{}, fmt.Errorf("%s sequential: %w", p.name, err)
		}
		overT, inFlight, op, err := runOverlapWorkers(p, cfg)
		if err != nil {
			return overlapBenchRow{}, fmt.Errorf("%s overlapped: %w", p.name, err)
		}
		if r == 0 {
			seqParams = sp
		}
		for j := range sp {
			if sp[j] != op[j] {
				return overlapBenchRow{}, fmt.Errorf("%s: overlapped params diverge from sequential at [%d]: %v vs %v",
					p.name, j, op[j], sp[j])
			}
			if sp[j] != seqParams[j] {
				return overlapBenchRow{}, fmt.Errorf("%s: sequential run not reproducible at [%d]", p.name, j)
			}
		}
		if r == 0 || seqT < seqBest {
			seqBest = seqT
		}
		if r == 0 || overT < overBest {
			overBest = overT
		}
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
	}
	iters := float64(p.iters)
	row := overlapBenchRow{
		Model: p.name, Ranks: p.ranks, Dim: cfg.Model.Dim(), Buckets: buckets,
		FusionKB: p.fusionBytes >> 10, LinkMBps: p.linkRate / 1e6,
		SeqMsPerIter:     float64(seqBest.Microseconds()) / 1e3 / iters,
		OverlapMsPerIter: float64(overBest.Microseconds()) / 1e3 / iters,
		Speedup:          float64(seqBest) / float64(overBest),
		MaxInFlight:      maxInFlight,
	}
	return row, nil
}

// runOverlapSweep measures every sweep point and derives the two acceptance
// gates from the gate point: overlapped >= 1.3x over the sequential schedule,
// with >= 2 bucket collectives concurrently in flight on one mesh.
func runOverlapSweep(rep *collectiveBenchReport) error {
	for _, p := range overlapSweep {
		link := "unthrottled"
		if p.linkRate > 0 {
			link = fmt.Sprintf("%.0f MB/s emulated link", p.linkRate/1e6)
		}
		fmt.Fprintf(os.Stderr, "collective bench: overlap %s n%d fusion %dKB (%s)...\n",
			p.name, p.ranks, p.fusionBytes>>10, link)
		row, err := benchOverlapPoint(p)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "collective bench: overlap %s: seq %.1fms/iter, overlapped %.1fms/iter (%.2fx, %d buckets, %d in flight)\n",
			p.name, row.SeqMsPerIter, row.OverlapMsPerIter, row.Speedup, row.Buckets, row.MaxInFlight)
		rep.Overlap = append(rep.Overlap, row)
		if p.gate {
			rep.GateOverlapSpeedup = row.Speedup
			rep.GateOverlapInFlight = row.MaxInFlight
		}
	}
	return nil
}

// smokeCompression exercises one tiny compressed collective so the smoke run
// touches the wire-dtype path too.
func smokeCompression() error {
	meshes, err := transport.NewTCPCluster(2)
	if err != nil {
		return err
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	done := make(chan error, len(meshes))
	for _, m := range meshes {
		m := m
		go func() {
			v := tensor.New(256)
			for j := range v {
				v[j] = float64(m.Rank()+j) * 1e-3
			}
			res := tensor.New(256)
			done <- collective.AllReduceOpts(m, 0, v, collective.OpAverage, collective.Options{
				Compression: tensor.F16, Residual: res,
			})
		}()
	}
	for range meshes {
		if err := <-done; err != nil {
			return err
		}
	}
	return nil
}

// runBenchSmoke is the CI smoke mode: one tiny overlap point end to end (real
// workers, TCP, multi-bucket plan, bit-identity assertion) plus a compressed
// collective, with no JSON written. It validates the benchmark harness wiring
// in seconds, not minutes.
func runBenchSmoke() error {
	p := overlapPoint{
		name: "smoke", ranks: 2, features: 32, hidden: 48, classes: 4, perClass: 20,
		batch: 16, fusionBytes: 8 << 10, iters: 3, linkRate: 0,
	}
	cfg, buckets, err := buildOverlapConfig(p)
	if err != nil {
		return err
	}
	if buckets < 2 {
		return fmt.Errorf("bench-smoke: plan collapsed to %d bucket(s); want a multi-bucket pipeline", buckets)
	}
	seqCfg := cfg
	seqCfg.OverlapSerial = true
	_, _, sp, err := runOverlapWorkers(p, seqCfg)
	if err != nil {
		return fmt.Errorf("bench-smoke sequential: %w", err)
	}
	_, inFlight, op, err := runOverlapWorkers(p, cfg)
	if err != nil {
		return fmt.Errorf("bench-smoke overlapped: %w", err)
	}
	for j := range sp {
		if sp[j] != op[j] {
			return fmt.Errorf("bench-smoke: overlapped params diverge at [%d]", j)
		}
	}
	if err := smokeCompression(); err != nil {
		return fmt.Errorf("bench-smoke compression: %w", err)
	}
	if err := smokeScaling(); err != nil {
		return fmt.Errorf("bench-smoke scaling: %w", err)
	}
	if err := smokeSkew(); err != nil {
		return fmt.Errorf("bench-smoke skew: %w", err)
	}
	if err := smokeRingRegression("BENCH_collective.json"); err != nil {
		return fmt.Errorf("bench-smoke ring regression: %w", err)
	}
	if err := smokeSharded(); err != nil {
		return fmt.Errorf("bench-smoke sharded: %w", err)
	}
	fmt.Fprintf(os.Stderr, "bench-smoke: ok (%d buckets, %d in flight, 64-rank multi-level bit-identical, skew engine bit-identical to ring, sharded Adam bit-identical to replicated, params bit-identical)\n", buckets, inFlight)
	return nil
}
