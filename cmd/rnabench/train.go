package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/trainsim"
	"repro/internal/workload"
)

// Training-engine benchmark mode: rnabench -train re-measures the model
// gradient kernels and the end-to-end simulation engines with
// testing.Benchmark and writes BENCH_train.json, mirroring the collective
// harness: the checked-in seed numbers make regressions (and the parallel
// engine's speedup) a diff instead of an anecdote.

// trainBenchCase is one measured configuration.
type trainBenchCase struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// trainBenchReport is the BENCH_train.json schema.
type trainBenchReport struct {
	// GOMAXPROCS records the parallelism available to the run: the
	// trainsim speedup gate is only meaningful above 1.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Seed are the checked-in numbers from the serial engine at the seed
	// commit, measured with identical benchmark bodies.
	Seed []trainBenchCase `json:"seed_baseline"`
	// Current are the numbers measured by this run.
	Current []trainBenchCase `json:"current"`
	// GateModelSpeedup is seed vs current single-thread MLP gradient time
	// (the vectorized-backprop gain, independent of core count).
	GateModelSpeedup float64 `json:"gate_model_gradient_speedup"`
	// GateTrainsimSpeedup is the parallel engine's wall-clock gain over
	// the serial engine on the BSP benchmark in THIS run (≥2x expected on
	// a multi-core machine). At GOMAXPROCS=1 the gate is OMITTED — a
	// single core cannot demonstrate fan-out speedup, and recording the
	// inevitable ~1.0 as a "gate" would read as a regression — and
	// ParallelGateNote says why.
	GateTrainsimSpeedup float64 `json:"gate_trainsim_parallel_speedup,omitempty"`
	// ParallelGateNote explains an omitted parallel gate.
	ParallelGateNote string `json:"parallel_gate_note,omitempty"`
	// GateShardedAdamSpeedup is the owner-computes path's end-to-end gain
	// over the replicated baseline — real 8-rank core.RunBSPWorker runs
	// with Adam on the MLP. The replicated path runs the fused ring
	// AllReduce and every rank steps the optimizer over dim; the sharded
	// path runs the decomposed ring halves with each owner stepping dim/8
	// between them. The bar is >= 1.2.
	GateShardedAdamSpeedup float64 `json:"gate_sharded_adam_speedup"`
	// OptStateBytesReplicated / OptStateBytesShardedMax record each
	// path's per-rank optimizer state; OptStateReduction is their ratio
	// (~N for N uniform ranks — the ZeRO-style memory win).
	OptStateBytesReplicated int64   `json:"opt_state_bytes_replicated_per_rank"`
	OptStateBytesShardedMax int64   `json:"opt_state_bytes_sharded_max_per_rank"`
	OptStateReduction       float64 `json:"opt_state_reduction"`
}

// trainSeedBaseline holds the seed-commit measurements of the identical
// benchmark bodies (serial engine, scalar model inner loops).
var trainSeedBaseline = []trainBenchCase{
	{Name: "ModelGradient/Logistic", NsPerOp: 42819, BytesPerOp: 80, AllocsPerOp: 1},
	{Name: "ModelGradient/MLP", NsPerOp: 429401, BytesPerOp: 1104, AllocsPerOp: 3},
	{Name: "ModelGradient/LinReg", NsPerOp: 6534, BytesPerOp: 0, AllocsPerOp: 0},
	{Name: "ModelLoss/MLP", NsPerOp: 197906, BytesPerOp: 592, AllocsPerOp: 2},
	{Name: "Trainsim/BSP/serial", NsPerOp: 25029167, BytesPerOp: 433457, AllocsPerOp: 4604},
	{Name: "Trainsim/RNA/serial", NsPerOp: 14583790, BytesPerOp: 2290715, AllocsPerOp: 4823},
}

// trainBenchBatch matches the model-package benchmarks.
const trainBenchBatch = 64

func benchCase(name string, body func(b *testing.B)) trainBenchCase {
	res := testing.Benchmark(body)
	return trainBenchCase{
		Name:        name,
		NsPerOp:     res.NsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
}

// benchGradient measures one model's Gradient over a fixed batch.
func benchGradient(name string, m model.Model, ds *data.Dataset) trainBenchCase {
	src := rng.New(3)
	params := tensor.New(m.Dim())
	m.Init(src, params)
	grad := tensor.New(m.Dim())
	batch := ds.Batch(src, trainBenchBatch)
	return benchCase(name, func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Gradient(params, grad, batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// trainsimBenchConfig mirrors benchConfig in the trainsim benchmarks: an MLP
// heavy enough that gradient computation dominates round bookkeeping.
func trainsimBenchConfig(strategy trainsim.Strategy, parallelism int) (trainsim.Config, error) {
	src := rng.New(11)
	ds, err := data.Blobs(src, 10, 32, 100, 0.3)
	if err != nil {
		return trainsim.Config{}, err
	}
	m, err := model.NewMLP(ds, 32)
	if err != nil {
		return trainsim.Config{}, err
	}
	return trainsim.Config{
		Strategy:      strategy,
		Workers:       8,
		Model:         m,
		Dataset:       ds,
		BatchSize:     32,
		LR:            0.1,
		Momentum:      0.9,
		Step:          workload.Balanced{Base: 100 * time.Millisecond, Jitter: 0.05},
		Spec:          workload.ResNet56(),
		Comm:          workload.DefaultComm(),
		MaxIterations: 15,
		EvalEvery:     1 << 30,
		Seed:          23,
		Parallelism:   parallelism,
	}, nil
}

func benchTrainsim(name string, strategy trainsim.Strategy, parallelism int) (trainBenchCase, error) {
	cfg, err := trainsimBenchConfig(strategy, parallelism)
	if err != nil {
		return trainBenchCase{}, err
	}
	var benchErr error
	c := benchCase(name, func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := trainsim.Run(cfg); err != nil {
				benchErr = err
				b.Fatal(err)
			}
		}
	})
	return c, benchErr
}

// runTrainBench measures the recorded configurations and writes the JSON
// report to outPath.
func runTrainBench(outPath string) error {
	src := rng.New(2)
	blobs, err := data.Blobs(src, 10, 32, 100, 0.3)
	if err != nil {
		return err
	}
	logit, err := model.NewLogistic(blobs)
	if err != nil {
		return err
	}
	mlp, err := model.NewMLP(blobs, 64)
	if err != nil {
		return err
	}
	linDS, _, err := data.LinearData(src, 64, 512, 0.1)
	if err != nil {
		return err
	}
	lin, err := model.NewLinearRegression(linDS)
	if err != nil {
		return err
	}

	rep := trainBenchReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Seed: trainSeedBaseline}
	progress := func(name string) { fmt.Fprintf(os.Stderr, "train bench: %s...\n", name) }

	progress("ModelGradient/Logistic")
	rep.Current = append(rep.Current, benchGradient("ModelGradient/Logistic", logit, blobs))
	progress("ModelGradient/MLP")
	rep.Current = append(rep.Current, benchGradient("ModelGradient/MLP", mlp, blobs))
	progress("ModelGradient/LinReg")
	rep.Current = append(rep.Current, benchGradient("ModelGradient/LinReg", lin, linDS))

	progress("ModelLoss/MLP")
	{
		params := tensor.New(mlp.Dim())
		mlp.Init(rng.New(3), params)
		batch := blobs.Batch(rng.New(4), trainBenchBatch)
		rep.Current = append(rep.Current, benchCase("ModelLoss/MLP", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mlp.Loss(params, batch); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	engines := []struct {
		name        string
		strategy    trainsim.Strategy
		parallelism int
	}{
		{"Trainsim/BSP/serial", trainsim.Horovod, 1},
		{"Trainsim/BSP/parallel", trainsim.Horovod, 0},
		{"Trainsim/RNA/serial", trainsim.RNA, 1},
		{"Trainsim/RNA/parallel", trainsim.RNA, 0},
	}
	for _, e := range engines {
		progress(e.name)
		c, err := benchTrainsim(e.name, e.strategy, e.parallelism)
		if err != nil {
			return err
		}
		rep.Current = append(rep.Current, c)
	}

	cur := func(name string) int64 {
		for _, c := range rep.Current {
			if c.Name == name {
				return c.NsPerOp
			}
		}
		return 0
	}
	seed := func(name string) int64 {
		for _, c := range rep.Seed {
			if c.Name == name {
				return c.NsPerOp
			}
		}
		return 0
	}
	if ns := cur("ModelGradient/MLP"); ns > 0 {
		rep.GateModelSpeedup = float64(seed("ModelGradient/MLP")) / float64(ns)
	}
	// The parallel-speedup gate is only meaningful when there is
	// parallelism to demonstrate: on a single-core host the fan-out
	// engine is correct but cannot be faster, so the gate is refused
	// rather than recorded as a spurious ~1.0.
	if rep.GOMAXPROCS <= 1 {
		rep.ParallelGateNote = "gate_trainsim_parallel_speedup omitted: GOMAXPROCS=1 — the parallel engine cannot demonstrate speedup on one core"
	} else if ns := cur("Trainsim/BSP/parallel"); ns > 0 {
		rep.GateTrainsimSpeedup = float64(cur("Trainsim/BSP/serial")) / float64(ns)
	}
	if err := runShardedTrainBench(&rep); err != nil {
		return err
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	parallelNote := fmt.Sprintf("trainsim parallel %.2fx vs serial", rep.GateTrainsimSpeedup)
	if rep.ParallelGateNote != "" {
		parallelNote = "parallel gate omitted (GOMAXPROCS=1)"
	}
	fmt.Fprintf(os.Stderr, "train bench: wrote %s (GOMAXPROCS=%d, model gradient %.2fx vs seed, %s)\n",
		outPath, rep.GOMAXPROCS, rep.GateModelSpeedup, parallelNote)
	fmt.Fprintf(os.Stderr, "train bench: sharded Adam %.2fx vs replicated at 8 ranks (gate >= 1.2), opt state %d -> %d bytes/rank (%.1fx reduction)\n",
		rep.GateShardedAdamSpeedup, rep.OptStateBytesReplicated, rep.OptStateBytesShardedMax, rep.OptStateReduction)
	return nil
}
