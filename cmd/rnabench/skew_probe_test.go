package main

import (
	"os"
	"testing"
)

// TestSkewProbe is a manual probe of the skew sweep (set
// RNABENCH_SKEW_PROBE=1 to run); CI skips it.
func TestSkewProbe(t *testing.T) {
	if os.Getenv("RNABENCH_SKEW_PROBE") == "" {
		t.Skip("probe only")
	}
	var rep collectiveBenchReport
	if err := runSkewSweep(&rep); err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Skew {
		t.Logf("n%d dim %d ring %.1fms skew %.1fms speedup %.2fx rates %v weights %v",
			row.Ranks, row.Dim, float64(row.EqualRingNs)/1e6, float64(row.SkewNs)/1e6,
			row.Speedup, row.MeasuredLinkMBps, row.PlanWeights)
	}
	t.Logf("gates: speedup %.2fx at 256KiB (>= 1.4), converged in %d iters (<= 20)",
		rep.GateSkewSpeedup, rep.GateSkewConvergeIters)
	if rep.GateSkewSpeedup < 1.4 {
		t.Errorf("skew speedup gate failed: %.2fx < 1.4x", rep.GateSkewSpeedup)
	}
	if rep.GateSkewConvergeIters > 20 || rep.GateSkewConvergeIters == 0 {
		t.Errorf("convergence gate failed: %d iters", rep.GateSkewConvergeIters)
	}
}
