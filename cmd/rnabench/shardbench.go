package main

import (
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/collective"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// Sharded owner-computes benchmarks: the half-collective sweep recorded in
// BENCH_collective.json, the end-to-end sharded-vs-replicated Adam sweep
// recorded in BENCH_train.json, and the bench-smoke bit-identity slice.

// shardSweepPoint is the bandwidth-bound acceptance point of the composed
// RS+AG gate (matches the RingAllReduce n8 acceptance case).
var shardSweepPoint = struct{ n, dim int }{8, 1 << 18}

const shardSweepReps = 5

// runShardSweep measures ReduceScatter, AllGather, their composition, and
// the fused pipelined ring at the acceptance point, and derives the
// composed-ratio gate: carving the AllReduce into its two halves (what the
// sharded optimizer path runs) must stay within 10% of the fused schedule.
func runShardSweep(rep *collectiveBenchReport) error {
	n, dim := shardSweepPoint.n, shardSweepPoint.dim
	bodies := []struct {
		name string
		body func(m transport.Mesh, iter int64, v tensor.Vector) error
	}{
		{"ReduceScatter", func(m transport.Mesh, iter int64, v tensor.Vector) error {
			return collective.ReduceScatter(m, iter, v, collective.OpAverage, nil)
		}},
		{"AllGather", func(m transport.Mesh, iter int64, v tensor.Vector) error {
			return collective.AllGather(m, iter, v, nil, collective.Options{})
		}},
		{"ReduceScatter+AllGather", func(m transport.Mesh, iter int64, v tensor.Vector) error {
			if err := collective.ReduceScatter(m, iter, v, collective.OpAverage, nil); err != nil {
				return err
			}
			return collective.AllGather(m, iter, v, nil, collective.Options{})
		}},
		{"RingAllReduce/fused", func(m transport.Mesh, iter int64, v tensor.Vector) error {
			return collective.RingAllReduce(m, iter, v, collective.OpAverage)
		}},
	}
	ns := map[string]int64{}
	for _, c := range bodies {
		fmt.Fprintf(os.Stderr, "collective bench: sharded %s n%d dim%d...\n", c.name, n, dim)
		var best collectiveBenchCase
		for r := 0; r < shardSweepReps; r++ {
			res, err := benchRing(c.name, n, dim, c.body)
			if err != nil {
				return err
			}
			if r == 0 || res.NsPerOp < best.NsPerOp {
				best = res
			}
		}
		rep.Sharded = append(rep.Sharded, best)
		ns[c.name] = best.NsPerOp
	}
	if fused := ns["RingAllReduce/fused"]; fused > 0 {
		rep.GateShardedComposedRatio = float64(ns["ReduceScatter+AllGather"]) / float64(fused)
	}
	return nil
}

// shardTrainConfig is the end-to-end sweep's model: an MLP whose parameter
// vector (71178 elements) makes the full-vector Adam step a visible share
// of the round, with a single-example batch so the gradient does not drown
// it — the regime where owner-computes pays: every rank steps dim/8 elements
// instead of all 8 ranks redundantly stepping dim.
func shardTrainConfig(sharded bool, iters int) (core.TrainConfig, error) {
	src := rng.New(31)
	ds, err := data.Blobs(src, 10, 128, 40, 0.3)
	if err != nil {
		return core.TrainConfig{}, err
	}
	m, err := model.NewMLP(ds, 512)
	if err != nil {
		return core.TrainConfig{}, err
	}
	return core.TrainConfig{
		Model:          m,
		Batch:          func(s *rng.Source) []int { return ds.Batch(s, 1) },
		LR:             0.005,
		Iterations:     iters,
		StalenessBound: 2,
		Seed:           42,
		Adam:           true,
		Algorithm:      collective.AlgoRing, // same schedule on both paths
		ShardedUpdate:  sharded,
	}, nil
}

// timeShardTrainRun runs one full 8-rank BSP training over the in-memory
// mesh and returns the wall time and the largest per-rank optimizer state.
func timeShardTrainRun(sharded bool, iters int) (time.Duration, int64, error) {
	const n = 8
	cfg, err := shardTrainConfig(sharded, iters)
	if err != nil {
		return 0, 0, err
	}
	ctrl, err := controller.New(controller.AllReady, n, 0, 1)
	if err != nil {
		return 0, 0, err
	}
	net, err := transport.NewLocalNetwork(n)
	if err != nil {
		return 0, 0, err
	}
	defer func() { _ = net.Close() }()
	eps := net.Endpoints()
	results := make([]*core.Result, n)
	errs := make([]error, n)
	done := make(chan int, n)
	start := time.Now()
	for i := range eps {
		i := i
		go func() {
			results[i], errs[i] = core.RunBSPWorker(eps[i], ctrl, cfg)
			done <- i
		}()
	}
	for range eps {
		<-done
	}
	wall := time.Since(start)
	var maxState int64
	for i, err := range errs {
		if err != nil {
			return 0, 0, fmt.Errorf("rank %d: %w", i, err)
		}
		if results[i].OptStateBytes > maxState {
			maxState = results[i].OptStateBytes
		}
	}
	return wall, maxState, nil
}

const (
	shardTrainIters = 10
	shardTrainReps  = 3
)

// runShardedTrainBench measures replicated vs sharded Adam with real core
// workers (min of reps, after one warmup each) and fills the train report's
// sharded rows and gates.
func runShardedTrainBench(rep *trainBenchReport) error {
	measure := func(name string, sharded bool) (trainBenchCase, int64, error) {
		fmt.Fprintf(os.Stderr, "train bench: %s...\n", name)
		if _, _, err := timeShardTrainRun(sharded, 2); err != nil { // warmup
			return trainBenchCase{}, 0, err
		}
		var best time.Duration
		var state int64
		for r := 0; r < shardTrainReps; r++ {
			wall, s, err := timeShardTrainRun(sharded, shardTrainIters)
			if err != nil {
				return trainBenchCase{}, 0, err
			}
			if r == 0 || wall < best {
				best = wall
			}
			state = s
		}
		return trainBenchCase{Name: name, NsPerOp: best.Nanoseconds() / shardTrainIters}, state, nil
	}
	repl, replState, err := measure("CoreBSP/Adam/replicated", false)
	if err != nil {
		return err
	}
	shard, shardState, err := measure("CoreBSP/Adam/sharded", true)
	if err != nil {
		return err
	}
	rep.Current = append(rep.Current, repl, shard)
	if shard.NsPerOp > 0 {
		rep.GateShardedAdamSpeedup = float64(repl.NsPerOp) / float64(shard.NsPerOp)
	}
	rep.OptStateBytesReplicated = replState
	rep.OptStateBytesShardedMax = shardState
	if shardState > 0 {
		rep.OptStateReduction = float64(replState) / float64(shardState)
	}
	return nil
}

// smokeSharded is the bench-smoke slice of the sharded path: a real 4-rank
// TCP cluster trains with replicated Adam, then with sharded Adam under
// uniform and 3:1-skewed ownership, and every rank's parameters must match
// the replicated run bit for bit.
func smokeSharded() error {
	const n, iters = 4, 8
	src := rng.New(77)
	ds, err := data.Blobs(src, 4, 6, 40, 0.25)
	if err != nil {
		return err
	}
	m, err := model.NewLogistic(ds)
	if err != nil {
		return err
	}
	base := core.TrainConfig{
		Model:          m,
		Batch:          func(s *rng.Source) []int { return ds.Batch(s, 16) },
		LR:             0.05,
		Iterations:     iters,
		StalenessBound: 2,
		Seed:           42,
		Adam:           true,
		Algorithm:      collective.AlgoRing,
	}
	run := func(cfg core.TrainConfig) ([]*core.Result, error) {
		ctrl, err := controller.New(controller.AllReady, n, 0, 1)
		if err != nil {
			return nil, err
		}
		meshes, err := transport.NewTCPCluster(n)
		if err != nil {
			return nil, err
		}
		defer func() {
			for _, m := range meshes {
				_ = m.Close()
			}
		}()
		results := make([]*core.Result, n)
		errs := make([]error, n)
		done := make(chan int, n)
		for i := range meshes {
			i := i
			go func() {
				results[i], errs[i] = core.RunBSPWorker(meshes[i], ctrl, cfg)
				done <- i
			}()
		}
		for range meshes {
			<-done
		}
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("rank %d: %w", i, err)
			}
		}
		return results, nil
	}
	repl, err := run(base)
	if err != nil {
		return fmt.Errorf("replicated: %w", err)
	}
	for _, weights := range [][]float64{nil, {3, 1, 1, 1}} {
		cfg := base
		cfg.ShardedUpdate = true
		cfg.ShardWeights = weights
		shard, err := run(cfg)
		if err != nil {
			return fmt.Errorf("sharded (weights %v): %w", weights, err)
		}
		for r := range shard {
			for j := range repl[0].Params {
				if math.Float64bits(shard[r].Params[j]) != math.Float64bits(repl[0].Params[j]) {
					return fmt.Errorf("sharded (weights %v): rank %d diverges from replicated at [%d]", weights, r, j)
				}
			}
		}
	}
	return nil
}
