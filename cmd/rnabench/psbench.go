package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"repro/internal/collective"
	"repro/internal/ps"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// psModelElems is the PS sweep's model size: 32768 f64 elements = 256 KiB,
// the acceptance point of the parameter-server rework.
const psModelElems = 1 << 15

// psOpsPerGroup is how many push-pull exchanges every group performs per
// timed row.
const psOpsPerGroup = 64

// psSweepGroups are the concurrent group counts of the sweep.
var psSweepGroups = []int{1, 2, 4, 8}

// psRow is one parameter-server throughput measurement: `groups`
// concurrent leaders each driving push-pull exchanges of a 256 KiB model,
// reported as aggregate payload throughput (push + pull bytes per wall
// second across all groups).
type psRow struct {
	Groups     int     `json:"groups"`
	Transport  string  `json:"transport"` // "mem" (in-process) or "tcp"
	Wire       string  `json:"wire"`      // wire dtype of the tcp rows
	ModelBytes int64   `json:"model_bytes"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	MBPerSec   float64 `json:"mb_per_sec"`
	// SeedMBPerSec is the seed ps.Store (single RWMutex entry, scalar
	// average, clone under lock) driven by the identical op schedule —
	// the baseline column of the mem rows (0 elsewhere).
	SeedMBPerSec float64 `json:"seed_mb_per_sec,omitempty"`
}

// seedPSStore reimplements the seed commit's ps.Store push-pull path: one
// entry guarded by a mutex, the update applied in place and the result
// cloned while the lock is held. It is the baseline the rework's gate
// measures against.
type seedPSStore struct {
	mu    sync.Mutex
	value tensor.Vector
}

func (s *seedPSStore) pushPull(value tensor.Vector) (tensor.Vector, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.value == nil {
		s.value = value.Clone()
		return s.value.Clone(), nil
	}
	if err := s.value.Add(value); err != nil {
		return nil, err
	}
	return s.value.Clone(), nil
}

// psAggMBPerSec converts `groups`×`ops` push-pull exchanges of `elems`
// f64 elements in `dur` into aggregate MB/s (push + pull payload).
func psAggMBPerSec(groups, ops, elems int, dur time.Duration) float64 {
	if dur <= 0 {
		return 0
	}
	bytes := float64(groups) * float64(ops) * 2 * float64(elems) * 8
	return bytes / 1e6 / dur.Seconds()
}

// benchSeedStore drives the seed baseline with the same concurrency and op
// count as the mem row.
func benchSeedStore(groups int) (float64, error) {
	store := &seedPSStore{}
	init := tensor.New(psModelElems)
	if _, err := store.pushPull(init); err != nil {
		return 0, err
	}
	var wg sync.WaitGroup
	errs := make([]error, groups)
	start := time.Now()
	for g := 0; g < groups; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			delta := tensor.New(psModelElems)
			delta.Fill(float64(g + 1))
			for i := 0; i < psOpsPerGroup; i++ {
				if _, err := store.pushPull(delta); err != nil {
					errs[g] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	dur := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return psAggMBPerSec(groups, psOpsPerGroup, psModelElems, dur), nil
}

// benchMemStore drives the reworked chunk-sharded store in process: each
// group leader exchanges chunk-by-chunk against the shared snapshot store,
// exactly the decomposition the networked server applies, so concurrent
// groups interleave on disjoint chunk entries instead of serializing on
// one lock. Results come back through the zero-copy lease path — the seed
// baseline cannot offer one, because its buffer mutates in place and must
// be cloned while the lock is held.
func benchMemStore(groups int) (float64, error) {
	chunks := ps.DefaultChunks
	offsets, err := collective.ShardOffsets(psModelElems, chunks, nil)
	if err != nil {
		return 0, err
	}
	store := ps.NewStore(chunks)
	keys := make([]string, chunks)
	init := tensor.New(psModelElems)
	for c := 0; c < chunks; c++ {
		keys[c] = fmt.Sprintf("%s#%d", "bench-model", c)
		if _, err := store.Push(keys[c], init[offsets[c]:offsets[c+1]], ps.Overwrite); err != nil {
			return 0, err
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, groups)
	start := time.Now()
	for g := 0; g < groups; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			delta := tensor.New(psModelElems)
			delta.Fill(float64(g + 1))
			for i := 0; i < psOpsPerGroup; i++ {
				for c := 0; c < chunks; c++ {
					lo, hi := offsets[c], offsets[c+1]
					lease, err := store.PushPullLease(keys[c], delta[lo:hi], ps.Add, 0)
					if err != nil {
						errs[g] = err
						return
					}
					lease.Release()
				}
			}
		}()
	}
	wg.Wait()
	dur := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return psAggMBPerSec(groups, psOpsPerGroup, psModelElems, dur), nil
}

// benchTCPPS runs `groups` networked clients against one dedicated PS rank
// over real TCP at the given wire dtype.
func benchTCPPS(groups int, wire tensor.Dtype) (float64, error) {
	meshes, err := transport.NewTCPCluster(groups + 1)
	if err != nil {
		return 0, err
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	serverRank := groups
	init := tensor.New(psModelElems)
	srv, err := ps.NewServer(meshes[serverRank], ps.ServerConfig{
		Key: "bench-model", Dim: psModelElems, Init: init,
	})
	if err != nil {
		return 0, err
	}
	var wg sync.WaitGroup
	errs := make([]error, groups)
	start := time.Now()
	for g := 0; g < groups; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := ps.NewClient(meshes[g], ps.ClientConfig{
				Servers: []int{serverRank}, Key: "bench-model", Dim: psModelElems, Wire: wire,
			})
			if err != nil {
				errs[g] = err
				return
			}
			delta := tensor.New(psModelElems)
			delta.Fill(float64(g + 1))
			for i := 0; i < psOpsPerGroup; i++ {
				if _, _, err := cli.PushPull(delta, ps.Add, 0); err != nil {
					errs[g] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	dur := time.Since(start)
	for _, m := range meshes {
		_ = m.Close()
	}
	if err := srv.Wait(); err != nil {
		return 0, err
	}
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return psAggMBPerSec(groups, psOpsPerGroup, psModelElems, dur), nil
}

// psBitwiseTCPCheck verifies the protocol-level bit-identity gate: an
// ordered sequence of chunked f64 push-pulls through a TCP client must
// leave bitwise-identical results to the same whole-vector sequence
// against the in-process store (the loopback fast path).
func psBitwiseTCPCheck() (bool, error) {
	const dim = 4096
	const rounds = 6
	init := tensor.New(dim)
	for i := range init {
		init[i] = math.Sqrt(float64(i + 1))
	}
	// Loopback reference.
	store := ps.NewStore(1)
	if _, err := store.Push("m", init, ps.Overwrite); err != nil {
		return false, err
	}
	ref := make([]tensor.Vector, rounds)
	for r := 0; r < rounds; r++ {
		delta := tensor.New(dim)
		for i := range delta {
			delta[i] = math.Sin(float64(r*dim + i))
		}
		out, _, err := store.PushPull("m", delta, ps.Add)
		if err != nil {
			return false, err
		}
		ref[r] = out
	}
	// Same sequence over TCP.
	meshes, err := transport.NewTCPCluster(2)
	if err != nil {
		return false, err
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	srv, err := ps.NewServer(meshes[1], ps.ServerConfig{Key: "m", Dim: dim, Init: init})
	if err != nil {
		return false, err
	}
	cli, err := ps.NewClient(meshes[0], ps.ClientConfig{Servers: []int{1}, Key: "m", Dim: dim})
	if err != nil {
		return false, err
	}
	ok := true
	for r := 0; r < rounds; r++ {
		delta := tensor.New(dim)
		for i := range delta {
			delta[i] = math.Sin(float64(r*dim + i))
		}
		out, _, err := cli.PushPull(delta, ps.Add, 0)
		if err != nil {
			return false, err
		}
		for i := range out {
			if math.Float64bits(out[i]) != math.Float64bits(ref[r][i]) {
				ok = false
			}
		}
	}
	for _, m := range meshes {
		_ = m.Close()
	}
	if err := srv.Wait(); err != nil {
		return false, err
	}
	return ok, nil
}

// runPSSweep fills the report's parameter-server rows and gates: aggregate
// push-pull throughput by concurrent group count for the in-process
// snapshot store (vs the seed store's single-lock baseline) and for the
// networked TCP service at f64 and f16 wires.
func runPSSweep(rep *collectiveBenchReport) error {
	const modelBytes = psModelElems * 8
	for _, groups := range psSweepGroups {
		fmt.Fprintf(os.Stderr, "ps bench: mem groups=%d...\n", groups)
		seedMBps, err := benchSeedStore(groups)
		if err != nil {
			return err
		}
		memMBps, err := benchMemStore(groups)
		if err != nil {
			return err
		}
		rep.PS = append(rep.PS, psRow{
			Groups: groups, Transport: "mem", Wire: "f64", ModelBytes: modelBytes,
			OpsPerSec: memMBps * 1e6 / (2 * modelBytes), MBPerSec: memMBps,
			SeedMBPerSec: seedMBps,
		})
		if groups == 8 && seedMBps > 0 {
			rep.GatePSSpeedup = memMBps / seedMBps
		}
		for _, wire := range []tensor.Dtype{tensor.F64, tensor.F16} {
			fmt.Fprintf(os.Stderr, "ps bench: tcp groups=%d wire=%v...\n", groups, wire)
			mbps, err := benchTCPPS(groups, wire)
			if err != nil {
				return err
			}
			rep.PS = append(rep.PS, psRow{
				Groups: groups, Transport: "tcp", Wire: wire.String(), ModelBytes: modelBytes,
				OpsPerSec: mbps * 1e6 / (2 * modelBytes), MBPerSec: mbps,
			})
		}
	}
	fmt.Fprintf(os.Stderr, "ps bench: tcp bitwise check...\n")
	ok, err := psBitwiseTCPCheck()
	if err != nil {
		return err
	}
	rep.GatePSBitwise = ok
	return nil
}

// runPSBench is the standalone -ps entry point: it runs only the PS sweep
// and merges the ps rows and gates into an existing BENCH_collective.json
// (or creates a report holding just them), leaving every other section
// untouched.
func runPSBench(outPath string) error {
	var rep collectiveBenchReport
	if raw, err := os.ReadFile(outPath); err == nil {
		if err := json.Unmarshal(raw, &rep); err != nil {
			return fmt.Errorf("parsing existing %s: %w", outPath, err)
		}
		fmt.Fprintf(os.Stderr, "ps bench: merging into existing %s\n", outPath)
	} else if !os.IsNotExist(err) {
		return err
	}
	rep.PS = nil
	if err := runPSSweep(&rep); err != nil {
		return err
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ps bench: gate 8-group speedup %.2fx (bar >= 2.0), tcp bitwise %v\n",
		rep.GatePSSpeedup, rep.GatePSBitwise)
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	return nil
}
