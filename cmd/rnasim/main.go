// Command rnasim runs free-form virtual-time cluster simulations: pick a
// strategy, a paper workload, a heterogeneity pattern and a cluster size,
// and get timing plus convergence results in seconds of wall time.
//
// Usage:
//
//	rnasim -strategy rna -workload LSTM -workers 16 -hetero uniform -iters 500
//	rnasim -strategy horovod -workload VGG16 -hetero mixed -target 0.4
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	rna "repro"
	"repro/internal/data"
	"repro/internal/hetero"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trainsim"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rnasim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rnasim", flag.ContinueOnError)
	var (
		strategy = fs.String("strategy", "rna", "rna, rna-h, horovod, eager, solo, adpsgd")
		wl       = fs.String("workload", "ResNet50", "ResNet50, VGG16, ResNet56, LSTM, Transformer, InceptionV3")
		workers  = fs.Int("workers", 8, "cluster size")
		het      = fs.String("hetero", "uniform", "none, uniform, mixed, spikes")
		iters    = fs.Int("iters", 500, "max synchronization rounds")
		target   = fs.Float64("target", 0, "stop at this training loss (0 = disabled)")
		probes   = fs.Int("probes", 2, "RNA probe count")
		bound    = fs.Int("bound", 2, "staleness bound")
		seed     = fs.Int64("seed", 1, "random seed")
		showTrc  = fs.Bool("trace", false, "print the execution timeline")
		curveOut = fs.String("curve", "", "write the convergence curve (time_ms,iter,loss,acc) to this CSV file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var strat rna.Strategy
	switch *strategy {
	case "rna":
		strat = rna.RNA
	case "rna-h":
		strat = rna.RNAHierarchical
	case "horovod":
		strat = rna.Horovod
	case "eager":
		strat = rna.EagerSGD
	case "solo":
		strat = rna.EagerSGDSolo
	case "adpsgd":
		strat = rna.ADPSGD
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}

	spec, err := workload.ByName(*wl)
	if err != nil {
		return err
	}
	var step workload.StepSampler
	switch spec.Name {
	case "LSTM":
		step = workload.VideoBatchSampler()
	case "Transformer":
		step = workload.SentenceBatchSampler(spec.BaseStep)
	default:
		step = workload.Balanced{Base: spec.BaseStep, Jitter: 0.05}
	}

	var inj hetero.Injector
	switch *het {
	case "none":
		inj = hetero.None{}
	case "uniform":
		inj = hetero.UniformRandom{Lo: 0, Hi: 50 * time.Millisecond}
	case "mixed":
		inj = hetero.NewMixedGroups(*workers)
	case "spikes":
		inj = hetero.TransientSpikes{P: 0.05, Lo: 100 * time.Millisecond, Hi: 400 * time.Millisecond}
	default:
		return fmt.Errorf("unknown heterogeneity %q", *het)
	}

	src := rng.New(*seed)
	full, err := data.Blobs(src, 10, 8, 60, 0.45)
	if err != nil {
		return err
	}
	train, val, err := full.Split(src, 0.2)
	if err != nil {
		return err
	}
	m, err := model.NewLogistic(train)
	if err != nil {
		return err
	}

	cfg := rna.SimulationConfig{
		Strategy:       strat,
		Workers:        *workers,
		Model:          m,
		Dataset:        train,
		EvalSet:        val,
		BatchSize:      32,
		LR:             0.3,
		Momentum:       0.9,
		WeightDecay:    1e-4,
		Step:           step,
		Spec:           spec,
		Comm:           workload.DefaultComm(),
		Injector:       inj,
		Probes:         *probes,
		StalenessBound: *bound,
		MaxIterations:  *iters,
		TargetLoss:     *target,
		Seed:           *seed,
		CollectTrace:   *showTrc,
	}
	fmt.Printf("simulating %v on %d workers: %s, hetero=%s\n", strat, *workers, spec, inj.Describe())
	wall := time.Now()
	res, err := rna.Simulate(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("completed %d synchronizations in %v virtual time (%v wall)\n",
		res.Iterations, res.VirtualTime.Round(time.Millisecond), time.Since(wall).Round(time.Millisecond))
	fmt.Printf("mean iteration time %v, throughput %.2f it/s, null-contribution rate %.1f%%\n",
		res.MeanIterTime().Round(time.Millisecond), res.Throughput(), res.NullContribRate*100)
	fmt.Printf("final loss %.4f, train accuracy %.1f%%, validation top-1 %.1f%% top-5 %.1f%%\n",
		res.FinalLoss, res.TrainAcc*100, res.ValTop1*100, res.ValTop5*100)
	if res.ReachedTarget {
		fmt.Printf("target loss %.3f reached\n", *target)
	}
	if len(res.Breakdowns) > 0 {
		names := make([]string, len(res.Breakdowns))
		for i := range names {
			names[i] = fmt.Sprintf("w%d", i)
		}
		fmt.Println("\nper-worker time breakdown:")
		fmt.Print(stats.Table(names, res.Breakdowns))
	}
	if *showTrc && res.Trace != nil {
		fmt.Println("\nexecution timeline (first second):")
		fmt.Print(res.Trace.Render(100, time.Second))
	}
	if *curveOut != "" {
		if err := writeCurveCSV(*curveOut, res.Curve); err != nil {
			return err
		}
		fmt.Printf("convergence curve written to %s (%d samples)\n", *curveOut, len(res.Curve))
	}
	return nil
}

// writeCurveCSV dumps the loss/accuracy trajectory for plotting.
func writeCurveCSV(path string, curve []trainsim.Sample) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"time_ms", "iter", "loss", "acc"}); err != nil {
		_ = f.Close()
		return err
	}
	for _, pt := range curve {
		rec := []string{
			strconv.FormatFloat(float64(pt.Time)/float64(time.Millisecond), 'f', 3, 64),
			strconv.Itoa(pt.Iter),
			strconv.FormatFloat(pt.Loss, 'g', -1, 64),
			strconv.FormatFloat(pt.Acc, 'g', -1, 64),
		}
		if err := w.Write(rec); err != nil {
			_ = f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
