package rna

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper (run with `go test -bench=. -benchmem`). Each benchmark
// executes the corresponding experiment at a reduced scale and reports its
// headline metrics via b.ReportMetric, so the paper-vs-measured comparison
// in EXPERIMENTS.md can be regenerated from a single bench run. The
// full-scale tables are printed by `go run ./cmd/rnabench`.

import (
	"testing"

	"repro/internal/collective"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// benchOpts keeps benchmark iterations fast while preserving every
// experiment's qualitative shape.
var benchOpts = ExperimentOptions{Seed: 1, Scale: 0.1}

// runExperimentBench executes one experiment per b.N iteration and reports
// selected metrics from the last run.
func runExperimentBench(b *testing.B, id string, metrics []string) {
	b.Helper()
	var rep *ExperimentReport
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = RunExperiment(id, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range metrics {
		if v, ok := rep.Metrics[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

func BenchmarkFig1Breakdown(b *testing.B) {
	runExperimentBench(b, "fig1", []string{
		"waitfrac/ResNet56/w1", "waitfrac/ResNet56/w3",
	})
}

func BenchmarkFig2LoadImbalance(b *testing.B) {
	runExperimentBench(b, "fig2", []string{"video/mean", "batchms/mean"})
}

func BenchmarkFig3Timeline(b *testing.B) {
	runExperimentBench(b, "fig3", []string{"time/Horovod", "time/RNA"})
}

func BenchmarkFig4CrossIteration(b *testing.B) {
	runExperimentBench(b, "fig4", []string{"nullrate", "trainacc"})
}

func BenchmarkFig6Speedup(b *testing.B) {
	runExperimentBench(b, "fig6", []string{
		"speedup/RNA/ResNet50", "speedup/RNA/VGG16", "speedup/RNA/LSTM",
		"speedup/RNA-H/ResNet50-M",
	})
}

func BenchmarkFig7Convergence(b *testing.B) {
	runExperimentBench(b, "fig7", []string{"time/RNA", "time/Horovod", "acc/RNA"})
}

func BenchmarkFig8Transformer(b *testing.B) {
	runExperimentBench(b, "fig8", []string{
		"periter/homogeneous/RNA", "overall/homogeneous/RNA",
		"periter/heterogeneous/RNA", "overall/heterogeneous/RNA",
	})
}

func BenchmarkFig9Scalability(b *testing.B) {
	runExperimentBench(b, "fig9", []string{
		"throughput/4/RNA", "throughput/32/RNA", "throughput/32/Horovod",
	})
}

func BenchmarkFig10Choices(b *testing.B) {
	runExperimentBench(b, "fig10", []string{
		"median/q1", "median/q2", "ratio/q1q2",
	})
}

func BenchmarkTable3TrainAccuracy(b *testing.B) {
	runExperimentBench(b, "table3", []string{
		"acc/Horovod/ResNet", "acc/RNA/ResNet", "acc/AD-PSGD/ResNet",
	})
}

func BenchmarkTable4Validation(b *testing.B) {
	runExperimentBench(b, "table4", []string{
		"iters/ResNet50/Horovod", "iters/ResNet50/RNA",
		"top1/ResNet50/RNA", "top1/ResNet50/AD-PSGD",
	})
}

func BenchmarkTable5TransmissionCost(b *testing.B) {
	runExperimentBench(b, "table5", []string{
		"measured/ResNet50", "measured/VGG16", "measured/LSTM", "measured/Transformer",
	})
}

func BenchmarkAblationProbes(b *testing.B) {
	runExperimentBench(b, "ablation-probes", []string{"time/q1", "time/q2", "time/q8"})
}

func BenchmarkAblationStalenessBound(b *testing.B) {
	runExperimentBench(b, "ablation-staleness", []string{"acc/b1", "acc/b2", "acc/b8"})
}

func BenchmarkAblationLRScaling(b *testing.B) {
	runExperimentBench(b, "ablation-lrscale", []string{"loss/scaled", "loss/unscaled"})
}

func BenchmarkAblationRingVsNaive(b *testing.B) {
	runExperimentBench(b, "ablation-ring", []string{
		"advantage/VGG16/8", "advantage/VGG16/32",
	})
}

// BenchmarkRingAllReduce measures the real (goroutine) ring AllReduce on
// the in-memory mesh: 4 ranks, 100k-element gradients.
func BenchmarkRingAllReduce(b *testing.B) {
	const n, dim = 4, 100_000
	net, err := transport.NewLocalNetwork(n)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	vecs := make([]tensor.Vector, n)
	for i := range vecs {
		vecs[i] = tensor.New(dim)
	}
	b.SetBytes(int64(dim * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan error, n)
		for r, m := range net.Endpoints() {
			r, m := r, m
			go func() {
				done <- collective.RingAllReduce(m, int64(i), vecs[r], collective.OpAverage)
			}()
		}
		for r := 0; r < n; r++ {
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPartialRingAllReduce measures the partial collective with null
// contributors.
func BenchmarkPartialRingAllReduce(b *testing.B) {
	const n, dim = 4, 100_000
	net, err := transport.NewLocalNetwork(n)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	vecs := make([]tensor.Vector, n)
	for i := range vecs {
		vecs[i] = tensor.New(dim)
	}
	b.SetBytes(int64(dim * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan error, n)
		for r, m := range net.Endpoints() {
			r, m := r, m
			go func() {
				_, err := collective.PartialRingAllReduce(m, int64(i), vecs[r], r%2 == 0)
				done <- err
			}()
		}
		for r := 0; r < n; r++ {
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkGradientLogistic measures the gradient kernel feeding every
// simulation.
func BenchmarkGradientLogistic(b *testing.B) {
	src := rng.New(1)
	ds, err := benchBlobs(src)
	if err != nil {
		b.Fatal(err)
	}
	m, err := model.NewLogistic(ds)
	if err != nil {
		b.Fatal(err)
	}
	params := tensor.New(m.Dim())
	m.Init(src, params)
	grad := tensor.New(m.Dim())
	batch := ds.Batch(src, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Gradient(params, grad, batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedRNAIteration measures one simulated RNA synchronization
// round end to end (8 workers, real gradient math).
func BenchmarkSimulatedRNAIteration(b *testing.B) {
	src := rng.New(1)
	ds, err := benchBlobs(src)
	if err != nil {
		b.Fatal(err)
	}
	m, err := model.NewLogistic(ds)
	if err != nil {
		b.Fatal(err)
	}
	cfg := SimulationConfig{
		Strategy: RNA, Workers: 8, Model: m, Dataset: ds,
		BatchSize: 32, LR: 0.3, Momentum: 0.9,
		Step: simStep{}, Spec: simSpec(),
		MaxIterations: b.N, EvalEvery: 1 << 30, Seed: 3,
	}
	b.ResetTimer()
	if _, err := Simulate(cfg); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFusedAllReduce measures tensor fusion: 50 layer-sized gradients
// reduced through fused buffers (the paper's Horovod baseline enables
// Tensor Fusion, Section 7.3).
func BenchmarkFusedAllReduce(b *testing.B) {
	const n, layers, layerDim = 4, 50, 2000
	net, err := transport.NewLocalNetwork(n)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	perRank := make([][]tensor.Vector, n)
	for r := range perRank {
		perRank[r] = make([]tensor.Vector, layers)
		for i := range perRank[r] {
			perRank[r][i] = tensor.New(layerDim)
		}
	}
	b.SetBytes(int64(layers * layerDim * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan error, n)
		for r, m := range net.Endpoints() {
			r, m := r, m
			go func() {
				done <- collective.FusedAllReduce(m, int64(i), perRank[r], collective.OpAverage, collective.DefaultFusionBytes)
			}()
		}
		for r := 0; r < n; r++ {
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPerTensorAllReduce is the unfused comparison point for
// BenchmarkFusedAllReduce: one ring collective per layer.
func BenchmarkPerTensorAllReduce(b *testing.B) {
	const n, layers, layerDim = 4, 50, 2000
	net, err := transport.NewLocalNetwork(n)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	perRank := make([][]tensor.Vector, n)
	for r := range perRank {
		perRank[r] = make([]tensor.Vector, layers)
		for i := range perRank[r] {
			perRank[r][i] = tensor.New(layerDim)
		}
	}
	b.SetBytes(int64(layers * layerDim * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan error, n)
		for r, m := range net.Endpoints() {
			r, m := r, m
			go func() {
				for l := 0; l < layers; l++ {
					tag := int64(i)*int64(layers) + int64(l)
					if err := collective.RingAllReduce(m, tag, perRank[r][l], collective.OpAverage); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}()
		}
		for r := 0; r < n; r++ {
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		}
	}
}
