// Package hetero injects the heterogeneity the paper studies: dynamic
// per-iteration slowdowns (multi-tenant interference, following Hop's
// methodology as cited in §7.1), deterministic per-node slowdowns (hardware
// differences), mixed two-group clusters (§8.1), and transient spikes.
package hetero

import (
	"fmt"
	"time"

	"repro/internal/rng"
)

// Injector produces an extra delay for a given worker at a given iteration.
// Implementations must be deterministic with respect to the rng.Source they
// are given.
type Injector interface {
	// Delay returns the additional compute delay for worker w at
	// iteration k.
	Delay(src *rng.Source, w, k int) time.Duration
	// Describe returns a short human-readable summary.
	Describe() string
}

// None injects no delay (the homogeneous baseline).
type None struct{}

var _ Injector = None{}

// Delay implements Injector.
func (None) Delay(*rng.Source, int, int) time.Duration { return 0 }

// Describe implements Injector.
func (None) Describe() string { return "none" }

// UniformRandom injects an i.i.d. uniform delay in [Lo, Hi) per worker per
// iteration — the "system delay randomly, which ranges from 0 to 50ms" setup
// of §8.1.
type UniformRandom struct {
	Lo, Hi time.Duration
}

var _ Injector = UniformRandom{}

// Delay implements Injector.
func (u UniformRandom) Delay(src *rng.Source, _, _ int) time.Duration {
	return time.Duration(src.Uniform(float64(u.Lo), float64(u.Hi)))
}

// Describe implements Injector.
func (u UniformRandom) Describe() string {
	return fmt.Sprintf("uniform[%v,%v)", u.Lo, u.Hi)
}

// PerNode injects a fixed deterministic delay per worker — the Fig. 1
// motivation setup injects 10 ms and 40 ms on workers 2 and 3.
type PerNode struct {
	Delays []time.Duration
}

var _ Injector = PerNode{}

// Delay implements Injector.
func (p PerNode) Delay(_ *rng.Source, w, _ int) time.Duration {
	if w < 0 || w >= len(p.Delays) {
		return 0
	}
	return p.Delays[w]
}

// Describe implements Injector.
func (p PerNode) Describe() string { return fmt.Sprintf("per-node%v", p.Delays) }

// MixedGroups models the "mixed heterogeneity" cluster of §8.1: workers in
// SlowSet get a uniform delay from the slow band (50–100 ms in the paper) on
// top of everyone's fast band (0–50 ms).
type MixedGroups struct {
	FastLo, FastHi time.Duration
	SlowLo, SlowHi time.Duration
	// SlowSet marks workers belonging to group B (the slow group).
	SlowSet map[int]bool
}

var _ Injector = MixedGroups{}

// NewMixedGroups builds the paper's configuration: the second half of the
// workers form the slow group, fast band [0,50ms), slow band adds [50,100ms).
func NewMixedGroups(workers int) MixedGroups {
	slow := make(map[int]bool, workers/2)
	for w := workers / 2; w < workers; w++ {
		slow[w] = true
	}
	return MixedGroups{
		FastLo: 0, FastHi: 50 * time.Millisecond,
		SlowLo: 50 * time.Millisecond, SlowHi: 100 * time.Millisecond,
		SlowSet: slow,
	}
}

// Delay implements Injector.
func (m MixedGroups) Delay(src *rng.Source, w, _ int) time.Duration {
	d := time.Duration(src.Uniform(float64(m.FastLo), float64(m.FastHi)))
	if m.SlowSet[w] {
		d += time.Duration(src.Uniform(float64(m.SlowLo), float64(m.SlowHi)))
	}
	return d
}

// Describe implements Injector.
func (m MixedGroups) Describe() string {
	return fmt.Sprintf("mixed(fast=[%v,%v) slow=+[%v,%v) %d slow workers)",
		m.FastLo, m.FastHi, m.SlowLo, m.SlowHi, len(m.SlowSet))
}

// TransientSpikes injects occasional large delays: with probability P a
// worker's iteration is slowed by a uniform draw from [Lo, Hi). It models
// co-located analytics bursts.
type TransientSpikes struct {
	P      float64
	Lo, Hi time.Duration
}

var _ Injector = TransientSpikes{}

// Delay implements Injector.
func (t TransientSpikes) Delay(src *rng.Source, _, _ int) time.Duration {
	if !src.Bernoulli(t.P) {
		return 0
	}
	return time.Duration(src.Uniform(float64(t.Lo), float64(t.Hi)))
}

// Describe implements Injector.
func (t TransientSpikes) Describe() string {
	return fmt.Sprintf("spikes(p=%.2f, [%v,%v))", t.P, t.Lo, t.Hi)
}

// Stack composes injectors additively.
type Stack []Injector

var _ Injector = Stack{}

// Delay implements Injector.
func (s Stack) Delay(src *rng.Source, w, k int) time.Duration {
	var total time.Duration
	for _, inj := range s {
		total += inj.Delay(src, w, k)
	}
	return total
}

// Describe implements Injector.
func (s Stack) Describe() string {
	out := "stack("
	for i, inj := range s {
		if i > 0 {
			out += "+"
		}
		out += inj.Describe()
	}
	return out + ")"
}
