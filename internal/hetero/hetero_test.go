package hetero

import (
	"strings"
	"testing"
	"time"

	"repro/internal/rng"
)

func TestNone(t *testing.T) {
	src := rng.New(1)
	var inj None
	for i := 0; i < 10; i++ {
		if d := inj.Delay(src, i, i); d != 0 {
			t.Fatalf("None delay = %v", d)
		}
	}
	if inj.Describe() != "none" {
		t.Errorf("Describe = %q", inj.Describe())
	}
}

func TestUniformRandomRange(t *testing.T) {
	src := rng.New(2)
	inj := UniformRandom{Lo: 0, Hi: 50 * time.Millisecond}
	var max time.Duration
	for i := 0; i < 5000; i++ {
		d := inj.Delay(src, 0, i)
		if d < 0 || d >= 50*time.Millisecond {
			t.Fatalf("delay %v out of [0,50ms)", d)
		}
		if d > max {
			max = d
		}
	}
	if max < 40*time.Millisecond {
		t.Errorf("max delay %v suspiciously small for uniform[0,50ms)", max)
	}
	if !strings.Contains(inj.Describe(), "uniform") {
		t.Errorf("Describe = %q", inj.Describe())
	}
}

func TestPerNode(t *testing.T) {
	inj := PerNode{Delays: []time.Duration{0, 10 * time.Millisecond, 40 * time.Millisecond}}
	src := rng.New(3)
	if d := inj.Delay(src, 0, 0); d != 0 {
		t.Errorf("w0 delay = %v, want 0", d)
	}
	if d := inj.Delay(src, 1, 5); d != 10*time.Millisecond {
		t.Errorf("w1 delay = %v, want 10ms", d)
	}
	if d := inj.Delay(src, 2, 9); d != 40*time.Millisecond {
		t.Errorf("w2 delay = %v, want 40ms", d)
	}
	// Out-of-range workers get zero rather than panicking.
	if d := inj.Delay(src, 7, 0); d != 0 {
		t.Errorf("out-of-range worker delay = %v", d)
	}
	if d := inj.Delay(src, -1, 0); d != 0 {
		t.Errorf("negative worker delay = %v", d)
	}
}

func TestMixedGroups(t *testing.T) {
	inj := NewMixedGroups(8)
	if len(inj.SlowSet) != 4 {
		t.Fatalf("slow set size = %d, want 4", len(inj.SlowSet))
	}
	for w := 0; w < 4; w++ {
		if inj.SlowSet[w] {
			t.Errorf("worker %d should be fast", w)
		}
	}
	for w := 4; w < 8; w++ {
		if !inj.SlowSet[w] {
			t.Errorf("worker %d should be slow", w)
		}
	}
	src := rng.New(4)
	var fastSum, slowSum time.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		f := inj.Delay(src, 0, i)
		s := inj.Delay(src, 5, i)
		if f < 0 || f >= 50*time.Millisecond {
			t.Fatalf("fast delay %v out of band", f)
		}
		if s < 50*time.Millisecond || s >= 150*time.Millisecond {
			t.Fatalf("slow delay %v out of band", s)
		}
		fastSum += f
		slowSum += s
	}
	if slowSum/n-fastSum/n < 40*time.Millisecond {
		t.Errorf("slow group mean (%v) not clearly above fast mean (%v)", slowSum/n, fastSum/n)
	}
	if !strings.Contains(inj.Describe(), "mixed") {
		t.Errorf("Describe = %q", inj.Describe())
	}
}

func TestTransientSpikes(t *testing.T) {
	inj := TransientSpikes{P: 0.1, Lo: 100 * time.Millisecond, Hi: 200 * time.Millisecond}
	src := rng.New(5)
	spikes := 0
	const n = 10000
	for i := 0; i < n; i++ {
		d := inj.Delay(src, 0, i)
		if d != 0 {
			spikes++
			if d < 100*time.Millisecond || d >= 200*time.Millisecond {
				t.Fatalf("spike %v out of band", d)
			}
		}
	}
	rate := float64(spikes) / n
	if rate < 0.07 || rate > 0.13 {
		t.Errorf("spike rate %.3f, want ~0.10", rate)
	}
}

func TestStackAdds(t *testing.T) {
	s := Stack{
		PerNode{Delays: []time.Duration{5 * time.Millisecond}},
		PerNode{Delays: []time.Duration{7 * time.Millisecond}},
	}
	src := rng.New(6)
	if d := s.Delay(src, 0, 0); d != 12*time.Millisecond {
		t.Errorf("stack delay = %v, want 12ms", d)
	}
	if !strings.Contains(s.Describe(), "+") {
		t.Errorf("Describe = %q", s.Describe())
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []time.Duration {
		src := rng.New(99)
		inj := UniformRandom{Lo: 0, Hi: 50 * time.Millisecond}
		out := make([]time.Duration, 20)
		for i := range out {
			out[i] = inj.Delay(src, 0, i)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
}
