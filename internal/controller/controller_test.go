package controller

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
)

func TestPolicyString(t *testing.T) {
	for _, p := range []Policy{AllReady, RandomInitiator, PowerOfChoices, Majority, Solo} {
		if s := p.String(); s == "" || strings.HasPrefix(s, "policy(") {
			t.Errorf("Policy %d has bad String %q", int(p), s)
		}
	}
	if !strings.HasPrefix(Policy(99).String(), "policy(") {
		t.Error("unknown policy should format as policy(n)")
	}
}

func TestPickProbes(t *testing.T) {
	src := rng.New(1)
	if got := PickProbes(src, AllReady, 10, 2); got != nil {
		t.Errorf("AllReady probes = %v, want nil", got)
	}
	if got := PickProbes(src, Majority, 10, 2); got != nil {
		t.Errorf("Majority probes = %v, want nil", got)
	}
	if got := PickProbes(src, RandomInitiator, 10, 2); len(got) != 1 {
		t.Errorf("RandomInitiator probes = %v, want 1", got)
	}
	got := PickProbes(src, PowerOfChoices, 10, 3)
	if len(got) != 3 {
		t.Errorf("PowerOfChoices(3) probes = %v", got)
	}
	// Default q when invalid.
	if got := PickProbes(src, PowerOfChoices, 10, 0); len(got) != 2 {
		t.Errorf("PowerOfChoices(0) probes = %v, want 2 defaults", got)
	}
}

func ms(xs ...int) []time.Duration {
	out := make([]time.Duration, len(xs))
	for i, x := range xs {
		out[i] = time.Duration(x) * time.Millisecond
	}
	return out
}

func TestTriggerTimeAllReady(t *testing.T) {
	at, init := TriggerTime(AllReady, nil, ms(10, 50, 30))
	if at != 50*time.Millisecond || init != -1 {
		t.Errorf("AllReady = (%v,%d), want (50ms,-1)", at, init)
	}
}

func TestTriggerTimeProbes(t *testing.T) {
	ready := ms(40, 10, 30, 20)
	at, init := TriggerTime(PowerOfChoices, []int{0, 2}, ready)
	if at != 30*time.Millisecond || init != 2 {
		t.Errorf("probe{0,2} = (%v,%d), want (30ms,2)", at, init)
	}
	at, init = TriggerTime(RandomInitiator, []int{3}, ready)
	if at != 20*time.Millisecond || init != 3 {
		t.Errorf("probe{3} = (%v,%d), want (20ms,3)", at, init)
	}
}

func TestTriggerTimeBadProbesFallsBackToSolo(t *testing.T) {
	ready := ms(40, 10)
	at, init := TriggerTime(PowerOfChoices, []int{-1, 9}, ready)
	if at != 10*time.Millisecond || init != 1 {
		t.Errorf("bad probes = (%v,%d), want solo (10ms,1)", at, init)
	}
}

func TestTriggerTimeMajoritySolo(t *testing.T) {
	ready := ms(50, 10, 30, 20, 40)
	at, _ := TriggerTime(Majority, nil, ready) // floor(5/2)+1 = 3rd smallest = 30
	if at != 30*time.Millisecond {
		t.Errorf("Majority = %v, want 30ms", at)
	}
	at, init := TriggerTime(Solo, nil, ready)
	if at != 10*time.Millisecond || init != 1 {
		t.Errorf("Solo = (%v,%d), want (10ms,1)", at, init)
	}
}

func TestTriggerTimeUnknownPolicyDefaultsToBarrier(t *testing.T) {
	at, _ := TriggerTime(Policy(99), nil, ms(5, 9))
	if at != 9*time.Millisecond {
		t.Errorf("unknown policy = %v, want max (9ms)", at)
	}
}

func TestTriggerTimeEmptyReady(t *testing.T) {
	at, init := TriggerTime(Solo, nil, nil)
	if at != 0 || init != -1 {
		t.Errorf("empty ready = (%v,%d)", at, init)
	}
}

func TestContributors(t *testing.T) {
	got := Contributors(ms(10, 30, 20), 20*time.Millisecond)
	want := []bool{true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Contributors = %v, want %v", got, want)
			break
		}
	}
}

// Property: the power-of-two trigger never fires later than the random
// single-probe trigger using the first probe, and never earlier than the
// solo trigger.
func TestQuickTriggerOrdering(t *testing.T) {
	src := rng.New(5)
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%16 + 2
		local := rng.New(seed)
		ready := make([]time.Duration, n)
		for i := range ready {
			ready[i] = time.Duration(local.Uniform(0, 100)) * time.Millisecond
		}
		probes := PickProbes(src, PowerOfChoices, n, 2)
		atQ2, _ := TriggerTime(PowerOfChoices, probes, ready)
		atQ1, _ := TriggerTime(RandomInitiator, probes[:1], ready)
		atSolo, _ := TriggerTime(Solo, nil, ready)
		atAll, _ := TriggerTime(AllReady, nil, ready)
		return atSolo <= atQ2 && atQ2 <= atQ1 && atQ1 <= atAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestControllerAllReady(t *testing.T) {
	c, err := New(AllReady, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	fired, initiator := c.Await(0)
	if err := c.Ready(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Ready(1, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
		t.Fatal("barrier fired before all workers were ready")
	default:
	}
	if err := c.Ready(2, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("barrier never fired")
	}
	if got := initiator(); got != -1 {
		t.Errorf("initiator = %d, want -1", got)
	}
}

func TestControllerPowerOfChoices(t *testing.T) {
	c, err := New(PowerOfChoices, 5, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	probes := c.Probes(0)
	if len(probes) != 2 {
		t.Fatalf("probes = %v", probes)
	}
	fired, initiator := c.Await(0)
	// Readiness of an unprobed worker must not fire the trigger.
	unprobed := -1
	for w := 0; w < 5; w++ {
		if w != probes[0] && w != probes[1] {
			unprobed = w
			break
		}
	}
	if err := c.Ready(unprobed, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
		t.Fatal("unprobed readiness fired the trigger")
	default:
	}
	if err := c.Ready(probes[1], 0); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("probe readiness did not fire")
	}
	if got := initiator(); got != probes[1] {
		t.Errorf("initiator = %d, want %d", got, probes[1])
	}
}

func TestControllerMonotoneReadiness(t *testing.T) {
	// A worker announcing iteration 5 is implicitly ready for 0..5 —
	// the probe-expiry rule.
	c, err := New(Solo, 2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ready(1, 5); err != nil {
		t.Fatal(err)
	}
	fired, _ := c.Await(3)
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("monotone readiness did not satisfy earlier iteration")
	}
}

func TestControllerReadyBeforeAwait(t *testing.T) {
	c, err := New(Solo, 2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ready(0, 0); err != nil {
		t.Fatal(err)
	}
	fired, initiator := c.Await(0)
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("pre-announced readiness did not fire on Await")
	}
	if got := initiator(); got != 0 {
		t.Errorf("initiator = %d, want 0", got)
	}
}

func TestControllerMajority(t *testing.T) {
	c, err := New(Majority, 4, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	fired, _ := c.Await(0)
	if err := c.Ready(0, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
		t.Fatal("majority fired with 1/4 ready")
	default:
	}
	if err := c.Ready(3, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
		t.Fatal("majority fired with only 2/4 ready (needs ⌊n/2⌋+1 = 3)")
	default:
	}
	if err := c.Ready(1, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("majority (3/4) did not fire")
	}
}

func TestControllerForget(t *testing.T) {
	c, err := New(Solo, 2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = c.Await(0)
	_, _ = c.Await(1)
	c.Forget(0)
	c.mu.Lock()
	n := len(c.iters)
	c.mu.Unlock()
	if n != 1 {
		t.Errorf("after Forget(0), %d iterations retained, want 1", n)
	}
}

func TestControllerErrors(t *testing.T) {
	if _, err := New(AllReady, 0, 0, 1); err == nil {
		t.Error("zero workers should error")
	}
	if _, err := New(PowerOfChoices, 4, 0, 1); err == nil {
		t.Error("q=0 power-of-choices should error")
	}
	c, err := New(AllReady, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ready(5, 0); err == nil {
		t.Error("out-of-range worker should error")
	}
}

func TestControllerProbesStablePerIteration(t *testing.T) {
	c, err := New(PowerOfChoices, 10, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	a := c.Probes(4)
	b := c.Probes(4)
	if len(a) != len(b) || a[0] != b[0] || a[1] != b[1] {
		t.Errorf("probe set changed between calls: %v vs %v", a, b)
	}
}

func TestControllerConcurrentWorkers(t *testing.T) {
	const n = 8
	c, err := New(AllReady, n, 0, 13)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 50
	done := make(chan struct{}, n)
	for w := 0; w < n; w++ {
		w := w
		go func() {
			for k := int64(0); k < iters; k++ {
				if err := c.Ready(w, k); err != nil {
					t.Errorf("ready: %v", err)
					return
				}
				fired, _ := c.Await(k)
				<-fired
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < n; w++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("concurrent barrier deadlocked")
		}
	}
}
