package controller

import (
	"fmt"
	"sync"

	"repro/internal/rng"
)

// Controller is the concurrent central scheduler for the goroutine runtime.
// It keeps no training state — only which workers have announced gradient
// readiness for which iteration — and fires each iteration's trigger
// according to its policy. Workers call Ready when their gradient lands and
// Await to block until the synchronization for an iteration should start.
//
// Readiness is monotone: Ready(w, k) implies readiness for every iteration
// ≤ k, mirroring the paper's probe expiry ("the probe identification is
// updated to the next iteration" when a stale reply arrives).
type Controller struct {
	policy Policy
	n      int
	q      int

	mu sync.Mutex
	// readyIter[w] is the highest iteration worker w announced.
	readyIter []int64
	// started[w] is true once w announced any readiness.
	started []bool
	iters   map[int64]*iterState
	src     *rng.Source
}

type iterState struct {
	probes []int
	fired  chan struct{}
	// initiator is the worker whose readiness fired the trigger, -1 for
	// barrier policies.
	initiator int
}

// New returns a Controller for n workers. q is the probe count for
// PowerOfChoices (ignored otherwise); seed makes probe selection
// reproducible.
func New(policy Policy, n, q int, seed int64) (*Controller, error) {
	if n <= 0 {
		return nil, fmt.Errorf("controller: %d workers", n)
	}
	if policy == PowerOfChoices && q < 1 {
		return nil, fmt.Errorf("controller: power-of-choices with q=%d", q)
	}
	return &Controller{
		policy:    policy,
		n:         n,
		q:         q,
		readyIter: make([]int64, n),
		started:   make([]bool, n),
		iters:     make(map[int64]*iterState),
		src:       rng.New(seed),
	}, nil
}

// Policy returns the controller's trigger policy.
func (c *Controller) Policy() Policy { return c.policy }

// Ready announces that worker w has a gradient available for iteration
// iter. Announcements are monotone; regressions are ignored.
func (c *Controller) Ready(w int, iter int64) error {
	if w < 0 || w >= c.n {
		return fmt.Errorf("controller: worker %d of %d", w, c.n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started[w] || iter > c.readyIter[w] {
		c.started[w] = true
		if iter > c.readyIter[w] {
			c.readyIter[w] = iter
		}
	}
	for k, st := range c.iters {
		c.maybeFireLocked(k, st)
	}
	return nil
}

// Await returns a channel that is closed when the synchronization for
// iteration iter should fire, plus a function reporting the initiating
// worker once fired (-1 for barrier policies).
func (c *Controller) Await(iter int64) (<-chan struct{}, func() int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.ensureIterLocked(iter)
	return st.fired, func() int {
		c.mu.Lock()
		defer c.mu.Unlock()
		return st.initiator
	}
}

// Probes returns the probe set chosen for iteration iter (stable per
// iteration), creating it on first use.
func (c *Controller) Probes(iter int64) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.ensureIterLocked(iter)
	out := make([]int, len(st.probes))
	copy(out, st.probes)
	return out
}

// Forget drops bookkeeping for iterations ≤ iter; callers invoke it after
// all workers pass an iteration to bound memory.
func (c *Controller) Forget(iter int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.iters {
		if k <= iter {
			delete(c.iters, k)
		}
	}
}

func (c *Controller) ensureIterLocked(iter int64) *iterState {
	st, ok := c.iters[iter]
	if !ok {
		st = &iterState{
			probes:    PickProbes(c.src, c.policy, c.n, c.q),
			fired:     make(chan struct{}),
			initiator: -1,
		}
		c.iters[iter] = st
		c.maybeFireLocked(iter, st)
	}
	return st
}

// readyForLocked reports whether worker w has announced readiness for
// iteration ≥ iter.
func (c *Controller) readyForLocked(w int, iter int64) bool {
	return c.started[w] && c.readyIter[w] >= iter
}

func (c *Controller) maybeFireLocked(iter int64, st *iterState) {
	select {
	case <-st.fired:
		return // already fired
	default:
	}
	fire := false
	initiator := -1
	switch c.policy {
	case AllReady:
		fire = true
		for w := 0; w < c.n; w++ {
			if !c.readyForLocked(w, iter) {
				fire = false
				break
			}
		}
	case RandomInitiator, PowerOfChoices:
		for _, p := range st.probes {
			if c.readyForLocked(p, iter) {
				fire = true
				initiator = p
				break
			}
		}
	case Majority:
		need := c.n/2 + 1
		if need > c.n {
			need = c.n
		}
		count := 0
		for w := 0; w < c.n; w++ {
			if c.readyForLocked(w, iter) {
				count++
				if initiator < 0 {
					initiator = w
				}
			}
		}
		fire = count >= need
	case Solo:
		for w := 0; w < c.n; w++ {
			if c.readyForLocked(w, iter) {
				fire = true
				initiator = w
				break
			}
		}
	}
	if fire {
		st.initiator = initiator
		close(st.fired)
	}
}
