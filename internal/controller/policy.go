// Package controller implements RNA's central scheduler (Section 3): it
// holds no training state, only instantaneous readiness information, and
// decides *when* each iteration's AllReduce fires. The decision policies —
// wait-for-all (Horovod's NEGOTIATE_ALLREDUCE), purely random initiator,
// and power-of-two-choices probing — are exposed both as pure functions
// (used by the virtual-time simulator) and as a concurrent Controller for
// the goroutine runtime.
package controller

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/rng"
)

// Policy selects the synchronization trigger rule.
type Policy int

// Trigger policies.
const (
	// AllReady fires when every worker is ready — the BSP barrier.
	AllReady Policy = iota + 1
	// RandomInitiator fires when one uniformly chosen worker is ready
	// (the "choice of one" baseline in Fig. 10).
	RandomInitiator
	// PowerOfChoices probes q random workers and fires when the fastest
	// replies (q=2 is the paper's default).
	PowerOfChoices
	// Majority fires when strictly more than half the workers are ready
	// (⌊n/2⌋+1) — eager-SGD's majority collective.
	Majority
	// Solo fires as soon as any worker is ready — eager-SGD's solo
	// collective.
	Solo
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case AllReady:
		return "all-ready"
	case RandomInitiator:
		return "random"
	case PowerOfChoices:
		return "power-of-choices"
	case Majority:
		return "majority"
	case Solo:
		return "solo"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// PickProbes returns the distinct worker indices the scheduler probes this
// iteration under the given policy: nil when the policy needs no probes
// (AllReady/Majority/Solo consider everyone), one worker for
// RandomInitiator, q workers for PowerOfChoices.
func PickProbes(src *rng.Source, policy Policy, n, q int) []int {
	switch policy {
	case RandomInitiator:
		return []int{src.Intn(n)}
	case PowerOfChoices:
		if q < 1 {
			q = 2
		}
		return src.SampleDistinct(n, q)
	default:
		return nil
	}
}

// TriggerTime returns the virtual time at which the synchronization fires,
// given every worker's gradient-ready time for the iteration. probes is the
// PickProbes result (ignored for policies that need none). The returned
// initiator is the worker whose readiness fired the trigger (-1 for
// AllReady where there is no single initiator).
func TriggerTime(policy Policy, probes []int, ready []time.Duration) (at time.Duration, initiator int) {
	switch policy {
	case AllReady:
		var max time.Duration
		for _, t := range ready {
			if t > max {
				max = t
			}
		}
		return max, -1
	case RandomInitiator, PowerOfChoices:
		best := time.Duration(-1)
		who := -1
		for _, p := range probes {
			if p < 0 || p >= len(ready) {
				continue
			}
			if best < 0 || ready[p] < best {
				best = ready[p]
				who = p
			}
		}
		if who < 0 {
			// No valid probes degenerates to solo.
			return TriggerTime(Solo, nil, ready)
		}
		return best, who
	case Majority:
		k := len(ready)/2 + 1 // strictly more than half
		if k > len(ready) {
			k = len(ready)
		}
		return kthSmallest(ready, k)
	case Solo:
		return kthSmallest(ready, 1)
	default:
		return TriggerTime(AllReady, nil, ready)
	}
}

// kthSmallest returns the k-th smallest ready time (1-based) and the worker
// holding it.
func kthSmallest(ready []time.Duration, k int) (time.Duration, int) {
	if len(ready) == 0 {
		return 0, -1
	}
	if k < 1 {
		k = 1
	}
	if k > len(ready) {
		k = len(ready)
	}
	type entry struct {
		t time.Duration
		w int
	}
	es := make([]entry, len(ready))
	for i, t := range ready {
		es[i] = entry{t, i}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].t != es[j].t {
			return es[i].t < es[j].t
		}
		return es[i].w < es[j].w
	})
	return es[k-1].t, es[k-1].w
}

// Contributors returns which workers have gradients ready at the trigger
// time and therefore contribute real (non-null) gradients to the partial
// AllReduce.
func Contributors(ready []time.Duration, at time.Duration) []bool {
	out := make([]bool, len(ready))
	for i, t := range ready {
		out[i] = t <= at
	}
	return out
}
