package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/hetero"
	"repro/internal/trainsim"
	"repro/internal/workload"
)

// table34Columns returns the workload columns of Tables 3 and 4: ResNet50
// and VGG16 each under random and mixed ("H") heterogeneity, plus LSTM.
func table34Columns(workers int) []struct {
	name string
	pm   paperModel
	inj  hetero.Injector
} {
	uniform := randomHetero()
	pms := paperModels()
	return []struct {
		name string
		pm   paperModel
		inj  hetero.Injector
	}{
		{"ResNet", pms[0], uniform},
		{"ResNet(H)", pms[0], hetero.NewMixedGroups(workers)},
		{"VGG", pms[1], uniform},
		{"VGG(H)", pms[1], hetero.NewMixedGroups(workers)},
		{"LSTM", pms[2], uniform},
	}
}

// Table3 reproduces the final-training-accuracy comparison of Section 8.1:
// each approach trains for the same iteration budget per workload column;
// the cells are final accuracy on the training objective.
func Table3(opts Options) (*Report, error) {
	rep := newReport("table3", "Final training accuracy for different neural networks")
	s, err := newSuite(opts.seed())
	if err != nil {
		return nil, err
	}
	workers := opts.workers(8)
	iters := opts.iters(600)
	cols := table34Columns(workers)

	headers := []string{"approach"}
	for _, c := range cols {
		headers = append(headers, c.name)
	}
	var cfgs []trainsim.Config
	for _, st := range strategiesUnderTest() {
		for _, c := range cols {
			strat := st
			// The paper pairs RNA with hierarchical synchronization in
			// the mixed-heterogeneity columns.
			if st == trainsim.RNA && strings.HasSuffix(c.name, "(H)") {
				strat = trainsim.RNAHierarchical
			}
			cfg := s.baseConfig(strat, c.pm, workers, iters, opts.seed())
			cfg.Injector = c.inj
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	var table [][]string
	next := 0
	for _, st := range strategiesUnderTest() {
		cells := []string{st.String()}
		for _, c := range cols {
			res := results[next]
			next++
			cells = append(cells, fmtPct(res.TrainAcc))
			rep.Metrics[fmt.Sprintf("acc/%s/%s", st, c.name)] = res.TrainAcc
		}
		table = append(table, cells)
	}
	var body strings.Builder
	fmt.Fprintf(&body, "Final training accuracy after %d iterations on %d workers\n", iters, workers)
	body.WriteString("(paper shape: Horovod/eager-SGD/RNA within ~1-2 points, AD-PSGD clearly lower):\n\n")
	body.WriteString(renderTable(headers, table))
	rep.Body = body.String()
	return rep, nil
}

// Table4 reproduces the validation study of Section 8.2: every approach
// trains for the same virtual-time budget; the table reports how many
// iterations each completed plus held-out top-1/top-5 accuracy.
func Table4(opts Options) (*Report, error) {
	rep := newReport("table4", "Validation accuracy for different neural networks")
	s, err := newSuite(opts.seed())
	if err != nil {
		return nil, err
	}
	workers := opts.workers(8)
	budget := time.Duration(float64(90*time.Second) * opts.scale())
	uniform := randomHetero()
	pms := paperModels()
	cols := []struct {
		name string
		pm   paperModel
	}{
		{"ResNet50", pms[0]}, {"VGG16", pms[1]}, {"LSTM", pms[2]},
	}

	headers := []string{"model", "approach", "# of iterations", "top-1 acc.", "top-5 acc."}
	var cfgs []trainsim.Config
	for _, c := range cols {
		for _, st := range strategiesUnderTest() {
			cfg := s.baseConfig(st, c.pm, workers, 0, opts.seed())
			cfg.MaxTime = budget
			cfg.Injector = uniform
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	var table [][]string
	next := 0
	for _, c := range cols {
		for _, st := range strategiesUnderTest() {
			res := results[next]
			next++
			table = append(table, []string{
				c.name, st.String(), fmt.Sprint(res.Iterations),
				fmtPct(res.ValTop1), fmtPct(res.ValTop5),
			})
			rep.Metrics[fmt.Sprintf("iters/%s/%s", c.name, st)] = float64(res.Iterations)
			rep.Metrics[fmt.Sprintf("top1/%s/%s", c.name, st)] = res.ValTop1
			rep.Metrics[fmt.Sprintf("top5/%s/%s", c.name, st)] = res.ValTop5
		}
	}
	var body strings.Builder
	fmt.Fprintf(&body, "Fixed %v virtual-time budget on %d workers\n", budget, workers)
	body.WriteString("(paper shape: RNA completes the most iterations; AD-PSGD has the lowest validation accuracy):\n\n")
	body.WriteString(renderTable(headers, table))
	rep.Body = body.String()
	return rep, nil
}

// Table5 reproduces the transmission-cost study of Section 8.5: the share
// of RNA's per-iteration time spent copying gradients between device and
// host memory over PCIe, measured from RNA runs and cross-checked against
// the analytic cost model.
func Table5(opts Options) (*Report, error) {
	rep := newReport("table5", "The transmission cost in RNA")
	s, err := newSuite(opts.seed())
	if err != nil {
		return nil, err
	}
	workers := opts.workers(8)
	iters := opts.iters(200)
	comm := workload.DefaultComm()

	cols := fullModels()
	headers := []string{"DL application", "measured extra cost", "analytic extra cost"}
	var cfgs []trainsim.Config
	for _, pm := range cols {
		cfg := s.baseConfig(trainsim.RNA, pm, workers, iters, opts.seed())
		cfg.Comm = comm
		cfgs = append(cfgs, cfg)
	}
	results, err := runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	var table [][]string
	for i, pm := range cols {
		res := results[i]
		measured := float64(res.CopyOverhead) / float64(res.VirtualTime)
		copyPerIter := comm.RNACopyOverhead(pm.spec.GradientBytes())
		ring := comm.RingAllReduce(workers, pm.spec.GradientBytes())
		analytic := float64(copyPerIter) / float64(pm.step.Mean()+ring+copyPerIter)
		table = append(table, []string{pm.name, fmtPct(measured), fmtPct(analytic)})
		rep.Metrics["measured/"+pm.name] = measured
		rep.Metrics["analytic/"+pm.name] = analytic
	}
	var body strings.Builder
	body.WriteString("Host-device copy share of execution time under RNA\n")
	body.WriteString("(paper: ResNet50 6.2%, LSTM 3.8%, VGG16 23%, Transformer 18% — large models pay more):\n\n")
	body.WriteString(renderTable(headers, table))
	rep.Body = body.String()
	return rep, nil
}
