package experiment

import (
	"fmt"
	"strings"

	"repro/internal/hetero"
	"repro/internal/trainsim"
	"repro/internal/workload"
)

// AblationProbes sweeps RNA's probe count q over end-to-end training,
// complementing the Fig. 10 microbenchmark with the full protocol in the
// loop: time to target loss and mean per-iteration time per q.
func AblationProbes(opts Options) (*Report, error) {
	rep := newReport("ablation-probes", "Probe count q in RNA training")
	s, err := newSuite(opts.seed())
	if err != nil {
		return nil, err
	}
	workers := opts.workers(8)
	pm := paperModels()[0]
	inj := randomHetero()

	headers := []string{"q", "time-to-target", "mean iter time", "null rate", "final acc"}
	qs := []int{1, 2, 4, 8}
	cfgs := make([]trainsim.Config, len(qs))
	for i, q := range qs {
		cfg := targetConfig(s, trainsim.RNA, pm, workers, opts.iters(4000), inj, opts.seed())
		cfg.Probes = q
		cfgs[i] = cfg
	}
	results, err := runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	var table [][]string
	for i, q := range qs {
		res := results[i]
		table = append(table, []string{
			fmt.Sprint(q), fmtDur(res.VirtualTime), fmtDur(res.MeanIterTime()),
			fmtPct(res.NullContribRate), fmtPct(res.TrainAcc),
		})
		rep.Metrics[fmt.Sprintf("time/q%d", q)] = res.VirtualTime.Seconds()
		rep.Metrics[fmt.Sprintf("itertime/q%d", q)] = res.MeanIterTime().Seconds()
	}
	rep.Body = renderTable(headers, table)
	return rep, nil
}

// AblationStaleness sweeps the bounded-staleness window: small bounds keep
// workers fresh but stall fast workers; large bounds admit stale gradients.
func AblationStaleness(opts Options) (*Report, error) {
	rep := newReport("ablation-staleness", "Staleness bound in RNA")
	s, err := newSuite(opts.seed())
	if err != nil {
		return nil, err
	}
	workers := opts.workers(8)
	pm := paperModels()[2] // LSTM: the most imbalanced workload
	inj := randomHetero()

	headers := []string{"bound", "time-to-target", "iters", "final loss", "final acc"}
	bounds := []int{1, 2, 4, 8}
	cfgs := make([]trainsim.Config, len(bounds))
	for i, bound := range bounds {
		cfg := targetConfig(s, trainsim.RNA, pm, workers, opts.iters(4000), inj, opts.seed())
		cfg.StalenessBound = bound
		cfgs[i] = cfg
	}
	results, err := runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	var table [][]string
	for i, bound := range bounds {
		res := results[i]
		table = append(table, []string{
			fmt.Sprint(bound), fmtDur(res.VirtualTime), fmt.Sprint(res.Iterations),
			fmt.Sprintf("%.3f", res.FinalLoss), fmtPct(res.TrainAcc),
		})
		rep.Metrics[fmt.Sprintf("time/b%d", bound)] = res.VirtualTime.Seconds()
		rep.Metrics[fmt.Sprintf("acc/b%d", bound)] = res.TrainAcc
	}
	rep.Body = renderTable(headers, table)
	return rep, nil
}

// AblationLRScale compares RNA with and without the Linear Scaling Rule of
// Algorithm 2 under partial participation.
func AblationLRScale(opts Options) (*Report, error) {
	rep := newReport("ablation-lrscale", "Linear Scaling Rule on/off")
	s, err := newSuite(opts.seed())
	if err != nil {
		return nil, err
	}
	workers := opts.workers(8)
	pm := paperModels()[0]
	inj := randomHetero()

	headers := []string{"variant", "time-to-target", "reached", "final loss", "final acc"}
	variants := []bool{false, true}
	cfgs := make([]trainsim.Config, len(variants))
	for i, disabled := range variants {
		cfg := targetConfig(s, trainsim.RNA, pm, workers, opts.iters(4000), inj, opts.seed())
		cfg.DisableLRScale = disabled
		cfgs[i] = cfg
	}
	results, err := runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	var table [][]string
	for i, disabled := range variants {
		res := results[i]
		name := "with scaling (paper)"
		key := "scaled"
		if disabled {
			name = "without scaling"
			key = "unscaled"
		}
		table = append(table, []string{
			name, fmtDur(res.VirtualTime), fmt.Sprint(res.ReachedTarget),
			fmt.Sprintf("%.3f", res.FinalLoss), fmtPct(res.TrainAcc),
		})
		rep.Metrics["loss/"+key] = res.FinalLoss
		rep.Metrics["acc/"+key] = res.TrainAcc
	}
	rep.Body = renderTable(headers, table)
	return rep, nil
}

// AblationRing compares the analytic cost of ring AllReduce against the
// naive gather-broadcast alternative across cluster sizes and model sizes —
// the design choice that makes decentralized training bandwidth-optimal
// (Section 2.2).
func AblationRing(opts Options) (*Report, error) {
	rep := newReport("ablation-ring", "Ring vs naive AllReduce cost")
	comm := workload.DefaultComm()
	models := []workload.ModelSpec{workload.ResNet50(), workload.VGG16()}

	headers := []string{"model", "workers", "ring", "naive", "advantage"}
	var table [][]string
	for _, spec := range models {
		for _, n := range []int{4, 8, 16, 32} {
			ring := comm.RingAllReduce(n, spec.GradientBytes())
			naive := comm.NaiveAllReduce(n, spec.GradientBytes())
			adv := float64(naive) / float64(ring)
			table = append(table, []string{
				spec.Name, fmt.Sprint(n), fmtDur(ring), fmtDur(naive), fmtX(adv),
			})
			rep.Metrics[fmt.Sprintf("advantage/%s/%d", spec.Name, n)] = adv
		}
	}
	var body strings.Builder
	body.WriteString("Analytic collective costs on the EDR InfiniBand model; the ring advantage approaches N/2:\n\n")
	body.WriteString(renderTable(headers, table))
	rep.Body = body.String()
	return rep, nil
}

// AblationCopyPath compares RNA's gradient staging paths on the two most
// parameter-heavy workloads: the default host-memory path (Table 5's
// overhead), the layer-wise overlapped path Section 8.5 proposes, and the
// NCCL direct-GPU path Section 6 mentions.
func AblationCopyPath(opts Options) (*Report, error) {
	rep := newReport("ablation-copypath", "RNA gradient staging: host copy vs overlap vs direct GPU")
	s, err := newSuite(opts.seed())
	if err != nil {
		return nil, err
	}
	workers := opts.workers(8)
	inj := randomHetero()

	headers := []string{"workload", "variant", "time-to-target", "copy share"}
	pms := []paperModel{paperModels()[1], transformerModel()} // VGG16, Transformer
	variants := []struct {
		name            string
		overlap, direct bool
	}{
		{"host copy (paper)", false, false},
		{"layer-wise overlap", true, false},
		{"direct GPU (NCCL)", false, true},
	}
	var cfgs []trainsim.Config
	for _, pm := range pms {
		for _, variant := range variants {
			cfg := targetConfig(s, trainsim.RNA, pm, workers, opts.iters(4000), inj, opts.seed())
			cfg.LayerOverlap = variant.overlap
			cfg.DirectGPU = variant.direct
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	var table [][]string
	next := 0
	for _, pm := range pms {
		for _, variant := range variants {
			res := results[next]
			next++
			share := float64(res.CopyOverhead) / float64(res.VirtualTime)
			table = append(table, []string{
				pm.name, variant.name, fmtDur(res.VirtualTime), fmtPct(share),
			})
			rep.Metrics[fmt.Sprintf("time/%s/%s", pm.name, variant.name)] = res.VirtualTime.Seconds()
			rep.Metrics[fmt.Sprintf("share/%s/%s", pm.name, variant.name)] = share
		}
	}
	var body strings.Builder
	body.WriteString("Section 8.5 notes the copy overhead can be optimized by layer-wise overlapping;\n")
	body.WriteString("Section 6 notes NCCL can reduce on-GPU at the cost of extra GPU memory:\n\n")
	body.WriteString(renderTable(headers, table))
	rep.Body = body.String()
	return rep, nil
}

// AblationPSFrequency sweeps the hierarchical scheme's PS exchange period —
// the frequency tuning the paper leaves as future work — under mixed
// heterogeneity.
func AblationPSFrequency(opts Options) (*Report, error) {
	rep := newReport("ablation-psfreq", "Hierarchical PS exchange frequency")
	s, err := newSuite(opts.seed())
	if err != nil {
		return nil, err
	}
	workers := opts.workers(8)
	pm := paperModels()[0]

	headers := []string{"exchange every", "time-to-target", "iters", "final acc"}
	periods := []int{1, 2, 4, 8, 16}
	cfgs := make([]trainsim.Config, len(periods))
	for i, period := range periods {
		cfg := targetConfig(s, trainsim.RNAHierarchical, pm, workers, opts.iters(4000),
			hetero.NewMixedGroups(workers), opts.seed())
		cfg.PSSyncEvery = period
		cfgs[i] = cfg
	}
	results, err := runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	var table [][]string
	for i, period := range periods {
		res := results[i]
		table = append(table, []string{
			fmt.Sprintf("%d group syncs", period), fmtDur(res.VirtualTime),
			fmt.Sprint(res.Iterations), fmtPct(res.TrainAcc),
		})
		rep.Metrics[fmt.Sprintf("time/p%d", period)] = res.VirtualTime.Seconds()
		rep.Metrics[fmt.Sprintf("acc/p%d", period)] = res.TrainAcc
	}
	var body strings.Builder
	body.WriteString("The paper runs the PS exchange \"periodically\" and defers frequency tuning;\n")
	body.WriteString("frequent exchanges couple the groups tightly but queue on the serialized PS:\n\n")
	body.WriteString(renderTable(headers, table))
	rep.Body = body.String()
	return rep, nil
}
