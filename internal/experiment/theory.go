package experiment

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/data"
	"repro/internal/hetero"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/trainsim"
	"repro/internal/workload"
)

// TheoryConvergence empirically checks the convergence analysis of
// Section 5 on the noisy quadratic objective (which satisfies all of
// Assumption 1 exactly: unbiased gradients, bounded variance, Lipschitzian
// gradient):
//
//   - Theorem 5.1/5.2: the running average of E‖∇f(x_k)‖² decays like
//     O(1/√K) — the K-fold increase in iterations should shrink the
//     average squared gradient norm by ≈ √K.
//   - "Independent staleness": after sufficiently many iterations the rate
//     is independent of the staleness window η — doubling η must not
//     change the achieved gradient norm materially.
func TheoryConvergence(opts Options) (*Report, error) {
	rep := newReport("theory-convergence", "Convergence bound of Section 5 on the noisy quadratic")
	src := rng.New(opts.seed())
	quad, err := model.NewQuadratic(src, 32, 25, 0.6)
	if err != nil {
		return nil, err
	}
	// The quadratic ignores batch contents, but the simulator needs a
	// dataset for its batch-index plumbing.
	ds, err := data.Blobs(src, 2, 2, 4, 0.1)
	if err != nil {
		return nil, err
	}

	// Theorem 5.2 sets the constant step length γ ∝ 1/sqrt(K); scale the
	// base rate accordingly so the O(1/sqrt(K)) rate is visible instead
	// of the constant-step noise floor.
	baseIters := opts.iters(200)
	runRNA := func(iters, bound int) (*trainsim.Result, error) {
		lr := 0.05 / math.Sqrt(float64(iters)/float64(baseIters))
		cfg := trainsim.Config{
			Strategy:       trainsim.RNA,
			Workers:        8,
			Model:          quad,
			Dataset:        ds,
			BatchSize:      1,
			LR:             lr,
			Step:           workload.Balanced{Base: 50 * time.Millisecond, Jitter: 0.1},
			Spec:           workload.ResNet56(),
			Comm:           workload.DefaultComm(),
			Injector:       hetero.UniformRandom{Lo: 0, Hi: 30 * time.Millisecond},
			StalenessBound: bound,
			MaxIterations:  iters,
			EvalEvery:      1 << 30, // final eval only
			Seed:           opts.seed(),
		}
		return trainsim.Run(cfg)
	}

	// gradNormSq returns ‖∇f(x)‖² at the (noise-free) objective.
	gradNormSq := func(params tensor.Vector) float64 {
		var s float64
		for i, a := range quad.Curvature {
			g := a * (params[i] - quad.Optimum[i])
			s += g * g
		}
		return s
	}

	var body strings.Builder
	body.WriteString("Noisy quadratic (dim 32, condition 25, sigma 0.6), 8 workers, RNA.\n\n")

	// (a) Rate: K vs running ‖∇f‖² with γ ∝ 1/sqrt(K) per Theorem 5.2.
	body.WriteString("(a) O(1/sqrt(K)) rate — final squared gradient norm vs iteration budget:\n")
	headers := []string{"K", "‖∇f(x_K)‖²", "x sqrt(K)"}
	var table [][]string
	base := baseIters
	for _, mult := range []int{1, 4, 16} {
		k := base * mult
		res, err := runRNA(k, 0)
		if err != nil {
			return nil, err
		}
		g2 := gradNormSq(res.FinalParams)
		table = append(table, []string{
			fmt.Sprint(k), fmt.Sprintf("%.4g", g2), fmt.Sprintf("%.4g", g2*math.Sqrt(float64(k))),
		})
		rep.Metrics[fmt.Sprintf("gradsq/K%d", k)] = g2
	}
	body.WriteString(renderTable(headers, table))
	body.WriteString("\nThe sqrt(K)-scaled column stabilizing (rather than growing) is the O(1/sqrt(K)) signature.\n\n")

	// (b) Staleness independence: η sweep at fixed K.
	body.WriteString("(b) staleness independence — same budget, growing staleness window η:\n")
	headers = []string{"η", "‖∇f(x_K)‖²", "virtual time"}
	table = nil
	k := base * 4
	for _, bound := range []int{2, 4, 8, 16} {
		res, err := runRNA(k, bound)
		if err != nil {
			return nil, err
		}
		g2 := gradNormSq(res.FinalParams)
		table = append(table, []string{
			fmt.Sprint(bound), fmt.Sprintf("%.4g", g2), fmtDur(res.VirtualTime),
		})
		rep.Metrics[fmt.Sprintf("gradsq/eta%d", bound)] = g2
	}
	body.WriteString(renderTable(headers, table))
	body.WriteString("\nTheorem 5.2: once K ≳ (η+1)², the achieved gradient norm does not depend on η.\n")
	rep.Body = body.String()
	return rep, nil
}
