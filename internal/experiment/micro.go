package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/trainsim"
)

// Fig10 reproduces the sensitivity microbenchmark of Section 8.4: a
// 100-node simulated cluster with task skew in [10, 50) ms under queueing
// load runs 100 iterations per probe count; the whisker statistics of the
// per-iteration response time are reported for each number of choices.
func Fig10(opts Options) (*Report, error) {
	rep := newReport("fig10", "Effect of number of choices on response time")
	nodes := opts.workers(100)
	iters := opts.iters(100) * 10 // stable percentiles need more than 100 draws
	choices := []int{1, 2, 3, 4, 6, 8}
	const load = 0.7

	boxes, err := trainsim.ProbeSweep(nodes, iters, choices,
		10*time.Millisecond, 50*time.Millisecond, load, opts.seed())
	if err != nil {
		return nil, err
	}

	headers := []string{"choices", "p5", "p25", "median", "p75", "p95"}
	var table [][]string
	for _, q := range sortedKeys(boxes) {
		b := boxes[q]
		table = append(table, []string{
			fmt.Sprint(q),
			fmtDur(time.Duration(b.P5)), fmtDur(time.Duration(b.P25)),
			fmtDur(time.Duration(b.P50)), fmtDur(time.Duration(b.P75)),
			fmtDur(time.Duration(b.P95)),
		})
		rep.Metrics[fmt.Sprintf("median/q%d", q)] = b.P50
		rep.Metrics[fmt.Sprintf("spread/q%d", q)] = b.P95 - b.P5
	}
	ratio := boxes[1].P50 / boxes[2].P50
	var body strings.Builder
	fmt.Fprintf(&body, "%d nodes, %d iterations, task skew [10,50) ms, queueing load %.1f:\n\n", nodes, iters, load)
	body.WriteString(renderTable(headers, table))
	fmt.Fprintf(&body, "\nTwo choices cut the median response time %.2fx vs random selection (paper: 2.4x, 28 ms -> 12 ms);\n", ratio)
	body.WriteString("additional probes stop helping once the messaging overhead outweighs the sampling gain.\n")
	rep.Metrics["ratio/q1q2"] = ratio
	rep.Body = body.String()
	return rep, nil
}
