// Package experiment contains one runner per table and figure of the
// paper's evaluation (Section 8) plus the motivation studies (Section 2.3)
// and the ablations called out in DESIGN.md. Each runner builds the
// appropriate simulated cluster, executes the training runs on virtual
// time, and renders the same rows/series the paper reports.
package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/data"
	"repro/internal/hetero"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/trainsim"
	"repro/internal/workload"
)

// runConfigs executes independent training configurations concurrently over
// the shared GOMAXPROCS-bounded pool, returning results in input order. Each
// configuration is fully deterministic given its own seed (and the engines
// are bit-identical at any parallelism), so fanning the runs out cannot
// change a number any report prints.
func runConfigs(cfgs []trainsim.Config) ([]*trainsim.Result, error) {
	results := make([]*trainsim.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	parallel.For(0, len(cfgs), func(i int) {
		results[i], errs[i] = trainsim.Run(cfgs[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Options tunes an experiment run.
type Options struct {
	// Seed drives every random stream (default 1).
	Seed int64
	// Scale in (0,1] shrinks iteration budgets for quick runs; 1 is the
	// full experiment.
	Scale float64
	// Workers overrides the default cluster size where meaningful.
	Workers int
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) scale() float64 {
	if o.Scale <= 0 || o.Scale > 1 {
		return 1
	}
	return o.Scale
}

func (o Options) workers(def int) int {
	if o.Workers > 0 {
		return o.Workers
	}
	return def
}

// iters scales an iteration budget, with a floor that keeps even quick runs
// meaningful.
func (o Options) iters(full int) int {
	n := int(float64(full) * o.scale())
	if n < 20 {
		n = 20
	}
	return n
}

// Report is an experiment's result: a rendered table plus the key metrics,
// so tests and benchmarks can assert on the numbers without re-parsing.
type Report struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Body  string `json:"body"`
	// Metrics holds the headline numbers keyed by a stable name (e.g.
	// "speedup/RNA/ResNet50").
	Metrics map[string]float64 `json:"metrics"`
}

func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Metrics: make(map[string]float64)}
}

// Runner executes one experiment.
type Runner func(Options) (*Report, error)

// registry maps experiment IDs to runners in presentation order.
var registry = []struct {
	id     string
	title  string
	runner Runner
}{
	{"fig1", "Training time breakdown under deterministic delays (BSP)", Fig1},
	{"fig2", "Inherent load imbalance: UCF101 lengths and LSTM batch times", Fig2},
	{"fig3", "Blocking vs non-blocking AllReduce timeline", Fig3},
	{"fig4", "RNA cross-iteration working example", Fig4},
	{"fig6", "Training speedup over Horovod (ResNet50/VGG16/LSTM, +mixed)", Fig6},
	{"fig7", "LSTM convergence curves per approach", Fig7},
	{"fig8", "Transformer per-iteration and overall speedups", Fig8},
	{"fig9", "Transformer throughput scalability (4..32 processes)", Fig9},
	{"fig10", "Effect of probe count on response time (100 nodes)", Fig10},
	{"table3", "Final training accuracy per approach", Table3},
	{"table4", "Validation accuracy and iteration counts", Table4},
	{"table5", "RNA transmission (host-device copy) overhead", Table5},
	{"ablation-probes", "Ablation: probe count q in RNA training", AblationProbes},
	{"ablation-staleness", "Ablation: staleness bound", AblationStaleness},
	{"ablation-lrscale", "Ablation: linear scaling rule on/off", AblationLRScale},
	{"ablation-ring", "Ablation: ring vs naive AllReduce cost", AblationRing},
	{"ablation-copypath", "Ablation: host copy vs layer overlap vs direct GPU", AblationCopyPath},
	{"ablation-psfreq", "Ablation: hierarchical PS exchange frequency", AblationPSFrequency},
	{"theory-convergence", "Empirical check of the Section 5 convergence bound", TheoryConvergence},
	{"testbed", "The paper's Table 2 cluster: 32 GPUs, three generations", Testbed},
}

// IDs lists the registered experiment IDs in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Title returns the registered title for an experiment ID.
func Title(id string) (string, error) {
	for _, e := range registry {
		if e.id == id {
			return e.title, nil
		}
	}
	return "", fmt.Errorf("experiment: unknown id %q", id)
}

// Run executes one experiment by ID.
func Run(id string, opts Options) (*Report, error) {
	for _, e := range registry {
		if e.id == id {
			return e.runner(opts)
		}
	}
	return nil, fmt.Errorf("experiment: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
}

// renderTable renders rows under headers with aligned columns.
func renderTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

// suite bundles the shared learning problem standing in for the paper's
// datasets: a 10-class Gaussian-blob classification task with a held-out
// validation split, trained by multinomial logistic regression.
type suite struct {
	train *data.Dataset
	val   *data.Dataset
	model model.Model
}

func newSuite(seed int64) (*suite, error) {
	src := rng.New(seed)
	full, err := data.Blobs(src, 10, 8, 60, 0.45)
	if err != nil {
		return nil, err
	}
	train, val, err := full.Split(src, 0.2)
	if err != nil {
		return nil, err
	}
	m, err := model.NewLogistic(train)
	if err != nil {
		return nil, err
	}
	return &suite{train: train, val: val, model: m}, nil
}

// paperModel couples a paper workload to its simulated step sampler.
type paperModel struct {
	name string
	spec workload.ModelSpec
	step workload.StepSampler
}

// paperModels returns the evaluation workloads of Section 7.2. Base step
// times are compressed 2x relative to the specs so the paper's injected
// delays (0-50 ms, mixed +50-100 ms) stress the synchronization layer at
// the same straggler-to-compute ratio the testbed saw.
func paperModels() []paperModel {
	compress := func(d time.Duration) time.Duration { return d / 2 }
	return []paperModel{
		{
			name: "ResNet50",
			spec: workload.ResNet50(),
			step: workload.Balanced{Base: compress(workload.ResNet50().BaseStep), Jitter: 0.05},
		},
		{
			name: "VGG16",
			spec: workload.VGG16(),
			step: workload.Balanced{Base: compress(workload.VGG16().BaseStep), Jitter: 0.05},
		},
		{
			name: "LSTM",
			spec: workload.LSTM(),
			step: workload.LongTail{
				MeanStep: compress(1219 * time.Millisecond),
				StdDev:   compress(760 * time.Millisecond),
				Min:      compress(156 * time.Millisecond),
				Max:      compress(8000 * time.Millisecond),
			},
		},
	}
}

// compressedComm scales every communication cost by the same 2x factor as
// the compressed step times, preserving the comm-to-compute and
// copy-to-step ratios of the full-scale system.
func compressedComm() workload.CommModel {
	c := workload.DefaultComm()
	c.Bandwidth *= 2
	c.PCIeBandwidth *= 2
	c.Latency /= 2
	return c
}

// fullModels returns the Section 7.2 workloads at their uncompressed base
// step times (for overhead accounting that must match absolute ratios).
func fullModels() []paperModel {
	return []paperModel{
		{name: "ResNet50", spec: workload.ResNet50(),
			step: workload.Balanced{Base: workload.ResNet50().BaseStep, Jitter: 0.05}},
		{name: "VGG16", spec: workload.VGG16(),
			step: workload.Balanced{Base: workload.VGG16().BaseStep, Jitter: 0.05}},
		{name: "LSTM", spec: workload.LSTM(), step: workload.VideoBatchSampler()},
		{name: "Transformer", spec: workload.Transformer(),
			step: workload.SentenceBatchSampler(workload.Transformer().BaseStep)},
	}
}

// transformerModel returns the Section 7.2.2 workload.
func transformerModel() paperModel {
	return paperModel{
		name: "Transformer",
		spec: workload.Transformer(),
		step: workload.SentenceBatchSampler(workload.Transformer().BaseStep / 2),
	}
}

// baseConfig assembles a trainsim.Config for the shared suite.
func (s *suite) baseConfig(strategy trainsim.Strategy, pm paperModel, workers, iterations int, seed int64) trainsim.Config {
	return trainsim.Config{
		Strategy:      strategy,
		Workers:       workers,
		Model:         s.model,
		Dataset:       s.train,
		EvalSet:       s.val,
		BatchSize:     32,
		LR:            0.3,
		Momentum:      0.9,
		WeightDecay:   1e-4,
		Step:          pm.step,
		Spec:          pm.spec,
		Comm:          compressedComm(),
		MaxIterations: iterations,
		EvalEvery:     5,
		Seed:          seed,
	}
}

// randomHetero is the dynamic-heterogeneity injection of Section 8.1: the
// paper's random 0-50 ms per-iteration delays, plus occasional transient
// spikes standing in for the co-located-workload bursts and mixed GPU
// generations (K80/1080Ti/2080Ti) of the physical testbed, which the
// injected delays rode on top of.
func randomHetero() hetero.Injector {
	return hetero.Stack{
		hetero.UniformRandom{Lo: 0, Hi: 50 * time.Millisecond},
		hetero.TransientSpikes{P: 0.02, Lo: time.Second, Hi: 2 * time.Second},
	}
}

// strategiesUnderTest is the comparison set of Section 7.3.
func strategiesUnderTest() []trainsim.Strategy {
	return []trainsim.Strategy{
		trainsim.Horovod,
		trainsim.EagerSGD,
		trainsim.ADPSGD,
		trainsim.RNA,
	}
}

// fmtDur renders a duration rounded for tables.
func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

// fmtPct renders a ratio as a percentage.
func fmtPct(x float64) string {
	return fmt.Sprintf("%.1f%%", x*100)
}

// fmtX renders a speedup factor.
func fmtX(x float64) string {
	return fmt.Sprintf("%.2fx", x)
}

// sortedKeys returns map keys in sorted order (stable rendering).
func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
