package experiment

import (
	"fmt"
	"strings"

	"repro/internal/trainsim"
)

// Table2SpeedFactors models the paper's physical testbed (Table 2): four
// nodes with 2× Tesla K80, two nodes with 8× GTX-1080Ti and four nodes with
// 2× GTX-2080Ti — 32 GPUs across three hardware generations. Factors are
// relative ResNet-class training throughput (2080Ti = 1).
func Table2SpeedFactors() []float64 {
	factors := make([]float64, 0, 32)
	for i := 0; i < 8; i++ { // 4 nodes x 2 K80
		factors = append(factors, 2.6)
	}
	for i := 0; i < 16; i++ { // 2 nodes x 8 1080Ti
		factors = append(factors, 1.35)
	}
	for i := 0; i < 8; i++ { // 4 nodes x 2 2080Ti
		factors = append(factors, 1.0)
	}
	return factors
}

// Testbed simulates the paper's full 32-GPU Table 2 cluster — three GPU
// generations with no artificial delay injection at all: the hardware mix
// is the heterogeneity. It compares every strategy's time to the target
// loss and reports the groups the ζ > v rule forms.
func Testbed(opts Options) (*Report, error) {
	rep := newReport("testbed", "The paper's Table 2 cluster: 32 GPUs across three generations")
	s, err := newSuite(opts.seed())
	if err != nil {
		return nil, err
	}
	factors := Table2SpeedFactors()
	pm := paperModels()[0] // ResNet50
	capIters := opts.iters(4000)

	headers := []string{"approach", "time-to-target", "iters", "mean iter", "val top-1"}
	strategies := fig6Strategies()
	cfgs := make([]trainsim.Config, len(strategies))
	for i, st := range strategies {
		cfg := s.baseConfig(st, pm, len(factors), capIters, opts.seed())
		cfg.SpeedFactors = factors
		cfg.TargetLoss = fig6Target
		cfgs[i] = cfg
	}
	results, err := runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	var table [][]string
	var baseline float64
	for i, st := range strategies {
		res := results[i]
		if st == trainsim.Horovod {
			baseline = res.VirtualTime.Seconds()
		}
		table = append(table, []string{
			st.String(), fmtDur(res.VirtualTime), fmt.Sprint(res.Iterations),
			fmtDur(res.MeanIterTime()), fmtPct(res.ValTop1),
		})
		rep.Metrics["time/"+st.String()] = res.VirtualTime.Seconds()
		rep.Metrics["speedup/"+st.String()] = baseline / res.VirtualTime.Seconds()
		rep.Metrics["top1/"+st.String()] = res.ValTop1
	}

	var body strings.Builder
	body.WriteString("32 workers: 8x K80 (2.6x slower), 16x 1080Ti (1.35x), 8x 2080Ti (1.0x);\n")
	body.WriteString("no injected delays — the GPU generations are the heterogeneity.\n\n")
	body.WriteString(renderTable(headers, table))
	fmt.Fprintf(&body, "\nSpeedups vs Horovod: eager %.2fx, AD-PSGD %.2fx, RNA %.2fx, RNA-H %.2fx.\n",
		rep.Metrics["speedup/eager-SGD"], rep.Metrics["speedup/AD-PSGD"],
		rep.Metrics["speedup/RNA"], rep.Metrics["speedup/RNA-H"])
	body.WriteString("Deterministic hardware bands pace the collective protocols through the\n")
	body.WriteString("bounded-delay window; the hierarchical scheme isolates each generation\n")
	body.WriteString("into its own ring and recovers the speedup — the paper's Section 4 thesis\n")
	body.WriteString("on its own hardware mix.\n")
	rep.Body = body.String()
	return rep, nil
}
