package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/hetero"
	"repro/internal/trainsim"
)

// fig6Target is the training-loss target the Section 8.1 runs train to.
const fig6Target = 0.40

// fig6Strategies is the comparison set of Fig. 6 (RNA-H added for the mixed
// rows, as in the paper's "H" bars).
func fig6Strategies() []trainsim.Strategy {
	return []trainsim.Strategy{
		trainsim.Horovod,
		trainsim.EagerSGD,
		trainsim.ADPSGD,
		trainsim.RNA,
		trainsim.RNAHierarchical,
	}
}

// targetConfig assembles one to-target training configuration.
func targetConfig(s *suite, strat trainsim.Strategy, pm paperModel, workers, capIters int, inj hetero.Injector, seed int64) trainsim.Config {
	cfg := s.baseConfig(strat, pm, workers, capIters, seed)
	cfg.Injector = inj
	cfg.TargetLoss = fig6Target
	return cfg
}

// Fig6 reproduces the training-speedup comparison of Section 8.1: time to a
// fixed training loss under random 0–50 ms delays, for ResNet50, VGG16 and
// LSTM, plus the mixed-heterogeneity rows (group B slowed a further
// 50–100 ms) marked "-M". Speedups are relative to Horovod on the same row.
func Fig6(opts Options) (*Report, error) {
	rep := newReport("fig6", "Training speedup over Horovod")
	s, err := newSuite(opts.seed())
	if err != nil {
		return nil, err
	}
	workers := opts.workers(8)
	capIters := opts.iters(4000)

	type row struct {
		name string
		pm   paperModel
		inj  hetero.Injector
	}
	uniform := randomHetero()
	var rows []row
	for _, pm := range paperModels() {
		rows = append(rows, row{pm.name, pm, uniform})
	}
	for _, pm := range paperModels()[:2] { // ResNet50-M and VGG16-M
		rows = append(rows, row{pm.name + "-M", pm, hetero.NewMixedGroups(workers)})
	}

	headers := []string{"workload"}
	for _, st := range fig6Strategies() {
		headers = append(headers, st.String())
	}
	var cfgs []trainsim.Config
	for _, r := range rows {
		for _, st := range fig6Strategies() {
			cfgs = append(cfgs, targetConfig(s, st, r.pm, workers, capIters, r.inj, opts.seed()))
		}
	}
	results, err := runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	var table [][]string
	next := 0
	for _, r := range rows {
		cells := []string{r.name}
		var baseline time.Duration
		for _, st := range fig6Strategies() {
			res := results[next]
			next++
			if st == trainsim.Horovod {
				baseline = res.VirtualTime
			}
			speedup := float64(baseline) / float64(res.VirtualTime)
			cells = append(cells, fmt.Sprintf("%s (%s)", fmtX(speedup), fmtDur(res.VirtualTime)))
			rep.Metrics[fmt.Sprintf("speedup/%s/%s", st, r.name)] = speedup
			rep.Metrics[fmt.Sprintf("reached/%s/%s", st, r.name)] = b2f(res.ReachedTarget)
		}
		table = append(table, cells)
	}
	var body strings.Builder
	fmt.Fprintf(&body, "Time to training loss %.2f on %d workers (speedup vs Horovod; paper: RNA 1.4-1.8x, hierarchical stable under mixed heterogeneity).\n\n", fig6Target, workers)
	body.WriteString(renderTable(headers, table))
	rep.Body = body.String()
	return rep, nil
}

// Fig7 reproduces the LSTM convergence curves of Section 8.1: training loss
// and accuracy against virtual time for each approach, sampled at epoch-like
// intervals.
func Fig7(opts Options) (*Report, error) {
	rep := newReport("fig7", "Convergence curve for LSTM")
	s, err := newSuite(opts.seed())
	if err != nil {
		return nil, err
	}
	workers := opts.workers(8)
	lstm := paperModels()[2]
	uniform := randomHetero()

	var body strings.Builder
	headers := []string{"approach", "time-to-target", "iters", "final loss", "final acc"}
	var cfgs []trainsim.Config
	for _, st := range strategiesUnderTest() {
		cfgs = append(cfgs, targetConfig(s, st, lstm, workers, opts.iters(3000), uniform, opts.seed()))
	}
	results, err := runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	var table [][]string
	for i, st := range strategiesUnderTest() {
		res := results[i]
		table = append(table, []string{
			st.String(), fmtDur(res.VirtualTime), fmt.Sprint(res.Iterations),
			fmt.Sprintf("%.3f", res.FinalLoss), fmtPct(res.TrainAcc),
		})
		rep.Metrics["time/"+st.String()] = res.VirtualTime.Seconds()
		rep.Metrics["loss/"+st.String()] = res.FinalLoss
		rep.Metrics["acc/"+st.String()] = res.TrainAcc

		fmt.Fprintf(&body, "%s curve (time, loss, acc):", st)
		for i, pt := range res.Curve {
			if i%4 == 0 || i == len(res.Curve)-1 {
				fmt.Fprintf(&body, " (%s, %.2f, %.0f%%)", fmtDur(pt.Time), pt.Loss, pt.Acc*100)
			}
		}
		body.WriteByte('\n')
	}
	body.WriteByte('\n')
	body.WriteString(renderTable(headers, table))
	rep.Body = body.String()
	return rep, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
