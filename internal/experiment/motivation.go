package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/hetero"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trainsim"
	"repro/internal/workload"
)

// Fig1 reproduces the motivation study of Section 2.3.1: a three-worker BSP
// cluster running ResNet-56 and VGG-16 on CIFAR-10-class workloads with
// 10 ms / 40 ms deterministic delays injected on workers 2 and 3. The table
// reports each worker's compute vs waiting share of the iteration time.
func Fig1(opts Options) (*Report, error) {
	rep := newReport("fig1", "Training time breakdown with different system configurations")
	s, err := newSuite(opts.seed())
	if err != nil {
		return nil, err
	}
	delays := hetero.PerNode{Delays: []time.Duration{0, 10 * time.Millisecond, 40 * time.Millisecond}}
	var body strings.Builder
	// CIFAR-10 step times: ResNet-56 at its spec step, VGG-16 on 32x32
	// inputs is far cheaper than its ImageNet-scale base step.
	fig1Models := []paperModel{
		{name: "ResNet56", spec: workload.ResNet56(),
			step: workload.Balanced{Base: workload.ResNet56().BaseStep, Jitter: 0.05}},
		{name: "VGG16", spec: workload.VGG16(),
			step: workload.Balanced{Base: 80 * time.Millisecond, Jitter: 0.05}},
	}
	for _, pm := range fig1Models {
		spec := pm.spec
		cfg := s.baseConfig(trainsim.Horovod, pm, 3, opts.iters(100), opts.seed())
		cfg.Injector = delays
		cfg.Comm = workload.TenGbEComm() // the motivation cluster is 10 GbE
		res, err := trainsim.Run(cfg)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&body, "%s (batch %d, %d iterations):\n", spec.Name, spec.BatchSize, res.Iterations)
		body.WriteString(stats.Table([]string{"w1 (+0ms)", "w2 (+10ms)", "w3 (+40ms)"}, res.Breakdowns))
		body.WriteByte('\n')
		for w, b := range res.Breakdowns {
			rep.Metrics[fmt.Sprintf("waitfrac/%s/w%d", spec.Name, w+1)] = b.WaitFrac()
			rep.Metrics[fmt.Sprintf("computefrac/%s/w%d", spec.Name, w+1)] = b.ComputeFrac()
		}
	}
	rep.Body = body.String()
	return rep, nil
}

// Fig2 reproduces the load-imbalance study of Section 2.3.1: the UCF101
// video-length distribution (13,320 videos) and the per-batch training-time
// distribution of a single-layer LSTM over 2,000 sampled batches.
func Fig2(opts Options) (*Report, error) {
	rep := newReport("fig2", "Inherent load imbalance from training LSTM on UCF101")
	src := rng.New(opts.seed())

	// (a) Video length distribution.
	const videos = 13320
	lengths := stats.NewSample(videos)
	for i := 0; i < videos; i++ {
		lengths.Add(workload.VideoLengthFrames(src.Split(i)))
	}
	lmean, err := lengths.Mean()
	if err != nil {
		return nil, err
	}
	lsd, _ := lengths.StdDev()
	lmin, _ := lengths.Min()
	lmax, _ := lengths.Max()
	lhist, err := stats.NewHistogram(lengths.Values(), 12, 0, 600)
	if err != nil {
		return nil, err
	}

	// (b) LSTM batch training times over 2000 batches.
	const batches = 2000
	sampler := workload.VideoBatchSampler()
	times := stats.NewSample(batches)
	bsrc := src.Split(999999)
	for i := 0; i < batches; i++ {
		times.Add(float64(sampler.Sample(bsrc)) / float64(time.Millisecond))
	}
	tmean, _ := times.Mean()
	tsd, _ := times.StdDev()
	tmin, _ := times.Min()
	tmax, _ := times.Max()
	thist, err := stats.NewHistogram(times.Values(), 12, 0, 6000)
	if err != nil {
		return nil, err
	}

	var body strings.Builder
	fmt.Fprintf(&body, "(a) UCF101 video lengths (%d videos): mean %.0f frames, stddev %.1f, range [%.0f, %.0f]\n",
		videos, lmean, lsd, lmin, lmax)
	fmt.Fprintf(&body, "    (paper: mean 186, stddev 97.7, range [29, 1776])\n")
	body.WriteString(lhist.Render(40))
	fmt.Fprintf(&body, "\n(b) LSTM batch training times (%d batches): mean %.0f ms, stddev %.0f, range [%.0f, %.0f] ms\n",
		batches, tmean, tsd, tmin, tmax)
	fmt.Fprintf(&body, "    (paper: mean 1219 ms, stddev 760, range [156, 8000] ms)\n")
	body.WriteString(thist.Render(40))
	rep.Body = body.String()

	rep.Metrics["video/mean"] = lmean
	rep.Metrics["video/stddev"] = lsd
	rep.Metrics["batchms/mean"] = tmean
	rep.Metrics["batchms/stddev"] = tsd
	return rep, nil
}

// Fig3 reproduces the blocking vs non-blocking timeline of Section 2.3.2: a
// three-worker cluster with a persistent straggler, first under the default
// blocking AllReduce, then under the non-blocking (RNA) variant.
func Fig3(opts Options) (*Report, error) {
	rep := newReport("fig3", "Blocking vs non-blocking AllReduce")
	s, err := newSuite(opts.seed())
	if err != nil {
		return nil, err
	}
	pm := paperModel{
		name: "ResNet56",
		spec: workload.ResNet56(),
		step: workload.Balanced{Base: workload.ResNet56().BaseStep, Jitter: 0.1},
	}
	delays := hetero.PerNode{Delays: []time.Duration{0, 35 * time.Millisecond, 10 * time.Millisecond}}

	var body strings.Builder
	horizon := 400 * time.Millisecond
	for _, strat := range []trainsim.Strategy{trainsim.Horovod, trainsim.RNA} {
		cfg := s.baseConfig(strat, pm, 3, 5, opts.seed())
		cfg.Injector = delays
		cfg.CollectTrace = true
		res, err := trainsim.Run(cfg)
		if err != nil {
			return nil, err
		}
		label := "(a) Blocking AllReduce (BSP barrier)"
		if strat == trainsim.RNA {
			label = "(b) Non-blocking AllReduce (RNA)"
		}
		fmt.Fprintf(&body, "%s — %d iterations in %v:\n", label, res.Iterations, fmtDur(res.VirtualTime))
		body.WriteString(res.Trace.Render(76, horizon))
		body.WriteByte('\n')
		rep.Metrics["time/"+strat.String()] = res.VirtualTime.Seconds()
	}
	rep.Body = body.String()
	return rep, nil
}

// Fig4 reproduces the cross-iteration working example of Section 3.3: two
// workers under RNA where the slower worker sometimes contributes a null
// gradient and sometimes a locally accumulated multi-iteration reduction.
func Fig4(opts Options) (*Report, error) {
	rep := newReport("fig4", "RNA cross-iteration execution")
	s, err := newSuite(opts.seed())
	if err != nil {
		return nil, err
	}
	pm := paperModel{
		name: "ResNet56",
		spec: workload.ResNet56(),
		step: workload.Balanced{Base: workload.ResNet56().BaseStep, Jitter: 0.3},
	}
	cfg := s.baseConfig(trainsim.RNA, pm, 2, opts.iters(60), opts.seed())
	cfg.Injector = hetero.PerNode{Delays: []time.Duration{0, 30 * time.Millisecond}}
	cfg.CollectTrace = true
	res, err := trainsim.Run(cfg)
	if err != nil {
		return nil, err
	}
	nulls := 0
	for _, sp := range res.Trace.Spans() {
		if sp.Kind.String() == "null" {
			nulls++
		}
	}
	var body strings.Builder
	fmt.Fprintf(&body, "Two workers, w1 persistently +30 ms; %d synchronizations, %d null contributions (%.0f%% of slots).\n",
		res.Iterations, nulls, res.NullContribRate*100)
	body.WriteString(res.Trace.Render(76, 600*time.Millisecond))
	fmt.Fprintf(&body, "\nFinal training accuracy %.1f%% — cross-iteration accumulation preserves the slow worker's gradients.\n",
		res.TrainAcc*100)
	rep.Body = body.String()
	rep.Metrics["nullrate"] = res.NullContribRate
	rep.Metrics["trainacc"] = res.TrainAcc
	return rep, nil
}
