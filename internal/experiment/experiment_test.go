package experiment

import (
	"strings"
	"testing"
)

// quick runs every experiment at a small scale; individual shape assertions
// live in the focused tests below.
var quickOpts = Options{Seed: 3, Scale: 0.05}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) < 12 {
		t.Fatalf("registry has %d experiments", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate id %q", id)
		}
		seen[id] = true
		title, err := Title(id)
		if err != nil || title == "" {
			t.Errorf("Title(%q) = (%q, %v)", id, title, err)
		}
	}
	if _, err := Title("nope"); err == nil {
		t.Error("unknown title should error")
	}
	if _, err := Run("nope", quickOpts); err == nil {
		t.Error("unknown id should error")
	}
}

func TestAllExperimentsProduceReports(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(id, quickOpts)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != id {
				t.Errorf("report id = %q", rep.ID)
			}
			if strings.TrimSpace(rep.Body) == "" {
				t.Error("empty report body")
			}
			if len(rep.Metrics) == 0 {
				t.Error("no metrics recorded")
			}
		})
	}
}

func TestFig1Shape(t *testing.T) {
	rep, err := Fig1(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	// The fast worker must wait more than the slowest worker, on both
	// models.
	for _, m := range []string{"ResNet56", "VGG16"} {
		if rep.Metrics["waitfrac/"+m+"/w1"] <= rep.Metrics["waitfrac/"+m+"/w3"] {
			t.Errorf("%s: fast worker wait %.3f not above slow worker wait %.3f",
				m, rep.Metrics["waitfrac/"+m+"/w1"], rep.Metrics["waitfrac/"+m+"/w3"])
		}
	}
}

func TestFig2Shape(t *testing.T) {
	rep, err := Fig2(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if m := rep.Metrics["video/mean"]; m < 170 || m > 200 {
		t.Errorf("video mean %.1f outside paper's ~186", m)
	}
	if m := rep.Metrics["batchms/mean"]; m < 1100 || m > 1350 {
		t.Errorf("batch-time mean %.0f ms outside paper's ~1219", m)
	}
}

func TestFig3Shape(t *testing.T) {
	rep, err := Fig3(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics["time/RNA"] >= rep.Metrics["time/Horovod"] {
		t.Errorf("RNA timeline (%.3fs) should finish its iterations before BSP (%.3fs)",
			rep.Metrics["time/RNA"], rep.Metrics["time/Horovod"])
	}
	if !strings.Contains(rep.Body, "o") {
		t.Error("non-blocking trace should show null contributions")
	}
}

func TestFig4Shape(t *testing.T) {
	rep, err := Fig4(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics["nullrate"] <= 0 {
		t.Error("cross-iteration example should show null contributions")
	}
	if rep.Metrics["trainacc"] < 0.5 {
		t.Errorf("training accuracy %.2f too low", rep.Metrics["trainacc"])
	}
}

func TestFig6Shape(t *testing.T) {
	rep, err := Fig6(Options{Seed: 3, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// RNA beats Horovod on every random-heterogeneity workload.
	for _, wl := range []string{"ResNet50", "VGG16", "LSTM"} {
		if s := rep.Metrics["speedup/RNA/"+wl]; s <= 1.0 {
			t.Errorf("RNA speedup on %s = %.2f, want > 1", wl, s)
		}
	}
	// Under mixed (deterministic) heterogeneity the bounded-delay gate
	// paces plain RNA at the slow group's rate — the probabilistic
	// approach cannot handle the deterministic slowdown — while the
	// hierarchical scheme restores a clear win (the paper's §4 headline).
	for _, wl := range []string{"ResNet50-M", "VGG16-M"} {
		rnaM := rep.Metrics["speedup/RNA/"+wl]
		hierM := rep.Metrics["speedup/RNA-H/"+wl]
		if hierM <= rnaM {
			t.Errorf("%s: RNA-H (%.2f) should beat plain RNA (%.2f)", wl, hierM, rnaM)
		}
		if hierM <= 1.2 {
			t.Errorf("%s: RNA-H speedup = %.2f, want clearly above Horovod", wl, hierM)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	rep, err := Fig8(Options{Seed: 3, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, env := range []string{"homogeneous", "heterogeneous"} {
		if s := rep.Metrics["periter/"+env+"/RNA"]; s <= 1.0 {
			t.Errorf("RNA per-iteration speedup (%s) = %.2f", env, s)
		}
		if s := rep.Metrics["overall/"+env+"/RNA"]; s <= 1.0 {
			t.Errorf("RNA overall speedup (%s) = %.2f", env, s)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	rep, err := Fig9(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	// RNA throughput at 32 processes beats Horovod's.
	if rep.Metrics["throughput/32/RNA"] <= rep.Metrics["throughput/32/Horovod"] {
		t.Errorf("RNA throughput (%.2f) should beat Horovod (%.2f) at 32 processes",
			rep.Metrics["throughput/32/RNA"], rep.Metrics["throughput/32/Horovod"])
	}
}

func TestFig10Shape(t *testing.T) {
	rep, err := Fig10(Options{Seed: 3, Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics["ratio/q1q2"] < 1.3 {
		t.Errorf("q1/q2 median ratio = %.2f, want ≥ 1.3 (paper: 2.4)", rep.Metrics["ratio/q1q2"])
	}
	// Oversampling beyond a handful of probes stops helping.
	if rep.Metrics["median/q8"] < rep.Metrics["median/q4"]*0.9 {
		t.Errorf("q=8 median (%.1f) should not be much below q=4 (%.1f)",
			rep.Metrics["median/q8"], rep.Metrics["median/q4"])
	}
	// Spread shrinks from one choice to two.
	if rep.Metrics["spread/q2"] >= rep.Metrics["spread/q1"] {
		t.Errorf("q=2 spread (%.1f) should be below q=1 (%.1f)",
			rep.Metrics["spread/q2"], rep.Metrics["spread/q1"])
	}
}

func TestTable3Shape(t *testing.T) {
	rep, err := Table3(Options{Seed: 3, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// AD-PSGD must not beat Horovod on final accuracy for the plain
	// ResNet column (paper: clearly lower).
	if rep.Metrics["acc/AD-PSGD/ResNet"] > rep.Metrics["acc/Horovod/ResNet"]+0.03 {
		t.Errorf("AD-PSGD accuracy (%.3f) above Horovod (%.3f)",
			rep.Metrics["acc/AD-PSGD/ResNet"], rep.Metrics["acc/Horovod/ResNet"])
	}
}

func TestTable4Shape(t *testing.T) {
	rep, err := Table4(Options{Seed: 3, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// RNA completes more iterations than Horovod in a fixed time budget.
	for _, m := range []string{"ResNet50", "LSTM"} {
		if rep.Metrics["iters/"+m+"/RNA"] <= rep.Metrics["iters/"+m+"/Horovod"] {
			t.Errorf("%s: RNA iterations (%v) not above Horovod (%v)",
				m, rep.Metrics["iters/"+m+"/RNA"], rep.Metrics["iters/"+m+"/Horovod"])
		}
	}
}

func TestTable5Shape(t *testing.T) {
	rep, err := Table5(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	vgg := rep.Metrics["measured/VGG16"]
	resnet := rep.Metrics["measured/ResNet50"]
	lstm := rep.Metrics["measured/LSTM"]
	tf := rep.Metrics["measured/Transformer"]
	if !(vgg > tf && tf > resnet && resnet > lstm) {
		t.Errorf("overhead ordering violated: vgg=%.3f tf=%.3f resnet=%.3f lstm=%.3f",
			vgg, tf, resnet, lstm)
	}
	// Paper's bands: ResNet50 6.2%, LSTM 3.8%, VGG16 23%, Transformer 18%.
	if resnet < 0.02 || resnet > 0.12 {
		t.Errorf("ResNet50 overhead %.3f outside plausible band around 6.2%%", resnet)
	}
	if vgg < 0.15 || vgg > 0.40 {
		t.Errorf("VGG16 overhead %.3f outside plausible band around 23%%", vgg)
	}
}

func TestAblationLRScaleShape(t *testing.T) {
	rep, err := AblationLRScale(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics["loss/scaled"] <= 0 || rep.Metrics["loss/unscaled"] <= 0 {
		t.Error("missing losses")
	}
}

func TestAblationRingShape(t *testing.T) {
	rep, err := AblationRing(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if adv := rep.Metrics["advantage/VGG16/32"]; adv < 16 {
		t.Errorf("ring advantage at 32 workers = %.1f, want ≫ 1", adv)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.seed() != 1 {
		t.Errorf("default seed = %d", o.seed())
	}
	if o.scale() != 1 {
		t.Errorf("default scale = %v", o.scale())
	}
	if o.workers(8) != 8 {
		t.Errorf("default workers = %d", o.workers(8))
	}
	if o.iters(5) != 20 {
		t.Errorf("iters floor = %d, want 20", o.iters(5))
	}
	o = Options{Scale: 2, Workers: 3, Seed: 9}
	if o.scale() != 1 {
		t.Errorf("scale > 1 should clamp to 1")
	}
	if o.workers(8) != 3 || o.seed() != 9 {
		t.Error("explicit options ignored")
	}
}

func TestRenderTable(t *testing.T) {
	out := renderTable([]string{"a", "bbbb"}, [][]string{{"xxxxx", "y"}, {"1", "2"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "-----") {
		t.Errorf("missing separator:\n%s", out)
	}
}

func TestTheoryConvergenceShape(t *testing.T) {
	rep, err := TheoryConvergence(Options{Seed: 3, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	// More iterations must not increase the gradient norm.
	small := rep.Metrics["gradsq/K50"]
	if small == 0 {
		// Scale-dependent key; find the smallest and largest K.
		var kmin, kmax string
		for k := range rep.Metrics {
			if len(k) > 8 && k[:7] == "gradsq/" && k[7] == 'K' {
				if kmin == "" || len(k) < len(kmin) || (len(k) == len(kmin) && k < kmin) {
					kmin = k
				}
				if kmax == "" || len(k) > len(kmax) || (len(k) == len(kmax) && k > kmax) {
					kmax = k
				}
			}
		}
		if kmin == "" || kmax == kmin {
			t.Fatalf("missing rate metrics: %v", rep.Metrics)
		}
		if rep.Metrics[kmax] > rep.Metrics[kmin] {
			t.Errorf("gradient norm grew with K: %s=%v %s=%v",
				kmin, rep.Metrics[kmin], kmax, rep.Metrics[kmax])
		}
	}
	// Staleness independence: η=16 within 10x of η=2 (noise floor).
	if rep.Metrics["gradsq/eta16"] > rep.Metrics["gradsq/eta2"]*10 {
		t.Errorf("staleness dependence: eta2=%v eta16=%v",
			rep.Metrics["gradsq/eta2"], rep.Metrics["gradsq/eta16"])
	}
}

func TestTestbedShape(t *testing.T) {
	rep, err := Testbed(Options{Seed: 3, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// On the three-generation hardware mix, hierarchical RNA must beat
	// every flat protocol.
	hier := rep.Metrics["speedup/RNA-H"]
	for _, st := range []string{"eager-SGD", "AD-PSGD", "RNA"} {
		if hier <= rep.Metrics["speedup/"+st] {
			t.Errorf("RNA-H (%.2f) should beat %s (%.2f) on the Table 2 mix",
				hier, st, rep.Metrics["speedup/"+st])
		}
	}
	if hier <= 1.5 {
		t.Errorf("RNA-H speedup = %.2f, want clearly above Horovod", hier)
	}
}

func TestTable2SpeedFactors(t *testing.T) {
	f := Table2SpeedFactors()
	if len(f) != 32 {
		t.Fatalf("testbed has %d GPUs, want 32", len(f))
	}
	if f[0] != 2.6 || f[8] != 1.35 || f[31] != 1.0 {
		t.Errorf("factors = %v", f[:32])
	}
}
