package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/hetero"
	"repro/internal/trainsim"
)

// Fig8 reproduces the Transformer throughput study of Section 8.3: the
// per-iteration speedup (mean time between synchronizations) and the
// overall speedup (time to a fixed loss) against Horovod, in a homogeneous
// environment (only the sentence-length imbalance) and a heterogeneous one
// (plus random 0–50 ms slowdowns).
func Fig8(opts Options) (*Report, error) {
	rep := newReport("fig8", "Transformer per-iteration and overall speedups")
	s, err := newSuite(opts.seed())
	if err != nil {
		return nil, err
	}
	workers := opts.workers(16)
	pm := transformerModel()
	capIters := opts.iters(4000)

	envs := []struct {
		name string
		inj  hetero.Injector
	}{
		{"homogeneous", hetero.None{}},
		{"heterogeneous", randomHetero()},
	}

	var cfgs []trainsim.Config
	for _, env := range envs {
		for _, st := range strategiesUnderTest() {
			cfgs = append(cfgs, targetConfig(s, st, pm, workers, capIters, env.inj, opts.seed()))
		}
	}
	results, err := runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	var body strings.Builder
	next := 0
	for _, env := range envs {
		headers := []string{"approach", "per-iter time", "per-iter speedup", "time-to-target", "overall speedup"}
		var table [][]string
		var basePerIter, baseOverall time.Duration
		for _, st := range strategiesUnderTest() {
			res := results[next]
			next++
			if st == trainsim.Horovod {
				basePerIter = res.MeanIterTime()
				baseOverall = res.VirtualTime
			}
			perIterX := float64(basePerIter) / float64(res.MeanIterTime())
			overallX := float64(baseOverall) / float64(res.VirtualTime)
			table = append(table, []string{
				st.String(), fmtDur(res.MeanIterTime()), fmtX(perIterX),
				fmtDur(res.VirtualTime), fmtX(overallX),
			})
			rep.Metrics[fmt.Sprintf("periter/%s/%s", env.name, st)] = perIterX
			rep.Metrics[fmt.Sprintf("overall/%s/%s", env.name, st)] = overallX
		}
		fmt.Fprintf(&body, "%s environment (%d workers, 4096-token batches):\n", env.name, workers)
		body.WriteString(renderTable(headers, table))
		body.WriteByte('\n')
	}
	body.WriteString("Paper: RNA 2.6x per-iteration / 2.2x overall (homogeneous); eager-SGD degrades under heterogeneity while RNA and AD-PSGD stay stable.\n")
	rep.Body = body.String()
	return rep, nil
}

// Fig9 reproduces the scalability sweep of Section 8.3: throughput
// (synchronizations per second) for 4→32 processes on the Transformer
// workload, plus the final model quality (our accuracy analogue of the
// paper's BLEU comparison between RNA and AD-PSGD).
func Fig9(opts Options) (*Report, error) {
	rep := newReport("fig9", "Throughput scalability on Transformer/WMT17")
	s, err := newSuite(opts.seed())
	if err != nil {
		return nil, err
	}
	pm := transformerModel()
	iters := opts.iters(600)
	scales := []int{4, 8, 16, 32}
	inj := hetero.UniformRandom{Lo: 0, Hi: 30 * time.Millisecond}

	headers := []string{"processes"}
	for _, st := range strategiesUnderTest() {
		headers = append(headers, st.String()+" it/s")
	}
	var cfgs []trainsim.Config
	for _, n := range scales {
		for _, st := range strategiesUnderTest() {
			cfg := s.baseConfig(st, pm, n, iters, opts.seed())
			cfg.Injector = inj
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	var table [][]string
	finalAcc := map[string]float64{}
	next := 0
	for _, n := range scales {
		cells := []string{fmt.Sprint(n)}
		for _, st := range strategiesUnderTest() {
			res := results[next]
			next++
			cells = append(cells, fmt.Sprintf("%.2f", res.Throughput()))
			rep.Metrics[fmt.Sprintf("throughput/%d/%s", n, st)] = res.Throughput()
			if n == scales[len(scales)-1] {
				finalAcc[st.String()] = res.TrainAcc
				rep.Metrics[fmt.Sprintf("acc/%d/%s", n, st)] = res.TrainAcc
			}
		}
		table = append(table, cells)
	}
	var body strings.Builder
	body.WriteString(renderTable(headers, table))
	fmt.Fprintf(&body, "\nModel quality at 32 processes (accuracy; the paper's BLEU point — RNA 24 vs AD-PSGD 22):\n")
	for _, st := range strategiesUnderTest() {
		fmt.Fprintf(&body, "  %-14s %s\n", st.String(), fmtPct(finalAcc[st.String()]))
	}
	rep.Body = body.String()
	return rep, nil
}
