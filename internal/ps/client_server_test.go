package ps

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// startServers runs NewServer on each server endpoint and returns a Wait
// that propagates handler errors after the meshes close.
func startServers(t *testing.T, meshes []transport.Mesh, servers []int, cfg ServerConfig) func() {
	t.Helper()
	waits := make([]*Server, 0, len(servers))
	for _, r := range servers {
		srv, err := NewServer(meshes[r], cfg)
		if err != nil {
			t.Fatal(err)
		}
		waits = append(waits, srv)
	}
	return func() {
		for _, s := range waits {
			if err := s.Wait(); err != nil {
				t.Errorf("server: %v", err)
			}
		}
	}
}

func seq(dim int) tensor.Vector {
	v := tensor.New(dim)
	for i := range v {
		v[i] = float64(i%17) - 3.5
	}
	return v
}

func TestClientServerInMemory(t *testing.T) {
	const dim = 100
	net, err := transport.NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	eps := net.Endpoints()
	init := seq(dim)
	wait := startServers(t, eps, []int{1}, ServerConfig{Key: "m", Dim: dim, Init: init})

	cli, err := NewClient(eps[0], ClientConfig{Servers: []int{1}, Key: "m", Dim: dim})
	if err != nil {
		t.Fatal(err)
	}
	// Pull returns the seeded model at version 1.
	got, ver, err := cli.Pull()
	if err != nil {
		t.Fatal(err)
	}
	if ver != 1 {
		t.Errorf("pulled version = %d, want 1", ver)
	}
	for i := range got {
		if got[i] != init[i] {
			t.Fatalf("pulled[%d] = %v, want %v", i, got[i], init[i])
		}
	}
	// PushPull(Add) returns init+delta at version 2, bit-identical to the
	// whole-vector loopback op.
	delta := seq(dim)
	delta.Scale(0.25)
	got, ver, err = cli.PushPull(delta, Add, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 2 {
		t.Errorf("push-pull version = %d, want 2", ver)
	}
	want := init.Clone()
	if err := want.Add(delta); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("push-pull[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Push(Overwrite) then Pull round-trips.
	if _, err := cli.Push(init, Overwrite); err != nil {
		t.Fatal(err)
	}
	got, ver, err = cli.Pull()
	if err != nil || ver != 3 {
		t.Fatalf("pull after push: ver %d, %v", ver, err)
	}
	if got[7] != init[7] {
		t.Errorf("overwritten model diverged: %v vs %v", got[7], init[7])
	}
	_ = net.Close()
	wait()
}

func TestClientServerTCPMultiServer(t *testing.T) {
	const dim = 257 // odd: uneven chunk spans
	meshes, err := transport.NewTCPCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]transport.Mesh, len(meshes))
	for i, m := range meshes {
		eps[i] = m
	}
	init := seq(dim)
	scfg := ServerConfig{Key: "m", Dim: dim, Chunks: 6, Init: init}
	wait := startServers(t, eps, []int{1, 2}, scfg)

	cli, err := NewClient(eps[0], ClientConfig{Servers: []int{1, 2}, Key: "m", Dim: dim, Chunks: 6, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	delta := seq(dim)
	got, ver, err := cli.PushPull(delta, Average, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 2 {
		t.Errorf("version = %d, want 2", ver)
	}
	for i := range got {
		want := (init[i] + delta[i]) / 2
		if math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Fatalf("avg[%d] = %v, want %v", i, got[i], want)
		}
	}
	for _, m := range meshes {
		_ = m.Close()
	}
	wait()
}

// TestClientServerCompressedParity: an f16 exchange over the in-memory mesh
// and over TCP produce bit-identical results — the in-memory transport
// simulates the same quantize→dequantize round trip the wire performs, and
// both EF residuals live outside the transport.
func TestClientServerCompressedParity(t *testing.T) {
	const dim = 96
	run := func(mkMeshes func() ([]transport.Mesh, func())) []tensor.Vector {
		eps, closeAll := mkMeshes()
		init := seq(dim)
		wait := startServers(t, eps, []int{1}, ServerConfig{Key: "m", Dim: dim, Init: init})
		cli, err := NewClient(eps[0], ClientConfig{Servers: []int{1}, Key: "m", Dim: dim, Wire: tensor.F16})
		if err != nil {
			t.Fatal(err)
		}
		var outs []tensor.Vector
		for k := 0; k < 3; k++ {
			delta := seq(dim)
			delta.Scale(0.1 * float64(k+1))
			out, _, err := cli.PushPull(delta, Add, 0)
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, out)
		}
		closeAll()
		wait()
		return outs
	}
	mem := run(func() ([]transport.Mesh, func()) {
		net, err := transport.NewLocalNetwork(2)
		if err != nil {
			t.Fatal(err)
		}
		return net.Endpoints(), func() { _ = net.Close() }
	})
	tcp := run(func() ([]transport.Mesh, func()) {
		meshes, err := transport.NewTCPCluster(2)
		if err != nil {
			t.Fatal(err)
		}
		eps := make([]transport.Mesh, len(meshes))
		for i, m := range meshes {
			eps[i] = m
		}
		return eps, func() {
			for _, m := range meshes {
				_ = m.Close()
			}
		}
	})
	for k := range mem {
		for i := range mem[k] {
			if math.Float64bits(mem[k][i]) != math.Float64bits(tcp[k][i]) {
				t.Fatalf("exchange %d elem %d: mem %v vs tcp %v", k, i, mem[k][i], tcp[k][i])
			}
		}
	}
	// The EF carry keeps the compressed chain close to the exact one.
	exact := seq(dim)
	for k := 0; k < 3; k++ {
		d := seq(dim)
		d.Scale(0.1 * float64(k+1))
		if err := exact.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	final := mem[len(mem)-1]
	for i := range exact {
		if diff := math.Abs(final[i] - exact[i]); diff > 0.05*(math.Abs(exact[i])+1) {
			t.Fatalf("EF drift at %d: %v vs %v", i, final[i], exact[i])
		}
	}
}

func TestClientPullUnknownKey(t *testing.T) {
	net, err := transport.NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	eps := net.Endpoints()
	wait := startServers(t, eps, []int{1}, ServerConfig{Key: "m", Dim: 16}) // no Init
	cli, err := NewClient(eps[0], ClientConfig{Servers: []int{1}, Key: "m", Dim: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cli.Pull(); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("pull of unseeded key = %v, want ErrUnknownKey", err)
	}
	_ = net.Close()
	wait()
}

// TestNetworkedOrderedExchanges: two clients with interlocking version
// horizons produce a deterministic global operation order over the network,
// exactly like Store.PushPullMin in process.
func TestNetworkedOrderedExchanges(t *testing.T) {
	const dim = 32
	net, err := transport.NewLocalNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	eps := net.Endpoints()
	init := tensor.New(dim)
	wait := startServers(t, eps, []int{2}, ServerConfig{Key: "m", Dim: dim, Init: init})

	const rounds = 4
	results := make([][]tensor.Vector, 2)
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := NewClient(eps[g], ClientConfig{Servers: []int{2}, Key: "m", Dim: dim})
			if err != nil {
				t.Error(err)
				return
			}
			one := tensor.New(dim)
			one.Fill(1)
			for r := 0; r < rounds; r++ {
				// Exchange i = r*2+g must see version 1+i and publish 2+i.
				min := int64(1 + r*2 + g)
				out, ver, err := cli.PushPull(one, Add, min)
				if err != nil {
					t.Error(err)
					return
				}
				if ver != min+1 {
					t.Errorf("client %d round %d: version %d, want %d", g, r, ver, min+1)
				}
				results[g] = append(results[g], out)
			}
		}()
	}
	wg.Wait()
	// Exchange i leaves the model at (i+1)·ones regardless of scheduling.
	for g := 0; g < 2; g++ {
		for r := 0; r < rounds; r++ {
			want := float64(r*2 + g + 1)
			if got := results[g][r][dim-1]; got != want {
				t.Errorf("client %d round %d saw %v, want %v", g, r, got, want)
			}
		}
	}
	_ = net.Close()
	wait()
}
