package ps

import (
	"fmt"

	"repro/internal/transport"
)

// PS wire protocol (protocol v1 frame family, capability CapPS).
//
// A parameter-server exchange is chunked: the model splits into Chunks
// spans by the collective layer's ShardOffsets table, and every chunk
// travels as its own request frame so the server can publish — and the
// client can consume — early chunks while later ones are still in flight.
// All PS traffic runs on the reserved stream PSStream, so it never collides
// with collective frames multiplexed over the same mesh.
//
// Frame field assignments (on top of the v1 header, message.go):
//
//	request  (MsgPSPush / MsgPSPull / MsgPSPushPull)
//	    Iter    version horizon: the server delays a push-pull until the
//	            chunk's published version is ≥ Iter (0 = no wait). This is
//	            what makes the deterministic OrderedPS hierarchy possible
//	            over a network.
//	    Chunk   psTag(mode, chunk): update mode in the high bits, chunk
//	            index in the low 24 (pulls carry mode 0)
//	    Dtype   wire dtype of the pushed values; pulls set it to the dtype
//	            the reply should ship
//	    Payload pushed values (empty for pulls)
//
//	response (MsgPSAck)
//	    Iter    the chunk's new (or current) version; 0 signals an unknown
//	            key to a pull
//	    Chunk   echo of the request tag
//	    Payload chunk values for pull-class requests, empty for pushes
//
// Responses carry the version in the iteration tag rather than as a
// trailing payload element so a compressed reply never quantizes its own
// version number. Requests from one client are handled in FIFO order per
// server, so acks match requests positionally; the echoed tag is a
// cross-check, not a router.

// PSStream is the reserved stream id all parameter-server frames travel
// on. It sits far above the bucket ids the overlap reducer allocates, so
// PS and collective traffic multiplexed over one mesh cannot collide.
const PSStream int32 = 1 << 16

// chunkTagBits is the width of the chunk-index field inside the chunk tag;
// the update mode rides in the bits above it.
const chunkTagBits = 24

// MaxChunks bounds a PS deployment's chunk count (the tag's index field).
const MaxChunks = 1 << chunkTagBits

// psTag packs an update mode and a chunk index into the frame's chunk tag.
func psTag(mode UpdateMode, chunk int) int32 {
	return int32(mode)<<chunkTagBits | int32(chunk)
}

// splitTag unpacks a chunk tag. The mode is validated against the known
// update modes (0 allowed: pulls carry no mode); the chunk index is
// validated by the caller against its offset table.
func splitTag(tag int32) (UpdateMode, int, error) {
	if tag < 0 {
		return 0, 0, fmt.Errorf("ps: negative chunk tag %d", tag)
	}
	mode := UpdateMode(tag >> chunkTagBits)
	if mode > maxUpdateMode {
		return 0, 0, fmt.Errorf("ps: unknown update mode %d in chunk tag", mode)
	}
	return mode, int(tag & (MaxChunks - 1)), nil
}

// chunkKeys precomputes the store keys the logical key's chunks live
// under, so the request hot path never formats strings.
func chunkKeys(key string, chunks int) []string {
	keys := make([]string, chunks)
	for c := range keys {
		keys[c] = fmt.Sprintf("%s#%d", key, c)
	}
	return keys
}

// reqPayloadLen validates a request's payload length for its type against
// the chunk span.
func reqPayloadLen(typ transport.MsgType, got, span int) error {
	want := span
	if typ == transport.MsgPSPull {
		want = 0
	}
	if got != want {
		return fmt.Errorf("ps: request type %d chunk payload %d elems, want %d", typ, got, want)
	}
	return nil
}
