package ps

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/collective"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// DefaultChunks is the default chunk count a PS deployment splits its
// model into. More chunks buy more request pipelining and finer-grained
// server-side locking; fewer amortize the frame header better.
const DefaultChunks = 8

// ServerConfig configures one parameter-server rank. Clients and servers
// must agree on Key, Dim and Chunks — the chunk geometry is configuration,
// exactly like a collective's schedule.
type ServerConfig struct {
	// Key is the logical model key; chunk c is stored under "Key#c".
	Key string
	// Dim is the model dimension.
	Dim int
	// Chunks is the chunk-shard count (default DefaultChunks, clamped to
	// [1, min(Dim, MaxChunks)]).
	Chunks int
	// Init optionally seeds every chunk at version 1 with the
	// corresponding span of this vector (len Dim). Hierarchical training
	// seeds with the shared initial model so group deltas accumulate on
	// top of it.
	Init tensor.Vector
	// Store optionally supplies the backing store (a fresh one is built
	// when nil). Sharing a store between a Server and in-process callers
	// is how the loopback and networked paths stay interchangeable.
	Store *Store
}

func (c *ServerConfig) chunkCount() int {
	n := c.Chunks
	if n < 1 {
		n = DefaultChunks
	}
	if n > c.Dim {
		n = c.Dim
	}
	if n > MaxChunks {
		n = MaxChunks
	}
	return n
}

// Server serves the PS frame protocol for one rank of a mesh: one handler
// goroutine per peer decodes chunk requests in arrival order, applies them
// to the snapshot store, and acks — with the chunk's values for pull-class
// requests, shipped zero-copy from a pooled buffer. Because each chunk is
// its own store key, concurrent clients touching different chunks never
// contend, and pulls read published snapshots without blocking pushes.
//
// For lossy reply dtypes the server keeps one error-feedback residual per
// chunk on the owner side: each compressed reply carries the quantization
// error of the previous one, so the lost mass is corrected on the next
// pull instead of accumulating.
type Server struct {
	view    transport.Mesh
	store   *Store
	keys    []string
	offsets []int

	// resMu[c] guards res[c], the owner-side EF residual of chunk c
	// (allocated on first lossy reply).
	resMu []sync.Mutex
	res   []tensor.Vector

	wg       sync.WaitGroup
	errMu    sync.Mutex
	firstErr error
}

// NewServer validates cfg, seeds the store when Init is given, and starts
// one handler goroutine per peer rank. The handlers run until the mesh
// closes; Wait blocks for them and reports the first protocol violation.
func NewServer(mesh transport.Mesh, cfg ServerConfig) (*Server, error) {
	if cfg.Key == "" {
		return nil, fmt.Errorf("ps: empty server key")
	}
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("ps: server dim %d", cfg.Dim)
	}
	chunks := cfg.chunkCount()
	offsets, err := collective.ShardOffsets(cfg.Dim, chunks, nil)
	if err != nil {
		return nil, err
	}
	store := cfg.Store
	if store == nil {
		store = NewStore(chunks)
	}
	s := &Server{
		view:    transport.Streams(mesh).StreamView(PSStream),
		store:   store,
		keys:    chunkKeys(cfg.Key, chunks),
		offsets: offsets,
		resMu:   make([]sync.Mutex, chunks),
		res:     make([]tensor.Vector, chunks),
	}
	if cfg.Init != nil {
		if len(cfg.Init) != cfg.Dim {
			return nil, fmt.Errorf("ps: init vector %d elems, dim %d", len(cfg.Init), cfg.Dim)
		}
		for c := range s.keys {
			if _, err := store.Push(s.keys[c], cfg.Init[offsets[c]:offsets[c+1]], Overwrite); err != nil {
				return nil, err
			}
		}
	}
	for peer := 0; peer < mesh.Size(); peer++ {
		if peer == mesh.Rank() {
			continue
		}
		s.wg.Add(1)
		go s.serve(peer)
	}
	return s, nil
}

// Store returns the backing store (shared with the loopback fast path).
func (s *Server) Store() *Store { return s.store }

// Wait blocks until every handler has exited — which happens when the mesh
// closes — and returns the first protocol violation observed, if any.
func (s *Server) Wait() error {
	s.wg.Wait()
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.firstErr
}

func (s *Server) fail(err error) {
	s.errMu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.errMu.Unlock()
}

// serve is one peer's handler loop: requests are processed strictly in
// arrival order, which is what lets acks match requests positionally on
// the client. A request whose version horizon has not been reached parks
// this loop only — other clients' handlers keep running.
func (s *Server) serve(peer int) {
	defer s.wg.Done()
	for {
		msg, err := s.view.Recv(peer)
		if err != nil {
			// Mesh closed or peer gone — a clean end of service.
			return
		}
		if err := s.handle(peer, msg); err != nil {
			if !errors.Is(err, transport.ErrClosed) {
				s.fail(fmt.Errorf("ps: serving rank %d: %w", peer, err))
			}
			return
		}
	}
}

// handle applies one request frame and acks it. The request payload (a
// pooled buffer owned by this side since Recv) is released here.
func (s *Server) handle(peer int, msg transport.Message) error {
	mode, chunk, err := splitTag(msg.Chunk)
	if err != nil {
		transport.PutPayload(msg.Payload)
		return err
	}
	if chunk >= len(s.keys) {
		transport.PutPayload(msg.Payload)
		return fmt.Errorf("ps: chunk %d of %d", chunk, len(s.keys))
	}
	span := s.offsets[chunk+1] - s.offsets[chunk]
	if err := reqPayloadLen(msg.Type, len(msg.Payload), span); err != nil {
		transport.PutPayload(msg.Payload)
		return err
	}
	switch msg.Type {
	case transport.MsgPSPush, transport.MsgPSPushPull:
		if mode < Overwrite {
			transport.PutPayload(msg.Payload)
			return fmt.Errorf("ps: push request without update mode")
		}
		snap, err := s.store.applySnap(s.keys[chunk], msg.Payload, mode, msg.Iter)
		transport.PutPayload(msg.Payload)
		if err != nil {
			return err
		}
		if msg.Type == transport.MsgPSPush {
			version := snap.version
			snap.release()
			return s.view.Send(peer, transport.Message{
				Type: transport.MsgPSAck, Stream: PSStream, Iter: version, Chunk: msg.Chunk,
			})
		}
		err = s.ackValues(peer, msg.Chunk, chunk, msg.Dtype, snap)
		snap.release()
		return err
	case transport.MsgPSPull:
		snap, ok := s.store.acquireSnap(s.keys[chunk])
		if !ok {
			// Version 0 with an empty payload signals the unknown key.
			return s.view.Send(peer, transport.Message{
				Type: transport.MsgPSAck, Stream: PSStream, Chunk: msg.Chunk,
			})
		}
		err := s.ackValues(peer, msg.Chunk, chunk, msg.Dtype, snap)
		snap.release()
		return err
	default:
		transport.PutPayload(msg.Payload)
		return fmt.Errorf("ps: unexpected frame type %d", msg.Type)
	}
}

// ackValues replies with a chunk's published values. The payload is staged
// in a pooled buffer and handed to the transport zero-copy (SendOwned);
// lossy reply dtypes fold in the owner-side EF residual, and ship values
// already on the quantization grid so the wire encode is bit-exact.
func (s *Server) ackValues(peer int, tag int32, chunk int, d tensor.Dtype, snap *snapshot) error {
	n := len(snap.value)
	buf := transport.GetPayload(n)
	copy(buf, snap.value)
	if d != tensor.F64 {
		s.resMu[chunk].Lock()
		if s.res[chunk] == nil {
			s.res[chunk] = tensor.New(n)
		}
		tensor.RoundTripEF(d, buf[:n], s.res[chunk])
		s.resMu[chunk].Unlock()
	}
	return transport.SendOwned(s.view, peer, transport.Message{
		Type: transport.MsgPSAck, Stream: PSStream, Iter: snap.version, Chunk: tag,
		Dtype: d, Payload: buf,
	})
}
