// Package ps implements the parameter-server substrate used by RNA's
// hierarchical synchronization (Section 4). It follows the ps-lite model
// the paper builds on: a logically separate store of named parameter
// shards with push / pull / push-pull operations. The store only performs
// summation and model averaging — exactly the role the paper assigns it —
// while the AllReduce groups do the heavy lifting.
package ps

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/tensor"
)

// ErrUnknownKey is returned when pulling a key that was never pushed.
var ErrUnknownKey = errors.New("ps: unknown key")

// UpdateMode selects how a push combines with the stored value.
type UpdateMode int

// Push combination modes.
const (
	// Overwrite replaces the stored value.
	Overwrite UpdateMode = iota + 1
	// Add accumulates into the stored value (gradient aggregation).
	Add
	// Average sets stored = (stored + pushed)/2, the asynchronous model
	// averaging the hierarchical scheme performs between a group's
	// parameters and the global ones.
	Average
)

// Store is a sharded, thread-safe key-value parameter store. Keys identify
// parameter shards (e.g. one per AllReduce group or one per tensor).
type Store struct {
	shards []shard
}

type shard struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

type entry struct {
	value   tensor.Vector
	version int64
	// pushes counts updates ever applied to the key.
	pushes int64
}

// NewStore returns a Store with the given shard count (rounded up to 1).
// Sharding spreads lock contention when many groups push concurrently.
func NewStore(shards int) *Store {
	if shards < 1 {
		shards = 1
	}
	s := &Store{shards: make([]shard, shards)}
	for i := range s.shards {
		s.shards[i].entries = make(map[string]*entry)
	}
	return s
}

func (s *Store) shardFor(key string) *shard {
	// FNV-1a, inlined to avoid the hash.Hash allocation on the hot path.
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &s.shards[h%uint64(len(s.shards))]
}

// Push applies value to key under the given mode and returns the key's new
// version. The first push to a key stores a copy regardless of mode.
func (s *Store) Push(key string, value tensor.Vector, mode UpdateMode) (int64, error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok {
		e = &entry{value: value.Clone()}
		sh.entries[key] = e
		e.version = 1
		e.pushes = 1
		return e.version, nil
	}
	switch mode {
	case Overwrite:
		if err := e.value.CopyFrom(value); err != nil {
			return 0, fmt.Errorf("push %q: %w", key, err)
		}
	case Add:
		if err := e.value.Add(value); err != nil {
			return 0, fmt.Errorf("push %q: %w", key, err)
		}
	case Average:
		if len(e.value) != len(value) {
			return 0, fmt.Errorf("push %q: %w", key, tensor.ErrShapeMismatch)
		}
		for i := range e.value {
			e.value[i] = (e.value[i] + value[i]) / 2
		}
	default:
		return 0, fmt.Errorf("ps: unknown update mode %d", mode)
	}
	e.version++
	e.pushes++
	return e.version, nil
}

// Pull returns a copy of the key's value and its version.
func (s *Store) Pull(key string) (tensor.Vector, int64, error) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.entries[key]
	if !ok {
		return nil, 0, fmt.Errorf("pull %q: %w", key, ErrUnknownKey)
	}
	return e.value.Clone(), e.version, nil
}

// PushPull atomically applies value under mode and returns the resulting
// value — the zero-copy push+pull round trip of ps-lite, and the operation
// RNA's group initiators invoke (Section 6, PSPushPull).
func (s *Store) PushPull(key string, value tensor.Vector, mode UpdateMode) (tensor.Vector, int64, error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok {
		e = &entry{value: value.Clone(), version: 1, pushes: 1}
		sh.entries[key] = e
		return e.value.Clone(), e.version, nil
	}
	switch mode {
	case Overwrite:
		if err := e.value.CopyFrom(value); err != nil {
			return nil, 0, fmt.Errorf("push-pull %q: %w", key, err)
		}
	case Add:
		if err := e.value.Add(value); err != nil {
			return nil, 0, fmt.Errorf("push-pull %q: %w", key, err)
		}
	case Average:
		if len(e.value) != len(value) {
			return nil, 0, fmt.Errorf("push-pull %q: %w", key, tensor.ErrShapeMismatch)
		}
		for i := range e.value {
			e.value[i] = (e.value[i] + value[i]) / 2
		}
	default:
		return nil, 0, fmt.Errorf("ps: unknown update mode %d", mode)
	}
	e.version++
	e.pushes++
	return e.value.Clone(), e.version, nil
}

// Version returns the key's current version (0 if absent).
func (s *Store) Version(key string) int64 {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if e, ok := sh.entries[key]; ok {
		return e.version
	}
	return 0
}

// Pushes returns the total number of pushes applied to key (0 if absent).
func (s *Store) Pushes(key string) int64 {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if e, ok := sh.entries[key]; ok {
		return e.pushes
	}
	return 0
}

// Keys returns all stored keys in unspecified order.
func (s *Store) Keys() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.entries {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	return out
}

// Delete removes a key; deleting an absent key is a no-op.
func (s *Store) Delete(key string) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.entries, key)
}
