// Package ps implements the parameter-server substrate used by RNA's
// hierarchical synchronization (Section 4). It follows the ps-lite model
// the paper builds on: a logically separate store of named parameter
// shards with push / pull / push-pull operations. The store only performs
// summation and model averaging — exactly the role the paper assigns it —
// while the AllReduce groups do the heavy lifting.
//
// The package has two layers. Store is the in-process engine: a sharded
// key-value map whose entries publish immutable snapshots, so pulls are
// wait-free reads that clone outside every lock while pushes serialize
// only against other pushes on the same key. Server and Client put that
// engine on the wire: chunked push/pull/push-pull frames of protocol v1
// (see wire.go) over any transport.Mesh, with request pipelining and
// optional lossy wire dtypes. The in-process Store remains the loopback
// fast path behind the same GlobalStore interface.
package ps

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
)

// ErrUnknownKey is returned when pulling a key that was never pushed.
var ErrUnknownKey = errors.New("ps: unknown key")

// UpdateMode selects how a push combines with the stored value.
type UpdateMode int

// Push combination modes.
const (
	// Overwrite replaces the stored value.
	Overwrite UpdateMode = iota + 1
	// Add accumulates into the stored value (gradient aggregation).
	Add
	// Average sets stored = (stored + pushed)/2, the asynchronous model
	// averaging the hierarchical scheme performs between a group's
	// parameters and the global ones.
	Average

	// maxUpdateMode bounds the valid mode range for wire tag decoding.
	maxUpdateMode = Average
)

// Store is a sharded, thread-safe key-value parameter store. Keys identify
// parameter shards (e.g. one per AllReduce group or one per tensor).
//
// Every key's state lives in a reference-counted snapshot behind an atomic
// pointer: a push builds the successor value under the key's write lock
// and publishes it with one pointer store, so a concurrent Pull never
// blocks on an in-progress push, never observes a torn vector, and clones
// (or leases, zero-copy) the snapshot outside any critical section. Once a
// snapshot is superseded and its last reader releases it, its buffer is
// recycled into the key's next publish — the steady-state push-pull loop
// allocates nothing and never pays make's zeroing.
type Store struct {
	shards []storeShard
}

type storeShard struct {
	mu      sync.Mutex
	cond    *sync.Cond
	entries map[string]*entry
	// waiters counts goroutines parked in WaitVersion on this shard;
	// publishes skip the wakeup lock entirely while it is zero.
	waiters atomic.Int64
}

type entry struct {
	// mu serializes writers on this key; readers never take it.
	mu   sync.Mutex
	snap atomic.Pointer[snapshot]

	// freeMu guards free, the recycled publish buffers. A superseded
	// snapshot's buffer lands here once its last reference drains, and the
	// next publish reuses it instead of allocating — which skips both
	// make's zeroing (every apply mode overwrites the whole buffer) and
	// the GC churn of one model-sized allocation per push.
	freeMu sync.Mutex
	free   []tensor.Vector
}

// snapshot is a published state of one key. The value vector is frozen for
// as long as any reference is held: the entry itself holds one reference
// while the snapshot is current, and readers take their own via acquire.
// Only after the snapshot is superseded AND every reader has released does
// the buffer return to the entry's free list for reuse.
type snapshot struct {
	value   tensor.Vector
	version int64
	pushes  int64
	refs    atomic.Int64
	owner   *entry
}

// release drops one reference. The last release recycles the buffer into
// the owning entry's free list, so it must only run once per acquired
// reference (and once by the publisher when the snapshot is superseded).
func (sn *snapshot) release() {
	if sn.refs.Add(-1) == 0 {
		sn.owner.recycle(sn.value)
	}
}

// acquire takes a read reference on the entry's published snapshot, or nil
// when the key holds none. A snapshot whose count already drained to zero
// was superseded and its buffer possibly recycled, so the CAS refuses to
// resurrect it and retries on the freshly published pointer instead.
func (e *entry) acquire() *snapshot {
	for {
		snap := e.snap.Load()
		if snap == nil {
			return nil
		}
		for n := snap.refs.Load(); n > 0; n = snap.refs.Load() {
			if snap.refs.CompareAndSwap(n, n+1) {
				return snap
			}
		}
	}
}

// maxFreeBufs caps an entry's recycled-buffer list; extras go to the GC.
// Steady state needs one buffer per concurrently leased snapshot plus one
// in flight, and chunk entries are hammered by at most a few groups.
const maxFreeBufs = 4

func (e *entry) recycle(buf tensor.Vector) {
	e.freeMu.Lock()
	if len(e.free) < maxFreeBufs {
		e.free = append(e.free, buf)
	}
	e.freeMu.Unlock()
}

// takeBuf returns a recycled publish buffer of length n, or a fresh (zeroed)
// allocation when none fits. Recycled buffers are NOT zeroed — every apply
// mode overwrites all n elements before the buffer is published.
func (e *entry) takeBuf(n int) tensor.Vector {
	e.freeMu.Lock()
	for len(e.free) > 0 {
		buf := e.free[len(e.free)-1]
		e.free = e.free[:len(e.free)-1]
		if len(buf) == n {
			e.freeMu.Unlock()
			return buf
		}
	}
	e.freeMu.Unlock()
	return tensor.New(n)
}

// NewStore returns a Store with the given shard count (rounded up to 1).
// Sharding spreads map and wakeup contention when many groups push
// concurrently; value-level contention is already per-key.
func NewStore(shards int) *Store {
	if shards < 1 {
		shards = 1
	}
	s := &Store{shards: make([]storeShard, shards)}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.entries = make(map[string]*entry)
		sh.cond = sync.NewCond(&sh.mu)
	}
	return s
}

func (s *Store) shardFor(key string) *storeShard {
	// FNV-1a, inlined to avoid the hash.Hash allocation on the hot path.
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &s.shards[h%uint64(len(s.shards))]
}

// lookup returns the key's entry without creating it.
func (s *Store) lookup(key string) (*entry, *storeShard, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	sh.mu.Unlock()
	return e, sh, ok
}

// ensure returns the key's entry, creating an empty one if absent.
func (s *Store) ensure(key string) (*entry, *storeShard) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if !ok {
		e = &entry{}
		sh.entries[key] = e
	}
	sh.mu.Unlock()
	return e, sh
}

// wake unblocks WaitVersion waiters after a publish. The waiter counter
// keeps the no-waiter fast path to one atomic load; when a waiter is
// parked, taking the shard lock before broadcasting guarantees it either
// saw the new snapshot or is inside Wait and receives the wakeup.
func (sh *storeShard) wake() {
	if sh.waiters.Load() == 0 {
		return
	}
	sh.mu.Lock()
	sh.cond.Broadcast()
	sh.mu.Unlock()
}

// apply builds and publishes the key's successor snapshot under the write
// lock and returns it holding one caller reference — every caller must
// release() it when done reading. The first push stores a copy regardless
// of mode.
func (e *entry) apply(value tensor.Vector, mode UpdateMode) (*snapshot, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.snap.Load()
	if cur == nil {
		next := &snapshot{value: value.Clone(), version: 1, pushes: 1, owner: e}
		next.refs.Store(2) // the published reference + the caller's
		e.snap.Store(next)
		return next, nil
	}
	if len(cur.value) != len(value) {
		return nil, tensor.ErrShapeMismatch
	}
	// Build the successor in a single fused pass (dst = f(cur, pushed))
	// into a recycled buffer: no clone-then-combine sweep, no allocation
	// zeroing, on the only serialized stretch of a push.
	next := &snapshot{value: e.takeBuf(len(value)), version: cur.version + 1, pushes: cur.pushes + 1, owner: e}
	switch mode {
	case Overwrite:
		copy(next.value, value)
	case Add:
		if err := tensor.SumInto(next.value, cur.value, value); err != nil {
			e.recycle(next.value)
			return nil, err
		}
	case Average:
		if err := tensor.AverageInto(next.value, cur.value, value); err != nil {
			e.recycle(next.value)
			return nil, err
		}
	default:
		e.recycle(next.value)
		return nil, fmt.Errorf("ps: unknown update mode %d", mode)
	}
	next.refs.Store(2) // the published reference + the caller's
	e.snap.Store(next)
	cur.release() // drop the superseded publish reference
	return next, nil
}

// Push applies value to key under the given mode and returns the key's new
// version. The first push to a key stores a copy regardless of mode.
func (s *Store) Push(key string, value tensor.Vector, mode UpdateMode) (int64, error) {
	e, sh := s.ensure(key)
	next, err := e.apply(value, mode)
	if err != nil {
		if errors.Is(err, tensor.ErrShapeMismatch) {
			return 0, fmt.Errorf("push %q: %w", key, err)
		}
		return 0, err
	}
	version := next.version
	next.release()
	sh.wake()
	return version, nil
}

// Pull returns a copy of the key's value and its version. The copy is made
// from the published snapshot outside every lock, so a pull never contends
// with concurrent pushes.
func (s *Store) Pull(key string) (tensor.Vector, int64, error) {
	e, _, ok := s.lookup(key)
	if !ok {
		return nil, 0, fmt.Errorf("pull %q: %w", key, ErrUnknownKey)
	}
	snap := e.acquire()
	if snap == nil {
		return nil, 0, fmt.Errorf("pull %q: %w", key, ErrUnknownKey)
	}
	out := snap.value.Clone()
	version := snap.version
	snap.release()
	return out, version, nil
}

// PushPull atomically applies value under mode and returns the resulting
// value — the push+pull round trip of ps-lite, and the operation RNA's
// group initiators invoke (Section 6, PSPushPull). The returned vector is
// cloned from the published snapshot outside the write lock.
func (s *Store) PushPull(key string, value tensor.Vector, mode UpdateMode) (tensor.Vector, int64, error) {
	e, sh := s.ensure(key)
	next, err := e.apply(value, mode)
	if err != nil {
		if errors.Is(err, tensor.ErrShapeMismatch) {
			return nil, 0, fmt.Errorf("push-pull %q: %w", key, err)
		}
		return nil, 0, err
	}
	sh.wake()
	out := next.value.Clone()
	version := next.version
	next.release()
	return out, version, nil
}

// A Lease is a zero-copy, read-only view of one published snapshot. Value
// is the snapshot's own buffer: the holder must never write to it, and must
// call Release when done reading so the store can recycle the buffer into a
// later publish. Holding a lease costs nothing beyond deferring that one
// buffer's reuse; a zero Lease releases as a no-op.
type Lease struct {
	// Value is the published vector — read-only, valid until Release.
	Value tensor.Vector
	// Version is the published version of the key.
	Version int64

	snap *snapshot
}

// Release returns the view to the store. Idempotent; not safe to call
// concurrently with itself on the same Lease.
func (l *Lease) Release() {
	if l.snap != nil {
		l.snap.release()
		l.snap, l.Value = nil, nil
	}
}

// PushPullLease is PushPull returning a zero-copy Lease on the resulting
// snapshot instead of a clone. This is the fast path the snapshot design
// buys: the seed store mutated its one buffer in place, so every read had
// to clone under the lock; a published snapshot is frozen while referenced,
// so handing out a leased reference costs nothing. With minVersion > 0 the
// push waits for the key to reach that version first (see PushPullMin).
func (s *Store) PushPullLease(key string, value tensor.Vector, mode UpdateMode, minVersion int64) (Lease, error) {
	snap, err := s.applySnap(key, value, mode, minVersion)
	if err != nil {
		return Lease{}, err
	}
	return Lease{Value: snap.value, Version: snap.version, snap: snap}, nil
}

// PullLease returns a zero-copy Lease on the key's published value.
func (s *Store) PullLease(key string) (Lease, error) {
	snap, ok := s.acquireSnap(key)
	if !ok {
		return Lease{}, fmt.Errorf("pull %q: %w", key, ErrUnknownKey)
	}
	return Lease{Value: snap.value, Version: snap.version, snap: snap}, nil
}

// PushPullMin is PushPull gated on a version horizon: it blocks until the
// key's published version is at least minVersion before applying value.
// With minVersion ≤ 0 it is plain PushPull. Group leaders use it to impose
// a deterministic global exchange order on an otherwise asynchronous
// hierarchy (core's OrderedPS mode): leader g of G groups waits for
// version 1 + r·G + g before its r-th exchange, so every run applies the
// same operation sequence and stays bitwise reproducible.
func (s *Store) PushPullMin(key string, value tensor.Vector, mode UpdateMode, minVersion int64) (tensor.Vector, int64, error) {
	if minVersion > 0 {
		s.WaitVersion(key, minVersion)
	}
	return s.PushPull(key, value, mode)
}

// WaitVersion blocks until key exists and its version is at least min,
// returning the version observed. A key deleted while waited on parks the
// waiter until the key reappears.
func (s *Store) WaitVersion(key string, min int64) int64 {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.waiters.Add(1)
	defer sh.waiters.Add(-1)
	for {
		if e, ok := sh.entries[key]; ok {
			if snap := e.snap.Load(); snap != nil && snap.version >= min {
				return snap.version
			}
		}
		sh.cond.Wait()
	}
}

// applySnap applies value to key under mode after an optional version wait
// and returns the published snapshot holding one caller reference — the
// caller reads out of it outside every lock instead of paying PushPull's
// defensive clone, then must release() it.
func (s *Store) applySnap(key string, value tensor.Vector, mode UpdateMode, minVersion int64) (*snapshot, error) {
	if minVersion > 0 {
		s.WaitVersion(key, minVersion)
	}
	e, sh := s.ensure(key)
	next, err := e.apply(value, mode)
	if err != nil {
		if errors.Is(err, tensor.ErrShapeMismatch) {
			return nil, fmt.Errorf("push %q: %w", key, err)
		}
		return nil, err
	}
	sh.wake()
	return next, nil
}

// acquireSnap returns the key's published snapshot holding one caller
// reference, if any; the caller must release() it after reading.
func (s *Store) acquireSnap(key string) (*snapshot, bool) {
	e, _, ok := s.lookup(key)
	if !ok {
		return nil, false
	}
	snap := e.acquire()
	return snap, snap != nil
}

// Version returns the key's current version (0 if absent).
func (s *Store) Version(key string) int64 {
	e, _, ok := s.lookup(key)
	if !ok {
		return 0
	}
	if snap := e.snap.Load(); snap != nil {
		return snap.version
	}
	return 0
}

// Pushes returns the total number of pushes applied to key (0 if absent).
func (s *Store) Pushes(key string) int64 {
	e, _, ok := s.lookup(key)
	if !ok {
		return 0
	}
	if snap := e.snap.Load(); snap != nil {
		return snap.pushes
	}
	return 0
}

// Keys returns all stored keys in sorted order, so callers that iterate
// the store (checkpointing, diagnostics) see a deterministic sequence.
func (s *Store) Keys() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k := range sh.entries {
			out = append(out, k)
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// Delete removes a key; deleting an absent key is a no-op.
func (s *Store) Delete(key string) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	delete(sh.entries, key)
	sh.mu.Unlock()
}
