package ps

import (
	"fmt"
	"math"

	"repro/internal/collective"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// DefaultWindow is the default request-pipelining window: how many chunk
// requests a client keeps in flight before consuming acks. The window is
// what overlaps the first returned chunks with later pushes.
const DefaultWindow = 4

// GlobalStore is the vector-level view of the global model a hierarchical
// group leader exchanges with: the in-process Store behind Loopback (the
// fast path) or a networked Client — interchangeable, and bit-identical
// where the wire dtype is f64.
type GlobalStore interface {
	// PushPull applies value under mode and returns the resulting global
	// model and its version. A positive minVersion delays the exchange
	// until the model's version reaches it (see Store.PushPullMin).
	PushPull(value tensor.Vector, mode UpdateMode, minVersion int64) (tensor.Vector, int64, error)
}

// Loopback returns the in-process GlobalStore over store's key — the fast
// path when the parameter server shares the trainer's process. It performs
// the whole-vector operation directly; because the networked client's
// chunked updates touch disjoint spans element-wise, the two produce
// bit-identical results at f64.
func Loopback(store *Store, key string) GlobalStore {
	return &loopback{store: store, key: key}
}

type loopback struct {
	store *Store
	key   string
}

func (l *loopback) PushPull(value tensor.Vector, mode UpdateMode, minVersion int64) (tensor.Vector, int64, error) {
	return l.store.PushPullMin(l.key, value, mode, minVersion)
}

// ClientConfig configures a networked parameter-server client. Key, Dim
// and Chunks must match the servers' configuration.
type ClientConfig struct {
	// Servers are the PS ranks. Chunk c is owned by Servers[c % len],
	// so concurrent groups spread their chunk traffic across every
	// server rank.
	Servers []int
	// Key is the logical model key.
	Key string
	// Dim is the model dimension.
	Dim int
	// Chunks is the chunk-shard count (default DefaultChunks, clamped as
	// on the server).
	Chunks int
	// Wire selects the request/reply wire dtype. Lossy dtypes enable
	// error feedback on both sides: the client keeps the push residual,
	// the serving rank keeps the pull residual (owner-side).
	Wire tensor.Dtype
	// Window bounds in-flight chunk requests (default DefaultWindow).
	Window int
}

func (c *ClientConfig) chunkCount() int {
	return (&ServerConfig{Dim: c.Dim, Chunks: c.Chunks}).chunkCount()
}

func (c *ClientConfig) window() int {
	if c.Window < 1 {
		return DefaultWindow
	}
	return c.Window
}

// Client speaks the PS wire protocol toward a set of server ranks: push,
// pull and push-pull decompose into per-chunk request frames pipelined
// through the reserved PS stream, so a server can answer early chunks
// while later ones are still being pushed. Payloads travel through pooled
// buffers end to end (writev on TCP sends, pooled receives), and lossy
// wire dtypes carry client-side error-feedback residuals.
//
// A Client belongs to one goroutine — the group leader — like every other
// SPMD communication handle in the repository.
type Client struct {
	view     transport.Mesh
	cfg      ClientConfig
	chunks   int
	offsets  []int
	residual tensor.Vector // push-side EF carry, nil for exact wires
}

var _ GlobalStore = (*Client)(nil)

// NewClient validates cfg against the mesh and returns a client ready for
// exchanges. No traffic flows until the first operation.
func NewClient(mesh transport.Mesh, cfg ClientConfig) (*Client, error) {
	if cfg.Key == "" {
		return nil, fmt.Errorf("ps: empty client key")
	}
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("ps: client dim %d", cfg.Dim)
	}
	if !cfg.Wire.Valid() {
		return nil, fmt.Errorf("ps: unknown wire dtype %d", cfg.Wire)
	}
	if len(cfg.Servers) == 0 {
		return nil, fmt.Errorf("ps: no server ranks")
	}
	for _, r := range cfg.Servers {
		if r < 0 || r >= mesh.Size() {
			return nil, fmt.Errorf("ps: server rank %d of %d", r, mesh.Size())
		}
		if r == mesh.Rank() {
			return nil, fmt.Errorf("ps: rank %d cannot be its own server (use Loopback)", r)
		}
	}
	chunks := cfg.chunkCount()
	offsets, err := collective.ShardOffsets(cfg.Dim, chunks, nil)
	if err != nil {
		return nil, err
	}
	c := &Client{
		view:    transport.Streams(mesh).StreamView(PSStream),
		cfg:     cfg,
		chunks:  chunks,
		offsets: offsets,
	}
	if cfg.Wire != tensor.F64 {
		c.residual = tensor.New(cfg.Dim)
	}
	return c, nil
}

func (c *Client) serverOf(chunk int) int {
	return c.cfg.Servers[chunk%len(c.cfg.Servers)]
}

// PushPull applies value to the global model and returns the post-update
// model — the hierarchical leader's exchange. The returned version is the
// minimum across chunks (they are equal whenever exchanges are ordered).
func (c *Client) PushPull(value tensor.Vector, mode UpdateMode, minVersion int64) (tensor.Vector, int64, error) {
	out := tensor.New(c.cfg.Dim)
	ver, err := c.exchange(transport.MsgPSPushPull, value, mode, minVersion, out)
	if err != nil {
		return nil, 0, err
	}
	return out, ver, nil
}

// Push applies value to the global model without pulling it back.
func (c *Client) Push(value tensor.Vector, mode UpdateMode) (int64, error) {
	return c.exchange(transport.MsgPSPush, value, mode, 0, nil)
}

// Pull returns the current global model and its version.
func (c *Client) Pull() (tensor.Vector, int64, error) {
	out := tensor.New(c.cfg.Dim)
	ver, err := c.exchange(transport.MsgPSPull, nil, 0, 0, out)
	if err != nil {
		return nil, 0, err
	}
	return out, ver, nil
}

// exchange runs one chunked, windowed operation: up to Window chunk
// requests stay in flight, and acks are consumed in send order (each
// server answers its requests FIFO, and chunks visit servers round-robin,
// so the next expected ack is always at the head of its server's stream).
func (c *Client) exchange(typ transport.MsgType, body tensor.Vector, mode UpdateMode, minVersion int64, out tensor.Vector) (int64, error) {
	if body != nil && len(body) != c.cfg.Dim {
		return 0, fmt.Errorf("ps: %w: pushed %d elems, dim %d", tensor.ErrShapeMismatch, len(body), c.cfg.Dim)
	}
	window := c.cfg.window()
	version := int64(math.MaxInt64)
	sent, recvd := 0, 0
	var sendErr error
	for recvd < c.chunks {
		for sendErr == nil && sent < c.chunks && sent-recvd < window {
			if sendErr = c.sendReq(typ, sent, mode, minVersion, body); sendErr == nil {
				sent++
			}
		}
		if recvd == sent {
			return 0, sendErr
		}
		ver, err := c.recvAck(typ, recvd, out)
		if err != nil {
			// The response stream is out of step; outstanding acks are
			// unrecoverable.
			return 0, err
		}
		recvd++
		if ver < version {
			version = ver
		}
	}
	if sendErr != nil {
		return 0, sendErr
	}
	return version, nil
}

// sendReq ships one chunk request. Push payloads stage through a pooled
// buffer handed to the transport zero-copy; lossy wires fold the EF
// residual in and ship grid values, so the wire encode is bit-exact and
// the residual update needs no echo from the server.
func (c *Client) sendReq(typ transport.MsgType, chunk int, mode UpdateMode, minVersion int64, body tensor.Vector) error {
	msg := transport.Message{
		Type: typ, Stream: PSStream, Iter: minVersion,
		Chunk: psTag(mode, chunk), Dtype: c.cfg.Wire,
	}
	if typ == transport.MsgPSPull {
		return c.view.Send(c.serverOf(chunk), msg)
	}
	lo, hi := c.offsets[chunk], c.offsets[chunk+1]
	buf := transport.GetPayload(hi - lo)
	copy(buf, body[lo:hi])
	if c.residual != nil {
		tensor.RoundTripEF(c.cfg.Wire, buf, c.residual[lo:hi])
	}
	msg.Payload = buf
	return transport.SendOwned(c.view, c.serverOf(chunk), msg)
}

// recvAck consumes the ack for chunk and scatters pulled values into out.
func (c *Client) recvAck(typ transport.MsgType, chunk int, out tensor.Vector) (int64, error) {
	msg, err := c.view.Recv(c.serverOf(chunk))
	if err != nil {
		return 0, err
	}
	defer transport.PutPayload(msg.Payload)
	if msg.Type != transport.MsgPSAck {
		return 0, fmt.Errorf("ps: expected ack, got frame type %d", msg.Type)
	}
	if _, got, err := splitTag(msg.Chunk); err != nil || got != chunk {
		return 0, fmt.Errorf("ps: ack for chunk %d, want %d (tag %d)", got, chunk, msg.Chunk)
	}
	if typ == transport.MsgPSPush {
		if len(msg.Payload) != 0 {
			return 0, fmt.Errorf("ps: push ack carries %d elems", len(msg.Payload))
		}
		return msg.Iter, nil
	}
	if msg.Iter == 0 && len(msg.Payload) == 0 {
		return 0, fmt.Errorf("pull %q chunk %d: %w", c.cfg.Key, chunk, ErrUnknownKey)
	}
	lo, hi := c.offsets[chunk], c.offsets[chunk+1]
	if len(msg.Payload) != hi-lo {
		return 0, fmt.Errorf("ps: ack chunk %d carries %d elems, want %d", chunk, len(msg.Payload), hi-lo)
	}
	copy(out[lo:hi], msg.Payload)
	return msg.Iter, nil
}
