package ps

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/tensor"
)

func TestFirstPushStoresCopy(t *testing.T) {
	s := NewStore(4)
	v := tensor.FromSlice([]float64{1, 2})
	ver, err := s.Push("w", v, Add)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 1 {
		t.Errorf("version = %d, want 1", ver)
	}
	v[0] = 99 // must not affect the store
	got, _, err := s.Pull("w")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Errorf("store aliased pushed value: %v", got)
	}
}

func TestPullCopies(t *testing.T) {
	s := NewStore(1)
	if _, err := s.Push("w", tensor.FromSlice([]float64{5}), Overwrite); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Pull("w")
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 77
	again, _, _ := s.Pull("w")
	if again[0] != 5 {
		t.Errorf("Pull exposed internal state: %v", again)
	}
}

func TestPullUnknown(t *testing.T) {
	s := NewStore(2)
	if _, _, err := s.Pull("missing"); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("Pull missing = %v, want ErrUnknownKey", err)
	}
}

func TestPushModes(t *testing.T) {
	s := NewStore(2)
	base := tensor.FromSlice([]float64{2, 4})
	if _, err := s.Push("k", base, Overwrite); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Push("k", tensor.FromSlice([]float64{1, 1}), Add); err != nil {
		t.Fatal(err)
	}
	got, ver, _ := s.Pull("k")
	if got[0] != 3 || got[1] != 5 {
		t.Errorf("after Add = %v, want [3 5]", got)
	}
	if ver != 2 {
		t.Errorf("version = %d, want 2", ver)
	}

	if _, err := s.Push("k", tensor.FromSlice([]float64{1, 1}), Average); err != nil {
		t.Fatal(err)
	}
	got, _, _ = s.Pull("k")
	if got[0] != 2 || got[1] != 3 {
		t.Errorf("after Average = %v, want [2 3]", got)
	}

	if _, err := s.Push("k", tensor.FromSlice([]float64{9, 9}), Overwrite); err != nil {
		t.Fatal(err)
	}
	got, _, _ = s.Pull("k")
	if got[0] != 9 {
		t.Errorf("after Overwrite = %v", got)
	}
}

func TestPushShapeMismatch(t *testing.T) {
	s := NewStore(1)
	if _, err := s.Push("k", tensor.New(2), Overwrite); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []UpdateMode{Overwrite, Add, Average} {
		if _, err := s.Push("k", tensor.New(3), mode); !errors.Is(err, tensor.ErrShapeMismatch) {
			t.Errorf("mode %d mismatch error = %v", mode, err)
		}
	}
	if _, _, err := s.PushPull("k", tensor.New(3), Average); !errors.Is(err, tensor.ErrShapeMismatch) {
		t.Errorf("PushPull mismatch error = %v", err)
	}
}

func TestPushUnknownMode(t *testing.T) {
	s := NewStore(1)
	if _, err := s.Push("k", tensor.New(1), Overwrite); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push("k", tensor.New(1), UpdateMode(42)); err == nil {
		t.Error("unknown mode should error")
	}
	if _, _, err := s.PushPull("k", tensor.New(1), UpdateMode(42)); err == nil {
		t.Error("unknown PushPull mode should error")
	}
}

func TestPushPullAtomicAverage(t *testing.T) {
	s := NewStore(1)
	if _, err := s.Push("g", tensor.FromSlice([]float64{10}), Overwrite); err != nil {
		t.Fatal(err)
	}
	got, ver, err := s.PushPull("g", tensor.FromSlice([]float64{0}), Average)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 {
		t.Errorf("PushPull average = %v, want 5", got[0])
	}
	if ver != 2 {
		t.Errorf("version = %d, want 2", ver)
	}
}

func TestPushPullFirstTouch(t *testing.T) {
	s := NewStore(1)
	got, ver, err := s.PushPull("new", tensor.FromSlice([]float64{3}), Average)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || ver != 1 {
		t.Errorf("first PushPull = (%v,%d)", got, ver)
	}
}

func TestVersionAndPushes(t *testing.T) {
	s := NewStore(3)
	if s.Version("k") != 0 || s.Pushes("k") != 0 {
		t.Error("absent key should report zero version/pushes")
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Push("k", tensor.FromSlice([]float64{1}), Add); err != nil {
			t.Fatal(err)
		}
	}
	if s.Version("k") != 5 {
		t.Errorf("Version = %d, want 5", s.Version("k"))
	}
	if s.Pushes("k") != 5 {
		t.Errorf("Pushes = %d, want 5", s.Pushes("k"))
	}
}

func TestKeysAndDelete(t *testing.T) {
	s := NewStore(4)
	for _, k := range []string{"a", "b", "c"} {
		if _, err := s.Push(k, tensor.New(1), Overwrite); err != nil {
			t.Fatal(err)
		}
	}
	keys := s.Keys()
	if len(keys) != 3 {
		t.Errorf("Keys = %v", keys)
	}
	s.Delete("b")
	s.Delete("nope") // no-op
	if len(s.Keys()) != 2 {
		t.Errorf("after delete Keys = %v", s.Keys())
	}
	if _, _, err := s.Pull("b"); !errors.Is(err, ErrUnknownKey) {
		t.Error("deleted key should be unknown")
	}
}

func TestKeysSorted(t *testing.T) {
	s := NewStore(8)
	for _, k := range []string{"zeta", "alpha", "mid", "beta"} {
		if _, err := s.Push(k, tensor.New(1), Overwrite); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"alpha", "beta", "mid", "zeta"}
	got := s.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want sorted %v", got, want)
		}
	}
}

// TestOneKeyHammer drives one key from many goroutines with mixed
// Push/Pull/PushPull under the race detector. The torn-read check relies on
// an invariant every applied mode preserves: all operands are uniform
// vectors, so every correctly published snapshot is uniform — a pull that
// observes two different elements caught a buffer being mutated after
// publication. Versions observed by one goroutine must never regress.
func TestOneKeyHammer(t *testing.T) {
	s := NewStore(4)
	const dim = 512
	if _, err := s.Push("hot", tensor.New(dim), Overwrite); err != nil {
		t.Fatal(err)
	}
	uniform := func(c float64) tensor.Vector {
		v := tensor.New(dim)
		v.Fill(c)
		return v
	}
	check := func(v tensor.Vector, ver, last int64) error {
		if ver < last {
			return fmt.Errorf("version regressed: %d after %d", ver, last)
		}
		if v != nil {
			for i := 1; i < len(v); i++ {
				if v[i] != v[0] {
					return fmt.Errorf("torn read at version %d: v[%d]=%v, v[0]=%v", ver, i, v[i], v[0])
				}
			}
		}
		return nil
	}
	const workers, ops = 8, 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last int64
			for i := 0; i < ops; i++ {
				var (
					v   tensor.Vector
					ver int64
					err error
				)
				switch (w + i) % 3 {
				case 0:
					ver, err = s.Push("hot", uniform(1), Add)
				case 1:
					v, ver, err = s.Pull("hot")
				default:
					v, ver, err = s.PushPull("hot", uniform(float64(w)), Average)
				}
				if err != nil {
					errs <- err
					return
				}
				if err := check(v, ver, last); err != nil {
					errs <- err
					return
				}
				last = ver
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	got, ver, err := s.Pull("hot")
	if err != nil {
		t.Fatal(err)
	}
	if err := check(got, ver, 0); err != nil {
		t.Fatal(err)
	}
	if wantVer := int64(1 + workers*ops*2/3); ver != wantVer {
		t.Fatalf("final version = %d, want %d", ver, wantVer)
	}
}

func TestWaitVersionBlocksUntilPublish(t *testing.T) {
	s := NewStore(2)
	done := make(chan int64, 1)
	go func() { done <- s.WaitVersion("late", 3) }()
	select {
	case v := <-done:
		t.Fatalf("WaitVersion returned %d before key existed", v)
	default:
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Push("late", tensor.FromSlice([]float64{1}), Add); err != nil {
			t.Fatal(err)
		}
	}
	if v := <-done; v < 3 {
		t.Fatalf("WaitVersion = %d, want ≥ 3", v)
	}
}

func TestPushPullMinOrdering(t *testing.T) {
	s := NewStore(1)
	if _, err := s.Push("k", tensor.FromSlice([]float64{0}), Overwrite); err != nil {
		t.Fatal(err)
	}
	// Start the later exchange first: it must wait for version 2.
	out := make(chan float64, 1)
	go func() {
		v, _, err := s.PushPullMin("k", tensor.FromSlice([]float64{10}), Add, 2)
		if err != nil {
			out <- -1
			return
		}
		out <- v[0]
	}()
	if v, _, err := s.PushPullMin("k", tensor.FromSlice([]float64{1}), Add, 1); err != nil || v[0] != 1 {
		t.Fatalf("first exchange = %v, %v", v, err)
	}
	if got := <-out; got != 11 {
		t.Fatalf("second exchange saw %v, want 11 (after first)", got)
	}
}

func TestZeroShardsClamped(t *testing.T) {
	s := NewStore(0)
	if _, err := s.Push("k", tensor.New(1), Overwrite); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAdds(t *testing.T) {
	s := NewStore(8)
	if _, err := s.Push("sum", tensor.FromSlice([]float64{0}), Overwrite); err != nil {
		t.Fatal(err)
	}
	const workers, pushes = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < pushes; i++ {
				if _, err := s.Push("sum", tensor.FromSlice([]float64{1}), Add); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, _, err := s.Pull("sum")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != workers*pushes {
		t.Errorf("concurrent sum = %v, want %d", got[0], workers*pushes)
	}
}

func TestConcurrentDistinctKeys(t *testing.T) {
	s := NewStore(4)
	const n = 32
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := fmt.Sprintf("k%d", w)
			for i := 0; i < 50; i++ {
				if _, _, err := s.PushPull(key, tensor.FromSlice([]float64{float64(w)}), Average); err != nil {
					t.Errorf("pushpull: %v", err)
					return
				}
			}
			got, _, err := s.Pull(key)
			if err != nil {
				t.Errorf("pull: %v", err)
				return
			}
			if got[0] != float64(w) {
				t.Errorf("key %s = %v, want %d", key, got[0], w)
			}
		}()
	}
	wg.Wait()
	if len(s.Keys()) != n {
		t.Errorf("Keys count = %d, want %d", len(s.Keys()), n)
	}
}
