package trace

import (
	"strings"
	"testing"
	"time"
)

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{SpanCompute, SpanComm, SpanWait, SpanNull} {
		if s := k.String(); s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("Kind %d String = %q", int(k), s)
		}
	}
	if !strings.HasPrefix(Kind(42).String(), "kind(") {
		t.Error("unknown kind should format as kind(n)")
	}
}

func TestAddNormalizesBackwardSpans(t *testing.T) {
	var tr Trace
	tr.Add(Span{Worker: 0, Kind: SpanCompute, Start: 10, End: 5})
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].End != spans[0].Start {
		t.Errorf("backward span not normalized: %+v", spans)
	}
}

func TestHorizonAndLen(t *testing.T) {
	var tr Trace
	if tr.Horizon() != 0 {
		t.Error("empty trace horizon should be 0")
	}
	tr.Add(Span{Worker: 0, Kind: SpanCompute, Start: 0, End: 10 * time.Millisecond})
	tr.Add(Span{Worker: 1, Kind: SpanComm, Start: 5 * time.Millisecond, End: 25 * time.Millisecond})
	if tr.Horizon() != 25*time.Millisecond {
		t.Errorf("Horizon = %v", tr.Horizon())
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestByWorkerSorted(t *testing.T) {
	var tr Trace
	tr.Add(Span{Worker: 1, Kind: SpanComm, Start: 20, End: 30})
	tr.Add(Span{Worker: 1, Kind: SpanCompute, Start: 0, End: 10})
	tr.Add(Span{Worker: 0, Kind: SpanCompute, Start: 5, End: 15})
	got := tr.ByWorker(1)
	if len(got) != 2 {
		t.Fatalf("ByWorker(1) = %d spans", len(got))
	}
	if got[0].Kind != SpanCompute || got[1].Kind != SpanComm {
		t.Errorf("spans not sorted by start: %+v", got)
	}
	if len(tr.ByWorker(7)) != 0 {
		t.Error("unknown worker should have no spans")
	}
}

func TestSpansIsACopy(t *testing.T) {
	var tr Trace
	tr.Add(Span{Worker: 0, Kind: SpanCompute, Start: 0, End: 1})
	spans := tr.Spans()
	spans[0].Worker = 99
	if tr.Spans()[0].Worker != 0 {
		t.Error("Spans exposed internal state")
	}
}

func TestRender(t *testing.T) {
	var tr Trace
	tr.Add(Span{Worker: 0, Kind: SpanCompute, Start: 0, End: 50 * time.Millisecond})
	tr.Add(Span{Worker: 0, Kind: SpanComm, Start: 50 * time.Millisecond, End: 100 * time.Millisecond})
	tr.Add(Span{Worker: 1, Kind: SpanWait, Start: 0, End: 100 * time.Millisecond})
	out := tr.Render(40, 0)
	if !strings.Contains(out, "w0") || !strings.Contains(out, "w1") {
		t.Errorf("render missing worker rows:\n%s", out)
	}
	if !strings.Contains(out, "=") || !strings.Contains(out, "#") || !strings.Contains(out, ".") {
		t.Errorf("render missing span glyphs:\n%s", out)
	}
	if !strings.Contains(out, "legend") && !strings.Contains(out, "compute") {
		t.Errorf("render missing legend:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	var tr Trace
	if out := tr.Render(40, 0); !strings.Contains(out, "empty") {
		t.Errorf("empty render = %q", out)
	}
}

func TestRenderDefaults(t *testing.T) {
	var tr Trace
	tr.Add(Span{Worker: 0, Kind: SpanNull, Start: 0, End: time.Millisecond})
	out := tr.Render(0, 0) // default width
	if !strings.Contains(out, "o") {
		t.Errorf("null span not rendered:\n%s", out)
	}
}

func TestRenderClampsOutOfRange(t *testing.T) {
	var tr Trace
	tr.Add(Span{Worker: 0, Kind: SpanCompute, Start: 0, End: time.Second})
	// Render a shorter window; span must clamp, not panic.
	out := tr.Render(20, 100*time.Millisecond)
	if !strings.Contains(out, "=") {
		t.Errorf("clamped span missing:\n%s", out)
	}
}
