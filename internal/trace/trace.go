// Package trace records per-worker execution spans (compute, communication,
// barrier wait, null contribution) during simulated training, and renders
// them as ASCII timelines — the textual analogue of the paper's Fig. 3
// (blocking vs non-blocking AllReduce) and Fig. 4 (cross-iteration RNA).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Kind classifies a span.
type Kind int

// Span kinds.
const (
	// SpanCompute is forward+backward computation of one batch.
	SpanCompute Kind = iota + 1
	// SpanComm is participation in a collective or PS operation.
	SpanComm
	// SpanWait is time blocked at a barrier or staleness bound.
	SpanWait
	// SpanNull marks a null contribution to a partial AllReduce.
	SpanNull
)

// rune per kind in the ASCII rendering.
func (k Kind) rune() byte {
	switch k {
	case SpanCompute:
		return '='
	case SpanComm:
		return '#'
	case SpanWait:
		return '.'
	case SpanNull:
		return 'o'
	default:
		return '?'
	}
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SpanCompute:
		return "compute"
	case SpanComm:
		return "comm"
	case SpanWait:
		return "wait"
	case SpanNull:
		return "null"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Span is one interval of a worker's activity.
type Span struct {
	Worker int
	Kind   Kind
	Start  time.Duration
	End    time.Duration
	// Iter tags the training iteration the span belongs to.
	Iter int64
}

// Trace is an append-only collection of spans. The zero value is usable.
type Trace struct {
	spans []Span
}

// Add records one span; spans with End < Start are normalized to empty.
func (t *Trace) Add(s Span) {
	if s.End < s.Start {
		s.End = s.Start
	}
	t.spans = append(t.spans, s)
}

// Spans returns a copy of all recorded spans.
func (t *Trace) Spans() []Span {
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len returns the number of spans.
func (t *Trace) Len() int { return len(t.spans) }

// Horizon returns the latest span end.
func (t *Trace) Horizon() time.Duration {
	var h time.Duration
	for _, s := range t.spans {
		if s.End > h {
			h = s.End
		}
	}
	return h
}

// ByWorker returns the spans of one worker sorted by start time.
func (t *Trace) ByWorker(w int) []Span {
	var out []Span
	for _, s := range t.spans {
		if s.Worker == w {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Render draws an ASCII timeline of all workers up to `until` (0 means the
// trace horizon) using `width` character columns. Later spans overwrite
// earlier ones in a cell; the legend is appended.
func (t *Trace) Render(width int, until time.Duration) string {
	if width <= 0 {
		width = 80
	}
	if until <= 0 {
		until = t.Horizon()
	}
	if until <= 0 {
		return "(empty trace)\n"
	}
	maxWorker := -1
	for _, s := range t.spans {
		if s.Worker > maxWorker {
			maxWorker = s.Worker
		}
	}
	var sb strings.Builder
	for w := 0; w <= maxWorker; w++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for _, s := range t.ByWorker(w) {
			lo := int(float64(s.Start) / float64(until) * float64(width))
			hi := int(float64(s.End) / float64(until) * float64(width))
			if lo < 0 {
				lo = 0
			}
			if hi >= width {
				hi = width - 1
			}
			if hi < lo {
				hi = lo
			}
			for i := lo; i <= hi && i < width; i++ {
				row[i] = s.Kind.rune()
			}
		}
		fmt.Fprintf(&sb, "w%-3d |%s|\n", w, string(row))
	}
	fmt.Fprintf(&sb, "      0%s%v\n", strings.Repeat(" ", width-len(fmt.Sprint(until))), until)
	sb.WriteString("      = compute   # comm   . wait   o null-contribution\n")
	return sb.String()
}
