package collective

import (
	"testing"

	"repro/internal/tensor"
)

// TestPredictShardHalvesComposeNearRing: the composed half-collectives carry
// the pipelined ring's message count (2(n−1)) and byte volume, so their
// predicted sum must sit within a few percent of the ring AllReduce — the
// modeled form of the BENCH_collective composed-ratio gate.
func TestPredictShardHalvesComposeNearRing(t *testing.T) {
	c := DefaultCostModel()
	for _, n := range []int{2, 4, 8, 16} {
		for _, elems := range []int{1 << 14, 1 << 18} {
			composed := c.PredictReduceScatterNs(n, elems) + c.PredictAllGatherWireNs(n, elems, tensor.F64)
			ring := c.PredictNs(AlgoRing, n, int64(elems)*8)
			if ratio := composed / ring; ratio < 0.9 || ratio > 1.1 {
				t.Errorf("n=%d elems=%d: composed/ring = %v", n, elems, ratio)
			}
		}
	}
}

func TestPredictShardHalvesEdges(t *testing.T) {
	c := DefaultCostModel()
	if c.PredictReduceScatterNs(1, 1024) != 0 || c.PredictAllGatherWireNs(1, 1024, tensor.F64) != 0 {
		t.Error("single-rank half-collectives should predict 0")
	}
	wide := c.PredictAllGatherWireNs(8, 1<<18, tensor.F64)
	narrow := c.PredictAllGatherWireNs(8, 1<<18, tensor.F16)
	if narrow >= wide {
		t.Errorf("f16 gather predicted %v ≥ fp64 %v", narrow, wide)
	}
}
