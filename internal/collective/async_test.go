package collective

import (
	"errors"
	"math"
	"testing"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// asyncSPMD runs fn concurrently on a fresh Async per endpoint of a local
// network.
func asyncSPMD(t *testing.T, n int, fn func(a *Async, rank int) error) {
	t.Helper()
	runSPMD(t, n, func(m transport.Mesh) error {
		return fn(NewAsync(m), m.Rank())
	})
}

// TestAsyncSingleCollective: one Start/Wait reproduces the synchronous
// AllReduce exactly.
func TestAsyncSingleCollective(t *testing.T) {
	const n, dim = 4, 257
	asyncSPMD(t, n, func(a *Async, rank int) error {
		v := tensor.New(dim)
		for i := range v {
			v[i] = float64(rank + i)
		}
		h, err := a.Start(0, 7, v, OpSum, Options{})
		if err != nil {
			return err
		}
		if err := h.Wait(); err != nil {
			return err
		}
		for i := range v {
			want := float64(n*i) + float64(n*(n-1))/2
			if v[i] != want {
				t.Errorf("rank %d elem %d: %v != %v", rank, i, v[i], want)
				return nil
			}
		}
		return nil
	})
}

// TestAsyncConcurrentCollectives runs many collectives at once on one mesh —
// distinct streams, all in flight together — and checks every result plus
// the MaxInFlight gauge.
func TestAsyncConcurrentCollectives(t *testing.T) {
	const n, streams, dim = 3, 6, 100
	maxSeen := make([]int, n)
	asyncSPMD(t, n, func(a *Async, rank int) error {
		vs := make([]tensor.Vector, streams)
		handles := make([]*Handle, streams)
		for s := range vs {
			vs[s] = tensor.New(dim)
			for i := range vs[s] {
				vs[s][i] = float64((s+1)*(rank+1)) + float64(i)
			}
			h, err := a.Start(int32(s), int64(s*3+1), vs[s], OpSum, Options{})
			if err != nil {
				return err
			}
			handles[s] = h
		}
		for s, h := range handles {
			if err := h.Wait(); err != nil {
				return err
			}
			for i := range vs[s] {
				want := float64((s+1)*(1+2+3)) + float64(n*i)
				if vs[s][i] != want {
					t.Errorf("rank %d stream %d elem %d: %v != %v", rank, s, i, vs[s][i], want)
					return nil
				}
			}
		}
		maxSeen[rank] = a.MaxInFlight()
		return nil
	})
	for rank, m := range maxSeen {
		if m < 1 || m > streams {
			t.Errorf("rank %d MaxInFlight = %d", rank, m)
		}
	}
}

// TestAsyncMatchesSyncBitwise: a stream collective must produce bitwise the
// same result as the plain synchronous collective on the same inputs —
// including under a lossy wire with error feedback.
func TestAsyncMatchesSyncBitwise(t *testing.T) {
	const n, dim = 4, 300
	for _, wire := range []tensor.Dtype{tensor.F64, tensor.F16, tensor.I8} {
		ref := make([]tensor.Vector, n)
		refRes := make([]tensor.Vector, n)
		runSPMD(t, n, func(m transport.Mesh) error {
			v := tensor.New(dim)
			for i := range v {
				v[i] = math.Sin(float64(i*(m.Rank()+3))) * 10
			}
			res := tensor.New(dim)
			if err := AllReduceOpts(m, 5, v, OpAverage, Options{Compression: wire, Residual: res}); err != nil {
				return err
			}
			ref[m.Rank()], refRes[m.Rank()] = v, res
			return nil
		})
		asyncSPMD(t, n, func(a *Async, rank int) error {
			v := tensor.New(dim)
			for i := range v {
				v[i] = math.Sin(float64(i*(rank+3))) * 10
			}
			res := tensor.New(dim)
			// A non-zero stream: the packed iter differs from the sync run,
			// which must not change a single bit of the result.
			h, err := a.Start(3, 5, v, OpAverage, Options{Compression: wire, Residual: res})
			if err != nil {
				return err
			}
			if err := h.Wait(); err != nil {
				return err
			}
			for i := range v {
				if math.Float64bits(v[i]) != math.Float64bits(ref[rank][i]) {
					t.Errorf("%v rank %d elem %d: async %v != sync %v", wire, rank, i, v[i], ref[rank][i])
					return nil
				}
				if math.Float64bits(res[i]) != math.Float64bits(refRes[rank][i]) {
					t.Errorf("%v rank %d residual %d: async %v != sync %v", wire, rank, i, res[i], refRes[rank][i])
					return nil
				}
			}
			return nil
		})
	}
}

// TestAsyncPartial: partial collectives ride streams too, contributor count
// intact.
func TestAsyncPartial(t *testing.T) {
	const n, dim = 4, 64
	asyncSPMD(t, n, func(a *Async, rank int) error {
		contributes := rank%2 == 0 // ranks 0 and 2
		v := tensor.New(dim)
		for i := range v {
			v[i] = float64(rank + 1)
		}
		h, err := a.StartPartial(2, 9, v, contributes, Options{})
		if err != nil {
			return err
		}
		if err := h.Wait(); err != nil {
			return err
		}
		pr := h.Partial()
		defer pr.Release()
		if pr.Contributors != 2 {
			t.Errorf("rank %d: contributors = %d", rank, pr.Contributors)
			return nil
		}
		for i := range pr.Sum {
			if pr.Sum[i] != 4 { // (0+1) + (2+1)
				t.Errorf("rank %d sum[%d] = %v", rank, i, pr.Sum[i])
				return nil
			}
		}
		return nil
	})
}

// TestAsyncBusyStream: two collectives on one stream is a launch error, and
// the stream is usable again after the first completes.
func TestAsyncBusyStream(t *testing.T) {
	asyncSPMD(t, 2, func(a *Async, rank int) error {
		v := tensor.New(16)
		h, err := a.Start(1, 0, v, OpSum, Options{})
		if err != nil {
			return err
		}
		if rank == 0 {
			if _, err := a.Start(1, 1, tensor.New(16), OpSum, Options{}); err == nil {
				t.Error("second collective on busy stream accepted")
			}
		}
		if err := h.Wait(); err != nil {
			return err
		}
		// Released: the stream accepts a new collective.
		h2, err := a.Start(1, 1, v, OpSum, Options{})
		if err != nil {
			return err
		}
		return h2.Wait()
	})
}

// TestAsyncBadArgs: negative streams fail cleanly, and — now that streams
// ride a dedicated frame-header field instead of Iter's high bits — the full
// int64 iter range is usable on any stream.
func TestAsyncBadArgs(t *testing.T) {
	net, err := transport.NewLocalNetwork(1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	a := NewAsync(net.Endpoints()[0])
	if _, err := a.Start(-1, 0, tensor.New(4), OpSum, Options{}); err == nil {
		t.Error("negative stream accepted")
	}
	// The failed launch must not leave stream 0 marked busy, and huge iters
	// (formerly rejected as stream-tag overflow) now run end to end.
	for _, iter := range []int64{-1, 0, 1 << 60, math.MaxInt64} {
		h, err := a.Start(0, iter, tensor.New(4), OpSum, Options{})
		if err != nil {
			t.Fatalf("iter %d rejected: %v", iter, err)
		}
		if err := h.Wait(); err != nil {
			t.Fatalf("iter %d failed: %v", iter, err)
		}
		ph, err := a.StartPartial(0, iter, tensor.New(4), true, Options{})
		if err != nil {
			t.Fatalf("partial iter %d rejected: %v", iter, err)
		}
		if err := ph.Wait(); err != nil {
			t.Fatalf("partial iter %d failed: %v", iter, err)
		}
		res := ph.Partial()
		res.Release()
	}
}

// TestAsyncTagOverflowGuard: the ring's int32 segment-tag guard still fires
// through the async path.
func TestAsyncTagOverflowGuard(t *testing.T) {
	// 3 ranks x a vector long enough that chunking exceeds the tag space is
	// impractical; call the guard directly and through ringAllReduce's
	// validation to pin the contract.
	if err := checkSegTagSpace(1<<16, 1<<16); !errors.Is(err, ErrTagOverflow) {
		t.Errorf("err = %v, want ErrTagOverflow", err)
	}
	if err := checkSegTagSpace(4, 1024); err != nil {
		t.Errorf("small tag space rejected: %v", err)
	}
}

// TestPartialResultReleaseIdempotent: Release must be safe to call twice —
// the regression is a double PutPayload poisoning the payload pool with the
// same backing array twice.
func TestPartialResultReleaseIdempotent(t *testing.T) {
	pr := PartialResult{Sum: tensor.Vector(transport.GetPayload(64)), Contributors: 3}
	pr.Release()
	if pr.Sum != nil || pr.Contributors != 0 {
		t.Fatalf("release left %+v", pr)
	}
	pr.Release() // second release: must be a no-op
	// If the double release had pushed the same buffer twice, two gets
	// would alias: writing through one would be visible through the other.
	a := transport.GetPayload(64)
	b := transport.GetPayload(64)
	a[0] = 1
	if b[0] == 1 && &a[0] == &b[0] {
		t.Fatal("double release leaked the same buffer to two owners")
	}
	transport.PutPayload(a)
	transport.PutPayload(b)
}
