package collective

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// Binomial-tree AllReduce: reduce-to-root up a binomial tree rooted at rank
// 0, then the existing binomial-tree Broadcast back down. Both phases take
// ⌈log2 N⌉ steps but move the FULL vector at every step, so the schedule is
// only competitive for tiny tensors where per-message latency dominates and
// the 2·⌈log2 N⌉·S byte volume is irrelevant; its virtue there is having
// the fewest total messages (2(N−1)) of any dense schedule. The auto
// selector (costmodel.go) picks it in exactly that regime.
//
// Determinism: the root accumulates children in ascending span order —
// a fixed order — and every rank receives the root's finished bytes via the
// broadcast, so all ranks end bit-identical.

// TreeAllReduce reduces v in place across all ranks of m via binomial-tree
// reduce + broadcast. All ranks must pass vectors of equal length and the
// same iter; results are identical on every rank.
func TreeAllReduce(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp) error {
	return treeAllReduce(m, iter, v, op, tensor.F64, nil)
}

// treeAllReduce is TreeAllReduce with a broadcast wire dtype and an
// error-feedback residual. The reduce-to-root phase always ships fp64; the
// root quantizes the finished vector once (capturing the residual — the
// root is the only rank that ever sees exact values) and the broadcast
// relays its grid bytes, which re-encode exactly.
func treeAllReduce(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp, wire tensor.Dtype, residual tensor.Vector) error {
	n := m.Size()
	if n == 1 {
		return nil
	}
	rank := m.Rank()

	// Reduce phase: the mirror of Broadcast's doubling schedule. At span s
	// a rank whose bit s is its lowest set bit sends its partial sum to
	// rank−s and goes quiet; ranks with bit s clear absorb rank+s (when it
	// exists). Rank 0 ends holding the full reduction.
	for span := 1; span < n; span <<= 1 {
		if rank&span != 0 {
			if err := m.Send(rank-span, transport.Message{
				Type: transport.MsgReduce, Iter: iter, Chunk: int32(span), Payload: v,
			}); err != nil {
				return fmt.Errorf("tree reduce send: %w", err)
			}
			break
		}
		child := rank + span
		if child >= n {
			continue
		}
		msg, err := m.Recv(child)
		if err != nil {
			return fmt.Errorf("tree reduce recv: %w", err)
		}
		if err := checkMsg("tree-reduce", msg, transport.MsgReduce, iter, int32(span)); err != nil {
			transport.PutPayload(msg.Payload)
			return err
		}
		err = v.Add(msg.Payload)
		transport.PutPayload(msg.Payload)
		if err != nil {
			return fmt.Errorf("tree reduce: %w", err)
		}
	}

	// Scale — and, under compression, quantize — at the root so the
	// broadcast distributes the finished bytes.
	if rank == 0 {
		if op == OpAverage {
			v.Scale(1 / float64(n))
		}
		if wire != tensor.F64 {
			if residual != nil {
				tensor.RoundTripEF(wire, v, residual)
			} else {
				tensor.RoundTrip(wire, v)
			}
		}
	}
	return broadcast(m, iter, v, 0, wire)
}
