package collective_test

import (
	"fmt"
	"testing"

	"repro/internal/collective"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// BenchmarkTCPRingSmall is the e2e small-tensor gate case: an 8-rank TCP
// ring AllReduce at dims where per-frame overhead dominates. Dims ≤ 1024
// take the inline allgather fast path (ring.go); the larger dims stay on
// the pipelined ring for comparison.
func BenchmarkTCPRingSmall(b *testing.B) {
	for _, dim := range []int{128, 512, 2048, 4096} {
		b.Run(fmt.Sprintf("dim%d", dim), func(b *testing.B) {
			const n = 8
			meshes, err := transport.NewTCPCluster(n)
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				for _, m := range meshes {
					_ = m.Close()
				}
			}()
			vecs := make([]tensor.Vector, n)
			for i := range vecs {
				vecs[i] = tensor.New(dim)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				done := make(chan error, n)
				for _, m := range meshes {
					m := m
					go func() {
						done <- collective.AllReduceWith(m, int64(i), vecs[m.Rank()], collective.OpAverage, collective.AlgoRing)
					}()
				}
				for range meshes {
					if err := <-done; err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
