package collective

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// Non-blocking collectives.
//
// Async multiplexes concurrent collectives over one mesh: each call runs on
// its own tag stream (the Message.Stream frame-header field — see
// transport.Streams), so several bucket reductions can be in flight at once
// without their messages interleaving. On a TCP mesh the streams route
// natively in the transport; other meshes get a cooperative demux. Start
// launches the collective on a goroutine and returns a Handle; Wait joins
// it. Everything else — algorithm auto-selection, compression Options,
// pooled buffers, the ErrTagOverflow guard — is the synchronous engine,
// reused unchanged on the stream view.

// Async runs collectives concurrently on one mesh. All SPMD ranks of a job
// must drive their meshes through an Async with the same stream/iter
// discipline. A stream carries one collective at a time (Start on a busy
// stream fails); distinct streams are fully independent.
type Async struct {
	streams transport.StreamRouter

	mu    sync.Mutex
	views map[int32]transport.Mesh
	busy  map[int32]bool

	inFlight    atomic.Int32
	maxInFlight atomic.Int32
}

// NewAsync wraps m for concurrent collectives. The wrapped mesh's receive
// side belongs to the Async afterwards: raw m.Recv calls must not be mixed
// with in-flight Starts.
func NewAsync(m transport.Mesh) *Async {
	return &Async{
		streams: transport.Streams(m),
		views:   make(map[int32]transport.Mesh),
		busy:    make(map[int32]bool),
	}
}

// Handle is one in-flight collective. Wait blocks until it completes and
// returns its error; for partial collectives Partial returns the result
// after a successful Wait.
type Handle struct {
	done chan struct{}
	err  error
	pr   PartialResult
}

// Wait joins the collective. It is idempotent: further calls return the
// same error.
func (h *Handle) Wait() error {
	<-h.done
	return h.err
}

// Partial returns the partial-collective outcome. Valid only after Wait
// returned nil on a handle from StartPartial; the Sum buffer follows the
// usual Release contract.
func (h *Handle) Partial() PartialResult { return h.pr }

// MaxInFlight reports the largest number of collectives this Async has had
// in flight simultaneously — the observability hook behind the rnabench
// overlap gate.
func (a *Async) MaxInFlight() int { return int(a.maxInFlight.Load()) }

// view returns the (cached) mesh view for a stream.
func (a *Async) view(stream int32) transport.Mesh {
	v := a.views[stream]
	if v == nil {
		v = a.streams.StreamView(stream)
		a.views[stream] = v
	}
	return v
}

// acquire claims a stream for one collective and bumps the in-flight
// gauges. The stream id travels as a first-class frame-header field, so any
// int64 iter is usable — there is no packed-tag overflow to guard.
func (a *Async) acquire(stream int32, iter int64) (transport.Mesh, error) {
	_ = iter
	if stream < 0 {
		return nil, fmt.Errorf("collective: negative stream %d", stream)
	}
	a.mu.Lock()
	if a.busy[stream] {
		a.mu.Unlock()
		return nil, fmt.Errorf("collective: stream %d already has a collective in flight", stream)
	}
	a.busy[stream] = true
	v := a.view(stream)
	a.mu.Unlock()

	cur := a.inFlight.Add(1)
	for {
		m := a.maxInFlight.Load()
		if cur <= m || a.maxInFlight.CompareAndSwap(m, cur) {
			break
		}
	}
	return v, nil
}

func (a *Async) release(stream int32) {
	a.inFlight.Add(-1)
	a.mu.Lock()
	delete(a.busy, stream)
	a.mu.Unlock()
}

// Start launches AllReduceOpts(v) on the given stream and returns without
// waiting. v must stay untouched until Wait returns.
func (a *Async) Start(stream int32, iter int64, v tensor.Vector, op ReduceOp, opts Options) (*Handle, error) {
	m, err := a.acquire(stream, iter)
	if err != nil {
		return nil, err
	}
	h := &Handle{done: make(chan struct{})}
	go func() {
		defer close(h.done)
		defer a.release(stream)
		h.err = AllReduceOpts(m, iter, v, op, opts)
	}()
	return h, nil
}

// StartPartial launches PartialAllReduceOpts(v, contributes) on the given
// stream. After a successful Wait, Partial holds the result (release its
// Sum when done).
func (a *Async) StartPartial(stream int32, iter int64, v tensor.Vector, contributes bool, opts Options) (*Handle, error) {
	m, err := a.acquire(stream, iter)
	if err != nil {
		return nil, err
	}
	h := &Handle{done: make(chan struct{})}
	go func() {
		defer close(h.done)
		defer a.release(stream)
		h.pr, h.err = partialAllReduce(m, iter, v, contributes, opts)
	}()
	return h, nil
}
