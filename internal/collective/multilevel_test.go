package collective

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
	"repro/internal/topology"
	"repro/internal/transport"
)

// runPlan clones the inputs, runs the multi-level engine SPMD under plan,
// and returns per-rank results.
func runPlan(t *testing.T, inputs []tensor.Vector, iter int64, op ReduceOp, plan *topology.Plan) []tensor.Vector {
	t.Helper()
	got := make([]tensor.Vector, len(inputs))
	for r := range got {
		got[r] = inputs[r].Clone()
	}
	runSPMD(t, len(inputs), func(m transport.Mesh) error {
		return MultiLevelAllReduce(m, iter, got[m.Rank()], op, plan)
	})
	return got
}

// assertMatchesSerial requires every rank within 1e-12 of the serial
// reference AND bit-identical to rank 0.
func assertMatchesSerial(t *testing.T, label string, got []tensor.Vector, want tensor.Vector) {
	t.Helper()
	for r := range got {
		if j, ok := withinTol(got[r], want, 1e-12); !ok {
			t.Fatalf("%s rank=%d elem %d: got %v, want %v", label, r, j, got[r][j], want[j])
		}
	}
	for r := 1; r < len(got); r++ {
		for j := range got[0] {
			if math.Float64bits(got[r][j]) != math.Float64bits(got[0][j]) {
				t.Fatalf("%s: rank %d elem %d not bit-identical to rank 0", label, r, j)
			}
		}
	}
}

// TestMultiLevelMatchesSerial sweeps level structures over non-power-of-two
// rank counts, non-uniform group sizes and singleton groups — the group
// planner shapes the engine must execute bit-identically.
func TestMultiLevelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cases := []struct {
		n        int
		branches []int
	}{
		{2, []int{2}},
		{4, []int{2}},
		{7, []int{2}},        // non-power-of-two, sizes 2/2/2 + remainder
		{9, []int{3}},        // 3x3
		{10, []int{3}},       // groups of 3..4 → non-uniform sizes
		{16, []int{4, 2}},    // three levels
		{13, []int{2, 3}},    // three levels, ragged everywhere
		{12, []int{5}},       // 5,4,3-ish split with ragged remainder
		{8, nil},             // flat degenerate plan
		{11, []int{2, 2, 2}}, // four levels on a prime rank count
	}
	for _, tc := range cases {
		plan, err := topology.UniformPlan(tc.n, tc.branches)
		if err != nil {
			t.Fatalf("UniformPlan(%d, %v): %v", tc.n, tc.branches, err)
		}
		for _, op := range []ReduceOp{OpSum, OpAverage} {
			for _, dim := range []int{0, 1, 17, 260} {
				inputs := randomInputs(rng, tc.n, dim)
				want := serialSum(inputs, op)
				got := runPlan(t, inputs, 3, op, plan)
				assertMatchesSerial(t, plan.String(), got, want)
			}
		}
	}
}

// TestMultiLevelSingletonGroups: a plan whose level-0 groups are all
// singletons degenerates to a flat exchange one level up — including the
// extreme where EVERY rank is its own group.
func TestMultiLevelSingletonGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	n := 6
	plan := &topology.Plan{
		Ranks: n,
		Levels: [][]topology.Group{
			{{Members: []int{0}}, {Members: []int{1}}, {Members: []int{2}}, {Members: []int{3}}, {Members: []int{4}}, {Members: []int{5}}},
			{{Members: []int{0, 1, 2, 3, 4, 5}}},
		},
	}
	inputs := randomInputs(rng, n, 33)
	want := serialSum(inputs, OpAverage)
	got := runPlan(t, inputs, 1, OpAverage, plan)
	assertMatchesSerial(t, "singletons", got, want)

	// Mixed singleton and wide groups.
	plan = &topology.Plan{
		Ranks: n,
		Levels: [][]topology.Group{
			{{Members: []int{0, 3}}, {Members: []int{1}}, {Members: []int{2, 4, 5}}},
			{{Members: []int{0, 1, 2}}},
		},
	}
	inputs = randomInputs(rng, n, 65)
	want = serialSum(inputs, OpSum)
	got = runPlan(t, inputs, 2, OpSum, plan)
	assertMatchesSerial(t, "mixed singleton", got, want)
}

// TestMultiLevelPlannerShapesExecute closes the loop with the topology
// planner: plans produced by PlanFromLinks on skewed fabrics run correctly.
func TestMultiLevelPlannerShapesExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	// 12 ranks, 3 machines of 4: intra fast, inter slow.
	n := 12
	bw := make([][]float64, n)
	for i := range bw {
		bw[i] = make([]float64, n)
		for j := range bw[i] {
			if i == j {
				continue
			}
			if i/4 == j/4 {
				bw[i][j] = 10e9
			} else {
				bw[i][j] = 1e9
			}
		}
	}
	plan, err := topology.PlanFromLinks(bw)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Levels) != 2 {
		t.Fatalf("planner produced %v, want 2 levels", plan)
	}
	inputs := randomInputs(rng, n, 129)
	want := serialSum(inputs, OpAverage)
	got := runPlan(t, inputs, 5, OpAverage, plan)
	assertMatchesSerial(t, "planned "+plan.String(), got, want)
}

// TestMultiLevelRejectsBadPlans: structural validation runs before any
// traffic.
func TestMultiLevelRejectsBadPlans(t *testing.T) {
	bad := []*topology.Plan{
		{Ranks: 4, Levels: [][]topology.Group{{{Members: []int{0, 1}}}}},
		{Ranks: 4, Levels: [][]topology.Group{{{Members: []int{0, 1}}, {Members: []int{2, 3}}}, {{Members: []int{1, 2}}}}},
		{Ranks: 8, Levels: [][]topology.Group{{{Members: []int{0, 1, 2, 3}}}}}, // plan smaller than mesh
	}
	for i, plan := range bad {
		plan := plan
		runSPMD(t, 4, func(m transport.Mesh) error {
			if err := MultiLevelAllReduce(m, 0, tensor.New(8), OpSum, plan); err == nil {
				t.Errorf("bad plan %d accepted", i)
			}
			return nil
		})
	}
}

// TestMultiLevelCompression: compressed descent with error feedback at the
// top leader — all ranks still bit-identical, result within the dtype's
// tolerance of the serial reference.
func TestMultiLevelCompression(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n := 9
	plan, err := topology.UniformPlan(n, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	inputs := randomInputs(rng, n, 260)
	want := serialSum(inputs, OpAverage)
	got := make([]tensor.Vector, n)
	residuals := make([]tensor.Vector, n)
	for r := range got {
		got[r] = inputs[r].Clone()
		residuals[r] = tensor.New(260)
	}
	runSPMD(t, n, func(m transport.Mesh) error {
		ml, err := NewMultiLevel(m, plan)
		if err != nil {
			return err
		}
		return ml.RunOpts(5, got[m.Rank()], OpAverage, Options{
			Compression: tensor.F16,
			Residual:    residuals[m.Rank()],
		})
	})
	for r := range got {
		if j, ok := withinTol(got[r], want, 1e-2); !ok {
			t.Fatalf("rank %d elem %d: got %v, want %v", r, j, got[r][j], want[j])
		}
	}
	for r := 1; r < n; r++ {
		for j := range got[0] {
			if math.Float64bits(got[r][j]) != math.Float64bits(got[0][j]) {
				t.Fatalf("compressed multi-level: rank %d differs from rank 0", r)
			}
		}
	}
	// Only the top leader (rank 0) quantized from exact fp64; its residual
	// carries the error, everyone else's stays zero.
	var leaderMass, otherMass float64
	for j := range residuals[0] {
		leaderMass += math.Abs(residuals[0][j])
	}
	for r := 1; r < n; r++ {
		for j := range residuals[r] {
			otherMass += math.Abs(residuals[r][j])
		}
	}
	if leaderMass == 0 {
		t.Error("top leader residual empty under lossy compression")
	}
	if otherMass != 0 {
		t.Errorf("non-leader residuals non-zero: %v", otherMass)
	}
}

// TestMultiLevelCacheReuse: repeated calls with an identical plan reuse one
// engine per endpoint (the satellite-1 contract — no per-call SubMesh
// rebuilds), while a different plan replaces the entry.
func TestMultiLevelCacheReuse(t *testing.T) {
	n := 8
	net, err := transport.NewLocalNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	planA, _ := topology.UniformPlan(n, []int{4})
	planB, _ := topology.UniformPlan(n, []int{2})
	m := net.Endpoints()[0]
	a1, err := cachedMultiLevel(m, planA)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := cachedMultiLevel(m, planA)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("identical plan rebuilt the engine")
	}
	// Same shape, fresh Plan value: the content key must still hit.
	planA2, _ := topology.UniformPlan(n, []int{4})
	a3, err := cachedMultiLevel(m, planA2)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a3 {
		t.Error("equal-content plan missed the cache")
	}
	b1, err := cachedMultiLevel(m, planB)
	if err != nil {
		t.Fatal(err)
	}
	if b1 == a1 {
		t.Error("different plan returned the cached engine")
	}
}

// TestSelectLevelsPureAndSane: on a uniform fabric (no per-link
// calibration) the level search stays flat — splitting only adds work when
// every hop costs the same. On a fabric whose slow class has expensive hops
// it must go multi-level, deterministically, and only ever pick structures
// it prices below flat.
func TestSelectLevelsPureAndSane(t *testing.T) {
	uniform := DefaultCostModel()
	for _, n := range []int{8, 64, 256, 1024} {
		if got := uniform.SelectLevels(n, 1<<16, tensor.F64); got != nil {
			t.Errorf("uniform SelectLevels(%d) = %v, want flat", n, got)
		}
	}

	// Two link classes: fast intra-island hops, slow (high-latency,
	// bandwidth-starved) inter-island hops.
	het := DefaultCostModel()
	het.Links = []AlgoCost{
		{AlphaNs: 2000, BetaNsPerByte: 0.5},
		{AlphaNs: 5e6, BetaNsPerByte: 5},
	}
	if got := het.SelectLevels(8, 1<<16, tensor.F64); got != nil {
		t.Errorf("SelectLevels(8) = %v, want flat below threshold", got)
	}
	for _, n := range []int{64, 100, 256, 1000, 1024} {
		branches := het.SelectLevels(n, 1<<16, tensor.F64)
		again := het.SelectLevels(n, 1<<16, tensor.F64)
		if len(branches) != len(again) {
			t.Fatalf("SelectLevels(%d) not deterministic", n)
		}
		for i := range branches {
			if branches[i] != again[i] {
				t.Fatalf("SelectLevels(%d) not deterministic", n)
			}
		}
		if branches == nil {
			continue
		}
		plan, err := topology.UniformPlan(n, branches)
		if err != nil {
			t.Fatalf("SelectLevels(%d) = %v: %v", n, branches, err)
		}
		flat := het.PredictLevelsNs([]int{n}, 1<<16, tensor.F64)
		leveled := het.PredictLevelsNs(plan.LevelSizes(), 1<<16, tensor.F64)
		if leveled >= flat {
			t.Errorf("SelectLevels(%d) = %v priced %v, flat %v — should only pick winners", n, branches, leveled, flat)
		}
	}
	// At 1024 ranks on the skewed fabric the model must go multi-level: a
	// flat schedule pays every critical-path hop at slow-class latency.
	if branches := het.SelectLevels(1024, 1<<16, tensor.F64); branches == nil {
		t.Error("SelectLevels(1024) stayed flat on a two-class fabric")
	}
}

// TestAlgoMultiLevelDispatch: the explicit algorithm pin and the ParseAlgorithm
// round trip.
func TestAlgoMultiLevelDispatch(t *testing.T) {
	if got, err := ParseAlgorithm("multilevel"); err != nil || got != AlgoMultiLevel {
		t.Fatalf("ParseAlgorithm(multilevel) = %v, %v", got, err)
	}
	if AlgoMultiLevel.String() != "multilevel" {
		t.Fatalf("String() = %q", AlgoMultiLevel.String())
	}
	rng := rand.New(rand.NewSource(47))
	n := 9
	inputs := randomInputs(rng, n, 130)
	want := serialSum(inputs, OpAverage)
	got := runAlgo(t, inputs, 7, OpAverage, AlgoMultiLevel)
	assertMatchesSerial(t, "algo pin", got, want)
}
