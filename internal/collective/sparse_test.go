package collective

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// sparseReference computes what the top-k exchange must produce: each
// rank's top-k (deterministic tie-breaking) contributes its exact values,
// everything else contributes zero, and OpAverage divides by the FULL rank
// count.
func sparseReference(inputs []tensor.Vector, k int, op ReduceOp) tensor.Vector {
	dim := len(inputs[0])
	out := tensor.New(dim)
	for _, in := range inputs {
		for _, j := range tensor.TopKSelect(in, k) {
			out[j] += in[j]
		}
	}
	if op == OpAverage {
		out.Scale(1 / float64(len(inputs)))
	}
	return out
}

// TestTopKAllReduceMatchesReference sweeps rank counts (power-of-two and
// not), k values (1, partial, full) and both ops.
func TestTopKAllReduceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, n := range []int{1, 2, 3, 5, 8, 9} {
		for _, dim := range []int{1, 16, 97} {
			for _, k := range []int{1, 4, dim, dim + 5} {
				for _, op := range []ReduceOp{OpSum, OpAverage} {
					inputs := randomInputs(rng, n, dim)
					want := sparseReference(inputs, k, op)
					got := make([]tensor.Vector, n)
					for r := range got {
						got[r] = inputs[r].Clone()
					}
					runSPMD(t, n, func(m transport.Mesh) error {
						return TopKAllReduce(m, 3, got[m.Rank()], op, k, nil)
					})
					for r := range got {
						if j, ok := withinTol(got[r], want, 1e-12); !ok {
							t.Fatalf("n=%d dim=%d k=%d op=%v rank=%d elem %d: got %v, want %v",
								n, dim, k, op, r, j, got[r][j], want[j])
						}
					}
					// Bit-identity: the root's broadcast bytes are the result.
					for r := 1; r < n; r++ {
						for j := range got[0] {
							if math.Float64bits(got[r][j]) != math.Float64bits(got[0][j]) {
								t.Fatalf("n=%d k=%d: rank %d not bit-identical", n, k, r)
							}
						}
					}
				}
			}
		}
	}
}

// TestTopKAllReduceErrorFeedback: the residual must hold exactly the mass
// each rank did NOT ship — sum(shipped) + residual == original vector.
func TestTopKAllReduceErrorFeedback(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	const n, dim, k = 4, 64, 8
	inputs := randomInputs(rng, n, dim)
	got := make([]tensor.Vector, n)
	residuals := make([]tensor.Vector, n)
	for r := range got {
		got[r] = inputs[r].Clone()
		residuals[r] = tensor.New(dim)
	}
	runSPMD(t, n, func(m transport.Mesh) error {
		return TopKAllReduce(m, 5, got[m.Rank()], OpSum, k, residuals[m.Rank()])
	})
	for r := 0; r < n; r++ {
		sel := tensor.TopKSelect(inputs[r], k)
		isSel := make(map[int32]bool, len(sel))
		for _, j := range sel {
			isSel[j] = true
		}
		for j := range inputs[r] {
			if isSel[int32(j)] {
				if residuals[r][j] != 0 {
					t.Fatalf("rank %d selected elem %d leaked into residual", r, j)
				}
			} else if residuals[r][j] != inputs[r][j] {
				t.Fatalf("rank %d dropped elem %d: residual %v, want %v", r, j, residuals[r][j], inputs[r][j])
			}
		}
	}
}

// TestTopKAllReduceOptionValidation: the option surface rejects nonsense
// combinations identically on every rank, before any traffic.
func TestTopKAllReduceOptionValidation(t *testing.T) {
	runSPMD(t, 2, func(m transport.Mesh) error {
		v := tensor.New(8)
		if err := AllReduceOpts(m, 0, v, OpSum, Options{TopK: -1}); err == nil {
			t.Error("negative k accepted")
		}
		if err := AllReduceOpts(m, 0, v, OpSum, Options{TopK: 2, Algorithm: AlgoRing}); err == nil {
			t.Error("top-k with pinned ring accepted")
		}
		if err := AllReduceOpts(m, 0, v, OpSum, Options{TopK: 2, Compression: tensor.F16}); err == nil {
			t.Error("top-k with lossy compression accepted")
		}
		return nil
	})
}

// TestMergeSparse: the union kernel — disjoint, overlapping, empty sides.
func TestMergeSparse(t *testing.T) {
	ai, av := []int32{1, 5, 9}, []float64{1, 5, 9}
	bi, bv := []int32{0, 5, 10}, []float64{10, 50, 100}
	oi, ov := mergeSparse(ai, av, bi, bv)
	wantI := []int32{0, 1, 5, 9, 10}
	wantV := []float64{10, 1, 55, 9, 100}
	if len(oi) != len(wantI) {
		t.Fatalf("merged %v, want %v", oi, wantI)
	}
	for i := range wantI {
		if oi[i] != wantI[i] || ov[i] != wantV[i] {
			t.Fatalf("merged (%v, %v), want (%v, %v)", oi, ov, wantI, wantV)
		}
	}
	if oi, ov := mergeSparse(nil, nil, bi, bv); len(oi) != 3 || ov[0] != 10 {
		t.Fatalf("empty-left merge = (%v, %v)", oi, ov)
	}
	if oi, _ := mergeSparse(ai, av, nil, nil); len(oi) != 3 {
		t.Fatalf("empty-right merge = %v", oi)
	}
}

// TestTopKAllReduceGarbageFrames: a peer shipping malformed sparse frames
// (unsorted, duplicate, out-of-range indices) must trip ErrProtocol on the
// receiver rather than corrupting its vector.
func TestTopKAllReduceGarbageFrames(t *testing.T) {
	cases := []struct {
		name string
		idx  []int32
		vals []float64
	}{
		{"unsorted", []int32{5, 2}, []float64{1, 2}},
		{"duplicate", []int32{3, 3}, []float64{1, 2}},
		{"out of range", []int32{3, 99}, []float64{1, 2}},
		{"negative", []int32{-1, 2}, []float64{1, 2}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			net, err := transport.NewLocalNetwork(2)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = net.Close() }()
			eps := net.Endpoints()
			done := make(chan error, 1)
			go func() {
				done <- topKAllReduce(eps[0], 7, tensor.New(8), OpSum, 2, nil)
			}()
			// Rank 1 plays the byzantine peer: raw malformed reduce frame.
			if err := eps[1].Send(0, transport.Message{
				Type:    transport.MsgReduce,
				Iter:    7,
				Payload: tc.vals,
				Indices: tc.idx,
			}); err != nil {
				t.Fatal(err)
			}
			if err := <-done; err == nil {
				t.Fatal("garbage frame accepted")
			}
		})
	}
}

// TestTopKDeterministicUnderTies: equal-magnitude elements across ranks
// must resolve identically on every run — rerun the same exchange and
// require byte-equal outcomes.
func TestTopKDeterministicUnderTies(t *testing.T) {
	const n, dim, k = 4, 32, 4
	inputs := make([]tensor.Vector, n)
	for r := range inputs {
		inputs[r] = tensor.New(dim)
		for j := range inputs[r] {
			inputs[r][j] = float64((j % 3) - 1) // many exact ties
		}
	}
	var first []tensor.Vector
	for trial := 0; trial < 3; trial++ {
		got := make([]tensor.Vector, n)
		for r := range got {
			got[r] = inputs[r].Clone()
		}
		runSPMD(t, n, func(m transport.Mesh) error {
			return TopKAllReduce(m, int64(trial), got[m.Rank()], OpAverage, k, nil)
		})
		if first == nil {
			first = got
			continue
		}
		for r := range got {
			for j := range got[r] {
				if math.Float64bits(got[r][j]) != math.Float64bits(first[r][j]) {
					t.Fatalf("trial %d rank %d elem %d differs across runs", trial, r, j)
				}
			}
		}
	}
	// And the selection itself is the documented order: sorted ascending.
	idx := tensor.TopKSelect(inputs[0], k)
	if !sort.SliceIsSorted(idx, func(a, b int) bool { return idx[a] < idx[b] }) {
		t.Fatalf("selection not ascending: %v", idx)
	}
}
