package collective

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// TestAlgorithmsOverTCP runs every schedule end-to-end over real localhost
// TCP connections: the algorithms must not depend on LocalNetwork-specific
// behavior (ownership transfer, unbounded in-memory queues).
func TestAlgorithmsOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster in -short mode")
	}
	rng := rand.New(rand.NewSource(31))
	for _, algo := range append([]Algorithm{AlgoAuto}, fixedAlgos...) {
		for _, n := range []int{2, 3, 5} {
			inputs := randomInputs(rng, n, 300)
			want := serialSum(inputs, OpAverage)
			meshes, err := transport.NewTCPCluster(n)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]tensor.Vector, n)
			done := make(chan error, n)
			for _, m := range meshes {
				m := m
				got[m.Rank()] = inputs[m.Rank()].Clone()
				go func() { done <- AllReduceWith(m, 1, got[m.Rank()], OpAverage, algo) }()
			}
			for i := 0; i < n; i++ {
				if err := <-done; err != nil {
					t.Fatalf("%v n=%d over TCP: %v", algo, n, err)
				}
			}
			for _, m := range meshes {
				_ = m.Close()
			}
			for r := range got {
				if j, ok := withinTol(got[r], want, 1e-12); !ok {
					t.Fatalf("%v n=%d over TCP rank=%d elem %d: got %v, want %v",
						algo, n, r, j, got[r][j], want[j])
				}
			}
		}
	}
}

// TestAlgorithmsOverSubMesh runs each schedule inside a SubMesh carved out
// of a larger parent: rank remapping must be invisible to the collectives.
func TestAlgorithmsOverSubMesh(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const parentN = 8
	members := []int{1, 3, 4, 6, 7} // non-contiguous, unsorted-adjacent subset
	for _, algo := range fixedAlgos {
		inputs := randomInputs(rng, len(members), 250)
		want := serialSum(inputs, OpSum)
		got := make([]tensor.Vector, len(members))
		runSPMD(t, parentN, func(m transport.Mesh) error {
			local := -1
			for i, g := range members {
				if g == m.Rank() {
					local = i
				}
			}
			if local < 0 {
				return nil // parent ranks outside the subset stay idle
			}
			sub, err := transport.NewSubMesh(m, members)
			if err != nil {
				return err
			}
			got[local] = inputs[local].Clone()
			return AllReduceWith(sub, 9, got[local], OpSum, algo)
		})
		for r := range got {
			if j, ok := withinTol(got[r], want, 1e-12); !ok {
				t.Fatalf("%v over submesh rank=%d elem %d: got %v, want %v",
					algo, r, j, got[r][j], want[j])
			}
		}
	}
}

// TestHierarchicalOverTCP exercises the two-level schedule — intra-group
// rings over SubMesh plus the leader exchange — on the TCP transport.
func TestHierarchicalOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster in -short mode")
	}
	rng := rand.New(rand.NewSource(51))
	const n = 6
	groups := [][]int{{0, 1, 2}, {3, 4}, {5}}
	inputs := randomInputs(rng, n, 180)
	want := serialSum(inputs, OpAverage)
	meshes, err := transport.NewTCPCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	got := make([]tensor.Vector, n)
	done := make(chan error, n)
	for _, m := range meshes {
		m := m
		got[m.Rank()] = inputs[m.Rank()].Clone()
		go func() { done <- HierarchicalAllReduce(m, 2, got[m.Rank()], OpAverage, groups) }()
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for r := range got {
		if j, ok := withinTol(got[r], want, 1e-12); !ok {
			t.Fatalf("rank=%d elem %d: got %v, want %v", r, j, got[r][j], want[j])
		}
	}
}

// TestMidCollectiveClose closes one endpoint while a collective is in
// flight and requires every rank to return a clean error — no hang, no
// panic. Each algorithm is tried in turn on a fresh cluster.
func TestMidCollectiveClose(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster in -short mode")
	}
	for _, algo := range fixedAlgos {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			const n = 4
			meshes, err := transport.NewTCPCluster(n)
			if err != nil {
				t.Fatal(err)
			}
			// Rank n-1 closes instead of participating; the survivors block
			// in Recv until the closure propagates and must surface an error.
			errs := make([]error, n)
			var wg sync.WaitGroup
			for _, m := range meshes[:n-1] {
				m := m
				wg.Add(1)
				go func() {
					defer wg.Done()
					v := tensor.New(4096)
					v.Fill(float64(m.Rank()))
					errs[m.Rank()] = AllReduceWith(m, 0, v, OpSum, algo)
				}()
			}
			_ = meshes[n-1].Close()
			// Unblock survivors waiting on each other, not just on the victim.
			for _, m := range meshes[:n-1] {
				_ = m.Close()
			}
			wg.Wait()
			for r, err := range errs[:n-1] {
				if err == nil {
					t.Errorf("rank %d returned nil error after mid-collective close", r)
				}
			}
		})
	}
}

// TestTreeLargeFanIn is a smoke test that the tree schedule stays correct at
// a rank count past every power-of-two boundary the other tests use.
func TestTreeLargeFanIn(t *testing.T) {
	const n, dim = 16, 64
	got := make([]tensor.Vector, n)
	runSPMD(t, n, func(m transport.Mesh) error {
		v := tensor.New(dim)
		v.Fill(float64(m.Rank() + 1))
		got[m.Rank()] = v
		return TreeAllReduce(m, 0, v, OpSum)
	})
	want := float64(n*(n+1)) / 2
	for r := range got {
		for j := range got[r] {
			if math.Abs(got[r][j]-want) > 1e-9 {
				t.Fatalf("rank %d elem %d: got %v, want %v", r, j, got[r][j], want)
			}
		}
	}
}
