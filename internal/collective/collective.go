// Package collective implements decentralized collective operations over a
// transport.Mesh: the bandwidth-optimal ring AllReduce of Section 2.2
// (scatter-reduce + allgather), the partial AllReduce RNA builds on (null
// contributions from stragglers, contributor counting), and a binomial-tree
// broadcast used by the hierarchical synchronizer.
//
// All operations are SPMD: every rank calls the same function with its own
// mesh endpoint, and the call returns when that rank's part completes.
package collective

import (
	"errors"
	"fmt"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// ReduceOp selects the AllReduce reduction.
type ReduceOp int

// Supported reductions.
const (
	// OpSum leaves the element-wise sum in the output.
	OpSum ReduceOp = iota + 1
	// OpAverage divides the element-wise sum by the rank count.
	OpAverage
)

// ErrProtocol is returned when a received message does not match the
// collective's expected step (wrong iteration or chunk), which indicates
// interleaved collectives on one mesh.
var ErrProtocol = errors.New("collective: protocol violation")

// RingAllReduce reduces v in place across all ranks of m using the ring
// schedule: N−1 scatter-reduce steps, each sending one 1/N chunk to the
// left neighbor while reducing the chunk arriving from the right, followed
// by N−1 allgather steps circulating the fully reduced chunks. iter tags
// the messages so concurrent iterations cannot be confused.
//
// The schedule is pipelined (see ring.go): each step's sends overlap its
// receives, and large chunks travel as several segments so reduction
// compute hides behind transfer. Results are bit-identical to the serial
// schedule.
func RingAllReduce(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp) error {
	return ringAllReduce(m, iter, v, op, 0, tensor.F64, nil)
}

// RingAllReduceSegmented is RingAllReduce with an explicit pipeline depth:
// each ring chunk travels as `segments` back-to-back messages. segments <= 0
// selects the depth automatically (the RingAllReduce default). All ranks
// must pass the same depth.
func RingAllReduceSegmented(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp, segments int) error {
	return ringAllReduce(m, iter, v, op, segments, tensor.F64, nil)
}

// PartialResult is the outcome of a partial AllReduce.
type PartialResult struct {
	// Sum is the element-wise sum over contributing ranks only.
	Sum tensor.Vector
	// Contributors is Σ w_{k,i}: how many ranks contributed a real
	// gradient (the rest supplied nulls). Zero means nobody had data.
	Contributors int
}

// Release hands Sum's backing buffer back to the transport pool. Callers
// that are done with Sum should release it — the partial collective runs
// once per training step on every rank, and releasing makes that steady
// state allocation-free. After Release the Sum slice must not be touched.
//
// Release is idempotent: it nils Sum out, so releasing the same result
// twice is a no-op rather than a double PutPayload that would hand one
// buffer out to two future callers and silently corrupt the pool's free
// list. (Releasing two COPIES of one result is still a double free — keep
// a single owning PartialResult per collective.)
func (r *PartialResult) Release() {
	if r.Sum != nil {
		transport.PutPayload(r.Sum)
		r.Sum = nil
		r.Contributors = 0
	}
}

// PartialRingAllReduce performs the paper's partial AllReduce: ranks with
// contributes=false take part in the communication graph with a null
// (zero) gradient, exactly as Section 2.3.2 describes, so the ring schedule
// is unchanged. The reduction also counts contributors, giving every rank
// the weight W = 1/Σw needed for the weighted average of Algorithm 2.
//
// v is not modified; the summed gradient is returned in PartialResult.Sum,
// which lives in a pooled scratch buffer — call Release when done with it.
func PartialRingAllReduce(m transport.Mesh, iter int64, v tensor.Vector, contributes bool) (PartialResult, error) {
	// The contribution flag piggybacks as one extra element so the count
	// is reduced by the same pass as the data (see partialAllReduce).
	return partialAllReduce(m, iter, v, contributes, Options{Algorithm: AlgoRing})
}

// Broadcast distributes root's v to all ranks via a binomial tree rooted at
// root. On non-root ranks v is overwritten with the received data; all
// ranks must pass a v of equal length.
func Broadcast(m transport.Mesh, iter int64, v tensor.Vector, root int) error {
	return broadcast(m, iter, v, root, tensor.F64)
}

// broadcast is Broadcast with a wire dtype. The root must already hold
// quantized (grid) values when wire is lossy — every relay then re-encodes
// the full vector it decoded, which is exact by idempotence, so all ranks
// finish with the root's bytes.
func broadcast(m transport.Mesh, iter int64, v tensor.Vector, root int, wire tensor.Dtype) error {
	n := m.Size()
	if n == 1 {
		return nil
	}
	if root < 0 || root >= n {
		return fmt.Errorf("collective: broadcast root %d of %d", root, n)
	}
	// Work in a rotated space where the root is rank 0.
	vrank := mod(m.Rank()-root, n)

	// Receive phase: every non-root rank receives exactly once, from the
	// parent that covers it in the doubling schedule.
	if vrank != 0 {
		// The parent of vrank is vrank with its highest set bit cleared.
		parent := vrank &^ highestBit(vrank)
		src := mod(parent+root, n)
		msg, err := m.Recv(src)
		if err != nil {
			return fmt.Errorf("broadcast recv: %w", err)
		}
		if err := checkMsg("broadcast", msg, transport.MsgBroadcast, iter, msg.Chunk); err != nil {
			transport.PutPayload(msg.Payload)
			return err
		}
		if err := v.CopyFrom(msg.Payload); err != nil {
			return fmt.Errorf("broadcast copy: %w", err)
		}
		transport.PutPayload(msg.Payload)
	}

	// Send phase: forward to children vrank+span for doubling spans.
	span := highestBit(vrank)
	if vrank == 0 {
		span = 1
	} else {
		span <<= 1
	}
	for ; span < n; span <<= 1 {
		child := vrank + span
		if child >= n {
			break
		}
		dst := mod(child+root, n)
		if err := m.Send(dst, transport.Message{
			Type:    transport.MsgBroadcast,
			Iter:    iter,
			Dtype:   wire,
			Payload: v,
		}); err != nil {
			return fmt.Errorf("broadcast send: %w", err)
		}
	}
	return nil
}

// mod returns a (mod n) normalized to [0, n).
func mod(a, n int) int {
	return ((a % n) + n) % n
}

// highestBit returns the highest power of two not exceeding x; 0 for x<=0.
func highestBit(x int) int {
	if x <= 0 {
		return 0
	}
	b := 1
	for b<<1 <= x {
		b <<= 1
	}
	return b
}
