package collective

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// Ring-schedule fast path for the uniform partition.
//
// The direct exchange in shard.go is latency-optimal (one send round) and
// handles arbitrary ownership tables, but on a shared-memory mesh it pays
// roughly twice the fused ring's memory traffic: every one of the n−1 spans
// is copied into a pooled buffer at the sender AND copied out at the
// receiver, and the fold reads all n contributions with strided modular
// indexing. The pipelined ring instead forwards one rotating buffer per
// chunk around the whole ring — each hop is a single vectorized Add (scatter)
// or copy (gather) and the forward itself is an ownership-transfer send with
// no copy at all.
//
// When the ownership table IS the uniform tensor.ChunkBounds partition (the
// common case: the sharded optimizer path with no skew weights), the halves
// below run the ring's own schedule instead of the direct exchange, so
// composing ReduceScatter + AllGather costs what the fused RingAllReduce
// costs. Weighted tables and degenerate shapes (dim < n, empty spans) keep
// the direct exchange, which handles them naturally.
//
// Bit-identity is preserved by construction: chunk c starts at rank c and
// travels in ring order c, c+1, …, c−1, each hop folding payload += v-segment
// (bitwise equal to v + payload), which is exactly the fused ring's — and the
// direct exchange's — left-associative accumulation order. The one wrinkle is
// that the ring scatter finishes chunk c at rank c−1, while the shard
// ownership contract says rank c owns span c; the schedule therefore runs one
// extra hop, with rank c−1 completing chunk c IN THE ROTATING BUFFER
// (payload += v, scale while cache-hot) and forwarding that buffer to its
// contractual owner with one more ownership-transfer send. The owner's single
// CopyFrom into v is the only cost of the extra hop, and v is never written
// outside the owned span — the price of keeping the rank↔span mapping
// identical across the fast path, the direct exchange, and the skew engine.
//
// The allgather half needs no shuffle: rank r already owns span r, so it
// injects its chunk at step 0 and every hop forwards the received buffer
// after copying it into place. Compression follows the same owner-quantize
// contract as the direct exchange: the owner round-trips its span once
// (capturing the error-feedback residual), and forwarded buffers already sit
// on the quantization grid, so re-encoding them on the next hop is exact by
// idempotence.

// shardRingShuffleTag tags the ownership-shuffle hop that moves the completed
// chunk from the ring position that finished it to its contractual owner. It
// lives past both the scatter (0..n−1) and gather (n..2n−1) tag spaces.
func shardRingShuffleTag(n, chunk int) int32 { return int32(2*n + chunk) }

// uniformShardOffsets reports whether offs is exactly the uniform
// tensor.ChunkBounds partition with no empty chunk — the shape the ring
// schedule requires. Every input is SPMD-agreed, so all ranks branch the
// same way.
func uniformShardOffsets(total, n int, offs []int) bool {
	if total < n {
		return false
	}
	for c := 0; c < n; c++ {
		_, end, err := tensor.ChunkBounds(total, n, c)
		if err != nil || offs[c+1] != end {
			return false
		}
	}
	return true
}

// ringReduceScatter runs the scatter-reduce half of the pipelined ring over
// the uniform partition: n−1 ring hops with rotating-buffer forwarding, plus
// the ownership-delivery hop that carries each completed chunk from the ring
// position that finished it to its contractual owner. On return rank r owns
// the fully reduced (and, for OpAverage, scaled) uniform chunk r of v; every
// other span still holds this rank's stale local values.
func ringReduceScatter(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp) error {
	n := m.Size()
	rank := m.Rank()
	if err := checkSegTagSpace(n, 3); err != nil {
		return err
	}
	left := (rank + 1) % n
	right := mod(rank-1, n)
	var fwd []float64
	for st := 0; st < n-1; st++ {
		sendIdx := mod(rank-st, n)
		msg := transport.Message{Type: transport.MsgChunk, Iter: iter, Chunk: skewScatterTag(sendIdx)}
		var err error
		if st == 0 {
			// Step 0 sources this rank's own chunk from v; Send copies, so v
			// stays live.
			cs, ce, _ := tensor.ChunkBounds(len(v), n, sendIdx)
			msg.Payload = v[cs:ce]
			err = m.Send(left, msg)
		} else {
			// Later steps forward the buffer the previous hop folded into —
			// an ownership-transfer send, no copy.
			msg.Payload = fwd
			fwd = nil
			err = transport.SendOwned(m, left, msg)
		}
		if err != nil {
			return fmt.Errorf("reduce-scatter ring send: %w", err)
		}
		recvIdx := mod(rank-st-1, n)
		rs, re, _ := tensor.ChunkBounds(len(v), n, recvIdx)
		in, err := m.Recv(right)
		if err != nil {
			return fmt.Errorf("reduce-scatter ring recv: %w", err)
		}
		if cerr := checkMsg("reduce-scatter", in, transport.MsgChunk, iter, skewScatterTag(recvIdx)); cerr != nil {
			transport.PutPayload(in.Payload)
			return cerr
		}
		seg := v[rs:re]
		if len(in.Payload) != len(seg) {
			transport.PutPayload(in.Payload)
			return fmt.Errorf("%w: reduce-scatter ring chunk %d elems, want %d", ErrProtocol, len(in.Payload), len(seg))
		}
		// Every hop — including the last — folds v into the rotating buffer
		// (payload + v is bitwise equal to v + payload). Intermediate hops
		// pass the buffer to the next scatter step; the last hop completes
		// chunk rank+1 in the buffer itself.
		if err := tensor.Vector(in.Payload).Add(seg); err != nil {
			transport.PutPayload(in.Payload)
			return fmt.Errorf("reduce-scatter ring fold: %w", err)
		}
		fwd = in.Payload
	}
	// Ownership delivery: the buffer now holds the completed sum of chunk
	// rank+1, whose contractual owner is the left neighbor. Scale while the
	// buffer is cache-hot (sum·(1/n) is the same two floats wherever it
	// runs), forward the buffer itself — no copy — and receive this rank's
	// own completed span from the right.
	done := mod(rank+1, n)
	if op == OpAverage {
		tensor.Vector(fwd).Scale(1 / float64(n))
	}
	if err := transport.SendOwned(m, left, transport.Message{
		Type:    transport.MsgChunk,
		Iter:    iter,
		Chunk:   shardRingShuffleTag(n, done),
		Payload: fwd,
	}); err != nil {
		return fmt.Errorf("reduce-scatter delivery send: %w", err)
	}
	os, oe, _ := tensor.ChunkBounds(len(v), n, rank)
	in, err := m.Recv(right)
	if err != nil {
		return fmt.Errorf("reduce-scatter delivery recv: %w", err)
	}
	if cerr := checkMsg("reduce-scatter", in, transport.MsgChunk, iter, shardRingShuffleTag(n, rank)); cerr != nil {
		transport.PutPayload(in.Payload)
		return cerr
	}
	own := v[os:oe]
	if len(in.Payload) != len(own) {
		transport.PutPayload(in.Payload)
		return fmt.Errorf("%w: reduce-scatter delivery %d elems, want %d", ErrProtocol, len(in.Payload), len(own))
	}
	err = own.CopyFrom(in.Payload)
	transport.PutPayload(in.Payload)
	if err != nil {
		return fmt.Errorf("reduce-scatter delivery copy: %w", err)
	}
	return nil
}

// ringAllGather runs the gather half of the pipelined ring over the uniform
// partition: rank r injects its owned chunk r at step 0 and every subsequent
// hop copies the received chunk into v and forwards the buffer onward with no
// copy. wire and residual follow the owner-quantize contract of allGather.
func ringAllGather(m transport.Mesh, iter int64, v tensor.Vector, wire tensor.Dtype, residual tensor.Vector) error {
	n := m.Size()
	rank := m.Rank()
	if err := checkSegTagSpace(n, 3); err != nil {
		return err
	}
	left := (rank + 1) % n
	right := mod(rank-1, n)
	os, oe, _ := tensor.ChunkBounds(len(v), n, rank)
	own := v[os:oe]
	if wire != tensor.F64 {
		// Owner-side quantization: the values this rank keeps are exactly the
		// values every peer decodes, and the error-feedback residual is
		// captured at the only point where exact fp64 values exist. Forwarded
		// buffers already sit on the grid — re-encoding them is exact.
		if residual != nil {
			tensor.RoundTripEF(wire, own, residual[os:oe])
		} else {
			tensor.RoundTrip(wire, own)
		}
	}
	var fwd []float64
	for st := 0; st < n-1; st++ {
		sendIdx := mod(rank-st, n)
		msg := transport.Message{Type: transport.MsgChunk, Iter: iter, Chunk: skewGatherTag(n, sendIdx), Dtype: wire}
		var err error
		if st == 0 {
			msg.Payload = own
			err = m.Send(left, msg)
		} else {
			msg.Payload = fwd
			fwd = nil
			err = transport.SendOwned(m, left, msg)
		}
		if err != nil {
			return fmt.Errorf("allgather ring send: %w", err)
		}
		recvIdx := mod(rank-st-1, n)
		rs, re, _ := tensor.ChunkBounds(len(v), n, recvIdx)
		in, err := m.Recv(right)
		if err != nil {
			return fmt.Errorf("allgather ring recv: %w", err)
		}
		if cerr := checkMsg("allgather", in, transport.MsgChunk, iter, skewGatherTag(n, recvIdx)); cerr != nil {
			transport.PutPayload(in.Payload)
			return cerr
		}
		dst := v[rs:re]
		if len(in.Payload) != len(dst) {
			transport.PutPayload(in.Payload)
			return fmt.Errorf("%w: allgather ring chunk %d elems, want %d", ErrProtocol, len(in.Payload), len(dst))
		}
		if err := dst.CopyFrom(in.Payload); err != nil {
			transport.PutPayload(in.Payload)
			return fmt.Errorf("allgather ring copy: %w", err)
		}
		if st < n-2 {
			fwd = in.Payload
			continue
		}
		transport.PutPayload(in.Payload)
	}
	return nil
}
