package collective

import (
	"fmt"
	"time"

	"repro/internal/tensor"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Skew-aware collective scheduling.
//
// Every flat schedule in this package splits the tensor into equal chunks,
// so one slow link binds the whole AllReduce: the ring relays (almost) the
// full tensor over every link, and the slowest link's service time is the
// collective's makespan. The skew-aware schedule instead sizes each rank's
// chunk to the speed of the links that must carry it, then exchanges chunks
// DIRECTLY: reduce-scatter sends each peer its (unequal) chunk in one hop,
// the owner folds all contributions in the ring's exact accumulation order,
// and allgather ships the completed chunk back out in one hop. Under that
// shape rank r's wire traffic is (B − b_r) + (n−1)·b_r, so a slow rank with
// a small chunk b_r serves proportionally fewer bytes — unlike the ring,
// where chunk sizes cannot unload a link because every chunk crosses it.
//
// Determinism contract. All ranks must compute the same partition from the
// same snapshot, or chunk boundaries disagree and the collective corrupts
// data. The plan is therefore agreed through a cheap epoch-stamped exchange
// (see SkewEngine.replan): each rank contributes one scalar — its own mean
// outgoing link rate, the only row of the EWMA store it can observe — to
// rank 0, which plans once (topology.NewPartition, a pure function) and
// broadcasts the weight vector stamped with the epoch. Every subsequent
// collective derives chunk offsets from those weights via
// tensor.WeightedSizes, itself a pure function, so all ranks schedule
// bit-identically until the next epoch.
//
// Bit-identity contract. Chunk c is folded starting from rank c's own
// contribution in ring order c, c+1, …, c−1 — exactly the pipelined ring's
// association (its final seg+=payload step has the operands swapped, and
// pairwise FP addition is commutative bitwise) — and OpAverage scales the
// completed sum by 1/n at the owner, as the ring does. The skewed schedule
// therefore produces the SAME BITS as the equal-chunk ring for fp64 wires,
// regardless of the partition; and when the plan degenerates to uniform the
// engine doesn't merely match the ring, it calls it (ringAllReduce), pooled
// buffers, inline fast path and all.
//
// Online re-planning. The transport's send observer (TCPMesh.
// SetSendObserver) stamps every flushed batch with its wall time; the
// engine feeds those per-segment timings into its topology.LinkObservations
// EWMA store, so the next replan sees the rates the previous collectives
// actually achieved — the partition self-tunes over iterations without a
// calibration run. The loop is a stable fixed point: shrinking a slow
// rank's chunk changes the bytes it sends, not the rate the observer
// measures, so the estimate converges to the intrinsic link speed.

// skewGatherTagBase offsets allgather tags past the scatter tag space
// (scatter: chunk index 0..n−1; gather: n+owner).
func skewScatterTag(chunk int) int32   { return int32(chunk) }
func skewGatherTag(n, owner int) int32 { return int32(n + owner) }

// Plan-exchange tags (MsgControl frames, Iter = epoch).
const (
	skewRateTag int32 = iota
	skewPlanTag
)

// SkewOptions configures a SkewEngine. The zero value selects defaults.
type SkewOptions struct {
	// FloorElems is the minimum chunk size in elements (0 selects
	// topology.DefaultPartitionFloor; negative disables the floor).
	FloorElems int
	// MaxSkew clamps the largest-to-smallest chunk ratio (<1 selects
	// tensor.DefaultMaxSkew).
	MaxSkew float64
	// ReplanEvery re-plans the partition every k collectives (0 selects 1:
	// re-plan before every collective — the exchange is one scalar gather
	// plus one small broadcast, cheap next to any real AllReduce).
	ReplanEvery int
	// HalfLife overrides the observation EWMA half-life in samples (0
	// selects a fast half-life of 4, not the store's default 16: the
	// re-planning loop wants to track rate shifts within a handful of
	// iterations).
	HalfLife float64
}

// skewObsHalfLife is the default EWMA half-life of the engine's link store.
const skewObsHalfLife = 4.0

// SkewEngine runs skew-aware AllReduces over one mesh endpoint. Create one
// per rank (NewSkewEngine) and call AllReduce in SPMD lockstep, like any
// collective in this package. Not safe for concurrent use by multiple
// goroutines on the same endpoint.
type SkewEngine struct {
	m    transport.Mesh
	opts SkewOptions

	// obs is this rank's EWMA link store. Only row `rank` ever fills — a
	// rank can only time its own sends — but the full store keeps the
	// planner input shaped for the fabric.
	obs *topology.LinkObservations

	calls int   // collectives run (drives the replan cadence)
	epoch int64 // plan epochs agreed so far
	part  *topology.Partition

	// Pooled scratch, reused across iterations: the rate snapshot, the
	// agreed offsets (cached per vector length within an epoch), and the
	// scatter contribution table.
	rates    []float64
	offs     []int
	offsLen  int
	offsFor  int64 // epoch the cached offsets were derived from
	srcs     [][]float64
	rateWire []float64 // 1-elem payload scratch for the plan exchange
}

// NewSkewEngine builds a skew-aware engine over m. When the mesh exposes a
// send observer (TCPMesh does), the engine installs its timing hook so the
// partition self-tunes online; on meshes without one (the in-memory mesh)
// the plan stays uniform and every collective takes the plain ring path.
func NewSkewEngine(m transport.Mesh, opts SkewOptions) (*SkewEngine, error) {
	n := m.Size()
	obs, err := topology.NewLinkObservations(n)
	if err != nil {
		return nil, err
	}
	if opts.FloorElems == 0 {
		opts.FloorElems = topology.DefaultPartitionFloor
	} else if opts.FloorElems < 0 {
		opts.FloorElems = 0
	}
	if opts.ReplanEvery <= 0 {
		opts.ReplanEvery = 1
	}
	hl := opts.HalfLife
	if hl <= 0 {
		hl = skewObsHalfLife
	}
	obs.SetHalfLife(hl)
	e := &SkewEngine{m: m, opts: opts, obs: obs, rateWire: make([]float64, 1)}
	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = 1
	}
	e.part = &topology.Partition{Weights: uniform, FloorElems: opts.FloorElems, MaxSkew: opts.MaxSkew}
	rank := m.Rank()
	if om, ok := m.(interface{ SetSendObserver(transport.SendObserver) }); ok {
		om.SetSendObserver(func(to int, wireBytes int, d time.Duration) {
			// Errors (out-of-range, self) cannot happen for transport-fed
			// ranks; tiny batches fold into the latency EWMA inside the
			// store.
			_ = e.obs.ObserveTransfer(rank, to, int64(wireBytes), d)
		})
	}
	return e, nil
}

// Observations exposes the engine's link store (e.g. for seeding or
// inspection in tests and benchmarks).
func (e *SkewEngine) Observations() *topology.LinkObservations { return e.obs }

// Partition returns the currently agreed plan (never nil after NewSkewEngine).
func (e *SkewEngine) Partition() *topology.Partition { return e.part }

// LastRates returns a copy of the per-rank outgoing-rate snapshot (bytes/sec)
// behind the current plan, or nil before the first replan. Only rank 0 — the
// planning rank — holds the full gathered vector; every other rank's copy
// carries just its own row's mean (the one scalar it contributed).
func (e *SkewEngine) LastRates() []float64 {
	if e.rates == nil {
		return nil
	}
	return append([]float64(nil), e.rates...)
}

// Epoch returns the number of plan epochs agreed so far.
func (e *SkewEngine) Epoch() int64 { return e.epoch }

// Close detaches the engine's transport timing hook (the engine itself
// holds no other resources).
func (e *SkewEngine) Close() {
	if om, ok := e.m.(interface{ SetSendObserver(transport.SendObserver) }); ok {
		om.SetSendObserver(nil)
	}
}

// AllReduce runs one skew-aware AllReduce: re-plan if the cadence says so,
// then execute the agreed partition — via the plain pipelined ring when the
// plan is uniform or the cost model prefers the equal schedule, via the
// weighted direct exchange otherwise. Results are bit-identical to
// RingAllReduce in both cases.
func (e *SkewEngine) AllReduce(iter int64, v tensor.Vector, op ReduceOp) error {
	return e.AllReduceOpts(iter, v, op, Options{})
}

// AllReduceOpts is AllReduce with wire compression and error-feedback
// options (Options.Algorithm must be AlgoAuto or AlgoRing; the skew engine
// owns the schedule choice).
func (e *SkewEngine) AllReduceOpts(iter int64, v tensor.Vector, op ReduceOp, opts Options) error {
	if opts.Algorithm != AlgoAuto && opts.Algorithm != AlgoRing {
		return fmt.Errorf("collective: skew engine cannot run %v", opts.Algorithm)
	}
	if opts.TopK != 0 {
		return fmt.Errorf("collective: skew engine cannot run top-k")
	}
	if !opts.Compression.Valid() {
		return fmt.Errorf("collective: unknown compression dtype %d", opts.Compression)
	}
	if opts.Residual != nil && len(opts.Residual) != len(v) {
		return fmt.Errorf("collective: residual length %d != vector length %d", len(opts.Residual), len(v))
	}
	n := e.m.Size()
	if n == 1 {
		e.calls++
		return nil
	}
	if e.calls%e.opts.ReplanEvery == 0 {
		if err := e.replan(); err != nil {
			return err
		}
	}
	e.calls++
	wire := opts.Compression
	// Uniform plans take the unweighted engine verbatim — pooled buffers,
	// pipelined segments, inline fast path; bit-identity is trivial because
	// it IS the same code. Skewed plans ask the cost model whether unequal
	// chunking actually beats the equal schedules at this size (tiny
	// tensors are latency-bound: the inline path wins no matter how skewed
	// the fabric is). All inputs are SPMD-agreed, so every rank branches
	// the same way.
	if e.part.Uniform() || !ActiveCostModel().SkewWins(len(v), wire, e.part.Weights) {
		return ringAllReduce(e.m, iter, v, op, 0, wire, opts.Residual)
	}
	offs, err := e.offsets(len(v))
	if err != nil {
		return err
	}
	if tensor.UniformOffsets(offs) {
		// The floor/clamp collapsed the skew at this vector length.
		return ringAllReduce(e.m, iter, v, op, 0, wire, opts.Residual)
	}
	return skewAllReduce(e.m, iter, v, op, offs, wire, opts.Residual, e.srcsFor(n))
}

// offsets derives (and caches, per epoch and vector length) the agreed
// chunk offsets for a total-element vector.
func (e *SkewEngine) offsets(total int) ([]int, error) {
	if e.offs != nil && e.offsLen == total && e.offsFor == e.epoch {
		return e.offs, nil
	}
	sizes, err := e.part.Sizes(total)
	if err != nil {
		return nil, err
	}
	n := len(sizes)
	if cap(e.offs) < n+1 {
		e.offs = make([]int, n+1)
	}
	e.offs = e.offs[:n+1]
	e.offs[0] = 0
	for i, s := range sizes {
		e.offs[i+1] = e.offs[i] + s
	}
	e.offsLen, e.offsFor = total, e.epoch
	return e.offs, nil
}

func (e *SkewEngine) srcsFor(n int) [][]float64 {
	if cap(e.srcs) < n {
		e.srcs = make([][]float64, n)
	}
	return e.srcs[:n]
}

// replan runs one epoch of the plan exchange. Every rank sends its own
// observed mean outgoing rate to rank 0 (the one scalar only it can know);
// rank 0 assembles the full rate vector, plans deterministically, and sends
// each rank the weight vector. All frames are MsgControl stamped with the
// new epoch in Iter, so a rank that somehow drifted a replan cadence apart
// from its peers fails loudly on the epoch check instead of silently
// scheduling from a different snapshot.
func (e *SkewEngine) replan() error {
	n := e.m.Size()
	rank := e.m.Rank()
	epoch := e.epoch + 1
	e.rates = e.obs.OutRatesInto(e.rates)
	own := e.rates[rank]
	var weights []float64
	if rank == 0 {
		for from := 1; from < n; from++ {
			msg, err := e.m.Recv(from)
			if err != nil {
				return fmt.Errorf("skew plan gather: %w", err)
			}
			if cerr := checkMsg("skew-plan", msg, transport.MsgControl, epoch, skewRateTag); cerr != nil {
				transport.PutPayload(msg.Payload)
				return cerr
			}
			if len(msg.Payload) != 1 {
				transport.PutPayload(msg.Payload)
				return fmt.Errorf("%w: skew rate payload %d elems", ErrProtocol, len(msg.Payload))
			}
			e.rates[from] = msg.Payload[0]
			transport.PutPayload(msg.Payload)
		}
		e.rates[0] = own
		part, err := topology.NewPartition(e.rates, e.opts.FloorElems, e.opts.MaxSkew)
		if err != nil {
			return err
		}
		weights = part.Weights
		for to := 1; to < n; to++ {
			if err := e.m.Send(to, transport.Message{
				Type:    transport.MsgControl,
				Iter:    epoch,
				Chunk:   skewPlanTag,
				Payload: weights,
			}); err != nil {
				return fmt.Errorf("skew plan broadcast: %w", err)
			}
		}
	} else {
		e.rateWire[0] = own
		if err := e.m.Send(0, transport.Message{
			Type:    transport.MsgControl,
			Iter:    epoch,
			Chunk:   skewRateTag,
			Payload: e.rateWire,
		}); err != nil {
			return fmt.Errorf("skew plan report: %w", err)
		}
		msg, err := e.m.Recv(0)
		if err != nil {
			return fmt.Errorf("skew plan recv: %w", err)
		}
		if cerr := checkMsg("skew-plan", msg, transport.MsgControl, epoch, skewPlanTag); cerr != nil {
			transport.PutPayload(msg.Payload)
			return cerr
		}
		if len(msg.Payload) != n {
			transport.PutPayload(msg.Payload)
			return fmt.Errorf("%w: skew plan payload %d elems, want %d", ErrProtocol, len(msg.Payload), n)
		}
		weights = append(make([]float64, 0, n), msg.Payload...)
		transport.PutPayload(msg.Payload)
	}
	e.part = &topology.Partition{
		Weights:    weights,
		FloorElems: e.opts.FloorElems,
		MaxSkew:    e.opts.MaxSkew,
		Epoch:      epoch,
	}
	e.epoch = epoch
	return nil
}

// skewAllReduce executes the weighted direct exchange as the composition of
// the two first-class halves (shard.go): one-hop reduce-scatter into the
// chunk owners (ring-order fold, owner-side average), owner-side quantize,
// one-hop allgather back out. offs is the agreed n+1 offset table; srcs is
// pooled scratch of at least n slots.
func skewAllReduce(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp, offs []int, wire tensor.Dtype, residual tensor.Vector, srcs [][]float64) error {
	if err := reduceScatter(m, iter, v, op, offs, srcs); err != nil {
		return err
	}
	return allGather(m, iter, v, offs, wire, residual)
}
