package collective

import (
	"fmt"
	"math"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// First-class ReduceScatter / AllGather primitives.
//
// These are the two halves of the skew-aware direct exchange (see skew.go),
// promoted to independently callable collectives so an owner-computes update
// path can run the optimizer BETWEEN them: reduce-scatter leaves each rank
// owning the fully reduced span offs[rank]:offs[rank+1], the owner applies
// its optimizer to that span only, and allgather ships the refreshed
// parameters back out. Composing ReduceScatter + AllGather with no work in
// between reproduces skewAllReduce exactly — same tags, same pooled
// buffers, same fold — which is how the existing skew bit-identity tests
// also prove the refactor.
//
// Ownership tables. offs is an n+1 prefix table: rank r owns the span
// offs[r]:offs[r+1]. Spans must be monotone and cover the vector exactly;
// ShardOffsets derives the two partitions the training stack uses (uniform
// tensor.ChunkBounds spans, or tensor.WeightedSizes spans so slow ranks own
// smaller shards). A nil offs selects the uniform table.
//
// Bit-identity contract (inherited from skew.go): element g is folded
// left-associatively in ring order starting from g's UNIFORM chunk index —
// regardless of which rank owns g under offs — so the composed
// ReduceScatter+AllGather produces the same bits as RingAllReduce under ANY
// partition. OpAverage scales at the owner, exactly like the ring's fused
// average.
//
// Compression invariant (fp64 reduce / compressed allgather): the
// reduce-scatter always ships exact fp64 — quantizing partial sums would
// re-quantize values and break the one-quantization-per-element contract —
// while the allgather carries Options.Compression. The owner quantizes its
// completed span once, captures the error into Options.Residual at the only
// point where exact fp64 exists, and every peer decodes the identical grid
// values.

// ShardOffsets returns the n+1 ownership offset table over a total-element
// vector: the uniform tensor.ChunkBounds partition when weights is nil, the
// tensor.WeightedSizes partition otherwise (no size floor — optimizer spans
// have no framing cost to amortize — and the default max-skew clamp).
// Both derivations are pure functions of (total, n, weights), so SPMD ranks
// given the same inputs agree on every span.
func ShardOffsets(total, n int, weights []float64) ([]int, error) {
	if n < 1 {
		return nil, fmt.Errorf("collective: shard offsets over %d ranks", n)
	}
	if total < 0 {
		return nil, fmt.Errorf("collective: shard offsets over %d elements", total)
	}
	if weights == nil {
		offs := make([]int, n+1)
		for c := 0; c < n; c++ {
			_, end, err := tensor.ChunkBounds(total, n, c)
			if err != nil {
				return nil, err
			}
			offs[c+1] = end
		}
		return offs, nil
	}
	if len(weights) != n {
		return nil, fmt.Errorf("collective: %d shard weights over %d ranks", len(weights), n)
	}
	sizes, err := tensor.WeightedSizes(total, weights, 0, tensor.DefaultMaxSkew)
	if err != nil {
		return nil, err
	}
	return tensor.WeightedOffsets(sizes), nil
}

// checkShardOffsets validates an ownership table against (n ranks, total
// elements).
func checkShardOffsets(n, total int, offs []int) error {
	if len(offs) != n+1 || offs[0] != 0 || offs[n] != total {
		return fmt.Errorf("collective: shard offsets cover %d of %d elements over %d ranks", offs[len(offs)-1], total, n)
	}
	for i := 0; i < n; i++ {
		if offs[i+1] < offs[i] {
			return fmt.Errorf("collective: shard offsets not monotone at rank %d", i)
		}
	}
	return nil
}

// shardOffsetsOrUniform resolves a nil offs to the uniform table.
func shardOffsetsOrUniform(total, n int, offs []int) ([]int, error) {
	if offs != nil {
		return offs, nil
	}
	return ShardOffsets(total, n, nil)
}

// ReduceScatter reduces v across all ranks of m and leaves each rank owning
// the fully reduced (and, for OpAverage, scaled) span offs[rank]:offs[rank+1]
// of the result. The rest of v is left with stale local values — pair with
// AllGather to complete an AllReduce. A nil offs selects the uniform
// partition. The reduction ships exact fp64 and folds in the pipelined
// ring's order, so ReduceScatter followed by AllGather is bit-identical to
// RingAllReduce under any partition.
func ReduceScatter(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp, offs []int) error {
	if op != OpSum && op != OpAverage {
		return fmt.Errorf("collective: unknown reduce op %d", op)
	}
	n := m.Size()
	if n == 1 {
		return nil
	}
	offs, err := shardOffsetsOrUniform(len(v), n, offs)
	if err != nil {
		return err
	}
	return reduceScatter(m, iter, v, op, offs, make([][]float64, n))
}

// AllGather distributes each rank's owned span offs[rank]:offs[rank+1] of v
// to every peer, so all ranks finish with identical vectors. A nil offs
// selects the uniform partition. opts carries the wire dtype of the
// distribution (Options.Compression; the owner quantizes its span once,
// in place, capturing the error into Options.Residual's matching span) —
// Algorithm must be AlgoAuto or AlgoRing and TopK must be 0, as the direct
// exchange owns the schedule.
func AllGather(m transport.Mesh, iter int64, v tensor.Vector, offs []int, opts Options) error {
	if opts.Algorithm != AlgoAuto && opts.Algorithm != AlgoRing {
		return fmt.Errorf("collective: allgather cannot run %v", opts.Algorithm)
	}
	if opts.TopK != 0 {
		return fmt.Errorf("collective: allgather cannot run top-k")
	}
	if !opts.Compression.Valid() {
		return fmt.Errorf("collective: unknown compression dtype %d", opts.Compression)
	}
	if opts.Residual != nil && len(opts.Residual) != len(v) {
		return fmt.Errorf("collective: residual length %d != vector length %d", len(opts.Residual), len(v))
	}
	n := m.Size()
	if n == 1 {
		return nil
	}
	offs, err := shardOffsetsOrUniform(len(v), n, offs)
	if err != nil {
		return err
	}
	return allGather(m, iter, v, offs, opts.Compression, opts.Residual)
}

// PartialReduceScatter is ReduceScatter with RNA's partial-participation
// semantics: ranks with contributes=false contribute an implicit zero vector
// (their v is read-only except the owned span), and every rank returns the
// identical count of contributing ranks, learned from a flag element that
// rides every scatter message. The owned span finishes with the UNSCALED sum
// over contributors; the caller divides by the returned count (matching
// PartialAllReduce, whose Sum is also unscaled).
//
// The fold order matches the flag-extended replicated partial collective
// (partialAllReduce appends the flag as one extra element before the ring
// runs), so a sharded RNA update is bit-identical to the replicated one
// under any partition.
func PartialReduceScatter(m transport.Mesh, iter int64, v tensor.Vector, contributes bool, offs []int) (int, error) {
	n := m.Size()
	if n == 1 {
		if !contributes {
			return 0, nil
		}
		return 1, nil
	}
	offs, err := shardOffsetsOrUniform(len(v), n, offs)
	if err != nil {
		return 0, err
	}
	return partialReduceScatter(m, iter, v, contributes, offs, make([][]float64, n))
}

// foldOwnSpan folds all ranks' contributions for the span starting at global
// offset `start` in the pipelined ring's exact accumulation order: element g
// folds as v_c + v_{c+1} + … + v_{c−1} (left-associative) where c is g's
// UNIFORM chunk index under a foldTotal-element vector. foldTotal is len(v)
// for the plain collectives and len(v)+1 for the flag-extended partial
// layout — the one replicated partialAllReduce rings over.
func foldOwnSpan(own tensor.Vector, start, n, foldTotal int, srcs [][]float64) {
	c, ce := -1, 0
	for i := range own {
		for g := start + i; g >= ce; {
			c++
			_, ce, _ = tensor.ChunkBounds(foldTotal, n, c)
		}
		acc := srcs[c%n][i]
		for d := 1; d < n; d++ {
			acc += srcs[(c+d)%n][i]
		}
		own[i] = acc
	}
}

// releaseSrcs returns the first `upto`-1 received scatter payloads (indexed
// by ring distance from rank) to the transport pool.
func releaseSrcs(srcs [][]float64, rank, n, upto int) {
	for d := 1; d < upto; d++ {
		from := mod(rank-d, n)
		if srcs[from] != nil {
			transport.PutPayload(srcs[from])
			srcs[from] = nil
		}
	}
}

// reduceScatter executes the one-hop scatter + ring-order fold + owner-side
// scale. offs must be a valid n+1 table; srcs is scratch of at least n slots.
func reduceScatter(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp, offs []int, srcs [][]float64) error {
	n := m.Size()
	rank := m.Rank()
	if err := checkSegTagSpace(n, 2); err != nil {
		return err
	}
	if err := checkShardOffsets(n, len(v), offs); err != nil {
		return err
	}
	if uniformShardOffsets(len(v), n, offs) {
		// Uniform partition: the ring schedule forwards rotating buffers
		// instead of copying every span at both ends (see shard_ring.go).
		return ringReduceScatter(m, iter, v, op)
	}

	// Sends: each peer's chunk goes straight to its owner. All sends
	// complete before any receive — the TCP mesh's drain-assist protocol
	// makes an overrunning send round drain inbound frames instead of
	// deadlocking.
	for d := 1; d < n; d++ {
		to := (rank + d) % n
		if offs[to+1] == offs[to] {
			continue
		}
		if err := m.Send(to, transport.Message{
			Type:    transport.MsgChunk,
			Iter:    iter,
			Chunk:   skewScatterTag(to),
			Payload: v[offs[to]:offs[to+1]],
		}); err != nil {
			return fmt.Errorf("reduce-scatter send: %w", err)
		}
	}

	own := v[offs[rank]:offs[rank+1]]
	if len(own) == 0 {
		return nil
	}
	for d := 1; d < n; d++ {
		from := mod(rank-d, n)
		srcs[from] = nil
		msg, err := m.Recv(from)
		if err != nil {
			releaseSrcs(srcs, rank, n, d)
			return fmt.Errorf("reduce-scatter recv: %w", err)
		}
		if cerr := checkMsg("reduce-scatter", msg, transport.MsgChunk, iter, skewScatterTag(rank)); cerr != nil {
			transport.PutPayload(msg.Payload)
			releaseSrcs(srcs, rank, n, d)
			return cerr
		}
		if len(msg.Payload) != len(own) {
			transport.PutPayload(msg.Payload)
			releaseSrcs(srcs, rank, n, d)
			return fmt.Errorf("%w: reduce-scatter chunk %d elems, want %d", ErrProtocol, len(msg.Payload), len(own))
		}
		srcs[from] = msg.Payload
	}
	srcs[rank] = own
	foldOwnSpan(own, offs[rank], n, len(v), srcs)
	srcs[rank] = nil
	releaseSrcs(srcs, rank, n, n)
	if op == OpAverage {
		// Owner-side scale, identical to the ring's fused average.
		own.Scale(1 / float64(n))
	}
	return nil
}

// allGather executes the owner-side quantize + one-hop gather. offs must be
// a valid n+1 table; residual, when non-nil, must span the full vector (the
// owner's slice is used).
func allGather(m transport.Mesh, iter int64, v tensor.Vector, offs []int, wire tensor.Dtype, residual tensor.Vector) error {
	n := m.Size()
	rank := m.Rank()
	if err := checkSegTagSpace(n, 2); err != nil {
		return err
	}
	if err := checkShardOffsets(n, len(v), offs); err != nil {
		return err
	}
	if uniformShardOffsets(len(v), n, offs) {
		// Uniform partition: ring forwarding, one copy per hop instead of a
		// per-peer copy at the sender plus one at the receiver.
		return ringAllGather(m, iter, v, wire, residual)
	}
	own := v[offs[rank]:offs[rank+1]]
	if len(own) > 0 {
		if wire != tensor.F64 {
			// Owner-side quantization: the values this rank keeps are exactly
			// the values every peer decodes (re-encode is exact by
			// idempotence), and the error-feedback residual is captured at the
			// only point where exact fp64 values exist.
			if residual != nil {
				tensor.RoundTripEF(wire, own, residual[offs[rank]:offs[rank+1]])
			} else {
				tensor.RoundTrip(wire, own)
			}
		}
		for d := 1; d < n; d++ {
			to := (rank + d) % n
			if err := m.Send(to, transport.Message{
				Type:    transport.MsgChunk,
				Iter:    iter,
				Chunk:   skewGatherTag(n, rank),
				Dtype:   wire,
				Payload: own,
			}); err != nil {
				return fmt.Errorf("allgather send: %w", err)
			}
		}
	}
	for d := 1; d < n; d++ {
		from := mod(rank-d, n)
		if offs[from+1] == offs[from] {
			continue
		}
		msg, err := m.Recv(from)
		if err != nil {
			return fmt.Errorf("allgather recv: %w", err)
		}
		if cerr := checkMsg("allgather", msg, transport.MsgChunk, iter, skewGatherTag(n, from)); cerr != nil {
			transport.PutPayload(msg.Payload)
			return cerr
		}
		dst := v[offs[from]:offs[from+1]]
		if len(msg.Payload) != len(dst) {
			transport.PutPayload(msg.Payload)
			return fmt.Errorf("%w: allgather %d elems, want %d", ErrProtocol, len(msg.Payload), len(dst))
		}
		err = dst.CopyFrom(msg.Payload)
		transport.PutPayload(msg.Payload)
		if err != nil {
			return fmt.Errorf("allgather copy: %w", err)
		}
	}
	return nil
}

// partialReduceScatter is reduceScatter with the contributor flag riding
// every scatter message as one trailing element. Every rank sends to every
// peer — even owners of empty spans get a flag-only message — so all n ranks
// learn the identical count without an extra exchange.
func partialReduceScatter(m transport.Mesh, iter int64, v tensor.Vector, contributes bool, offs []int, srcs [][]float64) (int, error) {
	n := m.Size()
	rank := m.Rank()
	if err := checkSegTagSpace(n, 2); err != nil {
		return 0, err
	}
	if err := checkShardOffsets(n, len(v), offs); err != nil {
		return 0, err
	}
	flag := 0.0
	if contributes {
		flag = 1
	}

	// Sends: chunk + flag, ownership of the pooled buffer transfers to the
	// transport (SendOwned), so no reuse hazard with coalesced writers.
	for d := 1; d < n; d++ {
		to := (rank + d) % n
		cl := offs[to+1] - offs[to]
		buf := transport.GetPayload(cl + 1)
		if contributes {
			copy(buf, v[offs[to]:offs[to+1]])
		} else {
			tensor.Vector(buf[:cl]).Zero()
		}
		buf[cl] = flag
		if err := transport.SendOwned(m, to, transport.Message{
			Type:    transport.MsgChunk,
			Iter:    iter,
			Chunk:   skewScatterTag(to),
			Payload: buf,
		}); err != nil {
			return 0, fmt.Errorf("partial reduce-scatter send: %w", err)
		}
	}

	own := v[offs[rank]:offs[rank+1]]
	flagSum := flag
	for d := 1; d < n; d++ {
		from := mod(rank-d, n)
		srcs[from] = nil
		msg, err := m.Recv(from)
		if err != nil {
			releaseSrcs(srcs, rank, n, d)
			return 0, fmt.Errorf("partial reduce-scatter recv: %w", err)
		}
		if cerr := checkMsg("partial-reduce-scatter", msg, transport.MsgChunk, iter, skewScatterTag(rank)); cerr != nil {
			transport.PutPayload(msg.Payload)
			releaseSrcs(srcs, rank, n, d)
			return 0, cerr
		}
		if len(msg.Payload) != len(own)+1 {
			transport.PutPayload(msg.Payload)
			releaseSrcs(srcs, rank, n, d)
			return 0, fmt.Errorf("%w: partial reduce-scatter chunk %d elems, want %d", ErrProtocol, len(msg.Payload), len(own)+1)
		}
		// Flag sums are exact in fp64 for any rank count (small integers),
		// so every owner decodes the identical total in any fold order.
		flagSum += msg.Payload[len(own)]
		srcs[from] = msg.Payload
	}
	if len(own) > 0 {
		var zeros []float64
		if contributes {
			srcs[rank] = own
		} else {
			// A null contributor folds an explicit zero span so the
			// accumulation order stays exactly the replicated ring's.
			zeros = transport.GetPayload(len(own))
			tensor.Vector(zeros).Zero()
			srcs[rank] = zeros
		}
		// foldTotal is len(v)+1: the replicated partial collective rings over
		// the flag-extended vector, and matching its uniform chunk boundaries
		// keeps every data element's fold start identical.
		foldOwnSpan(own, offs[rank], n, len(v)+1, srcs)
		srcs[rank] = nil
		if zeros != nil {
			transport.PutPayload(zeros)
		}
	}
	releaseSrcs(srcs, rank, n, n)
	count := int(math.Round(flagSum))
	if count < 0 {
		count = 0
	} else if count > n {
		count = n
	}
	return count, nil
}
