package collective

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// runSPMD runs fn concurrently on every endpoint of a fresh local network
// and fails the test on any returned error.
func runSPMD(t *testing.T, n int, fn func(m transport.Mesh) error) {
	t.Helper()
	net, err := transport.NewLocalNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, m := range net.Endpoints() {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = fn(m)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

func TestRingAllReduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8} {
		for _, dim := range []int{1, 3, n, n + 1, 4 * n, 97} {
			n, dim := n, dim
			vecs := make([]tensor.Vector, n)
			want := tensor.New(dim)
			for r := range vecs {
				vecs[r] = tensor.New(dim)
				for j := range vecs[r] {
					vecs[r][j] = float64(r*dim + j)
					want[j] += vecs[r][j]
				}
			}
			runSPMD(t, n, func(m transport.Mesh) error {
				return RingAllReduce(m, 7, vecs[m.Rank()], OpSum)
			})
			for r := range vecs {
				if !vecs[r].Equal(want, 1e-9) {
					t.Fatalf("n=%d dim=%d rank %d: got %v, want %v", n, dim, r, vecs[r], want)
				}
			}
		}
	}
}

func TestRingAllReduceAverage(t *testing.T) {
	const n, dim = 4, 10
	vecs := make([]tensor.Vector, n)
	for r := range vecs {
		vecs[r] = tensor.New(dim)
		vecs[r].Fill(float64(r))
	}
	runSPMD(t, n, func(m transport.Mesh) error {
		return RingAllReduce(m, 1, vecs[m.Rank()], OpAverage)
	})
	want := tensor.New(dim)
	want.Fill(1.5) // (0+1+2+3)/4
	for r := range vecs {
		if !vecs[r].Equal(want, 1e-12) {
			t.Fatalf("rank %d average = %v", r, vecs[r])
		}
	}
}

func TestRingAllReduceSingleRank(t *testing.T) {
	runSPMD(t, 1, func(m transport.Mesh) error {
		v := tensor.FromSlice([]float64{1, 2, 3})
		if err := RingAllReduce(m, 0, v, OpAverage); err != nil {
			return err
		}
		if !v.Equal(tensor.FromSlice([]float64{1, 2, 3}), 0) {
			t.Error("single-rank allreduce changed data")
		}
		return nil
	})
}

func TestRingAllReduceSmallVector(t *testing.T) {
	// dim < n forces empty chunks; the schedule must still terminate.
	const n, dim = 6, 2
	vecs := make([]tensor.Vector, n)
	var want float64
	for r := range vecs {
		vecs[r] = tensor.FromSlice([]float64{float64(r), 1})
		want += float64(r)
	}
	runSPMD(t, n, func(m transport.Mesh) error {
		return RingAllReduce(m, 3, vecs[m.Rank()], OpSum)
	})
	for r := range vecs {
		if vecs[r][0] != want || vecs[r][1] != float64(n) {
			t.Fatalf("rank %d = %v, want [%v %v]", r, vecs[r], want, float64(n))
		}
	}
}

func TestPartialRingAllReduce(t *testing.T) {
	const n, dim = 5, 12
	contributes := []bool{true, false, true, true, false}
	vecs := make([]tensor.Vector, n)
	want := tensor.New(dim)
	for r := range vecs {
		vecs[r] = tensor.New(dim)
		for j := range vecs[r] {
			vecs[r][j] = float64(r + j)
		}
		if contributes[r] {
			_ = want.Add(vecs[r])
		}
	}
	results := make([]PartialResult, n)
	runSPMD(t, n, func(m transport.Mesh) error {
		res, err := PartialRingAllReduce(m, 9, vecs[m.Rank()], contributes[m.Rank()])
		results[m.Rank()] = res
		return err
	})
	for r, res := range results {
		if res.Contributors != 3 {
			t.Errorf("rank %d contributors = %d, want 3", r, res.Contributors)
		}
		if !res.Sum.Equal(want, 1e-9) {
			t.Errorf("rank %d sum = %v, want %v", r, res.Sum, want)
		}
		// Inputs must be untouched.
		if vecs[r][0] != float64(r) {
			t.Errorf("rank %d input mutated", r)
		}
	}
}

func TestPartialRingAllReduceNobodyContributes(t *testing.T) {
	const n = 3
	results := make([]PartialResult, n)
	runSPMD(t, n, func(m transport.Mesh) error {
		res, err := PartialRingAllReduce(m, 2, tensor.FromSlice([]float64{9, 9}), false)
		results[m.Rank()] = res
		return err
	})
	for r, res := range results {
		if res.Contributors != 0 {
			t.Errorf("rank %d contributors = %d, want 0", r, res.Contributors)
		}
		if !res.Sum.Equal(tensor.New(2), 0) {
			t.Errorf("rank %d sum = %v, want zeros", r, res.Sum)
		}
	}
}

func TestPartialRingAllReduceAllContribute(t *testing.T) {
	const n = 4
	results := make([]PartialResult, n)
	runSPMD(t, n, func(m transport.Mesh) error {
		v := tensor.FromSlice([]float64{1})
		res, err := PartialRingAllReduce(m, 5, v, true)
		results[m.Rank()] = res
		return err
	})
	for r, res := range results {
		if res.Contributors != n {
			t.Errorf("rank %d contributors = %d, want %d", r, res.Contributors, n)
		}
		if res.Sum[0] != float64(n) {
			t.Errorf("rank %d sum = %v, want %d", r, res.Sum[0], n)
		}
	}
}

func TestBroadcast(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 9} {
		for root := 0; root < n; root++ {
			n, root := n, root
			const dim = 5
			vecs := make([]tensor.Vector, n)
			for r := range vecs {
				vecs[r] = tensor.New(dim)
				if r == root {
					for j := range vecs[r] {
						vecs[r][j] = float64(100*root + j)
					}
				}
			}
			runSPMD(t, n, func(m transport.Mesh) error {
				return Broadcast(m, 11, vecs[m.Rank()], root)
			})
			for r := range vecs {
				if !vecs[r].Equal(vecs[root], 0) {
					t.Fatalf("n=%d root=%d rank %d = %v, want %v", n, root, r, vecs[r], vecs[root])
				}
			}
		}
	}
}

func TestBroadcastBadRoot(t *testing.T) {
	runSPMD(t, 2, func(m transport.Mesh) error {
		err := Broadcast(m, 0, tensor.New(1), 5)
		if err == nil {
			t.Error("broadcast with bad root should error")
		}
		return nil
	})
}

func TestSequentialCollectivesOnOneMesh(t *testing.T) {
	// Run several collectives back to back on the same mesh endpoints to
	// check no residual messages leak between operations.
	const n, dim = 4, 8
	net, err := transport.NewLocalNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, m := range net.Endpoints() {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := int64(0); iter < 10; iter++ {
				v := tensor.New(dim)
				v.Fill(float64(m.Rank()))
				if err := RingAllReduce(m, iter, v, OpAverage); err != nil {
					errs[i] = err
					return
				}
				want := float64(n-1) / 2
				if v[0] != want {
					t.Errorf("iter %d rank %d: got %v, want %v", iter, i, v[0], want)
				}
				b := tensor.New(dim)
				if m.Rank() == 0 {
					b.Fill(float64(iter))
				}
				if err := Broadcast(m, iter, b, 0); err != nil {
					errs[i] = err
					return
				}
				if b[0] != float64(iter) {
					t.Errorf("iter %d rank %d: broadcast got %v", iter, i, b[0])
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

func TestRingAllReduceOverTCP(t *testing.T) {
	const n, dim = 3, 20
	meshes, err := transport.NewTCPCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	vecs := make([]tensor.Vector, n)
	for r := range vecs {
		vecs[r] = tensor.New(dim)
		vecs[r].Fill(float64(r + 1))
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, m := range meshes {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = RingAllReduce(m, 1, vecs[i], OpAverage)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	for r := range vecs {
		if vecs[r][0] != 2 { // (1+2+3)/3
			t.Errorf("rank %d = %v, want 2", r, vecs[r][0])
		}
	}
}

// Property: AllReduce(sum) equals the element-wise sum of inputs for random
// shapes, sizes and contents.
func TestQuickRingAllReduce(t *testing.T) {
	f := func(nRaw, dimRaw uint8, seed int64) bool {
		n := int(nRaw)%6 + 1
		dim := int(dimRaw)%50 + 1
		r := rand.New(rand.NewSource(seed))
		vecs := make([]tensor.Vector, n)
		want := tensor.New(dim)
		for i := range vecs {
			vecs[i] = tensor.New(dim)
			for j := range vecs[i] {
				vecs[i][j] = r.NormFloat64()
				want[j] += vecs[i][j]
			}
		}
		net, err := transport.NewLocalNetwork(n)
		if err != nil {
			return false
		}
		defer func() { _ = net.Close() }()
		var wg sync.WaitGroup
		ok := true
		var mu sync.Mutex
		for i, m := range net.Endpoints() {
			i, m := i, m
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := RingAllReduce(m, 0, vecs[i], OpSum); err != nil {
					mu.Lock()
					ok = false
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if !ok {
			return false
		}
		for i := range vecs {
			if !vecs[i].Equal(want, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func highestBitRef(x int) int {
	b := 0
	for p := 1; p <= x; p <<= 1 {
		b = p
	}
	return b
}

func TestHighestBit(t *testing.T) {
	for x := -2; x < 1000; x++ {
		want := 0
		if x > 0 {
			want = highestBitRef(x)
		}
		if got := highestBit(x); got != want {
			t.Fatalf("highestBit(%d) = %d, want %d", x, got, want)
		}
	}
}
