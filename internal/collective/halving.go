package collective

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// Recursive halving-doubling AllReduce (Rabenseifner's algorithm).
//
// The ring schedule is bandwidth-optimal but pays 2(N−1) message latencies;
// halving-doubling reduces the same 2·S·(N−1)/N bytes in 2·log2(N) steps:
// a reduce-scatter by recursive halving (each step exchanges half of the
// remaining window with a partner at distance p/2, p/4, …, 1 and reduces
// the received half) followed by an allgather by recursive doubling that
// retraces the same partner sequence in reverse. On latency-dominated
// messages — small tensors, many ranks — it is the fastest dense schedule.
//
// Non-power-of-two rank counts use the standard fold-in: with p the largest
// power of two ≤ N and r = N − p, the first 2r ranks pair up; each odd rank
// 2i+1 folds its vector into even rank 2i before the core (pre-phase) and
// receives the finished result from it afterwards (post-phase), so the core
// runs on exactly p ranks.
//
// Determinism: every element of the result is accumulated along a unique
// binary-tree path ending at one owner rank, and the allgather distributes
// the owner's bytes verbatim, so all ranks finish with bit-identical
// vectors (TestAlgorithmsBitIdenticalAcrossRanks locks this in). The
// accumulation order differs from the ring's, so cross-algorithm results
// agree only to floating-point roundoff (the 1e-12 property-test bound).
//
// Averaging is fused like the ring's: each active rank scales only the
// window it owns right after reduce-scatter, so the allgather circulates
// pre-averaged values.

// Halving-doubling tag layout in the int32 Chunk field: the pre-fold uses
// hdTagFold, core steps 0..2·log2(p)−1 use their step index, and the
// post-fold uses hdTagUnfold. The step count is ≤ 62 (p ≤ 2^31), so the
// tags never collide.
const (
	hdTagFold   int32 = 1 << 30
	hdTagUnfold int32 = 1<<30 + 1
)

// HalvingDoublingAllReduce reduces v in place across all ranks of m using
// recursive halving-doubling. All ranks must pass vectors of equal length
// and the same iter; results are identical on every rank.
func HalvingDoublingAllReduce(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp) error {
	return halvingDoublingAllReduce(m, iter, v, op, tensor.F64, nil)
}

// halvingDoublingAllReduce is HalvingDoublingAllReduce with a doubling-phase
// wire dtype and an error-feedback residual. Compression applies to the
// allgather (doubling) traffic only: halving exchanges carry partial sums
// whose quantization would compound across hops, and the fold-in/fold-out
// phases ship fp64 because the fold-out re-sends the FULL finished vector —
// under a block-scaled dtype a full-vector re-encode would use different
// block boundaries than the per-window gather did, breaking bit-identity
// between fold pairs.
func halvingDoublingAllReduce(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp, wire tensor.Dtype, residual tensor.Vector) error {
	n := m.Size()
	if n == 1 {
		return nil
	}
	rank := m.Rank()
	p := highestBit(n)
	r := n - p

	// Pre-phase fold-in: odd ranks below 2r contribute their vector to the
	// even partner and sit out the core.
	newrank := -1
	switch {
	case rank < 2*r && rank%2 == 1:
		if err := m.Send(rank-1, transport.Message{
			Type: transport.MsgReduce, Iter: iter, Chunk: hdTagFold, Payload: v,
		}); err != nil {
			return fmt.Errorf("halving-doubling fold send: %w", err)
		}
	case rank < 2*r:
		msg, err := m.Recv(rank + 1)
		if err != nil {
			return fmt.Errorf("halving-doubling fold recv: %w", err)
		}
		if err := checkMsg("halving-doubling fold", msg, transport.MsgReduce, iter, hdTagFold); err != nil {
			transport.PutPayload(msg.Payload)
			return err
		}
		err = v.Add(msg.Payload)
		transport.PutPayload(msg.Payload)
		if err != nil {
			return fmt.Errorf("halving-doubling fold: %w", err)
		}
		newrank = rank / 2
	default:
		newrank = rank - r
	}

	if newrank >= 0 {
		if err := halvingDoublingCore(m, iter, v, op, n, rank, newrank, p, r, wire, residual); err != nil {
			return err
		}
	}

	// Post-phase fold-out: evens below 2r forward the finished (and, under
	// OpAverage, already scaled) vector to the odd partner that folded in.
	if rank < 2*r {
		if rank%2 == 0 {
			if err := m.Send(rank+1, transport.Message{
				Type: transport.MsgReduce, Iter: iter, Chunk: hdTagUnfold, Payload: v,
			}); err != nil {
				return fmt.Errorf("halving-doubling unfold send: %w", err)
			}
			return nil
		}
		msg, err := m.Recv(rank - 1)
		if err != nil {
			return fmt.Errorf("halving-doubling unfold recv: %w", err)
		}
		if err := checkMsg("halving-doubling unfold", msg, transport.MsgReduce, iter, hdTagUnfold); err != nil {
			transport.PutPayload(msg.Payload)
			return err
		}
		err = v.CopyFrom(msg.Payload)
		transport.PutPayload(msg.Payload)
		if err != nil {
			return fmt.Errorf("halving-doubling unfold: %w", err)
		}
	}
	return nil
}

// hdGlobal maps a core rank (0..p-1) back to its parent-mesh rank: the
// first r core ranks are the surviving evens of the fold pairs.
func hdGlobal(newrank, r int) int {
	if newrank < r {
		return 2 * newrank
	}
	return newrank + r
}

// forEachSubWindow enumerates the finest ownership sub-intervals of
// [lo,hi): the intervals `levels` further recursive midpoint splits
// produce, in ascending order. The midpoint rule is the same one the
// halving phase uses, so sender and receiver always agree on the
// boundaries. Block-scaled wire dtypes (I8) ship each sub-interval as its
// own message: its bytes are then identical at every hop of the doubling
// phase, no matter how large the enclosing window has grown.
func forEachSubWindow(lo, hi, levels int, fn func(a, b int) error) error {
	if levels == 0 {
		return fn(lo, hi)
	}
	mid := lo + (hi-lo)/2
	if err := forEachSubWindow(lo, mid, levels-1, fn); err != nil {
		return err
	}
	return forEachSubWindow(mid, hi, levels-1, fn)
}

// halvingDoublingCore runs the power-of-two reduce-scatter + allgather on
// the p active ranks. v ends with the complete reduction on every active
// rank; under OpAverage it is already scaled by 1/n.
func halvingDoublingCore(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp, n, rank, newrank, p, r int, wire tensor.Dtype, residual tensor.Vector) error {
	// Window bounds per halving step, replayed in reverse by the doubling
	// phase. log2(p) ≤ 31 so a fixed-size stack avoids allocation.
	var (
		parentLo, parentHi [32]int
		dists              [32]int
		depth              int
	)
	lo, hi := 0, len(v)
	step := int32(0)

	// Reduce-scatter by recursive halving: exchange the half of the current
	// window the partner will own, reduce the received half into the kept
	// one. Both partners derive the same midpoint from the shared window,
	// so uneven dimensions split consistently.
	for dist := p / 2; dist >= 1; dist /= 2 {
		partner := hdGlobal(newrank^dist, r)
		mid := lo + (hi-lo)/2
		keepLo, keepHi, sendLo, sendHi := lo, mid, mid, hi
		if newrank&dist != 0 {
			keepLo, keepHi, sendLo, sendHi = mid, hi, lo, mid
		}
		if err := m.Send(partner, transport.Message{
			Type: transport.MsgReduce, Iter: iter, Chunk: step, Payload: v[sendLo:sendHi],
		}); err != nil {
			return fmt.Errorf("halving step %d send: %w", step, err)
		}
		msg, err := m.Recv(partner)
		if err != nil {
			return fmt.Errorf("halving step %d recv: %w", step, err)
		}
		if err := checkMsg("halving-doubling", msg, transport.MsgReduce, iter, step); err != nil {
			transport.PutPayload(msg.Payload)
			return err
		}
		err = v[keepLo:keepHi].Add(msg.Payload)
		transport.PutPayload(msg.Payload)
		if err != nil {
			return fmt.Errorf("halving step %d reduce: %w", step, err)
		}
		parentLo[depth], parentHi[depth], dists[depth] = lo, hi, dist
		depth++
		lo, hi = keepLo, keepHi
		step++
	}

	// The rank's owned window now holds its slice of the complete sum;
	// scale it here so the allgather circulates pre-averaged values and all
	// ranks receive identical bits. Under compression this is also the one
	// point where exact fp64 values exist, so the owned window quantizes —
	// and captures its error-feedback residual — here.
	if op == OpAverage {
		v[lo:hi].Scale(1 / float64(n))
	}
	if wire != tensor.F64 {
		if residual != nil {
			tensor.RoundTripEF(wire, v[lo:hi], residual[lo:hi])
		} else {
			tensor.RoundTrip(wire, v[lo:hi])
		}
	}

	// Allgather by recursive doubling: retrace the halving in reverse,
	// exchanging the current window for the partner's sibling half until
	// the window grows back to the whole vector. Per-element wire dtypes
	// ship each growing window as one compressed message; block-scaled
	// dtypes split it into the finest ownership sub-windows (2^level
	// messages at doubling level `level`, all under the step's tag, ordered
	// by the FIFO link) so every element's wire bytes stay constant across
	// hops.
	level := 0
	for depth > 0 {
		depth--
		plo, phi := parentLo[depth], parentHi[depth]
		partner := hdGlobal(newrank^dists[depth], r)
		send := func(a, b int) error {
			return m.Send(partner, transport.Message{
				Type: transport.MsgReduce, Iter: iter, Chunk: step, Dtype: wire, Payload: v[a:b],
			})
		}
		var err error
		if wire.PerElement() {
			err = send(lo, hi)
		} else {
			err = forEachSubWindow(lo, hi, level, send)
		}
		if err != nil {
			return fmt.Errorf("doubling step %d send: %w", step, err)
		}
		// The partner holds the sibling half within the parent window.
		theirLo, theirHi := plo, lo
		if lo == plo {
			theirLo, theirHi = hi, phi
		}
		recv := func(a, b int) error {
			msg, err := m.Recv(partner)
			if err != nil {
				return fmt.Errorf("doubling step %d recv: %w", step, err)
			}
			if err := checkMsg("halving-doubling", msg, transport.MsgReduce, iter, step); err != nil {
				transport.PutPayload(msg.Payload)
				return err
			}
			err = v[a:b].CopyFrom(msg.Payload)
			transport.PutPayload(msg.Payload)
			if err != nil {
				return fmt.Errorf("doubling step %d copy: %w", step, err)
			}
			return nil
		}
		if wire.PerElement() {
			err = recv(theirLo, theirHi)
		} else {
			err = forEachSubWindow(theirLo, theirHi, level, recv)
		}
		if err != nil {
			return err
		}
		lo, hi = plo, phi
		step++
		level++
	}
	return nil
}
