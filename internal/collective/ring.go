package collective

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// Pipelined, segmented ring AllReduce.
//
// The seed implementation ran each of the 2(N−1) ring steps as a strictly
// serial Send-then-Recv: every step paid the full link latency twice and the
// per-chunk reduction sat on the critical path of the whole ring wavefront.
// This implementation overlaps communication two ways:
//
//  1. Send/Recv overlap. A sender goroutine pushes the step's outgoing
//     segments while the calling goroutine receives and reduces the
//     incoming ones, so the two directions of the full-duplex link are busy
//     simultaneously.
//
//  2. Segmentation. Each 1/N chunk is split into K segments that flow
//     through the ring back to back. While a rank reduces segment k, its
//     neighbor's segment k+1 is already in flight, so the reduction compute
//     hides behind transfer instead of serializing with it.
//
// A step-granular gate keeps the sender honest: the data sent at step s is
// the data reduced at step s−1, so the sender may not start step s until the
// receiver has finished step s−1 and issued the step's gate token. Within a
// step the K segment sends proceed without further synchronization.
//
// On top of the pipeline, the data plane is built around rotating buffers:
// except for the two steps that must source from v (the first scatter send
// and the send of the rank's own completed chunk), every hop reuses the
// buffer that just arrived. Scatter steps fold v INTO the received payload
// (payload += v-segment, bitwise equal to v + payload) and forward that same
// buffer with an ownership-transfer send; gather steps copy the payload into
// v and forward the buffer likewise. One buffer per segment thus travels the
// whole ring instead of being copied at every hop, cutting the per-rank
// memory traffic from (3N−3)·C to (N+1)·C for chunk size C.
//
// Averaging is fused into the schedule: each rank scales only its own
// completed chunk right after scatter-reduce (while it is cache-hot), so the
// gathered chunks circulate pre-averaged and the final full-vector Scale
// pass disappears.
//
// Sender goroutines and their channels are kept on a free list and reused
// across calls, so a steady-state collective performs zero allocations:
// payload buffers come from the transport pool, rotate through the ring, and
// go back to it; the pipeline machinery is recycled.
//
// The element-wise accumulation order is identical to the serial ring
// (segmentation only changes message granularity, pairwise FP addition is
// commutative bitwise, and sum·(1/n) is the same two floats whether scaled
// at the owner or at the end), so results are bit-identical to the seed
// implementation — TestRingMatchesReference locks this in.

// maxSegments bounds the pipeline depth per chunk. Beyond ~4 segments the
// per-message overhead outgrows the extra overlap.
const maxSegments = 4

// Small-vector inline fast path.
//
// The pipelined ring below is bandwidth-optimal, but its 2(N−1) steps are
// strictly sequential: the reduction wavefront of a chunk must travel the
// whole ring before the chunk is complete, so each step costs one full link
// latency (on the TCP mesh: a writev + read syscall round per hop) while
// moving only a handful of bytes. A CPU profile of the 8-rank TCP ring at a
// 4 KiB tensor shows ~39% of samples inside syscalls — the schedule is pure
// latency, and no amount of framing work amortizes 14 serialized rendezvous
// rounds.
//
// For tensors small enough that bandwidth is irrelevant, the latency-optimal
// schedule is an allgather of the original vectors followed by a local fold
// of all N contributions in exact ring order. Power-of-two rank counts use a
// recursive-doubling (hypercube) allgather: log₂N pairwise exchange rounds,
// round k swapping the 2^k vectors each side has accumulated, so an 8-rank
// collective costs 3 sends + 3 receives per rank instead of the ring's 14
// sequential hops — on a loopback TCP mesh that is the difference between 48
// and 224 syscalls per collective. Other rank counts fall back to a direct
// all-to-all: every rank sends its full vector to every peer in one
// concurrent round (N−1 messages per rank, still one round of latency).
//
// Bit-identity is preserved: chunk c is folded starting from rank c's data
// in ring order c, c+1, …, c−1, which is exactly the serial ring's
// association (its final seg+=payload step has the operands swapped, and
// pairwise FP addition is commutative bitwise); OpAverage multiplies the
// completed sum by 1/n just as the owner-side Scale does. The path is taken
// on a deterministic SPMD predicate (rank count, vector length, wire dtype,
// segment pin — all agreed across ranks), so no rank can disagree about the
// schedule. TestRingMatchesReference covers both paths: its small dims take
// the inline route, dim 4099 and every pinned segment depth keep exercising
// the pipelined ring.

// ringInlineMaxBytes is the largest vector the inline path accepts: beyond
// 8 KiB the N·(N−1) full-vector traffic starts to outweigh the saved hops
// and the bandwidth-optimal ring wins again.
const ringInlineMaxBytes = 8 << 10

// ringInlineMaxRanks caps the fan-out (the all-to-all is O(N²) messages)
// and sizes the path's stack arrays.
const ringInlineMaxRanks = 32

// ringInlineEligible reports whether the (ranks, elems) point belongs to the
// inline schedule. Every input is SPMD-agreed, so all ranks branch the same
// way.
func ringInlineEligible(n, elems int) bool {
	return n <= ringInlineMaxRanks && elems*8 <= ringInlineMaxBytes
}

// ringAllReduceInline dispatches between the two inline allgather schedules
// and runs the shared ring-order fold.
func ringAllReduceInline(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp) error {
	n := m.Size()
	var srcs [ringInlineMaxRanks][]float64
	var err error
	var release func()
	if n&(n-1) == 0 {
		release, err = ringInlineHypercube(m, iter, v, srcs[:n])
	} else {
		release, err = ringInlinePairwise(m, iter, v, srcs[:n])
	}
	if err == nil {
		ringInlineFold(v, srcs[:n], op)
	}
	release()
	return err
}

// ringInlineHypercube allgathers the original vectors by recursive doubling:
// round k exchanges the 2^k vectors accumulated so far with the partner
// rank^2^k, which owns the adjacent aligned block of the rank space. The
// gather arena is laid out rank-major, so each round ships one contiguous
// slice and deposits the partner's block into its contiguous home. Requires
// a power-of-two rank count. srcs[r] is filled with rank r's original
// vector; the returned release function frees the arena (and must run after
// the fold).
func ringInlineHypercube(m transport.Mesh, iter int64, v tensor.Vector, srcs [][]float64) (func(), error) {
	n := m.Size()
	rank := m.Rank()
	dim := len(v)
	arena := transport.GetPayload(n * dim)
	release := func() { transport.PutPayload(arena) }
	copy(arena[rank*dim:(rank+1)*dim], v)
	tag := int32(0)
	for g := 1; g < n; g <<= 1 {
		partner := rank ^ g
		mb := rank &^ (g - 1)    // base of the block this rank has gathered
		pb := partner &^ (g - 1) // base of the partner's block
		if err := m.Send(partner, transport.Message{
			Type:    transport.MsgChunk,
			Iter:    iter,
			Chunk:   tag, // tag = exchange round
			Payload: arena[mb*dim : (mb+g)*dim],
		}); err != nil {
			return release, fmt.Errorf("ring inline send: %w", err)
		}
		msg, err := m.Recv(partner)
		if err != nil {
			return release, fmt.Errorf("ring inline recv: %w", err)
		}
		if err := checkMsg("ring", msg, transport.MsgChunk, iter, tag); err != nil {
			transport.PutPayload(msg.Payload)
			return release, err
		}
		if len(msg.Payload) != g*dim {
			transport.PutPayload(msg.Payload)
			return release, fmt.Errorf("%w: ring inline payload %d elems, want %d", ErrProtocol, len(msg.Payload), g*dim)
		}
		copy(arena[pb*dim:(pb+g)*dim], msg.Payload)
		transport.PutPayload(msg.Payload)
		tag++
	}
	for r := 0; r < n; r++ {
		srcs[r] = arena[r*dim : (r+1)*dim]
	}
	return release, nil
}

// ringInlinePairwise allgathers by direct exchange: every rank sends its
// full vector to every peer, all sends before any receive. The local mesh
// enqueues without blocking and the TCP mesh's flush/drain-assist protocol
// makes a send round that overruns the socket buffer drain inbound frames
// instead of deadlocking, so send-all-then-receive is safe on every mesh.
// srcs[r] is rank r's vector — peers' arrive as pooled payloads, this rank's
// slot aliases v itself (safe: the fold reads every contribution of element
// i before writing v[i]).
func ringInlinePairwise(m transport.Mesh, iter int64, v tensor.Vector, srcs [][]float64) (func(), error) {
	n := m.Size()
	rank := m.Rank()
	srcs[rank] = v
	release := func() {
		for r := 0; r < n; r++ {
			if r != rank {
				transport.PutPayload(srcs[r])
			}
		}
	}
	for d := 1; d < n; d++ {
		if err := m.Send((rank+d)%n, transport.Message{
			Type:    transport.MsgChunk,
			Iter:    iter,
			Chunk:   int32(rank), // tag = sender rank
			Payload: v,
		}); err != nil {
			return release, fmt.Errorf("ring inline send: %w", err)
		}
	}
	for d := 1; d < n; d++ {
		from := mod(rank-d, n)
		msg, err := m.Recv(from)
		if err != nil {
			return release, fmt.Errorf("ring inline recv: %w", err)
		}
		if err := checkMsg("ring", msg, transport.MsgChunk, iter, int32(from)); err != nil {
			transport.PutPayload(msg.Payload)
			return release, err
		}
		if len(msg.Payload) != len(v) {
			transport.PutPayload(msg.Payload)
			return release, fmt.Errorf("%w: ring inline payload %d elems, want %d", ErrProtocol, len(msg.Payload), len(v))
		}
		srcs[from] = msg.Payload
	}
	return release, nil
}

// ringInlineFold reduces all n gathered vectors into v in the serial ring's
// exact accumulation order: chunk c starts from rank c's data and folds the
// remaining contributions in ring order c+1, c+2, …, then OpAverage scales
// the completed sums by 1/n just as the ring's owner-side Scale does.
func ringInlineFold(v tensor.Vector, srcs [][]float64, op ReduceOp) {
	n := len(srcs)
	var ord [ringInlineMaxRanks]int
	for c := 0; c < n; c++ {
		cs, ce, _ := tensor.ChunkBounds(len(v), n, c)
		for j := 0; j < n; j++ {
			ord[j] = (c + j) % n
		}
		for i := cs; i < ce; i++ {
			acc := srcs[ord[0]][i]
			for j := 1; j < n; j++ {
				acc += srcs[ord[j]][i]
			}
			v[i] = acc
		}
	}
	if op == OpAverage {
		v.Scale(1 / float64(n))
	}
}

// minSegmentElems is the smallest segment worth pipelining; chunks below
// 2*minSegmentElems travel as a single message.
const minSegmentElems = 8192

// defaultSegments picks the pipeline depth for a chunk of chunkElems
// elements.
func defaultSegments(chunkElems int) int {
	s := chunkElems / minSegmentElems
	if s < 1 {
		return 1
	}
	if s > maxSegments {
		return maxSegments
	}
	return s
}

// segTag packs (chunk, segment) into the message Chunk field. ringAllReduce
// validates n·segments against the int32 tag space up front (ErrTagOverflow),
// so the packing here cannot wrap.
func segTag(chunkIdx, segments, k int) int32 {
	return int32(chunkIdx*segments + k)
}

// checkSegTagSpace rejects (rank count, pipeline depth) combinations whose
// packed tags would overflow the int32 Chunk field: the largest tag is
// n·segments − 1, so n·segments must stay within MaxInt32. Without this
// guard distinct segments would silently alias onto one tag and defeat the
// protocol checks.
func checkSegTagSpace(n, segments int) error {
	if n < 1 || segments < 1 || int64(n)*int64(segments) > math.MaxInt32 {
		return fmt.Errorf("%w: %d ranks x %d segments exceeds int32 tag space", ErrTagOverflow, n, segments)
	}
	return nil
}

// sendChunkIndex returns the chunk a rank sends at global step s: scatter
// steps 0..n-2 walk backwards from the rank's own chunk, gather steps
// n-1..2n-3 circulate the completed chunks.
func sendChunkIndex(rank, n, s int) int {
	if s < n-1 {
		return mod(rank-s, n)
	}
	return mod(rank+1-(s-(n-1)), n)
}

// ringJob describes one collective's send schedule to a ringSender.
type ringJob struct {
	m     transport.Mesh
	iter  int64
	v     tensor.Vector
	n     int
	rank  int
	segs  int
	steps int
	// wire is the allgather phase's wire dtype: sends at steps ≥ n−1 carry
	// it. Scatter-reduce traffic always ships fp64 — compressing partial
	// sums would compound quantization error across hops AND break the
	// bit-identity argument, which needs every gathered element to be the
	// owner's quantized value forwarded verbatim.
	wire tensor.Dtype
}

// ringSender is a persistent sender goroutine plus its gate/result
// channels. One collective checks a sender out for its whole duration; the
// free list recycles them so repeated collectives allocate nothing.
type ringSender struct {
	jobs chan ringJob
	gate chan struct{}
	done chan error
	// fwd[st*segs+k] is the rotating buffer the receiver deposited for the
	// segment-k send of step st (nil when the step sources from v). The
	// deposit happens before the step's gate token is pushed, so the
	// channel receive orders it; run() consumes every slot of every step —
	// releasing instead of sending after a failure — so the array is all
	// nil again when the sender parks.
	fwd [][]float64
	// oneShot senders (rings wider than gateCap/2+1 ranks) are not
	// returned to the free list; their goroutine exits after the job.
	oneShot bool
}

// gateCap is the token capacity of pooled senders: 2(N−1) tokens for rings
// of up to 33 ranks. Wider rings get a one-shot sender sized to fit.
const gateCap = 64

// maxIdleSenders bounds the free list; beyond it senders are shut down.
const maxIdleSenders = 64

var (
	idleSendersMu sync.Mutex
	idleSenders   []*ringSender
)

func newRingSender(tokens int, oneShot bool) *ringSender {
	s := &ringSender{
		jobs:    make(chan ringJob, 1),
		gate:    make(chan struct{}, tokens),
		done:    make(chan error, 1),
		oneShot: oneShot,
	}
	go s.loop()
	return s
}

func getRingSender(steps int) *ringSender {
	if steps > gateCap {
		return newRingSender(steps, true)
	}
	idleSendersMu.Lock()
	if n := len(idleSenders); n > 0 {
		s := idleSenders[n-1]
		idleSenders[n-1] = nil
		idleSenders = idleSenders[:n-1]
		idleSendersMu.Unlock()
		return s
	}
	idleSendersMu.Unlock()
	return newRingSender(gateCap, false)
}

// putRingSender parks a drained sender on the free list (its gate and done
// channels are empty by the token-accounting protocol below).
func putRingSender(s *ringSender) {
	if !s.oneShot {
		idleSendersMu.Lock()
		if len(idleSenders) < maxIdleSenders {
			idleSenders = append(idleSenders, s)
			idleSendersMu.Unlock()
			return
		}
		idleSendersMu.Unlock()
	}
	close(s.jobs) // terminates the goroutine
}

func (s *ringSender) loop() {
	for job := range s.jobs {
		s.done <- s.run(job)
		if s.oneShot {
			return
		}
	}
}

// run executes one collective's send side. It consumes exactly job.steps
// gate tokens and every fwd slot no matter what: after a send failure it
// keeps draining tokens and releases deposited buffers without sending, so
// the sender, its channels, and its fwd array are clean for reuse. The
// receiver guarantees all job.steps tokens are eventually issued.
func (s *ringSender) run(job ringJob) error {
	left := (job.rank + 1) % job.n
	var firstErr error
	for st := 0; st < job.steps; st++ {
		<-s.gate
		idx := sendChunkIndex(job.rank, job.n, st)
		cs, ce, _ := tensor.ChunkBounds(len(job.v), job.n, idx)
		for k := 0; k < job.segs; k++ {
			slot := st*job.segs + k
			buf := s.fwd[slot]
			s.fwd[slot] = nil
			if firstErr != nil {
				transport.PutPayload(buf)
				continue
			}
			msg := transport.Message{
				Type:  transport.MsgChunk,
				Iter:  job.iter,
				Chunk: segTag(idx, job.segs, k),
			}
			if st >= job.n-1 {
				// Gather phase: the segment holds final (pre-quantized)
				// values, so the wire dtype applies. Forwarded buffers
				// already sit on the quantization grid — re-encoding them
				// is exact by idempotence.
				msg.Dtype = job.wire
			}
			var err error
			if buf != nil {
				// Rotating buffer deposited by the receiver: hand it to
				// the next rank without copying.
				msg.Payload = buf
				err = transport.SendOwned(job.m, left, msg)
			} else {
				// Only the own-chunk gather send (step n−1) sources from
				// v: that chunk is complete, gated, and never written
				// again. Send copies, so v stays live for the receiver.
				ss, se, _ := tensor.ChunkBounds(ce-cs, job.segs, k)
				msg.Payload = job.v[cs+ss : cs+se]
				err = job.m.Send(left, msg)
			}
			if err != nil {
				firstErr = fmt.Errorf("ring send step %d: %w", st, err)
			}
		}
	}
	return firstErr
}

// ringAllReduce is the shared engine behind RingAllReduce and
// RingAllReduceSegmented. segments <= 0 selects the depth automatically.
// wire compresses the allgather phase; residual (optional, full vector
// length) accumulates this rank's quantization error over its own chunk —
// the error-feedback hook. Only the owner sees exact pre-quantization
// values, so the residual is naturally distributed across ranks by chunk
// ownership.
func ringAllReduce(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp, segments int, wire tensor.Dtype, residual tensor.Vector) error {
	n := m.Size()
	if n == 1 {
		return nil
	}
	// Small tensors with no pinned pipeline depth and a plain fp64 wire take
	// the latency-optimal inline schedule (see above). Lossy wire dtypes stay
	// on the ring: its owner-side quantize point is what makes compression
	// exact-by-idempotence, and the residual hook lives there too.
	if segments <= 0 && wire == tensor.F64 && ringInlineEligible(n, len(v)) {
		return ringAllReduceInline(m, iter, v, op)
	}
	rank := m.Rank()
	right := (rank - 1 + n) % n
	if segments <= 0 {
		segments = defaultSegments(len(v) / n)
	}
	K := segments
	if err := checkSegTagSpace(n, K); err != nil {
		return err
	}
	steps := 2 * (n - 1)

	s := getRingSender(steps)
	if need := steps * K; cap(s.fwd) < need {
		s.fwd = make([][]float64, need)
	} else {
		s.fwd = s.fwd[:need]
	}
	// Pre-deposit the step-0 sends (this rank's chunk, still its original
	// values) as rotating buffers. The copy must happen here, not in the
	// sender: if a peer fails mid-collective the usual around-the-ring
	// causality that keeps the sender ahead of v mutations breaks down, and
	// a lagging step-0 read of v would race with this rank's first gather
	// write into the same chunk. After this, the sender touches v only at
	// step n−1 (the own chunk, gated and never written afterwards).
	{
		cs, ce, _ := tensor.ChunkBounds(len(v), n, rank)
		for k := 0; k < K; k++ {
			ss, se, _ := tensor.ChunkBounds(ce-cs, K, k)
			buf := transport.GetPayload(se - ss)
			copy(buf, v[cs+ss:cs+se])
			s.fwd[k] = buf
		}
	}
	s.jobs <- ringJob{m: m, iter: iter, v: v, n: n, rank: rank, segs: K, steps: steps, wire: wire}
	pushed := 0
	// fail tears the pipeline down on a receive-side failure: top the gate
	// up to the full token count so the sender drains and parks, and join
	// it so no goroutine references v when the call returns.
	fail := func(err error) error {
		for ; pushed < steps; pushed++ {
			s.gate <- struct{}{}
		}
		<-s.done
		putRingSender(s)
		return err
	}

	// Scatter-reduce: after step st, rank r holds the running sum of chunk
	// (r−st−1 mod n) over st+2 ranks; after n−1 steps it owns the complete
	// sum of chunk (r+1 mod n). Then allgather circulates the completed
	// chunks; receivers overwrite. Both phases share this loop: the gate
	// token releases the matching send step, then the K segments of the
	// expected chunk are received in order. Intermediate hops reduce into
	// (or just forward) the received buffer itself, depositing it for the
	// next step's send instead of copying through v.
	for st := 0; st < steps; st++ {
		s.gate <- struct{}{}
		pushed++
		var recvIdx int
		if st < n-1 {
			recvIdx = mod(rank-st-1, n)
		} else {
			recvIdx = mod(rank-(st-(n-1)), n)
		}
		cs, ce, _ := tensor.ChunkBounds(len(v), n, recvIdx)
		for k := 0; k < K; k++ {
			msg, err := m.Recv(right)
			if err != nil {
				return fail(fmt.Errorf("ring recv: %w", err))
			}
			if err := checkMsg("ring", msg, transport.MsgChunk, iter, segTag(recvIdx, K, k)); err != nil {
				transport.PutPayload(msg.Payload)
				return fail(err)
			}
			ss, se, _ := tensor.ChunkBounds(ce-cs, K, k)
			seg := v[cs+ss : cs+se]
			switch {
			case st < n-2:
				// Intermediate scatter hop: fold v into the rotating
				// buffer (payload + v is bitwise equal to v + payload)
				// and pass the buffer on at the next step.
				err = tensor.Vector(msg.Payload).Add(seg)
				if err == nil {
					s.fwd[(st+1)*K+k] = msg.Payload
					continue
				}
			case st == n-2:
				// Final scatter hop: the rank's own chunk completes in v.
				err = seg.Add(msg.Payload)
			case st < steps-1:
				// Gather hop with a forward: keep the values and pass the
				// buffer on at the next step.
				err = seg.CopyFrom(msg.Payload)
				if err == nil {
					s.fwd[(st+1)*K+k] = msg.Payload
					continue
				}
			default:
				// Last gather hop: nothing left to forward.
				err = seg.CopyFrom(msg.Payload)
			}
			transport.PutPayload(msg.Payload)
			if err != nil {
				return fail(fmt.Errorf("ring reduce: %w", err))
			}
		}
		if st == n-2 {
			ocs, oce, _ := tensor.ChunkBounds(len(v), n, mod(rank+1, n))
			if op == OpAverage {
				// The own chunk just completed and is cache-hot: scale it
				// here so the gather circulates pre-averaged values and the
				// final full-vector Scale pass disappears. sum·(1/n) at the
				// owner is bit-identical to scaling after the gather.
				v[ocs:oce].Scale(1 / float64(n))
			}
			if wire != tensor.F64 {
				// Quantize the own chunk in place, PER SEGMENT — the same
				// spans the sender packs at step n−1 — so the values this
				// rank keeps are exactly the values every other rank
				// decodes (block scales are span-relative for I8). The
				// error feedback residual is captured here, at the only
				// point where exact fp64 values exist.
				for k := 0; k < K; k++ {
					ss, se, _ := tensor.ChunkBounds(oce-ocs, K, k)
					seg := v[ocs+ss : ocs+se]
					if residual != nil {
						tensor.RoundTripEF(wire, seg, residual[ocs+ss:ocs+se])
					} else {
						tensor.RoundTrip(wire, seg)
					}
				}
			}
		}
	}
	err := <-s.done
	putRingSender(s)
	return err
}
