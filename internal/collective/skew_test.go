package collective

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/tensor"
	"repro/internal/topology"
	"repro/internal/transport"
)

// skewOffsets builds the n+1 offset table for a weight vector, failing the
// test on planner errors.
func skewOffsets(t *testing.T, total int, weights []float64, floor int, maxSkew float64) []int {
	t.Helper()
	sizes, err := tensor.WeightedSizes(total, weights, floor, maxSkew)
	if err != nil {
		t.Fatal(err)
	}
	return tensor.WeightedOffsets(sizes)
}

// TestSkewAllReduceMatchesRing: the weighted direct exchange produces
// BIT-IDENTICAL results to the pipelined ring for any partition — the fold
// order is the ring's — across rank counts, dims, ops, and skews, including
// partitions with empty chunks.
func TestSkewAllReduceMatchesRing(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{2, 3, 4, 5, 8} {
		for _, dim := range []int{1, 2, n, 4 * n, 97, 4099} {
			for _, op := range []ReduceOp{OpSum, OpAverage} {
				weights := make([]float64, n)
				for i := range weights {
					weights[i] = 0.25 + rng.Float64()*4
				}
				inputs := randomInputs(rng, n, dim)

				ringGot := make([]tensor.Vector, n)
				for r := range ringGot {
					ringGot[r] = inputs[r].Clone()
				}
				runSPMD(t, n, func(m transport.Mesh) error {
					return ringAllReduce(m, 5, ringGot[m.Rank()], op, 0, tensor.F64, nil)
				})

				offs := skewOffsets(t, dim, weights, 0, 16)
				skewGot := make([]tensor.Vector, n)
				for r := range skewGot {
					skewGot[r] = inputs[r].Clone()
				}
				runSPMD(t, n, func(m transport.Mesh) error {
					srcs := make([][]float64, n)
					return skewAllReduce(m, 5, skewGot[m.Rank()], op, offs, tensor.F64, nil, srcs)
				})

				for r := 0; r < n; r++ {
					for j := 0; j < dim; j++ {
						if math.Float64bits(skewGot[r][j]) != math.Float64bits(ringGot[r][j]) {
							t.Fatalf("n=%d dim=%d op=%d rank=%d elem=%d: skew %x ring %x (offs %v)",
								n, dim, op, r, j,
								math.Float64bits(skewGot[r][j]), math.Float64bits(ringGot[r][j]), offs)
						}
					}
				}
			}
		}
	}
}

// TestSkewAllReduceCompression: the skew path with a lossy wire leaves all
// ranks bit-identical to each other (owner-side quantization, exact
// re-encode). Per-element dtypes quantize the finished F64 reduction — the
// result must be EXACTLY RoundTrip(ring F64 result). Block-scaled I8 gets
// the standard half-block-scale error bound. Error feedback captures the
// quantization residue exactly at the owners.
func TestSkewAllReduceCompression(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n, dim = 4, 2100
	inputs := randomInputs(rng, n, dim)
	// The uncompressed ring result is the skew fold's pre-quantization
	// value, bitwise (the bit-identity contract).
	ringF64 := make([]tensor.Vector, n)
	for r := range ringF64 {
		ringF64[r] = inputs[r].Clone()
	}
	runSPMD(t, n, func(m transport.Mesh) error {
		return ringAllReduce(m, 3, ringF64[m.Rank()], OpAverage, 0, tensor.F64, nil)
	})
	exact := ringF64[0]
	offs := skewOffsets(t, dim, []float64{4, 2, 1, 1}, 0, 8)
	for _, wire := range []tensor.Dtype{tensor.F32, tensor.F16, tensor.I8} {
		got := make([]tensor.Vector, n)
		res := make([]tensor.Vector, n)
		for r := range got {
			got[r] = inputs[r].Clone()
			res[r] = tensor.New(dim)
		}
		runSPMD(t, n, func(m transport.Mesh) error {
			srcs := make([][]float64, n)
			return skewAllReduce(m, 3, got[m.Rank()], OpAverage, offs, wire, res[m.Rank()], srcs)
		})
		for r := 1; r < n; r++ {
			for j := 0; j < dim; j++ {
				if math.Float64bits(got[r][j]) != math.Float64bits(got[0][j]) {
					t.Fatalf("wire %v rank %d elem %d: %x != %x", wire, r, j,
						math.Float64bits(got[r][j]), math.Float64bits(got[0][j]))
				}
			}
		}
		if wire.PerElement() {
			ref := exact.Clone()
			tensor.RoundTrip(wire, ref)
			for j := range ref {
				if math.Float64bits(got[0][j]) != math.Float64bits(ref[j]) {
					t.Fatalf("wire %v elem %d: got %v, want RoundTrip %v", wire, j, got[0][j], ref[j])
				}
			}
		} else {
			bound := exact.NormInf()/60 + 1e-300
			for j := range exact {
				if math.Abs(got[0][j]-exact[j]) > bound {
					t.Fatalf("i8 elem %d: got %v, want %v (bound %v)", j, got[0][j], exact[j], bound)
				}
			}
		}
		// The residual is exactly pre−post over each rank's own chunk
		// (pre is the F64 ring value, bitwise) and zero elsewhere.
		for r := 0; r < n; r++ {
			for j := 0; j < dim; j++ {
				inOwn := j >= offs[r] && j < offs[r+1]
				if !inOwn && res[r][j] != 0 {
					t.Fatalf("wire %v rank %d: residual outside own chunk at %d", wire, r, j)
				}
				if inOwn {
					want := exact[j] - got[r][j]
					if math.Float64bits(res[r][j]) != math.Float64bits(want) {
						t.Fatalf("wire %v rank %d elem %d: residual %v, want %v", wire, r, j, res[r][j], want)
					}
				}
			}
		}
	}
}

// TestSkewEngineUniformIsRing: on a mesh with no timing hook (the local
// in-memory mesh) the engine's plan stays uniform forever and every call is
// bit-identical to the plain ring — the fallback IS the ring code path.
func TestSkewEngineUniformIsRing(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, dim := range []int{64, 4099, 40000} {
		const n = 4
		inputs := randomInputs(rng, n, dim)
		ringGot := make([]tensor.Vector, n)
		for r := range ringGot {
			ringGot[r] = inputs[r].Clone()
		}
		runSPMD(t, n, func(m transport.Mesh) error {
			return ringAllReduce(m, 2, ringGot[m.Rank()], OpAverage, 0, tensor.F64, nil)
		})
		engGot := make([]tensor.Vector, n)
		for r := range engGot {
			engGot[r] = inputs[r].Clone()
		}
		runSPMD(t, n, func(m transport.Mesh) error {
			e, err := NewSkewEngine(m, SkewOptions{})
			if err != nil {
				return err
			}
			defer e.Close()
			return e.AllReduce(2, engGot[m.Rank()], OpAverage)
		})
		for r := 0; r < n; r++ {
			for j := 0; j < dim; j++ {
				if math.Float64bits(engGot[r][j]) != math.Float64bits(ringGot[r][j]) {
					t.Fatalf("dim=%d rank=%d elem=%d: engine %x ring %x", dim, r, j,
						math.Float64bits(engGot[r][j]), math.Float64bits(ringGot[r][j]))
				}
			}
		}
	}
}

// TestSkewEngineReplanExchange: the epoch-stamped plan exchange leaves every
// rank with the same weight vector, derived from the rates each rank
// reported. Rates are injected directly into the per-rank observation
// stores (no transport hook needed), emulating what the send observer
// would have recorded.
func TestSkewEngineReplanExchange(t *testing.T) {
	const n = 4
	rates := []float64{4e9, 4e9, 4e9, 1e9} // rank 3 is 4x slower
	parts := make([]*topology.Partition, n)
	epochs := make([]int64, n)
	snaps := make([][]float64, n)
	runSPMD(t, n, func(m transport.Mesh) error {
		e, err := NewSkewEngine(m, SkewOptions{FloorElems: -1, MaxSkew: 8})
		if err != nil {
			return err
		}
		defer e.Close()
		// Seed this rank's own outgoing-rate observations.
		for to := 0; to < n; to++ {
			if to == m.Rank() {
				continue
			}
			d := int64(float64(1<<20) / rates[m.Rank()] * 1e9)
			if err := e.Observations().ObserveTransfer(m.Rank(), to, 1<<20, time.Duration(d)); err != nil {
				return err
			}
		}
		v := tensor.New(8192)
		v.Fill(float64(m.Rank()))
		if err := e.AllReduce(0, v, OpAverage); err != nil {
			return err
		}
		parts[m.Rank()] = e.Partition()
		epochs[m.Rank()] = e.Epoch()
		snaps[m.Rank()] = e.LastRates()
		return nil
	})
	for r := 0; r < n; r++ {
		if epochs[r] != 1 {
			t.Fatalf("rank %d epoch %d, want 1", r, epochs[r])
		}
		if parts[r].Epoch != 1 {
			t.Fatalf("rank %d partition epoch %d", r, parts[r].Epoch)
		}
		for i, w := range parts[r].Weights {
			if math.Float64bits(w) != math.Float64bits(parts[0].Weights[i]) {
				t.Fatalf("rank %d weight[%d] %v != rank 0's %v", r, i, w, parts[0].Weights[i])
			}
		}
	}
	if parts[0].Uniform() {
		t.Fatalf("skewed rates produced a uniform plan: %v", parts[0].Weights)
	}
	// Rank 0 (the planning rank) holds the full gathered rate snapshot.
	if len(snaps[0]) != n {
		t.Fatalf("rank 0 rate snapshot %v, want %d entries", snaps[0], n)
	}
	for i, r := range snaps[0] {
		if math.Abs(r-rates[i]) > 0.01*rates[i] {
			t.Fatalf("rank 0 gathered rate[%d] = %v, want ~%v", i, r, rates[i])
		}
	}
	// Rank 3 reported 1/4 the rate: its weight must be ~1/4 of the others'.
	ratio := parts[0].Weights[0] / parts[0].Weights[3]
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("weight ratio %v, want ~4 (weights %v)", ratio, parts[0].Weights)
	}
	// And results on a skewed plan still match the serial reference.
	rng := rand.New(rand.NewSource(37))
	const dim = 40000
	inputs := randomInputs(rng, n, dim)
	want := serialSum(inputs, OpAverage)
	got := make([]tensor.Vector, n)
	for r := range got {
		got[r] = inputs[r].Clone()
	}
	runSPMD(t, n, func(m transport.Mesh) error {
		e, err := NewSkewEngine(m, SkewOptions{FloorElems: -1, MaxSkew: 8})
		if err != nil {
			return err
		}
		defer e.Close()
		for to := 0; to < n; to++ {
			if to == m.Rank() {
				continue
			}
			d := int64(float64(1<<20) / rates[m.Rank()] * 1e9)
			if err := e.Observations().ObserveTransfer(m.Rank(), to, 1<<20, time.Duration(d)); err != nil {
				return err
			}
		}
		return e.AllReduce(0, got[m.Rank()], OpAverage)
	})
	for r := range got {
		if j, ok := withinTol(got[r], want, 1e-12); !ok {
			t.Fatalf("rank %d elem %d: got %v, want %v", r, j, got[r][j], want[j])
		}
	}
}

// TestSkewEngineValidation: schedules the engine cannot run are rejected.
func TestSkewEngineValidation(t *testing.T) {
	runSPMD(t, 1, func(m transport.Mesh) error {
		e, err := NewSkewEngine(m, SkewOptions{})
		if err != nil {
			return err
		}
		defer e.Close()
		v := tensor.New(8)
		if err := e.AllReduceOpts(0, v, OpSum, Options{Algorithm: AlgoTree}); err == nil {
			t.Error("pinned tree accepted")
		}
		if err := e.AllReduceOpts(0, v, OpSum, Options{TopK: 3}); err == nil {
			t.Error("top-k accepted")
		}
		if err := e.AllReduceOpts(0, v, OpSum, Options{Residual: tensor.New(4)}); err == nil {
			t.Error("mis-sized residual accepted")
		}
		return e.AllReduce(0, v, OpSum) // n=1 no-op still counts a call
	})
}

// TestSkewEngineOverTCPAdapts is the end-to-end online loop: a TCP mesh
// with one slow rank (per-peer paced links), no seeded observations — the
// engine must discover the skew from its own send timings, re-plan into an
// unequal partition, and keep every iteration's result equal to the serial
// reference.
func TestSkewEngineOverTCPAdapts(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster in -short mode")
	}
	const n = 4
	const dim = 32 << 10 // 256 KiB
	const fast, slow = 80e6, 20e6
	meshes, err := transport.NewTCPCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	for _, m := range meshes {
		rate := fast
		if m.Rank() == n-1 {
			rate = slow
		}
		for to := 0; to < n; to++ {
			if to == m.Rank() {
				continue
			}
			if err := m.SetPeerLinkRate(to, rate); err != nil {
				t.Fatal(err)
			}
		}
	}
	rng := rand.New(rand.NewSource(53))
	engines := make([]*SkewEngine, n)
	for _, m := range meshes {
		e, err := NewSkewEngine(m, SkewOptions{MaxSkew: 8})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		engines[m.Rank()] = e
	}
	const iters = 8
	for it := 0; it < iters; it++ {
		inputs := randomInputs(rng, n, dim)
		want := serialSum(inputs, OpAverage)
		got := make([]tensor.Vector, n)
		done := make(chan error, n)
		for _, m := range meshes {
			m := m
			got[m.Rank()] = inputs[m.Rank()].Clone()
			go func() { done <- engines[m.Rank()].AllReduce(int64(it), got[m.Rank()], OpAverage) }()
		}
		for i := 0; i < n; i++ {
			if err := <-done; err != nil {
				t.Fatalf("iter %d: %v", it, err)
			}
		}
		for r := range got {
			if j, ok := withinTol(got[r], want, 1e-12); !ok {
				t.Fatalf("iter %d rank %d elem %d: got %v, want %v", it, r, j, got[r][j], want[j])
			}
		}
	}
	part := engines[0].Partition()
	if part.Uniform() {
		t.Fatalf("engine never adapted: weights %v after %d iters", part.Weights, iters)
	}
	wSlow := part.Weights[n-1]
	for r := 0; r < n-1; r++ {
		if part.Weights[r] <= wSlow {
			t.Fatalf("slow rank did not get the smallest weight: %v", part.Weights)
		}
	}
	ratio := part.Weights[0] / wSlow
	if ratio < 2 {
		t.Fatalf("fast/slow weight ratio %.2f, want >= 2 (true skew 4): %v", ratio, part.Weights)
	}
	if engines[0].Epoch() < iters {
		t.Fatalf("epoch %d after %d iters with replan-every-1", engines[0].Epoch(), iters)
	}
}
