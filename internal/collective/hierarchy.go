package collective

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// Two-level hierarchical AllReduce, matching the paper's hierarchical mode
// (Section 4): ranks are partitioned into groups (speed- or
// locality-homogeneous), each group ring-reduces internally over a
// transport.SubMesh, the group leaders exchange the group sums across
// groups, and the finished result is broadcast back inside each group. For
// G groups of size N/G the critical path is one N/G-rank ring + one G-rank
// leader exchange + one N/G-rank broadcast — on fabrics where intra-group
// links are fast and inter-group links slow (the heterogeneous clusters the
// paper targets) this beats any flat schedule.
//
// Determinism: every rank of a group finishes the intra-group ring with
// bit-identical group sums, the leader exchange reduces those
// deterministically, and the broadcast distributes the leader's finished
// bytes verbatim — so all N ranks end bit-identical.

// HierarchicalAllReduce reduces v in place across all ranks of m. groups
// must partition 0..m.Size()-1; every rank must pass the same groups slice
// (same order), iter, op and vector length. Each group's first member acts
// as its leader; the leader exchange uses the cost-model selector over the
// leader SubMesh.
func HierarchicalAllReduce(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp, groups [][]int) error {
	n := m.Size()
	if n == 1 {
		return nil
	}
	seen := make([]bool, n)
	covered := 0
	var mine []int
	leaders := make([]int, 0, len(groups))
	for gi, g := range groups {
		if len(g) == 0 {
			return fmt.Errorf("collective: hierarchical group %d empty", gi)
		}
		leaders = append(leaders, g[0])
		for _, r := range g {
			if r < 0 || r >= n || seen[r] {
				return fmt.Errorf("collective: hierarchical groups must partition 0..%d (rank %d duplicate or out of range)", n-1, r)
			}
			seen[r] = true
			covered++
			if r == m.Rank() {
				mine = g
			}
		}
	}
	if covered != n {
		return fmt.Errorf("collective: hierarchical groups cover %d of %d ranks", covered, n)
	}
	if mine == nil {
		return fmt.Errorf("collective: rank %d not in any group", m.Rank())
	}

	// Level 1: intra-group ring reduce-to-all. Every member of the group
	// ends with the group sum; summing (not averaging) keeps the final
	// scaling a single, bit-consistent 1/N at the leader.
	var sub *transport.SubMesh
	if len(mine) > 1 {
		var err error
		sub, err = transport.NewSubMesh(m, mine)
		if err != nil {
			return err
		}
		if err := RingAllReduce(sub, iter, v, OpSum); err != nil {
			return fmt.Errorf("hierarchical intra-group: %w", err)
		}
	}

	// Level 2: the group leaders exchange group sums. The leader SubMesh
	// peer pairs are disjoint from every intra-group pair (one leader per
	// group), so the two levels' traffic cannot interleave.
	if m.Rank() == mine[0] {
		if len(leaders) > 1 {
			lsub, err := transport.NewSubMesh(m, leaders)
			if err != nil {
				return err
			}
			if err := AllReduceWith(lsub, iter, v, OpSum, AlgoAuto); err != nil {
				return fmt.Errorf("hierarchical inter-group: %w", err)
			}
		}
		if op == OpAverage {
			v.Scale(1 / float64(n))
		}
	}

	// Broadcast the finished vector back inside the group. Per-pair FIFO
	// ordering keeps it causally after the level-1 traffic.
	if sub != nil {
		if err := Broadcast(sub, iter, v, 0); err != nil {
			return fmt.Errorf("hierarchical broadcast: %w", err)
		}
	}
	return nil
}
