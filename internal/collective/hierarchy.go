package collective

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Two-level hierarchical AllReduce, matching the paper's hierarchical mode
// (Section 4): ranks are partitioned into groups (speed- or
// locality-homogeneous), each group ring-reduces internally over a
// transport.SubMesh, the group leaders exchange the group sums across
// groups, and the finished result is broadcast back inside each group. For
// G groups of size N/G the critical path is one N/G-rank ring + one G-rank
// leader exchange + one N/G-rank broadcast — on fabrics where intra-group
// links are fast and inter-group links slow (the heterogeneous clusters the
// paper targets) this beats any flat schedule.
//
// The execution is the depth-2 case of the general level-tree engine in
// multilevel.go, sharing its cached per-level SubMeshes: calling this every
// iteration with the same groups rebuilds nothing (the SubMesh rebuild per
// call used to dominate small-group latency; see BenchmarkHierarchicalCached
// for the delta), and the bit-identity argument is the engine's.

// HierarchicalAllReduce reduces v in place across all ranks of m. groups
// must partition 0..m.Size()-1; every rank must pass the same groups slice
// (same order), iter, op and vector length. Each group's first member acts
// as its leader; the leader exchange uses the cost-model selector over the
// leader SubMesh.
func HierarchicalAllReduce(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp, groups [][]int) error {
	n := m.Size()
	if n == 1 {
		return nil
	}
	// Validate eagerly for precise errors (the engine's plan validation
	// would catch these too, but with level-tree wording).
	seen := make([]bool, n)
	covered := 0
	inGroup := false
	level0 := make([]topology.Group, 0, len(groups))
	for gi, g := range groups {
		if len(g) == 0 {
			return fmt.Errorf("collective: hierarchical group %d empty", gi)
		}
		for _, r := range g {
			if r < 0 || r >= n || seen[r] {
				return fmt.Errorf("collective: hierarchical groups must partition 0..%d (rank %d duplicate or out of range)", n-1, r)
			}
			seen[r] = true
			covered++
			if r == m.Rank() {
				inGroup = true
			}
		}
		level0 = append(level0, topology.Group{Members: g})
	}
	if covered != n {
		return fmt.Errorf("collective: hierarchical groups cover %d of %d ranks", covered, n)
	}
	if !inGroup {
		return fmt.Errorf("collective: rank %d not in any group", m.Rank())
	}

	plan := &topology.Plan{Ranks: n, Levels: [][]topology.Group{level0}}
	if len(level0) > 1 {
		plan.Levels = append(plan.Levels, []topology.Group{{Members: leaders(groups)}})
	}
	ml, err := cachedMultiLevel(m, plan)
	if err != nil {
		return err
	}
	return ml.Run(iter, v, op)
}

// leaders returns each group's first member.
func leaders(groups [][]int) []int {
	out := make([]int, len(groups))
	for i, g := range groups {
		out[i] = g[0]
	}
	return out
}
