package collective

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// Sparse top-k gradient exchange.
//
// Each rank keeps only the k largest-magnitude elements of its gradient and
// ships them as an index+value frame (transport.Message.Indices); the
// frames tree-reduce to rank 0 as a sorted index union with summed values,
// and the finished sparse sum broadcasts back down the same binomial tree.
// Every rank then materializes the identical dense vector — zero outside
// the union, the reduced sums inside — so the bit-identity contract of the
// dense collectives carries over unchanged (all ranks finish with the bytes
// rank 0 built).
//
// Selected values travel as exact fp64: sparsity is the compression, and
// the only information lost is the dropped (1 − k/dim) tail, which error
// feedback recovers — TopKEF folds the unsent mass into the caller's
// residual exactly the way RoundTripEF does for lossy dense dtypes.
//
// Wire volume per hop is ≤ min(n, 2)·k·12 bytes in practice (unions grow
// with tree depth but overlap heavily for real gradients) versus 8·dim for
// a dense hop, so at k ≪ dim the exchange is bandwidth-cheap even though
// the binomial tree is not bandwidth-optimal.

// topKAllReduce reduces v in place across all ranks, keeping each rank's
// top-k contribution. All ranks must pass the same k, iter, op and vector
// length; residual (optional) collects this rank's dropped mass.
func topKAllReduce(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp, k int, residual tensor.Vector) error {
	n := m.Size()
	rank := m.Rank()
	if k > len(v) {
		k = len(v)
	}

	// Local selection. With a residual the unselected mass accumulates
	// there (and v's unselected elements zero — harmless, v is rebuilt from
	// the sparse sum below); without one the tail is simply dropped.
	var idx []int32
	if residual != nil {
		idx = tensor.TopKEF(v, k, residual)
	} else {
		idx = tensor.TopKSelect(v, k)
	}
	vals := make([]float64, len(idx))
	for i, j := range idx {
		vals[i] = v[j]
	}

	// Reduce phase: binomial tree to rank 0. A rank receives from peers
	// above it until its lowest set bit's turn comes, then sends its merged
	// frame downward once and is done.
	for span := 1; span < n; span <<= 1 {
		if rank&span != 0 {
			if err := m.Send(rank-span, transport.Message{
				Type:    transport.MsgReduce,
				Iter:    iter,
				Payload: vals,
				Indices: idx,
			}); err != nil {
				return fmt.Errorf("sparse reduce send: %w", err)
			}
			break
		}
		peer := rank + span
		if peer >= n {
			continue
		}
		msg, err := m.Recv(peer)
		if err != nil {
			return fmt.Errorf("sparse reduce recv: %w", err)
		}
		pi, pv, err := checkSparse("sparse reduce", msg, transport.MsgReduce, iter, len(v))
		if err != nil {
			return err
		}
		idx, vals = mergeSparse(idx, vals, pi, pv)
		transport.PutPayload(msg.Payload)
	}

	// Rank 0 holds the full union; the average divides by ALL ranks (a rank
	// whose top-k missed an index contributed an implicit zero there).
	if rank == 0 && op == OpAverage {
		scale := 1 / float64(n)
		for i := range vals {
			vals[i] *= scale
		}
	}

	// Broadcast phase: the finished (index, value) frame travels back down
	// the binomial tree rooted at 0. Relays forward the exact bytes they
	// received, so all ranks materialize identically.
	if rank != 0 {
		parent := rank &^ highestBit(rank)
		msg, err := m.Recv(parent)
		if err != nil {
			return fmt.Errorf("sparse broadcast recv: %w", err)
		}
		idx, vals, err = checkSparse("sparse broadcast", msg, transport.MsgBroadcast, iter, len(v))
		if err != nil {
			return err
		}
		// The received payload is pooled; copy before releasing so the
		// frame this rank forwards (and keeps) owns its storage.
		vals = append([]float64(nil), vals...)
		transport.PutPayload(msg.Payload)
	}
	span := highestBit(rank)
	if rank == 0 {
		span = 1
	} else {
		span <<= 1
	}
	for ; span < n; span <<= 1 {
		child := rank + span
		if child >= n {
			break
		}
		if err := m.Send(child, transport.Message{
			Type:    transport.MsgBroadcast,
			Iter:    iter,
			Payload: vals,
			Indices: idx,
		}); err != nil {
			return fmt.Errorf("sparse broadcast send: %w", err)
		}
	}

	// Materialize the dense result.
	v.Zero()
	for i, j := range idx {
		v[j] = vals[i]
	}
	return nil
}

// checkSparse validates a sparse frame: the usual (type, iter) protocol
// check plus the sparse invariants — indices present, strictly ascending,
// and in range for a dim-length vector. A malformed frame is a protocol
// violation (ErrProtocol), matching the dense collectives' error taxonomy.
func checkSparse(op string, msg transport.Message, want transport.MsgType, iter int64, dim int) ([]int32, []float64, error) {
	if err := checkMsg(op, msg, want, iter, msg.Chunk); err != nil {
		transport.PutPayload(msg.Payload)
		return nil, nil, err
	}
	if len(msg.Indices) != len(msg.Payload) {
		transport.PutPayload(msg.Payload)
		return nil, nil, fmt.Errorf("%s: %w: %d indices for %d values", op, ErrProtocol, len(msg.Indices), len(msg.Payload))
	}
	prev := int32(-1)
	for _, j := range msg.Indices {
		if j <= prev || int(j) >= dim {
			transport.PutPayload(msg.Payload)
			return nil, nil, fmt.Errorf("%s: %w: sparse index %d (dim %d, prev %d)", op, ErrProtocol, j, dim, prev)
		}
		prev = j
	}
	return msg.Indices, msg.Payload, nil
}

// mergeSparse unions two ascending-index sparse frames, summing values on
// shared indices. The merge is a deterministic function of its inputs, so
// the fixed binomial tree yields the same bytes on every run.
func mergeSparse(ai []int32, av []float64, bi []int32, bv []float64) ([]int32, []float64) {
	oi := make([]int32, 0, len(ai)+len(bi))
	ov := make([]float64, 0, len(ai)+len(bi))
	a, b := 0, 0
	for a < len(ai) && b < len(bi) {
		switch {
		case ai[a] < bi[b]:
			oi, ov = append(oi, ai[a]), append(ov, av[a])
			a++
		case bi[b] < ai[a]:
			oi, ov = append(oi, bi[b]), append(ov, bv[b])
			b++
		default:
			oi, ov = append(oi, ai[a]), append(ov, av[a]+bv[b])
			a++
			b++
		}
	}
	for ; a < len(ai); a++ {
		oi, ov = append(oi, ai[a]), append(ov, av[a])
	}
	for ; b < len(bi); b++ {
		oi, ov = append(oi, bi[b]), append(ov, bv[b])
	}
	return oi, ov
}

// TopKAllReduce reduces v in place across all ranks of m, each rank
// contributing only its k largest-magnitude elements; the result is the
// sparse union's sum (OpAverage: divided by the full rank count). residual,
// when non-nil, accumulates this rank's dropped mass for error feedback.
func TopKAllReduce(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp, k int, residual tensor.Vector) error {
	return AllReduceOpts(m, iter, v, op, Options{TopK: k, Residual: residual})
}
