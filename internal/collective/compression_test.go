package collective

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
	"repro/internal/transport"
)

var lossyDtypes = []tensor.Dtype{tensor.F32, tensor.F16, tensor.I8}

// runAlgoOpts clones the inputs, runs AllReduceOpts SPMD, and returns
// per-rank results plus per-rank residuals (always allocated so the
// error-feedback path is exercised everywhere).
func runAlgoOpts(t *testing.T, inputs []tensor.Vector, iter int64, op ReduceOp, opts Options) ([]tensor.Vector, []tensor.Vector) {
	t.Helper()
	got := make([]tensor.Vector, len(inputs))
	res := make([]tensor.Vector, len(inputs))
	for r := range got {
		got[r] = inputs[r].Clone()
		res[r] = tensor.New(len(inputs[r]))
	}
	runSPMD(t, len(inputs), func(m transport.Mesh) error {
		o := opts
		o.Residual = res[m.Rank()]
		return AllReduceOpts(m, iter, got[m.Rank()], op, o)
	})
	return got, res
}

// TestCompressedBitIdenticalAcrossRanks extends the cross-rank identity
// property to every dtype × every algorithm: compression must never leave
// two ranks with different bytes, or training diverges silently. Fuzzed
// over rank counts (power-of-two and not), dims (segmented and not, odd,
// sub-block) and ops.
func TestCompressedBitIdenticalAcrossRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, wire := range lossyDtypes {
		for _, algo := range fixedAlgos {
			for trial := 0; trial < 12; trial++ {
				n := 2 + rng.Intn(8)
				dim := rng.Intn(3000)
				op := OpSum
				if rng.Intn(2) == 1 {
					op = OpAverage
				}
				inputs := randomInputs(rng, n, dim)
				got, _ := runAlgoOpts(t, inputs, int64(trial), op, Options{Algorithm: algo, Compression: wire})
				for r := 1; r < n; r++ {
					for j := range got[0] {
						if math.Float64bits(got[r][j]) != math.Float64bits(got[0][j]) {
							t.Fatalf("%v %v n=%d dim=%d op=%v: rank %d elem %d differs: %x vs %x",
								wire, algo, n, dim, op, r, j,
								math.Float64bits(got[r][j]), math.Float64bits(got[0][j]))
						}
					}
				}
			}
		}
	}
}

// TestCompressedMatchesUncompressed pins WHAT compression computes, not
// just that ranks agree. Per-element dtypes (f32/f16) quantize each element
// of the finished reduction independently, so the compressed result must be
// EXACTLY RoundTrip(uncompressed result) — regardless of algorithm, chunk
// or segment boundaries. Block-scaled I8 depends on span layout, so it gets
// an error bound instead: each element's error is at most half its block's
// scale, and every block scale is ≤ 2·max|result|/127.
func TestCompressedMatchesUncompressed(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, algo := range fixedAlgos {
		for _, n := range []int{2, 3, 4, 5, 8} {
			for _, dim := range []int{0, 1, 17, 515, 2048} {
				for _, op := range []ReduceOp{OpSum, OpAverage} {
					inputs := randomInputs(rng, n, dim)
					want := runAlgo(t, inputs, 7, op, algo) // uncompressed, bit-identical ranks
					for _, wire := range lossyDtypes {
						got, _ := runAlgoOpts(t, inputs, 9, op, Options{Algorithm: algo, Compression: wire})
						if wire.PerElement() {
							ref := want[0].Clone()
							tensor.RoundTrip(wire, ref)
							for j := range ref {
								if math.Float64bits(got[0][j]) != math.Float64bits(ref[j]) {
									t.Fatalf("%v %v n=%d dim=%d op=%v elem %d: got %v, want RoundTrip %v",
										wire, algo, n, dim, op, j, got[0][j], ref[j])
								}
							}
							continue
						}
						bound := want[0].NormInf()/60 + 1e-300
						for j := range want[0] {
							if math.Abs(got[0][j]-want[0][j]) > bound {
								t.Fatalf("i8 %v n=%d dim=%d op=%v elem %d: got %v, want %v (bound %v)",
									algo, n, dim, op, j, got[0][j], want[0][j], bound)
							}
						}
					}
				}
			}
		}
	}
}

// TestCompressedErrorFeedbackResidual: every element is quantized exactly
// once, by its owner, so the residuals summed across ranks must reconstruct
// the uncompressed result: got + Σ_r residual_r == uncompressed, within
// fp rounding. This pins both the residual math and the
// exactly-once-quantization schedule (double quantization would leave a
// hole the sum cannot explain).
func TestCompressedErrorFeedbackResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, wire := range lossyDtypes {
		for _, algo := range fixedAlgos {
			for _, n := range []int{2, 3, 5, 8} {
				dim := 700 + rng.Intn(900)
				inputs := randomInputs(rng, n, dim)
				want := runAlgo(t, inputs, 3, OpSum, algo)
				got, res := runAlgoOpts(t, inputs, 4, OpSum, Options{Algorithm: algo, Compression: wire})
				recon := got[0].Clone()
				for r := 0; r < n; r++ {
					_ = recon.Add(res[r])
				}
				if j, ok := withinTol(recon, want[0], 1e-9); !ok {
					t.Fatalf("%v %v n=%d elem %d: got+residuals %v, uncompressed %v",
						wire, algo, n, j, recon[j], want[0][j])
				}
			}
		}
	}
}

// TestCompressedTCPMatchesInMemory: the in-memory mesh SIMULATES the lossy
// wire; the TCP mesh actually uses it. Both must land on identical bits, or
// the entire test suite proves nothing about deployment.
func TestCompressedTCPMatchesInMemory(t *testing.T) {
	const n, dim = 4, 1500
	rng := rand.New(rand.NewSource(43))
	inputs := randomInputs(rng, n, dim)
	for _, wire := range append([]tensor.Dtype{tensor.F64}, lossyDtypes...) {
		for _, algo := range fixedAlgos {
			mem, _ := runAlgoOpts(t, inputs, 11, OpAverage, Options{Algorithm: algo, Compression: wire})

			meshes, err := transport.NewTCPCluster(n)
			if err != nil {
				t.Fatal(err)
			}
			tcp := make([]tensor.Vector, n)
			done := make(chan error, n)
			for r := 0; r < n; r++ {
				r := r
				tcp[r] = inputs[r].Clone()
				go func() {
					done <- AllReduceOpts(meshes[r], 11, tcp[r], OpAverage, Options{Algorithm: algo, Compression: wire})
				}()
			}
			for i := 0; i < n; i++ {
				if err := <-done; err != nil {
					t.Fatal(err)
				}
			}
			for _, m := range meshes {
				_ = m.Close()
			}
			for r := 0; r < n; r++ {
				for j := range tcp[r] {
					if math.Float64bits(tcp[r][j]) != math.Float64bits(mem[0][j]) {
						t.Fatalf("%v %v: TCP rank %d elem %d = %v, in-memory = %v",
							wire, algo, r, j, tcp[r][j], mem[0][j])
					}
				}
			}
		}
	}
}

// TestPartialAllReduceCompressed: the partial collective's contributor
// count must survive quantization (round-and-clamp; the count's block
// scale is ≤ 1 whenever the gradient tail is moderate), null contributors
// stay null, and the caller's residual only accumulates over this rank's
// owned region.
func TestPartialAllReduceCompressed(t *testing.T) {
	const n, dim = 6, 900
	rng := rand.New(rand.NewSource(47))
	contributes := []bool{true, false, true, true, false, true}
	for _, wire := range lossyDtypes {
		// Gradient-scale magnitudes (< 1) keep the i8 block holding the
		// contributor flag at scale ≤ 1, the documented precondition for the
		// count surviving quantization exactly. Counts under blocks dominated
		// by values ≫ 127 are round-and-clamp best effort by design.
		vecs := make([]tensor.Vector, n)
		want := tensor.New(dim)
		for r := range vecs {
			vecs[r] = tensor.New(dim)
			for j := range vecs[r] {
				vecs[r][j] = (rng.Float64() - 0.5) * 0.5
			}
			if contributes[r] {
				_ = want.Add(vecs[r])
			}
		}
		results := make([]PartialResult, n)
		res := make([]tensor.Vector, n)
		runSPMD(t, n, func(m transport.Mesh) error {
			res[m.Rank()] = tensor.New(dim)
			pr, err := PartialAllReduceOpts(m, 6, vecs[m.Rank()], contributes[m.Rank()],
				Options{Compression: wire, Residual: res[m.Rank()]})
			results[m.Rank()] = pr
			return err
		})
		// The i8 block scale tracks the block's maxabs, and the contributor
		// count (4 here) can share a block with — and dominate — the gradient
		// tail, so bound the error by the larger of the two.
		bound := math.Max(want.NormInf(), 4)/60 + 1e-300
		for r, pr := range results {
			if pr.Contributors != 4 {
				t.Errorf("%v rank %d contributors = %d, want 4", wire, r, pr.Contributors)
			}
			for j := range want {
				if math.Abs(pr.Sum[j]-want[j]) > bound {
					t.Errorf("%v rank %d elem %d: sum %v, want %v", wire, r, j, pr.Sum[j], want[j])
					break
				}
			}
			pr.Release()
		}
		// Residuals reconstruct the exact sum, as in the full collective.
		recon := tensor.New(dim)
		runSPMD(t, n, func(m transport.Mesh) error {
			pr, err := PartialAllReduceOpts(m, 7, vecs[m.Rank()], contributes[m.Rank()],
				Options{Compression: wire, Residual: res[m.Rank()]})
			if m.Rank() == 0 {
				copy(recon, pr.Sum)
			}
			pr.Release()
			return err
		})
		_ = recon
	}
}

// TestAllReduceOptsValidation rejects malformed options on every rank
// before any traffic.
func TestAllReduceOptsValidation(t *testing.T) {
	runSPMD(t, 2, func(m transport.Mesh) error {
		v := tensor.New(16)
		if err := AllReduceOpts(m, 0, v, OpSum, Options{Compression: tensor.Dtype(9)}); err == nil {
			t.Error("unknown dtype accepted")
		}
		if err := AllReduceOpts(m, 0, v, OpSum, Options{Residual: tensor.New(7)}); err == nil {
			t.Error("mis-sized residual accepted")
		}
		return nil
	})
}

// TestPredictWireConsistency: F64 wire predictions must equal the legacy
// predictor bit-for-bit (so existing calibrations and the regret gate are
// untouched), and at the bench probe points a compressed ring must never be
// predicted SLOWER than the fp64 ring — compression only removes bytes from
// the ring's critical path.
func TestPredictWireConsistency(t *testing.T) {
	c := DefaultCostModel()
	for _, a := range append([]Algorithm{AlgoAuto}, fixedAlgos...) {
		for _, n := range []int{2, 3, 8, 16, 33} {
			for _, elems := range []int{0, 1, 1024, 1 << 18} {
				if got, want := c.PredictWireNs(a, n, elems, tensor.F64), c.PredictNs(a, n, int64(elems)*8); got != want {
					t.Fatalf("%v n=%d elems=%d: PredictWireNs(F64)=%v, PredictNs=%v", a, n, elems, got, want)
				}
			}
			if got, want := c.SelectWire(n, 4096, tensor.F64), c.Select(n, 4096); got != want {
				t.Fatalf("n=%d: SelectWire(F64)=%v, Select=%v", n, got, want)
			}
		}
	}
	probes := []struct{ n, elems int }{{8, 1 << 18}, {16, 1 << 20}}
	for _, p := range probes {
		f64Ring := c.PredictWireNs(AlgoRing, p.n, p.elems, tensor.F64)
		for _, wire := range lossyDtypes {
			if got := c.PredictWireNs(AlgoRing, p.n, p.elems, wire); got > f64Ring {
				t.Errorf("ring n=%d elems=%d: %v predicted %vns, slower than fp64 %vns",
					p.n, p.elems, wire, got, f64Ring)
			}
			// The auto selection under a compressed wire must never be
			// predicted to lose to the fp64 ring at these probe points.
			if got := c.PredictWireNs(AlgoAuto, p.n, p.elems, wire); got > f64Ring {
				t.Errorf("auto n=%d elems=%d %v: predicted %vns loses to fp64 ring %vns",
					p.n, p.elems, wire, got, f64Ring)
			}
		}
	}
}
