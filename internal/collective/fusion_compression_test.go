package collective

import (
	"math"
	"testing"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// fusedTestTensors builds a deterministic per-rank tensor set with mixed
// sizes (several of which share fusion groups at the thresholds the tests
// use).
func fusedTestTensors(rank int) []tensor.Vector {
	sizes := []int{7, 120, 3, 64, 33, 200, 1}
	out := make([]tensor.Vector, len(sizes))
	seed := 0
	for ti, sz := range sizes {
		v := tensor.New(sz)
		for i := range v {
			v[i] = math.Cos(float64(seed+i)*0.7) * float64(rank+1) * 3
		}
		seed += sz
		out[ti] = v
	}
	return out
}

// TestFusedAllReduceCompressed: every lossy wire dtype through the fused
// path must leave all ranks with bit-identical tensors, equal to an unfused
// reduction over the concatenated vector with the same grouping-equivalent
// inputs.
func TestFusedAllReduceCompressed(t *testing.T) {
	const n = 4
	for _, wire := range []tensor.Dtype{tensor.F32, tensor.F16, tensor.I8} {
		for _, fusionBytes := range []int{8, 512, 1 << 20} {
			results := make([][]tensor.Vector, n)
			runSPMD(t, n, func(m transport.Mesh) error {
				tensors := fusedTestTensors(m.Rank())
				if err := FusedAllReduceOpts(m, 3, tensors, OpAverage, fusionBytes, Options{
					Compression: wire,
				}); err != nil {
					return err
				}
				results[m.Rank()] = tensors
				return nil
			})
			for r := 1; r < n; r++ {
				for ti := range results[0] {
					for i := range results[0][ti] {
						a := math.Float64bits(results[0][ti][i])
						b := math.Float64bits(results[r][ti][i])
						if a != b {
							t.Fatalf("%v fb=%d: rank %d tensor %d elem %d differs from rank 0",
								wire, fusionBytes, r, ti, i)
						}
					}
				}
			}
		}
	}
}

// TestFusedAllReduceResidualComposition: the fused path with a lossy wire
// and a concatenated residual must match, bit for bit, the unfused
// reductions of each fusion group with residual slices — i.e. the group
// slicing of the residual is exact.
func TestFusedAllReduceResidualComposition(t *testing.T) {
	const n = 3
	const fusionBytes = 512 // 64 elems per group
	wire := tensor.F16

	// Reference: run the same grouping by hand with per-group collectives.
	sizes := []int{7, 120, 3, 64, 33, 200, 1}
	total := 0
	for _, s := range sizes {
		total += s
	}
	refTensors := make([][]tensor.Vector, n)
	refRes := make([]tensor.Vector, n)
	runSPMD(t, n, func(m transport.Mesh) error {
		tensors := fusedTestTensors(m.Rank())
		res := tensor.New(total)
		if err := FusedAllReduceOpts(m, 3, tensors, OpAverage, fusionBytes, Options{
			Compression: wire, Residual: res,
		}); err != nil {
			return err
		}
		refTensors[m.Rank()] = tensors
		refRes[m.Rank()] = res
		return nil
	})

	// Unfused reference: concatenate each greedy group and reduce it with
	// the same tag and a residual slice in concatenation order.
	maxElems := fusionBytes / 8
	var groups [][2]int // [lo, hi) tensor index ranges
	lo, elems := 0, 0
	for i, s := range sizes {
		if elems > 0 && elems+s > maxElems {
			groups = append(groups, [2]int{lo, i})
			lo, elems = i, 0
		}
		elems += s
	}
	groups = append(groups, [2]int{lo, len(sizes)})

	runSPMD(t, n, func(m transport.Mesh) error {
		tensors := fusedTestTensors(m.Rank())
		res := tensor.New(total)
		groupLo := 0
		for gi, g := range groups {
			buf := tensor.New(0)
			for _, v := range tensors[g[0]:g[1]] {
				buf = append(buf, v...)
			}
			tag := int64(3)*int64(len(groups)+1) + int64(gi)
			if err := AllReduceOpts(m, tag, buf, OpAverage, Options{
				Compression: wire, Residual: res[groupLo : groupLo+len(buf)],
			}); err != nil {
				return err
			}
			off := 0
			for _, v := range tensors[g[0]:g[1]] {
				copy(v, buf[off:off+len(v)])
				off += len(v)
			}
			groupLo += len(buf)
		}
		rank := m.Rank()
		for ti := range tensors {
			for i := range tensors[ti] {
				a := math.Float64bits(tensors[ti][i])
				b := math.Float64bits(refTensors[rank][ti][i])
				if a != b {
					t.Errorf("rank %d tensor %d elem %d: fused %v != unfused %v",
						rank, ti, i, refTensors[rank][ti][i], tensors[ti][i])
					return nil
				}
			}
		}
		for i := range res {
			if math.Float64bits(res[i]) != math.Float64bits(refRes[rank][i]) {
				t.Errorf("rank %d residual %d: fused %v != unfused %v",
					rank, i, refRes[rank][i], res[i])
				return nil
			}
		}
		return nil
	})
}

// TestFusedAllReduceErrorFeedbackConverges: iterating fused compressed
// reductions with error feedback on a constant input drives the compressed
// average toward the exact one (the EF loop corrects quantization error).
func TestFusedAllReduceErrorFeedbackConverges(t *testing.T) {
	const n = 3
	const iters = 30
	sizes := []int{40, 25}
	total := 65
	// Exact average of the constant per-rank inputs.
	exact := make([]tensor.Vector, len(sizes))
	for ti, sz := range sizes {
		exact[ti] = tensor.New(sz)
		for i := range exact[ti] {
			for r := 0; r < n; r++ {
				exact[ti][i] += (math.Sin(float64(ti*100+i)) + float64(r)) / n
			}
		}
	}
	sumErr := make([]float64, n)
	runSPMD(t, n, func(m transport.Mesh) error {
		rank := m.Rank()
		res := tensor.New(total)
		acc := make([]tensor.Vector, len(sizes))
		for ti, sz := range sizes {
			acc[ti] = tensor.New(sz)
		}
		for k := 0; k < iters; k++ {
			tensors := make([]tensor.Vector, len(sizes))
			off := 0
			for ti, sz := range sizes {
				tensors[ti] = tensor.New(sz)
				for i := range tensors[ti] {
					tensors[ti][i] = math.Sin(float64(ti*100+i)) + float64(rank)
					// EF: fold the residual of earlier rounds back in.
					tensors[ti][i] += res[off+i] * float64(n)
					res[off+i] = 0
				}
				off += sz
			}
			if err := FusedAllReduceOpts(m, int64(k), tensors, OpAverage, 256, Options{
				Compression: tensor.I8, Residual: res,
			}); err != nil {
				return err
			}
			for ti := range acc {
				_ = acc[ti].Add(tensors[ti])
			}
		}
		var worst float64
		for ti := range acc {
			for i := range acc[ti] {
				got := acc[ti][i] / iters
				if d := math.Abs(got - exact[ti][i]); d > worst {
					worst = d
				}
			}
		}
		sumErr[rank] = worst
		return nil
	})
	for rank, e := range sumErr {
		// I8 without EF has per-round error around the quantization step of
		// the block scale; with EF the running average must land well below
		// a single round's quantization error.
		if e > 0.01 {
			t.Errorf("rank %d: EF average error %v", rank, e)
		}
	}
}

// TestFusedAllReduceResidualLengthValidation: a wrong-length residual is
// rejected before any traffic.
func TestFusedAllReduceResidualLengthValidation(t *testing.T) {
	net, err := transport.NewLocalNetwork(1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	m := net.Endpoints()[0]
	tensors := []tensor.Vector{tensor.New(4), tensor.New(5)}
	if err := FusedAllReduceOpts(m, 0, tensors, OpSum, 0, Options{
		Compression: tensor.F16, Residual: tensor.New(8),
	}); err == nil {
		t.Fatal("bad residual length accepted")
	}
}
