package collective

import (
	"sync"
	"testing"

	"repro/internal/tensor"
	"repro/internal/transport"
)

func TestFusedAllReduceMatchesPerTensor(t *testing.T) {
	const n = 4
	sizes := []int{5, 3, 17, 1, 9}
	mkTensors := func(rank int) []tensor.Vector {
		out := make([]tensor.Vector, len(sizes))
		for i, s := range sizes {
			out[i] = tensor.New(s)
			for j := range out[i] {
				out[i][j] = float64(rank*100 + i*10 + j)
			}
		}
		return out
	}
	// Expected element-wise means.
	want := mkTensors(0)
	for i := range want {
		for j := range want[i] {
			var sum float64
			for r := 0; r < n; r++ {
				sum += float64(r*100 + i*10 + j)
			}
			want[i][j] = sum / n
		}
	}

	for _, fusionBytes := range []int{1, 64, 10 * 8, 1 << 20} {
		perRank := make([][]tensor.Vector, n)
		for r := range perRank {
			perRank[r] = mkTensors(r)
		}
		runSPMD(t, n, func(m transport.Mesh) error {
			return FusedAllReduce(m, 3, perRank[m.Rank()], OpAverage, fusionBytes)
		})
		for r := 0; r < n; r++ {
			for i := range sizes {
				if !perRank[r][i].Equal(want[i], 1e-9) {
					t.Fatalf("fusion=%dB rank %d tensor %d = %v, want %v",
						fusionBytes, r, i, perRank[r][i], want[i])
				}
			}
		}
	}
}

func TestFusedAllReduceEmpty(t *testing.T) {
	runSPMD(t, 2, func(m transport.Mesh) error {
		return FusedAllReduce(m, 0, nil, OpSum, 0)
	})
}

func TestFusedAllReduceSingleRank(t *testing.T) {
	runSPMD(t, 1, func(m transport.Mesh) error {
		v := tensor.FromSlice([]float64{1, 2})
		if err := FusedAllReduce(m, 0, []tensor.Vector{v}, OpAverage, 0); err != nil {
			return err
		}
		if !v.Equal(tensor.FromSlice([]float64{1, 2}), 0) {
			t.Error("single-rank fused allreduce changed data")
		}
		return nil
	})
}

func TestFusionGroups(t *testing.T) {
	cases := []struct {
		sizes []int
		bytes int
		want  int
	}{
		{nil, 0, 0},
		{[]int{10, 10, 10}, 1 << 30, 1},
		{[]int{10, 10, 10}, 10 * 8, 3},
		{[]int{10, 10, 10}, 20 * 8, 2},
		{[]int{100}, 8, 1}, // one oversized tensor still fits alone
		{[]int{100, 1}, 8, 2},
	}
	for _, c := range cases {
		if got := FusionGroups(c.sizes, c.bytes); got != c.want {
			t.Errorf("FusionGroups(%v, %d) = %d, want %d", c.sizes, c.bytes, got, c.want)
		}
	}
}

func TestFusedAllReduceManySmallTensors(t *testing.T) {
	// 50 layer-sized tensors, fused into few buffers: the Horovod tensor
	// fusion scenario.
	const n, layers = 3, 50
	perRank := make([][]tensor.Vector, n)
	for r := range perRank {
		perRank[r] = make([]tensor.Vector, layers)
		for i := range perRank[r] {
			perRank[r][i] = tensor.FromSlice([]float64{float64(r), float64(i)})
		}
	}
	var wg sync.WaitGroup
	net, err := transport.NewLocalNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	errs := make([]error, n)
	for r, m := range net.Endpoints() {
		r, m := r, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[r] = FusedAllReduce(m, 1, perRank[r], OpSum, 16*8)
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r := 0; r < n; r++ {
		for i := range perRank[r] {
			if perRank[r][i][0] != 3 { // 0+1+2
				t.Fatalf("rank %d layer %d sum = %v", r, i, perRank[r][i][0])
			}
			if perRank[r][i][1] != float64(3*i) {
				t.Fatalf("rank %d layer %d second elem = %v", r, i, perRank[r][i][1])
			}
		}
	}
}
