package collective

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// TestProtocolViolationDetected injects an out-of-band message into the
// ring stream and checks the collective reports ErrProtocol rather than
// silently corrupting data.
func TestProtocolViolationDetected(t *testing.T) {
	net, err := transport.NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	ep0, _ := net.Endpoint(0)
	ep1, _ := net.Endpoint(1)

	// Rank 1 sends a rogue chunk with the wrong iteration before joining.
	if err := ep1.Send(0, transport.Message{
		Type: transport.MsgChunk, Iter: 999, Chunk: 0, Payload: []float64{1},
	}); err != nil {
		t.Fatal(err)
	}
	err0Ch := make(chan error, 1)
	err1Ch := make(chan error, 1)
	go func() { err0Ch <- RingAllReduce(ep0, 1, tensor.New(2), OpSum) }()
	go func() { err1Ch <- RingAllReduce(ep1, 1, tensor.New(2), OpSum) }()
	// Rank 0 sees the rogue message first and must fail with a protocol
	// error; then unblock rank 1 (stuck in recv) by closing its endpoint.
	err0 := <-err0Ch
	_ = ep1.Close()
	<-err1Ch // rank 1 fails with a closed-mesh error; exact value untested
	if !errors.Is(err0, ErrProtocol) {
		t.Errorf("rank 0 error = %v, want ErrProtocol", err0)
	}
}

// TestRingAllReduceClosedMesh checks clean error propagation when the mesh
// dies mid-collective.
func TestRingAllReduceClosedMesh(t *testing.T) {
	net, err := transport.NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	ep0, _ := net.Endpoint(0)
	_ = net.Close()
	if err := RingAllReduce(ep0, 0, tensor.New(4), OpSum); err == nil {
		t.Error("allreduce on closed mesh should error")
	}
	if _, err := PartialRingAllReduce(ep0, 0, tensor.New(4), true); err == nil {
		t.Error("partial allreduce on closed mesh should error")
	}
	if err := Broadcast(ep0, 0, tensor.New(4), 0); err == nil {
		t.Error("broadcast on closed mesh should error")
	}
}

// TestBroadcastShapeMismatch: the receiver's buffer must match the payload.
func TestBroadcastShapeMismatch(t *testing.T) {
	net, err := transport.NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	var wg sync.WaitGroup
	var rootErr, leafErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		ep, _ := net.Endpoint(0)
		rootErr = Broadcast(ep, 0, tensor.New(4), 0)
	}()
	go func() {
		defer wg.Done()
		ep, _ := net.Endpoint(1)
		leafErr = Broadcast(ep, 0, tensor.New(3), 0) // wrong size
	}()
	wg.Wait()
	if rootErr != nil {
		t.Errorf("root error = %v", rootErr)
	}
	if leafErr == nil {
		t.Error("mismatched receiver should error")
	}
}

// TestFusedAllReduceErrorPropagates: a failure in one fusion group surfaces.
func TestFusedAllReduceErrorPropagates(t *testing.T) {
	net, err := transport.NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	ep0, _ := net.Endpoint(0)
	_ = net.Close()
	err = FusedAllReduce(ep0, 0, []tensor.Vector{tensor.New(2)}, OpSum, 0)
	if err == nil {
		t.Error("fused allreduce on closed mesh should error")
	}
}
