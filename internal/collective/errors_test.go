package collective

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// TestProtocolViolationDetected injects an out-of-band message into the
// ring stream and checks the collective reports ErrProtocol rather than
// silently corrupting data.
func TestProtocolViolationDetected(t *testing.T) {
	net, err := transport.NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	ep0, _ := net.Endpoint(0)
	ep1, _ := net.Endpoint(1)

	// Rank 1 sends a rogue chunk with the wrong iteration before joining.
	if err := ep1.Send(0, transport.Message{
		Type: transport.MsgChunk, Iter: 999, Chunk: 0, Payload: []float64{1},
	}); err != nil {
		t.Fatal(err)
	}
	err0Ch := make(chan error, 1)
	err1Ch := make(chan error, 1)
	go func() { err0Ch <- RingAllReduce(ep0, 1, tensor.New(2), OpSum) }()
	go func() { err1Ch <- RingAllReduce(ep1, 1, tensor.New(2), OpSum) }()
	// Rank 0 sees the rogue message first and must fail with a protocol
	// error; then unblock rank 1 (stuck in recv) by closing its endpoint.
	err0 := <-err0Ch
	_ = ep1.Close()
	<-err1Ch // rank 1 fails with a closed-mesh error; exact value untested
	if !errors.Is(err0, ErrProtocol) {
		t.Errorf("rank 0 error = %v, want ErrProtocol", err0)
	}
}

// TestRingAllReduceClosedMesh checks clean error propagation when the mesh
// dies mid-collective.
func TestRingAllReduceClosedMesh(t *testing.T) {
	net, err := transport.NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	ep0, _ := net.Endpoint(0)
	_ = net.Close()
	if err := RingAllReduce(ep0, 0, tensor.New(4), OpSum); err == nil {
		t.Error("allreduce on closed mesh should error")
	}
	if _, err := PartialRingAllReduce(ep0, 0, tensor.New(4), true); err == nil {
		t.Error("partial allreduce on closed mesh should error")
	}
	if err := Broadcast(ep0, 0, tensor.New(4), 0); err == nil {
		t.Error("broadcast on closed mesh should error")
	}
}

// TestBroadcastShapeMismatch: the receiver's buffer must match the payload.
func TestBroadcastShapeMismatch(t *testing.T) {
	net, err := transport.NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	var wg sync.WaitGroup
	var rootErr, leafErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		ep, _ := net.Endpoint(0)
		rootErr = Broadcast(ep, 0, tensor.New(4), 0)
	}()
	go func() {
		defer wg.Done()
		ep, _ := net.Endpoint(1)
		leafErr = Broadcast(ep, 0, tensor.New(3), 0) // wrong size
	}()
	wg.Wait()
	if rootErr != nil {
		t.Errorf("root error = %v", rootErr)
	}
	if leafErr == nil {
		t.Error("mismatched receiver should error")
	}
}

// TestFusedAllReduceErrorPropagates: a failure in one fusion group surfaces.
func TestFusedAllReduceErrorPropagates(t *testing.T) {
	net, err := transport.NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	ep0, _ := net.Endpoint(0)
	_ = net.Close()
	err = FusedAllReduce(ep0, 0, []tensor.Vector{tensor.New(2)}, OpSum, 0)
	if err == nil {
		t.Error("fused allreduce on closed mesh should error")
	}
}

// TestProtocolErrorFields: a protocol violation must carry enough context to
// debug it — expected vs received iteration, tag, type, and the peer rank.
func TestProtocolErrorFields(t *testing.T) {
	net, err := transport.NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	ep0, _ := net.Endpoint(0)
	ep1, _ := net.Endpoint(1)

	// Rank 1 injects a chunk with a stale iteration before joining.
	if err := ep1.Send(0, transport.Message{
		Type: transport.MsgChunk, Iter: 999, Chunk: 7, Payload: []float64{1},
	}); err != nil {
		t.Fatal(err)
	}
	err0Ch := make(chan error, 1)
	err1Ch := make(chan error, 1)
	go func() { err0Ch <- RingAllReduce(ep0, 3, tensor.New(2), OpSum) }()
	go func() { err1Ch <- RingAllReduce(ep1, 3, tensor.New(2), OpSum) }()
	err0 := <-err0Ch
	_ = ep1.Close()
	<-err1Ch

	var pe *ProtocolError
	if !errors.As(err0, &pe) {
		t.Fatalf("error %v does not unwrap to *ProtocolError", err0)
	}
	if !errors.Is(err0, ErrProtocol) {
		t.Errorf("ProtocolError must keep matching errors.Is(_, ErrProtocol); got %v", err0)
	}
	if pe.Op != "ring" {
		t.Errorf("Op = %q, want %q", pe.Op, "ring")
	}
	if pe.From != 1 {
		t.Errorf("From = %d, want 1", pe.From)
	}
	if pe.WantIter != 3 || pe.GotIter != 999 {
		t.Errorf("iter = want %d got %d; expected want 3 got 999", pe.WantIter, pe.GotIter)
	}
	if pe.GotTag != 7 {
		t.Errorf("GotTag = %d, want 7", pe.GotTag)
	}
	if pe.GotType != transport.MsgChunk {
		t.Errorf("GotType = %v, want MsgChunk", pe.GotType)
	}
	msg := pe.Error()
	for _, frag := range []string{"ring", "iter", "tag"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("error text %q missing %q", msg, frag)
		}
	}
}

// TestProtocolErrorWrongType: a message of the wrong kind (control traffic
// leaking into a broadcast stream) is reported with both type fields set.
func TestProtocolErrorWrongType(t *testing.T) {
	net, err := transport.NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	ep0, _ := net.Endpoint(0)
	ep1, _ := net.Endpoint(1)

	// Root's slot in rank 1's inbox gets a rogue control message.
	if err := ep0.Send(1, transport.Message{
		Type: transport.MsgControl, Iter: 0, Payload: []float64{0},
	}); err != nil {
		t.Fatal(err)
	}
	leafErr := make(chan error, 1)
	go func() {
		leafErr <- Broadcast(ep1, 0, tensor.New(1), 0)
	}()
	err1 := <-leafErr
	var pe *ProtocolError
	if !errors.As(err1, &pe) {
		t.Fatalf("error %v does not unwrap to *ProtocolError", err1)
	}
	if pe.Op != "broadcast" {
		t.Errorf("Op = %q, want %q", pe.Op, "broadcast")
	}
	if pe.WantType != transport.MsgBroadcast || pe.GotType != transport.MsgControl {
		t.Errorf("types = want %v got %v; expected MsgBroadcast/MsgControl", pe.WantType, pe.GotType)
	}
}

// TestSegTagOverflowRejected: a (ranks, segments) combination whose tag
// space exceeds int32 must fail fast with ErrTagOverflow instead of
// colliding tags mid-flight.
func TestSegTagOverflowRejected(t *testing.T) {
	net, err := transport.NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	ep0, _ := net.Endpoint(0)
	err = RingAllReduceSegmented(ep0, 0, tensor.New(8), OpSum, 1<<30+1)
	if !errors.Is(err, ErrTagOverflow) {
		t.Fatalf("error = %v, want ErrTagOverflow", err)
	}
	// The guard fires before any traffic, so the mesh stays usable.
	runDone := make(chan error, 2)
	ep1, _ := net.Endpoint(1)
	go func() { runDone <- RingAllReduce(ep0, 1, tensor.New(8), OpSum) }()
	go func() { runDone <- RingAllReduce(ep1, 1, tensor.New(8), OpSum) }()
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
}
