package collective

import (
	"path/filepath"
	"reflect"
	"testing"
)

// TestSelectPrefersLatencyOptimalSmall: small tensors must never land on a
// 2(n−1)-step latency chain. Inside the inline envelope (≤ 8 KiB, ≤ 32
// ranks) the ring itself runs the log-depth allgather, so the selector must
// price it as such: under an α-dominated model the inline ring's log₂N
// rounds are the shortest critical path at power-of-two n and must win,
// while outside the envelope — where ring means the pipelined 2(n−1)
// schedule — ring must lose. Which algorithm wins inside the envelope under
// fitted constants depends on the β spread; the structural invariant is
// that the pipelined chain is never picked for small tensors.
func TestSelectPrefersLatencyOptimalSmall(t *testing.T) {
	alphaOnly := CostModel{
		Ring:            AlgoCost{AlphaNs: 1},
		HalvingDoubling: AlgoCost{AlphaNs: 1},
		Tree:            AlgoCost{AlphaNs: 1},
	}
	for _, n := range []int{8, 16, 32} {
		// log₂n inline rounds < 2·log₂n for either log-depth schedule.
		if got := alphaOnly.Select(n, 64); got != AlgoRing {
			t.Errorf("alpha-only Select(%d ranks, 64 elems) = %v; want ring (inline allgather is latency-optimal)", n, got)
		}
		// 4096 elems = 32 KiB: past the inline cap, ring is 2(n−1) deep.
		if got := alphaOnly.Select(n, 4096); got == AlgoRing {
			t.Errorf("alpha-only Select(%d ranks, 4096 elems) = ring; want a log-depth schedule", n)
		}
	}
	// Non-power-of-two inline: n−1 direct exchanges still beat
	// 2⌈log₂n⌉ = 6 at n = 6.
	if got := alphaOnly.Select(6, 64); got != AlgoRing {
		t.Errorf("alpha-only Select(6 ranks, 64 elems) = %v; want ring", got)
	}
	m := DefaultCostModel()
	for _, n := range []int{8, 16, 32} {
		if got := m.Select(n, 4096); got == AlgoRing {
			t.Errorf("Select(%d ranks, 4096 elems) = ring; want a log-depth schedule", n)
		}
	}
	// Past the rank cap the inline path is off even for tiny tensors.
	for _, n := range []int{64, 128} {
		if got := m.Select(n, 64); got == AlgoRing {
			t.Errorf("Select(%d ranks, 64 elems) = ring; want a log-depth schedule", n)
		}
	}
}

// TestSelectPrefersBandwidthOptimalLarge: huge tensors must land on a
// schedule whose byte volume is O(bytes), i.e. not the tree (which moves the
// full vector every hop).
func TestSelectPrefersBandwidthOptimalLarge(t *testing.T) {
	m := DefaultCostModel()
	for _, n := range []int{8, 16} {
		if got := m.Select(n, 1<<22); got == AlgoTree {
			t.Errorf("Select(%d ranks, 4M elems) = tree; want ring or halving-doubling", n)
		}
	}
}

// TestSelectDeterministicAndMonotone: selection is a pure function of
// (n, elems) — SPMD ranks sharing one model must always agree.
func TestSelectDeterministicAndMonotone(t *testing.T) {
	m := DefaultCostModel()
	for _, n := range []int{2, 3, 8, 17} {
		for _, elems := range []int{0, 1, 512, 4096, 1 << 16, 1 << 20} {
			first := m.Select(n, elems)
			for i := 0; i < 3; i++ {
				if got := m.Select(n, elems); got != first {
					t.Fatalf("Select(%d, %d) flapped: %v then %v", n, elems, first, got)
				}
			}
		}
	}
}

// TestSelectSingleRank: a 1-rank mesh needs no traffic; any algorithm is a
// no-op, and the selector must not divide by zero getting there.
func TestSelectSingleRank(t *testing.T) {
	if got := DefaultCostModel().Select(1, 1024); got != AlgoRing {
		t.Errorf("Select(1, 1024) = %v, want ring fallback", got)
	}
	if ns := DefaultCostModel().PredictNs(AlgoAuto, 1, 8192); ns != 0 {
		t.Errorf("PredictNs(auto, 1 rank) = %v, want 0", ns)
	}
}

// TestPredictMatchesConstructedModel pins the shape arithmetic with a
// hand-checkable model: α=1 per message, β=0.
func TestPredictMatchesConstructedModel(t *testing.T) {
	unit := AlgoCost{AlphaNs: 1, BetaNsPerByte: 0}
	m := CostModel{Ring: unit, HalvingDoubling: unit, Tree: unit}
	cases := []struct {
		algo  Algorithm
		n     int
		bytes int64
		want  float64
	}{
		// 800 B sits inside the inline-ring envelope: log₂n rounds at
		// power-of-two n, n−1 direct exchanges otherwise.
		{AlgoRing, 4, 800, 2}, // log2(4)
		{AlgoRing, 8, 800, 3}, // log2(8)
		{AlgoRing, 6, 800, 5}, // n−1 (non-power-of-two)
		// 80 KB is past the inline cap: the pipelined ring's 2(n−1).
		{AlgoRing, 4, 80000, 6},          //
		{AlgoRing, 8, 80000, 14},         //
		{AlgoHalvingDoubling, 8, 800, 6}, // 2·log2(8)
		{AlgoHalvingDoubling, 6, 800, 6}, // 2·log2(4) + 2 fold hops
		{AlgoTree, 8, 800, 6},            // 2·⌈log2 8⌉
		{AlgoTree, 5, 800, 6},            // 2·⌈log2 5⌉
	}
	for _, tc := range cases {
		if got := m.PredictNs(tc.algo, tc.n, tc.bytes); got != tc.want {
			t.Errorf("PredictNs(%v, n=%d, %dB) = %v, want %v", tc.algo, tc.n, tc.bytes, got, tc.want)
		}
	}
}

// TestCalibrationSaveLoadRoundTrip: the persisted calibration must reload
// bit-for-bit so every rank of a job can install the identical model.
func TestCalibrationSaveLoadRoundTrip(t *testing.T) {
	cal := Calibration{
		Model: CostModel{
			Ring:            AlgoCost{AlphaNs: 123.5, BetaNsPerByte: 0.25},
			HalvingDoubling: AlgoCost{AlphaNs: 99, BetaNsPerByte: 0.5},
			Tree:            AlgoCost{AlphaNs: 77.25, BetaNsPerByte: 1.125},
			Links: []AlgoCost{
				{AlphaNs: 50, BetaNsPerByte: 0.125},
				{AlphaNs: 200, BetaNsPerByte: 2.5},
			},
		},
		Ranks: 8, SmallDim: 256, LargeDim: 1 << 18, Rounds: 30,
	}
	path := filepath.Join(t.TempDir(), "cal.json")
	if err := cal.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCalibration(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cal) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, cal)
	}
}

// TestLoadCalibrationErrors: missing and malformed files both fail loudly.
func TestLoadCalibrationErrors(t *testing.T) {
	if _, err := LoadCalibration(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("loading a missing calibration should error")
	}
}

// TestSetCostModelDrivesSelector: installing a model changes what AllReduce
// auto-selection picks, and restoring the default restores the choice.
func TestSetCostModelDrivesSelector(t *testing.T) {
	defer SetCostModel(DefaultCostModel())
	// A model where the tree is free wins everywhere.
	treeOnly := CostModel{
		Ring:            AlgoCost{AlphaNs: 1e9, BetaNsPerByte: 1e6},
		HalvingDoubling: AlgoCost{AlphaNs: 1e9, BetaNsPerByte: 1e6},
		Tree:            AlgoCost{AlphaNs: 1, BetaNsPerByte: 0},
	}
	SetCostModel(treeOnly)
	if got := SelectAlgorithm(8, 1<<20); got != AlgoTree {
		t.Errorf("with tree-only model SelectAlgorithm = %v, want tree", got)
	}
	SetCostModel(DefaultCostModel())
	if got := SelectAlgorithm(8, 1<<20); got == AlgoTree {
		t.Errorf("default model picked tree for 1M elems; want a bandwidth-optimal schedule")
	}
}

// TestCalibrateSmoke runs a tiny calibration end to end: constants must come
// out positive and the calibration must record its probe conditions.
func TestCalibrateSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe in -short mode")
	}
	cal, err := Calibrate(4, 64, 8192, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Ranks != 4 || cal.SmallDim != 64 || cal.LargeDim != 8192 || cal.Rounds != 3 {
		t.Errorf("probe conditions not recorded: %+v", cal)
	}
	for name, c := range map[string]AlgoCost{
		"ring": cal.Model.Ring, "hd": cal.Model.HalvingDoubling, "tree": cal.Model.Tree,
	} {
		if c.AlphaNs <= 0 || c.BetaNsPerByte < 0 {
			t.Errorf("%s constants out of range: %+v", name, c)
		}
	}
}

// TestCalibrationFingerprint: Calibrate stamps the host fingerprint, the
// stamp survives the JSON round trip, and FingerprintMatches accepts this
// host plus legacy (unstamped) files while rejecting foreign shapes.
func TestCalibrationFingerprint(t *testing.T) {
	gmp, ncpu := HostFingerprint()
	if gmp < 1 || ncpu < 1 {
		t.Fatalf("fingerprint = (%d, %d)", gmp, ncpu)
	}
	cal := Calibration{GoMaxProcs: gmp, NumCPU: ncpu}
	if !cal.FingerprintMatches() {
		t.Error("own-host fingerprint rejected")
	}
	if !(Calibration{}).FingerprintMatches() {
		t.Error("legacy calibration without fingerprint rejected")
	}
	foreign := Calibration{GoMaxProcs: gmp + 3, NumCPU: ncpu}
	if foreign.FingerprintMatches() {
		t.Error("foreign fingerprint accepted")
	}
	// Round trip through the persisted form.
	path := filepath.Join(t.TempDir(), "cal.json")
	stamped := Calibration{
		Model:      DefaultCostModel(),
		Ranks:      2,
		GoMaxProcs: gmp + 1, // deliberately foreign
		NumCPU:     ncpu,
	}
	if err := stamped.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCalibration(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.GoMaxProcs != gmp+1 || got.NumCPU != ncpu {
		t.Errorf("fingerprint did not survive round trip: %+v", got)
	}
	if got.FingerprintMatches() {
		t.Error("stale calibration accepted after round trip")
	}
}

// TestParseAlgorithm covers the CLI surface of the enum.
func TestParseAlgorithm(t *testing.T) {
	cases := map[string]Algorithm{
		"auto": AlgoAuto, "ring": AlgoRing,
		"halving-doubling": AlgoHalvingDoubling, "hd": AlgoHalvingDoubling,
		"tree": AlgoTree,
	}
	for s, want := range cases {
		got, err := ParseAlgorithm(s)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseAlgorithm("butterfly"); err == nil {
		t.Error("unknown algorithm name should error")
	}
	for _, a := range []Algorithm{AlgoAuto, AlgoRing, AlgoHalvingDoubling, AlgoTree} {
		back, err := ParseAlgorithm(a.String())
		if err != nil || back != a {
			t.Errorf("String/Parse round trip failed for %v", a)
		}
	}
}
