package collective

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// referenceAllReduce replays the serial ring's exact accumulation order in
// plain scalar code: chunk c starts from rank c's data and folds the
// remaining ranks' contributions in ring order (c+1, c+2, …). Pairwise FP
// addition is commutative bitwise, so this is the unique bit pattern every
// correct ring schedule must produce; averaging multiplies the completed sum
// by 1/n exactly as the collective does.
func referenceAllReduce(inputs []tensor.Vector, op ReduceOp) tensor.Vector {
	n := len(inputs)
	dim := len(inputs[0])
	out := tensor.New(dim)
	for c := 0; c < n; c++ {
		cs, ce, _ := tensor.ChunkBounds(dim, n, c)
		for i := cs; i < ce; i++ {
			acc := inputs[c][i]
			for j := 1; j < n; j++ {
				acc += inputs[(c+j)%n][i]
			}
			out[i] = acc
		}
	}
	if op == OpAverage {
		inv := 1 / float64(n)
		for i := range out {
			out[i] *= inv
		}
	}
	return out
}

// TestRingMatchesReference is the property test for the pipelined ring: for
// random vectors, every rank count, segment depth (including depths that do
// not divide the chunk evenly), and both reduce ops, the result must be
// BIT-identical to the reference accumulation on every rank.
func TestRingMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dims := []int{0, 1, 2, 7, 64, 97, 1000, 4099}
	for _, n := range []int{2, 3, 4, 5, 8} {
		for _, dim := range dims {
			for _, segs := range []int{0, 1, 2, 3, 4} {
				for _, op := range []ReduceOp{OpSum, OpAverage} {
					inputs := make([]tensor.Vector, n)
					for r := range inputs {
						inputs[r] = tensor.New(dim)
						for j := range inputs[r] {
							// Wide magnitude spread so any reordering of the
							// accumulation would change low-order bits.
							inputs[r][j] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(9)-4))
						}
					}
					want := referenceAllReduce(inputs, op)
					got := make([]tensor.Vector, n)
					for r := range got {
						got[r] = inputs[r].Clone()
					}
					runSPMD(t, n, func(m transport.Mesh) error {
						return RingAllReduceSegmented(m, 3, got[m.Rank()], op, segs)
					})
					for r := 0; r < n; r++ {
						for j := range want {
							if math.Float64bits(got[r][j]) != math.Float64bits(want[j]) {
								t.Fatalf("n=%d dim=%d segs=%d op=%v rank=%d elem %d: got %x (%v), want %x (%v)",
									n, dim, segs, op, r, j,
									math.Float64bits(got[r][j]), got[r][j],
									math.Float64bits(want[j]), want[j])
							}
						}
					}
				}
			}
		}
	}
}

// TestRingSegmentedRepeated reuses the pooled sender machinery across many
// back-to-back collectives on the same mesh and checks the rotating buffers
// never leak state between iterations.
func TestRingSegmentedRepeated(t *testing.T) {
	const n, dim, iters = 4, 513, 20
	inputs := make([]tensor.Vector, n)
	for r := range inputs {
		inputs[r] = tensor.New(dim)
		for j := range inputs[r] {
			inputs[r][j] = float64(r + 1)
		}
	}
	want := referenceAllReduce(inputs, OpAverage)
	net, err := transport.NewLocalNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	for it := 0; it < iters; it++ {
		got := make([]tensor.Vector, n)
		for r := range got {
			got[r] = inputs[r].Clone()
		}
		done := make(chan error, n)
		for _, m := range net.Endpoints() {
			m := m
			go func() {
				done <- RingAllReduceSegmented(m, int64(it), got[m.Rank()], OpAverage, 1+it%4)
			}()
		}
		for range got {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
		for r := range got {
			for j := range want {
				if math.Float64bits(got[r][j]) != math.Float64bits(want[j]) {
					t.Fatalf("iter %d rank %d elem %d: got %v, want %v", it, r, j, got[r][j], want[j])
				}
			}
		}
	}
}
