package collective

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// Tensor Fusion (enabled on the paper's Horovod baseline, Section 7.3)
// batches many small per-layer gradients into fused buffers before the ring
// AllReduce, amortizing the per-message latency of 2(N−1) ring steps per
// tensor into 2(N−1) steps per fused buffer.

// DefaultFusionBytes is Horovod's default fusion-buffer threshold (64 MiB).
const DefaultFusionBytes = 64 << 20

// FusedAllReduce reduces a set of tensors across all ranks in m with the
// given op, packing consecutive tensors into fusion buffers of at most
// fusionBytes (8 bytes per element; a tensor larger than the threshold gets
// its own buffer). All ranks must pass tensors with identical shapes in
// identical order. Results are written back in place.
func FusedAllReduce(m transport.Mesh, iter int64, tensors []tensor.Vector, op ReduceOp, fusionBytes int) error {
	return FusedAllReduceOpts(m, iter, tensors, op, fusionBytes, Options{})
}

// FusedAllReduceOpts is FusedAllReduce under Options: each fusion group's
// collective runs with the given algorithm and compression settings.
// opts.Residual, when non-nil, must have length Σ len(tensors) and is laid
// out in tensor concatenation order — group gi's error feedback lands in
// the residual slice covering its tensors, so per-group compression
// residuals compose exactly like an unfused reduction over the
// concatenated vector.
func FusedAllReduceOpts(m transport.Mesh, iter int64, tensors []tensor.Vector, op ReduceOp, fusionBytes int, opts Options) error {
	if len(tensors) == 0 {
		return nil
	}
	total := 0
	for _, t := range tensors {
		total += len(t)
	}
	if opts.Residual != nil && len(opts.Residual) != total {
		return fmt.Errorf("collective: fused residual length %d != total elements %d", len(opts.Residual), total)
	}
	if fusionBytes <= 0 {
		fusionBytes = DefaultFusionBytes
	}
	maxElems := fusionBytes / 8
	if maxElems < 1 {
		maxElems = 1
	}

	// Pack greedily into fusion groups.
	type group struct{ lo, hi, elems int } // tensors [lo,hi), total elems
	var groups []group
	cur := group{lo: 0}
	for i, t := range tensors {
		if cur.elems > 0 && cur.elems+len(t) > maxElems {
			cur.hi = i
			groups = append(groups, cur)
			cur = group{lo: i}
		}
		cur.elems += len(t)
	}
	cur.hi = len(tensors)
	groups = append(groups, cur)

	// One pooled staging buffer sized for the largest group serves every
	// group; it goes back to the pool when the reduction completes.
	maxGroup := 0
	for _, g := range groups {
		if g.elems > maxGroup {
			maxGroup = g.elems
		}
	}
	buf := tensor.Vector(transport.GetPayload(maxGroup))
	defer transport.PutPayload(buf)
	groupLo := 0 // offset of the current group in concatenation order
	for gi, g := range groups {
		buf = buf[:0]
		for _, t := range tensors[g.lo:g.hi] {
			buf = append(buf, t...)
		}
		groupOpts := opts
		if opts.Residual != nil {
			groupOpts.Residual = opts.Residual[groupLo : groupLo+len(buf)]
		}
		// Distinct iteration tag per fusion group keeps the groups'
		// messages separable. Each group picks its schedule by its own
		// fused size: small trailing groups may take the latency-optimal
		// path while the bulk groups ride the ring.
		tag := iter*int64(len(groups)+1) + int64(gi)
		if err := AllReduceOpts(m, tag, buf, op, groupOpts); err != nil {
			return fmt.Errorf("fusion group %d: %w", gi, err)
		}
		off := 0
		for _, t := range tensors[g.lo:g.hi] {
			copy(t, buf[off:off+len(t)])
			off += len(t)
		}
		groupLo += len(buf)
	}
	return nil
}

// FusionGroups reports how many fusion buffers FusedAllReduce would use for
// the given tensor sizes and threshold — exposed for tests and capacity
// planning.
func FusionGroups(sizes []int, fusionBytes int) int {
	if len(sizes) == 0 {
		return 0
	}
	if fusionBytes <= 0 {
		fusionBytes = DefaultFusionBytes
	}
	maxElems := fusionBytes / 8
	if maxElems < 1 {
		maxElems = 1
	}
	groups := 1
	elems := 0
	for _, s := range sizes {
		if elems > 0 && elems+s > maxElems {
			groups++
			elems = 0
		}
		elems += s
	}
	return groups
}
