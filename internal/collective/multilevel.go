package collective

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/tensor"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Multi-level, topology-aware AllReduce.
//
// A topology.Plan generalizes the two-level hierarchy to an arbitrary level
// tree: level-0 groups ring-reduce internally, their leaders reduce at
// level 1, and so on up to a single top group whose members finish with the
// global sum; the result then broadcasts back down the tree. On a fabric
// with distinct link classes each level's traffic stays on one class; on a
// uniform fabric the win is message count — a 1024-rank flat ring's 2·1023
// sequential small steps become two 32-rank levels whose chunks are 32×
// larger, trading α-dominated hops for bandwidth-friendly ones.
//
// Determinism: each group's ring finishes bit-identical on its members, the
// top group's members hold identical bytes and apply the identical 1/N
// scale, and the descent broadcasts distribute those bytes verbatim — so
// all N ranks end bit-identical for a given plan.
//
// A MultiLevel instance owns one SubMesh per level this rank participates
// in, built once at construction — per-iteration calls rebuild nothing
// (flattened per-rank memory is what lets a 1024-rank in-process mesh run
// the schedule). The plan and its member slices are shared read-only across
// the ranks' instances.

// mlLevel is one level of this rank's view of the plan.
type mlLevel struct {
	// sub is the cached SubMesh over this rank's group at this level; nil
	// for singleton groups (nothing to exchange).
	sub *transport.SubMesh
	// leader marks this rank as its group's first member — the rank that
	// ascends to the next level and roots the descent broadcast.
	leader bool
	size   int
}

// MultiLevel executes a plan's schedule over one rank's mesh endpoint.
type MultiLevel struct {
	mesh transport.Mesh
	plan *topology.Plan
	// levels[l] is this rank's group view at level l, for l ≤ depth.
	levels []mlLevel
	// depth is the deepest level this rank participates in (it is a leader
	// at every level below depth).
	depth int
}

// NewMultiLevel validates plan against m and builds this rank's per-level
// SubMeshes. Every rank of the mesh must construct a MultiLevel from an
// identical plan.
func NewMultiLevel(m transport.Mesh, plan *topology.Plan) (*MultiLevel, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if plan.Ranks != m.Size() {
		return nil, fmt.Errorf("collective: plan over %d ranks on a %d-rank mesh", plan.Ranks, m.Size())
	}
	ml := &MultiLevel{mesh: m, plan: plan, depth: -1}
	rank := m.Rank()
	participant := true
	for l, level := range plan.Levels {
		if !participant {
			break
		}
		var mine []int
		for _, g := range level {
			for _, r := range g.Members {
				if r == rank {
					mine = g.Members
					break
				}
			}
			if mine != nil {
				break
			}
		}
		if mine == nil {
			// Validate guarantees coverage; this guards a plan/mesh rank
			// mismatch.
			return nil, fmt.Errorf("collective: rank %d missing from plan level %d", rank, l)
		}
		lv := mlLevel{size: len(mine), leader: mine[0] == rank}
		if len(mine) > 1 {
			sub, err := transport.NewSubMesh(m, mine)
			if err != nil {
				return nil, err
			}
			lv.sub = sub
		}
		ml.levels = append(ml.levels, lv)
		ml.depth = l
		participant = lv.leader
	}
	return ml, nil
}

// Plan returns the level tree the instance executes.
func (ml *MultiLevel) Plan() *topology.Plan { return ml.plan }

// Run reduces v in place across all ranks of the mesh under the plan. All
// ranks must pass the same iter, op and vector length.
func (ml *MultiLevel) Run(iter int64, v tensor.Vector, op ReduceOp) error {
	return ml.RunOpts(iter, v, op, Options{})
}

// RunOpts is Run with options. opts.Algorithm selects the within-level
// schedule (AlgoAuto prices each level's size independently; AlgoMultiLevel
// is rejected — the plan IS the multi-level structure). opts.Compression
// applies to the descent broadcasts, with the top group quantizing exactly
// once; the ascent reduction stays fp64. opts.Residual collects the
// quantization error at the top group's leader only (the error arises once,
// globally — accumulating it on every top member would multiply it by the
// top group size when residuals are folded back).
func (ml *MultiLevel) RunOpts(iter int64, v tensor.Vector, op ReduceOp, opts Options) error {
	if !opts.Compression.Valid() {
		return fmt.Errorf("collective: unknown compression dtype %d", opts.Compression)
	}
	if opts.Residual != nil && len(opts.Residual) != len(v) {
		return fmt.Errorf("collective: residual length %d != vector length %d", len(opts.Residual), len(v))
	}
	if opts.TopK != 0 {
		return fmt.Errorf("collective: top-k sparsification does not compose with the multi-level schedule")
	}
	if ml.mesh.Size() == 1 {
		return nil
	}
	algo := opts.Algorithm
	if algo == AlgoMultiLevel {
		return fmt.Errorf("collective: multi-level within multi-level")
	}

	// Ascend: group-local sum AllReduce per level, fp64 on the wire so the
	// reduction is exact. Summing (not averaging) keeps the final scaling a
	// single, bit-consistent 1/N at the top.
	for l := 0; l <= ml.depth; l++ {
		if ml.levels[l].sub == nil {
			continue
		}
		if err := AllReduceWith(ml.levels[l].sub, iter, v, OpSum, algo); err != nil {
			return fmt.Errorf("multi-level ascend level %d: %w", l, err)
		}
	}

	// Top: every member of the top group now holds the identical global
	// sum. Scale and (optionally) quantize — identically on each member, so
	// bit-identity survives.
	top := len(ml.plan.Levels) - 1
	if ml.depth == top {
		if op == OpAverage {
			v.Scale(1 / float64(ml.plan.Ranks))
		}
		if opts.Compression != tensor.F64 {
			if opts.Residual != nil && ml.levels[top].leader {
				tensor.RoundTripEF(opts.Compression, v, opts.Residual)
			} else {
				tensor.RoundTrip(opts.Compression, v)
			}
		}
	}

	// Descend: each level's leader broadcasts the finished bytes inside its
	// group (local rank 0 is the leader by construction). Relays re-encode
	// decoded grid values exactly (idempotence), so compression does not
	// break the all-ranks-bit-identical contract. Per-pair FIFO keeps each
	// level's broadcast causally after its ascend traffic.
	start := ml.depth
	if start > top-1 {
		start = top - 1
	}
	for l := start; l >= 0; l-- {
		if ml.levels[l].sub == nil {
			continue
		}
		if err := broadcast(ml.levels[l].sub, iter, v, 0, opts.Compression); err != nil {
			return fmt.Errorf("multi-level descend level %d: %w", l, err)
		}
	}
	return nil
}

// Per-endpoint MultiLevel cache.
//
// Rebuilding SubMeshes per call costs O(plan size) allocations per rank per
// iteration — measurable at 8 ranks and prohibitive at 1024. Mesh endpoint
// values are pointers, so the cache keys on the endpoint identity plus a
// fingerprint of the plan's full member layout; a repartition (new plan)
// replaces the entry, and steady-state training hits the cache every
// iteration.
const mlCacheCap = 4096

var mlCache = struct {
	sync.Mutex
	entries map[transport.Mesh]*mlCacheEntry
}{entries: make(map[transport.Mesh]*mlCacheEntry)}

type mlCacheEntry struct {
	key string
	ml  *MultiLevel
}

// planKey fingerprints a plan's exact member layout.
func planKey(plan *topology.Plan) string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(plan.Ranks))
	for _, level := range plan.Levels {
		b.WriteByte('|')
		for gi, g := range level {
			if gi > 0 {
				b.WriteByte(';')
			}
			for mi, r := range g.Members {
				if mi > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.Itoa(r))
			}
		}
	}
	return b.String()
}

// cachedMultiLevel returns the (building if needed) MultiLevel for this
// endpoint and plan. Safe for concurrent use by the SPMD ranks — each rank
// has its own endpoint, hence its own entry.
func cachedMultiLevel(m transport.Mesh, plan *topology.Plan) (*MultiLevel, error) {
	key := planKey(plan)
	mlCache.Lock()
	if e, ok := mlCache.entries[m]; ok && e.key == key {
		mlCache.Unlock()
		return e.ml, nil
	}
	mlCache.Unlock()
	ml, err := NewMultiLevel(m, plan)
	if err != nil {
		return nil, err
	}
	mlCache.Lock()
	if len(mlCache.entries) >= mlCacheCap {
		// Crude generation flush: entries are cheap to rebuild and the cap
		// only exists to bound a long-running process that churns meshes.
		mlCache.entries = make(map[transport.Mesh]*mlCacheEntry)
	}
	mlCache.entries[m] = &mlCacheEntry{key: key, ml: ml}
	mlCache.Unlock()
	return ml, nil
}

// MultiLevelAllReduce reduces v in place across all ranks of m under plan,
// using the per-endpoint cached engine. All ranks must pass identical
// plans, iter, op and vector length.
func MultiLevelAllReduce(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp, plan *topology.Plan) error {
	ml, err := cachedMultiLevel(m, plan)
	if err != nil {
		return err
	}
	return ml.Run(iter, v, op)
}

// autoPlan returns the plan AlgoMultiLevel runs when the caller did not
// supply one: the cost model's preferred level structure, or a balanced
// two-level √n split when the model would rather stay flat (an explicit
// AlgoMultiLevel pin means "give me the hierarchy anyway").
func autoPlan(n, elems int, wire tensor.Dtype) (*topology.Plan, error) {
	if branches := ActiveCostModel().SelectLevels(n, elems, wire); branches != nil {
		return topology.UniformPlan(n, branches)
	}
	g := 2
	for g*g < n {
		g++
	}
	if g >= n {
		return topology.FlatPlan(n)
	}
	return topology.UniformPlan(n, []int{g})
}
