package collective

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// serialSum is the plain element-wise reference reduction in rank order.
func serialSum(inputs []tensor.Vector, op ReduceOp) tensor.Vector {
	out := tensor.New(len(inputs[0]))
	for _, in := range inputs {
		for j, x := range in {
			out[j] += x
		}
	}
	if op == OpAverage {
		out.Scale(1 / float64(len(inputs)))
	}
	return out
}

// withinTol checks |got−want| ≤ tol·max(1, |want|) element-wise.
func withinTol(got, want tensor.Vector, tol float64) (int, bool) {
	for j := range want {
		bound := tol * math.Max(1, math.Abs(want[j]))
		if math.Abs(got[j]-want[j]) > bound {
			return j, false
		}
	}
	return 0, true
}

// randomInputs builds n vectors with a wide magnitude spread.
func randomInputs(rng *rand.Rand, n, dim int) []tensor.Vector {
	inputs := make([]tensor.Vector, n)
	for r := range inputs {
		inputs[r] = tensor.New(dim)
		for j := range inputs[r] {
			inputs[r][j] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(7)-3))
		}
	}
	return inputs
}

// runAlgo clones the inputs, runs the algorithm SPMD, and returns per-rank
// results.
func runAlgo(t *testing.T, inputs []tensor.Vector, iter int64, op ReduceOp, algo Algorithm) []tensor.Vector {
	t.Helper()
	got := make([]tensor.Vector, len(inputs))
	for r := range got {
		got[r] = inputs[r].Clone()
	}
	runSPMD(t, len(inputs), func(m transport.Mesh) error {
		return AllReduceWith(m, iter, got[m.Rank()], op, algo)
	})
	return got
}

var fixedAlgos = []Algorithm{AlgoRing, AlgoHalvingDoubling, AlgoTree}

// TestAlgorithmsMatchSerialReference sweeps rank counts (power-of-two and
// not), dimensions (empty, odd, sub-rank-count, large) and both ops for
// every schedule, requiring 1e-12 relative agreement with the serial sum.
func TestAlgorithmsMatchSerialReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, algo := range append([]Algorithm{AlgoAuto}, fixedAlgos...) {
		for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9} {
			for _, dim := range []int{0, 1, 2, 3, 7, 64, 97, 1000} {
				for _, op := range []ReduceOp{OpSum, OpAverage} {
					inputs := randomInputs(rng, n, dim)
					want := serialSum(inputs, op)
					got := runAlgo(t, inputs, 5, op, algo)
					for r := range got {
						if j, ok := withinTol(got[r], want, 1e-12); !ok {
							t.Fatalf("%v n=%d dim=%d op=%v rank=%d elem %d: got %v, want %v",
								algo, n, dim, op, r, j, got[r][j], want[j])
						}
					}
				}
			}
		}
	}
}

// TestAlgorithmsBitIdenticalAcrossRanks: an AllReduce is only usable by the
// training stack if every rank finishes with the SAME bytes — the halving
// window ownership and the tree root-broadcast both guarantee it.
func TestAlgorithmsBitIdenticalAcrossRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, algo := range fixedAlgos {
		for _, n := range []int{2, 3, 5, 8, 9} {
			inputs := randomInputs(rng, n, 515)
			got := runAlgo(t, inputs, 2, OpAverage, algo)
			for r := 1; r < n; r++ {
				for j := range got[0] {
					if math.Float64bits(got[r][j]) != math.Float64bits(got[0][j]) {
						t.Fatalf("%v n=%d: rank %d elem %d differs from rank 0: %x vs %x",
							algo, n, r, j, math.Float64bits(got[r][j]), math.Float64bits(got[0][j]))
					}
				}
			}
		}
	}
}

// TestPropertyAllAlgorithmsMatchSerial fuzzes (ranks, dim, values, op,
// algorithm) and asserts every schedule agrees with the serial reference
// reduction within 1e-12 per element — the cross-algorithm correctness
// property the bench suite's crossover table relies on.
func TestPropertyAllAlgorithmsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(10)
		dim := rng.Intn(2000)
		op := OpSum
		if rng.Intn(2) == 1 {
			op = OpAverage
		}
		algo := fixedAlgos[rng.Intn(len(fixedAlgos))]
		inputs := randomInputs(rng, n, dim)
		want := serialSum(inputs, op)
		got := runAlgo(t, inputs, int64(trial), op, algo)
		for r := range got {
			if j, ok := withinTol(got[r], want, 1e-12); !ok {
				t.Fatalf("trial %d %v n=%d dim=%d op=%v rank=%d elem %d: got %v, want %v",
					trial, algo, n, dim, op, r, j, got[r][j], want[j])
			}
		}
	}
}

// TestPartialAllReduceAuto: the partial collective's semantics (contributor
// counting, null contributions, untouched inputs) hold under the selector.
func TestPartialAllReduceAuto(t *testing.T) {
	const n, dim = 6, 33
	contributes := []bool{true, false, true, true, false, true}
	vecs := make([]tensor.Vector, n)
	want := tensor.New(dim)
	for r := range vecs {
		vecs[r] = tensor.New(dim)
		for j := range vecs[r] {
			vecs[r][j] = float64(r + j)
		}
		if contributes[r] {
			_ = want.Add(vecs[r])
		}
	}
	results := make([]PartialResult, n)
	runSPMD(t, n, func(m transport.Mesh) error {
		res, err := PartialAllReduce(m, 4, vecs[m.Rank()], contributes[m.Rank()])
		results[m.Rank()] = res
		return err
	})
	for r, res := range results {
		if res.Contributors != 4 {
			t.Errorf("rank %d contributors = %d, want 4", r, res.Contributors)
		}
		if !res.Sum.Equal(want, 1e-9) {
			t.Errorf("rank %d sum mismatch", r)
		}
		if vecs[r][1] != float64(r+1) {
			t.Errorf("rank %d input mutated", r)
		}
		res.Release()
	}
}

// TestHierarchicalAllReduceMatchesSerial checks the two-level schedule over
// several group shapes, including singleton groups and one group spanning
// everything.
func TestHierarchicalAllReduceMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cases := []struct {
		n      int
		groups [][]int
	}{
		{1, [][]int{{0}}},
		{2, [][]int{{0}, {1}}},
		{4, [][]int{{0, 1}, {2, 3}}},
		{5, [][]int{{0, 1, 2}, {3, 4}}},
		{6, [][]int{{0, 1, 2, 3, 4, 5}}},
		{8, [][]int{{0, 3, 5}, {1, 2}, {4, 6, 7}}},
		{9, [][]int{{8, 0}, {1, 2, 3, 4}, {5}, {6, 7}}},
	}
	for _, tc := range cases {
		for _, op := range []ReduceOp{OpSum, OpAverage} {
			for _, dim := range []int{0, 1, 17, 260} {
				inputs := randomInputs(rng, tc.n, dim)
				want := serialSum(inputs, op)
				got := make([]tensor.Vector, tc.n)
				for r := range got {
					got[r] = inputs[r].Clone()
				}
				runSPMD(t, tc.n, func(m transport.Mesh) error {
					return HierarchicalAllReduce(m, 3, got[m.Rank()], op, tc.groups)
				})
				for r := range got {
					if j, ok := withinTol(got[r], want, 1e-12); !ok {
						t.Fatalf("groups=%v dim=%d op=%v rank=%d elem %d: got %v, want %v",
							tc.groups, dim, op, r, j, got[r][j], want[j])
					}
				}
				// All ranks identical bits.
				for r := 1; r < tc.n; r++ {
					for j := range got[0] {
						if math.Float64bits(got[r][j]) != math.Float64bits(got[0][j]) {
							t.Fatalf("groups=%v rank %d not bit-identical to rank 0", tc.groups, r)
						}
					}
				}
			}
		}
	}
}

// TestHierarchicalAllReduceBadGroups: malformed partitions are rejected on
// every rank before any traffic.
func TestHierarchicalAllReduceBadGroups(t *testing.T) {
	bad := [][][]int{
		{{0, 1}, {1, 2, 3}}, // duplicate
		{{0, 1}, {3}},       // missing rank 2
		{{0, 1, 2}, {3, 9}}, // out of range
		{{0, 1, 2, 3}, {}},  // empty group
	}
	for _, groups := range bad {
		groups := groups
		runSPMD(t, 4, func(m transport.Mesh) error {
			if err := HierarchicalAllReduce(m, 0, tensor.New(8), OpSum, groups); err == nil {
				t.Errorf("groups %v should be rejected", groups)
			}
			return nil
		})
	}
}

// TestRepeatedMixedAlgorithms runs different schedules back to back on one
// mesh to check no residual messages leak between them.
func TestRepeatedMixedAlgorithms(t *testing.T) {
	const n, dim = 5, 130
	net, err := transport.NewLocalNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	seq := []Algorithm{AlgoRing, AlgoTree, AlgoHalvingDoubling, AlgoTree, AlgoRing, AlgoHalvingDoubling}
	done := make(chan error, n)
	for _, m := range net.Endpoints() {
		m := m
		go func() {
			for it, algo := range seq {
				v := tensor.New(dim)
				v.Fill(float64(m.Rank() + 1))
				if err := AllReduceWith(m, int64(it), v, OpAverage, algo); err != nil {
					done <- err
					return
				}
				if want := float64(n+1) / 2; math.Abs(v[0]-want) > 1e-12 {
					t.Errorf("iter %d algo %v rank %d: got %v, want %v", it, algo, m.Rank(), v[0], want)
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
