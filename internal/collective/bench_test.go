package collective_test

import (
	"fmt"
	"testing"

	"repro/internal/collective"
	"repro/internal/tensor"
	"repro/internal/topology"
	"repro/internal/transport"
)

// runRanks runs one collective invocation per rank concurrently and fails the
// benchmark on any error.
func runRanks(b *testing.B, eps []transport.Mesh, fn func(m transport.Mesh) error) {
	b.Helper()
	done := make(chan error, len(eps))
	for _, m := range eps {
		m := m
		go func() { done <- fn(m) }()
	}
	for range eps {
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRingAllReduce sweeps vector size (1K–1M) and rank count (4/8/16)
// on the in-memory mesh. The 256K/n8 case is the acceptance gate tracked in
// BENCH_collective.json.
func BenchmarkRingAllReduce(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		for _, dim := range []int{1 << 10, 1 << 14, 1 << 18, 1 << 20} {
			b.Run(fmt.Sprintf("n%d/dim%d", n, dim), func(b *testing.B) {
				net, err := transport.NewLocalNetwork(n)
				if err != nil {
					b.Fatal(err)
				}
				defer func() { _ = net.Close() }()
				vecs := make([]tensor.Vector, n)
				for i := range vecs {
					vecs[i] = tensor.New(dim)
				}
				eps := net.Endpoints()
				b.SetBytes(int64(dim * 8))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					runRanks(b, eps, func(m transport.Mesh) error {
						return collective.RingAllReduce(m, int64(i), vecs[m.Rank()], collective.OpAverage)
					})
				}
			})
		}
	}
}

// BenchmarkPartialRingAllReduce measures the paper's partial collective
// (half the ranks contribute nulls) across the same sweep.
func BenchmarkPartialRingAllReduce(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		for _, dim := range []int{1 << 10, 1 << 18} {
			b.Run(fmt.Sprintf("n%d/dim%d", n, dim), func(b *testing.B) {
				net, err := transport.NewLocalNetwork(n)
				if err != nil {
					b.Fatal(err)
				}
				defer func() { _ = net.Close() }()
				vecs := make([]tensor.Vector, n)
				for i := range vecs {
					vecs[i] = tensor.New(dim)
				}
				eps := net.Endpoints()
				b.SetBytes(int64(dim * 8))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					runRanks(b, eps, func(m transport.Mesh) error {
						r := m.Rank()
						pr, err := collective.PartialRingAllReduce(m, int64(i), vecs[r], r%2 == 0)
						if err == nil {
							pr.Release()
						}
						return err
					})
				}
			})
		}
	}
}

// BenchmarkAllReduceAlgorithms sweeps every schedule (plus the auto
// selector) over the crossover-relevant sizes. The same grid backs the
// per-algorithm rows and crossover table in BENCH_collective.json via
// `rnabench -collective`.
func BenchmarkAllReduceAlgorithms(b *testing.B) {
	algos := []collective.Algorithm{
		collective.AlgoRing, collective.AlgoHalvingDoubling,
		collective.AlgoTree, collective.AlgoAuto,
	}
	for _, algo := range algos {
		for _, n := range []int{4, 8, 16} {
			for _, dim := range []int{1 << 10, 1 << 12, 1 << 16, 1 << 18} {
				algo := algo
				b.Run(fmt.Sprintf("%s/n%d/dim%d", algo, n, dim), func(b *testing.B) {
					net, err := transport.NewLocalNetwork(n)
					if err != nil {
						b.Fatal(err)
					}
					defer func() { _ = net.Close() }()
					vecs := make([]tensor.Vector, n)
					for i := range vecs {
						vecs[i] = tensor.New(dim)
					}
					eps := net.Endpoints()
					b.SetBytes(int64(dim * 8))
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						runRanks(b, eps, func(m transport.Mesh) error {
							return collective.AllReduceWith(m, int64(i), vecs[m.Rank()], collective.OpAverage, algo)
						})
					}
				})
			}
		}
	}
}

// BenchmarkHierarchicalAllReduce measures the two-level schedule with four
// groups of equal size against the flat ring at the same scale.
func BenchmarkHierarchicalAllReduce(b *testing.B) {
	for _, n := range []int{8, 16} {
		for _, dim := range []int{1 << 12, 1 << 18} {
			b.Run(fmt.Sprintf("n%d/dim%d", n, dim), func(b *testing.B) {
				groups := make([][]int, 4)
				for r := 0; r < n; r++ {
					groups[r%4] = append(groups[r%4], r)
				}
				net, err := transport.NewLocalNetwork(n)
				if err != nil {
					b.Fatal(err)
				}
				defer func() { _ = net.Close() }()
				vecs := make([]tensor.Vector, n)
				for i := range vecs {
					vecs[i] = tensor.New(dim)
				}
				eps := net.Endpoints()
				b.SetBytes(int64(dim * 8))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					runRanks(b, eps, func(m transport.Mesh) error {
						return collective.HierarchicalAllReduce(m, int64(i), vecs[m.Rank()], collective.OpAverage, groups)
					})
				}
			})
		}
	}
}

// BenchmarkMultiLevelCacheDelta measures the SubMesh-cache win: the same
// level tree executed through a pre-built engine (one construction per
// endpoint, the HierarchicalAllReduce/AlgoAuto steady state) versus
// rebuilding the engine — every per-level SubMesh — on each call, which is
// what the two-level path used to do per iteration.
func BenchmarkMultiLevelCacheDelta(b *testing.B) {
	const n, dim = 16, 1 << 12
	plan, err := topology.UniformPlan(n, []int{4})
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, rebuild bool) {
		net, err := transport.NewLocalNetwork(n)
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = net.Close() }()
		vecs := make([]tensor.Vector, n)
		for i := range vecs {
			vecs[i] = tensor.New(dim)
		}
		eps := net.Endpoints()
		engines := make([]*collective.MultiLevel, n)
		for i, m := range eps {
			if engines[i], err = collective.NewMultiLevel(m, plan); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(dim * 8))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runRanks(b, eps, func(m transport.Mesh) error {
				ml := engines[m.Rank()]
				if rebuild {
					var err error
					if ml, err = collective.NewMultiLevel(m, plan); err != nil {
						return err
					}
				}
				return ml.Run(int64(i), vecs[m.Rank()], collective.OpAverage)
			})
		}
	}
	b.Run("cached", func(b *testing.B) { run(b, false) })
	b.Run("rebuild", func(b *testing.B) { run(b, true) })
}
