package collective

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// α–β cost model behind the algorithm auto-selector.
//
// Each algorithm's critical path is msgs·α + bytes·β: msgs sequential
// message latencies plus the per-byte transfer/reduce cost of the bytes it
// moves. The (α, β) constants are PER ALGORITHM — the implementations have
// different per-step machinery (the ring pipelines and rotates buffers, the
// tree sends whole vectors through one root), so a single shared pair
// systematically mispredicts. The constants ship with defaults measured on
// the in-memory mesh and are re-fit for a deployment by Calibrate (exposed
// as `rnabench -calibrate`), whose output persists as JSON and reloads via
// LoadCalibration. All ranks must share one model: selection depends only
// on (rank count, message size), so a shared model keeps the SPMD ranks'
// choices consistent.

// AlgoCost holds one algorithm's fitted α–β constants.
type AlgoCost struct {
	// AlphaNs is the fixed cost per critical-path message in nanoseconds.
	AlphaNs float64 `json:"alpha_ns"`
	// BetaNsPerByte is the cost per critical-path byte in ns/byte.
	BetaNsPerByte float64 `json:"beta_ns_per_byte"`
}

// CostModel predicts AllReduce latency per algorithm.
type CostModel struct {
	Ring            AlgoCost `json:"ring"`
	HalvingDoubling AlgoCost `json:"halving_doubling"`
	Tree            AlgoCost `json:"tree"`
	// Links holds per-link-class constants for multi-level schedules:
	// Links[l] prices level l's traffic (level 0 = the fastest class, e.g.
	// intra-machine; the last entry repeats for deeper levels). Empty on
	// legacy calibrations — the Ring constants substitute, which collapses
	// level pricing to the uniform-fabric case.
	Links []AlgoCost `json:"links,omitempty"`
}

// linkCost returns the constants pricing traffic at plan level l.
func (c CostModel) linkCost(l int) AlgoCost {
	if len(c.Links) == 0 {
		return c.Ring
	}
	if l >= len(c.Links) {
		l = len(c.Links) - 1
	}
	return c.Links[l]
}

// DefaultCostModel returns constants fitted by `rnabench -calibrate` on the
// in-memory mesh of a commodity x86 host (the make collective-bench
// hardware). They are meant as a sane starting point; run
// `rnabench -calibrate` to fit your own fabric. Note the per-algorithm
// spread the shared-constant model would miss: the pipelined ring forwards
// pooled buffers without copying (low β, but α carries its per-step gate
// synchronization), halving-doubling pays a copy on every windowed send
// (highest β), and the tree does one contiguous add per hop (lowest α and
// β, but log-factor byte volume).
func DefaultCostModel() CostModel {
	return CostModel{
		Ring:            AlgoCost{AlphaNs: 6343, BetaNsPerByte: 0.94},
		HalvingDoubling: AlgoCost{AlphaNs: 5419, BetaNsPerByte: 2.02},
		Tree:            AlgoCost{AlphaNs: 3617, BetaNsPerByte: 0.43},
	}
}

// Critical-path shape of each schedule for n ranks and S payload bytes:
// message count and byte volume. These are the standard collective
// complexity terms; the fold-in pre/post phases of non-power-of-two
// halving-doubling add two full-size hops.
func ringShape(n int, bytes int64) (msgs float64, vol float64) {
	if n <= 1 {
		return 0, 0
	}
	if ringInlineEligible(n, int(bytes/8)) {
		// Small f64 tensors execute as the inline allgather (ring.go):
		// log₂N recursive-doubling rounds at power-of-two N, N−1 direct
		// exchanges otherwise, shipping (N−1)·S bytes per rank instead of
		// 2(N−1) chunked steps. Pricing the schedule that actually runs
		// keeps the selector honest in the latency-bound regime, where
		// the inline ring now beats the log-depth schedules.
		rounds := float64(n - 1)
		if n&(n-1) == 0 {
			rounds = float64(log2(n))
		}
		return rounds, float64(n-1) * float64(bytes)
	}
	steps := float64(2 * (n - 1))
	return steps, steps * float64(bytes/int64(n))
}

func halvingDoublingShape(n int, bytes int64) (msgs float64, vol float64) {
	if n <= 1 {
		return 0, 0
	}
	p := highestBit(n)
	msgs = 2 * float64(log2(p))
	vol = 2 * float64(bytes) * float64(p-1) / float64(p)
	if p != n {
		msgs += 2
		vol += 2 * float64(bytes)
	}
	return msgs, vol
}

func treeShape(n int, bytes int64) (msgs float64, vol float64) {
	if n <= 1 {
		return 0, 0
	}
	steps := float64(ceilLog2(n))
	return 2 * steps, 2 * steps * float64(bytes)
}

// PredictNs returns the modeled latency of one AllReduce in nanoseconds.
// AlgoAuto predicts the minimum over the concrete algorithms.
func (c CostModel) PredictNs(a Algorithm, n int, bytes int64) float64 {
	if n <= 1 {
		return 0
	}
	var msgs, vol float64
	var k AlgoCost
	switch a {
	case AlgoRing:
		msgs, vol = ringShape(n, bytes)
		k = c.Ring
	case AlgoHalvingDoubling:
		msgs, vol = halvingDoublingShape(n, bytes)
		k = c.HalvingDoubling
	case AlgoTree:
		msgs, vol = treeShape(n, bytes)
		k = c.Tree
	default: // AlgoAuto
		best := c.PredictNs(AlgoRing, n, bytes)
		if t := c.PredictNs(AlgoHalvingDoubling, n, bytes); t < best {
			best = t
		}
		if t := c.PredictNs(AlgoTree, n, bytes); t < best {
			best = t
		}
		return best
	}
	return msgs*k.AlphaNs + vol*k.BetaNsPerByte
}

// Select returns the cheapest concrete algorithm for an AllReduce of elems
// float64 elements across n ranks. Ties break toward the earlier entry of
// [halving-doubling, tree, ring], preferring the latency-optimal schedules
// when the model cannot distinguish them. The choice is a pure function of
// (n, elems) and the model, so SPMD ranks sharing a model always agree.
func (c CostModel) Select(n, elems int) Algorithm {
	return c.SelectWire(n, elems, tensor.F64)
}

// Wire-aware critical-path shapes. Compression applies to the distribution
// phase only (the reduction ships fp64), so each shape splits into a raw
// fp64 term and a wire-priced term. PredictWireNs delegates F64 to the
// plain shapes above, so uncompressed predictions — and therefore the
// existing selector behavior — are unchanged to the bit.

func ringShapeWire(n, elems int, wire tensor.Dtype) (msgs, vol float64) {
	if n <= 1 {
		return 0, 0
	}
	chunk := elems / n
	steps := float64(2 * (n - 1))
	scatter := float64(n-1) * float64(8*chunk)
	gather := float64(n-1) * float64(wire.WireBytes(chunk))
	return steps, scatter + gather
}

func halvingDoublingShapeWire(n, elems int, wire tensor.Dtype) (msgs, vol float64) {
	if n <= 1 {
		return 0, 0
	}
	p := highestBit(n)
	half := float64(elems) * float64(p-1) / float64(p) // per-phase gross elements
	msgs = float64(log2(p))
	vol = 8 * half // halving phase: fp64 partial sums
	if wire.PerElement() {
		msgs += float64(log2(p))
	} else {
		// Block-scaled dtypes send the doubling window as per-ownership
		// sub-messages: 1+2+…+2^(log2 p − 1) = p−1 across the phase.
		msgs += float64(p - 1)
	}
	vol += float64(wire.WireBytes(int(half))) // doubling phase: wire dtype
	if p != n {
		msgs += 2
		vol += 2 * 8 * float64(elems) // fold-in/out always fp64
	}
	return msgs, vol
}

func treeShapeWire(n, elems int, wire tensor.Dtype) (msgs, vol float64) {
	if n <= 1 {
		return 0, 0
	}
	steps := float64(ceilLog2(n))
	return 2 * steps, steps * (float64(8*elems) + float64(wire.WireBytes(elems)))
}

// PredictWireNs returns the modeled latency of one AllReduce of elems
// elements whose distribution phase ships the given wire dtype. For
// tensor.F64 it agrees exactly with PredictNs. AlgoAuto predicts the
// minimum over the concrete algorithms.
func (c CostModel) PredictWireNs(a Algorithm, n, elems int, wire tensor.Dtype) float64 {
	if n <= 1 {
		return 0
	}
	if wire == tensor.F64 {
		return c.PredictNs(a, n, int64(elems)*8)
	}
	var msgs, vol float64
	var k AlgoCost
	switch a {
	case AlgoRing:
		msgs, vol = ringShapeWire(n, elems, wire)
		k = c.Ring
	case AlgoHalvingDoubling:
		msgs, vol = halvingDoublingShapeWire(n, elems, wire)
		k = c.HalvingDoubling
	case AlgoTree:
		msgs, vol = treeShapeWire(n, elems, wire)
		k = c.Tree
	default: // AlgoAuto
		best := c.PredictWireNs(AlgoRing, n, elems, wire)
		if t := c.PredictWireNs(AlgoHalvingDoubling, n, elems, wire); t < best {
			best = t
		}
		if t := c.PredictWireNs(AlgoTree, n, elems, wire); t < best {
			best = t
		}
		return best
	}
	return msgs*k.AlphaNs + vol*k.BetaNsPerByte
}

// SelectWire is Select pricing the given distribution-phase wire dtype —
// compression shifts the ring↔log-depth crossover (narrower wire shrinks
// the ring's bandwidth advantage; I8 additionally inflates the doubling
// phase's message count), so the selector must see it.
func (c CostModel) SelectWire(n, elems int, wire tensor.Dtype) Algorithm {
	if n <= 1 {
		return AlgoRing
	}
	best, bestT := AlgoHalvingDoubling, c.PredictWireNs(AlgoHalvingDoubling, n, elems, wire)
	if t := c.PredictWireNs(AlgoTree, n, elems, wire); t < bestT {
		best, bestT = AlgoTree, t
	}
	if t := c.PredictWireNs(AlgoRing, n, elems, wire); t < bestT {
		best = AlgoRing
	}
	return best
}

// Multi-level pricing. A level tree of group sizes g_0 … g_top costs, on
// its critical path: a g_l-rank sum AllReduce per ascending level, the top
// group's shared scale, and a g_l-wide binomial broadcast per descending
// level (the top level has no broadcast — its AllReduce already leaves all
// members finished).
//
// The per-link term is what makes the structure decision topology-aware:
// level l's traffic is priced with the class-l link constants (Links[l]),
// because a plan matched to the fabric keeps level-l exchanges on class-l
// links. A TERMINAL group — the top of a structure, including the flat
// single-group structure — spans ranks from every island below it, so its
// hops traverse the slowest class present; it is priced with the last Links
// entry. That asymmetry is the honest physics of hierarchy: on a uniform
// fabric (Links empty or single-class) splitting only adds work and the
// search stays flat, while on a fabric whose slow class has expensive hops
// the split pays a few fast-class levels to shrink the number of slow-class
// hops from O(log n) (or O(n) for the ring) to O(log G).

// minMultiLevelRanks is the rank count below which SelectLevels always
// answers flat: the crossover on any plausible fabric sits well above
// this, and staying flat keeps small-job behavior (and the existing test
// matrix) untouched.
const minMultiLevelRanks = 64

// levelSplitCandidates are the branching factors the level-structure search
// considers at each level.
var levelSplitCandidates = [...]int{2, 4, 8, 16, 32, 64}

// maxSelectLevels bounds the structure search depth (mirrors the planner's
// topology.maxPlanLevels budget: levels below the top).
const maxSelectLevels = 7

// slowestLink returns the constants of the slowest (last) link class.
func (c CostModel) slowestLink() AlgoCost {
	if len(c.Links) == 0 {
		return c.Ring
	}
	return c.Links[len(c.Links)-1]
}

// allReduceShapeBest prices a g-rank sum AllReduce with link constants k,
// taking the cheapest of the three schedule shapes — mirroring the AlgoAuto
// dispatch the multi-level engine runs within each level.
func allReduceShapeBest(g int, bytes int64, k AlgoCost) float64 {
	if g <= 1 {
		return 0
	}
	shapes := [3]func(int, int64) (float64, float64){ringShape, halvingDoublingShape, treeShape}
	best := math.Inf(1)
	for _, shape := range shapes {
		msgs, vol := shape(g, bytes)
		if t := msgs*k.AlphaNs + vol*k.BetaNsPerByte; t < best {
			best = t
		}
	}
	return best
}

// PredictLevelsNs prices a multi-level AllReduce of elems elements whose
// per-level max group sizes are sizes (see topology.Plan.LevelSizes). The
// descent broadcasts ship the given wire dtype; the ascent is fp64. A
// single-entry sizes is the flat schedule, priced at the slowest class.
func (c CostModel) PredictLevelsNs(sizes []int, elems int, wire tensor.Dtype) float64 {
	bytes := int64(elems) * 8
	var total float64
	for l, g := range sizes {
		if g <= 1 {
			continue
		}
		k := c.linkCost(l)
		if l == len(sizes)-1 {
			k = c.slowestLink()
		}
		total += allReduceShapeBest(g, bytes, k)
		if l < len(sizes)-1 {
			// Descent broadcast at this level: ceil(log2 g) sequential hops
			// of the full wire-encoded vector on class-l links.
			hops := float64(ceilLog2(g))
			total += hops*k.AlphaNs + hops*float64(wire.WireBytes(elems))*k.BetaNsPerByte
		}
	}
	return total
}

// SelectLevels returns the branching factors (topology.UniformPlan input)
// of the cheapest level structure for an AllReduce of elems elements across
// n ranks, or nil when the flat single-level structure wins (or n is below
// minMultiLevelRanks). Like SelectWire, the answer is a pure function of
// (n, elems, wire) and the model, so SPMD ranks agree on both the branch
// and the plan.
func (c CostModel) SelectLevels(n, elems int, wire tensor.Dtype) []int {
	if n < minMultiLevelRanks {
		return nil
	}
	memo := make(map[[2]int]levelChoice)
	return c.bestSplit(n, elems, wire, 0, memo).branches
}

type levelChoice struct {
	cost     float64
	branches []int
}

// bestSplit returns the cheapest level structure for n participants at tree
// level `level`: either stop (single terminal group of n, slowest-class
// links) or split by some branching factor (class-`level` links for the
// groups and their descent broadcast, then recurse on the leaders).
func (c CostModel) bestSplit(n, elems int, wire tensor.Dtype, level int, memo map[[2]int]levelChoice) levelChoice {
	key := [2]int{n, level}
	if v, ok := memo[key]; ok {
		return v
	}
	bytes := int64(elems) * 8
	best := levelChoice{cost: allReduceShapeBest(n, bytes, c.slowestLink())}
	if level < maxSelectLevels {
		k := c.linkCost(level)
		for _, b := range levelSplitCandidates {
			if b >= n {
				continue
			}
			nGroups := (n + b - 1) / b
			maxGroup := (n + nGroups - 1) / nGroups
			hops := float64(ceilLog2(maxGroup))
			levelCost := allReduceShapeBest(maxGroup, bytes, k) +
				hops*k.AlphaNs + hops*float64(wire.WireBytes(elems))*k.BetaNsPerByte
			rest := c.bestSplit(nGroups, elems, wire, level+1, memo)
			if total := levelCost + rest.cost; total < best.cost {
				best = levelChoice{cost: total, branches: append([]int{b}, rest.branches...)}
			}
		}
	}
	memo[key] = best
	return best
}

// log2 returns log2(p) for a power of two p ≥ 1.
func log2(p int) int {
	l := 0
	for p > 1 {
		p >>= 1
		l++
	}
	return l
}

// ceilLog2 returns ⌈log2 n⌉ for n ≥ 1.
func ceilLog2(n int) int {
	l := 0
	for (1 << l) < n {
		l++
	}
	return l
}

// The active model drives AllReduce's auto selection. It is process-global:
// one training job runs one fabric.
var (
	costModelMu sync.RWMutex
	activeModel = DefaultCostModel()
)

// ActiveCostModel returns the model the auto selector currently uses.
func ActiveCostModel() CostModel {
	costModelMu.RLock()
	defer costModelMu.RUnlock()
	return activeModel
}

// SetCostModel installs m as the auto selector's model (e.g. after loading
// a calibration file). All ranks of a job must install the same model.
func SetCostModel(m CostModel) {
	costModelMu.Lock()
	activeModel = m
	costModelMu.Unlock()
}

// SelectAlgorithm picks the algorithm the active model predicts fastest for
// an AllReduce of elems elements across n ranks.
func SelectAlgorithm(n, elems int) Algorithm {
	return ActiveCostModel().Select(n, elems)
}

// SelectAlgorithmWire is SelectAlgorithm pricing a compressed distribution
// phase.
func SelectAlgorithmWire(n, elems int, wire tensor.Dtype) Algorithm {
	return ActiveCostModel().SelectWire(n, elems, wire)
}

// Half-collective pricing for the owner-computes sharded update path
// (ReduceScatter / AllGather in shard.go). Both run the direct weighted
// exchange: each rank sends n−1 serialized messages, so the message term
// matches one half of the skew exchange. The reduction half always ships
// fp64; the gather half ships the parameter allgather's wire dtype.

// PredictReduceScatterNs prices one direct-exchange ReduceScatter of elems
// fp64 elements across n ranks under (near-)uniform ownership: each rank
// scatters the (n−1)/n of the vector it does not own, behind n−1 message
// latencies.
func (c CostModel) PredictReduceScatterNs(n, elems int) float64 {
	if n <= 1 {
		return 0
	}
	k := c.Ring
	msgs := float64(n - 1)
	vol := float64(n-1) / float64(n) * 8 * float64(elems)
	return msgs*k.AlphaNs + vol*k.BetaNsPerByte
}

// PredictAllGatherWireNs prices one direct-exchange AllGather of elems
// elements across n ranks with the given wire dtype: each rank ships its
// owned chunk (≈ elems/n, wire-encoded) to the n−1 peers.
func (c CostModel) PredictAllGatherWireNs(n, elems int, wire tensor.Dtype) float64 {
	if n <= 1 {
		return 0
	}
	k := c.Ring
	msgs := float64(n - 1)
	vol := float64(n-1) * float64(wire.WireBytes(elems/n))
	return msgs*k.AlphaNs + vol*k.BetaNsPerByte
}

// Skew term. On a heterogeneous fabric the equal schedules are bound by the
// slowest rank RELAYING (nearly) the whole tensor, while the weighted
// direct exchange (skewAllReduce) lets a slow rank serve only its
// proportional share. Both predictions below take the agreed mean-
// normalized weight vector as the rate proxy, so the decision is a pure
// function of SPMD-shared inputs — every rank of a skew engine branches the
// same way.

// skewMinWeight returns the smallest (slowest) normalized weight.
func skewMinWeight(weights []float64) float64 {
	min := weights[0]
	for _, w := range weights[1:] {
		if w < min {
			min = w
		}
	}
	return min
}

// PredictSkewWireNs prices the weighted direct exchange for elems f64
// elements over per-rank relative rates `weights` (mean-normalized; chunk
// shares are taken proportional to them, matching the partitioner). Rank
// r's critical path is its own serialized traffic — scatter out (B − b_r)
// fp64 bytes plus allgather out (n−1)·b_r wire bytes over a link running at
// w_r times the calibrated fabric speed — and the collective finishes when
// the slowest rank does.
func (c CostModel) PredictSkewWireNs(elems int, wire tensor.Dtype, weights []float64) float64 {
	n := len(weights)
	if n <= 1 {
		return 0
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	if !(sum > 0) {
		return math.Inf(1)
	}
	msgs := float64(2 * (n - 1))
	k := c.Ring
	var worst float64
	for _, w := range weights {
		share := w / sum
		chunk := int(float64(elems) * share)
		scatterB := float64(8 * (elems - chunk))
		gatherB := float64(n-1) * float64(wire.WireBytes(chunk))
		t := (msgs*k.AlphaNs + (scatterB+gatherB)*k.BetaNsPerByte) / w
		if t > worst {
			worst = t
		}
	}
	return worst
}

// PredictRingSkewWireNs prices the EQUAL-chunk ring on the same skewed
// fabric: every rank relays the same byte volume, so the slowest rank's
// link (the smallest weight) sets the pace for the whole schedule. For
// uniform weights this reduces exactly to PredictWireNs(AlgoRing, …).
func (c CostModel) PredictRingSkewWireNs(n, elems int, wire tensor.Dtype, weights []float64) float64 {
	if n <= 1 {
		return 0
	}
	return c.PredictWireNs(AlgoRing, n, elems, wire) / skewMinWeight(weights)
}

// SkewWins reports whether the weighted direct exchange is predicted to
// beat the equal-chunk ring for this (size, wire, fabric) point. The 1.1×
// margin keeps the equal ring — with its pooled rotating buffers, segment
// pipeline and inline fast path — in charge unless unequal chunking is
// predicted to pay for the schedule switch; in particular tiny tensors stay
// on the latency-optimal inline path no matter how skewed the fabric is.
func (c CostModel) SkewWins(elems int, wire tensor.Dtype, weights []float64) bool {
	n := len(weights)
	if n <= 1 || elems < n {
		return false
	}
	skewed := c.PredictSkewWireNs(elems, wire, weights)
	equal := c.PredictRingSkewWireNs(n, elems, wire, weights)
	return skewed*1.1 < equal
}

// Calibration is the persisted form of a fitted cost model.
type Calibration struct {
	// Model holds the fitted constants.
	Model CostModel `json:"model"`
	// Ranks and the probe dims record the calibration conditions.
	Ranks    int `json:"ranks"`
	SmallDim int `json:"small_dim"`
	LargeDim int `json:"large_dim"`
	// Rounds is the number of timed collectives averaged per probe.
	Rounds int `json:"rounds"`
	// GoMaxProcs and NumCPU fingerprint the host the constants were fitted
	// on. The α–β fit is dominated by scheduler and memory behavior, so a
	// calibration file copied to (or left behind on) a differently shaped
	// host is silently wrong — consumers compare the fingerprint against
	// HostFingerprint() and fall back to the built-in defaults on mismatch.
	// Zero values mark legacy files written before fingerprinting.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	NumCPU     int `json:"num_cpu,omitempty"`
}

// HostFingerprint returns this process's calibration fingerprint.
func HostFingerprint() (gomaxprocs, numCPU int) {
	return runtime.GOMAXPROCS(0), runtime.NumCPU()
}

// FingerprintMatches reports whether the calibration was fitted on a host
// shaped like this one. Legacy calibrations without a fingerprint (zero
// fields) are accepted.
func (c Calibration) FingerprintMatches() bool {
	if c.GoMaxProcs == 0 && c.NumCPU == 0 {
		return true
	}
	gmp, ncpu := HostFingerprint()
	return c.GoMaxProcs == gmp && c.NumCPU == ncpu
}

// SaveCalibration writes c as indented JSON to path.
func (c Calibration) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// LoadCalibration reads a calibration file and returns it. It does NOT
// install the model; call SetCostModel(cal.Model) to activate it.
func LoadCalibration(path string) (Calibration, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Calibration{}, err
	}
	var c Calibration
	if err := json.Unmarshal(data, &c); err != nil {
		return Calibration{}, fmt.Errorf("collective: parse calibration %s: %w", path, err)
	}
	return c, nil
}

// Calibrate fits per-algorithm α–β constants on an in-memory mesh of
// `ranks` endpoints by timing each algorithm at a latency-dominated probe
// size (smallDim) and a bandwidth-dominated one (largeDim), then solving
// the two-point linear system of the critical-path shape. rounds timed
// collectives are averaged per probe (after a warmup round). Zero
// arguments select defaults (16 ranks, 1024/65536 dims, 30 rounds): the
// probe dims bracket the ring↔log-depth crossover region, where the fit
// matters — a two-point fit is exact at its probe sizes and interpolates
// between them, so probing far outside the decision region (e.g. at 1M
// elements) would spend the model's two degrees of freedom where no
// selection decision ever changes.
func Calibrate(ranks, smallDim, largeDim, rounds int) (Calibration, error) {
	if ranks < 2 {
		ranks = 16
	}
	if smallDim <= 0 {
		smallDim = 1 << 10
	}
	if largeDim <= smallDim {
		largeDim = 1 << 16
	}
	if rounds < 1 {
		rounds = 30
	}
	net, err := transport.NewLocalNetwork(ranks)
	if err != nil {
		return Calibration{}, err
	}
	defer func() { _ = net.Close() }()
	eps := net.Endpoints()

	probe := func(algo Algorithm, dim int) (float64, error) {
		vecs := make([]tensor.Vector, ranks)
		for i := range vecs {
			vecs[i] = tensor.New(dim)
			vecs[i].Fill(float64(i + 1))
		}
		run := func(iter int64) error {
			done := make(chan error, ranks)
			for _, m := range eps {
				m := m
				go func() { done <- AllReduceWith(m, iter, vecs[m.Rank()], OpSum, algo) }()
			}
			var first error
			for range eps {
				if err := <-done; err != nil && first == nil {
					first = err
				}
			}
			return first
		}
		if err := run(0); err != nil { // warmup
			return 0, err
		}
		start := time.Now()
		for it := 1; it <= rounds; it++ {
			if err := run(int64(it)); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(rounds), nil
	}

	fit := func(algo Algorithm, shape func(int, int64) (float64, float64)) (AlgoCost, error) {
		// The two-point fit solves t = msgs·α + vol·β assuming both probes
		// run the same schedule shape. The ring dispatches to the inline
		// allgather inside its small envelope — a different shape with a
		// different msgs term — so its small probe must sit just past the
		// envelope to keep both points on the pipelined schedule. (Fitting
		// across the two shapes attributes the inline probe's time to
		// log₂N messages and inflates α ~20×, which then mispredicts the
		// pipelined ring at every bandwidth-bound size.)
		probeSmall := smallDim
		for algo == AlgoRing && ringInlineEligible(ranks, probeSmall) {
			probeSmall *= 2
		}
		tSmall, err := probe(algo, probeSmall)
		if err != nil {
			return AlgoCost{}, fmt.Errorf("calibrate %s small: %w", algo, err)
		}
		tLarge, err := probe(algo, largeDim)
		if err != nil {
			return AlgoCost{}, fmt.Errorf("calibrate %s large: %w", algo, err)
		}
		msgsS, volS := shape(ranks, int64(probeSmall)*8)
		_, volL := shape(ranks, int64(largeDim)*8)
		// Two-point fit: t = msgs·α + vol·β. The shapes share the msgs
		// term when msgsS == msgsL (all three do at fixed n), so β falls
		// out of the difference and α from the small probe.
		beta := (tLarge - tSmall) / (volL - volS)
		if beta < 0 {
			beta = 0
		}
		alpha := (tSmall - volS*beta) / msgsS
		if alpha < 1 {
			alpha = 1 // keep predictions ordered even on noisy probes
		}
		return AlgoCost{AlphaNs: alpha, BetaNsPerByte: beta}, nil
	}

	var cal Calibration
	cal.Ranks, cal.SmallDim, cal.LargeDim, cal.Rounds = ranks, smallDim, largeDim, rounds
	cal.GoMaxProcs, cal.NumCPU = HostFingerprint()
	if cal.Model.Ring, err = fit(AlgoRing, ringShape); err != nil {
		return Calibration{}, err
	}
	if cal.Model.HalvingDoubling, err = fit(AlgoHalvingDoubling, halvingDoublingShape); err != nil {
		return Calibration{}, err
	}
	if cal.Model.Tree, err = fit(AlgoTree, treeShape); err != nil {
		return Calibration{}, err
	}

	// Link-class probes for the multi-level selector. Level 0 is probed as
	// a ring over a contiguous rank block (the pattern a topology planner
	// groups onto the fastest links — same machine, same switch), level 1
	// as a ring over maximally strided ranks (the cross-group leader
	// pattern). On the in-memory mesh both probes traverse one fabric and
	// fit near-equal constants; on a deployment whose transport maps rank
	// distance to link class, the two fits diverge and the level search
	// starts preferring plans that keep bulk bytes on the close links.
	probeLinks := func(members []int, dim int) (float64, error) {
		subs := make([]*transport.SubMesh, len(members))
		for i, r := range members {
			s, err := transport.NewSubMesh(eps[r], members)
			if err != nil {
				return 0, err
			}
			subs[i] = s
		}
		vecs := make([]tensor.Vector, len(members))
		for i := range vecs {
			vecs[i] = tensor.New(dim)
			vecs[i].Fill(float64(i + 1))
		}
		run := func(iter int64) error {
			done := make(chan error, len(subs))
			for i, s := range subs {
				i, s := i, s
				go func() { done <- RingAllReduce(s, iter, vecs[i], OpSum) }()
			}
			var first error
			for range subs {
				if err := <-done; err != nil && first == nil {
					first = err
				}
			}
			return first
		}
		if err := run(0); err != nil {
			return 0, err
		}
		start := time.Now()
		for it := 1; it <= rounds; it++ {
			if err := run(int64(it)); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(rounds), nil
	}
	fitLinks := func(members []int) (AlgoCost, error) {
		// Same shape constraint as fit: keep the small probe past the
		// inline envelope so both points run the pipelined ring.
		probeSmall := smallDim
		for ringInlineEligible(len(members), probeSmall) {
			probeSmall *= 2
		}
		tSmall, err := probeLinks(members, probeSmall)
		if err != nil {
			return AlgoCost{}, err
		}
		tLarge, err := probeLinks(members, largeDim)
		if err != nil {
			return AlgoCost{}, err
		}
		msgsS, volS := ringShape(len(members), int64(probeSmall)*8)
		_, volL := ringShape(len(members), int64(largeDim)*8)
		beta := (tLarge - tSmall) / (volL - volS)
		if beta < 0 {
			beta = 0
		}
		alpha := (tSmall - volS*beta) / msgsS
		if alpha < 1 {
			alpha = 1
		}
		return AlgoCost{AlphaNs: alpha, BetaNsPerByte: beta}, nil
	}
	if ranks >= 8 {
		probeSize := 4
		near := make([]int, probeSize)
		far := make([]int, probeSize)
		stride := ranks / probeSize
		for i := 0; i < probeSize; i++ {
			near[i] = i
			far[i] = i * stride
		}
		intra, err := fitLinks(near)
		if err != nil {
			return Calibration{}, fmt.Errorf("calibrate link class 0: %w", err)
		}
		inter, err := fitLinks(far)
		if err != nil {
			return Calibration{}, fmt.Errorf("calibrate link class 1: %w", err)
		}
		cal.Model.Links = []AlgoCost{intra, inter}
	}
	return cal, nil
}
