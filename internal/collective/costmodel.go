package collective

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// α–β cost model behind the algorithm auto-selector.
//
// Each algorithm's critical path is msgs·α + bytes·β: msgs sequential
// message latencies plus the per-byte transfer/reduce cost of the bytes it
// moves. The (α, β) constants are PER ALGORITHM — the implementations have
// different per-step machinery (the ring pipelines and rotates buffers, the
// tree sends whole vectors through one root), so a single shared pair
// systematically mispredicts. The constants ship with defaults measured on
// the in-memory mesh and are re-fit for a deployment by Calibrate (exposed
// as `rnabench -calibrate`), whose output persists as JSON and reloads via
// LoadCalibration. All ranks must share one model: selection depends only
// on (rank count, message size), so a shared model keeps the SPMD ranks'
// choices consistent.

// AlgoCost holds one algorithm's fitted α–β constants.
type AlgoCost struct {
	// AlphaNs is the fixed cost per critical-path message in nanoseconds.
	AlphaNs float64 `json:"alpha_ns"`
	// BetaNsPerByte is the cost per critical-path byte in ns/byte.
	BetaNsPerByte float64 `json:"beta_ns_per_byte"`
}

// CostModel predicts AllReduce latency per algorithm.
type CostModel struct {
	Ring            AlgoCost `json:"ring"`
	HalvingDoubling AlgoCost `json:"halving_doubling"`
	Tree            AlgoCost `json:"tree"`
}

// DefaultCostModel returns constants fitted by `rnabench -calibrate` on the
// in-memory mesh of a commodity x86 host (the make collective-bench
// hardware). They are meant as a sane starting point; run
// `rnabench -calibrate` to fit your own fabric. Note the per-algorithm
// spread the shared-constant model would miss: the pipelined ring forwards
// pooled buffers without copying (low β, but α carries its per-step gate
// synchronization), halving-doubling pays a copy on every windowed send
// (highest β), and the tree does one contiguous add per hop (lowest α and
// β, but log-factor byte volume).
func DefaultCostModel() CostModel {
	return CostModel{
		Ring:            AlgoCost{AlphaNs: 6343, BetaNsPerByte: 0.94},
		HalvingDoubling: AlgoCost{AlphaNs: 5419, BetaNsPerByte: 2.02},
		Tree:            AlgoCost{AlphaNs: 3617, BetaNsPerByte: 0.43},
	}
}

// Critical-path shape of each schedule for n ranks and S payload bytes:
// message count and byte volume. These are the standard collective
// complexity terms; the fold-in pre/post phases of non-power-of-two
// halving-doubling add two full-size hops.
func ringShape(n int, bytes int64) (msgs float64, vol float64) {
	if n <= 1 {
		return 0, 0
	}
	steps := float64(2 * (n - 1))
	return steps, steps * float64(bytes/int64(n))
}

func halvingDoublingShape(n int, bytes int64) (msgs float64, vol float64) {
	if n <= 1 {
		return 0, 0
	}
	p := highestBit(n)
	msgs = 2 * float64(log2(p))
	vol = 2 * float64(bytes) * float64(p-1) / float64(p)
	if p != n {
		msgs += 2
		vol += 2 * float64(bytes)
	}
	return msgs, vol
}

func treeShape(n int, bytes int64) (msgs float64, vol float64) {
	if n <= 1 {
		return 0, 0
	}
	steps := float64(ceilLog2(n))
	return 2 * steps, 2 * steps * float64(bytes)
}

// PredictNs returns the modeled latency of one AllReduce in nanoseconds.
// AlgoAuto predicts the minimum over the concrete algorithms.
func (c CostModel) PredictNs(a Algorithm, n int, bytes int64) float64 {
	if n <= 1 {
		return 0
	}
	var msgs, vol float64
	var k AlgoCost
	switch a {
	case AlgoRing:
		msgs, vol = ringShape(n, bytes)
		k = c.Ring
	case AlgoHalvingDoubling:
		msgs, vol = halvingDoublingShape(n, bytes)
		k = c.HalvingDoubling
	case AlgoTree:
		msgs, vol = treeShape(n, bytes)
		k = c.Tree
	default: // AlgoAuto
		best := c.PredictNs(AlgoRing, n, bytes)
		if t := c.PredictNs(AlgoHalvingDoubling, n, bytes); t < best {
			best = t
		}
		if t := c.PredictNs(AlgoTree, n, bytes); t < best {
			best = t
		}
		return best
	}
	return msgs*k.AlphaNs + vol*k.BetaNsPerByte
}

// Select returns the cheapest concrete algorithm for an AllReduce of elems
// float64 elements across n ranks. Ties break toward the earlier entry of
// [halving-doubling, tree, ring], preferring the latency-optimal schedules
// when the model cannot distinguish them. The choice is a pure function of
// (n, elems) and the model, so SPMD ranks sharing a model always agree.
func (c CostModel) Select(n, elems int) Algorithm {
	return c.SelectWire(n, elems, tensor.F64)
}

// Wire-aware critical-path shapes. Compression applies to the distribution
// phase only (the reduction ships fp64), so each shape splits into a raw
// fp64 term and a wire-priced term. PredictWireNs delegates F64 to the
// plain shapes above, so uncompressed predictions — and therefore the
// existing selector behavior — are unchanged to the bit.

func ringShapeWire(n, elems int, wire tensor.Dtype) (msgs, vol float64) {
	if n <= 1 {
		return 0, 0
	}
	chunk := elems / n
	steps := float64(2 * (n - 1))
	scatter := float64(n-1) * float64(8*chunk)
	gather := float64(n-1) * float64(wire.WireBytes(chunk))
	return steps, scatter + gather
}

func halvingDoublingShapeWire(n, elems int, wire tensor.Dtype) (msgs, vol float64) {
	if n <= 1 {
		return 0, 0
	}
	p := highestBit(n)
	half := float64(elems) * float64(p-1) / float64(p) // per-phase gross elements
	msgs = float64(log2(p))
	vol = 8 * half // halving phase: fp64 partial sums
	if wire.PerElement() {
		msgs += float64(log2(p))
	} else {
		// Block-scaled dtypes send the doubling window as per-ownership
		// sub-messages: 1+2+…+2^(log2 p − 1) = p−1 across the phase.
		msgs += float64(p - 1)
	}
	vol += float64(wire.WireBytes(int(half))) // doubling phase: wire dtype
	if p != n {
		msgs += 2
		vol += 2 * 8 * float64(elems) // fold-in/out always fp64
	}
	return msgs, vol
}

func treeShapeWire(n, elems int, wire tensor.Dtype) (msgs, vol float64) {
	if n <= 1 {
		return 0, 0
	}
	steps := float64(ceilLog2(n))
	return 2 * steps, steps * (float64(8*elems) + float64(wire.WireBytes(elems)))
}

// PredictWireNs returns the modeled latency of one AllReduce of elems
// elements whose distribution phase ships the given wire dtype. For
// tensor.F64 it agrees exactly with PredictNs. AlgoAuto predicts the
// minimum over the concrete algorithms.
func (c CostModel) PredictWireNs(a Algorithm, n, elems int, wire tensor.Dtype) float64 {
	if n <= 1 {
		return 0
	}
	if wire == tensor.F64 {
		return c.PredictNs(a, n, int64(elems)*8)
	}
	var msgs, vol float64
	var k AlgoCost
	switch a {
	case AlgoRing:
		msgs, vol = ringShapeWire(n, elems, wire)
		k = c.Ring
	case AlgoHalvingDoubling:
		msgs, vol = halvingDoublingShapeWire(n, elems, wire)
		k = c.HalvingDoubling
	case AlgoTree:
		msgs, vol = treeShapeWire(n, elems, wire)
		k = c.Tree
	default: // AlgoAuto
		best := c.PredictWireNs(AlgoRing, n, elems, wire)
		if t := c.PredictWireNs(AlgoHalvingDoubling, n, elems, wire); t < best {
			best = t
		}
		if t := c.PredictWireNs(AlgoTree, n, elems, wire); t < best {
			best = t
		}
		return best
	}
	return msgs*k.AlphaNs + vol*k.BetaNsPerByte
}

// SelectWire is Select pricing the given distribution-phase wire dtype —
// compression shifts the ring↔log-depth crossover (narrower wire shrinks
// the ring's bandwidth advantage; I8 additionally inflates the doubling
// phase's message count), so the selector must see it.
func (c CostModel) SelectWire(n, elems int, wire tensor.Dtype) Algorithm {
	if n <= 1 {
		return AlgoRing
	}
	best, bestT := AlgoHalvingDoubling, c.PredictWireNs(AlgoHalvingDoubling, n, elems, wire)
	if t := c.PredictWireNs(AlgoTree, n, elems, wire); t < bestT {
		best, bestT = AlgoTree, t
	}
	if t := c.PredictWireNs(AlgoRing, n, elems, wire); t < bestT {
		best = AlgoRing
	}
	return best
}

// log2 returns log2(p) for a power of two p ≥ 1.
func log2(p int) int {
	l := 0
	for p > 1 {
		p >>= 1
		l++
	}
	return l
}

// ceilLog2 returns ⌈log2 n⌉ for n ≥ 1.
func ceilLog2(n int) int {
	l := 0
	for (1 << l) < n {
		l++
	}
	return l
}

// The active model drives AllReduce's auto selection. It is process-global:
// one training job runs one fabric.
var (
	costModelMu sync.RWMutex
	activeModel = DefaultCostModel()
)

// ActiveCostModel returns the model the auto selector currently uses.
func ActiveCostModel() CostModel {
	costModelMu.RLock()
	defer costModelMu.RUnlock()
	return activeModel
}

// SetCostModel installs m as the auto selector's model (e.g. after loading
// a calibration file). All ranks of a job must install the same model.
func SetCostModel(m CostModel) {
	costModelMu.Lock()
	activeModel = m
	costModelMu.Unlock()
}

// SelectAlgorithm picks the algorithm the active model predicts fastest for
// an AllReduce of elems elements across n ranks.
func SelectAlgorithm(n, elems int) Algorithm {
	return ActiveCostModel().Select(n, elems)
}

// SelectAlgorithmWire is SelectAlgorithm pricing a compressed distribution
// phase.
func SelectAlgorithmWire(n, elems int, wire tensor.Dtype) Algorithm {
	return ActiveCostModel().SelectWire(n, elems, wire)
}

// Calibration is the persisted form of a fitted cost model.
type Calibration struct {
	// Model holds the fitted constants.
	Model CostModel `json:"model"`
	// Ranks and the probe dims record the calibration conditions.
	Ranks    int `json:"ranks"`
	SmallDim int `json:"small_dim"`
	LargeDim int `json:"large_dim"`
	// Rounds is the number of timed collectives averaged per probe.
	Rounds int `json:"rounds"`
	// GoMaxProcs and NumCPU fingerprint the host the constants were fitted
	// on. The α–β fit is dominated by scheduler and memory behavior, so a
	// calibration file copied to (or left behind on) a differently shaped
	// host is silently wrong — consumers compare the fingerprint against
	// HostFingerprint() and fall back to the built-in defaults on mismatch.
	// Zero values mark legacy files written before fingerprinting.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	NumCPU     int `json:"num_cpu,omitempty"`
}

// HostFingerprint returns this process's calibration fingerprint.
func HostFingerprint() (gomaxprocs, numCPU int) {
	return runtime.GOMAXPROCS(0), runtime.NumCPU()
}

// FingerprintMatches reports whether the calibration was fitted on a host
// shaped like this one. Legacy calibrations without a fingerprint (zero
// fields) are accepted.
func (c Calibration) FingerprintMatches() bool {
	if c.GoMaxProcs == 0 && c.NumCPU == 0 {
		return true
	}
	gmp, ncpu := HostFingerprint()
	return c.GoMaxProcs == gmp && c.NumCPU == ncpu
}

// SaveCalibration writes c as indented JSON to path.
func (c Calibration) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// LoadCalibration reads a calibration file and returns it. It does NOT
// install the model; call SetCostModel(cal.Model) to activate it.
func LoadCalibration(path string) (Calibration, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Calibration{}, err
	}
	var c Calibration
	if err := json.Unmarshal(data, &c); err != nil {
		return Calibration{}, fmt.Errorf("collective: parse calibration %s: %w", path, err)
	}
	return c, nil
}

// Calibrate fits per-algorithm α–β constants on an in-memory mesh of
// `ranks` endpoints by timing each algorithm at a latency-dominated probe
// size (smallDim) and a bandwidth-dominated one (largeDim), then solving
// the two-point linear system of the critical-path shape. rounds timed
// collectives are averaged per probe (after a warmup round). Zero
// arguments select defaults (16 ranks, 1024/65536 dims, 30 rounds): the
// probe dims bracket the ring↔log-depth crossover region, where the fit
// matters — a two-point fit is exact at its probe sizes and interpolates
// between them, so probing far outside the decision region (e.g. at 1M
// elements) would spend the model's two degrees of freedom where no
// selection decision ever changes.
func Calibrate(ranks, smallDim, largeDim, rounds int) (Calibration, error) {
	if ranks < 2 {
		ranks = 16
	}
	if smallDim <= 0 {
		smallDim = 1 << 10
	}
	if largeDim <= smallDim {
		largeDim = 1 << 16
	}
	if rounds < 1 {
		rounds = 30
	}
	net, err := transport.NewLocalNetwork(ranks)
	if err != nil {
		return Calibration{}, err
	}
	defer func() { _ = net.Close() }()
	eps := net.Endpoints()

	probe := func(algo Algorithm, dim int) (float64, error) {
		vecs := make([]tensor.Vector, ranks)
		for i := range vecs {
			vecs[i] = tensor.New(dim)
			vecs[i].Fill(float64(i + 1))
		}
		run := func(iter int64) error {
			done := make(chan error, ranks)
			for _, m := range eps {
				m := m
				go func() { done <- AllReduceWith(m, iter, vecs[m.Rank()], OpSum, algo) }()
			}
			var first error
			for range eps {
				if err := <-done; err != nil && first == nil {
					first = err
				}
			}
			return first
		}
		if err := run(0); err != nil { // warmup
			return 0, err
		}
		start := time.Now()
		for it := 1; it <= rounds; it++ {
			if err := run(int64(it)); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(rounds), nil
	}

	fit := func(algo Algorithm, shape func(int, int64) (float64, float64)) (AlgoCost, error) {
		tSmall, err := probe(algo, smallDim)
		if err != nil {
			return AlgoCost{}, fmt.Errorf("calibrate %s small: %w", algo, err)
		}
		tLarge, err := probe(algo, largeDim)
		if err != nil {
			return AlgoCost{}, fmt.Errorf("calibrate %s large: %w", algo, err)
		}
		msgsS, volS := shape(ranks, int64(smallDim)*8)
		_, volL := shape(ranks, int64(largeDim)*8)
		// Two-point fit: t = msgs·α + vol·β. The shapes share the msgs
		// term when msgsS == msgsL (all three do at fixed n), so β falls
		// out of the difference and α from the small probe.
		beta := (tLarge - tSmall) / (volL - volS)
		if beta < 0 {
			beta = 0
		}
		alpha := (tSmall - volS*beta) / msgsS
		if alpha < 1 {
			alpha = 1 // keep predictions ordered even on noisy probes
		}
		return AlgoCost{AlphaNs: alpha, BetaNsPerByte: beta}, nil
	}

	var cal Calibration
	cal.Ranks, cal.SmallDim, cal.LargeDim, cal.Rounds = ranks, smallDim, largeDim, rounds
	cal.GoMaxProcs, cal.NumCPU = HostFingerprint()
	if cal.Model.Ring, err = fit(AlgoRing, ringShape); err != nil {
		return Calibration{}, err
	}
	if cal.Model.HalvingDoubling, err = fit(AlgoHalvingDoubling, halvingDoublingShape); err != nil {
		return Calibration{}, err
	}
	if cal.Model.Tree, err = fit(AlgoTree, treeShape); err != nil {
		return Calibration{}, err
	}
	return cal, nil
}
