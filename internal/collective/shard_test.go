package collective

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// fillRand deterministically fills per-rank input vectors.
func shardInputs(n, dim int, seed int64) []tensor.Vector {
	rng := rand.New(rand.NewSource(seed))
	vecs := make([]tensor.Vector, n)
	for r := range vecs {
		vecs[r] = tensor.New(dim)
		for j := range vecs[r] {
			vecs[r][j] = rng.NormFloat64()
		}
	}
	return vecs
}

func cloneVecs(vecs []tensor.Vector) []tensor.Vector {
	out := make([]tensor.Vector, len(vecs))
	for r := range vecs {
		out[r] = append(tensor.Vector(nil), vecs[r]...)
	}
	return out
}

// skew3to1 returns a 3:1 weighted offset table (first rank heavy).
func skew3to1(t *testing.T, total, n int) []int {
	t.Helper()
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	w[0] = 3
	offs, err := ShardOffsets(total, n, w)
	if err != nil {
		t.Fatal(err)
	}
	return offs
}

// TestReduceScatterAllGatherMatchesRing: the composed halves must reproduce
// RingAllReduce bit for bit under uniform AND skewed partitions, for both
// ops — the contract the owner-computes update path builds on.
func TestReduceScatterAllGatherMatchesRing(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		for _, dim := range []int{n, 97, 1 << 12} {
			for _, op := range []ReduceOp{OpSum, OpAverage} {
				ref := shardInputs(n, dim, int64(n*dim))
				runSPMD(t, n, func(m transport.Mesh) error {
					return RingAllReduce(m, 3, ref[m.Rank()], op)
				})
				for name, offs := range map[string][]int{"uniform": nil, "skew3to1": skew3to1(t, dim, n)} {
					got := shardInputs(n, dim, int64(n*dim))
					runSPMD(t, n, func(m transport.Mesh) error {
						if err := ReduceScatter(m, 3, got[m.Rank()], op, offs); err != nil {
							return err
						}
						return AllGather(m, 4, got[m.Rank()], offs, Options{})
					})
					for r := range got {
						for j := range got[r] {
							if math.Float64bits(got[r][j]) != math.Float64bits(ref[r][j]) {
								t.Fatalf("n=%d dim=%d op=%d offs=%s rank %d elem %d: %x != %x",
									n, dim, op, name, r, j, got[r][j], ref[r][j])
							}
						}
					}
				}
			}
		}
	}
}

// TestReduceScatterOwnsReducedSpan: after ReduceScatter alone, the owned
// span holds the reduction and the rest of the vector is untouched.
func TestReduceScatterOwnsReducedSpan(t *testing.T) {
	n, dim := 4, 103
	offs := skew3to1(t, dim, n)
	in := shardInputs(n, dim, 11)
	want := tensor.New(dim)
	for r := range in {
		for j := range want {
			want[j] += in[r][j]
		}
	}
	got := cloneVecs(in)
	runSPMD(t, n, func(m transport.Mesh) error {
		return ReduceScatter(m, 0, got[m.Rank()], OpSum, offs)
	})
	for r := 0; r < n; r++ {
		for j := range got[r] {
			if j >= offs[r] && j < offs[r+1] {
				if math.Abs(got[r][j]-want[j]) > 1e-9 {
					t.Fatalf("rank %d owned elem %d: got %v want %v", r, j, got[r][j], want[j])
				}
			} else if got[r][j] != in[r][j] {
				t.Fatalf("rank %d unowned elem %d mutated", r, j)
			}
		}
	}
}

// TestAllGatherWireEF: an f16 allgather quantizes each owner's span exactly
// once, every rank decodes identical bits, and the owner's residual holds
// exact − quantized.
func TestAllGatherWireEF(t *testing.T) {
	n, dim := 4, 257
	offs := skew3to1(t, dim, n)
	in := shardInputs(n, dim, 23)
	exact := cloneVecs(in)
	got := cloneVecs(in)
	residuals := make([]tensor.Vector, n)
	for r := range residuals {
		residuals[r] = tensor.New(dim)
	}
	runSPMD(t, n, func(m transport.Mesh) error {
		return AllGather(m, 0, got[m.Rank()], offs, Options{Compression: tensor.F16, Residual: residuals[m.Rank()]})
	})
	for r := 1; r < n; r++ {
		for j := range got[r] {
			if math.Float64bits(got[r][j]) != math.Float64bits(got[0][j]) {
				t.Fatalf("rank %d elem %d diverges after lossy allgather", r, j)
			}
		}
	}
	for r := 0; r < n; r++ {
		for j := offs[r]; j < offs[r+1]; j++ {
			if math.Abs(residuals[r][j]+got[0][j]-exact[r][j]) > 1e-12 {
				t.Fatalf("rank %d elem %d: residual %v + quantized %v != exact %v",
					r, j, residuals[r][j], got[0][j], exact[r][j])
			}
		}
		for j := range residuals[r] {
			if (j < offs[r] || j >= offs[r+1]) && residuals[r][j] != 0 {
				t.Fatalf("rank %d residual leaked outside owned span at %d", r, j)
			}
		}
	}
}

// TestPartialReduceScatterMatchesPartialRing: the sharded partial collective
// must report the same contributor count on every rank and produce, on each
// owned span, the same bits as the replicated ring-based partial collective
// (whose fold runs over the flag-extended vector).
func TestPartialReduceScatterMatchesPartialRing(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		for _, dim := range []int{n + 1, 129, 1 << 10} {
			for mask := 0; mask < 3; mask++ {
				contrib := make([]bool, n)
				for r := range contrib {
					switch mask {
					case 0:
						contrib[r] = true
					case 1:
						contrib[r] = r%2 == 0
					case 2:
						contrib[r] = false
					}
				}
				in := shardInputs(n, dim, int64(7*n+dim+mask))
				refSums := make([]tensor.Vector, n)
				refCounts := make([]int, n)
				runSPMD(t, n, func(m transport.Mesh) error {
					r := m.Rank()
					pr, err := PartialRingAllReduce(m, 5, in[r], contrib[r])
					if err != nil {
						return err
					}
					refSums[r] = append(tensor.Vector(nil), pr.Sum...)
					refCounts[r] = pr.Contributors
					pr.Release()
					return nil
				})
				for name, offs := range map[string][]int{"uniform": nil, "skew3to1": skew3to1(t, dim, n)} {
					got := cloneVecs(in)
					counts := make([]int, n)
					runSPMD(t, n, func(m transport.Mesh) error {
						r := m.Rank()
						c, err := PartialReduceScatter(m, 5, got[r], contrib[r], offs)
						counts[r] = c
						return err
					})
					resolved := offs
					if resolved == nil {
						var err error
						resolved, err = ShardOffsets(dim, n, nil)
						if err != nil {
							t.Fatal(err)
						}
					}
					for r := 0; r < n; r++ {
						if counts[r] != refCounts[r] {
							t.Fatalf("n=%d mask=%d offs=%s rank %d: count %d != %d", n, mask, name, r, counts[r], refCounts[r])
						}
						for j := resolved[r]; j < resolved[r+1]; j++ {
							if math.Float64bits(got[r][j]) != math.Float64bits(refSums[r][j]) {
								t.Fatalf("n=%d dim=%d mask=%d offs=%s rank %d elem %d: %x != %x",
									n, dim, mask, name, r, j, got[r][j], refSums[r][j])
							}
						}
					}
				}
			}
		}
	}
}

func TestShardPrimitiveErrors(t *testing.T) {
	runSPMD(t, 2, func(m transport.Mesh) error {
		v := tensor.New(8)
		if err := ReduceScatter(m, 0, v, ReduceOp(99), nil); err == nil {
			t.Error("bad op accepted")
		}
		if err := ReduceScatter(m, 0, v, OpSum, []int{0, 8}); err == nil {
			t.Error("short offsets accepted")
		}
		if err := ReduceScatter(m, 0, v, OpSum, []int{0, 4, 7}); err == nil {
			t.Error("non-covering offsets accepted")
		}
		if err := ReduceScatter(m, 0, v, OpSum, []int{0, 6, 4}); err == nil {
			t.Error("non-monotone offsets accepted")
		}
		if err := AllGather(m, 0, v, nil, Options{Algorithm: AlgoTree}); err == nil {
			t.Error("pinned tree accepted")
		}
		if err := AllGather(m, 0, v, nil, Options{TopK: 2}); err == nil {
			t.Error("top-k accepted")
		}
		if err := AllGather(m, 0, v, nil, Options{Residual: tensor.New(3)}); err == nil {
			t.Error("short residual accepted")
		}
		return nil
	})
	if _, err := ShardOffsets(10, 0, nil); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := ShardOffsets(10, 3, []float64{1, 2}); err == nil {
		t.Error("weight/rank mismatch accepted")
	}
}

// checkShardOffsetsInvariants asserts the satellite-2 span properties: full
// coverage, no overlap, monotone, deterministic, and exactly the
// ChunkBounds / WeightedSizes partitions.
func checkShardOffsetsInvariants(t *testing.T, total, n int, weights []float64) {
	t.Helper()
	offs, err := ShardOffsets(total, n, weights)
	if err != nil {
		t.Fatalf("total=%d n=%d w=%v: %v", total, n, weights, err)
	}
	if len(offs) != n+1 || offs[0] != 0 || offs[n] != total {
		t.Fatalf("total=%d n=%d: offsets %v do not cover", total, n, offs)
	}
	for i := 0; i < n; i++ {
		if offs[i+1] < offs[i] {
			t.Fatalf("total=%d n=%d: offsets %v not monotone", total, n, offs)
		}
	}
	// Deterministic across "ranks": a second independent derivation from the
	// same inputs must agree exactly.
	again, err := ShardOffsets(total, n, weights)
	if err != nil {
		t.Fatal(err)
	}
	for i := range offs {
		if offs[i] != again[i] {
			t.Fatalf("total=%d n=%d: derivation not deterministic (%v vs %v)", total, n, offs, again)
		}
	}
	if weights == nil {
		// Must be exactly the uniform ChunkBounds partition.
		for c := 0; c < n; c++ {
			s, e, err := tensor.ChunkBounds(total, n, c)
			if err != nil {
				t.Fatal(err)
			}
			if offs[c] != s || offs[c+1] != e {
				t.Fatalf("total=%d n=%d chunk %d: offsets %v != ChunkBounds [%d,%d)", total, n, c, offs, s, e)
			}
		}
		return
	}
	// Must be exactly the WeightedSizes partition.
	sizes, err := tensor.WeightedSizes(total, weights, 0, tensor.DefaultMaxSkew)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sizes {
		if offs[i+1]-offs[i] != s {
			t.Fatalf("total=%d n=%d: offsets %v != WeightedSizes %v", total, n, offs, sizes)
		}
	}
}

func TestShardOffsetsProperties(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 64} {
		for _, total := range []int{0, 1, n - 1, n, n + 1, 1000, 1 << 16} {
			if total < 0 {
				continue
			}
			checkShardOffsetsInvariants(t, total, n, nil)
			uniform := make([]float64, n)
			for i := range uniform {
				uniform[i] = 2.5
			}
			checkShardOffsetsInvariants(t, total, n, uniform)
			// Uniform weights must degenerate to the equal partition.
			offs, err := ShardOffsets(total, n, uniform)
			if err != nil {
				t.Fatal(err)
			}
			equal, err := ShardOffsets(total, n, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := range offs {
				if offs[i] != equal[i] {
					t.Fatalf("total=%d n=%d: uniform weights gave %v, want %v", total, n, offs, equal)
				}
			}
			skew := make([]float64, n)
			for i := range skew {
				skew[i] = float64(1 + i%4)
			}
			checkShardOffsetsInvariants(t, total, n, skew)
		}
	}
}

// FuzzShardOffsets drives random (total, n, weight-shape) tuples through the
// span invariants.
func FuzzShardOffsets(f *testing.F) {
	f.Add(int64(1), 256, 4)
	f.Add(int64(2), 0, 1)
	f.Add(int64(3), 1<<14, 16)
	f.Add(int64(4), 7, 8)
	f.Fuzz(func(t *testing.T, seed int64, total, n int) {
		if n < 1 || n > 128 || total < 0 || total > 1<<18 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		checkShardOffsetsInvariants(t, total, n, nil)
		w := make([]float64, n)
		for i := range w {
			w[i] = 0.25 + 4*rng.Float64()
		}
		checkShardOffsetsInvariants(t, total, n, w)
	})
}
