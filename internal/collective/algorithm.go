package collective

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// Algorithm selects an AllReduce schedule.
type Algorithm int

// Supported schedules. AlgoAuto (the zero value) defers to the α–β cost
// model selector; the rest pin a concrete schedule.
const (
	// AlgoAuto lets the calibrated cost model choose per (ranks, size).
	AlgoAuto Algorithm = iota
	// AlgoRing is the pipelined ring: bandwidth-optimal, O(N) latency.
	AlgoRing
	// AlgoHalvingDoubling is recursive halving-doubling: bandwidth-optimal
	// with O(log N) latency, plus a fold-in for non-power-of-two N.
	AlgoHalvingDoubling
	// AlgoTree is binomial-tree reduce + broadcast: fewest messages, full
	// vector per hop — for tiny tensors only.
	AlgoTree
)

// String implements fmt.Stringer; the names match the BENCH_collective.json
// rows and the rnabench output.
func (a Algorithm) String() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoRing:
		return "ring"
	case AlgoHalvingDoubling:
		return "halving-doubling"
	case AlgoTree:
		return "tree"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// ParseAlgorithm maps a String() name back to the Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "auto":
		return AlgoAuto, nil
	case "ring":
		return AlgoRing, nil
	case "halving-doubling", "hd":
		return AlgoHalvingDoubling, nil
	case "tree":
		return AlgoTree, nil
	}
	return 0, fmt.Errorf("collective: unknown algorithm %q", s)
}

// AllReduce reduces v in place across all ranks of m with the schedule the
// calibrated cost model predicts fastest for (m.Size(), len(v)). Selection
// is a pure function of those two values and the shared model, so all SPMD
// ranks take the same branch. This is the entry point the training stack
// uses; pin a schedule with AllReduceWith when benchmarking.
func AllReduce(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp) error {
	return AllReduceWith(m, iter, v, op, AlgoAuto)
}

// AllReduceWith reduces v in place across all ranks of m with the given
// schedule (AlgoAuto defers to the cost-model selector). All ranks must
// pass the same algorithm, iter, op and vector length.
func AllReduceWith(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp, algo Algorithm) error {
	if algo == AlgoAuto {
		algo = SelectAlgorithm(m.Size(), len(v))
	}
	switch algo {
	case AlgoRing:
		return RingAllReduce(m, iter, v, op)
	case AlgoHalvingDoubling:
		return HalvingDoublingAllReduce(m, iter, v, op)
	case AlgoTree:
		return TreeAllReduce(m, iter, v, op)
	default:
		return fmt.Errorf("collective: unsupported algorithm %v", algo)
	}
}

// PartialAllReduce is PartialRingAllReduce with cost-model algorithm
// selection: the partial semantics (null contributions, contributor count)
// ride on any sum AllReduce, so the selector applies unchanged. The
// returned Sum lives in a pooled buffer — call Release when done.
func PartialAllReduce(m transport.Mesh, iter int64, v tensor.Vector, contributes bool) (PartialResult, error) {
	return partialAllReduce(m, iter, v, contributes, AlgoAuto)
}

// partialAllReduce implements the partial collective on top of any
// schedule.
func partialAllReduce(m transport.Mesh, iter int64, v tensor.Vector, contributes bool, algo Algorithm) (PartialResult, error) {
	work := tensor.Vector(transport.GetPayload(len(v) + 1))
	if contributes {
		copy(work, v)
		work[len(v)] = 1
	} else {
		work.Zero()
	}
	if err := AllReduceWith(m, iter, work, OpSum, algo); err != nil {
		transport.PutPayload(work)
		return PartialResult{}, err
	}
	contributors := int(work[len(v)] + 0.5)
	return PartialResult{Sum: work[:len(v)], Contributors: contributors}, nil
}
