package collective

import (
	"fmt"
	"math"

	"repro/internal/tensor"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Algorithm selects an AllReduce schedule.
type Algorithm int

// Supported schedules. AlgoAuto (the zero value) defers to the α–β cost
// model selector; the rest pin a concrete schedule.
const (
	// AlgoAuto lets the calibrated cost model choose per (ranks, size).
	AlgoAuto Algorithm = iota
	// AlgoRing is the pipelined ring: bandwidth-optimal, O(N) latency.
	AlgoRing
	// AlgoHalvingDoubling is recursive halving-doubling: bandwidth-optimal
	// with O(log N) latency, plus a fold-in for non-power-of-two N.
	AlgoHalvingDoubling
	// AlgoTree is binomial-tree reduce + broadcast: fewest messages, full
	// vector per hop — for tiny tensors only.
	AlgoTree
	// AlgoMultiLevel is the topology-aware level-tree schedule (see
	// multilevel.go): groups ring-reduce, leaders recurse, results broadcast
	// back down. AlgoAuto also reaches it when the cost model's level search
	// beats every flat schedule (large rank counts).
	AlgoMultiLevel
)

// String implements fmt.Stringer; the names match the BENCH_collective.json
// rows and the rnabench output.
func (a Algorithm) String() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoRing:
		return "ring"
	case AlgoHalvingDoubling:
		return "halving-doubling"
	case AlgoTree:
		return "tree"
	case AlgoMultiLevel:
		return "multilevel"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// ParseAlgorithm maps a String() name back to the Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "auto":
		return AlgoAuto, nil
	case "ring":
		return AlgoRing, nil
	case "halving-doubling", "hd":
		return AlgoHalvingDoubling, nil
	case "tree":
		return AlgoTree, nil
	case "multilevel", "multi-level", "ml":
		return AlgoMultiLevel, nil
	}
	return 0, fmt.Errorf("collective: unknown algorithm %q", s)
}

// AllReduce reduces v in place across all ranks of m with the schedule the
// calibrated cost model predicts fastest for (m.Size(), len(v)). Selection
// is a pure function of those two values and the shared model, so all SPMD
// ranks take the same branch. This is the entry point the training stack
// uses; pin a schedule with AllReduceWith when benchmarking.
func AllReduce(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp) error {
	return AllReduceWith(m, iter, v, op, AlgoAuto)
}

// AllReduceWith reduces v in place across all ranks of m with the given
// schedule (AlgoAuto defers to the cost-model selector). All ranks must
// pass the same algorithm, iter, op and vector length.
func AllReduceWith(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp, algo Algorithm) error {
	return AllReduceOpts(m, iter, v, op, Options{Algorithm: algo})
}

// Options bundles the tunables of one AllReduce call beyond (op, iter).
// The zero value reproduces AllReduce exactly: auto-selected schedule,
// uncompressed fp64 wire, no error feedback.
type Options struct {
	// Algorithm pins a schedule; AlgoAuto defers to the cost-model
	// selector (which prices the Compression dtype's wire volume).
	Algorithm Algorithm
	// Compression is the wire dtype of the distribution phase — the ring
	// allgather, the halving-doubling doubling phase, the tree broadcast.
	// The reduction itself always runs in fp64, and every rank still
	// finishes with bit-identical bytes: elements are quantized exactly
	// once, by the rank that owns them, and re-encoding forwarded grid
	// values is exact (see tensor.RoundTrip). tensor.F64 disables
	// compression.
	Compression tensor.Dtype
	// Residual, when non-nil (it must then have v's length), accumulates
	// the quantization error (pre − post) of the regions THIS rank
	// compressed from exact fp64 — its owned chunks/windows, or the whole
	// vector at the tree root. Adding the residual into the next
	// iteration's local gradient implements error-feedback compression;
	// the residual is distributed across ranks by ownership, matching how
	// the error physically arises.
	Residual tensor.Vector
	// TopK, when positive, replaces the dense schedule with the sparse
	// top-k gradient exchange (see sparse.go): each rank ships only its k
	// largest-magnitude elements as an index+value frame, the union is
	// tree-reduced, and every rank materializes the identical sparse sum.
	// Requires Algorithm == AlgoAuto and Compression == F64 (selected
	// values travel exact; sparsity IS the compression). With Residual set,
	// the dropped mass accumulates there — error feedback, same contract as
	// lossy dense dtypes.
	TopK int
}

// AllReduceOpts reduces v in place across all ranks of m under opts. All
// ranks must pass the same algorithm, compression dtype, iter, op and
// vector length (residuals are rank-local and may differ).
func AllReduceOpts(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp, opts Options) error {
	if !opts.Compression.Valid() {
		return fmt.Errorf("collective: unknown compression dtype %d", opts.Compression)
	}
	if opts.Residual != nil && len(opts.Residual) != len(v) {
		return fmt.Errorf("collective: residual length %d != vector length %d", len(opts.Residual), len(v))
	}
	if opts.TopK < 0 {
		return fmt.Errorf("collective: negative top-k %d", opts.TopK)
	}
	if opts.TopK > 0 {
		if opts.Algorithm != AlgoAuto {
			return fmt.Errorf("collective: top-k does not compose with a pinned %v schedule", opts.Algorithm)
		}
		if opts.Compression != tensor.F64 {
			return fmt.Errorf("collective: top-k does not compose with %v compression (selected values ship exact)", opts.Compression)
		}
		if transport.MeshCaps(m)&transport.CapSparse != 0 {
			return topKAllReduce(m, iter, v, op, opts.TopK, opts.Residual)
		}
		// Capability downgrade: some rank of the mesh negotiated without
		// sparse frame support, so the sparse exchange cannot run. Fall back
		// to the dense schedule — exact, so any error-feedback residual
		// stays untouched. MeshCaps is the same global AND on every rank,
		// so all SPMD ranks take this branch together.
		opts.TopK = 0
	}
	algo := opts.Algorithm
	if algo == AlgoAuto {
		// The level search runs before the flat selector: when a level tree
		// beats every flat schedule (large rank counts), AlgoAuto takes it.
		// Both checks are pure functions of (n, elems, wire) and the shared
		// model, so SPMD ranks agree on the branch AND the plan.
		if branches := ActiveCostModel().SelectLevels(m.Size(), len(v), opts.Compression); branches != nil {
			plan, err := topology.UniformPlan(m.Size(), branches)
			if err != nil {
				return err
			}
			return multiLevelOpts(m, iter, v, op, opts, plan)
		}
		algo = SelectAlgorithmWire(m.Size(), len(v), opts.Compression)
	}
	switch algo {
	case AlgoRing:
		return ringAllReduce(m, iter, v, op, 0, opts.Compression, opts.Residual)
	case AlgoHalvingDoubling:
		return halvingDoublingAllReduce(m, iter, v, op, opts.Compression, opts.Residual)
	case AlgoTree:
		return treeAllReduce(m, iter, v, op, opts.Compression, opts.Residual)
	case AlgoMultiLevel:
		plan, err := autoPlan(m.Size(), len(v), opts.Compression)
		if err != nil {
			return err
		}
		return multiLevelOpts(m, iter, v, op, opts, plan)
	default:
		return fmt.Errorf("collective: unsupported algorithm %v", algo)
	}
}

// multiLevelOpts runs the cached multi-level engine for plan, stripping the
// Algorithm pin so the within-level dispatch re-selects per level size.
func multiLevelOpts(m transport.Mesh, iter int64, v tensor.Vector, op ReduceOp, opts Options, plan *topology.Plan) error {
	ml, err := cachedMultiLevel(m, plan)
	if err != nil {
		return err
	}
	return ml.RunOpts(iter, v, op, Options{Compression: opts.Compression, Residual: opts.Residual})
}

// PartialAllReduce is PartialRingAllReduce with cost-model algorithm
// selection: the partial semantics (null contributions, contributor count)
// ride on any sum AllReduce, so the selector applies unchanged. The
// returned Sum lives in a pooled buffer — call Release when done.
func PartialAllReduce(m transport.Mesh, iter int64, v tensor.Vector, contributes bool) (PartialResult, error) {
	return partialAllReduce(m, iter, v, contributes, Options{})
}

// PartialAllReduceOpts is the partial collective under Options — the entry
// point for compressed RNA training. Compression keeps the partial
// semantics: the contributor count rides the reduction as one extra
// element, decoded with round-and-clamp so block quantization noise (the
// count shares its block's scale under I8) cannot corrupt it for any
// realistic count; counts are exact whenever the flag block's scale is ≤ 1.
func PartialAllReduceOpts(m transport.Mesh, iter int64, v tensor.Vector, contributes bool, opts Options) (PartialResult, error) {
	return partialAllReduce(m, iter, v, contributes, opts)
}

// partialAllReduce implements the partial collective on top of any
// schedule.
func partialAllReduce(m transport.Mesh, iter int64, v tensor.Vector, contributes bool, opts Options) (PartialResult, error) {
	work := tensor.Vector(transport.GetPayload(len(v) + 1))
	if contributes {
		copy(work, v)
		work[len(v)] = 1
	} else {
		work.Zero()
	}
	// The caller's residual matches len(v), but the reduced vector carries
	// the extra flag element; collect error feedback into an extended
	// scratch residual and fold the data part back. The flag element's
	// quantization error is deliberately dropped — feeding it back would
	// distort future counts.
	innerOpts := opts
	var extRes tensor.Vector
	if opts.Residual != nil && opts.Compression != tensor.F64 {
		extRes = tensor.Vector(transport.GetPayload(len(v) + 1))
		extRes.Zero()
		innerOpts.Residual = extRes
	} else {
		innerOpts.Residual = nil
	}
	if err := AllReduceOpts(m, iter, work, OpSum, innerOpts); err != nil {
		transport.PutPayload(work)
		if extRes != nil {
			transport.PutPayload(extRes)
		}
		return PartialResult{}, err
	}
	if extRes != nil {
		_ = opts.Residual.Add(extRes[:len(v)])
		transport.PutPayload(extRes)
	}
	contributors := int(math.Round(work[len(v)]))
	if contributors < 0 {
		contributors = 0
	} else if contributors > m.Size() {
		contributors = m.Size()
	}
	return PartialResult{Sum: work[:len(v)], Contributors: contributors}, nil
}
