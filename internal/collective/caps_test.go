package collective

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// Capability-negotiation behavior at the collective layer: the sparse top-k
// exchange over a real negotiated TCP mesh, and the dense fallback when some
// rank of the mesh never learned to decode sparse frames.

// runTCPOpts runs AllReduceOpts SPMD over a TCP cluster built with optsFor.
func runTCPOpts(t *testing.T, inputs []tensor.Vector, iter int64, op ReduceOp, opts Options,
	optsFor func(rank int) transport.MeshOptions) []tensor.Vector {
	t.Helper()
	n := len(inputs)
	meshes, err := transport.NewTCPClusterOpts(n, optsFor)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	got := make([]tensor.Vector, n)
	done := make(chan error, n)
	for r := 0; r < n; r++ {
		r := r
		got[r] = inputs[r].Clone()
		go func() { done <- AllReduceOpts(meshes[r], iter, got[r], op, opts) }()
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	return got
}

// TestTopKTCPMatchesInMemory: the sparse exchange ships real index+value
// frames over the TCP wire; the result must be bit-identical to the
// in-memory mesh on every rank.
func TestTopKTCPMatchesInMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster in -short mode")
	}
	const n, dim, k = 4, 600, 40
	rng := rand.New(rand.NewSource(67))
	inputs := randomInputs(rng, n, dim)
	mem, _ := runAlgoOpts(t, inputs, 13, OpAverage, Options{TopK: k})
	tcp := runTCPOpts(t, inputs, 13, OpAverage, Options{TopK: k}, nil)
	for r := 0; r < n; r++ {
		for j := range tcp[r] {
			if math.Float64bits(tcp[r][j]) != math.Float64bits(mem[0][j]) {
				t.Fatalf("TCP rank %d elem %d = %v, in-memory = %v", r, j, tcp[r][j], mem[0][j])
			}
		}
	}
}

// TestTopKFallsBackDenseWithoutCapSparse: when any rank of the mesh lacks
// CapSparse, every rank must take the dense branch together — the result is
// the exact dense reduction, and error-feedback residuals stay zero (the
// dense f64 wire is lossless, so nothing is dropped).
func TestTopKFallsBackDenseWithoutCapSparse(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster in -short mode")
	}
	const n, dim, k = 3, 300, 10
	rng := rand.New(rand.NewSource(71))
	inputs := randomInputs(rng, n, dim)
	// The dense reference: what the fallback must compute instead of the
	// sparse union.
	dense := runTCPOpts(t, inputs, 5, OpSum, Options{}, nil)
	optsFor := func(rank int) transport.MeshOptions {
		if rank == 1 {
			return transport.MeshOptions{Caps: transport.CapsAll &^ transport.CapSparse}
		}
		return transport.MeshOptions{}
	}

	meshes, err := transport.NewTCPClusterOpts(n, optsFor)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	got := make([]tensor.Vector, n)
	res := make([]tensor.Vector, n)
	done := make(chan error, n)
	for r := 0; r < n; r++ {
		r := r
		got[r] = inputs[r].Clone()
		res[r] = tensor.New(dim)
		go func() {
			done <- AllReduceOpts(meshes[r], 5, got[r], OpSum, Options{TopK: k, Residual: res[r]})
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < n; r++ {
		for j := range got[r] {
			if math.Float64bits(got[r][j]) != math.Float64bits(dense[r][j]) {
				t.Fatalf("rank %d elem %d = %v, dense reference = %v", r, j, got[r][j], dense[r][j])
			}
		}
		for j, v := range res[r] {
			if v != 0 {
				t.Fatalf("rank %d residual[%d] = %v after exact dense fallback", r, j, v)
			}
		}
	}
}
