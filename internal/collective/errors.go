package collective

import (
	"errors"
	"fmt"

	"repro/internal/transport"
)

// ErrTagOverflow is returned when a collective's (chunk, segment) tag space
// does not fit the int32 message Chunk field: rank·segment products beyond
// MaxInt32 would silently alias distinct segments onto one tag and corrupt
// the protocol checks, so the schedule refuses to start instead.
var ErrTagOverflow = errors.New("collective: segment tag overflow")

// ProtocolError reports a message that does not belong to the collective
// step that received it — the signature of interleaved collectives (or a
// stray sender) on one mesh. It carries the full expected-vs-received
// coordinates so the failure is diagnosable from the message alone, and
// unwraps to ErrProtocol so existing errors.Is checks keep working.
type ProtocolError struct {
	// Op names the collective phase that observed the violation
	// (e.g. "ring", "broadcast", "halving-doubling", "tree-reduce").
	Op string
	// From is the parent-mesh rank the offending message came from.
	From int32
	// WantIter/GotIter are the expected and received iteration tags.
	WantIter, GotIter int64
	// WantTag/GotTag are the expected and received chunk/segment tags.
	WantTag, GotTag int32
	// WantType/GotType are the expected and received message types.
	WantType, GotType transport.MsgType
}

// Error implements error.
func (e *ProtocolError) Error() string {
	return fmt.Sprintf("collective: protocol violation in %s: from rank %d got (iter=%d tag=%d type=%d), want (iter=%d tag=%d type=%d)",
		e.Op, e.From, e.GotIter, e.GotTag, e.GotType, e.WantIter, e.WantTag, e.WantType)
}

// Unwrap makes errors.Is(err, ErrProtocol) hold.
func (e *ProtocolError) Unwrap() error { return ErrProtocol }

// checkMsg validates a received message against the step's expectation and
// returns a fully populated *ProtocolError on mismatch. The caller still
// owns msg.Payload either way.
func checkMsg(op string, msg transport.Message, wantType transport.MsgType, wantIter int64, wantTag int32) error {
	if msg.Type == wantType && msg.Iter == wantIter && msg.Chunk == wantTag {
		return nil
	}
	return &ProtocolError{
		Op:       op,
		From:     msg.From,
		WantIter: wantIter, GotIter: msg.Iter,
		WantTag: wantTag, GotTag: msg.Chunk,
		WantType: wantType, GotType: msg.Type,
	}
}
