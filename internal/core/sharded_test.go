package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/collective"
	"repro/internal/controller"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// shardedBlobConfig is blobConfig with a model big enough that uniform
// 4-rank spans stay above the ring inline threshold, plus knobs for the
// sharded matrix. The replicated baseline pins AlgoRing so the comparison
// is fold-order-exact at any dimension.
func shardedBlobConfig(t *testing.T, iters int, adam bool) (TrainConfig, *data.Dataset) {
	t.Helper()
	cfg, ds := blobConfig(t, iters)
	cfg.Algorithm = collective.AlgoRing
	cfg.Adam = adam
	cfg.StalenessBound = 1 // deterministic RNA snapshots under AllReady
	return cfg, ds
}

func skewWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	w[0] = 3
	return w
}

// assertBitIdentical fails unless every rank's params match rank 0 of ref
// bit for bit.
func assertBitIdentical(t *testing.T, name string, ref tensor.Vector, results []*Result) {
	t.Helper()
	for r, res := range results {
		if len(res.Params) != len(ref) {
			t.Fatalf("%s: rank %d param length %d != %d", name, r, len(res.Params), len(ref))
		}
		for j := range ref {
			if math.Float64bits(res.Params[j]) != math.Float64bits(ref[j]) {
				t.Fatalf("%s: rank %d param %d: %x != %x", name, r, j,
					math.Float64bits(res.Params[j]), math.Float64bits(ref[j]))
			}
		}
	}
}

// TestShardedBSPBitIdenticalToReplicated is the tentpole contract: the
// owner-computes BSP path reproduces the replicated baseline bit for bit —
// for SGD and Adam, under uniform AND 3:1-skewed ownership (the fold order
// is partition-independent), on the in-memory mesh.
func TestShardedBSPBitIdenticalToReplicated(t *testing.T) {
	const n, iters = 4, 25
	for _, adam := range []bool{false, true} {
		cfg, _ := shardedBlobConfig(t, iters, adam)
		ctrl, err := controller.New(controller.AllReady, n, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		repl := trainCluster(t, n, func(m transport.Mesh) (*Result, error) {
			return RunBSPWorker(m, ctrl, cfg)
		})
		for _, weights := range [][]float64{nil, skewWeights(n)} {
			scfg := cfg
			scfg.ShardedUpdate = true
			scfg.ShardWeights = weights
			sctrl, err := controller.New(controller.AllReady, n, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			shard := trainCluster(t, n, func(m transport.Mesh) (*Result, error) {
				return RunBSPWorker(m, sctrl, scfg)
			})
			name := "uniform"
			if weights != nil {
				name = "skew3to1"
			}
			if adam {
				name += "/adam"
			} else {
				name += "/sgd"
			}
			assertBitIdentical(t, "bsp/"+name, repl[0].Params, shard)
			// State memory: each rank holds only its span's optimizer state.
			var total int64
			for _, res := range shard {
				total += res.OptStateBytes
			}
			if total != repl[0].OptStateBytes {
				t.Errorf("bsp/%s: sharded state sums to %d, replicated per-rank is %d", name, total, repl[0].OptStateBytes)
			}
			if shard[0].OptStateBytes >= repl[0].OptStateBytes {
				t.Errorf("bsp/%s: rank 0 state %d not reduced from %d", name, shard[0].OptStateBytes, repl[0].OptStateBytes)
			}
		}
	}
}

// TestShardedRNABitIdenticalToReplicated: same contract for the RNA path.
// AllReady + StalenessBound 1 makes the replicated RNA trajectory
// deterministic (every snapshot is taken exactly one sync behind), so the
// two runs are bit-comparable.
func TestShardedRNABitIdenticalToReplicated(t *testing.T) {
	const n, iters = 4, 25
	for _, adam := range []bool{false, true} {
		cfg, _ := shardedBlobConfig(t, iters, adam)
		ctrl, err := controller.New(controller.AllReady, n, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		repl := trainCluster(t, n, func(m transport.Mesh) (*Result, error) {
			return RunRNAWorker(m, ctrl, cfg)
		})
		for _, weights := range [][]float64{nil, skewWeights(n)} {
			scfg := cfg
			scfg.ShardedUpdate = true
			scfg.ShardWeights = weights
			sctrl, err := controller.New(controller.AllReady, n, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			shard := trainCluster(t, n, func(m transport.Mesh) (*Result, error) {
				return RunRNAWorker(m, sctrl, scfg)
			})
			assertBitIdentical(t, "rna", repl[0].Params, shard)
		}
	}
}

// tcpTrainCluster is trainCluster over a real TCP fabric.
func tcpTrainCluster(t *testing.T, n int, run func(m transport.Mesh) (*Result, error)) []*Result {
	t.Helper()
	meshes, err := transport.NewTCPCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	results := make([]*Result, n)
	errs := make([]error, n)
	done := make(chan int, n)
	for i := range meshes {
		i := i
		go func() {
			results[i], errs[i] = run(meshes[i])
			done <- i
		}()
	}
	for range meshes {
		<-done
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	return results
}

// TestShardedBSPOverTCP: the sharded path produces the same bits over a real
// TCP fabric as in memory, for the exact fp64 wire and the f16 parameter
// allgather (grid values survive the wire exactly).
func TestShardedBSPOverTCP(t *testing.T) {
	const n, iters = 4, 12
	for _, wire := range []tensor.Dtype{tensor.F64, tensor.F16} {
		cfg, _ := shardedBlobConfig(t, iters, true)
		cfg.ShardedUpdate = true
		cfg.ShardWeights = skewWeights(n)
		cfg.Compression = wire
		ctrl, err := controller.New(controller.AllReady, n, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		mem := trainCluster(t, n, func(m transport.Mesh) (*Result, error) {
			return RunBSPWorker(m, ctrl, cfg)
		})
		tctrl, err := controller.New(controller.AllReady, n, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		tcp := tcpTrainCluster(t, n, func(m transport.Mesh) (*Result, error) {
			return RunBSPWorker(m, tctrl, cfg)
		})
		assertBitIdentical(t, "tcp/"+wire.String(), mem[0].Params, tcp)
	}
}

// ringFoldAverage computes the collective's exact per-element average: each
// uniform chunk c folds contributions left-associatively in ring order
// c, c+1, …, c−1, then scales by 1/n at the owner — the serial reference
// the master-weights test compares against.
func ringFoldAverage(t *testing.T, grads []tensor.Vector, out tensor.Vector) {
	t.Helper()
	n := len(grads)
	dim := len(out)
	for c := 0; c < n; c++ {
		s, e, err := tensor.ChunkBounds(dim, n, c)
		if err != nil {
			t.Fatal(err)
		}
		for j := s; j < e; j++ {
			acc := grads[c%n][j]
			for d := 1; d < n; d++ {
				acc += grads[(c+d)%n][j]
			}
			out[j] = acc / float64(n)
		}
	}
}

// TestShardedBSPF16MasterWeights verifies the lossy-wire contract end to
// end: with an f16 parameter allgather the owners keep master weights
// (quantized params + EF residual = exact fp64 trajectory), gradients are
// evaluated at the quantized parameters on every rank, and all ranks stay
// bit-identical to a serial mixed-precision reference.
func TestShardedBSPF16MasterWeights(t *testing.T) {
	const n, iters = 4, 20
	cfg, _ := shardedBlobConfig(t, iters, true)
	cfg.ShardedUpdate = true
	cfg.Compression = tensor.F16
	ctrl, err := controller.New(controller.AllReady, n, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	results := trainCluster(t, n, func(m transport.Mesh) (*Result, error) {
		return RunBSPWorker(m, ctrl, cfg)
	})

	// Serial reference: one process, full-vector optimizer (elementwise ≡
	// the concatenated span optimizers), per-rank batch streams identical to
	// the workers', ring-fold average, master-weight restore before the
	// step, full-vector f16 round trip with error feedback after it (F16
	// quantizes per element, so per-span ≡ full-vector).
	dim := cfg.Model.Dim()
	params := tensor.New(dim)
	cfg.Model.Init(rng.New(cfg.Seed+7777), params)
	residual := tensor.New(dim)
	optim, err := cfg.newOptimizer(dim)
	if err != nil {
		t.Fatal(err)
	}
	batchSrcs := make([]*rng.Source, n)
	for r := 0; r < n; r++ {
		batchSrcs[r] = rng.New(cfg.Seed).Split(r + 1)
	}
	grads := make([]tensor.Vector, n)
	for r := range grads {
		grads[r] = tensor.New(dim)
	}
	avg := tensor.New(dim)
	for k := 0; k < iters; k++ {
		for r := 0; r < n; r++ {
			if _, err := cfg.Model.Gradient(params, grads[r], cfg.Batch(batchSrcs[r])); err != nil {
				t.Fatal(err)
			}
		}
		ringFoldAverage(t, grads, avg)
		_ = params.Add(residual) // restore exact master weights
		residual.Zero()
		if _, err := optim.Step(params, avg, 1); err != nil {
			t.Fatal(err)
		}
		tensor.RoundTripEF(tensor.F16, params, residual)
	}
	assertBitIdentical(t, "f16-master-weights", params, results)
}

func TestShardedConfigValidation(t *testing.T) {
	cfg, _ := blobConfig(t, 1)
	cfg.ShardedUpdate = true
	cfg.Overlap = true
	if err := cfg.validate(); err == nil {
		t.Error("sharded+overlap accepted")
	}
	cfg.Overlap = false
	cfg.ShardedUpdate = false
	cfg.ShardWeights = []float64{1, 1}
	if err := cfg.validate(); err == nil {
		t.Error("shard weights without sharded update accepted")
	}
	cfg.ShardedUpdate = true
	ctrl, err := controller.New(controller.AllReady, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ShardWeights = []float64{1, 1, 1} // wrong length for a 2-rank mesh
	net, err := transport.NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	if _, err := RunBSPWorker(net.Endpoints()[0], ctrl, cfg); err == nil {
		t.Error("mismatched shard weight count accepted")
	}
}

// TestShardedRNAWithStragglerTrains exercises genuine partial participation
// (PowerOfChoices + a straggler) on the sharded path: the run is not
// bit-comparable across runs, but all ranks must agree bitwise within the
// run and the model must still learn.
func TestShardedRNAWithStragglerTrains(t *testing.T) {
	const n = 4
	cfg, ds := blobConfig(t, 60)
	cfg.Adam = true
	cfg.ShardedUpdate = true
	cfg.StalenessBound = 2
	cfg.SlowDown = func(rank, iter int) time.Duration {
		if rank == n-1 {
			return 2 * time.Millisecond
		}
		return 0
	}
	ctrl, err := controller.New(controller.PowerOfChoices, n, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	results := trainCluster(t, n, func(m transport.Mesh) (*Result, error) {
		return RunRNAWorker(m, ctrl, cfg)
	})
	assertBitIdentical(t, "rna-straggler", results[0].Params, results)
	cls := cfg.Model.(model.Classifier)
	top1, _, err := cls.Accuracy(results[0].Params, model.All(ds), 1)
	if err != nil {
		t.Fatal(err)
	}
	if top1 < 0.8 {
		t.Errorf("sharded RNA top-1 after training = %v", top1)
	}
}
