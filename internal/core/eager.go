package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/collective"
	"repro/internal/controller"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// eagerMailbox is the single-slot gradient buffer of eager-SGD: a newer
// gradient overwrites an unconsumed older one (no cross-iteration
// accumulation), and the last contributed gradient is retained for stale
// re-contribution.
type eagerMailbox struct {
	mu      sync.Mutex
	fresh   tensor.Vector // unconsumed gradient, nil when empty
	stale   tensor.Vector // last contributed gradient, nil before first
	scratch tensor.Vector
}

// put stores a fresh gradient, overwriting any unconsumed one.
func (b *eagerMailbox) put(g tensor.Vector) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fresh == nil {
		if b.scratch != nil && len(b.scratch) == len(g) {
			b.fresh, b.scratch = b.scratch, nil
			copy(b.fresh, g)
		} else {
			b.fresh = g.Clone()
		}
		return
	}
	copy(b.fresh, g)
}

// take returns the gradient to contribute: the fresh one if present
// (promoting it to stale and recycling the previous stale buffer), else
// the stale duplicate, else nil.
func (b *eagerMailbox) take() tensor.Vector {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fresh != nil {
		b.scratch = b.stale
		b.stale = b.fresh
		b.fresh = nil
		return b.stale.Clone()
	}
	if b.stale != nil {
		return b.stale.Clone()
	}
	return nil
}

// RunEagerWorker trains with eager-SGD semantics on the goroutine runtime:
// the controller (typically PolicyMajority or PolicySolo) fires each
// iteration's partial AllReduce, ready workers contribute their newest
// gradient, and workers whose compute has not landed re-contribute their
// previous gradient (a stale duplicate) — there is no cross-iteration
// accumulation or staleness weighting. All ranks end with identical
// parameters.
func RunEagerWorker(mesh transport.Mesh, ctrl *controller.Controller, cfg TrainConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	rank := mesh.Rank()
	n := mesh.Size()
	dim := cfg.Model.Dim()

	optim, err := cfg.newOptimizer(dim)
	if err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	params := tensor.New(dim)
	cfg.Model.Init(rng.New(cfg.Seed+7777), params)
	batchSrc := src.Split(rank + 1)

	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		synced  = int64(-1)
		aborted bool
	)
	abort := func() {
		mu.Lock()
		aborted = true
		cond.Broadcast()
		mu.Unlock()
	}

	box := &eagerMailbox{}
	res := &Result{Losses: make([]float64, 0, cfg.Iterations)}
	zero := tensor.New(dim)

	var (
		wg         sync.WaitGroup
		computeErr error
		commErr    error
	)

	// Compute thread.
	wg.Add(1)
	go func() {
		defer wg.Done()
		snapshot := tensor.New(dim)
		g := tensor.New(dim)
		for k := int64(0); k < int64(cfg.Iterations); k++ {
			mu.Lock()
			for k-synced > int64(cfg.bound()) && !aborted {
				cond.Wait()
			}
			if aborted {
				mu.Unlock()
				return
			}
			copy(snapshot, params)
			mu.Unlock()

			batch := cfg.Batch(batchSrc)
			loss, err := cfg.Model.Gradient(snapshot, g, batch)
			if err != nil {
				computeErr = fmt.Errorf("rank %d iter %d: %w", rank, k, err)
				abort()
				return
			}
			if cfg.SlowDown != nil {
				if d := cfg.SlowDown(rank, int(k)); d > 0 {
					time.Sleep(d)
				}
			}
			res.Losses = append(res.Losses, loss)
			box.put(g)
			if err := ctrl.Ready(rank, k); err != nil {
				computeErr = fmt.Errorf("rank %d iter %d: %w", rank, k, err)
				abort()
				return
			}
		}
	}()

	// Communication thread.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := int64(0); k < int64(cfg.Iterations); k++ {
			fired, _ := ctrl.Await(k)
			<-fired

			contrib := box.take()
			in := zero
			ok := contrib != nil
			if ok {
				in = contrib
				res.Contributed++
			} else {
				res.NullContribs++
			}
			pr, err := collective.PartialAllReduce(mesh, k, in, ok)
			if err != nil {
				commErr = fmt.Errorf("rank %d iter %d: %w", rank, k, err)
				abort()
				return
			}
			if pr.Contributors > 0 {
				pr.Sum.Scale(1 / float64(pr.Contributors))
				scale, err := opt.LinearScale(pr.Contributors, n)
				if err != nil {
					commErr = err
					abort()
					return
				}
				mu.Lock()
				if _, err := optim.Step(params, pr.Sum, scale); err != nil {
					mu.Unlock()
					commErr = fmt.Errorf("rank %d iter %d: %w", rank, k, err)
					abort()
					return
				}
				synced = k
				cond.Broadcast()
				mu.Unlock()
			} else {
				mu.Lock()
				synced = k
				cond.Broadcast()
				mu.Unlock()
			}
			pr.Release()
			if rank == 0 {
				ctrl.Forget(k - int64(cfg.bound()) - 2)
			}
		}
	}()

	wg.Wait()
	if computeErr != nil {
		return nil, computeErr
	}
	if commErr != nil {
		return nil, commErr
	}
	res.Params = params
	res.Elapsed = time.Since(start)
	return res, nil
}
