package core

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestAccumulatorEmptyTake(t *testing.T) {
	a, err := NewAccumulator(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, ok, err := a.Take(5)
	if err != nil {
		t.Fatal(err)
	}
	if ok || g != nil {
		t.Errorf("empty Take = (%v,%v)", g, ok)
	}
	if _, found := a.OldestIter(); found {
		t.Error("OldestIter on empty should report false")
	}
}

func TestAccumulatorSingleGradientIdentity(t *testing.T) {
	a, err := NewAccumulator(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := tensor.FromSlice([]float64{3, -1})
	if err := a.Put(7, g); err != nil {
		t.Fatal(err)
	}
	g[0] = 99 // Put must copy
	out, ok, err := a.Take(7)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Take reported empty")
	}
	if !out.Equal(tensor.FromSlice([]float64{3, -1}), 1e-12) {
		t.Errorf("Take = %v", out)
	}
	if a.Len() != 0 {
		t.Error("buffer not cleared after Take")
	}
}

func TestAccumulatorWeightedAveragePaperFormula(t *testing.T) {
	// Two gradients at iterations t and t+1, taken at k=t+1. τ = 1, so
	// weights are [t−(k−τ)+1] = [1] for the old and [2] for the new:
	// g' = (1·g_t + 2·g_{t+1})/3.
	a, err := NewAccumulator(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put(4, tensor.FromSlice([]float64{3})); err != nil {
		t.Fatal(err)
	}
	if err := a.Put(5, tensor.FromSlice([]float64{9})); err != nil {
		t.Fatal(err)
	}
	out, ok, err := a.Take(5)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("empty")
	}
	want := (1.0*3 + 2.0*9) / 3
	if out[0] != want {
		t.Errorf("weighted reduce = %v, want %v", out[0], want)
	}
}

func TestAccumulatorThreeWayWeights(t *testing.T) {
	// Gradients at iterations 2,3,4 taken at k=4: weights 1,2,3.
	a, err := NewAccumulator(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range []float64{10, 20, 30} {
		if err := a.Put(int64(2+i), tensor.FromSlice([]float64{v})); err != nil {
			t.Fatal(err)
		}
	}
	out, ok, err := a.Take(4)
	if err != nil || !ok {
		t.Fatalf("Take = (%v,%v)", ok, err)
	}
	want := (1.0*10 + 2.0*20 + 3.0*30) / 6
	if out[0] != want {
		t.Errorf("= %v, want %v", out[0], want)
	}
}

func TestAccumulatorBoundDropsStale(t *testing.T) {
	a, err := NewAccumulator(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put(0, tensor.FromSlice([]float64{100})); err != nil { // stale at k=2 (gap 2 ≥ bound 2)
		t.Fatal(err)
	}
	if err := a.Put(2, tensor.FromSlice([]float64{5})); err != nil {
		t.Fatal(err)
	}
	out, ok, err := a.Take(2)
	if err != nil || !ok {
		t.Fatalf("Take = (%v,%v)", ok, err)
	}
	if out[0] != 5 {
		t.Errorf("stale gradient leaked into reduce: %v", out[0])
	}
	if a.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", a.Dropped())
	}
}

func TestAccumulatorAllStale(t *testing.T) {
	a, err := NewAccumulator(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put(0, tensor.FromSlice([]float64{1})); err != nil {
		t.Fatal(err)
	}
	_, ok, err := a.Take(10)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("all-stale buffer should report no contribution")
	}
	if a.Dropped() != 1 {
		t.Errorf("Dropped = %d", a.Dropped())
	}
}

func TestAccumulatorUnboundedKeepsAll(t *testing.T) {
	a, err := NewAccumulator(1, 0) // unbounded
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put(0, tensor.FromSlice([]float64{1})); err != nil {
		t.Fatal(err)
	}
	out, ok, err := a.Take(1000)
	if err != nil || !ok {
		t.Fatalf("Take = (%v,%v)", ok, err)
	}
	if out[0] != 1 {
		t.Errorf("= %v", out[0])
	}
}

func TestAccumulatorCurrentIterationNotDropped(t *testing.T) {
	// A gradient from the current iteration (gap 0) must survive even
	// with bound 1.
	a, err := NewAccumulator(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put(3, tensor.FromSlice([]float64{7})); err != nil {
		t.Fatal(err)
	}
	out, ok, err := a.Take(3)
	if err != nil || !ok {
		t.Fatalf("Take = (%v,%v)", ok, err)
	}
	if out[0] != 7 {
		t.Errorf("= %v", out[0])
	}
}

func TestAccumulatorOldestIter(t *testing.T) {
	a, err := NewAccumulator(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range []int64{5, 3, 8} {
		if err := a.Put(it, tensor.FromSlice([]float64{1})); err != nil {
			t.Fatal(err)
		}
	}
	oldest, found := a.OldestIter()
	if !found || oldest != 3 {
		t.Errorf("OldestIter = (%d,%v), want (3,true)", oldest, found)
	}
	if a.Len() != 3 {
		t.Errorf("Len = %d", a.Len())
	}
}

func TestAccumulatorErrors(t *testing.T) {
	if _, err := NewAccumulator(0, 1); err == nil {
		t.Error("dim 0 should error")
	}
	a, err := NewAccumulator(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put(0, tensor.New(3)); err == nil {
		t.Error("shape mismatch should error")
	}
}

// Property: the weighted reduce lies in the convex hull of the inputs
// (coordinate-wise between min and max).
func TestQuickAccumulatorConvexHull(t *testing.T) {
	f := func(vals []float64, kRaw uint8) bool {
		if len(vals) == 0 || len(vals) > 10 {
			return true
		}
		for _, v := range vals {
			if v != v || v > 1e100 || v < -1e100 {
				return true
			}
		}
		a, err := NewAccumulator(1, 0)
		if err != nil {
			return false
		}
		min, max := vals[0], vals[0]
		for i, v := range vals {
			if err := a.Put(int64(i), tensor.FromSlice([]float64{v})); err != nil {
				return false
			}
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		out, ok, err := a.Take(int64(len(vals) - 1))
		if err != nil || !ok {
			return false
		}
		const eps = 1e-9
		return out[0] >= min-eps*(1+absf(min)) && out[0] <= max+eps*(1+absf(max))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
