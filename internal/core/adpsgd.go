package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// AD-PSGD wire subtypes carried in Message.Chunk.
const (
	adpsgdRequest int32 = iota + 1
	adpsgdReply
	adpsgdBusy
)

// ADPSGDResult reports one gossip worker's outcome.
type ADPSGDResult struct {
	// Params is the worker's final (locally held) model.
	Params tensor.Vector
	// Losses holds per-iteration batch losses.
	Losses []float64
	// Averagings counts successful pairwise averagings; Conflicts counts
	// busy rejections that forced a retry with another peer — the
	// scheduling conflicts the paper attributes to AD-PSGD.
	Averagings int
	Conflicts  int
	// Elapsed is the worker's wall-clock training time.
	Elapsed time.Duration
}

// adpsgdState is the lock-protected model shared between the training loop
// and the averaging responders.
type adpsgdState struct {
	mu     sync.Mutex
	params tensor.Vector
}

// RunADPSGDWorker trains with asynchronous decentralized parallel SGD on
// the goroutine runtime: each iteration the worker computes a gradient,
// atomically averages models with one uniformly chosen peer (retrying
// another peer on conflict — both sides averaging simultaneously would
// deadlock, which is the coordination cost the paper criticizes), and
// applies its gradient locally. Responder goroutines keep serving peers'
// averaging requests until the mesh closes, so the caller must close the
// mesh only after every rank's RunADPSGDWorker has returned.
func RunADPSGDWorker(mesh transport.Mesh, cfg TrainConfig) (*ADPSGDResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := mesh.Size()
	if n < 2 {
		return nil, errors.New("core: AD-PSGD needs at least 2 workers")
	}
	rank := mesh.Rank()
	dim := cfg.Model.Dim()
	start := time.Now()

	st := &adpsgdState{params: tensor.New(dim)}
	cfg.Model.Init(rng.New(cfg.Seed+7777), st.params)
	optim, err := cfg.newOptimizer(dim)
	if err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	batchSrc := src.Split(rank + 1)
	peerSrc := src.Split(1000 + rank)

	// Replies to this worker's own averaging requests. Buffered so a
	// late reply after a retry decision cannot block the reader.
	replies := make(chan transport.Message, n)

	// One reader per peer: demultiplex incoming traffic into averaging
	// requests (served here) and replies to our requests.
	var readers sync.WaitGroup
	for p := 0; p < n; p++ {
		if p == rank {
			continue
		}
		p := p
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				msg, err := mesh.Recv(p)
				if err != nil {
					return // mesh closed
				}
				switch msg.Chunk {
				case adpsgdRequest:
					serveAveraging(mesh, st, p, msg)
				case adpsgdReply, adpsgdBusy:
					replies <- msg
				}
			}
		}()
	}

	res := &ADPSGDResult{Losses: make([]float64, 0, cfg.Iterations)}
	grad := tensor.New(dim)
	snapshot := tensor.New(dim)
	for k := int64(0); k < int64(cfg.Iterations); k++ {
		st.mu.Lock()
		copy(snapshot, st.params)
		st.mu.Unlock()
		batch := cfg.Batch(batchSrc)
		loss, err := cfg.Model.Gradient(snapshot, grad, batch)
		if err != nil {
			return nil, fmt.Errorf("rank %d iter %d: %w", rank, k, err)
		}
		res.Losses = append(res.Losses, loss)
		if cfg.SlowDown != nil {
			if d := cfg.SlowDown(rank, int(k)); d > 0 {
				time.Sleep(d)
			}
		}

		// Atomic pairwise averaging with retry-on-conflict.
		averaged := false
		for attempt := 0; attempt < 4*n && !averaged; attempt++ {
			peer := peerSrc.Choice(n, rank)
			st.mu.Lock()
			mine := st.params.Clone()
			st.mu.Unlock()
			if err := mesh.Send(peer, transport.Message{
				Type: transport.MsgControl, Iter: k, Chunk: adpsgdRequest, Payload: mine,
			}); err != nil {
				return nil, fmt.Errorf("rank %d iter %d: %w", rank, k, err)
			}
			msg, ok := <-replies
			if !ok {
				return nil, errors.New("core: reply channel closed")
			}
			if msg.Chunk == adpsgdBusy {
				res.Conflicts++
				continue
			}
			st.mu.Lock()
			if err := st.params.CopyFrom(msg.Payload); err != nil {
				st.mu.Unlock()
				return nil, fmt.Errorf("rank %d iter %d: %w", rank, k, err)
			}
			st.mu.Unlock()
			res.Averagings++
			averaged = true
		}

		// Apply the local gradient to the (possibly averaged) model.
		st.mu.Lock()
		if _, err := optim.Step(st.params, grad, 1); err != nil {
			st.mu.Unlock()
			return nil, fmt.Errorf("rank %d iter %d: %w", rank, k, err)
		}
		st.mu.Unlock()
	}

	st.mu.Lock()
	res.Params = st.params.Clone()
	st.mu.Unlock()
	res.Elapsed = time.Since(start)
	// Responders keep serving until the caller closes the mesh; do not
	// wait for them here.
	go func() {
		readers.Wait()
		close(replies)
	}()
	return res, nil
}

// serveAveraging handles one peer's averaging request: atomically average
// the local model with the received one and reply with the result, or
// report busy when the local lock cannot be taken immediately (the
// requester retries elsewhere, avoiding the symmetric-request deadlock).
func serveAveraging(mesh transport.Mesh, st *adpsgdState, from int, req transport.Message) {
	if !st.mu.TryLock() {
		_ = mesh.Send(from, transport.Message{
			Type: transport.MsgControl, Iter: req.Iter, Chunk: adpsgdBusy,
		})
		return
	}
	avg := st.params.Clone()
	ok := len(req.Payload) == len(avg)
	if ok {
		for i := range avg {
			avg[i] = (avg[i] + req.Payload[i]) / 2
		}
		copy(st.params, avg)
	}
	st.mu.Unlock()
	if !ok {
		_ = mesh.Send(from, transport.Message{
			Type: transport.MsgControl, Iter: req.Iter, Chunk: adpsgdBusy,
		})
		return
	}
	_ = mesh.Send(from, transport.Message{
		Type: transport.MsgControl, Iter: req.Iter, Chunk: adpsgdReply, Payload: avg,
	})
}

// ConsensusParams averages the final models of a set of AD-PSGD results —
// the consensus model gossip converges toward.
func ConsensusParams(results []*ADPSGDResult) (tensor.Vector, error) {
	if len(results) == 0 {
		return nil, errors.New("core: no results")
	}
	vs := make([]tensor.Vector, len(results))
	for i, r := range results {
		vs[i] = r.Params
	}
	return tensor.Mean(vs)
}
