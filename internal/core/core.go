package core
