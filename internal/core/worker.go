package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/collective"
	"repro/internal/controller"
	"repro/internal/model"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// TrainConfig configures one training worker on the goroutine runtime.
type TrainConfig struct {
	// Model is the training objective (shared read-only across workers).
	Model model.Model
	// Batch samples a mini-batch of example indices for one step.
	Batch func(src *rng.Source) []int
	// LR, Momentum and WeightDecay configure the SGD optimizer.
	LR          float64
	Momentum    float64
	WeightDecay float64
	// Iterations is the number of synchronizations to run.
	Iterations int
	// StalenessBound is the bounded-delay window η (≥ 1; default 8):
	// compute may run at most η iterations ahead of the last completed
	// synchronization, and the accumulator drops gradients staler than η.
	StalenessBound int
	// Seed derives this worker's RNG streams.
	Seed int64
	// Compression selects the wire dtype for gradient synchronization
	// (tensor.F64, the zero value, disables it). Lossy dtypes enable
	// error-feedback: each worker keeps the quantization residual of the
	// regions it compressed and folds it into its next contribution, so
	// the compression error is corrected rather than accumulated.
	Compression tensor.Dtype
	// SlowDown optionally injects extra compute latency per iteration
	// for a given rank (tests and examples use it to create stragglers).
	SlowDown func(rank, iter int) time.Duration
	// Overlap enables the reducer pipeline: the backward pass emits
	// gradient buckets (model.LayeredModel) and each bucket's collective
	// launches as soon as its last layer finalizes, overlapping the rest of
	// backprop with communication. All ranks must agree on Overlap,
	// OverlapSerial and FusionBytes. Bit-identical to itself under any
	// scheduling — the bucket plan is a pure function of the model and
	// FusionBytes, and bucket collectives touch disjoint spans.
	Overlap bool
	// OverlapSerial keeps the bucketed data path but waits for each bucket
	// collective before launching the next — the sequential reference the
	// overlap benchmarks and bit-identity tests compare against.
	OverlapSerial bool
	// FusionBytes caps a reduction bucket's size when coalescing emitted
	// gradient spans (0 = collective.DefaultFusionBytes). A threshold at
	// least as large as the gradient collapses the plan to one bucket.
	FusionBytes int
	// Adam selects the Adam optimizer (standard β₁/β₂/ε) instead of
	// momentum-SGD; LR and WeightDecay apply, Momentum is ignored.
	Adam bool
	// ShardedUpdate enables the owner-computes update path: reduce-scatter
	// (always exact fp64) → owned-shard optimizer step → parameter
	// allgather at the Compression wire dtype. Optimizer state and update
	// compute shrink from full-vector-per-rank to one owned span per rank,
	// and the result is bit-identical to the replicated path under uniform
	// partitions (ring fold order, owner-side scale, one quantization per
	// shard). With a lossy wire the owner keeps master weights: the
	// error-feedback residual holds exact-minus-quantized for the owned
	// span, restored before each step. Incompatible with Overlap.
	ShardedUpdate bool
	// ShardWeights optionally skews the ownership spans (len = mesh size;
	// nil = uniform): spans follow tensor.WeightedSizes, so slow ranks can
	// own proportionally smaller shards. Requires ShardedUpdate.
	ShardWeights []float64
	// Algorithm pins the dense collective schedule of the replicated path
	// (zero = AlgoAuto). The sharded path always runs the direct exchange;
	// pinning AlgoRing on the replicated side makes the two paths
	// bit-comparable at any vector size.
	Algorithm collective.Algorithm
}

func (c *TrainConfig) validate() error {
	if c.Model == nil {
		return fmt.Errorf("core: nil model")
	}
	if c.Batch == nil {
		return fmt.Errorf("core: nil batch sampler")
	}
	if c.Iterations < 1 {
		return fmt.Errorf("core: %d iterations", c.Iterations)
	}
	if !c.Compression.Valid() {
		return fmt.Errorf("core: unknown compression dtype %d", c.Compression)
	}
	if c.ShardedUpdate && c.Overlap {
		return fmt.Errorf("core: sharded update does not compose with the overlap reducer")
	}
	if c.ShardWeights != nil && !c.ShardedUpdate {
		return fmt.Errorf("core: shard weights without sharded update")
	}
	return nil
}

// newOptimizer builds the configured update rule over dim parameters (a
// full vector for the replicated path, one owned span for the sharded one).
func (c *TrainConfig) newOptimizer(dim int) (opt.Optimizer, error) {
	if c.Adam {
		return opt.NewAdam(dim, c.LR, c.WeightDecay)
	}
	return opt.NewSGD(dim, c.LR, c.Momentum, c.WeightDecay)
}

// residual allocates the error-feedback buffer for lossy wires; nil
// disables residual capture in the collective.
func (c *TrainConfig) residual(dim int) tensor.Vector {
	if c.Compression == tensor.F64 {
		return nil
	}
	return tensor.New(dim)
}

func (c *TrainConfig) bound() int {
	if c.StalenessBound < 1 {
		return 8
	}
	return c.StalenessBound
}

// Result reports one worker's training outcome.
type Result struct {
	// Params is the final parameter vector.
	Params tensor.Vector
	// Losses holds the batch loss observed at each local compute step.
	Losses []float64
	// Contributed counts synchronizations this worker fed a real
	// gradient into; NullContribs counts the null contributions.
	Contributed  int
	NullContribs int
	// Elapsed is the worker's wall-clock training time.
	Elapsed time.Duration
	// MaxInFlight is the peak number of concurrently in-flight bucket
	// collectives the overlap reducer reached (0 when Overlap is off).
	MaxInFlight int
	// OptStateBytes is this rank's persistent optimizer-state footprint —
	// full-vector for the replicated path, one owned span under
	// ShardedUpdate (the N× memory reduction the benchmarks record).
	OptStateBytes int64
}

// RunRNAWorker trains with the RNA protocol: a compute thread produces
// gradients into an Accumulator and announces readiness to the controller;
// a communication thread joins every partial AllReduce the controller
// fires, contributing the staleness-weighted local reduction (or a null
// gradient) and applying the weighted average with the Linear Scaling Rule
// of Algorithm 2. All ranks converge on identical parameters because every
// rank applies the same reduced update.
func RunRNAWorker(mesh transport.Mesh, ctrl *controller.Controller, cfg TrainConfig) (*Result, error) {
	return runRNAWorker(mesh, ctrl, cfg, nil)
}

// postSyncHook runs on the communication thread after a synchronization's
// update is applied; the hierarchical scheme uses it for the periodic PS
// exchange. It may mutate params under mu.
type postSyncHook func(k int64, mu *sync.Mutex, params tensor.Vector) error

// runRNAWorker is RunRNAWorker with an optional post-synchronization hook.
func runRNAWorker(mesh transport.Mesh, ctrl *controller.Controller, cfg TrainConfig, post postSyncHook) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Overlap {
		return runRNAOverlapped(mesh, ctrl, cfg, post)
	}
	if cfg.ShardedUpdate {
		return runRNASharded(mesh, ctrl, cfg, post)
	}
	start := time.Now()
	rank := mesh.Rank()
	n := mesh.Size()
	dim := cfg.Model.Dim()

	acc, err := NewAccumulator(dim, cfg.bound())
	if err != nil {
		return nil, err
	}
	optim, err := cfg.newOptimizer(dim)
	if err != nil {
		return nil, err
	}

	src := rng.New(cfg.Seed)
	params := tensor.New(dim)
	cfg.Model.Init(rng.New(cfg.Seed+7777), params) // same init on all ranks
	batchSrc := src.Split(rank + 1)

	var (
		mu      sync.Mutex // guards params, synced and aborted
		cond    = sync.NewCond(&mu)
		synced  = int64(-1)
		aborted bool
	)
	abort := func() {
		mu.Lock()
		aborted = true
		cond.Broadcast()
		mu.Unlock()
	}
	res := &Result{Losses: make([]float64, 0, cfg.Iterations)}
	zero := tensor.New(dim)

	var (
		wg         sync.WaitGroup
		computeErr error
		commErr    error
	)

	// Compute thread.
	wg.Add(1)
	go func() {
		defer wg.Done()
		snapshot := tensor.New(dim)
		g := tensor.New(dim)
		for k := int64(0); k < int64(cfg.Iterations); k++ {
			// Bounded staleness: never run more than `bound` ahead
			// of the last completed synchronization.
			mu.Lock()
			for k-synced > int64(cfg.bound()) && !aborted {
				cond.Wait()
			}
			if aborted {
				mu.Unlock()
				return
			}
			copy(snapshot, params)
			mu.Unlock()

			batch := cfg.Batch(batchSrc)
			loss, err := cfg.Model.Gradient(snapshot, g, batch)
			if err != nil {
				computeErr = fmt.Errorf("rank %d iter %d: %w", rank, k, err)
				abort()
				return
			}
			if cfg.SlowDown != nil {
				if d := cfg.SlowDown(rank, int(k)); d > 0 {
					time.Sleep(d)
				}
			}
			res.Losses = append(res.Losses, loss)
			if err := acc.Put(k, g); err != nil {
				computeErr = fmt.Errorf("rank %d iter %d: %w", rank, k, err)
				abort()
				return
			}
			if err := ctrl.Ready(rank, k); err != nil {
				computeErr = fmt.Errorf("rank %d iter %d: %w", rank, k, err)
				abort()
				return
			}
		}
	}()

	// Communication thread.
	wg.Add(1)
	go func() {
		defer wg.Done()
		residual := cfg.residual(dim)
		for k := int64(0); k < int64(cfg.Iterations); k++ {
			fired, _ := ctrl.Await(k)
			<-fired

			contrib, ok, err := acc.Take(k)
			if err != nil {
				commErr = fmt.Errorf("rank %d iter %d: %w", rank, k, err)
				abort()
				return
			}
			in := zero
			if ok {
				in = contrib
				res.Contributed++
				// Error feedback: fold the quantization error this rank's
				// owned regions suffered in earlier rounds into the fresh
				// contribution. The partial collective sums contributions
				// before quantizing, so summing the per-rank residuals back
				// in reconstructs the lost mass exactly (in expectation the
				// compressed trajectory tracks the fp64 one).
				if residual != nil {
					_ = contrib.Add(residual)
					residual.Zero()
				}
			} else {
				res.NullContribs++
			}
			pr, err := collective.PartialAllReduceOpts(mesh, k, in, ok, collective.Options{
				Algorithm: cfg.Algorithm, Compression: cfg.Compression, Residual: residual,
			})
			if err != nil {
				commErr = fmt.Errorf("rank %d iter %d: %w", rank, k, err)
				abort()
				return
			}
			if pr.Contributors > 0 {
				// ḡ = W·Σg with W = 1/Σw; γ_k scaled by Σw/N.
				pr.Sum.Scale(1 / float64(pr.Contributors))
				scale, err := opt.LinearScale(pr.Contributors, n)
				if err != nil {
					commErr = err
					abort()
					return
				}
				mu.Lock()
				if _, err := optim.Step(params, pr.Sum, scale); err != nil {
					mu.Unlock()
					commErr = fmt.Errorf("rank %d iter %d: %w", rank, k, err)
					abort()
					return
				}
				mu.Unlock()
			}
			pr.Release()
			if post != nil {
				if err := post(k, &mu, params); err != nil {
					commErr = fmt.Errorf("rank %d iter %d: %w", rank, k, err)
					abort()
					return
				}
			}
			// Publish the completed synchronization only after the post
			// hook: compute snapshots taken at k+1 then deterministically
			// include the hook's parameter mutation (the PS broadcast),
			// which is what keeps ordered hierarchical runs bitwise
			// reproducible.
			mu.Lock()
			synced = k
			cond.Broadcast()
			mu.Unlock()
			if rank == 0 {
				ctrl.Forget(k - int64(cfg.bound()) - 2)
			}
		}
	}()

	wg.Wait()
	if computeErr != nil {
		return nil, computeErr
	}
	if commErr != nil {
		return nil, commErr
	}
	res.Params = params
	res.OptStateBytes = optim.StateBytes()
	res.Elapsed = time.Since(start)
	return res, nil
}

// RunBSPWorker trains with the Horovod-style blocking baseline: compute,
// wait at the global barrier, fully AllReduce-average, step. It uses the
// same controller (with the AllReady policy) and collective stack so that
// RNA-vs-BSP comparisons isolate the synchronization discipline.
func RunBSPWorker(mesh transport.Mesh, ctrl *controller.Controller, cfg TrainConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Overlap {
		return runBSPOverlapped(mesh, ctrl, cfg)
	}
	if cfg.ShardedUpdate {
		return runBSPSharded(mesh, ctrl, cfg)
	}
	start := time.Now()
	rank := mesh.Rank()
	n := mesh.Size()
	dim := cfg.Model.Dim()

	optim, err := cfg.newOptimizer(dim)
	if err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	params := tensor.New(dim)
	cfg.Model.Init(rng.New(cfg.Seed+7777), params) // same init on all ranks
	batchSrc := src.Split(rank + 1)

	res := &Result{Losses: make([]float64, 0, cfg.Iterations)}
	grad := tensor.New(dim)
	residual := cfg.residual(dim)
	for k := int64(0); k < int64(cfg.Iterations); k++ {
		batch := cfg.Batch(batchSrc)
		loss, err := cfg.Model.Gradient(params, grad, batch)
		if err != nil {
			return nil, fmt.Errorf("rank %d iter %d: %w", rank, k, err)
		}
		if cfg.SlowDown != nil {
			if d := cfg.SlowDown(rank, int(k)); d > 0 {
				time.Sleep(d)
			}
		}
		res.Losses = append(res.Losses, loss)
		if err := ctrl.Ready(rank, k); err != nil {
			return nil, err
		}
		fired, _ := ctrl.Await(k)
		<-fired
		// Error feedback: the residual holds this rank's owned-region
		// quantization error of the AVERAGED result, so scaling by n before
		// the local add makes the next average regain exactly Σ_r residual_r.
		if residual != nil {
			_ = grad.AddScaled(float64(n), residual)
			residual.Zero()
		}
		if err := collective.AllReduceOpts(mesh, k, grad, collective.OpAverage, collective.Options{
			Algorithm: cfg.Algorithm, Compression: cfg.Compression, Residual: residual,
		}); err != nil {
			return nil, fmt.Errorf("rank %d iter %d: %w", rank, k, err)
		}
		if _, err := optim.Step(params, grad, 1); err != nil {
			return nil, fmt.Errorf("rank %d iter %d: %w", rank, k, err)
		}
		res.Contributed++
		if rank == 0 {
			ctrl.Forget(k - 2)
		}
	}
	res.Params = params
	res.OptStateBytes = optim.StateBytes()
	res.Elapsed = time.Since(start)
	return res, nil
}
