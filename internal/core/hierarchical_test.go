package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/controller"
	"repro/internal/model"
	"repro/internal/ps"
	"repro/internal/topology"
	"repro/internal/transport"
)

func TestHierarchicalWorkerTrains(t *testing.T) {
	const n = 6
	train, ds := blobConfig(t, 60)
	groups := []topology.Group{
		{Members: []int{0, 1, 2}},
		{Members: []int{3, 4, 5}},
	}
	store := ps.NewStore(1)
	if err := SeedStore(store, train); err != nil {
		t.Fatal(err)
	}
	ctrls := make([]*controller.Controller, len(groups))
	for gi, g := range groups {
		var err error
		ctrls[gi], err = controller.New(controller.PowerOfChoices, len(g.Members), 2, int64(gi+5))
		if err != nil {
			t.Fatal(err)
		}
	}
	net, err := transport.NewLocalNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()

	cfg := HierarchicalConfig{Train: train, Groups: groups, Store: store, PSEvery: 4}
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, m := range net.Endpoints() {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := cfg
			if i >= 3 {
				// The second group is deterministically slower.
				c.Train.SlowDown = func(int, int) time.Duration { return 2 * time.Millisecond }
			}
			results[i], errs[i] = RunHierarchicalWorker(m, ctrls, c)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}

	// Within each group, ranks end identical.
	for _, g := range groups {
		base := results[g.Members[0]].Params
		for _, m := range g.Members[1:] {
			if !results[m].Params.Equal(base, 1e-9) {
				t.Fatalf("rank %d diverged within its group", m)
			}
		}
	}
	// The PS coupled the groups: their models must be close (they share
	// the last pulled global plus at most PSEvery local rounds).
	if !results[0].Params.Equal(results[3].Params, 5.0) {
		t.Error("groups wildly diverged despite PS coupling")
	}
	// And the training worked.
	cls := train.Model.(model.Classifier)
	top1, _, err := cls.Accuracy(results[0].Params, model.All(ds), 1)
	if err != nil {
		t.Fatal(err)
	}
	if top1 < 0.75 {
		t.Errorf("hierarchical top-1 = %v", top1)
	}
	// The PS saw exchanges from both groups.
	if store.Pushes(hierarchicalPSKey) < 3 {
		t.Errorf("PS pushes = %d, want several", store.Pushes(hierarchicalPSKey))
	}
}

func TestHierarchicalValidation(t *testing.T) {
	train, _ := blobConfig(t, 5)
	net, err := transport.NewLocalNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	mesh, err := net.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	groups := []topology.Group{{Members: []int{0, 1}}}
	if _, err := RunHierarchicalWorker(mesh, nil, HierarchicalConfig{Train: train, Groups: groups}); err == nil {
		t.Error("nil store should error")
	}
	store := ps.NewStore(1)
	if _, err := RunHierarchicalWorker(mesh, nil, HierarchicalConfig{
		Train: train, Groups: []topology.Group{{Members: []int{1}}}, Store: store,
	}); err == nil {
		t.Error("rank not in any group should error")
	}
	if _, err := RunHierarchicalWorker(mesh, nil, HierarchicalConfig{
		Train: train, Groups: groups, Store: store,
	}); err == nil {
		t.Error("missing controller should error")
	}
	if err := SeedStore(ps.NewStore(1), TrainConfig{}); err == nil {
		t.Error("seeding with nil model should error")
	}
}

func TestGroupOf(t *testing.T) {
	groups := []topology.Group{{Members: []int{0, 2}}, {Members: []int{1}}}
	gi, g, err := groupOf(groups, 2)
	if err != nil || gi != 0 || g.Size() != 2 {
		t.Errorf("groupOf(2) = (%d,%v,%v)", gi, g, err)
	}
	if _, _, err := groupOf(groups, 9); err == nil {
		t.Error("unknown rank should error")
	}
}
