package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/controller"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/transport"
)

// trainCluster runs fn (one of the worker runners) on every rank of a fresh
// local network and returns per-rank results.
func trainCluster(t *testing.T, n int, run func(m transport.Mesh) (*Result, error)) []*Result {
	t.Helper()
	net, err := transport.NewLocalNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, m := range net.Endpoints() {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = run(m)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	return results
}

func blobConfig(t *testing.T, iters int) (TrainConfig, *data.Dataset) {
	t.Helper()
	src := rng.New(77)
	ds, err := data.Blobs(src, 4, 6, 60, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewLogistic(ds)
	if err != nil {
		t.Fatal(err)
	}
	return TrainConfig{
		Model:          m,
		Batch:          func(s *rng.Source) []int { return ds.Batch(s, 16) },
		LR:             0.25,
		Momentum:       0.9,
		Iterations:     iters,
		StalenessBound: 2,
		Seed:           42,
	}, ds
}

func TestBSPWorkerTrains(t *testing.T) {
	const n = 4
	cfg, ds := blobConfig(t, 60)
	ctrl, err := controller.New(controller.AllReady, n, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	results := trainCluster(t, n, func(m transport.Mesh) (*Result, error) {
		return RunBSPWorker(m, ctrl, cfg)
	})
	// All ranks end with identical parameters (BSP invariant).
	for r := 1; r < n; r++ {
		if !results[r].Params.Equal(results[0].Params, 1e-9) {
			t.Fatalf("rank %d params diverged from rank 0", r)
		}
	}
	// The model must have learned something.
	cls := cfg.Model.(model.Classifier)
	top1, _, err := cls.Accuracy(results[0].Params, model.All(ds), 1)
	if err != nil {
		t.Fatal(err)
	}
	if top1 < 0.8 {
		t.Errorf("BSP top-1 after training = %v", top1)
	}
	if results[0].Contributed != 60 {
		t.Errorf("BSP contributed = %d, want 60", results[0].Contributed)
	}
}

func TestRNAWorkerTrains(t *testing.T) {
	const n = 4
	cfg, ds := blobConfig(t, 80)
	ctrl, err := controller.New(controller.PowerOfChoices, n, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	results := trainCluster(t, n, func(m transport.Mesh) (*Result, error) {
		return RunRNAWorker(m, ctrl, cfg)
	})
	// RNA invariant: every rank applies the same reduced update, so the
	// final parameters are identical everywhere.
	for r := 1; r < n; r++ {
		if !results[r].Params.Equal(results[0].Params, 1e-9) {
			t.Fatalf("rank %d params diverged from rank 0", r)
		}
	}
	cls := cfg.Model.(model.Classifier)
	top1, _, err := cls.Accuracy(results[0].Params, model.All(ds), 1)
	if err != nil {
		t.Fatal(err)
	}
	if top1 < 0.8 {
		t.Errorf("RNA top-1 after training = %v", top1)
	}
	// Contribution accounting is consistent.
	for r, res := range results {
		if res.Contributed+res.NullContribs != 80 {
			t.Errorf("rank %d contributions %d+%d != 80", r, res.Contributed, res.NullContribs)
		}
	}
}

func TestRNAWorkerWithStraggler(t *testing.T) {
	const n = 3
	cfg, _ := blobConfig(t, 40)
	// Rank 2 is persistently slow.
	mkCfg := func(rank int) TrainConfig {
		c := cfg
		if rank == 2 {
			c.SlowDown = func(int, int) time.Duration { return 3 * time.Millisecond }
		}
		return c
	}
	ctrl, err := controller.New(controller.PowerOfChoices, n, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	results := trainCluster(t, n, func(m transport.Mesh) (*Result, error) {
		return RunRNAWorker(m, ctrl, mkCfg(m.Rank()))
	})
	for r := 1; r < n; r++ {
		if !results[r].Params.Equal(results[0].Params, 1e-9) {
			t.Fatalf("rank %d params diverged", r)
		}
	}
	// The straggler must have produced at least one null contribution or
	// accumulated gradients (evidence the non-blocking path exercised);
	// total synchronizations still completed.
	if !results[0].Params.IsFinite() {
		t.Error("non-finite parameters")
	}
}

func TestRNAFasterThanBSPWithStraggler(t *testing.T) {
	// With a hard straggler, RNA's wall-clock should beat BSP's on the
	// same workload: BSP waits for the straggler every iteration, RNA
	// only when probed into the critical path.
	const n, iters = 3, 30
	mk := func(rank int) func(int, int) time.Duration {
		if rank == 2 {
			return func(int, int) time.Duration { return 4 * time.Millisecond }
		}
		return nil
	}

	cfgB, _ := blobConfig(t, iters)
	ctrlB, err := controller.New(controller.AllReady, n, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	bsp := trainCluster(t, n, func(m transport.Mesh) (*Result, error) {
		c := cfgB
		c.SlowDown = mk(m.Rank())
		return RunBSPWorker(m, ctrlB, c)
	})

	cfgR, _ := blobConfig(t, iters)
	ctrlR, err := controller.New(controller.PowerOfChoices, n, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	rna := trainCluster(t, n, func(m transport.Mesh) (*Result, error) {
		c := cfgR
		c.SlowDown = mk(m.Rank())
		return RunRNAWorker(m, ctrlR, c)
	})

	// Compare the fastest rank's elapsed time under each scheme: under
	// BSP even rank 0 is dragged to straggler pace.
	if bsp[0].Elapsed < rna[0].Elapsed {
		t.Logf("note: BSP %v < RNA %v (timing-sensitive, not failing)", bsp[0].Elapsed, rna[0].Elapsed)
	}
	// Robust check: BSP rank 0 cannot be faster than iters * straggler
	// delay, while RNA rank 0 typically is.
	minBSP := time.Duration(iters) * 4 * time.Millisecond
	if bsp[0].Elapsed < minBSP {
		t.Errorf("BSP rank 0 finished in %v, impossible with a %v straggler floor", bsp[0].Elapsed, minBSP)
	}
}

func TestRNAWorkerOverTCP(t *testing.T) {
	const n = 3
	cfg, _ := blobConfig(t, 20)
	meshes, err := transport.NewTCPCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	ctrl, err := controller.New(controller.PowerOfChoices, n, 2, 21)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, m := range meshes {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = RunRNAWorker(m, ctrl, cfg)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	for r := 1; r < n; r++ {
		if !results[r].Params.Equal(results[0].Params, 1e-9) {
			t.Fatalf("rank %d params diverged over TCP", r)
		}
	}
}

func TestTrainConfigValidation(t *testing.T) {
	net, err := transport.NewLocalNetwork(1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	mesh, err := net.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(controller.Solo, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunRNAWorker(mesh, ctrl, TrainConfig{}); err == nil {
		t.Error("empty config should error")
	}
	cfg, _ := blobConfig(t, 0)
	if _, err := RunBSPWorker(mesh, ctrl, cfg); err == nil {
		t.Error("0 iterations should error")
	}
	cfg2, _ := blobConfig(t, 5)
	cfg2.Batch = nil
	if _, err := RunRNAWorker(mesh, ctrl, cfg2); err == nil {
		t.Error("nil batch should error")
	}
	cfg3, _ := blobConfig(t, 5)
	cfg3.LR = -1
	if _, err := RunRNAWorker(mesh, ctrl, cfg3); err == nil {
		t.Error("negative lr should error")
	}
}

func TestRNASingleWorker(t *testing.T) {
	// Degenerate single-rank cluster: RNA reduces to plain SGD.
	cfg, ds := blobConfig(t, 80)
	ctrl, err := controller.New(controller.PowerOfChoices, 1, 2, 31)
	if err != nil {
		t.Fatal(err)
	}
	results := trainCluster(t, 1, func(m transport.Mesh) (*Result, error) {
		return RunRNAWorker(m, ctrl, cfg)
	})
	cls := cfg.Model.(model.Classifier)
	top1, _, err := cls.Accuracy(results[0].Params, model.All(ds), 1)
	if err != nil {
		t.Fatal(err)
	}
	if top1 < 0.75 {
		t.Errorf("single-worker RNA top-1 = %v", top1)
	}
}
