package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/collective"
	"repro/internal/controller"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// Owner-computes sharded update (ZeRO-style): instead of every rank
// reducing the full gradient and redundantly running the full optimizer
// over a full copy of optimizer state, the synchronization decomposes into
// reduce-scatter → owned-shard optimizer step → parameter allgather. Rank r
// owns the span offs[r]:offs[r+1] of the parameter vector; it is the only
// rank holding optimizer state for that span, so state memory and update
// compute both shrink N×.
//
// Bit-identity. The reduce-scatter folds in the pipelined ring's order and
// scales at the owner (collective/shard.go), the optimizers are strictly
// element-wise with state depending only on the step count, and the fp64
// allgather moves bits verbatim — so under ANY partition the sharded path
// reproduces the replicated path (with a pinned ring schedule) bit for bit,
// and each rank's optimizer state equals the matching slice of the
// replicated state.
//
// Lossy wires (the fp64-reduce / compressed-allgather invariant). The
// reduction always ships exact fp64; Compression applies to the parameter
// allgather only. The owner then keeps MASTER WEIGHTS for its span: the
// error-feedback residual holds exact-minus-quantized after each gather
// (tensor.RoundTripEF at the owner), and adding it back before the next
// step restores the exact fp64 trajectory. Gradients are evaluated at the
// quantized parameters on every rank — the usual mixed-precision contract —
// and all ranks stay bit-identical because they all hold the same decoded
// grid values.

// shardSpans resolves the ownership table and this rank's span.
func shardSpans(cfg *TrainConfig, dim, n, rank int) (offs []int, span int, err error) {
	if cfg.ShardWeights != nil && len(cfg.ShardWeights) != n {
		return nil, 0, fmt.Errorf("core: %d shard weights over %d ranks", len(cfg.ShardWeights), n)
	}
	offs, err = collective.ShardOffsets(dim, n, cfg.ShardWeights)
	if err != nil {
		return nil, 0, err
	}
	return offs, offs[rank+1] - offs[rank], nil
}

// shardOptimizer builds the owned-span optimizer (nil when the span is
// empty — a rank can own zero elements under an extreme partition).
func shardOptimizer(cfg *TrainConfig, span int) (opt.Optimizer, error) {
	if span == 0 {
		return nil, nil
	}
	return cfg.newOptimizer(span)
}

// restoreMaster adds the owned span's error-feedback residual back into the
// parameters, recovering the exact fp64 master weights before an optimizer
// step; the residual is re-captured by the next allgather's RoundTripEF.
func restoreMaster(params, residual tensor.Vector, lo, hi int) {
	if residual == nil {
		return
	}
	own := params[lo:hi]
	_ = own.Add(residual[lo:hi])
	residual[lo:hi].Zero()
}

// runBSPSharded is RunBSPWorker's owner-computes path.
func runBSPSharded(mesh transport.Mesh, ctrl *controller.Controller, cfg TrainConfig) (*Result, error) {
	start := time.Now()
	rank := mesh.Rank()
	n := mesh.Size()
	dim := cfg.Model.Dim()

	offs, span, err := shardSpans(&cfg, dim, n, rank)
	if err != nil {
		return nil, err
	}
	optim, err := shardOptimizer(&cfg, span)
	if err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	params := tensor.New(dim)
	cfg.Model.Init(rng.New(cfg.Seed+7777), params) // same init on all ranks
	batchSrc := src.Split(rank + 1)

	res := &Result{Losses: make([]float64, 0, cfg.Iterations)}
	grad := tensor.New(dim)
	residual := cfg.residual(dim)
	lo, hi := offs[rank], offs[rank+1]
	for k := int64(0); k < int64(cfg.Iterations); k++ {
		batch := cfg.Batch(batchSrc)
		loss, err := cfg.Model.Gradient(params, grad, batch)
		if err != nil {
			return nil, fmt.Errorf("rank %d iter %d: %w", rank, k, err)
		}
		if cfg.SlowDown != nil {
			if d := cfg.SlowDown(rank, int(k)); d > 0 {
				time.Sleep(d)
			}
		}
		res.Losses = append(res.Losses, loss)
		if err := ctrl.Ready(rank, k); err != nil {
			return nil, err
		}
		fired, _ := ctrl.Await(k)
		<-fired
		if err := collective.ReduceScatter(mesh, k, grad, collective.OpAverage, offs); err != nil {
			return nil, fmt.Errorf("rank %d iter %d: %w", rank, k, err)
		}
		if optim != nil {
			restoreMaster(params, residual, lo, hi)
			if _, err := optim.Step(params[lo:hi], grad[lo:hi], 1); err != nil {
				return nil, fmt.Errorf("rank %d iter %d: %w", rank, k, err)
			}
		}
		if err := collective.AllGather(mesh, k, params, offs, collective.Options{
			Compression: cfg.Compression, Residual: residual,
		}); err != nil {
			return nil, fmt.Errorf("rank %d iter %d: %w", rank, k, err)
		}
		res.Contributed++
		if rank == 0 {
			ctrl.Forget(k - 2)
		}
	}
	res.Params = params
	if optim != nil {
		res.OptStateBytes = optim.StateBytes()
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// runRNASharded is runRNAWorker's owner-computes path: the same
// compute/communication thread split and bounded-staleness gate, with the
// partial collective decomposed into PartialReduceScatter (the contributor
// count rides the scatter, so every rank skips or applies the update in
// lockstep) and a parameter AllGather after the owned-span step.
func runRNASharded(mesh transport.Mesh, ctrl *controller.Controller, cfg TrainConfig, post postSyncHook) (*Result, error) {
	start := time.Now()
	rank := mesh.Rank()
	n := mesh.Size()
	dim := cfg.Model.Dim()

	acc, err := NewAccumulator(dim, cfg.bound())
	if err != nil {
		return nil, err
	}
	offs, span, err := shardSpans(&cfg, dim, n, rank)
	if err != nil {
		return nil, err
	}
	optim, err := shardOptimizer(&cfg, span)
	if err != nil {
		return nil, err
	}

	src := rng.New(cfg.Seed)
	params := tensor.New(dim)
	cfg.Model.Init(rng.New(cfg.Seed+7777), params) // same init on all ranks
	batchSrc := src.Split(rank + 1)

	var (
		mu      sync.Mutex // guards params, synced and aborted
		cond    = sync.NewCond(&mu)
		synced  = int64(-1)
		aborted bool
	)
	abort := func() {
		mu.Lock()
		aborted = true
		cond.Broadcast()
		mu.Unlock()
	}
	res := &Result{Losses: make([]float64, 0, cfg.Iterations)}
	// nullGrad stands in for the contribution on null rounds; only its owned
	// span is ever written (by the reduce-scatter).
	nullGrad := tensor.New(dim)
	lo, hi := offs[rank], offs[rank+1]

	var (
		wg         sync.WaitGroup
		computeErr error
		commErr    error
	)

	// Compute thread — identical to the replicated path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		snapshot := tensor.New(dim)
		g := tensor.New(dim)
		for k := int64(0); k < int64(cfg.Iterations); k++ {
			mu.Lock()
			for k-synced > int64(cfg.bound()) && !aborted {
				cond.Wait()
			}
			if aborted {
				mu.Unlock()
				return
			}
			copy(snapshot, params)
			mu.Unlock()

			batch := cfg.Batch(batchSrc)
			loss, err := cfg.Model.Gradient(snapshot, g, batch)
			if err != nil {
				computeErr = fmt.Errorf("rank %d iter %d: %w", rank, k, err)
				abort()
				return
			}
			if cfg.SlowDown != nil {
				if d := cfg.SlowDown(rank, int(k)); d > 0 {
					time.Sleep(d)
				}
			}
			res.Losses = append(res.Losses, loss)
			if err := acc.Put(k, g); err != nil {
				computeErr = fmt.Errorf("rank %d iter %d: %w", rank, k, err)
				abort()
				return
			}
			if err := ctrl.Ready(rank, k); err != nil {
				computeErr = fmt.Errorf("rank %d iter %d: %w", rank, k, err)
				abort()
				return
			}
		}
	}()

	// Communication thread.
	wg.Add(1)
	go func() {
		defer wg.Done()
		residual := cfg.residual(dim)
		for k := int64(0); k < int64(cfg.Iterations); k++ {
			fired, _ := ctrl.Await(k)
			<-fired

			contrib, ok, err := acc.Take(k)
			if err != nil {
				commErr = fmt.Errorf("rank %d iter %d: %w", rank, k, err)
				abort()
				return
			}
			in := nullGrad
			if ok {
				in = contrib
				res.Contributed++
			} else {
				res.NullContribs++
			}
			// No gradient error feedback here: with a sharded update the
			// reduction is always exact fp64, and the residual tracks the
			// PARAMETER quantization of the allgather instead.
			count, err := collective.PartialReduceScatter(mesh, k, in, ok, offs)
			if err != nil {
				commErr = fmt.Errorf("rank %d iter %d: %w", rank, k, err)
				abort()
				return
			}
			if count > 0 {
				// ḡ = W·Σg with W = 1/Σw over the owned span only; γ_k
				// scaled by Σw/N, exactly the replicated Algorithm 2 path.
				ownSum := in[lo:hi]
				ownSum.Scale(1 / float64(count))
				scale, err := opt.LinearScale(count, n)
				if err != nil {
					commErr = err
					abort()
					return
				}
				mu.Lock()
				if optim != nil {
					restoreMaster(params, residual, lo, hi)
					if _, err := optim.Step(params[lo:hi], ownSum, scale); err != nil {
						mu.Unlock()
						commErr = fmt.Errorf("rank %d iter %d: %w", rank, k, err)
						abort()
						return
					}
				}
				// Gather under mu so compute snapshots never observe a
				// half-updated vector; waiting compute threads sit in
				// cond.Wait and do not block the collective.
				if err := collective.AllGather(mesh, k, params, offs, collective.Options{
					Compression: cfg.Compression, Residual: residual,
				}); err != nil {
					mu.Unlock()
					commErr = fmt.Errorf("rank %d iter %d: %w", rank, k, err)
					abort()
					return
				}
				mu.Unlock()
			}
			// (When every rank computed the identical zero count, the
			// update AND the gather are skipped in lockstep, like the
			// replicated path skips its step.)
			if post != nil {
				if err := post(k, &mu, params); err != nil {
					commErr = fmt.Errorf("rank %d iter %d: %w", rank, k, err)
					abort()
					return
				}
			}
			// Publish the completed synchronization only after the post
			// hook, so compute snapshots at k+1 deterministically include
			// the hook's parameter mutation (see runRNAWorker).
			mu.Lock()
			synced = k
			cond.Broadcast()
			mu.Unlock()
			if rank == 0 {
				ctrl.Forget(k - int64(cfg.bound()) - 2)
			}
		}
	}()

	wg.Wait()
	if computeErr != nil {
		return nil, computeErr
	}
	if commErr != nil {
		return nil, commErr
	}
	res.Params = params
	if optim != nil {
		res.OptStateBytes = optim.StateBytes()
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
