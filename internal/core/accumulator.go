// Package core implements the paper's primary contribution: the RNA
// (Randomized Non-blocking AllReduce) worker runtime. It provides
//
//   - Accumulator: the comm-thread gradient buffer with the
//     staleness-weighted local reduction of Section 3.3
//     (g' = Σ[t−(k−τ)+1]·g_t / Σ[t−(k−τ)+1]) and bounded-staleness
//     overwrite;
//   - Worker: a goroutine-runtime training worker with decoupled compute
//     and communication threads (cross-iteration execution, Fig. 4),
//     driven by a controller.Controller and a collective partial
//     AllReduce;
//   - BSPWorker: the Horovod-style blocking baseline on the same runtime.
package core

import (
	"fmt"
	"sync"

	"repro/internal/tensor"
)

// Accumulator buffers the gradients a worker computes between two partial
// AllReduces. When the worker contributes, the buffered gradients are
// locally reduced with weights linear in their iteration (newer gradients
// weigh more) and the buffer is reset to null — exactly the WriteOp/ReadOp
// behaviour of Section 6.
type Accumulator struct {
	mu      sync.Mutex
	dim     int
	bound   int64
	grads   []tensor.Vector
	iters   []int64
	dropped int64

	// weights is the scratch for Take's local reduction; free recycles
	// the per-Put gradient copies so a steady-state worker stops
	// allocating one dim-sized vector per iteration.
	weights []float64
	free    []tensor.Vector
}

// NewAccumulator returns an accumulator for dim-sized gradients that keeps
// at most `bound` iterations of staleness (older entries are overwritten,
// per the bounded-staleness design the paper adopts from SSP). bound < 1 is
// treated as unbounded.
func NewAccumulator(dim int, bound int) (*Accumulator, error) {
	if dim < 1 {
		return nil, fmt.Errorf("core: accumulator dim %d", dim)
	}
	b := int64(bound)
	if bound < 1 {
		b = 1<<62 - 1
	}
	return &Accumulator{dim: dim, bound: b}, nil
}

// Put buffers the gradient computed at iteration iter. The vector is
// copied, so callers may reuse their buffer.
func (a *Accumulator) Put(iter int64, grad tensor.Vector) error {
	if len(grad) != a.dim {
		return tensor.ErrShapeMismatch
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var g tensor.Vector
	if n := len(a.free); n > 0 {
		g = a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		copy(g, grad)
	} else {
		g = grad.Clone()
	}
	a.grads = append(a.grads, g)
	a.iters = append(a.iters, iter)
	return nil
}

// Len returns the number of buffered gradients.
func (a *Accumulator) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.grads)
}

// Dropped returns how many gradients were discarded by the staleness bound.
func (a *Accumulator) Dropped() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dropped
}

// Take drains the buffer for a synchronization at iteration current: stale
// entries (current − iter ≥ bound) are dropped, the survivors are combined
// with the paper's weights w_t = t − (current − τ) + 1 where τ is the
// largest surviving gap, and the buffer is reset. ok is false when nothing
// survives — the worker then contributes a null gradient.
func (a *Accumulator) Take(current int64) (grad tensor.Vector, ok bool, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.grads) == 0 {
		return nil, false, nil
	}
	// Filter by the staleness bound; dropped copies go to the free list.
	keepG := a.grads[:0]
	keepI := a.iters[:0]
	for i, it := range a.iters {
		if current-it >= a.bound && current-it > 0 {
			a.dropped++
			a.free = append(a.free, a.grads[i])
			continue
		}
		keepG = append(keepG, a.grads[i])
		keepI = append(keepI, it)
	}
	for i := len(keepG); i < len(a.grads); i++ {
		a.grads[i] = nil
	}
	a.grads, a.iters = keepG, keepI
	if len(a.grads) == 0 {
		return nil, false, nil
	}
	// τ = largest gap among survivors; weight of entry t is
	// t − (current − τ) + 1, so the oldest survivor weighs 1 and newer
	// entries weigh linearly more.
	var tau int64
	for _, it := range a.iters {
		if g := current - it; g > tau {
			tau = g
		}
	}
	a.weights = a.weights[:0]
	for _, it := range a.iters {
		a.weights = append(a.weights, float64(it-(current-tau)+1))
	}
	out, err := tensor.WeightedMean(a.grads, a.weights)
	if err != nil {
		return nil, false, fmt.Errorf("core: local reduce: %w", err)
	}
	// Reset to null: after each AllReduce the inputs are overwritten so
	// outdated gradients are never reused (Section 6). The copies are
	// recycled for future Puts.
	a.free = append(a.free, a.grads...)
	for i := range a.grads {
		a.grads[i] = nil
	}
	a.grads = a.grads[:0]
	a.iters = a.iters[:0]
	return out, true, nil
}

// OldestIter returns the iteration of the oldest buffered gradient, and
// false when empty.
func (a *Accumulator) OldestIter() (int64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.iters) == 0 {
		return 0, false
	}
	min := a.iters[0]
	for _, it := range a.iters[1:] {
		if it < min {
			min = it
		}
	}
	return min, true
}
