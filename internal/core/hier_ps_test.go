package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/controller"
	"repro/internal/ps"
	"repro/internal/topology"
	"repro/internal/transport"
)

// hierPSGroups is the 2-groups-of-2 layout the end-to-end PS tests run:
// worker ranks 0..3, leaving rank 4 free for a PS server on a 5-rank mesh.
var hierPSGroups = []topology.Group{
	{Members: []int{0, 1}},
	{Members: []int{2, 3}},
}

// hierPSConfig builds a deterministic hierarchical config: AllReady
// controllers and StalenessBound 1 pin the RNA trajectory, OrderedPS pins
// the global exchange order, so two runs differ only in how the leaders
// reach the parameter server.
func hierPSConfig(t *testing.T) (HierarchicalConfig, []*controller.Controller) {
	t.Helper()
	train, _ := blobConfig(t, 8)
	train.StalenessBound = 1
	cfg := HierarchicalConfig{Train: train, Groups: hierPSGroups, PSEvery: 2, OrderedPS: true}
	ctrls := make([]*controller.Controller, len(cfg.Groups))
	for gi, g := range cfg.Groups {
		var err error
		ctrls[gi], err = controller.New(controller.AllReady, len(g.Members), 0, 1)
		if err != nil {
			t.Fatal(err)
		}
	}
	return cfg, ctrls
}

func runHierWorkers(t *testing.T, meshes []transport.Mesh, ctrls []*controller.Controller, cfg HierarchicalConfig) []*Result {
	t.Helper()
	results := make([]*Result, len(meshes))
	errs := make([]error, len(meshes))
	var wg sync.WaitGroup
	for i, m := range meshes {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = RunHierarchicalWorker(m, ctrls, cfg)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	return results
}

// TestHierarchicalTCPBitwiseMatchesLoopback is the tentpole end-to-end
// gate: a hierarchical run whose leaders reach a dedicated PS rank over TCP
// at an f64 wire finishes with final parameters and losses bitwise equal to
// the same run against the in-process loopback Store.
func TestHierarchicalTCPBitwiseMatchesLoopback(t *testing.T) {
	// Run A: in-process loopback store.
	cfgA, ctrlsA := hierPSConfig(t)
	store := ps.NewStore(4)
	if err := SeedStore(store, cfgA.Train); err != nil {
		t.Fatal(err)
	}
	cfgA.Store = store
	netA, err := transport.NewLocalNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	resA := runHierWorkers(t, netA.Endpoints(), ctrlsA, cfgA)
	_ = netA.Close()

	// Run B: 4 workers + 1 PS rank over real TCP, f64 wire.
	cfgB, ctrlsB := hierPSConfig(t)
	cfgB.PS = &ps.ClientConfig{Servers: []int{4}}
	meshes, err := transport.NewTCPCluster(5)
	if err != nil {
		t.Fatal(err)
	}
	init, err := InitialParams(cfgB.Train)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ps.NewServer(meshes[4], ps.ServerConfig{
		Key: HierarchicalPSKey, Dim: len(init), Init: init,
	})
	if err != nil {
		t.Fatal(err)
	}
	workers := make([]transport.Mesh, 4)
	for i := range workers {
		workers[i] = meshes[i]
	}
	resB := runHierWorkers(t, workers, ctrlsB, cfgB)
	for _, m := range meshes {
		_ = m.Close()
	}
	if err := srv.Wait(); err != nil {
		t.Fatalf("ps server: %v", err)
	}

	for r := range resA {
		a, b := resA[r], resB[r]
		for i := range a.Params {
			if math.Float64bits(a.Params[i]) != math.Float64bits(b.Params[i]) {
				t.Fatalf("rank %d param %d: loopback %v vs tcp %v", r, i, a.Params[i], b.Params[i])
			}
		}
		if len(a.Losses) != len(b.Losses) {
			t.Fatalf("rank %d: %d vs %d loss samples", r, len(a.Losses), len(b.Losses))
		}
		for i := range a.Losses {
			if math.Float64bits(a.Losses[i]) != math.Float64bits(b.Losses[i]) {
				t.Fatalf("rank %d loss %d: loopback %v vs tcp %v", r, i, a.Losses[i], b.Losses[i])
			}
		}
	}
	// The exchanges really went through the networked store: every chunk
	// advanced past its seed version.
	for _, key := range srv.Store().Keys() {
		if v := srv.Store().Version(key); v < 2 {
			t.Errorf("chunk %q version = %d, want ≥ 2", key, v)
		}
	}
}

// TestHierarchicalOrderedLoopbackDeterministic: two ordered loopback runs
// are bitwise identical — the determinism baseline the TCP gate builds on.
func TestHierarchicalOrderedLoopbackDeterministic(t *testing.T) {
	run := func() []*Result {
		cfg, ctrls := hierPSConfig(t)
		store := ps.NewStore(1)
		if err := SeedStore(store, cfg.Train); err != nil {
			t.Fatal(err)
		}
		cfg.Store = store
		net, err := transport.NewLocalNetwork(4)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = net.Close() }()
		return runHierWorkers(t, net.Endpoints(), ctrls, cfg)
	}
	a, b := run(), run()
	for r := range a {
		for i := range a[r].Params {
			if math.Float64bits(a[r].Params[i]) != math.Float64bits(b[r].Params[i]) {
				t.Fatalf("rank %d param %d differs across identical runs", r, i)
			}
		}
	}
}
