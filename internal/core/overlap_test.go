package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/controller"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// mlpConfig builds a TrainConfig on an MLP (a LayeredModel, so the overlap
// reducer gets a genuine multi-span emission plan).
func mlpConfig(t *testing.T, features, hidden, iters int) TrainConfig {
	t.Helper()
	src := rng.New(99)
	ds, err := data.Blobs(src, 4, features, 30, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewMLP(ds, hidden)
	if err != nil {
		t.Fatal(err)
	}
	return TrainConfig{
		Model:      m,
		Batch:      func(s *rng.Source) []int { return ds.Batch(s, 12) },
		LR:         0.1,
		Momentum:   0.9,
		Iterations: iters,
		// Bound 1 + AllReady firing pins the compute thread's snapshot to
		// exactly the post-round-(k-1) parameters, making the RNA trajectory
		// deterministic run to run — required for bitwise comparison.
		StalenessBound: 1,
		Seed:           314,
	}
}

// runOverlapCluster trains cfg on every rank of a fresh cluster (in-memory
// or TCP) under the given protocol and returns per-rank results.
func runOverlapCluster(t *testing.T, n int, tcp bool, protocol string, cfg TrainConfig) []*Result {
	t.Helper()
	var meshes []transport.Mesh
	if tcp {
		tcpMeshes, err := transport.NewTCPCluster(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range tcpMeshes {
			meshes = append(meshes, m)
		}
		defer func() {
			for _, m := range tcpMeshes {
				_ = m.Close()
			}
		}()
	} else {
		net, err := transport.NewLocalNetwork(n)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = net.Close() }()
		meshes = net.Endpoints()
	}
	// AllReady firing makes every rank contribute every round, so the RNA
	// trajectory is a deterministic function of the config — required for
	// run-vs-run bitwise comparison.
	ctrl, err := controller.New(controller.AllReady, n, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, m := range meshes {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch protocol {
			case "bsp":
				results[i], errs[i] = RunBSPWorker(m, ctrl, cfg)
			case "rna":
				results[i], errs[i] = RunRNAWorker(m, ctrl, cfg)
			default:
				errs[i] = fmt.Errorf("unknown protocol %q", protocol)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	return results
}

// assertBitsEqual fails unless every rank of both runs holds bitwise
// identical parameters.
func assertBitsEqual(t *testing.T, label string, a, b []*Result) {
	t.Helper()
	for r := range a {
		pa, pb := a[r].Params, b[r].Params
		if len(pa) != len(pb) {
			t.Fatalf("%s: rank %d dim %d vs %d", label, r, len(pa), len(pb))
		}
		for j := range pa {
			if math.Float64bits(pa[j]) != math.Float64bits(pb[j]) {
				t.Fatalf("%s: rank %d param %d: %v vs %v", label, r, j, pa[j], pb[j])
			}
		}
	}
	for r := 1; r < len(a); r++ {
		for j := range a[0].Params {
			if math.Float64bits(a[r].Params[j]) != math.Float64bits(a[0].Params[j]) {
				t.Fatalf("%s: rank %d diverged from rank 0 at param %d", label, r, j)
			}
		}
	}
}

// TestOverlapMatchesSequentialBits is the tentpole acceptance test: for BSP
// and RNA, on in-memory and TCP meshes, with fp64 and f16 wires, the
// overlapped reducer produces bitwise identical parameters to (a) the same
// bucket plan launched serially and (b) the legacy whole-vector worker when
// the plan collapses to one bucket.
func TestOverlapMatchesSequentialBits(t *testing.T) {
	// smallFusion keeps every emission span its own bucket (multi-bucket
	// plan); hugeFusion collapses the plan to a single whole-vector bucket.
	const smallFusion = 8
	const hugeFusion = 1 << 30
	type matrix struct {
		ranks []int
		tcp   bool
		iters int
	}
	cases := []matrix{
		{ranks: []int{2, 3, 5, 8}, tcp: false, iters: 10},
		{ranks: []int{2, 4}, tcp: true, iters: 6},
	}
	for _, protocol := range []string{"bsp", "rna"} {
		for _, wire := range []tensor.Dtype{tensor.F64, tensor.F16} {
			for _, mx := range cases {
				for _, n := range mx.ranks {
					transportName := "mem"
					if mx.tcp {
						transportName = "tcp"
					}
					name := fmt.Sprintf("%s/%s/%v/n=%d", protocol, transportName, wire, n)
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						cfg := mlpConfig(t, 12, 24, mx.iters)
						cfg.Compression = wire

						legacy := cfg
						run := func(c TrainConfig) []*Result {
							return runOverlapCluster(t, n, mx.tcp, protocol, c)
						}

						serial := cfg
						serial.Overlap, serial.OverlapSerial, serial.FusionBytes = true, true, smallFusion
						overlapped := cfg
						overlapped.Overlap, overlapped.FusionBytes = true, smallFusion
						assertBitsEqual(t, "overlapped vs serial", run(overlapped), run(serial))

						oneBucket := cfg
						oneBucket.Overlap, oneBucket.FusionBytes = true, hugeFusion
						assertBitsEqual(t, "single-bucket vs legacy", run(oneBucket), run(legacy))
					})
				}
			}
		}
	}
}

// TestOverlapMultiBlockMLP exercises an MLP big enough that the layered
// backward splits W1 into multiple emission blocks, and checks that the
// overlapped run matches the serial schedule bit for bit.
func TestOverlapMultiBlockMLP(t *testing.T) {
	cfg := mlpConfig(t, 128, 256, 4) // W1 = 32768 elems -> 2 blocks
	lm := cfg.Model.(model.LayeredModel)
	if spans := lm.GradientBuckets(); len(spans) < 4 {
		t.Fatalf("expected a multi-block plan, got %d spans", len(spans))
	}
	serial := cfg
	serial.Overlap, serial.OverlapSerial, serial.FusionBytes = true, true, 8
	overlapped := cfg
	overlapped.Overlap, overlapped.FusionBytes = true, 8
	a := runOverlapCluster(t, 2, false, "bsp", overlapped)
	b := runOverlapCluster(t, 2, false, "bsp", serial)
	assertBitsEqual(t, "multi-block overlapped vs serial", a, b)
	if a[0].MaxInFlight < 1 {
		t.Errorf("MaxInFlight = %d, overlap reducer never launched", a[0].MaxInFlight)
	}
	t.Logf("multi-block MaxInFlight = %d", a[0].MaxInFlight)
}

// TestOverlapLossesMatch: the per-step training losses of the overlapped
// and legacy workers agree bitwise on a single-bucket plan (same batches,
// same parameter trajectory).
func TestOverlapLossesMatch(t *testing.T) {
	cfg := mlpConfig(t, 12, 24, 8)
	one := cfg
	one.Overlap, one.FusionBytes = true, 1<<30
	a := runOverlapCluster(t, 3, false, "bsp", one)
	b := runOverlapCluster(t, 3, false, "bsp", cfg)
	for r := range a {
		if len(a[r].Losses) != len(b[r].Losses) {
			t.Fatalf("rank %d: %d vs %d losses", r, len(a[r].Losses), len(b[r].Losses))
		}
		for i := range a[r].Losses {
			if math.Float64bits(a[r].Losses[i]) != math.Float64bits(b[r].Losses[i]) {
				t.Fatalf("rank %d loss %d: %v vs %v", r, i, a[r].Losses[i], b[r].Losses[i])
			}
		}
	}
}
