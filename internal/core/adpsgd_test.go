package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/transport"
)

// runADPSGDCluster runs AD-PSGD workers on a fresh local mesh and closes
// the mesh only after every worker returned (responders must stay alive).
func runADPSGDCluster(t *testing.T, n int, mkCfg func(rank int) TrainConfig) []*ADPSGDResult {
	t.Helper()
	net, err := transport.NewLocalNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*ADPSGDResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, m := range net.Endpoints() {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = RunADPSGDWorker(m, mkCfg(i))
		}()
	}
	wg.Wait()
	_ = net.Close()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	return results
}

func TestADPSGDWorkerTrains(t *testing.T) {
	cfg, ds := blobConfig(t, 120)
	results := runADPSGDCluster(t, 4, func(int) TrainConfig { return cfg })

	consensus, err := ConsensusParams(results)
	if err != nil {
		t.Fatal(err)
	}
	cls := cfg.Model.(model.Classifier)
	top1, _, err := cls.Accuracy(consensus, model.All(ds), 1)
	if err != nil {
		t.Fatal(err)
	}
	if top1 < 0.75 {
		t.Errorf("AD-PSGD consensus top-1 = %v", top1)
	}
	// Gossip actually happened.
	totalAvg := 0
	for _, r := range results {
		totalAvg += r.Averagings
	}
	if totalAvg == 0 {
		t.Error("no pairwise averagings occurred")
	}
	// Individual models stay approximately consensual (not identical).
	for r := 1; r < len(results); r++ {
		if !results[r].Params.Equal(results[0].Params, 5.0) {
			t.Errorf("rank %d wildly diverged from rank 0", r)
		}
	}
}

func TestADPSGDWithStraggler(t *testing.T) {
	cfg, ds := blobConfig(t, 60)
	results := runADPSGDCluster(t, 3, func(rank int) TrainConfig {
		c := cfg
		if rank == 2 {
			c.SlowDown = func(int, int) time.Duration { return 2 * time.Millisecond }
		}
		return c
	})
	consensus, err := ConsensusParams(results)
	if err != nil {
		t.Fatal(err)
	}
	if !consensus.IsFinite() {
		t.Fatal("non-finite consensus")
	}
	cls := cfg.Model.(model.Classifier)
	top1, _, err := cls.Accuracy(consensus, model.All(ds), 1)
	if err != nil {
		t.Fatal(err)
	}
	if top1 < 0.7 {
		t.Errorf("straggler AD-PSGD top-1 = %v", top1)
	}
}

func TestADPSGDValidation(t *testing.T) {
	net, err := transport.NewLocalNetwork(1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	mesh, err := net.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := blobConfig(t, 10)
	if _, err := RunADPSGDWorker(mesh, cfg); err == nil {
		t.Error("single-worker AD-PSGD should error")
	}
	if _, err := RunADPSGDWorker(mesh, TrainConfig{}); err == nil {
		t.Error("empty config should error")
	}
	if _, err := ConsensusParams(nil); err == nil {
		t.Error("empty consensus should error")
	}
}
