package core

import (
	"testing"
	"time"

	"repro/internal/controller"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/transport"
)

func TestEagerMailbox(t *testing.T) {
	var b eagerMailbox
	if got := b.take(); got != nil {
		t.Fatalf("empty take = %v", got)
	}
	b.put(tensor.FromSlice([]float64{1}))
	b.put(tensor.FromSlice([]float64{2})) // overwrites unconsumed
	if got := b.take(); got[0] != 2 {
		t.Fatalf("take = %v, want newest (2)", got)
	}
	// Stale duplicate re-contribution.
	if got := b.take(); got[0] != 2 {
		t.Fatalf("stale take = %v, want 2", got)
	}
	b.put(tensor.FromSlice([]float64{3}))
	if got := b.take(); got[0] != 3 {
		t.Fatalf("take = %v, want 3", got)
	}
	// Returned vectors are copies.
	got := b.take()
	got[0] = 99
	if again := b.take(); again[0] != 3 {
		t.Fatalf("take exposed internal state: %v", again)
	}
}

func TestEagerWorkerTrains(t *testing.T) {
	const n = 4
	cfg, ds := blobConfig(t, 80)
	ctrl, err := controller.New(controller.Majority, n, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	results := trainCluster(t, n, func(m transport.Mesh) (*Result, error) {
		return RunEagerWorker(m, ctrl, cfg)
	})
	for r := 1; r < n; r++ {
		if !results[r].Params.Equal(results[0].Params, 1e-9) {
			t.Fatalf("rank %d params diverged", r)
		}
	}
	cls := cfg.Model.(model.Classifier)
	top1, _, err := cls.Accuracy(results[0].Params, model.All(ds), 1)
	if err != nil {
		t.Fatal(err)
	}
	if top1 < 0.8 {
		t.Errorf("eager top-1 = %v", top1)
	}
}

func TestEagerWorkerStaleDuplicatesUnderStraggler(t *testing.T) {
	const n = 4
	cfg, _ := blobConfig(t, 40)
	// Everyone takes ~1 ms per step so rounds pace at ~1 ms; the
	// straggler takes 3 ms and must fall back on stale re-sends.
	cfg.SlowDown = func(r, _ int) time.Duration {
		if r == 3 {
			return 3 * time.Millisecond
		}
		return time.Millisecond
	}
	ctrl, err := controller.New(controller.Majority, n, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	results := trainCluster(t, n, func(m transport.Mesh) (*Result, error) {
		return RunEagerWorker(m, ctrl, cfg)
	})
	// The straggler still contributes most rounds (stale duplicates
	// stand in for missing fresh gradients after its first contribution).
	slow := results[3]
	if slow.Contributed < cfg.Iterations/2 {
		t.Errorf("straggler contributed only %d/%d (stale re-sends should fill in)",
			slow.Contributed, cfg.Iterations)
	}
	for r := 1; r < n; r++ {
		if !results[r].Params.Equal(results[0].Params, 1e-9) {
			t.Fatalf("rank %d params diverged", r)
		}
	}
}

func TestEagerWorkerValidation(t *testing.T) {
	net, err := transport.NewLocalNetwork(1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	mesh, err := net.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(controller.Solo, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunEagerWorker(mesh, ctrl, TrainConfig{}); err == nil {
		t.Error("empty config should error")
	}
}
