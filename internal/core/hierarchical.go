package core

import (
	"fmt"
	"sync"

	"repro/internal/collective"
	"repro/internal/controller"
	"repro/internal/ps"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/topology"
	"repro/internal/transport"
)

// HierarchicalConfig configures one worker of the hierarchical scheme
// (Section 4) on the goroutine runtime: speed-homogeneous groups each run
// RNA internally; periodically each group's leader exchanges the group's
// accumulated update with a shared parameter server and broadcasts the
// pulled global model inside the group.
type HierarchicalConfig struct {
	// Train carries the per-worker training configuration.
	Train TrainConfig
	// Groups partitions the worker ranks (e.g. from
	// topology.PartitionByObservations). Every worker rank must appear
	// exactly once; PS server ranks (see PS) appear in no group.
	Groups []topology.Group
	// Store is the shared in-process parameter server — the loopback
	// fast path; seed it with SeedStore before starting any worker.
	// Ignored when PS is set.
	Store *ps.Store
	// PS, when set, makes group leaders speak the networked PS wire
	// protocol to the configured server ranks instead of calling the
	// in-process Store. Key defaults to HierarchicalPSKey and Dim to the
	// model dimension; the server ranks must run ps.NewServer on the same
	// mesh with matching geometry and must not be members of any group.
	// With an f64 wire the run is bit-identical to the loopback path.
	PS *ps.ClientConfig
	// PSEvery is the PS exchange period in group synchronizations
	// (default 4).
	PSEvery int
	// OrderedPS imposes a deterministic global exchange order: group g's
	// r-th PS exchange waits until the global model's version reaches
	// 1 + r·G + g (G = len(Groups)), so every run — loopback or
	// networked — applies the identical operation sequence and finals are
	// bitwise reproducible at f64. Requires every group to perform the
	// same number of exchanges (equal Iterations and PSEvery).
	OrderedPS bool
}

// HierarchicalPSKey is the store key holding the hierarchical global model.
// Networked deployments point ps.ServerConfig.Key at it.
const HierarchicalPSKey = "hierarchical-global"

// hierarchicalPSKey is kept for package-internal uses.
const hierarchicalPSKey = HierarchicalPSKey

func (c *HierarchicalConfig) psEvery() int {
	if c.PSEvery < 1 {
		return 4
	}
	return c.PSEvery
}

// InitialParams returns the deterministic initial global model the
// hierarchical scheme starts from — the vector SeedStore publishes and a
// networked ps.Server should be seeded with (ServerConfig.Init).
func InitialParams(cfg TrainConfig) (tensor.Vector, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	params := tensor.New(cfg.Model.Dim())
	cfg.Model.Init(rng.New(cfg.Seed+7777), params)
	return params, nil
}

// SeedStore initializes the shared parameter server with the deterministic
// initial model every worker starts from. Call once before starting the
// cluster.
func SeedStore(store *ps.Store, cfg TrainConfig) error {
	params, err := InitialParams(cfg)
	if err != nil {
		return err
	}
	_, err = store.Push(hierarchicalPSKey, params, ps.Overwrite)
	return err
}

// groupOf finds the group containing the global rank.
func groupOf(groups []topology.Group, rank int) (int, *topology.Group, error) {
	for gi := range groups {
		for _, m := range groups[gi].Members {
			if m == rank {
				return gi, &groups[gi], nil
			}
		}
	}
	return 0, nil, fmt.Errorf("core: rank %d not in any group", rank)
}

// globalStore resolves the leader's PS handle: a networked Client when
// cfg.PS is set, the in-process loopback otherwise. Both implement
// ps.GlobalStore and are bit-identical at an f64 wire.
func (c *HierarchicalConfig) globalStore(mesh transport.Mesh) (ps.GlobalStore, error) {
	if c.PS != nil {
		ccfg := *c.PS
		if ccfg.Key == "" {
			ccfg.Key = HierarchicalPSKey
		}
		if ccfg.Dim == 0 && c.Train.Model != nil {
			ccfg.Dim = c.Train.Model.Dim()
		}
		return ps.NewClient(mesh, ccfg)
	}
	if c.Store == nil {
		return nil, fmt.Errorf("core: nil store")
	}
	return ps.Loopback(c.Store, HierarchicalPSKey), nil
}

// RunHierarchicalWorker trains one rank of a hierarchical cluster. All
// ranks share one mesh; each group's RNA traffic runs over a SubMesh of its
// members, with its own controller (ctrls[gi], sized to the group). The
// group's local rank 0 performs the PS exchange — against the in-process
// Store or a networked PS service, per cfg — pushing the group's parameter
// delta since its last pull, pulling the global model, and broadcasting it
// within the group; every member adopts the broadcast.
func RunHierarchicalWorker(mesh transport.Mesh, ctrls []*controller.Controller, cfg HierarchicalConfig) (*Result, error) {
	if cfg.Store == nil && cfg.PS == nil {
		return nil, fmt.Errorf("core: nil store")
	}
	gi, group, err := groupOf(cfg.Groups, mesh.Rank())
	if err != nil {
		return nil, err
	}
	if gi >= len(ctrls) || ctrls[gi] == nil {
		return nil, fmt.Errorf("core: no controller for group %d", gi)
	}
	sub, err := transport.NewSubMesh(mesh, group.Members)
	if err != nil {
		return nil, err
	}
	leader := sub.Rank() == 0
	var global ps.GlobalStore
	if leader {
		if global, err = cfg.globalStore(mesh); err != nil {
			return nil, err
		}
	}

	var lastPull tensor.Vector
	period := int64(cfg.psEvery())
	nGroups := int64(len(cfg.Groups))
	exchanges := int64(0)

	post := func(k int64, mu *sync.Mutex, params tensor.Vector) error {
		if (k+1)%period != 0 {
			return nil
		}
		dim := len(params)
		pulled := tensor.New(dim)
		if leader {
			mu.Lock()
			snapshot := params.Clone()
			mu.Unlock()
			if lastPull == nil {
				// First exchange: baseline is the shared init.
				lastPull, err = InitialParams(cfg.Train)
				if err != nil {
					return err
				}
			}
			delta := snapshot.Clone()
			if err := delta.Sub(lastPull); err != nil {
				return err
			}
			var minVersion int64
			if cfg.OrderedPS {
				// The seed publish is version 1; this leader's r-th
				// exchange is the (r·G + gi)-th global operation.
				minVersion = 1 + exchanges*nGroups + int64(gi)
			}
			out, _, err := global.PushPull(delta, ps.Add, minVersion)
			if err != nil {
				return err
			}
			exchanges++
			copy(pulled, out)
			lastPull = out
		}
		// In-group broadcast of the pulled global model. Tag with a
		// distinct iteration namespace so it cannot be confused with
		// AllReduce chunks.
		if err := collective.Broadcast(sub, ^k, pulled, 0); err != nil {
			return err
		}
		mu.Lock()
		copy(params, pulled)
		mu.Unlock()
		return nil
	}

	res, err := runRNAWorker(sub, ctrls[gi], cfg.Train, post)
	if err != nil {
		return nil, fmt.Errorf("group %d: %w", gi, err)
	}
	return res, nil
}
