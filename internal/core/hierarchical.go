package core

import (
	"fmt"
	"sync"

	"repro/internal/collective"
	"repro/internal/controller"
	"repro/internal/ps"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/topology"
	"repro/internal/transport"
)

// HierarchicalConfig configures one worker of the hierarchical scheme
// (Section 4) on the goroutine runtime: speed-homogeneous groups each run
// RNA internally; periodically each group's leader exchanges the group's
// accumulated update with a shared parameter server and broadcasts the
// pulled global model inside the group.
type HierarchicalConfig struct {
	// Train carries the per-worker training configuration.
	Train TrainConfig
	// Groups partitions the global ranks (e.g. from
	// topology.PartitionByObservations). Every rank must appear exactly
	// once.
	Groups []topology.Group
	// Store is the shared parameter server; seed it with SeedStore
	// before starting any worker.
	Store *ps.Store
	// PSEvery is the PS exchange period in group synchronizations
	// (default 4).
	PSEvery int
}

// hierarchicalPSKey is the store key holding the global model.
const hierarchicalPSKey = "hierarchical-global"

func (c *HierarchicalConfig) psEvery() int {
	if c.PSEvery < 1 {
		return 4
	}
	return c.PSEvery
}

// SeedStore initializes the shared parameter server with the deterministic
// initial model every worker starts from. Call once before starting the
// cluster.
func SeedStore(store *ps.Store, cfg TrainConfig) error {
	if cfg.Model == nil {
		return fmt.Errorf("core: nil model")
	}
	params := tensor.New(cfg.Model.Dim())
	cfg.Model.Init(rng.New(cfg.Seed+7777), params)
	_, err := store.Push(hierarchicalPSKey, params, ps.Overwrite)
	return err
}

// groupOf finds the group containing the global rank.
func groupOf(groups []topology.Group, rank int) (int, *topology.Group, error) {
	for gi := range groups {
		for _, m := range groups[gi].Members {
			if m == rank {
				return gi, &groups[gi], nil
			}
		}
	}
	return 0, nil, fmt.Errorf("core: rank %d not in any group", rank)
}

// RunHierarchicalWorker trains one rank of a hierarchical cluster. All
// ranks share one mesh; each group's RNA traffic runs over a SubMesh of its
// members, with its own controller (ctrls[gi], sized to the group). The
// group's local rank 0 performs the PS exchange: it pushes the group's
// parameter delta since its last pull, pulls the global model, and
// broadcasts it within the group; every member adopts the broadcast.
func RunHierarchicalWorker(mesh transport.Mesh, ctrls []*controller.Controller, cfg HierarchicalConfig) (*Result, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("core: nil store")
	}
	gi, group, err := groupOf(cfg.Groups, mesh.Rank())
	if err != nil {
		return nil, err
	}
	if gi >= len(ctrls) || ctrls[gi] == nil {
		return nil, fmt.Errorf("core: no controller for group %d", gi)
	}
	sub, err := transport.NewSubMesh(mesh, group.Members)
	if err != nil {
		return nil, err
	}

	var lastPull tensor.Vector
	period := int64(cfg.psEvery())
	leader := sub.Rank() == 0

	post := func(k int64, mu *sync.Mutex, params tensor.Vector) error {
		if (k+1)%period != 0 {
			return nil
		}
		dim := len(params)
		global := tensor.New(dim)
		if leader {
			mu.Lock()
			snapshot := params.Clone()
			mu.Unlock()
			if lastPull == nil {
				// First exchange: baseline is the shared init.
				lastPull = tensor.New(dim)
				cfg.Train.Model.Init(rng.New(cfg.Train.Seed+7777), lastPull)
			}
			delta := snapshot.Clone()
			if err := delta.Sub(lastPull); err != nil {
				return err
			}
			pulled, _, err := cfg.Store.PushPull(hierarchicalPSKey, delta, ps.Add)
			if err != nil {
				return err
			}
			copy(global, pulled)
			lastPull = pulled
		}
		// In-group broadcast of the pulled global model. Tag with a
		// distinct iteration namespace so it cannot be confused with
		// AllReduce chunks.
		if err := collective.Broadcast(sub, ^k, global, 0); err != nil {
			return err
		}
		mu.Lock()
		copy(params, global)
		mu.Unlock()
		return nil
	}

	res, err := runRNAWorker(sub, ctrls[gi], cfg.Train, post)
	if err != nil {
		return nil, fmt.Errorf("group %d: %w", gi, err)
	}
	return res, nil
}
