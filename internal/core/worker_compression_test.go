package core

import (
	"math"
	"testing"

	"repro/internal/controller"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// compressedDtypes are the lossy wire formats the workers can train over.
var compressedDtypes = []tensor.Dtype{tensor.F32, tensor.F16, tensor.I8}

// TestRNAWorkerCompressed: compression must not break the RNA invariant —
// every rank applies the same reduced update, so parameters stay
// BIT-identical across ranks — and with error feedback the model must still
// learn as well as the fp64 baseline.
func TestRNAWorkerCompressed(t *testing.T) {
	const n = 4
	for _, wire := range compressedDtypes {
		cfg, ds := blobConfig(t, 80)
		cfg.Compression = wire
		ctrl, err := controller.New(controller.PowerOfChoices, n, 2, 5)
		if err != nil {
			t.Fatal(err)
		}
		results := trainCluster(t, n, func(m transport.Mesh) (*Result, error) {
			return RunRNAWorker(m, ctrl, cfg)
		})
		for r := 1; r < n; r++ {
			for j := range results[0].Params {
				if math.Float64bits(results[r].Params[j]) != math.Float64bits(results[0].Params[j]) {
					t.Fatalf("%v: rank %d param %d differs from rank 0: %v vs %v",
						wire, r, j, results[r].Params[j], results[0].Params[j])
				}
			}
		}
		cls := cfg.Model.(model.Classifier)
		top1, _, err := cls.Accuracy(results[0].Params, model.All(ds), 1)
		if err != nil {
			t.Fatal(err)
		}
		if top1 < 0.8 {
			t.Errorf("%v: RNA top-1 after compressed training = %v", wire, top1)
		}
	}
}

// TestBSPWorkerCompressed mirrors the RNA test for the blocking baseline.
func TestBSPWorkerCompressed(t *testing.T) {
	const n = 4
	for _, wire := range compressedDtypes {
		cfg, ds := blobConfig(t, 60)
		cfg.Compression = wire
		ctrl, err := controller.New(controller.AllReady, n, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		results := trainCluster(t, n, func(m transport.Mesh) (*Result, error) {
			return RunBSPWorker(m, ctrl, cfg)
		})
		for r := 1; r < n; r++ {
			for j := range results[0].Params {
				if math.Float64bits(results[r].Params[j]) != math.Float64bits(results[0].Params[j]) {
					t.Fatalf("%v: rank %d param %d differs from rank 0", wire, r, j)
				}
			}
		}
		cls := cfg.Model.(model.Classifier)
		top1, _, err := cls.Accuracy(results[0].Params, model.All(ds), 1)
		if err != nil {
			t.Fatal(err)
		}
		if top1 < 0.8 {
			t.Errorf("%v: BSP top-1 after compressed training = %v", wire, top1)
		}
	}
}

// TestTrainConfigRejectsUnknownDtype: validation catches garbage before any
// goroutines spin up.
func TestTrainConfigRejectsUnknownDtype(t *testing.T) {
	cfg, _ := blobConfig(t, 1)
	cfg.Compression = tensor.Dtype(9)
	ctrl, err := controller.New(controller.AllReady, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := transport.NewLocalNetwork(1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	if _, err := RunBSPWorker(net.Endpoints()[0], ctrl, cfg); err == nil {
		t.Fatal("unknown compression dtype accepted")
	}
}
