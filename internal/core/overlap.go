package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/collective"
	"repro/internal/controller"
	"repro/internal/model"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// The reducer pipeline: comm/compute overlap.
//
// A blocking step pays compute + comm back to back. The overlapped worker
// instead derives a bucket plan — emission spans from the model's layered
// backward pass, coalesced under TrainConfig.FusionBytes — and launches
// each bucket's collective (on its own tag stream, via collective.Async)
// the moment backprop finalizes the bucket's last layer. The tail of
// backprop runs concurrently with the head of the reduction, so the step
// costs roughly max(compute, comm) instead of their sum.
//
// Bit-identity. The plan is a pure function of (model architecture,
// FusionBytes), so every rank derives the identical bucket list. Each
// bucket's collective is the deterministic synchronous engine running on a
// private tag stream over a disjoint parameter span, so launching the
// buckets concurrently, serially (OverlapSerial), or in any interleaving
// produces the same bits. A plan with a single bucket is additionally
// bit-identical to the non-overlapped worker: the whole-vector collective
// runs once with the same inputs, and its result does not depend on the
// iteration tag the stream packing rewrites.

// fusionBytes resolves the bucket-coalescing threshold.
func (c *TrainConfig) fusionBytes() int {
	if c.FusionBytes <= 0 {
		return collective.DefaultFusionBytes
	}
	return c.FusionBytes
}

// planBuckets derives and validates the shared bucket plan.
func (c *TrainConfig) planBuckets() ([]model.Bucket, error) {
	plan := model.PlanBuckets(model.Buckets(c.Model), c.fusionBytes())
	if err := model.ValidateBuckets(plan, c.Model.Dim()); err != nil {
		return nil, fmt.Errorf("core: bucket plan: %w", err)
	}
	return plan, nil
}

// bucketReducer launches one averaging collective per ready bucket during
// the backward pass. It is the emit-callback target for model.GradientEmit.
type bucketReducer struct {
	as       *collective.Async
	plan     []model.Bucket
	grad     tensor.Vector
	residual tensor.Vector // nil when compression is off
	iter     int64
	n        int // mesh size, for the error-feedback fold
	cfg      *TrainConfig

	handles  []*collective.Handle
	launched int
}

// emit launches every bucket whose last layer has now finalized. In
// OverlapSerial mode each launch is joined immediately, which serializes
// comm after compute bucket by bucket — the sequential reference schedule.
func (r *bucketReducer) emit(layer int) error {
	for r.launched < len(r.plan) && r.plan[r.launched].LastLayer <= layer {
		b := r.plan[r.launched]
		seg := r.grad[b.Lo:b.Hi]
		var segRes tensor.Vector
		if r.residual != nil {
			// Error feedback, bucket-local: same fold as the blocking
			// worker's whole-vector AddScaled/Zero, restricted to this
			// bucket's span (spans are disjoint, so the per-element
			// arithmetic is unchanged).
			segRes = r.residual[b.Lo:b.Hi]
			_ = seg.AddScaled(float64(r.n), segRes)
			segRes.Zero()
		}
		h, err := r.as.Start(int32(r.launched), r.iter, seg, collective.OpAverage, collective.Options{
			Compression: r.cfg.Compression, Residual: segRes,
		})
		if err != nil {
			return err
		}
		r.handles[r.launched] = h
		r.launched++
		if r.cfg.OverlapSerial {
			if err := h.Wait(); err != nil {
				return err
			}
		}
	}
	return nil
}

// wait joins every launched bucket collective in launch order.
func (r *bucketReducer) wait() error {
	var first error
	for i := 0; i < r.launched; i++ {
		if err := r.handles[i].Wait(); err != nil && first == nil {
			first = err
		}
		r.handles[i] = nil
	}
	if first != nil {
		return first
	}
	if r.launched != len(r.plan) {
		return fmt.Errorf("core: %d of %d buckets launched", r.launched, len(r.plan))
	}
	return nil
}

// runBSPOverlapped is RunBSPWorker with the reducer pipeline: bucket
// collectives launch during backprop instead of after the barrier. The
// barrier moves after the reduction — the collectives themselves already
// synchronize all ranks, so the controller round-trip is bookkeeping and
// pays no extra wall-clock on the critical path.
func runBSPOverlapped(mesh transport.Mesh, ctrl *controller.Controller, cfg TrainConfig) (*Result, error) {
	start := time.Now()
	rank := mesh.Rank()
	n := mesh.Size()
	dim := cfg.Model.Dim()

	plan, err := cfg.planBuckets()
	if err != nil {
		return nil, err
	}
	optim, err := cfg.newOptimizer(dim)
	if err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	params := tensor.New(dim)
	cfg.Model.Init(rng.New(cfg.Seed+7777), params) // same init on all ranks
	batchSrc := src.Split(rank + 1)

	as := collective.NewAsync(mesh)
	res := &Result{Losses: make([]float64, 0, cfg.Iterations)}
	grad := tensor.New(dim)
	red := &bucketReducer{
		as: as, plan: plan, grad: grad, residual: cfg.residual(dim),
		n: n, cfg: &cfg, handles: make([]*collective.Handle, len(plan)),
	}
	for k := int64(0); k < int64(cfg.Iterations); k++ {
		red.iter, red.launched = k, 0
		batch := cfg.Batch(batchSrc)
		loss, err := model.GradientEmit(cfg.Model, params, grad, batch, red.emit)
		if err != nil {
			return nil, fmt.Errorf("rank %d iter %d: %w", rank, k, err)
		}
		if cfg.SlowDown != nil {
			if d := cfg.SlowDown(rank, int(k)); d > 0 {
				time.Sleep(d)
			}
		}
		res.Losses = append(res.Losses, loss)
		if err := red.wait(); err != nil {
			return nil, fmt.Errorf("rank %d iter %d: %w", rank, k, err)
		}
		if err := ctrl.Ready(rank, k); err != nil {
			return nil, err
		}
		fired, _ := ctrl.Await(k)
		<-fired
		if _, err := optim.Step(params, grad, 1); err != nil {
			return nil, fmt.Errorf("rank %d iter %d: %w", rank, k, err)
		}
		res.Contributed++
		if rank == 0 {
			ctrl.Forget(k - 2)
		}
	}
	res.Params = params
	res.Elapsed = time.Since(start)
	res.MaxInFlight = as.MaxInFlight()
	return res, nil
}

// runRNAOverlapped is runRNAWorker with a bucketed communication thread:
// each synchronization splits the partial AllReduce into the shared bucket
// plan and runs the bucket collectives concurrently on one mesh. The
// compute thread is unchanged — RNA already overlaps compute with
// communication across iterations; bucketing pipelines the reduction
// itself, so a straggling chunk of one bucket no longer idles the link.
//
// Every bucket's partial collective carries its own contributor flag; all
// ranks pass the same contributes bit to every bucket of an iteration, so
// the counts agree across buckets by construction (verified at runtime).
func runRNAOverlapped(mesh transport.Mesh, ctrl *controller.Controller, cfg TrainConfig, post postSyncHook) (*Result, error) {
	start := time.Now()
	rank := mesh.Rank()
	n := mesh.Size()
	dim := cfg.Model.Dim()

	plan, err := cfg.planBuckets()
	if err != nil {
		return nil, err
	}
	acc, err := NewAccumulator(dim, cfg.bound())
	if err != nil {
		return nil, err
	}
	optim, err := cfg.newOptimizer(dim)
	if err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	params := tensor.New(dim)
	cfg.Model.Init(rng.New(cfg.Seed+7777), params) // same init on all ranks
	batchSrc := src.Split(rank + 1)

	var (
		mu      sync.Mutex // guards params, synced and aborted
		cond    = sync.NewCond(&mu)
		synced  = int64(-1)
		aborted bool
	)
	abort := func() {
		mu.Lock()
		aborted = true
		cond.Broadcast()
		mu.Unlock()
	}
	res := &Result{Losses: make([]float64, 0, cfg.Iterations)}
	zero := tensor.New(dim)
	as := collective.NewAsync(mesh)

	var (
		wg         sync.WaitGroup
		computeErr error
		commErr    error
	)

	// Compute thread — identical to the blocking worker's.
	wg.Add(1)
	go func() {
		defer wg.Done()
		snapshot := tensor.New(dim)
		g := tensor.New(dim)
		for k := int64(0); k < int64(cfg.Iterations); k++ {
			mu.Lock()
			for k-synced > int64(cfg.bound()) && !aborted {
				cond.Wait()
			}
			if aborted {
				mu.Unlock()
				return
			}
			copy(snapshot, params)
			mu.Unlock()

			batch := cfg.Batch(batchSrc)
			loss, err := cfg.Model.Gradient(snapshot, g, batch)
			if err != nil {
				computeErr = fmt.Errorf("rank %d iter %d: %w", rank, k, err)
				abort()
				return
			}
			if cfg.SlowDown != nil {
				if d := cfg.SlowDown(rank, int(k)); d > 0 {
					time.Sleep(d)
				}
			}
			res.Losses = append(res.Losses, loss)
			if err := acc.Put(k, g); err != nil {
				computeErr = fmt.Errorf("rank %d iter %d: %w", rank, k, err)
				abort()
				return
			}
			if err := ctrl.Ready(rank, k); err != nil {
				computeErr = fmt.Errorf("rank %d iter %d: %w", rank, k, err)
				abort()
				return
			}
		}
	}()

	// Communication thread: bucketed partial AllReduce.
	wg.Add(1)
	go func() {
		defer wg.Done()
		residual := cfg.residual(dim)
		handles := make([]*collective.Handle, len(plan))
		upd := tensor.New(dim)
		fail := func(k int64, err error) {
			commErr = fmt.Errorf("rank %d iter %d: %w", rank, k, err)
			abort()
		}
		for k := int64(0); k < int64(cfg.Iterations); k++ {
			fired, _ := ctrl.Await(k)
			<-fired

			contrib, ok, err := acc.Take(k)
			if err != nil {
				fail(k, err)
				return
			}
			in := zero
			if ok {
				in = contrib
				res.Contributed++
				// Error feedback (same fold as the blocking worker): the
				// whole-vector add touches exactly the union of the disjoint
				// bucket spans.
				if residual != nil {
					_ = contrib.Add(residual)
					residual.Zero()
				}
			} else {
				res.NullContribs++
			}
			for i, b := range plan {
				var segRes tensor.Vector
				if residual != nil {
					segRes = residual[b.Lo:b.Hi]
				}
				h, err := as.StartPartial(int32(i), k, in[b.Lo:b.Hi], ok, collective.Options{
					Compression: cfg.Compression, Residual: segRes,
				})
				if err != nil {
					fail(k, err)
					return
				}
				handles[i] = h
				if cfg.OverlapSerial {
					if err := h.Wait(); err != nil {
						fail(k, err)
						return
					}
				}
			}
			contributors := -1
			for i := range plan {
				if err := handles[i].Wait(); err != nil {
					fail(k, err)
					return
				}
				pr := handles[i].Partial()
				if contributors < 0 {
					contributors = pr.Contributors
				} else if pr.Contributors != contributors {
					fail(k, fmt.Errorf("core: bucket %d counted %d contributors, bucket 0 counted %d",
						i, pr.Contributors, contributors))
					return
				}
			}
			if contributors > 0 {
				// Assemble ḡ = W·Σg bucket by bucket, then step once with the
				// Linear Scaling Rule — the same arithmetic, elementwise, as
				// the whole-vector path.
				for i, b := range plan {
					pr := handles[i].Partial()
					pr.Sum.Scale(1 / float64(contributors))
					copy(upd[b.Lo:b.Hi], pr.Sum)
				}
				scale, err := opt.LinearScale(contributors, n)
				if err != nil {
					commErr = err
					abort()
					return
				}
				mu.Lock()
				if _, err := optim.Step(params, upd, scale); err != nil {
					mu.Unlock()
					fail(k, err)
					return
				}
				mu.Unlock()
			}
			for i := range plan {
				pr := handles[i].Partial()
				pr.Release()
				handles[i] = nil
			}
			if post != nil {
				if err := post(k, &mu, params); err != nil {
					fail(k, err)
					return
				}
			}
			// Publish the completed synchronization only after the post
			// hook, so compute snapshots at k+1 deterministically include
			// the hook's parameter mutation (see runRNAWorker).
			mu.Lock()
			synced = k
			cond.Broadcast()
			mu.Unlock()
			if rank == 0 {
				ctrl.Forget(k - int64(cfg.bound()) - 2)
			}
		}
	}()

	wg.Wait()
	if computeErr != nil {
		return nil, computeErr
	}
	if commErr != nil {
		return nil, commErr
	}
	res.Params = params
	res.Elapsed = time.Since(start)
	res.MaxInFlight = as.MaxInFlight()
	return res, nil
}
