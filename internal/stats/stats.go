// Package stats provides the descriptive statistics used when reporting
// experiments: means, variances, percentiles, box-plot summaries (Fig. 10 of
// the paper uses 5/25/50/75/95 percentiles), histograms, and per-worker
// time-breakdown accounting (Fig. 1).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// ErrEmpty is returned when a statistic of an empty sample is requested.
var ErrEmpty = errors.New("stats: empty sample")

// Sample accumulates float64 observations and answers summary queries.
// The zero value is ready to use.
type Sample struct {
	values []float64
	sorted bool
}

// NewSample returns a Sample pre-sized for n observations.
func NewSample(n int) *Sample {
	return &Sample{values: make([]float64, 0, n)}
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.values = append(s.values, x)
	s.sorted = false
}

// AddAll records many observations.
func (s *Sample) AddAll(xs []float64) {
	s.values = append(s.values, xs...)
	s.sorted = false
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.values) }

// Values returns a copy of the raw observations.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// Sum returns the sum of observations.
func (s *Sample) Sum() float64 {
	var t float64
	for _, x := range s.values {
		t += x
	}
	return t
}

// Mean returns the arithmetic mean.
func (s *Sample) Mean() (float64, error) {
	if len(s.values) == 0 {
		return 0, ErrEmpty
	}
	return s.Sum() / float64(len(s.values)), nil
}

// Variance returns the population variance.
func (s *Sample) Variance() (float64, error) {
	mean, err := s.Mean()
	if err != nil {
		return 0, err
	}
	var ss float64
	for _, x := range s.values {
		d := x - mean
		ss += d * d
	}
	return ss / float64(len(s.values)), nil
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() (float64, error) {
	v, err := s.Variance()
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Min returns the smallest observation.
func (s *Sample) Min() (float64, error) {
	if len(s.values) == 0 {
		return 0, ErrEmpty
	}
	s.ensureSorted()
	return s.values[0], nil
}

// Max returns the largest observation.
func (s *Sample) Max() (float64, error) {
	if len(s.values) == 0 {
		return 0, ErrEmpty
	}
	s.ensureSorted()
	return s.values[len(s.values)-1], nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks.
func (s *Sample) Percentile(p float64) (float64, error) {
	if len(s.values) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of [0,100]", p)
	}
	s.ensureSorted()
	if len(s.values) == 1 {
		return s.values[0], nil
	}
	rank := p / 100 * float64(len(s.values)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo], nil
	}
	frac := rank - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac, nil
}

// Median returns the 50th percentile.
func (s *Sample) Median() (float64, error) { return s.Percentile(50) }

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// BoxPlot is the five-number summary used by the paper's Fig. 10 whisker
// plots: 5th, 25th, 50th, 75th and 95th percentiles.
type BoxPlot struct {
	P5, P25, P50, P75, P95 float64
}

// Box returns the five-number summary of the sample.
func (s *Sample) Box() (BoxPlot, error) {
	var b BoxPlot
	var err error
	if b.P5, err = s.Percentile(5); err != nil {
		return b, err
	}
	b.P25, _ = s.Percentile(25)
	b.P50, _ = s.Percentile(50)
	b.P75, _ = s.Percentile(75)
	b.P95, _ = s.Percentile(95)
	return b, nil
}

// String renders the box plot compactly.
func (b BoxPlot) String() string {
	return fmt.Sprintf("p5=%.3g p25=%.3g p50=%.3g p75=%.3g p95=%.3g",
		b.P5, b.P25, b.P50, b.P75, b.P95)
}

// Histogram counts observations into equal-width bins over [lo, hi).
// Observations outside the range land in the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram builds a histogram of xs with the given number of bins.
func NewHistogram(xs []float64, bins int, lo, hi float64) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: %d bins", bins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram range [%v,%v)", lo, hi)
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
	}
	return h, nil
}

// Bin returns the [start,end) range of bin i.
func (h *Histogram) Bin(i int) (float64, float64) {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + float64(i)*width, h.Lo + float64(i+1)*width
}

// Total returns the number of observations counted.
func (h *Histogram) Total() int {
	var t int
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Render draws the histogram as ASCII rows, one per bin, with bars scaled to
// maxWidth characters.
func (h *Histogram) Render(maxWidth int) string {
	if maxWidth <= 0 {
		maxWidth = 40
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var sb strings.Builder
	for i, c := range h.Counts {
		lo, hi := h.Bin(i)
		barLen := 0
		if maxCount > 0 {
			barLen = c * maxWidth / maxCount
		}
		fmt.Fprintf(&sb, "[%8.1f, %8.1f) %6d %s\n", lo, hi, c, strings.Repeat("#", barLen))
	}
	return sb.String()
}

// Speedup returns baseline/measured; by convention values above 1 mean
// "measured is faster than baseline". A non-positive measured time yields 0.
func Speedup(baseline, measured float64) float64 {
	if measured <= 0 {
		return 0
	}
	return baseline / measured
}
