package stats

import (
	"fmt"
	"strings"
	"time"
)

// Breakdown accounts one worker's time across the categories the paper's
// Fig. 1 reports: computation versus waiting (communication plus the time
// blocked at the synchronization barrier).
type Breakdown struct {
	Compute time.Duration
	Comm    time.Duration
	Wait    time.Duration
}

// Total returns the accounted wall-clock span.
func (b Breakdown) Total() time.Duration { return b.Compute + b.Comm + b.Wait }

// ComputeFrac returns the compute share of the total, 0 when empty.
func (b Breakdown) ComputeFrac() float64 { return b.frac(b.Compute) }

// CommFrac returns the communication share of the total.
func (b Breakdown) CommFrac() float64 { return b.frac(b.Comm) }

// WaitFrac returns the barrier-wait share of the total.
func (b Breakdown) WaitFrac() float64 { return b.frac(b.Wait) }

func (b Breakdown) frac(d time.Duration) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(d) / float64(t)
}

// Add merges another breakdown into b.
func (b *Breakdown) Add(other Breakdown) {
	b.Compute += other.Compute
	b.Comm += other.Comm
	b.Wait += other.Wait
}

// String renders e.g. "compute 62.0% comm 10.0% wait 28.0% (total 1.2s)".
func (b Breakdown) String() string {
	return fmt.Sprintf("compute %.1f%% comm %.1f%% wait %.1f%% (total %v)",
		b.ComputeFrac()*100, b.CommFrac()*100, b.WaitFrac()*100, b.Total())
}

// Table renders a set of named breakdowns as an aligned ASCII table — the
// textual analogue of the paper's stacked-bar Fig. 1.
func Table(names []string, rows []Breakdown) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %10s %10s %10s %12s\n", "worker", "compute%", "comm%", "wait%", "total")
	for i, r := range rows {
		name := ""
		if i < len(names) {
			name = names[i]
		}
		fmt.Fprintf(&sb, "%-12s %9.1f%% %9.1f%% %9.1f%% %12v\n",
			name, r.ComputeFrac()*100, r.CommFrac()*100, r.WaitFrac()*100, r.Total())
	}
	return sb.String()
}
