package stats

import (
	"errors"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptySample(t *testing.T) {
	var s Sample
	if _, err := s.Mean(); !errors.Is(err, ErrEmpty) {
		t.Errorf("Mean on empty = %v, want ErrEmpty", err)
	}
	if _, err := s.Min(); !errors.Is(err, ErrEmpty) {
		t.Errorf("Min on empty = %v, want ErrEmpty", err)
	}
	if _, err := s.Max(); !errors.Is(err, ErrEmpty) {
		t.Errorf("Max on empty = %v, want ErrEmpty", err)
	}
	if _, err := s.Percentile(50); !errors.Is(err, ErrEmpty) {
		t.Errorf("Percentile on empty = %v, want ErrEmpty", err)
	}
	if _, err := s.Box(); !errors.Is(err, ErrEmpty) {
		t.Errorf("Box on empty = %v, want ErrEmpty", err)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	s := NewSample(4)
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	mean, err := s.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if mean != 5 {
		t.Errorf("Mean = %v, want 5", mean)
	}
	v, _ := s.Variance()
	if v != 4 {
		t.Errorf("Variance = %v, want 4", v)
	}
	sd, _ := s.StdDev()
	if sd != 2 {
		t.Errorf("StdDev = %v, want 2", sd)
	}
}

func TestMinMax(t *testing.T) {
	var s Sample
	s.AddAll([]float64{3, -1, 7, 0})
	if mn, _ := s.Min(); mn != -1 {
		t.Errorf("Min = %v, want -1", mn)
	}
	if mx, _ := s.Max(); mx != 7 {
		t.Errorf("Max = %v, want 7", mx)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var s Sample
	s.AddAll([]float64{10, 20, 30, 40})
	med, err := s.Median()
	if err != nil {
		t.Fatal(err)
	}
	if med != 25 {
		t.Errorf("Median = %v, want 25", med)
	}
	p0, _ := s.Percentile(0)
	p100, _ := s.Percentile(100)
	if p0 != 10 || p100 != 40 {
		t.Errorf("P0,P100 = %v,%v, want 10,40", p0, p100)
	}
}

func TestPercentileSingleValue(t *testing.T) {
	var s Sample
	s.Add(42)
	for _, p := range []float64{0, 5, 50, 95, 100} {
		if got, _ := s.Percentile(p); got != 42 {
			t.Errorf("Percentile(%v) = %v, want 42", p, got)
		}
	}
}

func TestPercentileOutOfRange(t *testing.T) {
	var s Sample
	s.Add(1)
	if _, err := s.Percentile(-1); err == nil {
		t.Error("Percentile(-1) should error")
	}
	if _, err := s.Percentile(101); err == nil {
		t.Error("Percentile(101) should error")
	}
}

func TestAddAfterSortedQuery(t *testing.T) {
	var s Sample
	s.AddAll([]float64{3, 1, 2})
	if _, err := s.Median(); err != nil {
		t.Fatal(err)
	}
	s.Add(0) // must invalidate the sort
	if mn, _ := s.Min(); mn != 0 {
		t.Errorf("Min after post-sort Add = %v, want 0", mn)
	}
}

func TestValuesIsACopy(t *testing.T) {
	var s Sample
	s.AddAll([]float64{5, 1})
	vals := s.Values()
	vals[0] = 999
	if mn, _ := s.Min(); mn != 1 {
		t.Errorf("mutating Values() affected sample: min = %v", mn)
	}
}

func TestBoxOrdering(t *testing.T) {
	var s Sample
	for i := 0; i < 1000; i++ {
		s.Add(float64(i % 97))
	}
	b, err := s.Box()
	if err != nil {
		t.Fatal(err)
	}
	if !(b.P5 <= b.P25 && b.P25 <= b.P50 && b.P50 <= b.P75 && b.P75 <= b.P95) {
		t.Errorf("box quantiles out of order: %+v", b)
	}
	if !strings.Contains(b.String(), "p50=") {
		t.Errorf("Box String missing p50: %q", b.String())
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0.5, 1.5, 1.7, 9.9, -3, 100}, 10, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d, want 6", h.Total())
	}
	if h.Counts[0] != 2 { // 0.5 and clamped -3
		t.Errorf("bin0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 2 { // 1.5, 1.7
		t.Errorf("bin1 = %d, want 2", h.Counts[1])
	}
	if h.Counts[9] != 2 { // 9.9 and clamped 100
		t.Errorf("bin9 = %d, want 2", h.Counts[9])
	}
	lo, hi := h.Bin(3)
	if lo != 3 || hi != 4 {
		t.Errorf("Bin(3) = [%v,%v), want [3,4)", lo, hi)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 0, 1); err == nil {
		t.Error("0 bins should error")
	}
	if _, err := NewHistogram(nil, 5, 2, 2); err == nil {
		t.Error("empty range should error")
	}
}

func TestHistogramRender(t *testing.T) {
	h, err := NewHistogram([]float64{1, 1, 1, 5}, 2, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := h.Render(10)
	if !strings.Contains(out, "##########") {
		t.Errorf("largest bin should render a full bar:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Errorf("Render produced %d lines, want 2", len(lines))
	}
	// Zero maxWidth falls back to a default without panicking.
	_ = h.Render(0)
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(10, 5); got != 2 {
		t.Errorf("Speedup(10,5) = %v, want 2", got)
	}
	if got := Speedup(10, 0); got != 0 {
		t.Errorf("Speedup(10,0) = %v, want 0", got)
	}
}

func TestBreakdownFractions(t *testing.T) {
	b := Breakdown{Compute: 600 * time.Millisecond, Comm: 100 * time.Millisecond, Wait: 300 * time.Millisecond}
	if b.Total() != time.Second {
		t.Errorf("Total = %v, want 1s", b.Total())
	}
	if math.Abs(b.ComputeFrac()-0.6) > 1e-12 {
		t.Errorf("ComputeFrac = %v, want 0.6", b.ComputeFrac())
	}
	if math.Abs(b.CommFrac()-0.1) > 1e-12 {
		t.Errorf("CommFrac = %v, want 0.1", b.CommFrac())
	}
	if math.Abs(b.WaitFrac()-0.3) > 1e-12 {
		t.Errorf("WaitFrac = %v, want 0.3", b.WaitFrac())
	}
}

func TestBreakdownEmpty(t *testing.T) {
	var b Breakdown
	if b.ComputeFrac() != 0 || b.WaitFrac() != 0 {
		t.Error("empty breakdown should report zero fractions")
	}
}

func TestBreakdownAdd(t *testing.T) {
	a := Breakdown{Compute: time.Second}
	a.Add(Breakdown{Compute: time.Second, Wait: 2 * time.Second})
	if a.Compute != 2*time.Second || a.Wait != 2*time.Second {
		t.Errorf("Add result = %+v", a)
	}
}

func TestBreakdownTable(t *testing.T) {
	out := Table(
		[]string{"w0", "w1"},
		[]Breakdown{
			{Compute: time.Second},
			{Compute: time.Second, Wait: time.Second},
		},
	)
	if !strings.Contains(out, "w0") || !strings.Contains(out, "w1") {
		t.Errorf("table missing worker names:\n%s", out)
	}
	if !strings.Contains(out, "50.0%") {
		t.Errorf("table missing expected 50%% entry:\n%s", out)
	}
}

func TestBreakdownTableShortNames(t *testing.T) {
	// More rows than names must not panic.
	out := Table([]string{"only"}, []Breakdown{{}, {}})
	if strings.Count(out, "\n") != 3 {
		t.Errorf("unexpected table shape:\n%s", out)
	}
}

// Property: Percentile is monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []float64, pa, pb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		var s Sample
		s.AddAll(raw)
		lo := float64(pa % 101)
		hi := float64(pb % 101)
		if lo > hi {
			lo, hi = hi, lo
		}
		a, err := s.Percentile(lo)
		if err != nil {
			return false
		}
		b, err := s.Percentile(hi)
		if err != nil {
			return false
		}
		return a <= b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: median lies within [min, max].
func TestQuickMedianBounded(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		clean := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		var s Sample
		s.AddAll(clean)
		med, err := s.Median()
		if err != nil {
			return false
		}
		sort.Float64s(clean)
		return med >= clean[0] && med <= clean[len(clean)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
