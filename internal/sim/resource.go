package sim

import "time"

// Mutex is a virtual-time FIFO lock. AD-PSGD uses it to model the atomic
// pairwise parameter averaging the paper describes: if a worker's chosen
// neighbor is already mid-averaging, the requester queues and the wait time
// shows up as synchronization overhead in the simulation.
type Mutex struct {
	eng     *Engine
	held    bool
	waiters []func()
	// waitTotal accumulates time spent queued, for overhead accounting.
	waitTotal time.Duration
}

// NewMutex returns an unlocked virtual mutex bound to eng.
func NewMutex(eng *Engine) *Mutex {
	return &Mutex{eng: eng}
}

// Held reports whether the mutex is currently locked.
func (m *Mutex) Held() bool { return m.held }

// QueueLen returns the number of queued acquirers.
func (m *Mutex) QueueLen() int { return len(m.waiters) }

// WaitTotal returns the cumulative virtual time acquirers spent queued.
func (m *Mutex) WaitTotal() time.Duration { return m.waitTotal }

// Acquire requests the lock; acquired runs (as an engine event) once the
// lock is granted. Grant order is FIFO.
func (m *Mutex) Acquire(acquired func()) {
	if !m.held {
		m.held = true
		m.eng.After(0, acquired)
		return
	}
	start := m.eng.Now()
	m.waiters = append(m.waiters, func() {
		m.waitTotal += m.eng.Now() - start
		acquired()
	})
}

// Release releases the lock, granting it to the oldest waiter if any.
// Releasing an unheld mutex is a no-op.
func (m *Mutex) Release() {
	if !m.held {
		return
	}
	if len(m.waiters) == 0 {
		m.held = false
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	m.eng.After(0, next)
}

// TryAcquire acquires the lock immediately if free and reports success. It
// never queues.
func (m *Mutex) TryAcquire() bool {
	if m.held {
		return false
	}
	m.held = true
	return true
}

// Semaphore is a counting resource in virtual time, granted FIFO.
type Semaphore struct {
	eng     *Engine
	free    int
	waiters []func()
}

// NewSemaphore returns a semaphore with n initially free slots.
func NewSemaphore(eng *Engine, n int) *Semaphore {
	return &Semaphore{eng: eng, free: n}
}

// Acquire takes one slot; acquired runs once granted.
func (s *Semaphore) Acquire(acquired func()) {
	if s.free > 0 {
		s.free--
		s.eng.After(0, acquired)
		return
	}
	s.waiters = append(s.waiters, acquired)
}

// Release frees one slot, granting it to the oldest waiter if any.
func (s *Semaphore) Release() {
	if len(s.waiters) > 0 {
		next := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.eng.After(0, next)
		return
	}
	s.free++
}

// Free returns the number of free slots.
func (s *Semaphore) Free() int { return s.free }
