package sim

import (
	"errors"
	"testing"
	"time"
)

func TestEventsRunInTimestampOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30*time.Millisecond, func() { order = append(order, 3) })
	e.At(10*time.Millisecond, func() { order = append(order, 1) })
	e.At(20*time.Millisecond, func() { order = append(order, 2) })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != 30*time.Millisecond {
		t.Errorf("final Now = %v, want 30ms", e.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(time.Millisecond, func() { order = append(order, i) })
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated: order = %v", order)
		}
	}
}

func TestAfterRelativeScheduling(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.At(5*time.Millisecond, func() {
		e.After(10*time.Millisecond, func() { at = e.Now() })
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if at != 15*time.Millisecond {
		t.Errorf("nested After fired at %v, want 15ms", at)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	e := NewEngine()
	var fired time.Duration
	e.At(10*time.Millisecond, func() {
		e.At(2*time.Millisecond, func() { fired = e.Now() }) // in the past
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != 10*time.Millisecond {
		t.Errorf("past event fired at %v, want clamp to 10ms", fired)
	}
}

func TestNegativeAfterClamps(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(-time.Second, func() { fired = true })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if !fired || e.Now() != 0 {
		t.Errorf("negative After: fired=%v now=%v", fired, e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	err := e.Run(0)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Run after Stop = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Errorf("executed %d events after Stop, want 3", count)
	}
	if e.Pending() != 7 {
		t.Errorf("Pending = %d, want 7", e.Pending())
	}
}

func TestEventBudget(t *testing.T) {
	e := NewEngine()
	// Self-perpetuating event chain.
	var loop func()
	loop = func() { e.After(time.Millisecond, loop) }
	e.After(0, loop)
	if err := e.Run(100); err == nil {
		t.Fatal("unbounded chain should exhaust the event budget")
	}
	if e.Processed() != 100 {
		t.Errorf("Processed = %d, want 100", e.Processed())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	for _, d := range []time.Duration{5, 10, 15, 20} {
		d := d * time.Millisecond
		e.At(d, func() { fired = append(fired, d) })
	}
	if err := e.RunUntil(12*time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("RunUntil executed %d events, want 2", len(fired))
	}
	if e.Now() != 12*time.Millisecond {
		t.Errorf("Now = %v, want clock advanced to deadline 12ms", e.Now())
	}
	// Resume runs the rest.
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Errorf("after resume executed %d events, want 4", len(fired))
	}
}

func TestRunUntilEmptyQueueKeepsClock(t *testing.T) {
	e := NewEngine()
	e.At(3*time.Millisecond, func() {})
	if err := e.RunUntil(time.Second, 0); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 3*time.Millisecond {
		t.Errorf("Now = %v, want 3ms (no later events queued)", e.Now())
	}
}

func TestMutexFIFO(t *testing.T) {
	e := NewEngine()
	m := NewMutex(e)
	var order []string
	e.At(0, func() {
		m.Acquire(func() {
			order = append(order, "a-acq")
			e.After(10*time.Millisecond, func() {
				order = append(order, "a-rel")
				m.Release()
			})
		})
	})
	e.At(1*time.Millisecond, func() {
		m.Acquire(func() { order = append(order, "b-acq"); m.Release() })
	})
	e.At(2*time.Millisecond, func() {
		m.Acquire(func() { order = append(order, "c-acq"); m.Release() })
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []string{"a-acq", "a-rel", "b-acq", "c-acq"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if m.Held() {
		t.Error("mutex still held after all releases")
	}
}

func TestMutexWaitAccounting(t *testing.T) {
	e := NewEngine()
	m := NewMutex(e)
	e.At(0, func() {
		m.Acquire(func() {
			e.After(20*time.Millisecond, m.Release)
		})
	})
	e.At(5*time.Millisecond, func() {
		m.Acquire(func() { m.Release() })
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.WaitTotal(); got != 15*time.Millisecond {
		t.Errorf("WaitTotal = %v, want 15ms", got)
	}
}

func TestMutexTryAcquire(t *testing.T) {
	e := NewEngine()
	m := NewMutex(e)
	if !m.TryAcquire() {
		t.Fatal("TryAcquire on free mutex failed")
	}
	if m.TryAcquire() {
		t.Fatal("TryAcquire on held mutex succeeded")
	}
	m.Release()
	if !m.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestMutexReleaseUnheldNoop(t *testing.T) {
	e := NewEngine()
	m := NewMutex(e)
	m.Release() // must not panic or corrupt state
	if m.Held() {
		t.Error("release of unheld mutex marked it held")
	}
}

func TestSemaphore(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, 2)
	var acquired []int
	for i := 0; i < 4; i++ {
		i := i
		e.At(time.Duration(i)*time.Millisecond, func() {
			s.Acquire(func() { acquired = append(acquired, i) })
		})
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(acquired) != 2 {
		t.Fatalf("acquired = %v, want exactly 2 grants", acquired)
	}
	if s.Free() != 0 {
		t.Errorf("Free = %d, want 0", s.Free())
	}
	// Releasing grants queued waiters FIFO.
	s.Release()
	s.Release()
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(acquired) != 4 || acquired[2] != 2 || acquired[3] != 3 {
		t.Errorf("acquired = %v, want FIFO [0 1 2 3]", acquired)
	}
	// Release with no waiters returns the slot.
	s.Release()
	if s.Free() != 1 {
		t.Errorf("Free = %d, want 1", s.Free())
	}
}
