// Package sim implements a deterministic discrete-event simulation engine
// with a virtual clock. All cluster-scale experiments in this repository run
// on virtual time: workers are event-driven state machines, compute steps
// and message transfers are scheduled as future events, and ties are broken
// by insertion order so a run is fully reproducible given its RNG seed.
package sim

import (
	"container/heap"
	"errors"
	"time"
)

// ErrStopped is returned by Run when the engine was stopped before the
// event queue drained.
var ErrStopped = errors.New("sim: engine stopped")

// Event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use: all callbacks run on the goroutine that calls Run.
type Engine struct {
	queue   eventQueue
	now     time.Duration
	seq     uint64
	stopped bool
	// processed counts executed events, exposed for diagnostics and to
	// guard tests against runaway simulations.
	processed uint64
}

// NewEngine returns an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns how many events have executed.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// runs at the current time (never rewinds the clock).
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time. Negative d is
// treated as zero.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Stop aborts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue drains, Stop is
// called, or maxEvents fire (0 means unlimited). It returns ErrStopped if
// stopped early and an error if the event budget was exhausted.
func (e *Engine) Run(maxEvents uint64) error {
	e.stopped = false
	for len(e.queue) > 0 {
		if e.stopped {
			return ErrStopped
		}
		if maxEvents > 0 && e.processed >= maxEvents {
			return errors.New("sim: event budget exhausted")
		}
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		e.processed++
		ev.fn()
	}
	return nil
}

// RunUntil executes events with timestamps <= deadline, leaving later events
// queued. The clock is advanced to the deadline if the queue still holds
// later events; otherwise it stays at the last executed event.
func (e *Engine) RunUntil(deadline time.Duration, maxEvents uint64) error {
	e.stopped = false
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		if e.stopped {
			return ErrStopped
		}
		if maxEvents > 0 && e.processed >= maxEvents {
			return errors.New("sim: event budget exhausted")
		}
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		e.processed++
		ev.fn()
	}
	if len(e.queue) > 0 && e.now < deadline {
		e.now = deadline
	}
	return nil
}
