package tensor

// Unrolled element-wise kernels. Every hot loop in the repository — the ring
// reduce, the accumulator's weighted mean, the SGD update — bottoms out in
// one of these. The 4-way unrolling shortens the loop-carried dependency
// chain and lets the compiler keep four elements in flight per iteration;
// the explicit re-slice (`b = b[:len(a)]`) eliminates bounds checks in the
// body. Pairwise FP addition is commutative bitwise, so addVec/subVec keep
// results bit-identical to the naive loops they replace.

// addVec computes a[i] += b[i].
func addVec(a, b []float64) {
	b = b[:len(a)]
	i := 0
	for ; i+4 <= len(a); i += 4 {
		a[i] += b[i]
		a[i+1] += b[i+1]
		a[i+2] += b[i+2]
		a[i+3] += b[i+3]
	}
	for ; i < len(a); i++ {
		a[i] += b[i]
	}
}

// subVec computes a[i] -= b[i].
func subVec(a, b []float64) {
	b = b[:len(a)]
	i := 0
	for ; i+4 <= len(a); i += 4 {
		a[i] -= b[i]
		a[i+1] -= b[i+1]
		a[i+2] -= b[i+2]
		a[i+3] -= b[i+3]
	}
	for ; i < len(a); i++ {
		a[i] -= b[i]
	}
}

// scaleVec computes a[i] *= c.
func scaleVec(a []float64, c float64) {
	i := 0
	for ; i+4 <= len(a); i += 4 {
		a[i] *= c
		a[i+1] *= c
		a[i+2] *= c
		a[i+3] *= c
	}
	for ; i < len(a); i++ {
		a[i] *= c
	}
}

// avgVec computes a[i] = (a[i]+b[i])/2 — the parameter-server Average mode
// fused into one pass. The expression matches the scalar loop it replaces
// exactly (add, then halve), so results stay bit-identical.
func avgVec(a, b []float64) {
	b = b[:len(a)]
	i := 0
	for ; i+4 <= len(a); i += 4 {
		a[i] = (a[i] + b[i]) / 2
		a[i+1] = (a[i+1] + b[i+1]) / 2
		a[i+2] = (a[i+2] + b[i+2]) / 2
		a[i+3] = (a[i+3] + b[i+3]) / 2
	}
	for ; i < len(a); i++ {
		a[i] = (a[i] + b[i]) / 2
	}
}

// sumTo computes dst[i] = a[i] + b[i] in one pass — the out-of-place fused
// form of addVec, bit-identical to clone-then-add.
func sumTo(dst, a, b []float64) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = a[i] + b[i]
		dst[i+1] = a[i+1] + b[i+1]
		dst[i+2] = a[i+2] + b[i+2]
		dst[i+3] = a[i+3] + b[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] + b[i]
	}
}

// avgTo computes dst[i] = (a[i]+b[i])/2 in one pass — the out-of-place
// fused form of avgVec, bit-identical to clone-then-average.
func avgTo(dst, a, b []float64) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = (a[i] + b[i]) / 2
		dst[i+1] = (a[i+1] + b[i+1]) / 2
		dst[i+2] = (a[i+2] + b[i+2]) / 2
		dst[i+3] = (a[i+3] + b[i+3]) / 2
	}
	for ; i < len(dst); i++ {
		dst[i] = (a[i] + b[i]) / 2
	}
}

// axpyVec computes a[i] += c*b[i], the fused multiply-add behind AddScaled.
func axpyVec(a []float64, c float64, b []float64) {
	b = b[:len(a)]
	i := 0
	for ; i+4 <= len(a); i += 4 {
		a[i] += c * b[i]
		a[i+1] += c * b[i+1]
		a[i+2] += c * b[i+2]
		a[i+3] += c * b[i+3]
	}
	for ; i < len(a); i++ {
		a[i] += c * b[i]
	}
}

// Axpy computes a[i] += c*b[i] over raw slices with no shape checking — the
// unchecked form of Vector.AddScaled for hot loops (model backprop) whose
// slice lengths are fixed by construction. b must be at least as long as a.
func Axpy(a []float64, c float64, b []float64) { axpyVec(a, c, b) }

// Dot returns Σ a[i]*b[i] over raw slices with no shape checking — the
// unchecked form of Vector.Dot for hot loops. b must be at least as long
// as a.
func Dot(a, b []float64) float64 { return dotVec(a, b) }

// dotVec returns Σ a[i]*b[i] using four independent accumulators, breaking
// the serial-add dependency chain. The summation order differs from a naive
// left-to-right fold by at most the usual FP reassociation error.
func dotVec(a, b []float64) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}
