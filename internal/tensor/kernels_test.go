package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// The unrolled kernels perform exactly one FP op per element in index order,
// so everything except Dot (multi-accumulator) must be bit-identical to the
// obvious scalar loop. Lengths 0..17 cover every unroll tail; the large
// length exercises the steady-state body.

func randVec(rng *rand.Rand, n int) Vector {
	v := New(n)
	for i := range v {
		v[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(7)-3))
	}
	return v
}

func TestKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lengths := make([]int, 0, 20)
	for n := 0; n <= 17; n++ {
		lengths = append(lengths, n)
	}
	lengths = append(lengths, 1000, 4097)
	for _, n := range lengths {
		a := randVec(rng, n)
		b := randVec(rng, n)
		c := rng.Float64() - 0.5

		add := a.Clone()
		addVec(add, b)
		sub := a.Clone()
		subVec(sub, b)
		scale := a.Clone()
		scaleVec(scale, c)
		axpy := a.Clone()
		axpyVec(axpy, c, b)
		avg := a.Clone()
		avgVec(avg, b)

		for i := 0; i < n; i++ {
			if got, want := add[i], a[i]+b[i]; math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("addVec n=%d i=%d: got %v, want %v", n, i, got, want)
			}
			if got, want := sub[i], a[i]-b[i]; math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("subVec n=%d i=%d: got %v, want %v", n, i, got, want)
			}
			if got, want := scale[i], a[i]*c; math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("scaleVec n=%d i=%d: got %v, want %v", n, i, got, want)
			}
			if got, want := axpy[i], a[i]+c*b[i]; math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("axpyVec n=%d i=%d: got %v, want %v", n, i, got, want)
			}
			if got, want := avg[i], (a[i]+b[i])/2; math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("avgVec n=%d i=%d: got %v, want %v", n, i, got, want)
			}
		}
	}
}

func TestDotMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 1000, 4097} {
		a := randVec(rng, n)
		b := randVec(rng, n)
		var want, scale float64
		for i := 0; i < n; i++ {
			want += a[i] * b[i]
			scale += math.Abs(a[i] * b[i])
		}
		got := dotVec(a, b)
		// The 4-accumulator sum reassociates, so compare with a tolerance
		// proportional to the magnitude of the terms.
		tol := 1e-12 * (scale + 1)
		if math.Abs(got-want) > tol {
			t.Fatalf("dotVec n=%d: got %v, want %v (tol %v)", n, got, want, tol)
		}
	}
}

// BenchmarkTensorKernels covers the hot kernels the ring, accumulator, and
// optimizer lean on.
func BenchmarkTensorKernels(b *testing.B) {
	const dim = 1 << 16
	rng := rand.New(rand.NewSource(3))
	x := randVec(rng, dim)
	y := randVec(rng, dim)
	b.Run("Add", func(b *testing.B) {
		b.SetBytes(dim * 8)
		for i := 0; i < b.N; i++ {
			addVec(x, y)
		}
	})
	b.Run("Scale", func(b *testing.B) {
		b.SetBytes(dim * 8)
		for i := 0; i < b.N; i++ {
			scaleVec(x, 1.0000001)
		}
	})
	b.Run("AddScaled", func(b *testing.B) {
		b.SetBytes(dim * 8)
		for i := 0; i < b.N; i++ {
			axpyVec(x, 0.999, y)
		}
	})
	b.Run("Dot", func(b *testing.B) {
		b.SetBytes(dim * 8)
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += dotVec(x, y)
		}
		_ = sink
	})
}
