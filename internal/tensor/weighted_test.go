package tensor

import (
	"math/rand"
	"testing"
)

// checkCover asserts the partition's structural invariants: exact coverage
// with no overlap (sizes sum to total, all non-negative).
func checkCover(t *testing.T, sizes []int, total int) {
	t.Helper()
	sum := 0
	for i, s := range sizes {
		if s < 0 {
			t.Fatalf("chunk %d has negative size %d", i, s)
		}
		sum += s
	}
	if sum != total {
		t.Fatalf("sizes cover %d of %d elements", sum, total)
	}
}

// TestWeightedSizesProperty: for arbitrary positive speed vectors the
// partition exactly covers the vector, honors the floor, and stays within
// the max-skew clamp.
func TestWeightedSizesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(12)
		total := rng.Intn(1 << 16)
		floor := rng.Intn(64)
		maxSkew := 1 + rng.Float64()*8
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 1e-3 + rng.Float64()*10
			if rng.Intn(8) == 0 {
				weights[i] *= 1e6 // inject extreme outliers the clamp must tame
			}
		}
		sizes, err := WeightedSizes(total, weights, floor, maxSkew)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkCover(t, sizes, total)

		effFloor := floor
		if effFloor > total/n {
			effFloor = total / n
		}
		lo, hi := sizes[0], sizes[0]
		for i, s := range sizes {
			if s < effFloor {
				t.Fatalf("trial %d: chunk %d size %d below floor %d (sizes %v)", trial, i, s, effFloor, sizes)
			}
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		// The integer partition can exceed the weight-level clamp only by
		// rounding slop (±1 element around each ideal share).
		if lo > 0 && float64(hi-1) > maxSkew*float64(lo+1) {
			t.Fatalf("trial %d: skew %d/%d exceeds clamp %v (sizes %v)", trial, hi, lo, maxSkew, sizes)
		}

		// Offsets are the prefix sums.
		offs := WeightedOffsets(sizes)
		if offs[0] != 0 || offs[n] != total {
			t.Fatalf("trial %d: offsets %v do not span [0,%d)", trial, offs, total)
		}
		for i := 0; i < n; i++ {
			if offs[i+1]-offs[i] != sizes[i] {
				t.Fatalf("trial %d: offset %d span %d != size %d", trial, i, offs[i+1]-offs[i], sizes[i])
			}
		}
	}
}

// TestWeightedSizesUniformMatchesEqual: uniform weights reproduce the equal
// partition bitwise — chunk for chunk identical to ChunkBounds — for any
// common scale of the weights.
func TestWeightedSizesUniformMatchesEqual(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16, 33} {
		for _, total := range []int{0, 1, n - 1, n, n + 1, 4097, 1 << 16} {
			if total < 0 {
				continue
			}
			for _, scale := range []float64{1, 0.25, 3.7e9} {
				weights := make([]float64, n)
				for i := range weights {
					weights[i] = scale
				}
				sizes, err := WeightedSizes(total, weights, 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				checkCover(t, sizes, total)
				offs := WeightedOffsets(sizes)
				for i := 0; i < n; i++ {
					s, e, err := ChunkBounds(total, n, i)
					if err != nil {
						t.Fatal(err)
					}
					if offs[i] != s || offs[i+1] != e {
						t.Fatalf("n=%d total=%d scale=%v chunk %d: [%d,%d) want [%d,%d)",
							n, total, scale, i, offs[i], offs[i+1], s, e)
					}
				}
				if !UniformOffsets(offs) {
					t.Fatalf("n=%d total=%d: uniform offsets not recognized: %v", n, total, offs)
				}
			}
		}
	}
}

// TestWeightedSizesPermutation: permuting the speed vector permutes the
// sizes the same way when weights are distinct, and equal weights always
// get sizes within one element of each other (index-order tie-breaking is
// the only asymmetry).
func TestWeightedSizesPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(8)
		total := 1 + rng.Intn(1<<14)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 0.5 + rng.Float64()*4
		}
		sizes, err := WeightedSizes(total, weights, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Swap two positions; the sizes at those positions must be within
		// one element of a matching swap (rounding may move the ±1
		// remainder element between positions, never more).
		i, j := rng.Intn(n), rng.Intn(n)
		weights[i], weights[j] = weights[j], weights[i]
		swapped, err := WeightedSizes(total, weights, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		checkCover(t, swapped, total)
		for k := 0; k < n; k++ {
			want := sizes[k]
			switch k {
			case i:
				want = sizes[j]
			case j:
				want = sizes[i]
			}
			if d := swapped[k] - want; d < -1 || d > 1 {
				t.Fatalf("trial %d: swap(%d,%d) moved chunk %d from %d to %d", trial, i, j, k, want, swapped[k])
			}
		}
	}
	// Exactly-equal weights: deterministic under permutation (permuting
	// equal entries changes nothing at all).
	for _, n := range []int{2, 5, 9} {
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 2.5
		}
		a, err := WeightedSizes(1<<14+3, weights, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := WeightedSizes(1<<14+3, weights, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("equal-weight partition not deterministic: %v vs %v", a, b)
			}
		}
	}
}

// TestWeightedSizesSkewProportional: a 4:1 speed vector yields chunks in
// ~4:1 proportion (within integer rounding) when the clamp allows it.
func TestWeightedSizesSkewProportional(t *testing.T) {
	weights := []float64{4, 4, 4, 1}
	sizes, err := WeightedSizes(13000, weights, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, sizes, 13000)
	if sizes[3] != 1000 {
		t.Fatalf("slow chunk %d, want 1000 (sizes %v)", sizes[3], sizes)
	}
	for i := 0; i < 3; i++ {
		if sizes[i] != 4000 {
			t.Fatalf("fast chunk %d = %d, want 4000", i, sizes[i])
		}
	}
	// Clamp binds: with maxSkew 2 the slow rank keeps at least half a fast
	// share.
	sizes, err = WeightedSizes(13000, weights, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, sizes, 13000)
	if lo := sizes[3]; float64(sizes[0]) > 2.01*float64(lo) {
		t.Fatalf("clamp 2 violated: %v", sizes)
	}
	// Floor binds: no chunk below the floor even for a starved weight.
	sizes, err = WeightedSizes(4096, []float64{100, 100, 100, 1e-9}, 512, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, sizes, 4096)
	if sizes[3] < 512 {
		t.Fatalf("floor violated: %v", sizes)
	}
}

// TestWeightedSizesErrors: invalid inputs are rejected.
func TestWeightedSizesErrors(t *testing.T) {
	if _, err := WeightedSizes(10, nil, 0, 0); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := WeightedSizes(-1, []float64{1}, 0, 0); err == nil {
		t.Fatal("negative total accepted")
	}
	for _, bad := range []float64{0, -1} {
		if _, err := WeightedSizes(10, []float64{1, bad}, 0, 0); err == nil {
			t.Fatalf("weight %v accepted", bad)
		}
	}
}
