package tensor

import (
	"fmt"
	"math"
)

// Wire dtypes for gradient compression. The collective layer reduces in
// float64 and optionally compresses the distribution phase (allgather /
// broadcast) to a narrower wire format; these are the encodings the
// transport codec understands.
//
// Every lossy encoding here is IDEMPOTENT: re-encoding an already-decoded
// vector reproduces the same bytes. That property is what lets a ring hop
// (or a halving-doubling doubling step, or a tree broadcast relay) re-encode
// values it just decoded without drifting — it is the foundation of the
// cross-rank bit-identity contract for compressed collectives.
//
//   - F32: float64 → float32 → float64. float32 values are exactly
//     representable in float64, so the second conversion is exact.
//   - F16: IEEE 754 binary16 with round-to-nearest-even via float32.
//     Half-precision values round-trip exactly through float32/float64.
//   - I8: per-block linear quantization q = round(x/scale), scale a POWER
//     OF TWO chosen as the smallest 2^E with 127·2^E ≥ max|x| over the
//     block. Decoded values q·2^E sit on a power-of-two grid whose max
//     re-derives the same E (round(max|x|/2^E) ∈ [64,127] by construction),
//     so re-quantization is exact. A plain scale = max/127 would not have
//     this property: 127 is not a power of two and the division introduces
//     ulp drift on re-encode.

// Dtype identifies a payload wire encoding. The zero value is F64
// (passthrough), so existing Message literals and configs are unchanged.
type Dtype uint8

const (
	// F64 ships raw float64 bits — lossless passthrough.
	F64 Dtype = iota
	// F32 ships float32 (4 bytes/elem, ~2x compression).
	F32
	// F16 ships IEEE binary16 (2 bytes/elem, ~4x compression).
	F16
	// I8 ships per-block int8 linear quantization (1 byte/elem plus an
	// 8-byte power-of-two scale per I8BlockElems block, ~7.9x compression).
	I8

	dtypeCount
)

// I8BlockElems is the quantization block size of the I8 encoding: each run
// of up to 1024 elements shares one scale, bounding the wire overhead at
// 8/1024 bytes per element while keeping scales local enough to track the
// per-chunk dynamic range of gradients.
const I8BlockElems = 1024

// Valid reports whether d is a known wire dtype.
func (d Dtype) Valid() bool { return d < dtypeCount }

// Lossless reports whether encoding preserves float64 bits exactly.
func (d Dtype) Lossless() bool { return d == F64 }

// PerElement reports whether the encoding quantizes each element
// independently of its neighbors. F64/F32/F16 do; I8 does not (block
// scales), so schedules that re-encode I8 data must keep the encoded spans
// identical on sender and receiver for idempotence to hold.
func (d Dtype) PerElement() bool { return d != I8 }

func (d Dtype) String() string {
	switch d {
	case F64:
		return "f64"
	case F32:
		return "f32"
	case F16:
		return "f16"
	case I8:
		return "i8"
	}
	return fmt.Sprintf("Dtype(%d)", uint8(d))
}

// ParseDtype parses the String form.
func ParseDtype(s string) (Dtype, error) {
	switch s {
	case "f64", "fp64", "float64", "":
		return F64, nil
	case "f32", "fp32", "float32":
		return F32, nil
	case "f16", "fp16", "float16", "half":
		return F16, nil
	case "i8", "int8":
		return I8, nil
	}
	return F64, fmt.Errorf("tensor: unknown dtype %q", s)
}

// WireBytes returns the encoded size of n elements.
func (d Dtype) WireBytes(n int) int {
	switch d {
	case F32:
		return 4 * n
	case F16:
		return 2 * n
	case I8:
		if n == 0 {
			return 0
		}
		blocks := (n + I8BlockElems - 1) / I8BlockElems
		return n + 8*blocks
	}
	return 8 * n
}

// WireRatio returns the asymptotic wire bytes per element relative to raw
// float64 — the factor cost models scale their distribution-phase byte term
// by.
func (d Dtype) WireRatio() float64 {
	switch d {
	case F32:
		return 0.5
	case F16:
		return 0.25
	case I8:
		return (1 + 8.0/I8BlockElems) / 8
	}
	return 1
}

// Pack encodes src into dst, which must be exactly d.WireBytes(len(src))
// long. F64 is rejected: raw payloads take the transport's native path.
func Pack(d Dtype, dst []byte, src []float64) {
	if len(dst) != d.WireBytes(len(src)) {
		panic("tensor: Pack buffer size mismatch")
	}
	switch d {
	case F32:
		packF32(dst, src)
	case F16:
		packF16(dst, src)
	case I8:
		packI8(dst, src)
	default:
		panic("tensor: Pack called with non-compressing dtype")
	}
}

// Unpack decodes src (d.WireBytes(len(dst)) bytes) into dst.
func Unpack(d Dtype, dst []float64, src []byte) {
	if len(src) != d.WireBytes(len(dst)) {
		panic("tensor: Unpack buffer size mismatch")
	}
	switch d {
	case F32:
		unpackF32(dst, src)
	case F16:
		unpackF16(dst, src)
	case I8:
		unpackI8(dst, src)
	default:
		panic("tensor: Unpack called with non-compressing dtype")
	}
}

// RoundTrip replaces v in place with Unpack(Pack(v)) without materializing
// the wire bytes. It is exactly equivalent to the encode/decode pair (a
// property test pins this), which is how the in-memory mesh and the
// collectives' owner-side quantization stay bit-identical to the TCP path.
// F64 is a no-op.
func RoundTrip(d Dtype, v []float64) {
	switch d {
	case F64:
	case F32:
		i := 0
		for ; i+4 <= len(v); i += 4 {
			v[i] = float64(float32(v[i]))
			v[i+1] = float64(float32(v[i+1]))
			v[i+2] = float64(float32(v[i+2]))
			v[i+3] = float64(float32(v[i+3]))
		}
		for ; i < len(v); i++ {
			v[i] = float64(float32(v[i]))
		}
	case F16:
		// Same hand-inlined narrow as packF16 (the widen, f16ToF32, inlines
		// on its own): the owner-side quantization of every compressed
		// collective runs through here, so it gets the call-free loop too.
		for i, x := range v {
			b := math.Float32bits(float32(x))
			sign := uint16(b>>16) & 0x8000
			f := b & 0x7fffffff
			var h uint16
			if f-f16MinNormal < f16Max-f16MinNormal {
				f += 0xc8000fff + ((f >> 13) & 1)
				h = uint16(f >> 13)
			} else {
				h = f16PackCold(f)
			}
			v[i] = float64(f16ToF32(sign | h))
		}
	case I8:
		for len(v) > 0 {
			b := len(v)
			if b > I8BlockElems {
				b = I8BlockElems
			}
			scale := i8BlockScale(v[:b])
			i8RoundBlock(v[:b], scale)
			v = v[b:]
		}
	default:
		panic("tensor: RoundTrip called with unknown dtype")
	}
}

// RoundTripEF is RoundTrip with error feedback: residual[i] accumulates the
// quantization error pre−post of element i, so a training loop can fold the
// lost mass into its next contribution. residual must be at least len(v).
func RoundTripEF(d Dtype, v, residual []float64) {
	if d == F64 {
		return
	}
	residual = residual[:len(v)]
	i := 0
	for ; i+4 <= len(v); i += 4 {
		residual[i] += v[i]
		residual[i+1] += v[i+1]
		residual[i+2] += v[i+2]
		residual[i+3] += v[i+3]
	}
	for ; i < len(v); i++ {
		residual[i] += v[i]
	}
	RoundTrip(d, v)
	subVec(residual, v)
}

// --- float32 ---

func packF32(dst []byte, src []float64) {
	i := 0
	for ; i+4 <= len(src); i += 4 {
		putU32(dst[4*i:], math.Float32bits(float32(src[i])))
		putU32(dst[4*i+4:], math.Float32bits(float32(src[i+1])))
		putU32(dst[4*i+8:], math.Float32bits(float32(src[i+2])))
		putU32(dst[4*i+12:], math.Float32bits(float32(src[i+3])))
	}
	for ; i < len(src); i++ {
		putU32(dst[4*i:], math.Float32bits(float32(src[i])))
	}
}

func unpackF32(dst []float64, src []byte) {
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = float64(math.Float32frombits(getU32(src[4*i:])))
		dst[i+1] = float64(math.Float32frombits(getU32(src[4*i+4:])))
		dst[i+2] = float64(math.Float32frombits(getU32(src[4*i+8:])))
		dst[i+3] = float64(math.Float32frombits(getU32(src[4*i+12:])))
	}
	for ; i < len(dst); i++ {
		dst[i] = float64(math.Float32frombits(getU32(src[4*i:])))
	}
}

// --- float16 ---

// packF16 writes the narrow conversion inline: f16FromF32's cost sits just
// over the compiler's inlining budget, and a per-element call roughly halves
// pack throughput, so the loop body repeats the normal-path arithmetic and
// only the rare magnitudes (overflow/subnormal) leave the loop via
// f16PackCold.
func packF16(dst []byte, src []float64) {
	if len(dst) < 2*len(src) {
		panic("tensor: packF16 short buffer")
	}
	for i, x := range src {
		b := math.Float32bits(float32(x))
		sign := uint16(b>>16) & 0x8000
		f := b & 0x7fffffff
		var h uint16
		if f-f16MinNormal < f16Max-f16MinNormal { // normal half: hot path
			f += 0xc8000fff + ((f >> 13) & 1)
			h = uint16(f >> 13)
		} else {
			h = f16PackCold(f)
		}
		putU16(dst[2*i:], sign|h)
	}
}

func unpackF16(dst []float64, src []byte) {
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = float64(f16ToF32(getU16(src[2*i:])))
		dst[i+1] = float64(f16ToF32(getU16(src[2*i+2:])))
		dst[i+2] = float64(f16ToF32(getU16(src[2*i+4:])))
		dst[i+3] = float64(f16ToF32(getU16(src[2*i+6:])))
	}
	for ; i < len(dst); i++ {
		dst[i] = float64(f16ToF32(getU16(src[2*i:])))
	}
}

// f16Round is the value round-trip float64 → binary16 → float64 without
// materializing the bits.
func f16Round(x float64) float64 {
	return float64(f16ToF32(f16FromF32(float32(x))))
}

// f16FromF32 converts to IEEE binary16 with round-to-nearest-even. NaN
// collapses to the canonical quiet NaN (sign preserved) so the conversion
// stays deterministic and idempotent; overflow goes to ±Inf.
func f16FromF32(x float32) uint16 {
	b := math.Float32bits(x)
	sign := uint16(b>>16) & 0x8000
	f := b & 0x7fffffff
	if f-f16MinNormal < f16Max-f16MinNormal {
		// Normal half: arithmetic RNE — add the sticky-bits bias plus the
		// kept lsb (ties go to even), rebias the exponent 127→15 (−112·2^23
		// two's-complement), shift. A rounding carry walks into the exponent
		// correctly: 0x7bff+1 = Inf. The single unsigned range compare
		// classifies normals in one branch (below-minimum wraps negative).
		f += 0xc8000fff + ((f >> 13) & 1)
		return sign | uint16(f>>13)
	}
	return sign | f16PackCold(f)
}

const (
	f32Infty = uint32(255) << 23
	// f16Max is the first magnitude that overflows half AFTER the RNE tie
	// at 65520 is resolved upward: 2^16.
	f16Max = uint32(127+16) << 23
	// f16MinNormal is 2^-14, the smallest normal half.
	f16MinNormal = uint32(113) << 23
	// denormMagic is 0.5f, the renormalization bias of the subnormal path.
	denormMagic = uint32((127-15)+(23-10)+1) << 23
)

// f16PackCold converts the magnitudes outside the normal-half range:
// overflow/Inf/NaN above, subnormals and zero below. Kept out of line (the
// pack loops inline only the normal case) and off the hot path — gradient
// traffic is normal-range by construction.
//
//go:noinline
func f16PackCold(f uint32) uint16 {
	if f >= f16Max { // overflow / Inf / NaN
		if f > f32Infty {
			return 0x7e00
		}
		return 0x7c00
	}
	// 0.5f magic add (denormMagic's value): it lands the half-subnormal
	// grid exactly on float32 mantissa lsbs, so the hardware float add
	// performs the round-to-nearest-even.
	return uint16(math.Float32bits(math.Float32frombits(f)+0.5) - denormMagic)
}

// f16ToF32 widens IEEE binary16 to float32 exactly.
func f16ToF32(h uint16) float32 {
	const (
		shiftedExp = uint32(0x7c00) << 13 // half exponent field, in f32 position
		magic      = uint32(113) << 23    // 2^-14: the smallest normal half
	)
	o := uint32(h&0x7fff) << 13
	exp := o & shiftedExp
	o += (127 - 15) << 23 // rebias exponent 15→127
	switch {
	case exp == shiftedExp: // Inf / NaN: exponent needs the rest of the way
		o += (128 - 16) << 23
	case exp == 0: // zero / subnormal: renormalize with a float subtract
		o += 1 << 23
		o = math.Float32bits(math.Float32frombits(o) - math.Float32frombits(magic))
	}
	return math.Float32frombits(o | uint32(h&0x8000)<<16)
}

// --- int8 block quantization ---

// i8BlockScale returns the power-of-two scale 2^E for a block: the smallest
// E with 127·2^E ≥ max|v|. A zero (or fully non-finite) block gets scale 0,
// the all-zeros marker. The power-of-two choice makes decode→re-encode
// exact: every decoded value q·2^E has |q| ≤ 127, its maximum re-derives
// round(max/2^E) = max|q| ∈ [1,127], and the smallest-E rule lands on the
// same E again.
func i8BlockScale(v []float64) float64 {
	maxabs := 0.0
	i := 0
	for ; i+4 <= len(v); i += 4 {
		m0 := math.Abs(v[i])
		m1 := math.Abs(v[i+1])
		m2 := math.Abs(v[i+2])
		m3 := math.Abs(v[i+3])
		if m1 > m0 {
			m0 = m1
		}
		if m3 > m2 {
			m2 = m3
		}
		if m2 > m0 {
			m0 = m2
		}
		if m0 > maxabs {
			maxabs = m0
		}
	}
	for ; i < len(v); i++ {
		if m := math.Abs(v[i]); m > maxabs {
			maxabs = m
		}
	}
	if maxabs == 0 || math.IsInf(maxabs, 1) || math.IsNaN(maxabs) {
		// NaN never wins the > comparisons above, so a NaN-only block also
		// reaches maxabs == 0 and quantizes to zeros — deterministic on
		// every rank.
		if maxabs == 0 {
			return 0
		}
		// Inf saturates to the largest finite grid.
		return math.Ldexp(1, 1024-7)
	}
	f, exp := math.Frexp(maxabs) // maxabs = f·2^exp, f ∈ [0.5, 1)
	e := exp - 7                 // 127·2^(exp-7) = (127/128)·2^exp ≥ maxabs iff f ≤ 127/128
	if f > 127.0/128.0 {
		e++
	}
	return math.Ldexp(1, e)
}

// i8Quant quantizes x onto the grid of scale (a power of two), clamped to
// the int8 range. Non-finite x maps to the clamp bounds (NaN → 0). The
// ±0.5-then-truncate is exactly math.Round (half away from zero) for every
// value that survives the clamp, but cheap enough to keep the function
// inlinable into the pack loops.
func i8Quant(x, invScale float64) int8 {
	q := x * invScale
	if q > 126.5 {
		return 127
	}
	if q < -126.5 {
		return -127
	}
	if q != q { // NaN
		return 0
	}
	if q >= 0 {
		return int8(q + 0.5)
	}
	return int8(q - 0.5)
}

// i8RoundBlock replaces v with its dequantized image under scale.
func i8RoundBlock(v []float64, scale float64) {
	if scale == 0 {
		for i := range v {
			v[i] = 0
		}
		return
	}
	inv := 1 / scale
	i := 0
	for ; i+4 <= len(v); i += 4 {
		v[i] = float64(i8Quant(v[i], inv)) * scale
		v[i+1] = float64(i8Quant(v[i+1], inv)) * scale
		v[i+2] = float64(i8Quant(v[i+2], inv)) * scale
		v[i+3] = float64(i8Quant(v[i+3], inv)) * scale
	}
	for ; i < len(v); i++ {
		v[i] = float64(i8Quant(v[i], inv)) * scale
	}
}

func packI8(dst []byte, src []float64) {
	for len(src) > 0 {
		b := len(src)
		if b > I8BlockElems {
			b = I8BlockElems
		}
		scale := i8BlockScale(src[:b])
		putU64(dst, math.Float64bits(scale))
		dst = dst[8:]
		if scale == 0 {
			for i := 0; i < b; i++ {
				dst[i] = 0
			}
		} else {
			inv := 1 / scale
			i := 0
			for ; i+4 <= b; i += 4 {
				dst[i] = byte(i8Quant(src[i], inv))
				dst[i+1] = byte(i8Quant(src[i+1], inv))
				dst[i+2] = byte(i8Quant(src[i+2], inv))
				dst[i+3] = byte(i8Quant(src[i+3], inv))
			}
			for ; i < b; i++ {
				dst[i] = byte(i8Quant(src[i], inv))
			}
		}
		dst = dst[b:]
		src = src[b:]
	}
}

func unpackI8(dst []float64, src []byte) {
	for len(dst) > 0 {
		b := len(dst)
		if b > I8BlockElems {
			b = I8BlockElems
		}
		scale := math.Float64frombits(getU64(src))
		src = src[8:]
		if scale == 0 {
			// Zero scale decodes the block to zeros regardless of payload
			// bytes, matching the encoder's all-zero marker. (A hostile
			// frame with scale 0 and nonzero bytes still decodes
			// deterministically.)
			for i := 0; i < b; i++ {
				dst[i] = 0
			}
		} else {
			i := 0
			for ; i+4 <= b; i += 4 {
				dst[i] = float64(int8(src[i])) * scale
				dst[i+1] = float64(int8(src[i+1])) * scale
				dst[i+2] = float64(int8(src[i+2])) * scale
				dst[i+3] = float64(int8(src[i+3])) * scale
			}
			for ; i < b; i++ {
				dst[i] = float64(int8(src[i])) * scale
			}
		}
		src = src[b:]
		dst = dst[b:]
	}
}

// Tiny local byte-order helpers; encoding/binary's functions are equivalent
// but these keep the kernels free of interface indirection in older
// toolchains.

func putU16(b []byte, v uint16) {
	_ = b[1]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
}

func getU16(b []byte) uint16 {
	_ = b[1]
	return uint16(b[0]) | uint16(b[1])<<8
}

func putU32(b []byte, v uint32) {
	_ = b[3]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func getU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
