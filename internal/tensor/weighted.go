package tensor

import "fmt"

// Weighted (skew-proportional) partitioning.
//
// The equal partition assigns every rank the same chunk regardless of how
// fast its links move bytes, so the slowest link binds the collective. The
// weighted partition sizes chunk i proportionally to weights[i] (a relative
// speed), subject to two safety bounds:
//
//   - a max-skew clamp: no weight counts as less than max(weights)/maxSkew,
//     so a mismeasured (or genuinely dead) link cannot starve a rank to a
//     sliver and blow up the fast ranks' chunks without bound;
//   - a floor: no chunk is sized below floorElems (capped at total/n so the
//     floor stays satisfiable), keeping per-message framing overhead
//     amortized even for the slowest rank.
//
// Rounding uses the largest-remainder method with index-order tie-breaking,
// which makes the partition a pure function of (total, weights, floor,
// maxSkew): permuting equal weights permutes nothing, and uniform weights
// reproduce the equal partition of Partition/ChunkBounds exactly — the
// first total%n chunks are one element longer — so a skew plan built on a
// uniform fabric is bit-identical to the unweighted schedule.

// DefaultMaxSkew is the default largest-to-smallest chunk ratio the clamp
// allows. Beyond ~8× the marginal rebalancing gain is tiny while the outsized
// chunks start to dominate the fast links' own service time.
const DefaultMaxSkew = 8.0

// WeightedSizes splits total elements into len(weights) contiguous chunk
// sizes proportional to the weights. weights must be positive and finite;
// floorElems <= 0 disables the floor; maxSkew < 1 selects DefaultMaxSkew
// (maxSkew == 1 forces the equal partition). The returned sizes sum to
// total exactly.
func WeightedSizes(total int, weights []float64, floorElems int, maxSkew float64) ([]int, error) {
	n := len(weights)
	if n <= 0 {
		return nil, fmt.Errorf("tensor: weighted partition into %d chunks", n)
	}
	if total < 0 {
		return nil, fmt.Errorf("tensor: weighted partition of %d elements", total)
	}
	if maxSkew < 1 {
		maxSkew = DefaultMaxSkew
	}
	var maxW float64
	for i, w := range weights {
		if !(w > 0) || w > 1e300 {
			return nil, fmt.Errorf("tensor: weight[%d] = %v", i, w)
		}
		if w > maxW {
			maxW = w
		}
	}
	sizes := make([]int, n)

	// Clamp, then compute ideal fractional shares.
	clamped := make([]float64, n)
	var sum float64
	minW := maxW / maxSkew
	for i, w := range weights {
		if w < minW {
			w = minW
		}
		clamped[i] = w
		sum += w
	}

	// Largest-remainder rounding: floor every ideal share, then hand the
	// leftover elements to the largest fractional parts, ties to the lower
	// index. For uniform weights every fractional part is the same
	// total%n/n, so the first total%n chunks get the extra element —
	// exactly Partition's layout.
	type frac struct {
		i int
		f float64
	}
	fr := make([]frac, n)
	assigned := 0
	for i, w := range clamped {
		ideal := float64(total) * (w / sum)
		s := int(ideal)
		if s > total {
			s = total
		}
		sizes[i] = s
		assigned += s
		fr[i] = frac{i: i, f: ideal - float64(s)}
	}
	// Stable selection of the total-assigned largest remainders. Insertion
	// sort by descending fraction, index ascending on ties: n is small
	// (rank count) and allocation-light beats sort.Slice's closure here.
	for i := 1; i < n; i++ {
		x := fr[i]
		j := i - 1
		for j >= 0 && (fr[j].f < x.f || (fr[j].f == x.f && fr[j].i > x.i)) {
			fr[j+1] = fr[j]
			j--
		}
		fr[j+1] = x
	}
	for k := 0; k < total-assigned; k++ {
		sizes[fr[k%n].i]++
	}

	// Floor pass: raise starved chunks to the (satisfiable) floor, taking
	// elements one at a time from the currently largest chunk, lowest index
	// on ties — deterministic and skew-reducing, so it cannot re-starve.
	floor := floorElems
	if floor > total/n {
		floor = total / n
	}
	if floor > 0 {
		for i := 0; i < n; i++ {
			for sizes[i] < floor {
				big, bigAt := -1, -1
				for j, s := range sizes {
					if s > big {
						big, bigAt = s, j
					}
				}
				if big <= floor {
					break
				}
				sizes[bigAt]--
				sizes[i]++
			}
		}
	}
	return sizes, nil
}

// WeightedOffsets converts chunk sizes into the n+1 prefix-sum offsets the
// collective schedules index with: chunk i spans [offs[i], offs[i+1]).
func WeightedOffsets(sizes []int) []int {
	offs := make([]int, len(sizes)+1)
	for i, s := range sizes {
		offs[i+1] = offs[i] + s
	}
	return offs
}

// UniformOffsets reports whether offs describes exactly the equal partition
// of total elements into len(offs)-1 chunks — the predicate that lets a
// skew-aware caller fall back to the unweighted (bit-identical, pooled)
// schedule when the plan degenerates to uniform.
func UniformOffsets(offs []int) bool {
	n := len(offs) - 1
	if n <= 0 || offs[0] != 0 {
		return false
	}
	total := offs[n]
	for i := 0; i < n; i++ {
		s, e, err := ChunkBounds(total, n, i)
		if err != nil || offs[i] != s || offs[i+1] != e {
			return false
		}
	}
	return true
}
