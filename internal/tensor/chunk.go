package tensor

import "fmt"

// Chunk is a view into a contiguous range of a Vector. Ring AllReduce sends
// chunk i to the left neighbor at step i; views avoid copying in the reduce
// phase.
type Chunk struct {
	// Index is the chunk's position in the partition.
	Index int
	// Offset is the start element within the parent vector.
	Offset int
	// Data aliases the parent vector's storage.
	Data Vector
}

// Partition splits v into n contiguous chunks whose sizes differ by at most
// one element (the first len(v)%n chunks are one element longer). Chunks
// alias v: reducing into a chunk mutates v. n must be positive; chunks may
// be empty when n > len(v).
func Partition(v Vector, n int) ([]Chunk, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tensor: partition into %d chunks", n)
	}
	chunks := make([]Chunk, n)
	base := len(v) / n
	rem := len(v) % n
	off := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		chunks[i] = Chunk{Index: i, Offset: off, Data: v[off : off+size]}
		off += size
	}
	return chunks, nil
}

// ChunkBounds returns the [start, end) element range of chunk i when a
// vector of length total is partitioned into n chunks, without materializing
// the views. It mirrors Partition exactly.
func ChunkBounds(total, n, i int) (start, end int, err error) {
	if n <= 0 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("tensor: chunk %d of %d", i, n)
	}
	base := total / n
	rem := total % n
	if i < rem {
		start = i * (base + 1)
		end = start + base + 1
		return start, end, nil
	}
	start = rem*(base+1) + (i-rem)*base
	end = start + base
	return start, end, nil
}
