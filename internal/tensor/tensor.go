// Package tensor provides the dense vector math used throughout the RNA
// library: gradients and model parameters are flat float64 vectors, and the
// ring AllReduce operates on contiguous chunks of them.
//
// The package is deliberately small and allocation-conscious: every hot-path
// operation has an in-place form, and chunking never copies data.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// ErrShapeMismatch is returned when two vectors that must have equal length
// do not.
var ErrShapeMismatch = errors.New("tensor: shape mismatch")

// Vector is a dense one-dimensional tensor. It is the unit of exchange in
// all collectives: a gradient, a model, or a chunk of either.
type Vector []float64

// New returns a zeroed vector of length n.
func New(n int) Vector {
	return make(Vector, n)
}

// FromSlice copies data into a freshly allocated Vector, so later mutation
// of the argument does not alias the result.
func FromSlice(data []float64) Vector {
	v := make(Vector, len(data))
	copy(v, data)
	return v
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// CopyFrom copies src into v. The lengths must match.
func (v Vector) CopyFrom(src Vector) error {
	if len(v) != len(src) {
		return fmt.Errorf("%w: dst %d, src %d", ErrShapeMismatch, len(v), len(src))
	}
	copy(v, src)
	return nil
}

// Zero sets every element of v to 0.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every element of v to c.
func (v Vector) Fill(c float64) {
	for i := range v {
		v[i] = c
	}
}

// Add accumulates other into v element-wise (v += other).
func (v Vector) Add(other Vector) error {
	if len(v) != len(other) {
		return fmt.Errorf("%w: dst %d, src %d", ErrShapeMismatch, len(v), len(other))
	}
	addVec(v, other)
	return nil
}

// Sub subtracts other from v element-wise (v -= other).
func (v Vector) Sub(other Vector) error {
	if len(v) != len(other) {
		return fmt.Errorf("%w: dst %d, src %d", ErrShapeMismatch, len(v), len(other))
	}
	subVec(v, other)
	return nil
}

// AverageWith computes v = (v+other)/2 element-wise — the model-averaging
// update the parameter server applies, fused into one pass.
func (v Vector) AverageWith(other Vector) error {
	if len(v) != len(other) {
		return fmt.Errorf("%w: dst %d, src %d", ErrShapeMismatch, len(v), len(other))
	}
	avgVec(v, other)
	return nil
}

// SumInto computes dst = a + b in a single fused pass, bit-identical to
// copying a into dst and adding b but without the extra memory sweep. The
// parameter-server store builds successor snapshots with it.
func SumInto(dst, a, b Vector) error {
	if len(dst) != len(a) || len(dst) != len(b) {
		return fmt.Errorf("%w: dst %d, a %d, b %d", ErrShapeMismatch, len(dst), len(a), len(b))
	}
	sumTo(dst, a, b)
	return nil
}

// AverageInto computes dst = (a + b)/2 in a single fused pass,
// bit-identical to copy-then-AverageWith.
func AverageInto(dst, a, b Vector) error {
	if len(dst) != len(a) || len(dst) != len(b) {
		return fmt.Errorf("%w: dst %d, a %d, b %d", ErrShapeMismatch, len(dst), len(a), len(b))
	}
	avgTo(dst, a, b)
	return nil
}

// Scale multiplies v by c in place.
func (v Vector) Scale(c float64) {
	scaleVec(v, c)
}

// AddScaled computes v += a*x as one fused multiply-add pass. It is the
// primitive behind the accumulator's weighted local reduction and the SGD
// parameter update.
func (v Vector) AddScaled(a float64, x Vector) error {
	if len(v) != len(x) {
		return fmt.Errorf("%w: dst %d, src %d", ErrShapeMismatch, len(v), len(x))
	}
	axpyVec(v, a, x)
	return nil
}

// Axpy computes v += a*x, the classic BLAS primitive used by every SGD
// update in the repository. It is an alias for AddScaled.
func (v Vector) Axpy(a float64, x Vector) error {
	return v.AddScaled(a, x)
}

// Dot returns the inner product of v and other.
func (v Vector) Dot(other Vector) (float64, error) {
	if len(v) != len(other) {
		return 0, fmt.Errorf("%w: a %d, b %d", ErrShapeMismatch, len(v), len(other))
	}
	return dotVec(v, other), nil
}

// Norm2 returns the Euclidean (l2) norm of v.
func (v Vector) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute element of v.
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of the elements of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Equal reports whether v and other have the same length and every element
// differs by at most tol.
func (v Vector) Equal(other Vector, tol float64) bool {
	if len(v) != len(other) {
		return false
	}
	for i, x := range v {
		if math.Abs(x-other[i]) > tol {
			return false
		}
	}
	return true
}

// IsFinite reports whether every element of v is finite (no NaN or Inf).
func (v Vector) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Mean computes the element-wise mean of vs into a new vector. All vectors
// must share one length; an empty input is an error.
func Mean(vs []Vector) (Vector, error) {
	if len(vs) == 0 {
		return nil, errors.New("tensor: mean of zero vectors")
	}
	out := vs[0].Clone()
	for _, v := range vs[1:] {
		if err := out.Add(v); err != nil {
			return nil, err
		}
	}
	out.Scale(1 / float64(len(vs)))
	return out, nil
}

// WeightedMean computes Σ w_i·v_i / Σ w_i into a new vector. Weights must be
// non-negative with a positive sum. This is the staleness-weighted local
// reduction g' = Σ[t−(k−τ)+1]·g_t / Σ[t−(k−τ)+1] from §3.3 of the paper.
func WeightedMean(vs []Vector, ws []float64) (Vector, error) {
	if len(vs) == 0 {
		return nil, errors.New("tensor: weighted mean of zero vectors")
	}
	if len(vs) != len(ws) {
		return nil, fmt.Errorf("%w: %d vectors, %d weights", ErrShapeMismatch, len(vs), len(ws))
	}
	var total float64
	for _, w := range ws {
		if w < 0 {
			return nil, fmt.Errorf("tensor: negative weight %v", w)
		}
		total += w
	}
	if total <= 0 {
		return nil, errors.New("tensor: weights sum to zero")
	}
	out := New(len(vs[0]))
	for i, v := range vs {
		if err := out.AddScaled(ws[i]/total, v); err != nil {
			return nil, err
		}
	}
	return out, nil
}
