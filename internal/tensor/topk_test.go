package tensor

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestTopKSelectBasic(t *testing.T) {
	v := Vector{3, -7, 0.5, 7, -1}
	got := TopKSelect(v, 2)
	// |−7| == |7|: the tie breaks toward index 1.
	want := []int32{1, 3}
	if len(got) != len(want) {
		t.Fatalf("TopKSelect = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopKSelect = %v, want %v", got, want)
		}
	}
}

func TestTopKSelectEdges(t *testing.T) {
	if got := TopKSelect(Vector{1, 2}, 0); got != nil {
		t.Errorf("k=0 = %v, want nil", got)
	}
	if got := TopKSelect(nil, 3); got != nil {
		t.Errorf("empty vector = %v, want nil", got)
	}
	got := TopKSelect(Vector{5, -2, 3}, 10)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("k>len = %v, want all indices", got)
	}
}

func TestTopKSelectNaN(t *testing.T) {
	v := Vector{math.NaN(), 1e-30, math.NaN(), 2}
	got := TopKSelect(v, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("NaN must lose to finite magnitudes: got %v", got)
	}
}

// TestTopKSelectMatchesSort cross-checks the heap selection against a full
// sort under the same deterministic order, on random inputs with forced
// magnitude ties.
func TestTopKSelectMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		v := make(Vector, n)
		for i := range v {
			// Small value alphabet → plenty of |v| ties.
			v[i] = float64(rng.Intn(7)-3) * 0.5
		}
		k := rng.Intn(n + 2)
		got := TopKSelect(v, k)

		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
		sort.SliceStable(idx, func(a, b int) bool {
			aa, bb := math.Abs(v[idx[a]]), math.Abs(v[idx[b]])
			if aa != bb {
				return aa > bb
			}
			return idx[a] < idx[b]
		})
		kk := k
		if kk > n {
			kk = n
		}
		want := append([]int32(nil), idx[:kk]...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })

		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v, want %v (v=%v k=%d)", trial, got, want, v, k)
			}
		}
		// Ascending order is part of the contract.
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("trial %d: indices not strictly ascending: %v", trial, got)
			}
		}
	}
}

func TestTopKEF(t *testing.T) {
	v := Vector{3, -7, 0.5, 7, -1}
	orig := v.Clone()
	res := New(len(v))
	res[2] = 10 // pre-existing residual must accumulate, not reset
	idx := TopKEF(v, 2, res)
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 3 {
		t.Fatalf("TopKEF indices = %v", idx)
	}
	// Selected elements ship exactly; the rest moved to the residual.
	want := Vector{0, -7, 0, 7, 0}
	for i := range v {
		if v[i] != want[i] {
			t.Errorf("v[%d] = %v, want %v", i, v[i], want[i])
		}
	}
	wantRes := Vector{3, 0, 10.5, 0, -1}
	for i := range res {
		if res[i] != wantRes[i] {
			t.Errorf("res[%d] = %v, want %v", i, res[i], wantRes[i])
		}
	}
	// Conservation: v + res == orig + initial residual.
	for i := range v {
		init := 0.0
		if i == 2 {
			init = 10
		}
		if v[i]+res[i] != orig[i]+init {
			t.Errorf("mass not conserved at %d", i)
		}
	}
}

func TestTopKEFFullK(t *testing.T) {
	v := Vector{1, 2, 3}
	res := New(3)
	idx := TopKEF(v, 5, res)
	if len(idx) != 3 {
		t.Fatalf("full-k indices = %v", idx)
	}
	for i, x := range v {
		if x != float64(i+1) {
			t.Errorf("v mutated under full k: %v", v)
		}
		if res[i] != 0 {
			t.Errorf("residual dirtied under full k: %v", res)
		}
	}
}

func TestSortInt32(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 2, 31, 32, 33, 100, 500} {
		s := make([]int32, n)
		for i := range s {
			s[i] = int32(rng.Intn(50) - 25)
		}
		want := append([]int32(nil), s...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		sortInt32(s)
		for i := range want {
			if s[i] != want[i] {
				t.Fatalf("n=%d: sortInt32 = %v, want %v", n, s, want)
			}
		}
	}
}
