package tensor

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsZeroed(t *testing.T) {
	v := New(5)
	if len(v) != 5 {
		t.Fatalf("len = %d, want 5", len(v))
	}
	for i, x := range v {
		if x != 0 {
			t.Errorf("v[%d] = %v, want 0", i, x)
		}
	}
}

func TestFromSliceCopies(t *testing.T) {
	src := []float64{1, 2, 3}
	v := FromSlice(src)
	src[0] = 99
	if v[0] != 1 {
		t.Errorf("FromSlice aliased its input: v[0] = %v", v[0])
	}
}

func TestCloneIndependent(t *testing.T) {
	v := FromSlice([]float64{1, 2, 3})
	c := v.Clone()
	c[1] = 42
	if v[1] != 2 {
		t.Errorf("Clone aliased original: v[1] = %v", v[1])
	}
}

func TestCopyFrom(t *testing.T) {
	dst := New(3)
	if err := dst.CopyFrom(FromSlice([]float64{4, 5, 6})); err != nil {
		t.Fatal(err)
	}
	if dst[2] != 6 {
		t.Errorf("dst[2] = %v, want 6", dst[2])
	}
	if err := dst.CopyFrom(New(2)); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("mismatched CopyFrom error = %v, want ErrShapeMismatch", err)
	}
}

func TestAddSubScale(t *testing.T) {
	v := FromSlice([]float64{1, 2, 3})
	if err := v.Add(FromSlice([]float64{10, 20, 30})); err != nil {
		t.Fatal(err)
	}
	want := FromSlice([]float64{11, 22, 33})
	if !v.Equal(want, 0) {
		t.Errorf("after Add, v = %v, want %v", v, want)
	}
	if err := v.Sub(FromSlice([]float64{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	want = FromSlice([]float64{10, 20, 30})
	if !v.Equal(want, 0) {
		t.Errorf("after Sub, v = %v, want %v", v, want)
	}
	v.Scale(0.5)
	want = FromSlice([]float64{5, 10, 15})
	if !v.Equal(want, 0) {
		t.Errorf("after Scale, v = %v, want %v", v, want)
	}
}

func TestAddShapeMismatch(t *testing.T) {
	v := New(3)
	if err := v.Add(New(4)); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("Add mismatch error = %v, want ErrShapeMismatch", err)
	}
	if err := v.Sub(New(4)); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("Sub mismatch error = %v, want ErrShapeMismatch", err)
	}
	if err := v.Axpy(1, New(4)); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("Axpy mismatch error = %v, want ErrShapeMismatch", err)
	}
	if _, err := v.Dot(New(4)); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("Dot mismatch error = %v, want ErrShapeMismatch", err)
	}
}

func TestAxpy(t *testing.T) {
	v := FromSlice([]float64{1, 1, 1})
	if err := v.Axpy(-2, FromSlice([]float64{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	want := FromSlice([]float64{-1, -3, -5})
	if !v.Equal(want, 1e-15) {
		t.Errorf("v = %v, want %v", v, want)
	}
}

func TestDotNormSum(t *testing.T) {
	v := FromSlice([]float64{3, 4})
	d, err := v.Dot(FromSlice([]float64{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if d != 11 {
		t.Errorf("Dot = %v, want 11", d)
	}
	if got := v.Norm2(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := v.Sum(); got != 7 {
		t.Errorf("Sum = %v, want 7", got)
	}
	if got := FromSlice([]float64{-9, 2}).NormInf(); got != 9 {
		t.Errorf("NormInf = %v, want 9", got)
	}
}

func TestZeroFill(t *testing.T) {
	v := FromSlice([]float64{1, 2})
	v.Zero()
	if v[0] != 0 || v[1] != 0 {
		t.Errorf("after Zero, v = %v", v)
	}
	v.Fill(7)
	if v[0] != 7 || v[1] != 7 {
		t.Errorf("after Fill, v = %v", v)
	}
}

func TestIsFinite(t *testing.T) {
	if !FromSlice([]float64{1, 2}).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if FromSlice([]float64{1, math.NaN()}).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if FromSlice([]float64{math.Inf(1)}).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestEqualTolerance(t *testing.T) {
	a := FromSlice([]float64{1, 2})
	b := FromSlice([]float64{1.0005, 2})
	if a.Equal(b, 1e-4) {
		t.Error("Equal too lenient")
	}
	if !a.Equal(b, 1e-3) {
		t.Error("Equal too strict")
	}
	if a.Equal(New(3), 1) {
		t.Error("Equal ignored length mismatch")
	}
}

func TestMean(t *testing.T) {
	got, err := Mean([]Vector{
		FromSlice([]float64{1, 2}),
		FromSlice([]float64{3, 6}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(FromSlice([]float64{2, 4}), 1e-12) {
		t.Errorf("Mean = %v, want [2 4]", got)
	}
	if _, err := Mean(nil); err == nil {
		t.Error("Mean(nil) should error")
	}
	if _, err := Mean([]Vector{New(2), New(3)}); err == nil {
		t.Error("Mean with mismatched shapes should error")
	}
}

func TestWeightedMean(t *testing.T) {
	got, err := WeightedMean(
		[]Vector{FromSlice([]float64{0, 0}), FromSlice([]float64{4, 8})},
		[]float64{1, 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(FromSlice([]float64{3, 6}), 1e-12) {
		t.Errorf("WeightedMean = %v, want [3 6]", got)
	}
}

func TestWeightedMeanErrors(t *testing.T) {
	if _, err := WeightedMean(nil, nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := WeightedMean([]Vector{New(1)}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := WeightedMean([]Vector{New(1)}, []float64{-1}); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := WeightedMean([]Vector{New(1)}, []float64{0}); err == nil {
		t.Error("zero total weight should error")
	}
}

func TestWeightedMeanEqualWeightsMatchesMean(t *testing.T) {
	vs := []Vector{
		FromSlice([]float64{1, -1, 2}),
		FromSlice([]float64{5, 0, 1}),
		FromSlice([]float64{0, 4, 3}),
	}
	m, err := Mean(vs)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := WeightedMean(vs, []float64{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(wm, 1e-12) {
		t.Errorf("Mean %v != equal-weight WeightedMean %v", m, wm)
	}
}

func TestPartitionCoversVector(t *testing.T) {
	for _, tc := range []struct{ total, n int }{
		{10, 3}, {10, 10}, {3, 5}, {0, 4}, {1, 1}, {100, 7},
	} {
		v := New(tc.total)
		for i := range v {
			v[i] = float64(i)
		}
		chunks, err := Partition(v, tc.n)
		if err != nil {
			t.Fatalf("Partition(%d,%d): %v", tc.total, tc.n, err)
		}
		if len(chunks) != tc.n {
			t.Fatalf("Partition(%d,%d) gave %d chunks", tc.total, tc.n, len(chunks))
		}
		covered := 0
		for i, c := range chunks {
			if c.Index != i {
				t.Errorf("chunk %d has Index %d", i, c.Index)
			}
			if c.Offset != covered {
				t.Errorf("chunk %d Offset = %d, want %d", i, c.Offset, covered)
			}
			covered += len(c.Data)
		}
		if covered != tc.total {
			t.Errorf("Partition(%d,%d) covered %d elements", tc.total, tc.n, covered)
		}
	}
}

func TestPartitionBalance(t *testing.T) {
	chunks, err := Partition(New(10), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Sizes must differ by at most one: 4,3,3.
	sizes := []int{len(chunks[0].Data), len(chunks[1].Data), len(chunks[2].Data)}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Errorf("chunk sizes = %v, want [4 3 3]", sizes)
	}
}

func TestPartitionAliases(t *testing.T) {
	v := New(6)
	chunks, err := Partition(v, 2)
	if err != nil {
		t.Fatal(err)
	}
	chunks[1].Data[0] = 42
	if v[3] != 42 {
		t.Error("Partition chunks do not alias the parent vector")
	}
}

func TestPartitionInvalid(t *testing.T) {
	if _, err := Partition(New(3), 0); err == nil {
		t.Error("Partition into 0 chunks should error")
	}
	if _, err := Partition(New(3), -1); err == nil {
		t.Error("Partition into -1 chunks should error")
	}
}

func TestChunkBoundsMatchPartition(t *testing.T) {
	for _, tc := range []struct{ total, n int }{{10, 3}, {25, 4}, {5, 8}, {0, 2}} {
		v := New(tc.total)
		chunks, err := Partition(v, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range chunks {
			start, end, err := ChunkBounds(tc.total, tc.n, i)
			if err != nil {
				t.Fatal(err)
			}
			if start != chunks[i].Offset || end != chunks[i].Offset+len(chunks[i].Data) {
				t.Errorf("ChunkBounds(%d,%d,%d) = [%d,%d), chunk at [%d,%d)",
					tc.total, tc.n, i, start, end,
					chunks[i].Offset, chunks[i].Offset+len(chunks[i].Data))
			}
		}
	}
}

func TestChunkBoundsInvalid(t *testing.T) {
	if _, _, err := ChunkBounds(10, 3, 3); err == nil {
		t.Error("out-of-range chunk index should error")
	}
	if _, _, err := ChunkBounds(10, 0, 0); err == nil {
		t.Error("zero chunk count should error")
	}
}

// Property: a+b == b+a element-wise (commutativity of Add).
func TestQuickAddCommutative(t *testing.T) {
	f := func(raw []float64) bool {
		a := FromSlice(raw)
		b := make(Vector, len(raw))
		for i := range b {
			b[i] = float64(i) * 0.5
		}
		ab := a.Clone()
		if err := ab.Add(b); err != nil {
			return false
		}
		ba := b.Clone()
		if err := ba.Add(a); err != nil {
			return false
		}
		return ab.Equal(ba, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Partition always covers the vector in order with contiguous
// non-overlapping chunks, for any sizes.
func TestQuickPartitionCoverage(t *testing.T) {
	f := func(totalRaw, nRaw uint8) bool {
		total := int(totalRaw)
		n := int(nRaw)%16 + 1
		v := New(total)
		chunks, err := Partition(v, n)
		if err != nil {
			return false
		}
		off := 0
		for _, c := range chunks {
			if c.Offset != off {
				return false
			}
			off += len(c.Data)
		}
		return off == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: WeightedMean with a single positive weight is the identity.
func TestQuickWeightedMeanIdentity(t *testing.T) {
	f := func(raw []float64, w float64) bool {
		w = math.Abs(w)
		if w == 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			w = 1
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true // skip pathological inputs
			}
		}
		v := FromSlice(raw)
		if len(v) == 0 {
			return true
		}
		got, err := WeightedMean([]Vector{v}, []float64{w})
		if err != nil {
			return false
		}
		return got.Equal(v, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: scaling by c then 1/c is (approximately) the identity.
func TestQuickScaleInverse(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := r.Intn(20) + 1
		v := New(n)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		c := r.Float64()*10 + 0.1
		orig := v.Clone()
		v.Scale(c)
		v.Scale(1 / c)
		if !v.Equal(orig, 1e-9) {
			t.Fatalf("scale round-trip failed: %v != %v (c=%v)", v, orig, c)
		}
	}
}
