package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// randomWide fills a vector with values spanning many decades, including
// exact zeros, to exercise every quantizer branch.
func randomWide(rng *rand.Rand, n int) Vector {
	v := New(n)
	for i := range v {
		switch rng.Intn(10) {
		case 0:
			v[i] = 0
		default:
			v[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(13)-6))
		}
	}
	return v
}

func packUnpack(d Dtype, v Vector) Vector {
	wire := make([]byte, d.WireBytes(len(v)))
	Pack(d, wire, v)
	out := New(len(v))
	Unpack(d, out, wire)
	return out
}

// TestRoundTripMatchesPackUnpack pins the contract the in-memory mesh and
// the collectives rely on: RoundTrip is bit-for-bit the same transform as
// Unpack∘Pack.
func TestRoundTripMatchesPackUnpack(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range []Dtype{F32, F16, I8} {
		for _, n := range []int{0, 1, 3, 7, 100, I8BlockElems - 1, I8BlockElems, I8BlockElems + 5, 3000} {
			v := randomWide(rng, n)
			want := packUnpack(d, v)
			got := v.Clone()
			RoundTrip(d, got)
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%v n=%d elem %d: RoundTrip %v != Unpack(Pack) %v (in %v)",
						d, n, i, got[i], want[i], v[i])
				}
			}
		}
	}
}

// TestRoundTripIdempotent: re-encoding an already-decoded vector must be
// exact — the property every compressed collective's forwarding hops rest
// on. Checked both via RoundTrip and via a second Pack producing identical
// wire bytes.
func TestRoundTripIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, d := range []Dtype{F32, F16, I8} {
		for trial := 0; trial < 50; trial++ {
			n := rng.Intn(3 * I8BlockElems)
			v := randomWide(rng, n)
			RoundTrip(d, v)
			wire1 := make([]byte, d.WireBytes(n))
			Pack(d, wire1, v)
			again := v.Clone()
			RoundTrip(d, again)
			for i := range v {
				if math.Float64bits(again[i]) != math.Float64bits(v[i]) {
					t.Fatalf("%v trial %d elem %d: second RoundTrip moved %v -> %v",
						d, trial, i, v[i], again[i])
				}
			}
			wire2 := make([]byte, d.WireBytes(n))
			Pack(d, wire2, again)
			for i := range wire1 {
				if wire1[i] != wire2[i] {
					t.Fatalf("%v trial %d: wire byte %d differs on re-encode", d, trial, i)
				}
			}
		}
	}
}

// TestI8ScalePowerOfTwo: every block scale is 0 or an exact power of two,
// and quantization error is bounded by scale/2 per element.
func TestI8ScalePowerOfTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(2*I8BlockElems)
		v := randomWide(rng, n)
		wire := make([]byte, I8.WireBytes(n))
		Pack(I8, wire, v)
		out := New(n)
		Unpack(I8, out, wire)
		off := 0
		for lo := 0; lo < n; lo += I8BlockElems {
			hi := lo + I8BlockElems
			if hi > n {
				hi = n
			}
			scale := math.Float64frombits(getU64(wire[off:]))
			off += 8 + (hi - lo)
			if scale != 0 {
				if f, _ := math.Frexp(scale); f != 0.5 {
					t.Fatalf("trial %d block %d: scale %v not a power of two", trial, lo, scale)
				}
			}
			for i := lo; i < hi; i++ {
				if err := math.Abs(out[i] - v[i]); err > scale/2+1e-300 {
					t.Fatalf("trial %d elem %d: error %v exceeds scale/2 = %v", trial, i, err, scale/2)
				}
			}
		}
	}
}

// TestF16MatchesReference compares the bit-level converter against the
// strconv-free reference built from math.Ldexp over every exponent regime:
// normals, subnormals, overflow, underflow, and exact ties.
func TestF16MatchesReference(t *testing.T) {
	cases := []struct {
		in   float64
		want uint16
	}{
		{0, 0x0000},
		{math.Copysign(0, -1), 0x8000},
		{1, 0x3c00},
		{-2, 0xc000},
		{65504, 0x7bff}, // largest finite half
		{65520, 0x7c00}, // tie at the overflow boundary → even → Inf
		{65518, 0x7bff}, // below the tie → max finite
		{math.Inf(1), 0x7c00},
		{math.Inf(-1), 0xfc00},
		{math.Ldexp(1, -14), 0x0400}, // smallest normal
		{math.Ldexp(1, -24), 0x0001}, // smallest subnormal
		{math.Ldexp(1, -25), 0x0000}, // ties to even → zero
		{math.Ldexp(3, -25), 0x0002}, // ties to even → up
		{math.Ldexp(1, -26), 0x0000}, // below tie → zero
		{1 + 1.0/2048, 0x3c00},       // tie at mantissa lsb → even
		{1 + 3.0/2048, 0x3c02},       // tie → up to even
	}
	for _, tc := range cases {
		if got := f16FromF32(float32(tc.in)); got != tc.want {
			t.Errorf("f16FromF32(%v) = %#04x, want %#04x", tc.in, got, tc.want)
		}
	}
	if got := f16FromF32(float32(math.NaN())); got&0x7c00 != 0x7c00 || got&0x3ff == 0 {
		t.Errorf("NaN did not convert to a half NaN: %#04x", got)
	}
	// Exhaustive widen/narrow round trip over every half bit pattern.
	for h := 0; h < 1<<16; h++ {
		f := f16ToF32(uint16(h))
		back := f16FromF32(f)
		want := uint16(h)
		if f != f && want&0x7c00 == 0x7c00 && want&0x3ff != 0 {
			want = want&0x8000 | 0x7e00 // all NaNs collapse to the canonical one
		}
		if back != want {
			t.Fatalf("half %#04x -> %v -> %#04x", h, f, back)
		}
	}
}

// TestDtypeWireBytes pins the wire-size accounting the transport codec and
// cost model share.
func TestDtypeWireBytes(t *testing.T) {
	cases := []struct {
		d    Dtype
		n    int
		want int
	}{
		{F64, 10, 80},
		{F32, 10, 40},
		{F16, 10, 20},
		{I8, 0, 0},
		{I8, 1, 9},
		{I8, I8BlockElems, I8BlockElems + 8},
		{I8, I8BlockElems + 1, I8BlockElems + 17},
		{I8, 3 * I8BlockElems, 3 * (I8BlockElems + 8)},
	}
	for _, tc := range cases {
		if got := tc.d.WireBytes(tc.n); got != tc.want {
			t.Errorf("%v.WireBytes(%d) = %d, want %d", tc.d, tc.n, got, tc.want)
		}
	}
}

// TestParseDtype round-trips String and accepts the common aliases.
func TestParseDtype(t *testing.T) {
	for _, d := range []Dtype{F64, F32, F16, I8} {
		got, err := ParseDtype(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDtype(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := ParseDtype("bf16"); err == nil {
		t.Error("ParseDtype accepted unknown dtype")
	}
	if !F64.Valid() || !I8.Valid() || Dtype(200).Valid() {
		t.Error("Valid() wrong")
	}
}

// TestRoundTripEF: the residual accumulates exactly pre−post so that
// (post + residual-delta) reconstructs the input — the error-feedback
// invariant.
func TestRoundTripEF(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, d := range []Dtype{F32, F16, I8} {
		v := randomWide(rng, 2500)
		orig := v.Clone()
		res := New(2500)
		res.Fill(0.25) // pre-existing residual must be preserved, not clobbered
		RoundTripEF(d, v, res)
		for i := range v {
			if got := res[i] - 0.25; math.Abs(got-(orig[i]-v[i])) > 1e-15*math.Max(1, math.Abs(orig[i])) {
				t.Fatalf("%v elem %d: residual delta %v, want %v", d, i, got, orig[i]-v[i])
			}
		}
	}
	// F64 must be a strict no-op on both vector and residual.
	v := randomWide(rng, 64)
	orig := v.Clone()
	res := New(64)
	RoundTripEF(F64, v, res)
	for i := range v {
		if v[i] != orig[i] || res[i] != 0 {
			t.Fatal("F64 RoundTripEF not a no-op")
		}
	}
}

// TestPackZeroAlloc: the kernels must not allocate when given caller-owned
// buffers — they run on the TCP hot path.
func TestPackZeroAlloc(t *testing.T) {
	v := randomWide(rand.New(rand.NewSource(11)), 4096)
	res := New(4096)
	for _, d := range []Dtype{F32, F16, I8} {
		d := d
		wire := make([]byte, d.WireBytes(len(v)))
		out := New(len(v))
		if n := testing.AllocsPerRun(20, func() { Pack(d, wire, v) }); n != 0 {
			t.Errorf("Pack %v allocates %v/op", d, n)
		}
		if n := testing.AllocsPerRun(20, func() { Unpack(d, out, wire) }); n != 0 {
			t.Errorf("Unpack %v allocates %v/op", d, n)
		}
		if n := testing.AllocsPerRun(20, func() { RoundTripEF(d, v, res) }); n != 0 {
			t.Errorf("RoundTripEF %v allocates %v/op", d, n)
		}
	}
}

func BenchmarkPack(b *testing.B) {
	v := randomWide(rand.New(rand.NewSource(13)), 1<<18)
	for _, d := range []Dtype{F32, F16, I8} {
		d := d
		wire := make([]byte, d.WireBytes(len(v)))
		b.Run(d.String(), func(b *testing.B) {
			b.SetBytes(int64(8 * len(v)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Pack(d, wire, v)
			}
		})
	}
}

func BenchmarkUnpack(b *testing.B) {
	v := randomWide(rand.New(rand.NewSource(17)), 1<<18)
	for _, d := range []Dtype{F32, F16, I8} {
		d := d
		wire := make([]byte, d.WireBytes(len(v)))
		Pack(d, wire, v)
		out := New(len(v))
		b.Run(d.String(), func(b *testing.B) {
			b.SetBytes(int64(8 * len(v)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Unpack(d, out, wire)
			}
		})
	}
}
