package tensor

import "math"

// Top-k sparsification: keep the k largest-magnitude elements of a vector
// and drop the rest. This is the selection kernel behind the collective
// layer's sparse gradient exchange; together with error feedback (the
// dropped mass accumulates in a residual and re-enters the next step's
// gradient) it preserves convergence at aggressive sparsity.
//
// Determinism contract: the selection is a pure function of the input
// values — ties in |v| break toward the LOWER index — and the returned
// index list is sorted ascending. Every SPMD rank selecting over identical
// bytes therefore produces identical (index, value) lists, which is what
// keeps sparse collectives bit-identical across ranks.

// TopKSelect returns the indices of the k largest-magnitude elements of v,
// sorted ascending. Ties in magnitude break toward the lower index. k ≤ 0
// returns nil; k ≥ len(v) returns every index. NaN magnitudes rank below
// every finite magnitude (they never displace a finite element).
func TopKSelect(v Vector, k int) []int32 {
	if k <= 0 || len(v) == 0 {
		return nil
	}
	if k >= len(v) {
		out := make([]int32, len(v))
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	// Bounded min-heap of the current top k: the root is the weakest
	// survivor, displaced whenever a stronger element arrives. O(n log k)
	// and no allocation beyond the output.
	type entry struct {
		abs float64
		idx int32
	}
	// stronger reports whether a beats b under the deterministic order
	// (larger magnitude wins; equal magnitude → lower index wins).
	stronger := func(aAbs float64, aIdx int32, bAbs float64, bIdx int32) bool {
		if aAbs != bAbs {
			return aAbs > bAbs
		}
		return aIdx < bIdx
	}
	heap := make([]entry, 0, k)
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			weakest := i
			if l < len(heap) && stronger(heap[weakest].abs, heap[weakest].idx, heap[l].abs, heap[l].idx) {
				weakest = l
			}
			if r < len(heap) && stronger(heap[weakest].abs, heap[weakest].idx, heap[r].abs, heap[r].idx) {
				weakest = r
			}
			if weakest == i {
				return
			}
			heap[i], heap[weakest] = heap[weakest], heap[i]
			i = weakest
		}
	}
	abs := func(x float64) float64 {
		a := math.Abs(x)
		if a != a { // NaN ranks below everything
			return math.Inf(-1)
		}
		return a
	}
	for i, x := range v {
		a := abs(x)
		if len(heap) < k {
			heap = append(heap, entry{a, int32(i)})
			// Sift up.
			for c := len(heap) - 1; c > 0; {
				p := (c - 1) / 2
				if stronger(heap[p].abs, heap[p].idx, heap[c].abs, heap[c].idx) {
					heap[p], heap[c] = heap[c], heap[p]
					c = p
					continue
				}
				break
			}
			continue
		}
		if stronger(a, int32(i), heap[0].abs, heap[0].idx) {
			heap[0] = entry{a, int32(i)}
			down(0)
		}
	}
	out := make([]int32, k)
	for i, e := range heap {
		out[i] = e.idx
	}
	// Heap order is arbitrary; the wire contract wants ascending indices.
	sortInt32(out)
	return out
}

// TopKEF sparsifies v in place to its top-k elements with error feedback:
// elements outside the selection are zeroed and their values accumulate
// into residual (residual must be at least len(v); selected elements ship
// exactly, so they contribute no error). Returns the selected indices,
// sorted ascending. This mirrors RoundTripEF's contract for dense lossy
// dtypes: fold residual into the next step's gradient to recover the
// dropped mass.
func TopKEF(v Vector, k int, residual Vector) []int32 {
	idx := TopKSelect(v, k)
	if len(idx) == len(v) {
		return idx
	}
	residual = residual[:len(v)]
	next := 0
	for i := range v {
		if next < len(idx) && int32(i) == idx[next] {
			next++
			continue
		}
		residual[i] += v[i]
		v[i] = 0
	}
	return idx
}

// sortInt32 sorts s ascending (insertion sort below 32 elements, otherwise
// a simple bottom-up heapsort — no allocation either way, and k is small on
// the sparse hot path).
func sortInt32(s []int32) {
	if len(s) < 32 {
		for i := 1; i < len(s); i++ {
			x := s[i]
			j := i - 1
			for j >= 0 && s[j] > x {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = x
		}
		return
	}
	down := func(i, n int) {
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < n && s[l] > s[big] {
				big = l
			}
			if r < n && s[r] > s[big] {
				big = r
			}
			if big == i {
				return
			}
			s[i], s[big] = s[big], s[i]
			i = big
		}
	}
	for i := len(s)/2 - 1; i >= 0; i-- {
		down(i, len(s))
	}
	for n := len(s) - 1; n > 0; n-- {
		s[0], s[n] = s[n], s[0]
		down(0, n)
	}
}
