package opt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func randVec(rng *rand.Rand, dim int) tensor.Vector {
	v := tensor.New(dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestNewAdamValidation(t *testing.T) {
	if _, err := NewAdam(0, 0.1, 0); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := NewAdam(4, 0, 0); err == nil {
		t.Error("lr 0 accepted")
	}
	if _, err := NewAdam(4, 0.1, -1); err == nil {
		t.Error("negative weight decay accepted")
	}
	o, err := NewAdam(4, 0.1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if o.Beta1 != AdamBeta1 || o.Beta2 != AdamBeta2 || o.Eps != AdamEps {
		t.Errorf("defaults not filled: %+v", o)
	}
	if o.StateBytes() != 4*16 {
		t.Errorf("StateBytes = %d, want 64", o.StateBytes())
	}
}

func TestAdamStepMatchesScalarReference(t *testing.T) {
	const dim = 9
	rng := rand.New(rand.NewSource(5))
	o, err := NewAdam(dim, 0.05, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	params := randVec(rng, dim)
	refP := append(tensor.Vector(nil), params...)
	refM := tensor.New(dim)
	refU := tensor.New(dim)
	for step := 1; step <= 5; step++ {
		grad := randVec(rng, dim)
		if _, err := o.Step(params, grad, 1); err != nil {
			t.Fatal(err)
		}
		bc1 := 1 / (1 - math.Pow(AdamBeta1, float64(step)))
		bc2 := 1 / (1 - math.Pow(AdamBeta2, float64(step)))
		for i := range refP {
			g := grad[i] + 0.01*refP[i]
			refM[i] = AdamBeta1*refM[i] + (1-AdamBeta1)*g
			refU[i] = AdamBeta2*refU[i] + (1-AdamBeta2)*g*g
			refP[i] -= 0.05 * (refM[i] * bc1) / (math.Sqrt(refU[i]*bc2) + AdamEps)
		}
		for i := range refP {
			if math.Abs(params[i]-refP[i]) > 1e-12 {
				t.Fatalf("step %d elem %d: fused %v vs reference %v", step, i, params[i], refP[i])
			}
		}
	}
	if o.StepCount() != 5 {
		t.Errorf("StepCount = %d", o.StepCount())
	}
}

func TestAdamZeroScaleAdvancesClock(t *testing.T) {
	o, err := NewAdam(4, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	o.Schedule = StepDecay{Boundaries: []int{1}, Decay: 0.1}
	params := tensor.New(4)
	grad := tensor.Vector{1, 1, 1, 1}
	before := append(tensor.Vector(nil), params...)
	if lr, err := o.Step(params, grad, 0); err != nil || lr != 0 {
		t.Fatalf("lr=%v err=%v", lr, err)
	}
	for i := range params {
		if params[i] != before[i] {
			t.Fatal("zero-scale step mutated params")
		}
	}
	if o.StepCount() != 1 {
		t.Errorf("StepCount = %d", o.StepCount())
	}
	lr, err := o.Step(params, grad, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lr-0.01) > 1e-15 {
		t.Errorf("schedule clock not advanced by skipped step: lr = %v", lr)
	}
	o.Reset()
	if o.StepCount() != 0 {
		t.Error("Reset did not clear step count")
	}
}

// newShardedOpt builds a full-vector optimizer and matching span optimizers
// via the given constructor.
func shardSpanEquality(t *testing.T, name string, mk func(dim int) Optimizer, state func(o Optimizer) []tensor.Vector) {
	t.Helper()
	const dim = 103
	offs := []int{0, 31, 31, 70, dim} // includes an empty span
	rng := rand.New(rand.NewSource(17))
	full := mk(dim)
	params := randVec(rng, dim)
	shardParams := append(tensor.Vector(nil), params...)
	shards := make([]Optimizer, 0, len(offs)-1)
	for r := 0; r+1 < len(offs); r++ {
		if offs[r+1] == offs[r] {
			shards = append(shards, nil)
			continue
		}
		shards = append(shards, mk(offs[r+1]-offs[r]))
	}
	for step := 0; step < 7; step++ {
		grad := randVec(rng, dim)
		scale := 1.0
		if step == 3 {
			scale = 0.5 // Linear Scaling Rule round
		}
		if _, err := full.Step(params, grad, scale); err != nil {
			t.Fatal(err)
		}
		for r, o := range shards {
			if o == nil {
				continue
			}
			lo, hi := offs[r], offs[r+1]
			if _, err := o.Step(shardParams[lo:hi], grad[lo:hi], scale); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := range params {
		if math.Float64bits(params[i]) != math.Float64bits(shardParams[i]) {
			t.Fatalf("%s: param %d diverged: %x vs %x", name, i, params[i], shardParams[i])
		}
	}
	fullState := state(full)
	for r, o := range shards {
		if o == nil {
			continue
		}
		lo, hi := offs[r], offs[r+1]
		for si, sv := range state(o) {
			fv := fullState[si][lo:hi]
			for i := range sv {
				if math.Float64bits(sv[i]) != math.Float64bits(fv[i]) {
					t.Fatalf("%s: shard %d state vector %d elem %d diverged", name, r, si, i)
				}
			}
		}
	}
}

// TestShardedStateMatchesReplicatedSlice is the owner-computes contract at
// the optimizer level: an optimizer constructed over a span, fed the span of
// every gradient, holds bit-identical params AND state to the matching slice
// of a full-vector optimizer — for momentum-SGD and Adam.
func TestShardedStateMatchesReplicatedSlice(t *testing.T) {
	shardSpanEquality(t, "sgd",
		func(dim int) Optimizer {
			o, err := NewSGD(dim, 0.1, 0.9, 0.001)
			if err != nil {
				t.Fatal(err)
			}
			return o
		},
		func(o Optimizer) []tensor.Vector { return []tensor.Vector{o.(*SGD).Velocity()} })
	shardSpanEquality(t, "adam",
		func(dim int) Optimizer {
			o, err := NewAdam(dim, 0.01, 0.001)
			if err != nil {
				t.Fatal(err)
			}
			return o
		},
		func(o Optimizer) []tensor.Vector {
			m, u := o.(*Adam).Moments()
			return []tensor.Vector{m, u}
		})
}

func TestStateBytesSharding(t *testing.T) {
	sgd, err := NewSGD(1024, 0.1, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sgd.StateBytes() != 1024*8 {
		t.Errorf("SGD StateBytes = %d", sgd.StateBytes())
	}
	adam, err := NewAdam(1024, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if adam.StateBytes() != 1024*16 {
		t.Errorf("Adam StateBytes = %d", adam.StateBytes())
	}
	shard, err := NewAdam(128, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if adam.StateBytes() != 8*shard.StateBytes() {
		t.Errorf("sharding 8 ways should cut state 8x: %d vs %d", adam.StateBytes(), shard.StateBytes())
	}
}
