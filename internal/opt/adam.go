package opt

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Adam default hyperparameters (Kingma & Ba).
const (
	AdamBeta1 = 0.9
	AdamBeta2 = 0.999
	AdamEps   = 1e-8
)

// Adam is the Adam optimizer with decoupled-from-nothing classic L2 weight
// decay folded into the gradient:
//
//	g' ← g + λ·x
//	m  ← β₁·m + (1−β₁)·g'
//	u  ← β₂·u + (1−β₂)·g'²
//	x  ← x − γ_eff · (m / (1−β₁ᵗ)) / (√(u / (1−β₂ᵗ)) + ε)
//
// where γ_eff = γ·scale·schedule and t is the 1-based step count. Both
// moment vectors are fp64, so replicated Adam costs 2×dim×8 bytes of state
// per rank — the owner-computes sharded path keeps only the owned span's
// moments, dividing that footprint by the rank count.
//
// The update is strictly element-wise with state depending only on t, which
// is what makes sharding exact: an Adam over a parameter span holds
// bit-identical moments to the matching slice of a full-vector Adam.
type Adam struct {
	// LR is the base learning rate γ for a single contributing worker.
	LR float64
	// Beta1 and Beta2 are the moment decay rates; Eps stabilizes the
	// denominator. NewAdam fills the standard defaults.
	Beta1, Beta2, Eps float64
	// WeightDecay is λ, applied as classic L2 (added into the gradient).
	WeightDecay float64
	// Schedule optionally multiplies the learning rate per step.
	Schedule Schedule

	m, u tensor.Vector
	step int
}

// NewAdam returns an Adam optimizer for dim-dimensional parameters with the
// standard β₁/β₂/ε defaults.
func NewAdam(dim int, lr, weightDecay float64) (*Adam, error) {
	if dim < 1 {
		return nil, fmt.Errorf("opt: dim %d", dim)
	}
	if lr <= 0 {
		return nil, fmt.Errorf("opt: learning rate %v", lr)
	}
	if weightDecay < 0 {
		return nil, fmt.Errorf("opt: weight decay %v", weightDecay)
	}
	return &Adam{
		LR: lr, Beta1: AdamBeta1, Beta2: AdamBeta2, Eps: AdamEps,
		WeightDecay: weightDecay,
		m:           tensor.New(dim), u: tensor.New(dim),
	}, nil
}

// Step implements Optimizer.
func (o *Adam) Step(params, grad tensor.Vector, scale float64) (float64, error) {
	if len(params) != len(o.m) || len(grad) != len(o.m) {
		return 0, tensor.ErrShapeMismatch
	}
	if scale < 0 {
		return 0, fmt.Errorf("opt: scale %v", scale)
	}
	lr := o.LR * scale
	if o.Schedule != nil {
		lr *= o.Schedule.Factor(o.step)
	}
	o.step++
	if scale == 0 {
		// Nothing contributed; the iteration is a no-op (but still advances
		// the schedule clock), matching SGD. The moments do not decay on a
		// skipped step — identical on every rank, so determinism holds.
		return 0, nil
	}
	t := float64(o.step)
	bc1 := 1 / (1 - math.Pow(o.Beta1, t))
	bc2 := 1 / (1 - math.Pow(o.Beta2, t))
	adamStep(params, o.m, o.u, grad, o.Beta1, o.Beta2, o.Eps, o.WeightDecay, lr, bc1, bc2)
	return lr, nil
}

// adamStep is the fused Adam kernel, 4-way unrolled like the tensor
// kernels: one pass over memory updates both moments and the parameters.
// bc1/bc2 are the reciprocal bias corrections 1/(1−βᵗ), hoisted so the
// per-element work is multiply-only.
func adamStep(params, m, u, grad []float64, b1, b2, eps, wd, lr, bc1, bc2 float64) {
	m = m[:len(params)]
	u = u[:len(params)]
	grad = grad[:len(params)]
	c1 := 1 - b1
	c2 := 1 - b2
	i := 0
	for ; i+4 <= len(params); i += 4 {
		g0 := grad[i] + wd*params[i]
		g1 := grad[i+1] + wd*params[i+1]
		g2 := grad[i+2] + wd*params[i+2]
		g3 := grad[i+3] + wd*params[i+3]
		m0 := b1*m[i] + c1*g0
		m1 := b1*m[i+1] + c1*g1
		m2 := b1*m[i+2] + c1*g2
		m3 := b1*m[i+3] + c1*g3
		u0 := b2*u[i] + c2*g0*g0
		u1 := b2*u[i+1] + c2*g1*g1
		u2 := b2*u[i+2] + c2*g2*g2
		u3 := b2*u[i+3] + c2*g3*g3
		m[i], m[i+1], m[i+2], m[i+3] = m0, m1, m2, m3
		u[i], u[i+1], u[i+2], u[i+3] = u0, u1, u2, u3
		params[i] -= lr * (m0 * bc1) / (math.Sqrt(u0*bc2) + eps)
		params[i+1] -= lr * (m1 * bc1) / (math.Sqrt(u1*bc2) + eps)
		params[i+2] -= lr * (m2 * bc1) / (math.Sqrt(u2*bc2) + eps)
		params[i+3] -= lr * (m3 * bc1) / (math.Sqrt(u3*bc2) + eps)
	}
	for ; i < len(params); i++ {
		g := grad[i] + wd*params[i]
		mv := b1*m[i] + c1*g
		uv := b2*u[i] + c2*g*g
		m[i] = mv
		u[i] = uv
		params[i] -= lr * (mv * bc1) / (math.Sqrt(uv*bc2) + eps)
	}
}

// StepCount implements Optimizer.
func (o *Adam) StepCount() int { return o.step }

// Reset implements Optimizer.
func (o *Adam) Reset() {
	o.m.Zero()
	o.u.Zero()
	o.step = 0
}

// StateBytes implements Optimizer: two fp64 moment vectors.
func (o *Adam) StateBytes() int64 { return int64(len(o.m)) * 16 }

// Moments exposes read-only views of the first and second moment vectors
// (the sharded bit-identity tests compare an owned span's state against the
// matching slice of a replicated optimizer).
func (o *Adam) Moments() (m, u tensor.Vector) { return o.m, o.u }

var _ Optimizer = (*Adam)(nil)
