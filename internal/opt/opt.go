// Package opt implements the SGD optimizer the paper's setups use
// (momentum + weight decay, Section 7.2) and the learning-rate schedules:
// step decay and the Linear Scaling Rule that RNA applies per iteration
// when only part of the workers contribute (Algorithm 2: γ_k = Σw·γ).
package opt

import (
	"errors"
	"fmt"

	"repro/internal/tensor"
)

// Optimizer is the stateful update rule shared by SGD and Adam. All
// implementations are strictly element-wise with state that depends only on
// the step count, which is what makes owner-computes sharding exact: an
// optimizer constructed over a span of the parameter vector, fed the
// matching span of every gradient, holds bit-identical state to the same
// span of a full-vector optimizer on the same schedule.
type Optimizer interface {
	// Step applies one update with gradient grad and the given Linear
	// Scaling factor, returning the effective learning rate used. scale==0
	// is a no-op that still advances the schedule clock.
	Step(params, grad tensor.Vector, scale float64) (float64, error)
	// StepCount returns the number of Step calls so far.
	StepCount() int
	// Reset zeroes the optimizer state and step counter.
	Reset()
	// StateBytes reports the persistent optimizer-state footprint — the
	// memory a sharded deployment divides by the rank count.
	StateBytes() int64
}

// SGD is stochastic gradient descent with momentum and weight decay:
//
//	v ← μ·v + g + λ·x
//	x ← x − γ_eff·v
//
// where γ_eff = γ·scale and scale carries the Linear Scaling Rule factor.
type SGD struct {
	// LR is the base learning rate γ for a single contributing worker.
	LR float64
	// Momentum is μ (0 disables momentum).
	Momentum float64
	// WeightDecay is λ.
	WeightDecay float64
	// Schedule optionally multiplies the learning rate per step.
	Schedule Schedule

	velocity tensor.Vector
	step     int
}

// NewSGD returns an SGD optimizer for dim-dimensional parameters.
func NewSGD(dim int, lr, momentum, weightDecay float64) (*SGD, error) {
	if dim < 1 {
		return nil, fmt.Errorf("opt: dim %d", dim)
	}
	if lr <= 0 {
		return nil, fmt.Errorf("opt: learning rate %v", lr)
	}
	if momentum < 0 || momentum >= 1 {
		return nil, fmt.Errorf("opt: momentum %v", momentum)
	}
	if weightDecay < 0 {
		return nil, fmt.Errorf("opt: weight decay %v", weightDecay)
	}
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: tensor.New(dim)}, nil
}

// Step applies one update with gradient grad and the given Linear Scaling
// factor (1 for a full-participation update; Σw/N under RNA's partial
// collectives). It returns the effective learning rate used.
func (o *SGD) Step(params, grad tensor.Vector, scale float64) (float64, error) {
	if len(params) != len(o.velocity) || len(grad) != len(o.velocity) {
		return 0, tensor.ErrShapeMismatch
	}
	if scale < 0 {
		return 0, fmt.Errorf("opt: scale %v", scale)
	}
	lr := o.LR * scale
	if o.Schedule != nil {
		lr *= o.Schedule.Factor(o.step)
	}
	o.step++
	if scale == 0 {
		// Nothing contributed; the iteration is a no-op (but still
		// advances the schedule clock).
		return 0, nil
	}
	if o.Momentum == 0 && o.WeightDecay == 0 {
		// Plain SGD: v = g, x -= lr·g as one fused AddScaled pass.
		copy(o.velocity, grad)
		if err := params.AddScaled(-lr, grad); err != nil {
			return 0, err
		}
		return lr, nil
	}
	sgdStep(params, o.velocity, grad, o.Momentum, o.WeightDecay, lr)
	return lr, nil
}

// sgdStep is the fused momentum+weight-decay update kernel, 4-way unrolled
// like the tensor kernels: v ← μ·v + g + λ·x, x ← x − lr·v, one pass over
// memory instead of three.
func sgdStep(params, vel, grad []float64, mu, wd, lr float64) {
	vel = vel[:len(params)]
	grad = grad[:len(params)]
	i := 0
	for ; i+4 <= len(params); i += 4 {
		v0 := mu*vel[i] + grad[i] + wd*params[i]
		v1 := mu*vel[i+1] + grad[i+1] + wd*params[i+1]
		v2 := mu*vel[i+2] + grad[i+2] + wd*params[i+2]
		v3 := mu*vel[i+3] + grad[i+3] + wd*params[i+3]
		vel[i], vel[i+1], vel[i+2], vel[i+3] = v0, v1, v2, v3
		params[i] -= lr * v0
		params[i+1] -= lr * v1
		params[i+2] -= lr * v2
		params[i+3] -= lr * v3
	}
	for ; i < len(params); i++ {
		v := mu*vel[i] + grad[i] + wd*params[i]
		vel[i] = v
		params[i] -= lr * v
	}
}

// StepCount returns the number of Step calls so far.
func (o *SGD) StepCount() int { return o.step }

// Reset zeroes the optimizer state (velocity and step counter).
func (o *SGD) Reset() {
	o.velocity.Zero()
	o.step = 0
}

// StateBytes implements Optimizer: one fp64 velocity vector.
func (o *SGD) StateBytes() int64 { return int64(len(o.velocity)) * 8 }

// Velocity exposes a read-only view of the momentum vector (the sharded
// bit-identity tests compare an owned span's state against the matching
// slice of a replicated optimizer).
func (o *SGD) Velocity() tensor.Vector { return o.velocity }

var _ Optimizer = (*SGD)(nil)

// Schedule scales the learning rate as training progresses.
type Schedule interface {
	// Factor returns the multiplier applied at the given step.
	Factor(step int) float64
}

// StepDecay multiplies the rate by Factor each time the step count crosses
// a boundary — the paper's ResNet50 schedule decays to 0.1× at epochs
// 30/60/80.
type StepDecay struct {
	Boundaries []int
	Decay      float64
}

var _ Schedule = StepDecay{}

// Factor implements Schedule.
func (s StepDecay) Factor(step int) float64 {
	f := 1.0
	for _, b := range s.Boundaries {
		if step >= b {
			f *= s.Decay
		}
	}
	return f
}

// Constant is the identity schedule.
type Constant struct{}

var _ Schedule = Constant{}

// Factor implements Schedule.
func (Constant) Factor(int) float64 { return 1 }

// LinearScale returns the Linear Scaling Rule factor for an update in which
// `contributors` of n workers supplied gradients: γ_k = Σw·γ with γ the
// per-worker base rate means the factor relative to full participation is
// contributors/n. It errors on nonsensical inputs.
func LinearScale(contributors, n int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("opt: %d workers", n)
	}
	if contributors < 0 || contributors > n {
		return 0, errors.New("opt: contributors out of range")
	}
	return float64(contributors) / float64(n), nil
}
