package opt

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestSGDVanillaStep(t *testing.T) {
	o, err := NewSGD(2, 0.1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	params := tensor.FromSlice([]float64{1, 1})
	grad := tensor.FromSlice([]float64{1, -2})
	lr, err := o.Step(params, grad, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lr != 0.1 {
		t.Errorf("effective lr = %v, want 0.1", lr)
	}
	want := tensor.FromSlice([]float64{0.9, 1.2})
	if !params.Equal(want, 1e-12) {
		t.Errorf("params = %v, want %v", params, want)
	}
	if o.StepCount() != 1 {
		t.Errorf("StepCount = %d", o.StepCount())
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	o, err := NewSGD(1, 0.1, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	params := tensor.FromSlice([]float64{0})
	grad := tensor.FromSlice([]float64{1})
	if _, err := o.Step(params, grad, 1); err != nil {
		t.Fatal(err)
	}
	// v=1, x=-0.1
	if _, err := o.Step(params, grad, 1); err != nil {
		t.Fatal(err)
	}
	// v=0.9+1=1.9, x=-0.1-0.19=-0.29
	if math.Abs(params[0]+0.29) > 1e-12 {
		t.Errorf("params = %v, want -0.29", params[0])
	}
}

func TestSGDWeightDecay(t *testing.T) {
	o, err := NewSGD(1, 0.1, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	params := tensor.FromSlice([]float64{2})
	grad := tensor.FromSlice([]float64{0})
	if _, err := o.Step(params, grad, 1); err != nil {
		t.Fatal(err)
	}
	// v = 0 + 0 + 0.5*2 = 1; x = 2 - 0.1 = 1.9
	if math.Abs(params[0]-1.9) > 1e-12 {
		t.Errorf("params = %v, want 1.9", params[0])
	}
}

func TestSGDLinearScaling(t *testing.T) {
	o, err := NewSGD(1, 0.2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	params := tensor.FromSlice([]float64{1})
	grad := tensor.FromSlice([]float64{1})
	lr, err := o.Step(params, grad, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if lr != 0.1 {
		t.Errorf("scaled lr = %v, want 0.1", lr)
	}
	if math.Abs(params[0]-0.9) > 1e-12 {
		t.Errorf("params = %v, want 0.9", params[0])
	}
}

func TestSGDZeroScaleIsNoop(t *testing.T) {
	o, err := NewSGD(1, 0.2, 0.9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	params := tensor.FromSlice([]float64{1})
	grad := tensor.FromSlice([]float64{5})
	lr, err := o.Step(params, grad, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lr != 0 {
		t.Errorf("lr = %v, want 0", lr)
	}
	if params[0] != 1 {
		t.Errorf("zero-scale step changed params: %v", params[0])
	}
	if o.StepCount() != 1 {
		t.Error("zero-scale step must still advance the schedule clock")
	}
}

func TestSGDScheduleApplied(t *testing.T) {
	o, err := NewSGD(1, 1.0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	o.Schedule = StepDecay{Boundaries: []int{2}, Decay: 0.1}
	params := tensor.FromSlice([]float64{0})
	grad := tensor.FromSlice([]float64{1})
	lrs := make([]float64, 4)
	for i := range lrs {
		lrs[i], err = o.Step(params, grad, 1)
		if err != nil {
			t.Fatal(err)
		}
	}
	if lrs[0] != 1 || lrs[1] != 1 {
		t.Errorf("pre-boundary lrs = %v", lrs[:2])
	}
	if math.Abs(lrs[2]-0.1) > 1e-12 || math.Abs(lrs[3]-0.1) > 1e-12 {
		t.Errorf("post-boundary lrs = %v", lrs[2:])
	}
}

func TestSGDReset(t *testing.T) {
	o, err := NewSGD(1, 0.1, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	params := tensor.FromSlice([]float64{0})
	grad := tensor.FromSlice([]float64{1})
	if _, err := o.Step(params, grad, 1); err != nil {
		t.Fatal(err)
	}
	o.Reset()
	if o.StepCount() != 0 {
		t.Error("Reset did not clear step counter")
	}
	params[0] = 0
	if _, err := o.Step(params, grad, 1); err != nil {
		t.Fatal(err)
	}
	if math.Abs(params[0]+0.1) > 1e-12 {
		t.Errorf("velocity not cleared: params = %v", params[0])
	}
}

func TestSGDErrors(t *testing.T) {
	if _, err := NewSGD(0, 0.1, 0, 0); err == nil {
		t.Error("dim 0 should error")
	}
	if _, err := NewSGD(1, 0, 0, 0); err == nil {
		t.Error("zero lr should error")
	}
	if _, err := NewSGD(1, 0.1, 1.0, 0); err == nil {
		t.Error("momentum 1.0 should error")
	}
	if _, err := NewSGD(1, 0.1, -0.1, 0); err == nil {
		t.Error("negative momentum should error")
	}
	if _, err := NewSGD(1, 0.1, 0, -1); err == nil {
		t.Error("negative weight decay should error")
	}
	o, err := NewSGD(2, 0.1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Step(tensor.New(3), tensor.New(2), 1); err == nil {
		t.Error("shape mismatch should error")
	}
	if _, err := o.Step(tensor.New(2), tensor.New(2), -1); err == nil {
		t.Error("negative scale should error")
	}
}

func TestStepDecay(t *testing.T) {
	s := StepDecay{Boundaries: []int{30, 60, 80}, Decay: 0.1}
	cases := []struct {
		step int
		want float64
	}{
		{0, 1}, {29, 1}, {30, 0.1}, {59, 0.1}, {60, 0.01}, {80, 0.001}, {100, 0.001},
	}
	for _, c := range cases {
		if got := s.Factor(c.step); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("Factor(%d) = %v, want %v", c.step, got, c.want)
		}
	}
}

func TestConstant(t *testing.T) {
	var s Constant
	if s.Factor(0) != 1 || s.Factor(1000) != 1 {
		t.Error("Constant schedule not 1")
	}
}

func TestLinearScale(t *testing.T) {
	got, err := LinearScale(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.75 {
		t.Errorf("LinearScale(3,4) = %v", got)
	}
	if got, err := LinearScale(0, 4); err != nil || got != 0 {
		t.Errorf("LinearScale(0,4) = (%v,%v)", got, err)
	}
	if got, err := LinearScale(4, 4); err != nil || got != 1 {
		t.Errorf("LinearScale(4,4) = (%v,%v)", got, err)
	}
	if _, err := LinearScale(5, 4); err == nil {
		t.Error("contributors > n should error")
	}
	if _, err := LinearScale(-1, 4); err == nil {
		t.Error("negative contributors should error")
	}
	if _, err := LinearScale(1, 0); err == nil {
		t.Error("zero workers should error")
	}
}
