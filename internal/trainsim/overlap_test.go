package trainsim

import (
	"math"
	"testing"
	"time"

	"repro/internal/workload"
)

// slowLink prices a comm-bound cluster: a gigabit-class link under a
// ResNet-sized gradient makes the collective comparable to the 100ms
// compute step.
func slowLink() workload.CommModel {
	return workload.CommModel{
		Latency:       50 * time.Microsecond,
		Bandwidth:     125e6, // 1 Gb/s
		PCIeBandwidth: 11e9,
	}
}

// TestOverlapPricingPreservesTrajectory: OverlapBuckets changes only the
// virtual clock. For BSP the trajectory (loss, accuracy, iterations) is
// bitwise that of the sequential run; for RNA the clock feeds back into the
// asynchronous schedule (staleness depends on timing), so there only the
// OverlapBuckets ≤ 1 identity and the speedup are asserted.
func TestOverlapPricingPreservesTrajectory(t *testing.T) {
	for _, strategy := range []Strategy{Horovod, RNA} {
		base := testConfig(t, strategy, 4, 40)
		base.Comm = slowLink()
		run := func(buckets int) *Result {
			cfg := base
			cfg.OverlapBuckets = buckets
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		seq := run(0)
		one := run(1)
		over := run(8)
		if seq.VirtualTime != one.VirtualTime {
			t.Errorf("%v: OverlapBuckets=1 changed the clock: %v vs %v", strategy, one.VirtualTime, seq.VirtualTime)
		}
		pairs := []struct {
			name string
			a, b *Result
		}{{"buckets=1", seq, one}}
		if strategy == Horovod {
			pairs = append(pairs, struct {
				name string
				a, b *Result
			}{"buckets=8", seq, over})
		}
		for _, pair := range pairs {
			if pair.a.FinalLoss != pair.b.FinalLoss {
				t.Errorf("%v %s: loss %v vs %v", strategy, pair.name, pair.a.FinalLoss, pair.b.FinalLoss)
			}
			if pair.a.TrainAcc != pair.b.TrainAcc {
				t.Errorf("%v %s: acc %v vs %v", strategy, pair.name, pair.a.TrainAcc, pair.b.TrainAcc)
			}
			if pair.a.Iterations != pair.b.Iterations {
				t.Errorf("%v %s: iters %d vs %d", strategy, pair.name, pair.a.Iterations, pair.b.Iterations)
			}
		}
		if over.VirtualTime >= seq.VirtualTime {
			t.Errorf("%v: overlapped clock %v not faster than sequential %v on a comm-bound link",
				strategy, over.VirtualTime, seq.VirtualTime)
		}
		t.Logf("%v: sequential %v, overlapped %v (%.2fx)",
			strategy, seq.VirtualTime, over.VirtualTime,
			float64(seq.VirtualTime)/float64(over.VirtualTime))
	}
}

// TestOverlapPricingBounds: per round, the overlapped price cannot fall
// below the last bucket's collective nor beat compute-only, and cannot
// exceed the sequential price.
func TestOverlapPricingBounds(t *testing.T) {
	base := testConfig(t, Horovod, 4, 30)
	base.Comm = slowLink()
	seqCfg := base
	res, err := Run(seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	overCfg := base
	overCfg.OverlapBuckets = 8
	over, err := Run(overCfg)
	if err != nil {
		t.Fatal(err)
	}
	seqComm := res.Breakdowns[0].Comm
	overComm := over.Breakdowns[0].Comm
	if overComm >= seqComm {
		t.Errorf("overlapped comm charge %v >= sequential %v", overComm, seqComm)
	}
	if overComm <= 0 {
		t.Errorf("overlapped comm charge %v not positive", overComm)
	}
	ratio := float64(overComm) / float64(seqComm)
	if ratio < 1.0/8-1e-9 {
		t.Errorf("overlapped comm %v below the per-bucket floor of sequential %v", overComm, seqComm)
	}
	if math.IsNaN(ratio) {
		t.Error("NaN comm ratio")
	}
}
