// Package trainsim is the virtual-time training engine behind every
// experiment in the repository. It executes genuine SGD — gradients are
// computed by real models at the (possibly stale) parameter versions the
// protocol semantics dictate — while all timing (compute durations,
// heterogeneity delays, AllReduce transfers, PS round trips, lock waits)
// advances a deterministic virtual clock. One simulation therefore yields
// both the system-efficiency results (per-iteration times, speedups,
// breakdowns) and the statistical-efficiency results (loss curves,
// accuracies) the paper reports.
//
// Strategies implemented: Horovod-style BSP AllReduce, RNA (this paper),
// RNA with hierarchical synchronization, eager-SGD (majority and solo), and
// AD-PSGD.
package trainsim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/controller"
	"repro/internal/data"
	"repro/internal/hetero"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Strategy selects the synchronization protocol.
type Strategy int

// Protocols under evaluation (Section 7.3).
const (
	// Horovod is the BSP ring AllReduce baseline.
	Horovod Strategy = iota + 1
	// RNA is the paper's randomized non-blocking AllReduce.
	RNA
	// RNAHierarchical is RNA plus the grouped PS scheme of Section 4.
	RNAHierarchical
	// EagerSGD is eager-SGD's majority partial collective.
	EagerSGD
	// EagerSGDSolo is eager-SGD's solo variant.
	EagerSGDSolo
	// ADPSGD is asynchronous decentralized parallel SGD (gossip).
	ADPSGD
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Horovod:
		return "Horovod"
	case RNA:
		return "RNA"
	case RNAHierarchical:
		return "RNA-H"
	case EagerSGD:
		return "eager-SGD"
	case EagerSGDSolo:
		return "eager-SGD-solo"
	case ADPSGD:
		return "AD-PSGD"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Config describes one simulated training run.
type Config struct {
	// Strategy is the synchronization protocol.
	Strategy Strategy
	// Workers is the cluster size.
	Workers int

	// Model is the training objective; Dataset supplies batches.
	Model   model.Model
	Dataset *data.Dataset
	// EvalSet, when non-nil, is used for validation metrics.
	EvalSet *data.Dataset
	// BatchSize is the per-worker mini-batch size.
	BatchSize int

	// LR, Momentum and WeightDecay configure the optimizer.
	LR          float64
	Momentum    float64
	WeightDecay float64

	// Step samples per-batch compute durations (the workload's inherent
	// balance); Injector adds system heterogeneity; Spec provides the
	// message size; Comm prices communication.
	Step     workload.StepSampler
	Injector hetero.Injector
	Spec     workload.ModelSpec
	Comm     workload.CommModel
	// Collective selects the AllReduce schedule the engines price: the
	// zero value is the paper's ring; workload.AllReduceAuto opts into
	// the cost-model selector (cheapest of ring / halving-doubling /
	// tree at each rank count and message size), mirroring the runtime
	// engine in internal/collective. Hierarchical groups inherit it for
	// their intra-group collectives.
	Collective workload.AllReduceAlgo
	// Compression is the gradient wire dtype (tensor.F64, the zero
	// value, disables it). Lossy dtypes do two things: the priced
	// AllReduce cost shrinks to the compressed wire volume, and the
	// engines quantize the reduced gradient each round with
	// error-feedback — the residual is carried to the next round — so
	// the loss curves reflect the statistical cost of the narrower wire,
	// not just its speed.
	Compression tensor.Dtype
	// TopK, when > 0, switches the synchronization to sparse top-k
	// gradient exchange (collective.TopKAllReduce): each worker ships
	// only its k largest-magnitude gradient elements as index+value
	// pairs, the dropped mass is carried in the error-feedback residual,
	// and the priced cost follows the sparse exchange's own binomial
	// schedule (Comm.TopKAllReduce), ignoring Collective. Mutually
	// exclusive with a lossy Compression dtype — the runtime collective
	// rejects the combination, and so does validate().
	TopK int
	// SpeedFactors optionally scales each worker's compute time
	// multiplicatively (deterministic hardware heterogeneity: the
	// paper's Table 2 testbed mixes K80, 1080Ti and 2080Ti GPUs).
	// Missing entries default to 1.
	SpeedFactors []float64
	// LinkSpeedFactors optionally scales each worker's link rate
	// relative to the fabric mean (network heterogeneity — the
	// communication-side mirror of SpeedFactors). When the vector is
	// uneven, collectives are paced by the slowest link; with SkewAware
	// set they are instead priced as the skew-proportional weighted
	// exchange of collective.SkewEngine when the cost model says it
	// wins. A nil, short, or non-positive vector prices a homogeneous
	// fabric.
	LinkSpeedFactors []float64
	// SkewAware opts collective pricing into the skew-proportional
	// partition (workload.SkewAllReduceWire) on uneven LinkSpeedFactors.
	// Only dense ring/auto schedules qualify — top-k and pinned
	// tree/halving-doubling keep slowest-link pacing, mirroring what the
	// runtime SkewEngine accepts.
	SkewAware bool

	// Probes is RNA's power-of-choices q (default 2).
	Probes int
	// StalenessBound is the bounded-delay window η of Assumption 2
	// (default 8): compute may run at most η iterations ahead of the
	// last synchronization, a synchronization may outrun the slowest
	// worker by at most η iterations, and buffered gradients more than η
	// iterations behind a worker's newest are overwritten. Under random
	// heterogeneity worker lag is a random walk that stays inside the
	// window; under deterministic slowdown it grows linearly, hits the
	// bound, and paces the cluster — the regime hierarchical
	// synchronization exists for.
	StalenessBound int
	// DisableLRScale turns off the Linear Scaling Rule (ablation): every
	// partial update is applied at the full learning rate.
	DisableLRScale bool
	// DirectGPU reduces gradients device-to-device (the NCCL path of
	// Section 6): RNA's host-device staging copies are skipped at the
	// cost of extra GPU memory, removing the Table 5 overhead.
	DirectGPU bool
	// LayerOverlap enables the layer-wise copy overlapping of Section
	// 8.5: per-layer copies pipeline against backpropagation, exposing
	// only one layer's copy in each direction.
	LayerOverlap bool
	// OverlapBuckets prices the reducer pipeline (comm/compute overlap):
	// the gradient splits into this many bucket collectives that launch
	// as the compute window emits them, and a round charges only the
	// communication tail left after compute ends
	// (workload.OverlappedTail). 0 or 1 keeps the sequential pricing —
	// one whole-gradient collective charged in full after compute —
	// bit-identical to earlier versions.
	OverlapBuckets int
	// ShardedUpdate prices the owner-computes sharded update path
	// (internal/core's ShardedUpdate mode): the fused AllReduce decomposes
	// into an exact-fp64 ReduceScatter, an owned-shard optimizer step
	// (spans proportional to 1/SpeedFactor when the fleet is uneven, so
	// slower ranks own smaller spans), and a parameter AllGather shipping
	// the Compression wire dtype. Only the dense Horovod and RNA
	// strategies qualify, and the path excludes TopK and OverlapBuckets —
	// mirroring what the runtime collective accepts.
	ShardedUpdate bool
	// OptNsPerElem prices the optimizer update at this many nanoseconds
	// per parameter element (scaled by the rank's SpeedFactor). Zero — the
	// default — keeps updates free, the historical pricing under which
	// sharded and replicated rounds cost the same; setting it exposes the
	// N× update-compute reduction the sharded path buys.
	OptNsPerElem float64
	// PSSyncEvery is the hierarchical scheme's PS exchange period in
	// group synchronizations (default 4; the paper leaves frequency
	// tuning as future work).
	PSSyncEvery int
	// PSChunks is the chunk count of the hierarchical PS exchange. With
	// 0 or 1 the exchange is priced as one monolithic round trip
	// (CommModel.PSPushPull); with more chunks it is priced by the
	// pipelined wire-protocol model (CommModel.PSPushPullWire), where
	// early acks overlap later pushes.
	PSChunks int
	// PSWire is the PS exchange's wire dtype (default tensor.F64); lossy
	// dtypes shrink the priced bytes exactly like the runtime client's
	// compressed wire does.
	PSWire tensor.Dtype

	// Parallelism controls the engine's per-round gradient fan-out: 0
	// (the default) fans independent per-worker Model.Gradient calls out
	// over the shared GOMAXPROCS-bounded pool, 1 selects the serial
	// reference engine, and values > 1 cap the fan-out width. Every
	// setting produces bit-identical results: each worker owns its
	// model clone, RNG streams and scratch gradient, and contributions
	// merge in fixed rank order (see TestSerialParallelIdentical).
	Parallelism int

	// Termination: stop after MaxIterations synchronization rounds, when
	// virtual time exceeds MaxTime (if > 0), or when evaluated loss
	// drops to TargetLoss (if > 0).
	MaxIterations int
	MaxTime       time.Duration
	TargetLoss    float64
	// EvalEvery evaluates loss/accuracy every E rounds (default 10).
	EvalEvery int

	// Seed makes the run reproducible.
	Seed int64
	// CollectTrace records per-worker spans for timeline figures.
	CollectTrace bool
}

func (c *Config) validate() error {
	if c.Workers < 1 {
		return fmt.Errorf("trainsim: %d workers", c.Workers)
	}
	if c.Model == nil || c.Dataset == nil {
		return fmt.Errorf("trainsim: model and dataset required")
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("trainsim: batch size %d", c.BatchSize)
	}
	if c.Step == nil {
		return fmt.Errorf("trainsim: step sampler required")
	}
	if c.MaxIterations < 1 && c.MaxTime <= 0 {
		return fmt.Errorf("trainsim: no termination condition")
	}
	if !c.Compression.Valid() {
		return fmt.Errorf("trainsim: unknown compression dtype %d", c.Compression)
	}
	if c.TopK < 0 {
		return fmt.Errorf("trainsim: negative top-k %d", c.TopK)
	}
	if c.TopK > 0 && c.Compression != tensor.F64 {
		return fmt.Errorf("trainsim: top-k sparsification cannot combine with lossy compression %v", c.Compression)
	}
	if c.OptNsPerElem < 0 {
		return fmt.Errorf("trainsim: negative optimizer cost %v", c.OptNsPerElem)
	}
	if c.ShardedUpdate {
		if c.TopK > 0 {
			return fmt.Errorf("trainsim: sharded update cannot combine with top-k sparsification")
		}
		if c.OverlapBuckets > 1 {
			return fmt.Errorf("trainsim: sharded update cannot combine with overlap buckets")
		}
		if c.Strategy != Horovod && c.Strategy != RNA {
			return fmt.Errorf("trainsim: sharded update requires Horovod or RNA, got %v", c.Strategy)
		}
	}
	return nil
}

// residual allocates the error-feedback carry for lossy wires and sparse
// top-k; nil when the wire is exact, dense fp64.
func (c *Config) residual(dim int) tensor.Vector {
	if c.Compression == tensor.F64 && c.TopK == 0 {
		return nil
	}
	return tensor.New(dim)
}

func (c *Config) probes() int {
	if c.Probes < 1 {
		return 2
	}
	return c.Probes
}

func (c *Config) bound() int64 {
	if c.StalenessBound < 1 {
		return 8
	}
	return int64(c.StalenessBound)
}

func (c *Config) psSyncEvery() int {
	if c.PSSyncEvery < 1 {
		return 4
	}
	return c.PSSyncEvery
}

func (c *Config) evalEvery() int {
	if c.EvalEvery < 1 {
		return 10
	}
	return c.EvalEvery
}

// allReduceCost prices one synchronization's collective for n ranks under
// the configured schedule and wire dtype. The byte count is the fp64
// payload size; compressed wires are priced per element so the dtype's
// actual wire bytes (including I8's per-block scales) are charged.
func (c *Config) allReduceCost(n int, bytes int64) time.Duration {
	var base time.Duration
	switch {
	case c.TopK > 0:
		base = c.Comm.TopKAllReduce(n, int(bytes/8), c.TopK)
	case c.Compression == tensor.F64:
		base = c.Comm.AllReduce(c.Collective, n, bytes)
	default:
		base = c.Comm.AllReduceWire(c.Collective, n, int(bytes/8), c.Compression)
	}
	w, min := c.linkWeights(n)
	if w == nil {
		return base
	}
	// Every equal-share schedule is paced by its slowest link.
	equal := time.Duration(float64(base) / min)
	if !c.SkewAware || c.TopK > 0 ||
		(c.Collective != workload.AllReduceRing && c.Collective != workload.AllReduceAuto) {
		return equal
	}
	if skew := c.Comm.SkewAllReduceWire(n, int(bytes/8), c.Compression, w); skew < equal {
		return skew
	}
	return equal
}

// linkWeights returns the first n LinkSpeedFactors (missing entries 1) and
// the smallest mean-relative weight, or (nil, 1) when the fabric is
// effectively homogeneous — unset, uniform, or invalid factors.
func (c *Config) linkWeights(n int) ([]float64, float64) {
	if n <= 1 || len(c.LinkSpeedFactors) == 0 {
		return nil, 1
	}
	w := make([]float64, n)
	uniform := true
	var sum float64
	for i := range w {
		w[i] = 1
		if i < len(c.LinkSpeedFactors) {
			f := c.LinkSpeedFactors[i]
			if !(f > 0) {
				return nil, 1
			}
			w[i] = f
		}
		if w[i] != w[0] {
			uniform = false
		}
		sum += w[i]
	}
	if uniform {
		return nil, 1
	}
	min := w[0]
	for _, f := range w[1:] {
		if f < min {
			min = f
		}
	}
	return w, min * float64(n) / sum
}

// overlapBuckets returns the priced bucket count (min 1).
func (c *Config) overlapBuckets() int {
	if c.OverlapBuckets < 1 {
		return 1
	}
	return c.OverlapBuckets
}

// commTail prices one synchronization's communication given the compute
// window it may overlap with. With OverlapBuckets ≤ 1 this is exactly
// allReduceCost of the whole payload — the historical sequential price.
// With B buckets the payload splits into B collectives (the last takes the
// remainder; extraPerBucket models per-bucket framing such as RNA's
// contributor flag) launching as compute emits them, and the round charges
// only the tail workload.OverlappedTail leaves after the compute window.
func (c *Config) commTail(n int, bytes int64, compute time.Duration, extraPerBucket int64) time.Duration {
	b := c.overlapBuckets()
	if b <= 1 {
		return c.allReduceCost(n, bytes+extraPerBucket)
	}
	per := bytes / int64(b)
	comms := make([]time.Duration, b)
	for i := range comms {
		sz := per
		if i == b-1 {
			sz = bytes - per*int64(b-1)
		}
		comms[i] = c.allReduceCost(n, sz+extraPerBucket)
	}
	return workload.OverlappedTail(compute, comms)
}

// optStepCost prices one optimizer step over elems parameter elements on
// worker w: OptNsPerElem per element, scaled by the worker's compute speed
// factor. Zero OptNsPerElem keeps updates free.
func (c *Config) optStepCost(w, elems int) time.Duration {
	if c.OptNsPerElem <= 0 || elems <= 0 {
		return 0
	}
	return time.Duration(float64(elems) * c.OptNsPerElem * c.speedFactor(w))
}

// shardSpanElems returns each rank's owned-span size for the sharded
// update's pricing: uniform shares on an even fleet, shares proportional to
// 1/SpeedFactor on an uneven one (a slower rank owns a smaller span — the
// skew-aware ownership core.TrainConfig.ShardWeights expresses).
func (c *Config) shardSpanElems(n, elems int) []int {
	spans := make([]int, n)
	var sum float64
	inv := make([]float64, n)
	for w := 0; w < n; w++ {
		inv[w] = 1 / c.speedFactor(w)
		sum += inv[w]
	}
	for w := 0; w < n; w++ {
		spans[w] = int(float64(elems) * inv[w] / sum)
	}
	return spans
}

// updateTail prices one synchronization's full post-compute cost: the
// collective plus the optimizer update.
//
// Replicated (the default): commTail — the overlap-aware AllReduce — plus
// one full-vector optimizer step per rank, redundantly; the slowest rank's
// step paces the round.
//
// ShardedUpdate: an exact-fp64 ReduceScatter, the owned-shard optimizer
// step (the round waits for the slowest owner), and a parameter AllGather
// shipping the Compression wire dtype, strictly sequential — the owned step
// gates the gather. Both half-collectives are paced by the slowest link,
// like every equal-share schedule. Σ spans = dim, so with OptNsPerElem set
// the update term shrinks ~N× against the replicated path while
// ReduceScatter + AllGatherWire together move exactly the ring AllReduce's
// bytes (see workload.CommModel.ReduceScatter).
func (c *Config) updateTail(n int, bytes int64, compute time.Duration, extraPerBucket int64) time.Duration {
	elems := int(bytes / 8)
	if !c.ShardedUpdate {
		tail := c.commTail(n, bytes, compute, extraPerBucket)
		var worst time.Duration
		for w := 0; w < n; w++ {
			if t := c.optStepCost(w, elems); t > worst {
				worst = t
			}
		}
		return tail + worst
	}
	// extraPerBucket (RNA's contributor-count flag) rides the scatter once.
	scatterElems := elems + int(extraPerBucket/8)
	_, min := c.linkWeights(n)
	rs := time.Duration(float64(c.Comm.ReduceScatter(n, scatterElems)) / min)
	ag := time.Duration(float64(c.Comm.AllGatherWire(n, elems, c.Compression)) / min)
	var worst time.Duration
	for w, span := range c.shardSpanElems(n, elems) {
		if t := c.optStepCost(w, span); t > worst {
			worst = t
		}
	}
	return rs + worst + ag
}

func (c *Config) injector() hetero.Injector {
	if c.Injector == nil {
		return hetero.None{}
	}
	return c.Injector
}

// speedFactor returns worker w's multiplicative compute-time factor.
func (c *Config) speedFactor(w int) float64 {
	if w < 0 || w >= len(c.SpeedFactors) || c.SpeedFactors[w] <= 0 {
		return 1
	}
	return c.SpeedFactors[w]
}

// parallel reports whether the engine may fan gradient work out; fanout is
// the optional width cap passed to the pool (0 = pool-bounded only).
func (c *Config) parallel() bool { return c.Parallelism == 0 || c.Parallelism > 1 }

func (c *Config) fanout() int {
	if c.Parallelism < 1 {
		return 0
	}
	return c.Parallelism
}

// workerModels builds the per-worker gradient models: stateless models are
// shared, models with internal noise (Quadratic) are cloned so concurrent
// workers own independent, deterministically seeded streams.
func workerModels(m model.Model, ids []int) []model.Model {
	out := make([]model.Model, len(ids))
	for i, id := range ids {
		out[i] = model.ForWorker(m, id)
	}
	return out
}

func (c *Config) maxIterations() int {
	if c.MaxIterations < 1 {
		return 1 << 30
	}
	return c.MaxIterations
}

// Sample is one point of a convergence curve.
type Sample struct {
	Time time.Duration
	Iter int
	Loss float64
	Acc  float64
}

// Result reports a simulated run.
type Result struct {
	Strategy Strategy
	// Iterations is the number of synchronization rounds completed (for
	// AD-PSGD: total worker iterations / workers).
	Iterations int
	// VirtualTime is the final virtual clock.
	VirtualTime time.Duration
	// Curve traces evaluated loss/accuracy against virtual time.
	Curve []Sample
	// FinalLoss is the last evaluated loss; FinalParams the final model.
	FinalLoss   float64
	FinalParams tensor.Vector
	// TrainAcc / ValTop1 / ValTop5 are classification accuracies when
	// the model is a Classifier (zero otherwise).
	TrainAcc, ValTop1, ValTop5 float64
	// Breakdowns accounts each worker's compute/comm/wait time.
	Breakdowns []stats.Breakdown
	// PerIterTimes samples the time between consecutive syncs.
	PerIterTimes *stats.Sample
	// NullContribRate is the fraction of (worker, sync) slots filled by
	// null gradients (RNA/eager only).
	NullContribRate float64
	// CopyOverhead is the cumulated host↔device copy time (RNA only).
	CopyOverhead time.Duration
	// ReachedTarget reports whether TargetLoss terminated the run.
	ReachedTarget bool
	// Trace holds the recorded spans when Config.CollectTrace was set.
	Trace *trace.Trace
}

// Throughput returns completed synchronization rounds per virtual second.
func (r *Result) Throughput() float64 {
	if r.VirtualTime <= 0 {
		return 0
	}
	return float64(r.Iterations) / r.VirtualTime.Seconds()
}

// MeanIterTime returns the mean time between syncs (0 when unknown).
func (r *Result) MeanIterTime() time.Duration {
	if r.PerIterTimes == nil || r.PerIterTimes.Len() == 0 {
		return 0
	}
	m, err := r.PerIterTimes.Mean()
	if err != nil {
		return 0
	}
	return time.Duration(m)
}

// Run executes the configured simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	switch cfg.Strategy {
	case Horovod:
		return runBSP(cfg)
	case RNA:
		return runPartial(cfg, controller.PowerOfChoices)
	case EagerSGD:
		return runPartial(cfg, controller.Majority)
	case EagerSGDSolo:
		return runPartial(cfg, controller.Solo)
	case ADPSGD:
		return runADPSGD(cfg)
	case RNAHierarchical:
		return runHierarchical(cfg)
	default:
		return nil, fmt.Errorf("trainsim: unknown strategy %v", cfg.Strategy)
	}
}

// evaluator scores params over the training (and optional validation) set.
type evaluator struct {
	cfg     *Config
	trainIx []int
	valIx   []int
}

func newEvaluator(cfg *Config) *evaluator {
	ev := &evaluator{cfg: cfg, trainIx: model.All(cfg.Dataset)}
	if cfg.EvalSet != nil {
		ev.valIx = make([]int, cfg.EvalSet.Len())
		for i := range ev.valIx {
			ev.valIx[i] = i
		}
	}
	return ev
}

// loss returns the full training loss.
func (ev *evaluator) loss(params tensor.Vector) (float64, error) {
	return ev.cfg.Model.Loss(params, ev.trainIx)
}

// accuracy returns train top-1 accuracy (0 if not a classifier).
func (ev *evaluator) accuracy(params tensor.Vector) float64 {
	cls, ok := ev.cfg.Model.(model.Classifier)
	if !ok {
		return 0
	}
	top1, _, err := cls.Accuracy(params, ev.trainIx, 1)
	if err != nil {
		return 0
	}
	return top1
}

// finalize fills a result's accuracy fields from the final parameters.
func (ev *evaluator) finalize(res *Result, params tensor.Vector) {
	res.FinalParams = params.Clone()
	res.TrainAcc = ev.accuracy(params)
	cls, ok := ev.cfg.Model.(model.Classifier)
	if !ok || ev.cfg.EvalSet == nil {
		return
	}
	// Validation accuracy is scored by a model bound to the eval set.
	valModel, err := rebindClassifier(ev.cfg.Model, ev.cfg.EvalSet)
	if err != nil {
		return
	}
	_ = cls
	top1, top5, err := valModel.Accuracy(params, ev.valIx, 5)
	if err != nil {
		return
	}
	res.ValTop1, res.ValTop5 = top1, top5
}

// rebindClassifier builds the same classifier architecture over a different
// dataset so held-out accuracy can be scored with the trained parameters.
func rebindClassifier(m model.Model, ds *data.Dataset) (model.Classifier, error) {
	switch mm := m.(type) {
	case *model.Logistic:
		return model.NewLogistic(ds)
	case *model.MLP:
		return model.NewMLP(ds, mm.Hidden())
	default:
		return nil, fmt.Errorf("trainsim: cannot rebind %T", m)
	}
}

// paramsTimeline records the global parameter trajectory: entry i holds the
// parameters that became visible at time End[i]. Lookup(t) returns the
// version visible at time t; Prune drops entries older than every worker's
// compute frontier.
type paramsTimeline struct {
	ends   []time.Duration
	params []tensor.Vector
}

func newParamsTimeline(initial tensor.Vector) *paramsTimeline {
	return &paramsTimeline{
		ends:   []time.Duration{0},
		params: []tensor.Vector{initial.Clone()},
	}
}

// Append records a new version visible from time end onward. end must be
// non-decreasing.
func (p *paramsTimeline) Append(end time.Duration, params tensor.Vector) {
	p.ends = append(p.ends, end)
	p.params = append(p.params, params.Clone())
}

// Lookup returns the latest version with End ≤ t.
func (p *paramsTimeline) Lookup(t time.Duration) tensor.Vector {
	// Binary search for the rightmost end ≤ t.
	i := sort.Search(len(p.ends), func(i int) bool { return p.ends[i] > t }) - 1
	if i < 0 {
		i = 0
	}
	return p.params[i]
}

// Latest returns the newest version.
func (p *paramsTimeline) Latest() tensor.Vector { return p.params[len(p.params)-1] }

// Prune drops versions strictly older than the one visible at `before`,
// keeping the timeline bounded.
func (p *paramsTimeline) Prune(before time.Duration) {
	i := sort.Search(len(p.ends), func(i int) bool { return p.ends[i] > before }) - 1
	if i <= 0 {
		return
	}
	p.ends = append([]time.Duration{}, p.ends[i:]...)
	p.params = append([]tensor.Vector{}, p.params[i:]...)
}

// Len returns the number of retained versions.
func (p *paramsTimeline) Len() int { return len(p.ends) }

// sampleCurve appends an eval sample and reports whether the target loss
// was reached.
func sampleCurve(res *Result, ev *evaluator, params tensor.Vector, t time.Duration, iter int, target float64) (bool, error) {
	loss, err := ev.loss(params)
	if err != nil {
		return false, err
	}
	res.Curve = append(res.Curve, Sample{Time: t, Iter: iter, Loss: loss, Acc: ev.accuracy(params)})
	res.FinalLoss = loss
	return target > 0 && loss <= target, nil
}
