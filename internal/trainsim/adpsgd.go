package trainsim

import (
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// adWorker is one AD-PSGD worker: it keeps its own parameter copy and its
// own momentum state, alternating compute with atomic pairwise averaging.
type adWorker struct {
	id       int
	params   tensor.Vector
	velocity tensor.Vector
	snapshot tensor.Vector // parameters at compute start
	grad     tensor.Vector
	mdl      model.Model

	batchSrc *rng.Source
	stepSrc  *rng.Source
	delaySrc *rng.Source
	peerSrc  *rng.Source

	// batch and gradTask carry one in-flight gradient future: the batch is
	// drawn and the computation launched at compute start (the snapshot is
	// a private copy, so the gossip loop can keep mutating params), and
	// the future is awaited when the virtual compute finishes.
	batch    []int
	gradTask *parallel.Task
	gradErr  error

	iters   int
	compute time.Duration
	wait    time.Duration
	comm    time.Duration
}

// adpsgdAtomicOverhead prices the lock negotiation that makes each pairwise
// model averaging atomic and conflict-free.
const adpsgdAtomicOverhead = 5 * time.Millisecond

// runADPSGD simulates asynchronous decentralized parallel SGD: each worker
// computes a gradient, randomly selects a peer, performs an *atomic*
// pairwise model average (waiting if either party's comm lock is held — the
// synchronization overhead the paper attributes to AD-PSGD), applies its
// gradient locally, and repeats. Models diverge across workers; evaluation
// uses the consensus (mean) model.
func runADPSGD(cfg Config) (*Result, error) {
	if cfg.Workers < 2 {
		return nil, fmt.Errorf("trainsim: AD-PSGD needs ≥2 workers, got %d", cfg.Workers)
	}
	root := rng.New(cfg.Seed)
	dim := cfg.Model.Dim()
	init := tensor.New(dim)
	cfg.Model.Init(rng.New(cfg.Seed+7777), init)
	inj := cfg.injector()
	ev := newEvaluator(&cfg)

	workers := make([]*adWorker, cfg.Workers)
	freeAt := make([]time.Duration, cfg.Workers) // comm-lock availability
	for w := range workers {
		workers[w] = &adWorker{
			id:       w,
			params:   init.Clone(),
			velocity: tensor.New(dim),
			snapshot: tensor.New(dim),
			grad:     tensor.New(dim),
			mdl:      model.ForWorker(cfg.Model, w),
			batchSrc: root.Split(100 + w),
			stepSrc:  root.Split(200 + w),
			delaySrc: root.Split(300 + w),
			peerSrc:  root.Split(400 + w),
		}
	}

	res := &Result{
		Strategy:     ADPSGD,
		PerIterTimes: &stats.Sample{},
	}
	if cfg.CollectTrace {
		res.Trace = &trace.Trace{}
	}

	// Pairwise averaging cost: exchange full models both ways plus the
	// atomic-averaging handshake — the "significant synchronization
	// overhead to ensure atomicity" the paper attributes to AD-PSGD's
	// lock-based gossip (Section 2.2).
	pairCost := 2*cfg.Comm.PointToPoint(cfg.Spec.GradientBytes()) + adpsgdAtomicOverhead

	// Total iterations budget: MaxIterations is interpreted per worker to
	// stay comparable with round-based strategies.
	maxTotal := cfg.maxIterations() * cfg.Workers
	total := 0
	evalStride := cfg.evalEvery() * cfg.Workers
	// Evaluation uses a single worker's model — the artifact a user
	// would checkpoint. Gossip keeps models only approximately
	// consensual, and that divergence is AD-PSGD's accuracy penalty
	// (Tables 3/4 of the paper).
	evalAt := func(now time.Duration) (bool, error) {
		return sampleCurve(res, ev, workers[0].params, now, total/cfg.Workers, cfg.TargetLoss)
	}

	// Worker lifecycles are events on the shared discrete-event engine.
	eng := sim.NewEngine()
	lastIterMark := time.Duration(0)
	var simErr error
	fail := func(err error) {
		if simErr == nil {
			simErr = err
		}
		eng.Stop()
	}

	var startCompute func(w *adWorker)
	var finishAveraging func(w *adWorker, p *adWorker)

	startCompute = func(w *adWorker) {
		copy(w.snapshot, w.params)
		w.batch = cfg.Dataset.Batch(w.batchSrc, cfg.BatchSize)
		if cfg.parallel() {
			// Launch the gradient as a future over the snapshot; the
			// event loop advances other workers meanwhile.
			w.gradTask = parallel.Spawn(func() {
				_, w.gradErr = w.mdl.Gradient(w.snapshot, w.grad, w.batch)
			})
		}
		dur := time.Duration(float64(cfg.Step.Sample(w.stepSrc))*cfg.speedFactor(w.id)) +
			inj.Delay(w.delaySrc, w.id, w.iters)
		w.compute += dur
		if res.Trace != nil {
			res.Trace.Add(trace.Span{Worker: w.id, Kind: trace.SpanCompute,
				Start: eng.Now(), End: eng.Now() + dur, Iter: int64(w.iters)})
		}
		eng.After(dur, func() {
			// Compute finished: settle the gradient, then request atomic
			// averaging with a random peer (queueing on busy locks).
			now := eng.Now()
			if w.gradTask != nil {
				w.gradTask.Wait()
				w.gradTask = nil
			} else if _, err := w.mdl.Gradient(w.snapshot, w.grad, w.batch); err != nil {
				w.gradErr = err
			}
			if w.gradErr != nil {
				fail(w.gradErr)
				return
			}
			pid := w.peerSrc.Choice(cfg.Workers, w.id)
			start := now
			if freeAt[w.id] > start {
				start = freeAt[w.id]
			}
			if freeAt[pid] > start {
				start = freeAt[pid]
			}
			end := start + pairCost
			freeAt[w.id], freeAt[pid] = end, end
			w.wait += start - now
			w.comm += pairCost
			if res.Trace != nil {
				if start > now {
					res.Trace.Add(trace.Span{Worker: w.id, Kind: trace.SpanWait,
						Start: now, End: start, Iter: int64(w.iters)})
				}
				res.Trace.Add(trace.Span{Worker: w.id, Kind: trace.SpanComm,
					Start: start, End: end, Iter: int64(w.iters)})
			}
			eng.At(end, func() { finishAveraging(w, workers[pid]) })
		})
	}

	finishAveraging = func(w, p *adWorker) {
		now := eng.Now()
		for i := range w.params {
			avg := (w.params[i] + p.params[i]) / 2
			w.params[i], p.params[i] = avg, avg
		}
		for i := range w.params {
			v := cfg.Momentum*w.velocity[i] + w.grad[i] + cfg.WeightDecay*w.params[i]
			w.velocity[i] = v
			w.params[i] -= cfg.LR * v
		}
		w.iters++
		total++
		if total%cfg.Workers == 0 {
			res.PerIterTimes.Add(float64(now - lastIterMark))
			lastIterMark = now
		}
		if total%evalStride == 0 {
			hit, err := evalAt(now)
			if err != nil {
				fail(err)
				return
			}
			if hit {
				res.ReachedTarget = true
				eng.Stop()
				return
			}
		}
		if cfg.MaxTime > 0 && now >= cfg.MaxTime {
			eng.Stop()
			return
		}
		if total < maxTotal {
			startCompute(w)
		} else {
			eng.Stop()
		}
	}

	for _, w := range workers {
		startCompute(w)
	}
	runErr := eng.Run(0)
	// Early stops (target hit, MaxTime, failure) can leave gradient
	// futures in flight; settle them before returning.
	for _, w := range workers {
		if w.gradTask != nil {
			w.gradTask.Wait()
			w.gradTask = nil
		}
	}
	if runErr != nil && simErr == nil && runErr != sim.ErrStopped {
		return nil, runErr
	}
	if simErr != nil {
		return nil, simErr
	}

	res.Iterations = total / cfg.Workers
	res.VirtualTime = eng.Now()
	res.Breakdowns = make([]stats.Breakdown, cfg.Workers)
	for i, w := range workers {
		res.Breakdowns[i] = stats.Breakdown{Compute: w.compute, Comm: w.comm, Wait: w.wait}
	}
	if len(res.Curve) == 0 || !res.ReachedTarget {
		if _, err := evalAt(eng.Now()); err != nil {
			return nil, err
		}
	}
	ev.finalize(res, workers[0].params)
	return res, nil
}
