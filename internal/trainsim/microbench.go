package trainsim

import (
	"fmt"
	"time"

	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/stats"
)

// probeRPCCost is the scheduler-side cost of issuing and handling one
// additional probe RPC per iteration.
const probeRPCCost = 2 * time.Millisecond

// ResponseTimes runs the Fig. 10 microbenchmark: a simulated cluster of n
// nodes executes iters rounds of a synthetic workload whose per-node task
// times carry randomized skew in [lo, hi). Each round the scheduler probes
// `choices` random nodes and proceeds when the fastest probed node
// finishes; the recorded response time is how long the round waited.
//
// load models the queueing effect of Section 3.1 (expected waiting time
// 1/(1−ρ) when the system carries workload): with probability load a
// probed node is busy with backlogged tasks, so its reply is delayed by a
// geometric number of additional task times. One choice is the purely
// random initiator; two is the paper's power-of-two-choices configuration,
// which almost always finds an unloaded node.
func ResponseTimes(n, choices, iters int, lo, hi time.Duration, load float64, seed int64) (*stats.Sample, error) {
	if n < 1 || choices < 1 || iters < 1 {
		return nil, fmt.Errorf("trainsim: response microbench n=%d q=%d iters=%d", n, choices, iters)
	}
	if hi <= lo {
		return nil, fmt.Errorf("trainsim: skew band [%v,%v)", lo, hi)
	}
	if load < 0 || load >= 1 {
		return nil, fmt.Errorf("trainsim: load %v outside [0,1)", load)
	}
	root := rng.New(seed)
	taskSrcs := make([]*rng.Source, n)
	for i := range taskSrcs {
		taskSrcs[i] = root.Split(100 + i)
	}
	probeSrc := root.Split(0)

	// Each extra probe is one more lightweight RPC the scheduler must
	// fan out and process — the messaging overhead that makes heavy
	// oversampling counterproductive (Section 8.4).
	probeCost := probeRPCCost * time.Duration(choices-1)

	sample := stats.NewSample(iters)
	for k := 0; k < iters; k++ {
		best := time.Duration(-1)
		probes := probeSrc.SampleDistinct(n, choices)
		// Every node draws its round state (keeping per-node streams
		// aligned across q values); only probed nodes can reply.
		for i, src := range taskSrcs {
			d := time.Duration(src.Uniform(float64(lo), float64(hi)))
			// Geometric backlog: each queued task delays the reply by
			// another skewed task time.
			for load > 0 && src.Bernoulli(load) {
				d += time.Duration(src.Uniform(float64(lo), float64(hi)))
			}
			for _, p := range probes {
				if p == i && (best < 0 || d < best) {
					best = d
				}
			}
		}
		sample.Add(float64(best + probeCost))
	}
	return sample, nil
}

// ProbeSweep runs ResponseTimes for each probe count and returns the
// box-plot summaries — the series of Fig. 10. The per-q simulations carry
// independent RNG streams, so they fan out over the shared pool.
func ProbeSweep(n, iters int, choices []int, lo, hi time.Duration, load float64, seed int64) (map[int]stats.BoxPlot, error) {
	boxes := make([]stats.BoxPlot, len(choices))
	errs := make([]error, len(choices))
	parallel.For(0, len(choices), func(i int) {
		s, err := ResponseTimes(n, choices[i], iters, lo, hi, load, seed)
		if err == nil {
			boxes[i], err = s.Box()
		}
		errs[i] = err
	})
	out := make(map[int]stats.BoxPlot, len(choices))
	for i, q := range choices {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out[q] = boxes[i]
	}
	return out, nil
}
