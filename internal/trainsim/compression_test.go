package trainsim

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// quadConfig builds a noisy-quadratic run — a model with a known optimum,
// so loss gaps directly measure statistical damage from the wire dtype.
func quadConfig(t *testing.T, strategy Strategy, wire tensor.Dtype) Config {
	t.Helper()
	cfg := testConfig(t, strategy, 4, 120)
	q, err := model.NewQuadratic(rng.New(5), 20, 50, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Model = q
	cfg.EvalSet = nil
	cfg.LR = 0.01
	cfg.Momentum = 0
	cfg.Compression = wire
	return cfg
}

// TestCompressedConvergenceMatchesF64 is the statistical guard for the
// compressed wire: int8 (the harshest dtype) with error feedback must land
// within a fixed tolerance of the fp64 baseline's final loss, for both RNA
// and the BSP baseline, on Quadratic and on the logistic blobs task. Without
// error feedback int8 quantization at these gradient scales visibly stalls;
// the residual carry is what makes the narrow wire statistically free.
func TestCompressedConvergenceMatchesF64(t *testing.T) {
	for _, strategy := range []Strategy{RNA, Horovod} {
		// Quadratic: compare final losses directly.
		base, err := Run(quadConfig(t, strategy, tensor.F64))
		if err != nil {
			t.Fatal(err)
		}
		for _, wire := range []tensor.Dtype{tensor.F16, tensor.I8} {
			got, err := Run(quadConfig(t, strategy, wire))
			if err != nil {
				t.Fatal(err)
			}
			// The quadratic's noise floor dominates both runs; the
			// compressed trajectory must stay within 10% relative (plus a
			// small absolute slack) of the exact-wire loss.
			tol := 0.10*math.Abs(base.FinalLoss) + 1e-3
			if math.Abs(got.FinalLoss-base.FinalLoss) > tol {
				t.Errorf("%v %v: final loss %v, fp64 baseline %v (tol %v)",
					strategy, wire, got.FinalLoss, base.FinalLoss, tol)
			}
		}

		// Logistic blobs: the classification task must not lose accuracy
		// to the harshest wire either.
		blobBase, err := Run(testConfig(t, strategy, 4, 60))
		if err != nil {
			t.Fatal(err)
		}
		blobCfg := testConfig(t, strategy, 4, 60)
		blobCfg.Compression = tensor.I8
		blobGot, err := Run(blobCfg)
		if err != nil {
			t.Fatal(err)
		}
		if tol := 0.10*blobBase.FinalLoss + 0.02; math.Abs(blobGot.FinalLoss-blobBase.FinalLoss) > tol {
			t.Errorf("%v blobs i8: final loss %v, fp64 baseline %v (tol %v)",
				strategy, blobGot.FinalLoss, blobBase.FinalLoss, tol)
		}
	}
}

// TestCompressedRunFasterOnSlowFabric: the whole point of the narrow wire —
// on a bandwidth-bound fabric the compressed run's virtual clock must finish
// earlier than the fp64 run's for the same iteration count.
func TestCompressedRunFasterOnSlowFabric(t *testing.T) {
	build := func(wire tensor.Dtype) Config {
		cfg := quadConfig(t, Horovod, wire)
		cfg.Comm = workload.TenGbEComm()
		return cfg
	}
	base, err := Run(build(tensor.F64))
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Run(build(tensor.I8))
	if err != nil {
		t.Fatal(err)
	}
	if comp.VirtualTime >= base.VirtualTime {
		t.Errorf("i8 run took %v, fp64 took %v — compression saved no virtual time", comp.VirtualTime, base.VirtualTime)
	}
}

// TestConfigRejectsUnknownDtype: validation runs before any simulation.
func TestConfigRejectsUnknownDtype(t *testing.T) {
	cfg := quadConfig(t, Horovod, tensor.F64)
	cfg.Compression = tensor.Dtype(7)
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown compression dtype accepted")
	}
}
