package trainsim

import (
	"math"
	"testing"

	"repro/internal/tensor"
	"repro/internal/workload"
)

// topkConfig is quadConfig with an exact fp64 wire and sparse top-k
// synchronization enabled.
func topkConfig(t *testing.T, strategy Strategy, k int) Config {
	cfg := quadConfig(t, strategy, tensor.F64)
	cfg.TopK = k
	return cfg
}

// TestTopKConvergenceMatchesF64 is the statistical guard for sparse
// synchronization (the ISSUE's acceptance gate): shipping only a quarter of
// the 20-dim quadratic's gradient per round, with the dropped mass carried
// by error feedback, must land within 10% of the dense fp64 final loss for
// both RNA and the BSP baseline. Without the residual carry this sparsity
// visibly stalls the quadratic.
func TestTopKConvergenceMatchesF64(t *testing.T) {
	for _, strategy := range []Strategy{RNA, Horovod} {
		base, err := Run(quadConfig(t, strategy, tensor.F64))
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(topkConfig(t, strategy, 5))
		if err != nil {
			t.Fatal(err)
		}
		tol := 0.10*math.Abs(base.FinalLoss) + 1e-3
		if math.Abs(got.FinalLoss-base.FinalLoss) > tol {
			t.Errorf("%v top-k: final loss %v, fp64 baseline %v (tol %v)",
				strategy, got.FinalLoss, base.FinalLoss, tol)
		}
	}
}

// TestTopKRunFasterOnSlowFabric: the priced payoff — on a bandwidth-bound
// fabric the sparse run's virtual clock must beat the dense run's for the
// same iteration count.
func TestTopKRunFasterOnSlowFabric(t *testing.T) {
	build := func(k int) Config {
		cfg := topkConfig(t, Horovod, k)
		cfg.Comm = workload.TenGbEComm()
		return cfg
	}
	base, err := Run(build(0))
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := Run(build(5))
	if err != nil {
		t.Fatal(err)
	}
	if sparse.VirtualTime >= base.VirtualTime {
		t.Errorf("top-k run took %v, dense took %v — sparsity saved no virtual time",
			sparse.VirtualTime, base.VirtualTime)
	}
}

// TestConfigRejectsBadTopK: validation fires before any simulation — a
// negative k and the top-k/lossy-dtype combination are both configuration
// errors (the runtime collective rejects the latter too).
func TestConfigRejectsBadTopK(t *testing.T) {
	cfg := topkConfig(t, Horovod, -1)
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative TopK accepted")
	}
	cfg = topkConfig(t, Horovod, 4)
	cfg.Compression = tensor.F16
	if _, err := Run(cfg); err == nil {
		t.Fatal("TopK combined with lossy compression accepted")
	}
}
