package trainsim

import (
	"testing"
	"time"

	"repro/internal/hetero"
	"repro/internal/workload"
)

// TestGatePacesRounds checks the bounded-delay invariant: in a homogeneous
// cluster the number of synchronizations stays close to the number of
// per-worker training steps (the paper's Table 4 shows RNA within ~1.25x of
// Horovod's iteration count, not a multiple).
func TestGatePacesRounds(t *testing.T) {
	cfg := testConfig(t, RNA, 8, 0)
	cfg.MaxIterations = 0
	cfg.MaxTime = 20 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 100ms steps over 20s → ~200 per-worker steps. Rounds must be in
	// the same ballpark, not 2-3x.
	if res.Iterations > 260 {
		t.Errorf("RNA completed %d rounds in 20s of 100ms steps — rounds outpace iterations", res.Iterations)
	}
	if res.Iterations < 120 {
		t.Errorf("RNA completed only %d rounds in 20s of 100ms steps", res.Iterations)
	}
}

// TestMixedHeterogeneityPacesAtSlowGroup checks that the bounded-delay gate
// drags plain RNA onto the deterministic slow group — the pathology
// hierarchical synchronization exists to fix.
func TestMixedHeterogeneityPacesAtSlowGroup(t *testing.T) {
	mk := func(strategy Strategy) *Result {
		cfg := testConfig(t, strategy, 8, 120)
		cfg.Injector = hetero.MixedGroups{
			FastLo: 0, FastHi: 10 * time.Millisecond,
			SlowLo: 90 * time.Millisecond, SlowHi: 110 * time.Millisecond,
			SlowSet: map[int]bool{4: true, 5: true, 6: true, 7: true},
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rna := mk(RNA)
	// Slow workers take ~200ms per step; the gate must keep RNA's mean
	// round near that rate, not at the fast group's ~105ms.
	if rna.MeanIterTime() < 150*time.Millisecond {
		t.Errorf("RNA mean round %v under mixed heterogeneity — gate not pacing at the slow group",
			rna.MeanIterTime())
	}
	hier := mk(RNAHierarchical)
	if hier.MeanIterTime() >= rna.MeanIterTime() {
		t.Errorf("hierarchical mean round (%v) should beat plain RNA (%v) under mixed heterogeneity",
			hier.MeanIterTime(), rna.MeanIterTime())
	}
}

// TestEagerStaleDuplicates checks eager-SGD's distinctive semantics: no
// cross-iteration accumulation, stale re-contributions instead of nulls
// once every worker has contributed at least once.
func TestEagerStaleDuplicates(t *testing.T) {
	cfg := testConfig(t, EagerSGD, 4, 100)
	cfg.Injector = hetero.UniformRandom{Lo: 0, Hi: 60 * time.Millisecond}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// After warm-up every slot is filled (fresh or stale duplicate).
	if res.NullContribRate > 0.1 {
		t.Errorf("eager null rate = %.2f; stale duplicates should fill most slots", res.NullContribRate)
	}
	if res.TrainAcc < 0.75 {
		t.Errorf("eager accuracy = %v", res.TrainAcc)
	}
}

// TestRNAPerIterationBeatsEager checks the trigger-policy ordering the
// paper's Fig. 8 reports: two probed choices fire earlier than waiting for
// a strict majority.
func TestRNAPerIterationBeatsEager(t *testing.T) {
	inj := hetero.Stack{
		hetero.UniformRandom{Lo: 0, Hi: 50 * time.Millisecond},
		hetero.TransientSpikes{P: 0.05, Lo: 300 * time.Millisecond, Hi: 800 * time.Millisecond},
	}
	mk := func(strategy Strategy) *Result {
		cfg := testConfig(t, strategy, 8, 200)
		cfg.Injector = inj
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rna := mk(RNA)
	eager := mk(EagerSGD)
	horovod := mk(Horovod)
	if rna.MeanIterTime() >= horovod.MeanIterTime() {
		t.Errorf("RNA per-iteration (%v) not below Horovod (%v)", rna.MeanIterTime(), horovod.MeanIterTime())
	}
	if eager.MeanIterTime() >= horovod.MeanIterTime() {
		t.Errorf("eager per-iteration (%v) not below Horovod (%v)", eager.MeanIterTime(), horovod.MeanIterTime())
	}
}

// TestHierarchicalDeltaPSAccumulates checks that group progress is not lost
// to the PS exchange: under mixed heterogeneity hierarchical training still
// reaches high accuracy within a modest round budget.
func TestHierarchicalDeltaPSAccumulates(t *testing.T) {
	cfg := testConfig(t, RNAHierarchical, 8, 250)
	cfg.Injector = hetero.NewMixedGroups(8)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainAcc < 0.8 {
		t.Errorf("hierarchical accuracy after 250 rounds = %v", res.TrainAcc)
	}
	if !res.FinalParams.IsFinite() {
		t.Error("non-finite params")
	}
}

// TestADPSGDPaysAtomicOverhead checks the synchronization-overhead account:
// each AD-PSGD iteration costs at least the pairwise exchange plus the
// atomicity handshake.
func TestADPSGDPaysAtomicOverhead(t *testing.T) {
	cfg := testConfig(t, ADPSGD, 4, 50)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pair := workload.DefaultComm().PointToPoint(cfg.Spec.GradientBytes())*2 + adpsgdAtomicOverhead
	minPerIter := cfg.Step.Mean() + pair
	if res.MeanIterTime() < minPerIter {
		t.Errorf("AD-PSGD mean iteration %v below floor %v", res.MeanIterTime(), minPerIter)
	}
}

// TestCopyOverheadProportionalToRounds checks Table 5's accounting: RNA's
// cumulative copy time equals rounds x per-round copy cost.
func TestCopyOverheadProportionalToRounds(t *testing.T) {
	cfg := testConfig(t, RNA, 4, 60)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perRound := cfg.Comm.RNACopyOverhead(cfg.Spec.GradientBytes())
	want := time.Duration(res.Iterations) * perRound
	if res.CopyOverhead != want {
		t.Errorf("copy overhead = %v, want %d x %v = %v", res.CopyOverhead, res.Iterations, perRound, want)
	}
}

// TestSpeedFactorsSlowTheCluster checks the multiplicative hardware model:
// doubling every worker's factor roughly doubles the virtual time.
func TestSpeedFactorsSlowTheCluster(t *testing.T) {
	base := testConfig(t, Horovod, 4, 30)
	slow := base
	slow.SpeedFactors = []float64{2, 2, 2, 2}
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(b.VirtualTime) / float64(a.VirtualTime)
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("2x factors gave %.2fx time", ratio)
	}
	// Missing/invalid entries default to 1.
	partial := base
	partial.SpeedFactors = []float64{1, -5}
	if _, err := Run(partial); err != nil {
		t.Fatal(err)
	}
}
