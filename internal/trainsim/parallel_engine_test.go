package trainsim

import (
	"testing"

	"repro/internal/hetero"
	"repro/internal/model"
	"repro/internal/rng"
)

// assertIdentical fails unless two results are bit-identical in every field
// the engines compute numerically.
func assertIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.VirtualTime != b.VirtualTime {
		t.Errorf("%s: virtual time %v vs %v", label, a.VirtualTime, b.VirtualTime)
	}
	if a.Iterations != b.Iterations {
		t.Errorf("%s: iterations %d vs %d", label, a.Iterations, b.Iterations)
	}
	if a.FinalLoss != b.FinalLoss {
		t.Errorf("%s: final loss %v vs %v", label, a.FinalLoss, b.FinalLoss)
	}
	if !a.FinalParams.Equal(b.FinalParams, 0) {
		t.Errorf("%s: final params differ", label)
	}
	if len(a.Curve) != len(b.Curve) {
		t.Fatalf("%s: curve lengths %d vs %d", label, len(a.Curve), len(b.Curve))
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			t.Errorf("%s: curve[%d] %+v vs %+v", label, i, a.Curve[i], b.Curve[i])
		}
	}
	if len(a.Breakdowns) != len(b.Breakdowns) {
		t.Fatalf("%s: breakdown counts %d vs %d", label, len(a.Breakdowns), len(b.Breakdowns))
	}
	for i := range a.Breakdowns {
		if a.Breakdowns[i] != b.Breakdowns[i] {
			t.Errorf("%s: breakdown[%d] %+v vs %+v", label, i, a.Breakdowns[i], b.Breakdowns[i])
		}
	}
	if a.NullContribRate != b.NullContribRate {
		t.Errorf("%s: null rate %v vs %v", label, a.NullContribRate, b.NullContribRate)
	}
	if a.CopyOverhead != b.CopyOverhead {
		t.Errorf("%s: copy overhead %v vs %v", label, a.CopyOverhead, b.CopyOverhead)
	}
}

// TestSerialParallelIdentical is the parallel engine's contract: for every
// strategy, the fanned-out engine (Parallelism 0, the default) and a width
// cap (Parallelism 4) produce results bit-identical to the serial reference
// engine (Parallelism 1).
func TestSerialParallelIdentical(t *testing.T) {
	strategies := []Strategy{Horovod, RNA, RNAHierarchical, EagerSGD, EagerSGDSolo, ADPSGD}
	for _, s := range strategies {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			build := func(par int) Config {
				cfg := testConfig(t, s, 6, 60)
				// Mixed-speed groups so hierarchical actually partitions
				// (and the others face real stragglers).
				cfg.Injector = hetero.NewMixedGroups(6)
				cfg.Parallelism = par
				return cfg
			}
			serial, err := Run(build(1))
			if err != nil {
				t.Fatal(err)
			}
			pooled, err := Run(build(0))
			if err != nil {
				t.Fatal(err)
			}
			capped, err := Run(build(4))
			if err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, "pooled vs serial", pooled, serial)
			assertIdentical(t, "capped vs serial", capped, serial)
		})
	}
}

// TestSerialParallelIdenticalQuadratic pins the WorkerCloner path: the noisy
// quadratic draws gradient noise from per-worker streams, which must line up
// between the serial and parallel engines.
func TestSerialParallelIdenticalQuadratic(t *testing.T) {
	build := func(strategy Strategy, par int) Config {
		cfg := testConfig(t, strategy, 4, 40)
		q, err := model.NewQuadratic(rng.New(5), 20, 50, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Model = q
		cfg.EvalSet = nil
		cfg.Parallelism = par
		return cfg
	}
	for _, s := range []Strategy{Horovod, RNA, ADPSGD} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			serial, err := Run(build(s, 1))
			if err != nil {
				t.Fatal(err)
			}
			pooled, err := Run(build(s, 0))
			if err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, "pooled vs serial", pooled, serial)
		})
	}
}
