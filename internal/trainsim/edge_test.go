package trainsim

import (
	"testing"
	"time"

	"repro/internal/hetero"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// TestSingleWorkerRNA: the protocol degenerates gracefully to solo SGD.
func TestSingleWorkerRNA(t *testing.T) {
	cfg := testConfig(t, RNA, 1, 80)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainAcc < 0.75 {
		t.Errorf("single-worker accuracy = %v", res.TrainAcc)
	}
	if res.NullContribRate > 0 {
		t.Errorf("single worker produced nulls: %v", res.NullContribRate)
	}
}

// TestTwoWorkerHierarchicalFallsBack: two identical workers form one group.
func TestTwoWorkerHierarchical(t *testing.T) {
	cfg := testConfig(t, RNAHierarchical, 2, 40)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != RNAHierarchical {
		t.Errorf("strategy = %v", res.Strategy)
	}
}

// TestExtremeStraggler: a worker 100x slower than the rest must not stall
// the simulation (the bounded-delay gate paces rounds, the stale overwrite
// drops its ancient gradients, and probes never force full catch-up).
func TestExtremeStraggler(t *testing.T) {
	cfg := testConfig(t, RNA, 4, 60)
	cfg.Injector = hetero.PerNode{Delays: []time.Duration{0, 0, 0, 10 * time.Second}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 60 {
		t.Errorf("iterations = %d", res.Iterations)
	}
	if !res.FinalParams.IsFinite() {
		t.Error("non-finite params")
	}
	// The cluster is paced by the straggler through the gate, so the run
	// takes on the order of (iters - bound) / 1 straggler steps.
	if res.VirtualTime < 30*time.Second {
		t.Errorf("virtual time %v too small for a 10s/step straggler under the bounded-delay gate", res.VirtualTime)
	}
}

// TestZeroJitterWorkload: fully deterministic steps still make progress
// under every strategy.
func TestZeroJitterWorkload(t *testing.T) {
	for _, s := range []Strategy{Horovod, RNA, EagerSGD, ADPSGD} {
		cfg := testConfig(t, s, 3, 30)
		cfg.Step = workload.Balanced{Base: 10 * time.Millisecond, Jitter: 0}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Iterations == 0 || !res.FinalParams.IsFinite() {
			t.Errorf("%v: iterations=%d", s, res.Iterations)
		}
	}
}

// TestProbesLargerThanCluster: q > n clamps to probing everyone.
func TestProbesLargerThanCluster(t *testing.T) {
	cfg := testConfig(t, RNA, 3, 30)
	cfg.Probes = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 30 {
		t.Errorf("iterations = %d", res.Iterations)
	}
}

// TestRNAHierarchicalDeterminism: the grouped path is reproducible too.
func TestRNAHierarchicalDeterminism(t *testing.T) {
	cfg := testConfig(t, RNAHierarchical, 6, 40)
	cfg.Injector = hetero.NewMixedGroups(6)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.VirtualTime != b.VirtualTime || !a.FinalParams.Equal(b.FinalParams, 0) {
		t.Error("hierarchical run not deterministic")
	}
}

// TestEagerSoloDeterminism covers the remaining strategy determinism.
func TestEagerDeterminism(t *testing.T) {
	for _, s := range []Strategy{EagerSGD, EagerSGDSolo} {
		cfg := testConfig(t, s, 4, 40)
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !a.FinalParams.Equal(b.FinalParams, 0) {
			t.Errorf("%v not deterministic", s)
		}
	}
}

// TestDirectGPUNoCopyOverhead: the NCCL path removes the Table 5 overhead.
func TestDirectGPUNoCopyOverhead(t *testing.T) {
	cfg := testConfig(t, RNA, 4, 30)
	cfg.DirectGPU = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CopyOverhead != 0 {
		t.Errorf("DirectGPU copy overhead = %v", res.CopyOverhead)
	}
}

// TestLayerOverlapReducesCopy: overlapping shrinks the copy overhead by
// roughly the layer count.
func TestLayerOverlapReducesCopy(t *testing.T) {
	plain := testConfig(t, RNA, 4, 30)
	over := plain
	over.LayerOverlap = true
	a, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(over)
	if err != nil {
		t.Fatal(err)
	}
	if b.CopyOverhead >= a.CopyOverhead {
		t.Errorf("overlap overhead %v not below plain %v", b.CopyOverhead, a.CopyOverhead)
	}
}

// TestPSSyncEveryKnob: different periods give different (deterministic)
// trajectories under mixed heterogeneity.
func TestPSSyncEveryKnob(t *testing.T) {
	mk := func(period int) *Result {
		cfg := testConfig(t, RNAHierarchical, 6, 60)
		cfg.Injector = hetero.NewMixedGroups(6)
		cfg.PSSyncEvery = period
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(1), mk(16)
	if a.FinalParams.Equal(b.FinalParams, 0) {
		t.Error("PS period had no effect")
	}
}

// TestHierarchicalChunkedPSPricing: pricing the PS exchange with the
// pipelined wire protocol (chunked frames, overlapped acks) finishes no
// later than the monolithic round trip, and stays deterministic.
func TestHierarchicalChunkedPSPricing(t *testing.T) {
	base := testConfig(t, RNAHierarchical, 6, 40)
	base.Injector = hetero.NewMixedGroups(6)
	mono, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	chunked := base
	chunked.PSChunks = 8
	a, err := Run(chunked)
	if err != nil {
		t.Fatal(err)
	}
	if a.VirtualTime > mono.VirtualTime {
		t.Errorf("chunked PS pricing %v slower than monolithic %v", a.VirtualTime, mono.VirtualTime)
	}
	// The pricing changes time, never the trajectory.
	if !a.FinalParams.Equal(mono.FinalParams, 0) {
		t.Error("PS pricing changed the simulated trajectory")
	}
	b, err := Run(chunked)
	if err != nil {
		t.Fatal(err)
	}
	if a.VirtualTime != b.VirtualTime {
		t.Error("chunked pricing not deterministic")
	}
	// An f16 wire shrinks the exchange further.
	f16 := chunked
	f16.PSWire = tensor.F16
	c, err := Run(f16)
	if err != nil {
		t.Fatal(err)
	}
	if c.VirtualTime > a.VirtualTime {
		t.Errorf("f16 PS wire %v slower than f64 %v", c.VirtualTime, a.VirtualTime)
	}
}
