package trainsim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/controller"
	"repro/internal/model"
	"repro/internal/opt"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// gradEntry is one buffered gradient on a worker's comm thread.
type gradEntry struct {
	// ready is when the compute finished.
	ready time.Duration
	// iter is the worker-local produce index (used by the
	// staleness-weighted reduction and the bounded-staleness overwrite).
	iter int64
	grad tensor.Vector
}

// pendingGrad is a gradient computation whose schedule-time inputs (the
// parameter version visible at compute start and the batch draw) have been
// fixed but whose numeric work is deferred to the next flush, where it can
// run concurrently with other workers' pending computations.
type pendingGrad struct {
	// version is an immutable parameter snapshot from the timeline.
	version tensor.Vector
	batch   []int
	// out receives the gradient; it is already referenced by the worker's
	// buffer entry.
	out tensor.Vector
	// iter is the worker-local produce index, for error messages.
	iter int64
}

// simWorker is one worker's compute thread in the partial-collective
// simulation: it produces gradients continuously, bounded by the staleness
// window, buffering them until a synchronization consumes (or drops) them.
type simWorker struct {
	id       int // global worker id (for heterogeneity injection)
	busy     time.Duration
	produced int64
	buffer   []gradEntry
	// readyAt[j] is when the j-th produced gradient finished; probe
	// replies and the bounded-delay gate are iteration-tagged against it.
	readyAt []time.Duration

	// mdl is this worker's model instance (a per-worker clone when the
	// model carries internal randomness — see model.ForWorker).
	mdl model.Model

	batchSrc *rng.Source
	stepSrc  *rng.Source
	delaySrc *rng.Source

	// pending holds deferred gradient computations; flush runs them
	// in produce order (so noise-stream draws stay sequential per
	// worker) while fanning out across workers.
	pending []pendingGrad
	gradErr error

	stall time.Duration // cumulative staleness-bound blocking

	// lastContrib is the most recent gradient this worker fed into a
	// collective; eager-SGD re-contributes it (stale) when no fresh
	// gradient is ready.
	lastContrib tensor.Vector
}

// partialSim simulates one AllReduce domain (the whole cluster for plain
// RNA/eager-SGD, one group under hierarchical synchronization) running
// partial collectives in virtual time.
type partialSim struct {
	cfg     *Config
	policy  controller.Policy
	workers []*simWorker
	n       int

	params   tensor.Vector
	optim    *opt.SGD
	timeline *paramsTimeline
	syncEnds []time.Duration
	probeSrc *rng.Source

	// payCopy marks protocols that stage gradients through CPU memory
	// (RNA does; eager-SGD reduces in place).
	payCopy bool
	// eager marks eager-SGD semantics: no cross-iteration accumulation —
	// a worker contributes only its newest ready gradient, and when
	// nothing fresh is ready it re-contributes its previous gradient
	// (a stale duplicate), which is eager-SGD's statistical cost.
	eager bool

	// postSync optionally extends a synchronization (hierarchical PS
	// push-pull + broadcast): it may mutate params and returns the extra
	// time before the new parameters become visible.
	postSync func(params tensor.Vector, syncEnd time.Duration) time.Duration

	// residual carries the error-feedback state across rounds under a
	// lossy wire dtype (nil for fp64).
	residual tensor.Vector

	// accounting
	breakdowns   []stats.Breakdown
	nulls        int64
	slots        int64
	copyOverhead time.Duration
	trace        *trace.Trace
}

// newPartialSim builds a simulation domain over the given global worker ids.
func newPartialSim(cfg *Config, policy controller.Policy, ids []int, seedSalt int64) (*partialSim, error) {
	root := rng.New(cfg.Seed + seedSalt)
	dim := cfg.Model.Dim()
	s := &partialSim{
		cfg:        cfg,
		policy:     policy,
		n:          len(ids),
		params:     tensor.New(dim),
		probeSrc:   root.Split(0),
		payCopy:    policy == controller.PowerOfChoices || policy == controller.RandomInitiator,
		eager:      policy == controller.Majority || policy == controller.Solo,
		residual:   cfg.residual(dim),
		breakdowns: make([]stats.Breakdown, len(ids)),
	}
	cfg.Model.Init(rng.New(cfg.Seed+7777), s.params)
	s.timeline = newParamsTimeline(s.params)
	var err error
	s.optim, err = opt.NewSGD(dim, cfg.LR, cfg.Momentum, cfg.WeightDecay)
	if err != nil {
		return nil, err
	}
	s.workers = make([]*simWorker, len(ids))
	for i, id := range ids {
		s.workers[i] = &simWorker{
			id:       id,
			mdl:      model.ForWorker(cfg.Model, id),
			batchSrc: root.Split(100 + id),
			stepSrc:  root.Split(200 + id),
			delaySrc: root.Split(300 + id),
		}
	}
	if cfg.CollectTrace {
		s.trace = &trace.Trace{}
	}
	return s, nil
}

// rounds returns completed synchronizations.
func (s *partialSim) rounds() int { return len(s.syncEnds) }

// now returns the end of the last synchronization.
func (s *partialSim) now() time.Duration {
	if len(s.syncEnds) == 0 {
		return 0
	}
	return s.syncEnds[len(s.syncEnds)-1]
}

// canProduce reports whether worker w may start its next compute: iteration
// j may start only after synchronization j−bound completed.
func (s *partialSim) canProduce(w *simWorker) bool {
	return w.produced-s.cfg.bound() <= int64(s.rounds())-1
}

// produceOne runs one compute step of w: the gradient is evaluated at the
// parameter version visible when the compute starts (cross-iteration
// execution trains on stale parameters, exactly as Fig. 4 shows).
func (s *partialSim) produceOne(w *simWorker) error {
	j := w.produced
	start := w.busy
	if idx := j - s.cfg.bound(); idx >= 0 {
		if resume := s.syncEnds[idx]; resume > start {
			if s.trace != nil {
				s.trace.Add(trace.Span{Worker: w.id, Kind: trace.SpanWait,
					Start: start, End: resume, Iter: j})
			}
			w.stall += resume - start
			start = resume
		}
	}
	dur := time.Duration(float64(s.cfg.Step.Sample(w.stepSrc))*s.cfg.speedFactor(w.id)) +
		s.cfg.injector().Delay(w.delaySrc, w.id, int(j))
	ready := start + dur

	version := s.timeline.Lookup(start)
	batch := s.cfg.Dataset.Batch(w.batchSrc, s.cfg.BatchSize)
	grad := tensor.New(len(s.params))
	if s.cfg.parallel() {
		// Defer the numeric work: the inputs are pinned (the timeline
		// version is an immutable snapshot, the batch slice is fresh),
		// so flush can run it concurrently with other workers.
		w.pending = append(w.pending, pendingGrad{version: version, batch: batch, out: grad, iter: j})
	} else if _, err := w.mdl.Gradient(version, grad, batch); err != nil {
		return fmt.Errorf("worker %d iter %d: %w", w.id, j, err)
	}
	w.buffer = append(w.buffer, gradEntry{ready: ready, iter: j, grad: grad})
	w.readyAt = append(w.readyAt, ready)
	w.produced++
	w.busy = ready
	if s.trace != nil {
		s.trace.Add(trace.Span{Worker: w.id, Kind: trace.SpanCompute,
			Start: start, End: ready, Iter: j})
	}
	return nil
}

// flush runs every deferred gradient computation. Work fans out across
// workers over the shared pool; within one worker the pending list runs in
// produce order so models with internal noise streams draw the same
// per-worker sequence the serial engine would.
func (s *partialSim) flush() error {
	var busy []*simWorker
	for _, w := range s.workers {
		if len(w.pending) > 0 {
			busy = append(busy, w)
		}
	}
	if len(busy) == 0 {
		return nil
	}
	parallel.For(s.cfg.fanout(), len(busy), func(i int) {
		w := busy[i]
		for _, p := range w.pending {
			if _, err := w.mdl.Gradient(p.version, p.out, p.batch); err != nil {
				w.gradErr = fmt.Errorf("worker %d iter %d: %w", w.id, p.iter, err)
				return
			}
		}
	})
	for _, w := range busy {
		w.pending = w.pending[:0]
		if w.gradErr != nil {
			return w.gradErr
		}
	}
	return nil
}

// produceUpTo advances w's compute thread until it has produced at least
// `count` gradients.
func (s *partialSim) produceUpTo(w *simWorker, count int64) error {
	for w.produced < count {
		if !s.canProduce(w) {
			return fmt.Errorf("trainsim: worker %d blocked before producing %d gradients", w.id, count)
		}
		if err := s.produceOne(w); err != nil {
			return err
		}
	}
	return nil
}

// replyTime returns when worker w answers a probe issued at base: the
// completion time of its first gradient landing after base — a fresh
// result, so trigger policies are measured on genuine per-iteration
// readiness — producing forward as needed. A worker parked at the staleness
// bound with only banked gradients replies at base.
func (s *partialSim) replyTime(w *simWorker, base time.Duration) (time.Duration, error) {
	for _, e := range w.buffer {
		if e.ready > base {
			return e.ready, nil
		}
	}
	for s.canProduce(w) {
		if err := s.produceOne(w); err != nil {
			return 0, err
		}
		if e := w.buffer[len(w.buffer)-1]; e.ready > base {
			return e.ready, nil
		}
	}
	if len(w.buffer) > 0 {
		return base, nil
	}
	return 0, fmt.Errorf("trainsim: worker %d has nothing to reply with", w.id)
}

// roundOutcome summarizes one synchronization.
type roundOutcome struct {
	Fire         time.Duration
	SyncEnd      time.Duration
	Contributors int
}

// nextRound executes one synchronization round: pick probes, determine the
// trigger per the policy, let computation race until the trigger, reduce
// the contributions (null gradients for empty buffers), apply the update
// with the Linear Scaling Rule, and advance the clock past the collective.
func (s *partialSim) nextRound() (roundOutcome, error) {
	tNow := s.now()
	k := s.rounds()

	// Relevant workers whose readiness can fire the trigger.
	var probeSet []int
	switch s.policy {
	case controller.PowerOfChoices:
		probeSet = s.probeSrc.SampleDistinct(s.n, s.cfg.probes())
	case controller.RandomInitiator:
		probeSet = []int{s.probeSrc.Intn(s.n)}
	default: // Majority, Solo, AllReady consider everyone.
		probeSet = nil
	}
	relevant := probeSet
	if relevant == nil {
		relevant = make([]int, s.n)
		for i := range relevant {
			relevant[i] = i
		}
	}
	// Bounded delay (Assumption 2): synchronization k may not outrun the
	// slowest worker by more than the staleness bound — every worker must
	// have produced its (k+1−bound)-th gradient before the round can
	// fire. This paces rounds one-to-one with training iterations (the
	// paper's Table 4 iteration counts) and bounds how far a probed
	// laggard must catch up.
	gate := tNow
	if floor := int64(k) + 1 - s.cfg.bound(); floor > 0 {
		for _, w := range s.workers {
			if err := s.produceUpTo(w, floor); err != nil {
				return roundOutcome{}, err
			}
			if r := w.readyAt[floor-1]; r > gate {
				gate = r
			}
		}
	}

	// Probes carry iteration IDs only to deduplicate replies
	// (Section 3.2): a probed worker answers with its first gradient
	// completing after the probe arrives — a fresh result at its own
	// pace, never a replay of missed rounds (no unbounded catch-up for
	// laggards) and never a banked leftover (which would collapse the
	// trigger policies onto the gate).
	base := tNow
	if gate > base {
		base = gate
	}
	replies := make([]time.Duration, len(relevant))
	for ri, i := range relevant {
		r, err := s.replyTime(s.workers[i], base)
		if err != nil {
			return roundOutcome{}, err
		}
		replies[ri] = r
	}
	var fire time.Duration
	switch s.policy {
	case controller.Majority:
		// eager-SGD's majority is strictly more than half: ⌊n/2⌋+1
		// replies, which is what drags it onto the slow group in a
		// half-slow mixed cluster.
		sorted := append([]time.Duration(nil), replies...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		idx := len(sorted)/2 + 1
		if idx > len(sorted) {
			idx = len(sorted)
		}
		fire = sorted[idx-1]
	case controller.AllReady:
		for _, r := range replies {
			if r > fire {
				fire = r
			}
		}
	default: // probes and Solo: earliest reply wins.
		fire = replies[0]
		for _, r := range replies[1:] {
			if r < fire {
				fire = r
			}
		}
	}

	// Let every compute thread race up to the trigger: fast workers may
	// bank several gradients for this collective.
	for _, w := range s.workers {
		for s.canProduce(w) {
			if len(w.buffer) > 0 && w.buffer[len(w.buffer)-1].ready > fire {
				break
			}
			if w.busy > fire {
				break
			}
			if err := s.produceOne(w); err != nil {
				return roundOutcome{}, err
			}
		}
	}

	// Materialize every deferred gradient before the gather reads them.
	if err := s.flush(); err != nil {
		return roundOutcome{}, err
	}

	// Gather contributions: entries ready by the trigger. The
	// bounded-staleness overwrite of Section 3.3 is worker-local: among a
	// worker's accumulated gradients, those more than `bound` iterations
	// behind its newest ready one are overwritten (dropped); the
	// survivors are combined with the linear iteration weights
	// w_t = t − (k−τ) + 1.
	sum := tensor.New(len(s.params))
	contributors := 0
	for _, w := range s.workers {
		if s.eager {
			// eager-SGD: newest ready gradient only; stale re-send
			// when nothing fresh landed by the trigger.
			var newest tensor.Vector
			remain := w.buffer[:0]
			for _, e := range w.buffer {
				if e.ready <= fire {
					newest = e.grad // buffer is ready-ordered
				} else {
					remain = append(remain, e)
				}
			}
			w.buffer = remain
			s.slots++
			if newest != nil {
				w.lastContrib = newest
			}
			if w.lastContrib == nil {
				s.nulls++
				if s.trace != nil {
					s.trace.Add(trace.Span{Worker: w.id, Kind: trace.SpanNull,
						Start: fire, End: fire, Iter: int64(k)})
				}
				continue
			}
			if err := sum.Add(w.lastContrib); err != nil {
				return roundOutcome{}, err
			}
			contributors++
			continue
		}
		var maxIter int64 = -1
		for _, e := range w.buffer {
			if e.ready <= fire && e.iter > maxIter {
				maxIter = e.iter
			}
		}
		var takeG []tensor.Vector
		var takeW []float64
		var minIter int64 = -1
		remain := w.buffer[:0]
		for _, e := range w.buffer {
			switch {
			case e.ready > fire:
				remain = append(remain, e)
			case maxIter-e.iter >= s.cfg.bound() && maxIter != e.iter:
				// overwritten by newer results
			default:
				if minIter < 0 || e.iter < minIter {
					minIter = e.iter
				}
				takeG = append(takeG, e.grad)
				takeW = append(takeW, float64(e.iter))
			}
		}
		w.buffer = remain
		for i := range takeW {
			takeW[i] = takeW[i] - float64(minIter) + 1
		}
		s.slots++
		if len(takeG) == 0 {
			s.nulls++
			if s.trace != nil {
				s.trace.Add(trace.Span{Worker: w.id, Kind: trace.SpanNull,
					Start: fire, End: fire, Iter: int64(k)})
			}
			continue
		}
		local, err := tensor.WeightedMean(takeG, takeW)
		if err != nil {
			return roundOutcome{}, err
		}
		if err := sum.Add(local); err != nil {
			return roundOutcome{}, err
		}
		contributors++
	}

	// Price the collective: one extra payload element per bucket carries
	// the contribution count (see collective.PartialAllReduce). The
	// schedule is the configured one (ring by default, auto for selector
	// runs). With overlap the bucket collectives launch across the window
	// computation raced until the trigger (tNow → fire) and only the tail
	// is charged; sequential pricing (1 bucket) is unchanged.
	commCost := s.cfg.updateTail(s.n, s.cfg.Spec.GradientBytes(), fire-tNow, 8)
	if s.payCopy && !s.cfg.DirectGPU {
		oh := s.cfg.Comm.RNACopyOverhead(s.cfg.Spec.GradientBytes())
		if s.cfg.LayerOverlap {
			oh = s.cfg.Comm.RNAOverlappedCopyOverhead(s.cfg.Spec.GradientBytes(), s.cfg.Spec.Layers)
		}
		commCost += oh
		s.copyOverhead += oh
	}
	syncEnd := fire + commCost
	for li, w := range s.workers {
		s.breakdowns[li].Comm += commCost
		if s.trace != nil {
			s.trace.Add(trace.Span{Worker: w.id, Kind: trace.SpanComm,
				Start: fire, End: syncEnd, Iter: int64(k)})
		}
	}

	if contributors > 0 {
		// Lossy wire: the collective quantizes (narrow dtype) or
		// sparsifies (top-k) the summed gradient — the reduction itself
		// runs fp64, see internal/collective — and error feedback folds
		// the previous round's residual back into the sum before it is
		// re-compressed, so the error is corrected rather than compounded.
		if s.residual != nil {
			_ = sum.Add(s.residual)
			s.residual.Zero()
			if s.cfg.TopK > 0 {
				tensor.TopKEF(sum, s.cfg.TopK, s.residual)
			} else {
				tensor.RoundTripEF(s.cfg.Compression, sum, s.residual)
			}
		}
		sum.Scale(1 / float64(contributors))
		scale, err := opt.LinearScale(contributors, s.n)
		if err != nil {
			return roundOutcome{}, err
		}
		if s.cfg.DisableLRScale {
			scale = 1
		}
		if _, err := s.optim.Step(s.params, sum, scale); err != nil {
			return roundOutcome{}, err
		}
	}
	if s.postSync != nil {
		syncEnd += s.postSync(s.params, syncEnd)
	}
	s.syncEnds = append(s.syncEnds, syncEnd)
	s.timeline.Append(syncEnd, s.params)

	// Bound memory: versions older than every compute frontier are dead.
	frontier := s.workers[0].busy
	for _, w := range s.workers[1:] {
		if w.busy < frontier {
			frontier = w.busy
		}
	}
	s.timeline.Prune(frontier)

	return roundOutcome{Fire: fire, SyncEnd: syncEnd, Contributors: contributors}, nil
}

// finishBreakdowns folds per-worker compute/stall totals into breakdowns.
func (s *partialSim) finishBreakdowns() []stats.Breakdown {
	out := make([]stats.Breakdown, len(s.workers))
	for i, w := range s.workers {
		out[i] = s.breakdowns[i]
		out[i].Compute = w.busy - w.stall
		out[i].Wait += w.stall
	}
	return out
}

// runPartial simulates RNA / eager-SGD over the whole cluster.
func runPartial(cfg Config, policy controller.Policy) (*Result, error) {
	ids := make([]int, cfg.Workers)
	for i := range ids {
		ids[i] = i
	}
	s, err := newPartialSim(&cfg, policy, ids, 0)
	if err != nil {
		return nil, err
	}
	ev := newEvaluator(&cfg)
	res := &Result{
		Strategy:     cfg.Strategy,
		PerIterTimes: &stats.Sample{},
	}
	res.Trace = s.trace

	for k := 0; k < cfg.maxIterations(); k++ {
		before := s.now()
		out, err := s.nextRound()
		if err != nil {
			return nil, err
		}
		res.PerIterTimes.Add(float64(out.SyncEnd - before))
		res.Iterations = k + 1

		if (k+1)%cfg.evalEvery() == 0 || k+1 == cfg.maxIterations() {
			hit, err := sampleCurve(res, ev, s.params, s.now(), k+1, cfg.TargetLoss)
			if err != nil {
				return nil, err
			}
			if hit {
				res.ReachedTarget = true
				break
			}
		}
		if cfg.MaxTime > 0 && s.now() >= cfg.MaxTime {
			break
		}
	}
	res.VirtualTime = s.now()
	res.Breakdowns = s.finishBreakdowns()
	res.CopyOverhead = s.copyOverhead
	if s.slots > 0 {
		res.NullContribRate = float64(s.nulls) / float64(s.slots)
	}
	if len(res.Curve) == 0 {
		if _, err := sampleCurve(res, ev, s.params, s.now(), res.Iterations, 0); err != nil {
			return nil, err
		}
	}
	ev.finalize(res, s.params)
	return res, nil
}
