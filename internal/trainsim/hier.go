package trainsim

import (
	"fmt"
	"time"

	"repro/internal/controller"
	"repro/internal/ps"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/topology"
)

// psKey is the parameter-server key holding the global model in the
// hierarchical scheme.
const psKey = "global-model"

// profileProbes is the profiling window (iterations) used both to estimate
// per-worker speed and as the accumulation horizon of the grouping rule.
const profileProbes = 32

// runHierarchical simulates Section 4's hierarchical synchronization:
// workers are partitioned into speed-homogeneous groups by the recursive
// ζ > v rule, each group runs RNA internally, and after every group
// synchronization the group's initiator push-pull-averages the group model
// with a central parameter server and broadcasts the result inside the
// group. Groups proceed asynchronously; the PS is their only coupling.
func runHierarchical(cfg Config) (*Result, error) {
	// Profile each worker's per-task times over a window, as the paper's
	// group configuration does, then apply the ζ > v rule.
	obs, err := profileWorkers(&cfg)
	if err != nil {
		return nil, err
	}
	groups, err := topology.PartitionByObservations(obs)
	if err != nil {
		return nil, err
	}
	if len(groups) == 1 {
		// Homogeneous cluster: hierarchical degrades to plain RNA.
		res, err := runPartial(cfg, controller.PowerOfChoices)
		if err != nil {
			return nil, err
		}
		res.Strategy = RNAHierarchical
		return res, nil
	}

	store := ps.NewStore(1)
	// psFreeAt serializes the central server: concurrent group push-pulls
	// queue behind each other, so splitting into many groups re-creates
	// the PS communication hotspot instead of being free.
	var psFreeAt time.Duration
	sims := make([]*partialSim, len(groups))
	for gi, g := range groups {
		s, err := newPartialSim(&cfg, controller.PowerOfChoices, g.Members, int64(gi+1))
		if err != nil {
			return nil, err
		}
		if gi == 0 {
			// Seed the PS with the (shared) initial model so group
			// deltas accumulate on top of it.
			if _, err := store.Push(psKey, s.params, ps.Overwrite); err != nil {
				return nil, err
			}
		}
		// Periodically after a group sync the initiator exchanges with
		// the PS: it pushes the group's accumulated update (Section 4:
		// "the averaged gradients among each group is applied to
		// update models using parameter server"), pulls back the
		// global model that now carries every group's progress, and
		// broadcasts it within the group. The returned duration
		// extends the group's sync.
		groupSize := len(g.Members)
		rounds := 0
		lastPull := s.params.Clone()
		period := cfg.psSyncEvery()
		s.postSync = func(params tensor.Vector, syncEnd time.Duration) time.Duration {
			rounds++
			if rounds%period != 0 {
				return 0
			}
			// The group's progress since its last pull is its
			// aggregate applied gradient.
			delta := params.Clone()
			if err := delta.Sub(lastPull); err != nil {
				return 0
			}
			global, _, err := store.PushPull(psKey, delta, ps.Add)
			if err != nil {
				return 0
			}
			copy(params, global)
			copy(lastPull, global)
			start := syncEnd
			if psFreeAt > start {
				start = psFreeAt
			}
			psCost := cfg.Comm.PSPushPull(cfg.Spec.GradientBytes())
			if cfg.PSChunks > 1 || cfg.PSWire != tensor.F64 {
				// Pipelined wire-protocol exchange: chunked frames at
				// the configured wire dtype, acks overlapping pushes.
				psCost = cfg.Comm.PSPushPullWire(int(cfg.Spec.Params), cfg.PSChunks, cfg.PSWire)
			}
			psFreeAt = start + psCost
			return (start - syncEnd) + psCost +
				cfg.Comm.Broadcast(groupSize, cfg.Spec.GradientBytes())
		}
		sims[gi] = s
	}

	ev := newEvaluator(&cfg)
	res := &Result{
		Strategy:     RNAHierarchical,
		PerIterTimes: &stats.Sample{},
	}

	// Interleave group rounds in virtual-time order: always advance the
	// group whose last sync ended earliest, so PS interactions happen in
	// (approximately) global timestamp order.
	totalRounds := 0
	consensus := tensor.New(cfg.Model.Dim())
	evalNow := func(now time.Duration) (bool, error) {
		consensus.Zero()
		var weight float64
		for gi, s := range sims {
			// Weight each group's model by its worker count.
			w := float64(len(groups[gi].Members))
			if err := consensus.Axpy(w, s.params); err != nil {
				return false, err
			}
			weight += w
		}
		consensus.Scale(1 / weight)
		return sampleCurve(res, ev, consensus, now, totalRounds, cfg.TargetLoss)
	}

	var now time.Duration
	for totalRounds < cfg.maxIterations() {
		// Pick the group lagging furthest behind in virtual time.
		gi := 0
		for i, s := range sims {
			if s.now() < sims[gi].now() {
				gi = i
			}
		}
		s := sims[gi]
		before := s.now()
		out, err := s.nextRound()
		if err != nil {
			return nil, err
		}
		res.PerIterTimes.Add(float64(out.SyncEnd - before))
		totalRounds++
		if out.SyncEnd > now {
			now = out.SyncEnd
		}
		res.Iterations = totalRounds

		if totalRounds%cfg.evalEvery() == 0 || totalRounds == cfg.maxIterations() {
			hit, err := evalNow(now)
			if err != nil {
				return nil, err
			}
			if hit {
				res.ReachedTarget = true
				break
			}
		}
		if cfg.MaxTime > 0 && now >= cfg.MaxTime {
			break
		}
	}

	res.VirtualTime = now
	var nulls, slots int64
	for _, s := range sims {
		res.Breakdowns = append(res.Breakdowns, s.finishBreakdowns()...)
		res.CopyOverhead += s.copyOverhead
		nulls += s.nulls
		slots += s.slots
	}
	if slots > 0 {
		res.NullContribRate = float64(nulls) / float64(slots)
	}
	if len(res.Curve) == 0 {
		if _, err := evalNow(now); err != nil {
			return nil, err
		}
	}
	// Finalize with the consensus model.
	consensus.Zero()
	var weight float64
	for gi, s := range sims {
		w := float64(len(groups[gi].Members))
		if err := consensus.Axpy(w, s.params); err != nil {
			return nil, err
		}
		weight += w
	}
	consensus.Scale(1 / weight)
	ev.finalize(res, consensus)
	return res, nil
}

// profileWorkers samples each worker's per-task time over the profiling
// window — the measurement phase behind the ζ > v grouping decision.
func profileWorkers(cfg *Config) ([][]time.Duration, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("trainsim: %d workers", cfg.Workers)
	}
	root := rng.New(cfg.Seed + 999)
	inj := cfg.injector()
	obs := make([][]time.Duration, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		stepSrc := root.Split(2 * w)
		delaySrc := root.Split(2*w + 1)
		obs[w] = make([]time.Duration, profileProbes)
		for i := 0; i < profileProbes; i++ {
			obs[w][i] = time.Duration(float64(cfg.Step.Sample(stepSrc))*cfg.speedFactor(w)) +
				inj.Delay(delaySrc, w, i)
		}
	}
	return obs, nil
}
