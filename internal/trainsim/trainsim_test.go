package trainsim

import (
	"strings"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/hetero"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/workload"
)

// testConfig builds a small but realistic training simulation.
func testConfig(t *testing.T, strategy Strategy, workers, iters int) Config {
	t.Helper()
	src := rng.New(17)
	full, err := data.Blobs(src, 5, 8, 80, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	train, val, err := full.Split(src, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewLogistic(train)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Strategy:      strategy,
		Workers:       workers,
		Model:         m,
		Dataset:       train,
		EvalSet:       val,
		BatchSize:     16,
		LR:            0.3,
		Momentum:      0.9,
		Step:          workload.Balanced{Base: 100 * time.Millisecond, Jitter: 0.05},
		Spec:          workload.ResNet56(),
		Comm:          workload.DefaultComm(),
		MaxIterations: iters,
		EvalEvery:     10,
		Seed:          23,
	}
}

func TestStrategyString(t *testing.T) {
	for _, s := range []Strategy{Horovod, RNA, RNAHierarchical, EagerSGD, EagerSGDSolo, ADPSGD} {
		if str := s.String(); str == "" || strings.HasPrefix(str, "strategy(") {
			t.Errorf("Strategy %d has bad String %q", int(s), str)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config should error")
	}
	cfg := testConfig(t, Horovod, 4, 10)
	cfg.Workers = 0
	if _, err := Run(cfg); err == nil {
		t.Error("0 workers should error")
	}
	cfg = testConfig(t, Horovod, 4, 10)
	cfg.Model = nil
	if _, err := Run(cfg); err == nil {
		t.Error("nil model should error")
	}
	cfg = testConfig(t, Horovod, 4, 10)
	cfg.MaxIterations = 0
	if _, err := Run(cfg); err == nil {
		t.Error("no termination should error")
	}
	cfg = testConfig(t, Strategy(99), 4, 10)
	if _, err := Run(cfg); err == nil {
		t.Error("unknown strategy should error")
	}
	cfg = testConfig(t, ADPSGD, 1, 10)
	if _, err := Run(cfg); err == nil {
		t.Error("single-worker AD-PSGD should error")
	}
}

func TestAllStrategiesTrainToHighAccuracy(t *testing.T) {
	for _, s := range []Strategy{Horovod, RNA, EagerSGD, EagerSGDSolo, ADPSGD} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			cfg := testConfig(t, s, 4, 200)
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Iterations == 0 {
				t.Fatal("no iterations completed")
			}
			if res.VirtualTime <= 0 {
				t.Fatal("virtual clock did not advance")
			}
			if !res.FinalParams.IsFinite() {
				t.Fatal("non-finite final parameters")
			}
			if res.TrainAcc < 0.8 {
				t.Errorf("%v train accuracy = %v, want ≥ 0.8", s, res.TrainAcc)
			}
			if res.ValTop1 <= 0 || res.ValTop5 < res.ValTop1 {
				t.Errorf("%v validation accuracy = (%v, %v)", s, res.ValTop1, res.ValTop5)
			}
			if len(res.Curve) == 0 {
				t.Error("empty convergence curve")
			}
			// Loss must broadly decrease.
			first, last := res.Curve[0].Loss, res.Curve[len(res.Curve)-1].Loss
			if last >= first {
				t.Errorf("%v loss did not decrease: %v -> %v", s, first, last)
			}
		})
	}
}

func TestHierarchicalTrainsUnderMixedHeterogeneity(t *testing.T) {
	cfg := testConfig(t, RNAHierarchical, 6, 200)
	cfg.Injector = hetero.NewMixedGroups(6)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainAcc < 0.75 {
		t.Errorf("hierarchical train accuracy = %v", res.TrainAcc)
	}
	if len(res.Breakdowns) != 6 {
		t.Errorf("breakdowns = %d, want 6", len(res.Breakdowns))
	}
}

func TestHierarchicalHomogeneousFallsBackToRNA(t *testing.T) {
	cfg := testConfig(t, RNAHierarchical, 4, 50)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != RNAHierarchical {
		t.Errorf("strategy = %v", res.Strategy)
	}
	if res.TrainAcc < 0.7 {
		t.Errorf("accuracy = %v", res.TrainAcc)
	}
}

func TestDeterminism(t *testing.T) {
	for _, s := range []Strategy{Horovod, RNA, ADPSGD} {
		cfg := testConfig(t, s, 4, 40)
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.VirtualTime != b.VirtualTime {
			t.Errorf("%v virtual time differs: %v vs %v", s, a.VirtualTime, b.VirtualTime)
		}
		if a.FinalLoss != b.FinalLoss {
			t.Errorf("%v final loss differs: %v vs %v", s, a.FinalLoss, b.FinalLoss)
		}
		if !a.FinalParams.Equal(b.FinalParams, 0) {
			t.Errorf("%v final params differ", s)
		}
	}
}

func TestRNAFasterThanHorovodUnderStragglers(t *testing.T) {
	// The paper's core claim: under random per-iteration delays, RNA's
	// per-iteration time beats the BSP barrier.
	inj := hetero.UniformRandom{Lo: 0, Hi: 50 * time.Millisecond}

	cfgH := testConfig(t, Horovod, 8, 150)
	cfgH.Injector = inj
	h, err := Run(cfgH)
	if err != nil {
		t.Fatal(err)
	}

	cfgR := testConfig(t, RNA, 8, 150)
	cfgR.Injector = inj
	r, err := Run(cfgR)
	if err != nil {
		t.Fatal(err)
	}

	if r.MeanIterTime() >= h.MeanIterTime() {
		t.Errorf("RNA per-iteration (%v) not faster than Horovod (%v)",
			r.MeanIterTime(), h.MeanIterTime())
	}
	// RNA trades statistical efficiency: it must show null contributions.
	if r.NullContribRate <= 0 {
		t.Error("RNA reported zero null contributions under stragglers")
	}
	if h.PerIterTimes.Len() == 0 {
		t.Error("missing per-iteration samples")
	}
}

func TestBSPWaitDominatedByStraggler(t *testing.T) {
	// Fig. 1 shape: with +10ms/+40ms deterministic delays on workers 1
	// and 2, worker 0's wait share exceeds the slow worker's.
	cfg := testConfig(t, Horovod, 3, 50)
	cfg.Injector = hetero.PerNode{Delays: []time.Duration{0, 10 * time.Millisecond, 40 * time.Millisecond}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdowns[0].Wait <= res.Breakdowns[2].Wait {
		t.Errorf("fast worker wait (%v) should exceed slow worker wait (%v)",
			res.Breakdowns[0].Wait, res.Breakdowns[2].Wait)
	}
	if res.Breakdowns[2].Compute <= res.Breakdowns[0].Compute {
		t.Errorf("slow worker should compute longer (%v vs %v)",
			res.Breakdowns[2].Compute, res.Breakdowns[0].Compute)
	}
}

func TestTargetLossTermination(t *testing.T) {
	cfg := testConfig(t, Horovod, 4, 2000)
	cfg.TargetLoss = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReachedTarget {
		t.Fatalf("target loss never reached (final %v)", res.FinalLoss)
	}
	if res.FinalLoss > 0.5 {
		t.Errorf("final loss %v above target", res.FinalLoss)
	}
	if res.Iterations >= 2000 {
		t.Error("run did not stop early")
	}
}

func TestMaxTimeTermination(t *testing.T) {
	cfg := testConfig(t, RNA, 4, 1<<20)
	cfg.MaxIterations = 0
	cfg.MaxTime = 3 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Should stop within one sync of the deadline.
	if res.VirtualTime < 3*time.Second {
		t.Errorf("stopped before MaxTime: %v", res.VirtualTime)
	}
	if res.VirtualTime > 5*time.Second {
		t.Errorf("overran MaxTime badly: %v", res.VirtualTime)
	}
}

func TestTraceCollection(t *testing.T) {
	for _, s := range []Strategy{Horovod, RNA, ADPSGD} {
		cfg := testConfig(t, s, 3, 10)
		cfg.CollectTrace = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Trace == nil || res.Trace.Len() == 0 {
			t.Errorf("%v produced no trace", s)
			continue
		}
		out := res.Trace.Render(60, 0)
		if !strings.Contains(out, "w0") {
			t.Errorf("%v trace render missing workers:\n%s", s, out)
		}
	}
}

func TestRNACopyOverheadAccounted(t *testing.T) {
	cfg := testConfig(t, RNA, 4, 30)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CopyOverhead <= 0 {
		t.Error("RNA must account host-device copy overhead")
	}
	cfgE := testConfig(t, EagerSGD, 4, 30)
	resE, err := Run(cfgE)
	if err != nil {
		t.Fatal(err)
	}
	if resE.CopyOverhead != 0 {
		t.Error("eager-SGD should not pay RNA's copy overhead")
	}
}

func TestADPSGDLowerAccuracyThanBSP(t *testing.T) {
	// Table 3/4 shape: for a fixed iteration budget AD-PSGD's consensus
	// accuracy trails the synchronized approaches.
	cfgH := testConfig(t, Horovod, 8, 120)
	h, err := Run(cfgH)
	if err != nil {
		t.Fatal(err)
	}
	cfgA := testConfig(t, ADPSGD, 8, 120)
	a, err := Run(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if a.TrainAcc > h.TrainAcc+0.02 {
		t.Errorf("AD-PSGD accuracy (%v) should not beat Horovod (%v)", a.TrainAcc, h.TrainAcc)
	}
}

func TestThroughputAndMeanIterTime(t *testing.T) {
	cfg := testConfig(t, Horovod, 4, 30)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput() <= 0 {
		t.Error("non-positive throughput")
	}
	if res.MeanIterTime() <= 0 {
		t.Error("non-positive mean iteration time")
	}
	var empty Result
	if empty.Throughput() != 0 || empty.MeanIterTime() != 0 {
		t.Error("empty result should report zeros")
	}
}

func TestResponseTimesMicrobench(t *testing.T) {
	s1, err := ResponseTimes(100, 1, 400, 10*time.Millisecond, 50*time.Millisecond, 0.7, 5)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ResponseTimes(100, 2, 400, 10*time.Millisecond, 50*time.Millisecond, 0.7, 5)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := s1.Median()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s2.Median()
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 10: two choices cut the median response time sharply vs one.
	if m2 >= m1 {
		t.Errorf("q=2 median (%v) not below q=1 (%v)", time.Duration(m2), time.Duration(m1))
	}
	if ratio := m1 / m2; ratio < 1.4 {
		t.Errorf("q=2 improvement ratio %.2f, want ≥ 1.4 (paper reports ~2.4x)", ratio)
	}
}

func TestResponseTimesErrors(t *testing.T) {
	if _, err := ResponseTimes(0, 1, 10, 0, time.Second, 0, 1); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := ResponseTimes(10, 0, 10, 0, time.Second, 0, 1); err == nil {
		t.Error("q=0 should error")
	}
	if _, err := ResponseTimes(10, 1, 0, 0, time.Second, 0, 1); err == nil {
		t.Error("iters=0 should error")
	}
	if _, err := ResponseTimes(10, 1, 10, time.Second, time.Second, 0, 1); err == nil {
		t.Error("empty band should error")
	}
	if _, err := ResponseTimes(10, 1, 10, 0, time.Second, 1.5, 1); err == nil {
		t.Error("load ≥ 1 should error")
	}
}

func TestProbeSweepMonotoneAtLowQ(t *testing.T) {
	boxes, err := ProbeSweep(100, 300, []int{1, 2, 4}, 10*time.Millisecond, 50*time.Millisecond, 0.7, 9)
	if err != nil {
		t.Fatal(err)
	}
	if boxes[2].P50 >= boxes[1].P50 {
		t.Errorf("q=2 median %v not below q=1 %v", boxes[2].P50, boxes[1].P50)
	}
	if boxes[4].P50 > boxes[2].P50 {
		t.Errorf("q=4 median %v should not exceed q=2 %v", boxes[4].P50, boxes[2].P50)
	}
}

func TestParamsTimeline(t *testing.T) {
	cfg := testConfig(t, RNA, 2, 5)
	_ = cfg
	init := make([]float64, 2)
	tl := newParamsTimeline(init)
	v1 := []float64{1, 1}
	v2 := []float64{2, 2}
	tl.Append(10*time.Millisecond, v1)
	tl.Append(20*time.Millisecond, v2)
	if got := tl.Lookup(5 * time.Millisecond); got[0] != 0 {
		t.Errorf("Lookup(5ms) = %v, want initial", got)
	}
	if got := tl.Lookup(10 * time.Millisecond); got[0] != 1 {
		t.Errorf("Lookup(10ms) = %v, want v1", got)
	}
	if got := tl.Lookup(15 * time.Millisecond); got[0] != 1 {
		t.Errorf("Lookup(15ms) = %v, want v1", got)
	}
	if got := tl.Lookup(time.Hour); got[0] != 2 {
		t.Errorf("Lookup(1h) = %v, want v2", got)
	}
	if got := tl.Latest(); got[0] != 2 {
		t.Errorf("Latest = %v", got)
	}
	tl.Prune(15 * time.Millisecond)
	if tl.Len() != 2 {
		t.Errorf("after prune Len = %d, want 2", tl.Len())
	}
	if got := tl.Lookup(0); got[0] != 1 {
		t.Errorf("after prune Lookup(0) = %v, want oldest retained (v1)", got)
	}
}

func TestPartialSimStalenessBound(t *testing.T) {
	// With bound 1 and a strong straggler, the fast worker must stall
	// sometimes (wait time > 0) instead of running away.
	cfg := testConfig(t, RNA, 2, 60)
	cfg.StalenessBound = 1
	cfg.Injector = hetero.PerNode{Delays: []time.Duration{0, 200 * time.Millisecond}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdowns[0].Wait <= 0 {
		t.Error("fast worker never hit the staleness bound")
	}
	if !res.FinalParams.IsFinite() {
		t.Error("non-finite params")
	}
}

// TestCollectiveAutoNeverSlower: opting a simulation into auto collective
// selection can only shrink virtual time (the priced min over schedules),
// and the zero value reproduces the historical ring timing exactly.
func TestCollectiveAutoNeverSlower(t *testing.T) {
	for _, strategy := range []Strategy{Horovod, RNA} {
		cfg := testConfig(t, strategy, 4, 30)
		ringRes, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg2 := testConfig(t, strategy, 4, 30)
		cfg2.Collective = workload.AllReduceAuto
		autoRes, err := Run(cfg2)
		if err != nil {
			t.Fatal(err)
		}
		if autoRes.VirtualTime > ringRes.VirtualTime {
			t.Errorf("%v: auto collective %v slower than ring %v",
				strategy, autoRes.VirtualTime, ringRes.VirtualTime)
		}
		// Same schedule choice implies identical statistics.
		explicit := testConfig(t, strategy, 4, 30)
		explicit.Collective = workload.AllReduceRing
		explicitRes, err := Run(explicit)
		if err != nil {
			t.Fatal(err)
		}
		if explicitRes.VirtualTime != ringRes.VirtualTime {
			t.Errorf("%v: explicit ring %v differs from zero value %v",
				strategy, explicitRes.VirtualTime, ringRes.VirtualTime)
		}
	}
}
