package trainsim

import (
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/workload"
)

// benchConfig is the fixed workload measured by the engine benchmarks and by
// `rnabench -train`: an MLP heavy enough that gradient computation dominates
// the round bookkeeping.
func benchConfig(b *testing.B, strategy Strategy, parallelism int) Config {
	b.Helper()
	src := rng.New(11)
	ds, err := data.Blobs(src, 10, 32, 100, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	m, err := model.NewMLP(ds, 32)
	if err != nil {
		b.Fatal(err)
	}
	return Config{
		Strategy:      strategy,
		Workers:       8,
		Model:         m,
		Dataset:       ds,
		BatchSize:     32,
		LR:            0.1,
		Momentum:      0.9,
		Step:          workload.Balanced{Base: 100 * time.Millisecond, Jitter: 0.05},
		Spec:          workload.ResNet56(),
		Comm:          workload.DefaultComm(),
		MaxIterations: 15,
		EvalEvery:     1 << 30,
		Seed:          23,
		Parallelism:   parallelism,
	}
}

func benchRun(b *testing.B, strategy Strategy, parallelism int) {
	cfg := benchConfig(b, strategy, parallelism)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainsimBSP(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchRun(b, Horovod, 1) })
	b.Run("parallel", func(b *testing.B) { benchRun(b, Horovod, 0) })
}

func BenchmarkTrainsimRNA(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchRun(b, RNA, 1) })
	b.Run("parallel", func(b *testing.B) { benchRun(b, RNA, 0) })
}
