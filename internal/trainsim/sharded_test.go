package trainsim

import (
	"testing"
	"time"

	"repro/internal/tensor"
	"repro/internal/workload"
)

// shardedSpec keeps the payload an exact multiple of the worker counts the
// tests use, so the ring's bytes/n chunk and the half-collectives' elems/n
// chunk coincide and the composition invariant holds to the nanosecond.
func shardedSpec() workload.ModelSpec {
	return workload.ModelSpec{Params: 1 << 18, BytesPerParam: 8, Layers: 16}
}

func TestShardedUpdateValidation(t *testing.T) {
	cfg := testConfig(t, Horovod, 4, 5)
	cfg.ShardedUpdate = true
	cfg.TopK = 100
	if _, err := Run(cfg); err == nil {
		t.Error("sharded + top-k accepted")
	}
	cfg.TopK = 0
	cfg.OverlapBuckets = 4
	if _, err := Run(cfg); err == nil {
		t.Error("sharded + overlap buckets accepted")
	}
	cfg.OverlapBuckets = 0
	cfg.Strategy = ADPSGD
	if _, err := Run(cfg); err == nil {
		t.Error("sharded AD-PSGD accepted")
	}
	cfg = testConfig(t, Horovod, 4, 5)
	cfg.OptNsPerElem = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative optimizer cost accepted")
	}
}

// TestShardedFreeUpdateCostsLikeRing: with the optimizer priced free (the
// historical default) the sharded round costs exactly the replicated ring
// round — RS + AG compose to the ring — so flipping ShardedUpdate does not
// silently change existing virtual-time results.
func TestShardedFreeUpdateCostsLikeRing(t *testing.T) {
	for _, strategy := range []Strategy{Horovod, RNA} {
		cfg := testConfig(t, strategy, 4, 20)
		cfg.Spec = shardedSpec()
		repl, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.ShardedUpdate = true
		shard, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if strategy == Horovod {
			if shard.VirtualTime != repl.VirtualTime {
				t.Errorf("%v: sharded %v != replicated %v with free updates",
					strategy, shard.VirtualTime, repl.VirtualTime)
			}
		} else if shard.VirtualTime > repl.VirtualTime {
			// RNA's flag element perturbs the chunking by one element; the
			// sharded price must never exceed the fused ring's.
			t.Errorf("%v: sharded %v > replicated %v", strategy, shard.VirtualTime, repl.VirtualTime)
		}
	}
}

// TestShardedUpdateCheaperWhenOptimizerPriced: once the optimizer step has a
// cost, owner-computes wins — each rank steps dim/n elements instead of dim.
func TestShardedUpdateCheaperWhenOptimizerPriced(t *testing.T) {
	cfg := testConfig(t, Horovod, 8, 20)
	cfg.Spec = shardedSpec()
	cfg.OptNsPerElem = 50 // expensive enough to dominate the round
	repl, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ShardedUpdate = true
	shard, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if shard.VirtualTime >= repl.VirtualTime {
		t.Fatalf("sharded %v not cheaper than replicated %v", shard.VirtualTime, repl.VirtualTime)
	}
}

// TestShardedSkewOwnership: on an uneven fleet the owned spans shrink for
// slow ranks (∝ 1/SpeedFactor), so the sharded update term is paced below
// slowest-rank × uniform-span.
func TestShardedSkewOwnership(t *testing.T) {
	cfg := testConfig(t, Horovod, 4, 1)
	cfg.Spec = shardedSpec()
	cfg.ShardedUpdate = true
	cfg.OptNsPerElem = 50
	cfg.SpeedFactors = []float64{1, 1, 1, 3}
	elems := int(cfg.Spec.GradientBytes() / 8)
	spans := cfg.shardSpanElems(4, elems)
	if spans[3] >= spans[0] {
		t.Fatalf("slow rank owns %d ≥ fast rank's %d", spans[3], spans[0])
	}
	var worst time.Duration
	for w, span := range spans {
		if d := cfg.optStepCost(w, span); d > worst {
			worst = d
		}
	}
	uniformWorst := cfg.optStepCost(3, elems/4) // slowest rank, uniform span
	if worst >= uniformWorst {
		t.Errorf("skew-aware spans pace at %v, uniform would pace at %v", worst, uniformWorst)
	}
}

// TestShardedCompressedGather: a narrow parameter allgather shrinks the
// sharded round against the exact-fp64 one.
func TestShardedCompressedGather(t *testing.T) {
	cfg := testConfig(t, Horovod, 8, 1)
	cfg.Spec = shardedSpec()
	cfg.ShardedUpdate = true
	exact := cfg.updateTail(8, cfg.Spec.GradientBytes(), 0, 0)
	cfg.Compression = tensor.F16
	narrow := cfg.updateTail(8, cfg.Spec.GradientBytes(), 0, 0)
	if narrow >= exact {
		t.Errorf("f16 gather %v not cheaper than fp64 %v", narrow, exact)
	}
}
