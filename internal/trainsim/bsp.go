package trainsim

import (
	"time"

	"repro/internal/opt"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// runBSP simulates Horovod-style bulk-synchronous training: every round all
// workers compute one gradient from the same parameters, the round fires
// when the slowest finishes (NEGOTIATE_ALLREDUCE), a full ring AllReduce
// averages the gradients, and everyone steps. The per-worker wait time —
// the "long-tail effect" the paper targets — is the gap between a worker's
// finish and the barrier.
//
// Within a round the per-worker gradients are independent (each worker owns
// its batch stream, model clone and scratch gradient), so they fan out over
// the shared pool; the reduction then merges them in rank order, keeping
// the result bit-identical to the serial engine.
func runBSP(cfg Config) (*Result, error) {
	root := rng.New(cfg.Seed)
	probeSrc := root.Split(0)
	_ = probeSrc // BSP needs no probes; keep stream layout aligned with runPartial.
	batchSrcs := make([]*rng.Source, cfg.Workers)
	stepSrcs := make([]*rng.Source, cfg.Workers)
	delaySrcs := make([]*rng.Source, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		batchSrcs[w] = root.Split(100 + w)
		stepSrcs[w] = root.Split(200 + w)
		delaySrcs[w] = root.Split(300 + w)
	}

	dim := cfg.Model.Dim()
	params := tensor.New(dim)
	cfg.Model.Init(rng.New(cfg.Seed+7777), params)
	optim, err := opt.NewSGD(dim, cfg.LR, cfg.Momentum, cfg.WeightDecay)
	if err != nil {
		return nil, err
	}
	ev := newEvaluator(&cfg)
	inj := cfg.injector()

	res := &Result{
		Strategy:     Horovod,
		Breakdowns:   make([]stats.Breakdown, cfg.Workers),
		PerIterTimes: &stats.Sample{},
	}
	if cfg.CollectTrace {
		res.Trace = &trace.Trace{}
	}

	ids := make([]int, cfg.Workers)
	for w := range ids {
		ids[w] = w
	}
	models := workerModels(cfg.Model, ids)
	grads := make([]tensor.Vector, cfg.Workers)
	for w := range grads {
		grads[w] = tensor.New(dim)
	}
	batches := make([][]int, cfg.Workers)
	gradErrs := make([]error, cfg.Workers)
	sum := tensor.New(dim)
	residual := cfg.residual(dim)
	var now time.Duration
	for k := 0; k < cfg.maxIterations(); k++ {
		// Compute phase: all workers start from the barrier. Timing and
		// batch draws stay serial (fixed RNG order); the gradient bodies
		// fan out below.
		var fire time.Duration
		ready := make([]time.Duration, cfg.Workers)
		for w := 0; w < cfg.Workers; w++ {
			dur := time.Duration(float64(cfg.Step.Sample(stepSrcs[w]))*cfg.speedFactor(w)) +
				inj.Delay(delaySrcs[w], w, k)
			ready[w] = now + dur
			if ready[w] > fire {
				fire = ready[w]
			}
			res.Breakdowns[w].Compute += dur
			batches[w] = cfg.Dataset.Batch(batchSrcs[w], cfg.BatchSize)
			if res.Trace != nil {
				res.Trace.Add(trace.Span{Worker: w, Kind: trace.SpanCompute,
					Start: now, End: ready[w], Iter: int64(k)})
			}
		}
		compute := func(w int) {
			_, gradErrs[w] = models[w].Gradient(params, grads[w], batches[w])
		}
		if cfg.parallel() {
			parallel.For(cfg.fanout(), cfg.Workers, compute)
		} else {
			for w := 0; w < cfg.Workers; w++ {
				compute(w)
			}
		}
		sum.Zero()
		for w := 0; w < cfg.Workers; w++ {
			if gradErrs[w] != nil {
				return nil, gradErrs[w]
			}
			if err := sum.Add(grads[w]); err != nil {
				return nil, err
			}
		}
		// The compute window all workers share (barrier at fire): with
		// overlap the bucket collectives launch inside it and only the
		// tail is charged; sequential pricing (1 bucket) is unchanged.
		// updateTail adds the optimizer term — and under ShardedUpdate
		// decomposes the round into RS → owned-shard step → AG.
		commCost := cfg.updateTail(cfg.Workers, cfg.Spec.GradientBytes(), fire-now, 0)
		syncEnd := fire + commCost
		for w := 0; w < cfg.Workers; w++ {
			res.Breakdowns[w].Wait += fire - ready[w]
			res.Breakdowns[w].Comm += commCost
			if res.Trace != nil {
				if fire > ready[w] {
					res.Trace.Add(trace.Span{Worker: w, Kind: trace.SpanWait,
						Start: ready[w], End: fire, Iter: int64(k)})
				}
				res.Trace.Add(trace.Span{Worker: w, Kind: trace.SpanComm,
					Start: fire, End: syncEnd, Iter: int64(k)})
			}
		}
		sum.Scale(1 / float64(cfg.Workers))
		// Lossy wire: sparsify (top-k) or quantize (narrow dtype) the
		// averaged gradient with error feedback — the residual carries the
		// dropped or rounded mass into the next round's average instead of
		// discarding it. The two modes are mutually exclusive (validate()).
		if residual != nil {
			if err := sum.Add(residual); err != nil {
				return nil, err
			}
			residual.Zero()
			if cfg.TopK > 0 {
				tensor.TopKEF(sum, cfg.TopK, residual)
			} else {
				tensor.RoundTripEF(cfg.Compression, sum, residual)
			}
		}
		if _, err := optim.Step(params, sum, 1); err != nil {
			return nil, err
		}
		res.PerIterTimes.Add(float64(syncEnd - now))
		now = syncEnd
		res.Iterations = k + 1

		if (k+1)%cfg.evalEvery() == 0 || k+1 == cfg.maxIterations() {
			hit, err := sampleCurve(res, ev, params, now, k+1, cfg.TargetLoss)
			if err != nil {
				return nil, err
			}
			if hit {
				res.ReachedTarget = true
				break
			}
		}
		if cfg.MaxTime > 0 && now >= cfg.MaxTime {
			break
		}
	}
	res.VirtualTime = now
	if len(res.Curve) == 0 {
		if _, err := sampleCurve(res, ev, params, now, res.Iterations, 0); err != nil {
			return nil, err
		}
	}
	ev.finalize(res, params)
	return res, nil
}
