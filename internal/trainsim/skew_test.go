package trainsim

import (
	"testing"

	"repro/internal/workload"
)

// TestAllReduceCostLinkSkew pins the pricing ladder: a homogeneous fabric
// keeps the historical price, an uneven fabric without SkewAware is paced
// by its slowest link, and SkewAware recovers most of the gap via the
// weighted exchange — never pricing above the equal-chunk alternative.
func TestAllReduceCostLinkSkew(t *testing.T) {
	const n = 8
	const bytes = 8 << 18 // 2 MiB fp64 payload
	base := &Config{Comm: workload.TenGbEComm()}
	flat := base.allReduceCost(n, bytes)

	slow := &Config{Comm: workload.TenGbEComm(),
		LinkSpeedFactors: []float64{4, 4, 4, 4, 4, 4, 4, 1}}
	paced := slow.allReduceCost(n, bytes)
	if paced <= flat {
		t.Fatalf("slowest-link pacing %v not above homogeneous %v", paced, flat)
	}

	aware := &Config{Comm: workload.TenGbEComm(), SkewAware: true,
		LinkSpeedFactors: []float64{4, 4, 4, 4, 4, 4, 4, 1}}
	skew := aware.allReduceCost(n, bytes)
	if skew >= paced {
		t.Fatalf("skew-aware %v not below slowest-link pacing %v", skew, paced)
	}
	if ratio := float64(paced) / float64(skew); ratio < 1.4 {
		t.Fatalf("skew-aware speedup %.2fx at 4:1, want >= 1.4x", ratio)
	}

	// Uniform factors (any scale) are the homogeneous fabric.
	uni := &Config{Comm: workload.TenGbEComm(), SkewAware: true,
		LinkSpeedFactors: []float64{2, 2, 2, 2, 2, 2, 2, 2}}
	if got := uni.allReduceCost(n, bytes); got != flat {
		t.Fatalf("uniform factors priced %v, want %v", got, flat)
	}

	// Pinned non-ring schedules keep slowest-link pacing (the runtime
	// engine refuses them, so the simulator must not price the skew
	// schedule for them).
	tree := &Config{Comm: workload.TenGbEComm(), SkewAware: true,
		Collective:       workload.AllReduceTree,
		LinkSpeedFactors: []float64{4, 4, 4, 4, 4, 4, 4, 1}}
	treeFlat := &Config{Comm: workload.TenGbEComm(), Collective: workload.AllReduceTree}
	if got, want := tree.allReduceCost(n, bytes), treeFlat.allReduceCost(n, bytes); got <= want {
		t.Fatalf("pinned tree under skew priced %v, want above homogeneous %v", got, want)
	}
}
