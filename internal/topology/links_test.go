package topology

import (
	"testing"
	"time"
)

func TestLinkObservationsValidation(t *testing.T) {
	if _, err := NewLinkObservations(0); err == nil {
		t.Error("zero-rank aggregator should error")
	}
	o, err := NewLinkObservations(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.ObserveTransfer(0, 0, 1<<20, time.Millisecond); err == nil {
		t.Error("self-link observation should error")
	}
	if err := o.ObserveTransfer(0, 4, 1<<20, time.Millisecond); err == nil {
		t.Error("out-of-range rank should error")
	}
	if err := o.ObserveTransfer(0, 1, 0, time.Millisecond); err == nil {
		t.Error("zero-byte transfer should error")
	}
	if err := o.ObserveLatency(0, 1, -time.Second); err == nil {
		t.Error("negative latency should error")
	}
}

func TestLinkObservationsBandwidthAndLatency(t *testing.T) {
	o, err := NewLinkObservations(3)
	if err != nil {
		t.Fatal(err)
	}
	if o.Observed(0, 1) {
		t.Error("unobserved link reports observed")
	}
	if bw := o.Bandwidth(0, 1); bw != 0 {
		t.Errorf("unobserved bandwidth = %v, want 0", bw)
	}
	// 1 MiB in 1 ms ≈ 1 GiB/s.
	if err := o.ObserveTransfer(0, 1, 1<<20, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	bw := o.Bandwidth(0, 1)
	want := float64(1<<20) * 1e3
	if bw < want*0.99 || bw > want*1.01 {
		t.Errorf("bandwidth = %v, want ≈%v", bw, want)
	}
	if !o.Observed(0, 1) || o.Observed(1, 0) {
		t.Error("observation direction confused")
	}
	if err := o.ObserveLatency(2, 1, 40*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if lat := o.Latency(2, 1); lat < 39*time.Microsecond || lat > 41*time.Microsecond {
		t.Errorf("latency = %v, want ≈40µs", lat)
	}
	// Small transfers fold into the latency EWMA, not bandwidth.
	if err := o.ObserveTransfer(1, 2, 100, 5*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if bw := o.Bandwidth(1, 2); bw != 0 {
		t.Errorf("tiny transfer polluted bandwidth: %v", bw)
	}
	if lat := o.Latency(1, 2); lat == 0 {
		t.Error("tiny transfer did not record latency")
	}
}

// TestLinkObservationsAgeOut is the satellite's core claim: stale samples
// decay. A link that was slow for a long history converges to its new fast
// speed after about a half-life worth of fresh samples — an unbounded-mean
// accumulator would stay pinned near the stale value forever.
func TestLinkObservationsAgeOut(t *testing.T) {
	o, err := NewLinkObservations(2)
	if err != nil {
		t.Fatal(err)
	}
	slow := 50 * time.Millisecond // 1 MiB in 50 ms ≈ 21 MB/s
	fast := 1 * time.Millisecond  // 1 MiB in 1 ms ≈ 1 GB/s
	for i := 0; i < 500; i++ {
		if err := o.ObserveTransfer(0, 1, 1<<20, slow); err != nil {
			t.Fatal(err)
		}
	}
	slowBW := o.Bandwidth(0, 1)
	// The link speeds up 50x. Feed 8 half-lives of fresh samples: the stale
	// history's weight decays to 2^-8 ≈ 0.4% (ns/byte is harmonic in
	// bandwidth, so even small stale weight drags the estimate visibly —
	// which is why the window matters).
	for i := 0; i < 8*int(DefaultLinkHalfLife); i++ {
		if err := o.ObserveTransfer(0, 1, 1<<20, fast); err != nil {
			t.Fatal(err)
		}
	}
	freshBW := o.Bandwidth(0, 1)
	fastBW := float64(1<<20) * 1e3
	if freshBW < fastBW/2 {
		t.Errorf("EWMA still anchored to stale history: %v (stale %v, fresh %v)", freshBW, slowBW, fastBW)
	}
	// An unbounded mean of the same ns/byte stream would still sit at
	// ~(500·47.7 + 128·0.95)/628 ≈ 38 ns/B ≈ 1.3·slowBW — verify we are far
	// past what any accumulating estimator could reach.
	if freshBW < 10*slowBW {
		t.Errorf("EWMA barely moved off the stale estimate: %v vs %v", freshBW, slowBW)
	}
}

func TestLinkObservationsBandwidthMatrix(t *testing.T) {
	o, err := NewLinkObservations(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.ObserveTransfer(0, 2, 1<<20, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	m := o.BandwidthMatrix()
	if len(m) != 3 || len(m[0]) != 3 {
		t.Fatalf("matrix shape %dx%d", len(m), len(m[0]))
	}
	if m[0][2] == 0 {
		t.Error("observed link missing from matrix")
	}
	if m[2][0] != 0 || m[0][1] != 0 || m[0][0] != 0 {
		t.Error("unobserved entries must be zero")
	}
}
