package topology

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestRingNeighbors(t *testing.T) {
	r, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 4 {
		t.Errorf("Size = %d", r.Size())
	}
	cases := []struct{ i, left, right int }{
		{0, 1, 3}, {1, 2, 0}, {2, 3, 1}, {3, 0, 2},
	}
	for _, c := range cases {
		if got := r.Left(c.i); got != c.left {
			t.Errorf("Left(%d) = %d, want %d", c.i, got, c.left)
		}
		if got := r.Right(c.i); got != c.right {
			t.Errorf("Right(%d) = %d, want %d", c.i, got, c.right)
		}
	}
}

func TestRingSingleton(t *testing.T) {
	r, err := NewRing(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Left(0) != 0 || r.Right(0) != 0 {
		t.Error("singleton ring neighbors should be self")
	}
}

func TestRingInvalid(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Error("NewRing(0) should error")
	}
	if _, err := NewRing(-3); err == nil {
		t.Error("NewRing(-3) should error")
	}
}

// Property: following Left around the ring visits every worker exactly once.
func TestQuickRingIsHamiltonianCycle(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)%32 + 1
		r, err := NewRing(n)
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		cur := 0
		for i := 0; i < n; i++ {
			if seen[cur] {
				return false
			}
			seen[cur] = true
			cur = r.Left(cur)
		}
		return cur == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Left and Right are inverse.
func TestQuickRingInverse(t *testing.T) {
	f := func(nRaw, iRaw uint8) bool {
		n := int(nRaw)%32 + 1
		i := int(iRaw) % n
		r, err := NewRing(n)
		if err != nil {
			return false
		}
		return r.Right(r.Left(i)) == i && r.Left(r.Right(i)) == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPartitionHomogeneousSingleGroup(t *testing.T) {
	times := []time.Duration{100, 105, 98, 102, 101}
	for i := range times {
		times[i] *= time.Millisecond
	}
	groups, err := PartitionBySpeed(times)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("homogeneous cluster split into %d groups", len(groups))
	}
	if groups[0].Size() != 5 {
		t.Errorf("group size = %d, want 5", groups[0].Size())
	}
}

func TestPartitionMixedTwoGroups(t *testing.T) {
	// Paper's mixed cluster: fast workers ~100ms, slow ~100+300ms.
	times := []time.Duration{
		100 * time.Millisecond, 110 * time.Millisecond, 105 * time.Millisecond,
		400 * time.Millisecond, 410 * time.Millisecond, 395 * time.Millisecond,
	}
	groups, err := PartitionBySpeed(times)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("mixed cluster split into %d groups, want 2: %+v", len(groups), groups)
	}
	fast, slow := groups[0], groups[1]
	wantFast := []int{0, 1, 2}
	wantSlow := []int{3, 4, 5}
	for i, id := range wantFast {
		if fast.Members[i] != id {
			t.Errorf("fast group = %v, want %v", fast.Members, wantFast)
			break
		}
	}
	for i, id := range wantSlow {
		if slow.Members[i] != id {
			t.Errorf("slow group = %v, want %v", slow.Members, wantSlow)
			break
		}
	}
}

func TestPartitionRecursesThreeBands(t *testing.T) {
	times := []time.Duration{
		10 * time.Millisecond, 11 * time.Millisecond,
		100 * time.Millisecond, 105 * time.Millisecond,
		1000 * time.Millisecond, 1010 * time.Millisecond,
	}
	groups, err := PartitionBySpeed(times)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("three-band cluster split into %d groups: %+v", len(groups), groups)
	}
}

func TestPartitionEmpty(t *testing.T) {
	if _, err := PartitionBySpeed(nil); !errors.Is(err, ErrNoWorkers) {
		t.Errorf("empty partition error = %v, want ErrNoWorkers", err)
	}
}

func TestPartitionSingleton(t *testing.T) {
	groups, err := PartitionBySpeed([]time.Duration{time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || groups[0].Size() != 1 {
		t.Errorf("singleton partition = %+v", groups)
	}
}

// Property: the partition always covers every worker exactly once, and
// within every group ζ ≤ v (post-condition of Section 4's algorithm) unless
// the group is a singleton.
func TestQuickPartitionInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		times := make([]time.Duration, len(raw))
		for i, v := range raw {
			times[i] = time.Duration(int(v)+1) * time.Millisecond
		}
		groups, err := PartitionBySpeed(times)
		if err != nil {
			return false
		}
		seen := make([]bool, len(times))
		for _, g := range groups {
			if g.Size() == 0 {
				return false
			}
			var sum, min, max time.Duration
			min, max = times[g.Members[0]], times[g.Members[0]]
			for _, id := range g.Members {
				if id < 0 || id >= len(times) || seen[id] {
					return false
				}
				seen[id] = true
				tt := times[id]
				sum += tt
				if tt < min {
					min = tt
				}
				if tt > max {
					max = tt
				}
			}
			mean := sum / time.Duration(g.Size())
			if g.Size() > 1 && max-min > mean {
				return false
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNeedsHierarchy(t *testing.T) {
	if NeedsHierarchy([]time.Duration{100 * time.Millisecond, 110 * time.Millisecond}) {
		t.Error("near-homogeneous cluster should not need hierarchy")
	}
	if !NeedsHierarchy([]time.Duration{100 * time.Millisecond, 400 * time.Millisecond}) {
		t.Error("3x gap cluster should need hierarchy")
	}
	if NeedsHierarchy([]time.Duration{time.Second}) {
		t.Error("single worker never needs hierarchy")
	}
	if NeedsHierarchy(nil) {
		t.Error("empty cluster never needs hierarchy")
	}
}
