package topology

import (
	"testing"
	"time"
)

func TestNewPartitionNeutralOnUnobserved(t *testing.T) {
	p, err := NewPartition([]float64{0, 0, 0, 0}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Uniform() {
		t.Fatalf("all-unobserved rates should plan uniform: %v", p.Weights)
	}
	if p.Skew() != 1 {
		t.Fatalf("uniform skew %v, want 1", p.Skew())
	}
	// Partially observed: the unobserved rank gets the observed mean.
	p, err = NewPartition([]float64{100, 100, 0, 100}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Uniform() {
		t.Fatalf("mean-filled rates should be uniform here: %v", p.Weights)
	}
}

func TestNewPartitionProportional(t *testing.T) {
	p, err := NewPartition([]float64{4e9, 4e9, 4e9, 1e9}, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Uniform() {
		t.Fatal("skewed rates planned uniform")
	}
	if got := p.Skew(); got != 4 {
		t.Fatalf("skew %v, want 4", got)
	}
	sizes, err := p.Sizes(13000)
	if err != nil {
		t.Fatal(err)
	}
	if sizes[3] != 1000 || sizes[0] != 4000 {
		t.Fatalf("sizes %v, want 4000,4000,4000,1000", sizes)
	}
	offs, err := p.Offsets(13000)
	if err != nil {
		t.Fatal(err)
	}
	if offs[0] != 0 || offs[4] != 13000 {
		t.Fatalf("offsets %v", offs)
	}
	if _, err := NewPartition(nil, 0, 0); err == nil {
		t.Fatal("empty rates accepted")
	}
}

func TestOutRatesInto(t *testing.T) {
	o, err := NewLinkObservations(3)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 sends at 1 GB/s to both peers; rank 1 at 250 MB/s; rank 2
	// unobserved.
	if err := o.ObserveTransfer(0, 1, 1<<20, time.Duration(1<<20)); err != nil {
		t.Fatal(err)
	}
	if err := o.ObserveTransfer(0, 2, 1<<20, time.Duration(1<<20)); err != nil {
		t.Fatal(err)
	}
	if err := o.ObserveTransfer(1, 0, 1<<20, time.Duration(4<<20)); err != nil {
		t.Fatal(err)
	}
	rates := o.OutRatesInto(nil)
	if len(rates) != 3 {
		t.Fatalf("len %d", len(rates))
	}
	if rates[0] != 1e9 {
		t.Fatalf("rank 0 rate %v, want 1e9", rates[0])
	}
	if rates[1] != 0.25e9 {
		t.Fatalf("rank 1 rate %v, want 0.25e9", rates[1])
	}
	if rates[2] != 0 {
		t.Fatalf("rank 2 rate %v, want 0 (unobserved)", rates[2])
	}
	// Pooled reuse: passing the slice back must not allocate a new one.
	again := o.OutRatesInto(rates)
	if &again[0] != &rates[0] {
		t.Fatal("OutRatesInto reallocated a sufficient buffer")
	}
}

func TestBandwidthMatrixInto(t *testing.T) {
	o, err := NewLinkObservations(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.ObserveTransfer(0, 1, 1<<20, time.Duration(1<<20)); err != nil {
		t.Fatal(err)
	}
	m := o.BandwidthMatrixInto(nil)
	if m[0][1] != 1e9 || m[1][0] != 0 || m[0][0] != 0 {
		t.Fatalf("matrix %v", m)
	}
	// Reuse: same backing rows, refreshed values (including zeroing).
	if err := o.ObserveTransfer(1, 0, 1<<20, time.Duration(2<<20)); err != nil {
		t.Fatal(err)
	}
	again := o.BandwidthMatrixInto(m)
	if &again[0][0] != &m[0][0] {
		t.Fatal("BandwidthMatrixInto reallocated a sufficient buffer")
	}
	if again[1][0] != 0.5e9 {
		t.Fatalf("refreshed matrix %v", again)
	}
}

func BenchmarkBandwidthMatrixInto(b *testing.B) {
	o, _ := NewLinkObservations(16)
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if i != j {
				_ = o.ObserveTransfer(i, j, 1<<20, time.Duration(1<<20))
			}
		}
	}
	var m [][]float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m = o.BandwidthMatrixInto(m)
	}
}
