package topology

import (
	"fmt"
	"sort"
	"strings"
)

// Multi-level reduction plans.
//
// A Plan generalizes the two-level hierarchy (groups + leader exchange) to
// an arbitrary level tree. Level 0 partitions all ranks into groups; each
// group's first member is its leader; level l ≥ 1 partitions the leaders of
// level l−1. The topmost level is a single group, whose members end a
// reduction holding the global result. 1024 ranks might plan as 32 groups
// of 32 with a single 32-leader top level; a fabric with three distinct
// link classes (NVLink / PCIe / Ethernet, say) plans three levels.

// maxPlanLevels bounds plan depth; real fabrics have a handful of link
// classes, so a deeper plan means degenerate input.
const maxPlanLevels = 8

// linkClassRatio is the bandwidth ratio that separates link classes: links
// within this factor of the fastest observed link belong to the same class.
const linkClassRatio = 4.0

// Plan is a multi-level reduction tree over Ranks ranks.
type Plan struct {
	// Ranks is the total rank count the plan covers.
	Ranks int
	// Levels[0] partitions ranks 0..Ranks-1; Levels[l] partitions the
	// leaders (first members) of Levels[l-1]'s groups. The last level is a
	// single group.
	Levels [][]Group
}

// Leaders returns the leaders (first members) of a level's groups.
func leadersOf(groups []Group) []int {
	out := make([]int, len(groups))
	for i, g := range groups {
		out[i] = g.Members[0]
	}
	return out
}

// Validate checks the plan's structural invariants: every level partitions
// exactly the set it must (level 0: all ranks; level l: the previous
// level's leaders), groups are non-empty with distinct members, and the top
// level is a single group.
func (p *Plan) Validate() error {
	if p.Ranks <= 0 {
		return fmt.Errorf("topology: plan over %d ranks", p.Ranks)
	}
	if len(p.Levels) == 0 {
		return fmt.Errorf("topology: plan has no levels")
	}
	if len(p.Levels) > maxPlanLevels {
		return fmt.Errorf("topology: plan depth %d exceeds %d", len(p.Levels), maxPlanLevels)
	}
	want := make([]int, p.Ranks)
	for i := range want {
		want[i] = i
	}
	for l, level := range p.Levels {
		if len(level) == 0 {
			return fmt.Errorf("topology: plan level %d empty", l)
		}
		seen := make(map[int]bool, len(want))
		for _, r := range want {
			seen[r] = false
		}
		covered := 0
		for gi, g := range level {
			if len(g.Members) == 0 {
				return fmt.Errorf("topology: plan level %d group %d empty", l, gi)
			}
			for _, r := range g.Members {
				was, ok := seen[r]
				if !ok {
					return fmt.Errorf("topology: plan level %d includes rank %d, not a level participant", l, r)
				}
				if was {
					return fmt.Errorf("topology: plan level %d rank %d in two groups", l, r)
				}
				seen[r] = true
				covered++
			}
		}
		if covered != len(want) {
			return fmt.Errorf("topology: plan level %d covers %d of %d participants", l, covered, len(want))
		}
		if l == len(p.Levels)-1 {
			if len(level) != 1 {
				return fmt.Errorf("topology: top level has %d groups, want 1", len(level))
			}
		}
		want = leadersOf(level)
	}
	return nil
}

// Participants returns the ranks that take part in level l: all ranks for
// level 0, the previous level's leaders otherwise. The plan must be valid.
func (p *Plan) Participants(l int) []int {
	if l == 0 {
		out := make([]int, p.Ranks)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return leadersOf(p.Levels[l-1])
}

// LevelSizes returns the largest group size at each level — the shape the
// cost model prices.
func (p *Plan) LevelSizes() []int {
	out := make([]int, len(p.Levels))
	for l, level := range p.Levels {
		for _, g := range level {
			if g.Size() > out[l] {
				out[l] = g.Size()
			}
		}
	}
	return out
}

// String renders the plan shape compactly, e.g. "32x32" for 1024 ranks in
// 32 groups of 32 with a 32-leader top level.
func (p *Plan) String() string {
	sizes := p.LevelSizes()
	parts := make([]string, len(sizes))
	for i, s := range sizes {
		parts[i] = fmt.Sprint(s)
	}
	return strings.Join(parts, "x")
}

// UniformPlan builds the plan that splits n ranks into contiguous groups of
// ≈branches[0] members, the leaders into groups of ≈branches[1], and so on;
// whatever participants remain after the last branching factor form the
// single top group. Group sizes at each level differ by at most one (the
// remainder spreads over the leading groups), so non-power-of-two rank
// counts plan cleanly. A nil/empty branches yields the flat single-group
// plan.
func UniformPlan(n int, branches []int) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: plan over %d ranks", n)
	}
	p := &Plan{Ranks: n}
	parts := make([]int, n)
	for i := range parts {
		parts[i] = i
	}
	for _, b := range branches {
		if len(parts) <= 1 || b >= len(parts) || len(p.Levels) >= maxPlanLevels-1 {
			break
		}
		if b < 2 {
			return nil, fmt.Errorf("topology: branching factor %d", b)
		}
		nGroups := (len(parts) + b - 1) / b
		level := make([]Group, 0, nGroups)
		base, rem := len(parts)/nGroups, len(parts)%nGroups
		at := 0
		for g := 0; g < nGroups; g++ {
			size := base
			if g < rem {
				size++
			}
			level = append(level, Group{Members: append([]int(nil), parts[at:at+size]...)})
			at += size
		}
		p.Levels = append(p.Levels, level)
		parts = leadersOf(level)
	}
	p.Levels = append(p.Levels, []Group{{Members: parts}})
	return p, p.Validate()
}

// FlatPlan is the single-level plan (one group of all ranks).
func FlatPlan(n int) (*Plan, error) {
	return UniformPlan(n, nil)
}

// PlanFromLinks builds a topology-aware plan from a bandwidth matrix
// (bytes/sec, 0 = unobserved; see LinkObservations.BandwidthMatrix). Each
// level groups its participants by link class: ranks connected through
// links within linkClassRatio of the fastest remaining link share a group,
// and the leaders recurse over the slower classes. A fabric with uniform
// (or unobserved) links plans flat; two link classes yield the classic
// two-level hierarchy; a skewed fabric plans deeper.
func PlanFromLinks(bw [][]float64) (*Plan, error) {
	n := len(bw)
	if n == 0 {
		return nil, ErrNoWorkers
	}
	for i, row := range bw {
		if len(row) != n {
			return nil, fmt.Errorf("topology: bandwidth row %d has %d entries, want %d", i, len(row), n)
		}
	}
	p := &Plan{Ranks: n}
	parts := make([]int, n)
	for i := range parts {
		parts[i] = i
	}
	for len(parts) > 1 && len(p.Levels) < maxPlanLevels-1 {
		comps := fastComponents(parts, bw)
		if len(comps) <= 1 {
			break
		}
		p.Levels = append(p.Levels, comps)
		parts = leadersOf(comps)
	}
	p.Levels = append(p.Levels, []Group{{Members: parts}})
	return p, p.Validate()
}

// fastComponents splits the participants into connected components of the
// fastest link class: pairs whose symmetric bandwidth (the slower of the
// two directions) is within linkClassRatio of the fastest observed pair.
// With no observed links, or a single class spanning everything, it returns
// one component.
func fastComponents(parts []int, bw [][]float64) []Group {
	speed := func(a, b int) float64 {
		s := bw[a][b]
		if t := bw[b][a]; t < s {
			s = t
		}
		return s
	}
	var fastest float64
	for i, a := range parts {
		for _, b := range parts[i+1:] {
			if s := speed(a, b); s > fastest {
				fastest = s
			}
		}
	}
	if fastest <= 0 {
		return []Group{{Members: append([]int(nil), parts...)}}
	}
	threshold := fastest / linkClassRatio

	// Union-find over the participant positions.
	parent := make([]int, len(parts))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i, a := range parts {
		for j := i + 1; j < len(parts); j++ {
			if speed(a, parts[j]) >= threshold {
				ra, rb := find(i), find(j)
				if ra != rb {
					parent[rb] = ra
				}
			}
		}
	}
	byRoot := make(map[int][]int)
	for i, r := range parts {
		byRoot[find(i)] = append(byRoot[find(i)], r)
	}
	groups := make([]Group, 0, len(byRoot))
	for _, members := range byRoot {
		sort.Ints(members)
		groups = append(groups, Group{Members: members})
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Members[0] < groups[j].Members[0] })
	return groups
}
