package topology

import (
	"testing"
)

func checkPartition(t *testing.T, p *Plan) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("plan %v invalid: %v", p.Levels, err)
	}
}

func TestUniformPlanShapes(t *testing.T) {
	cases := []struct {
		n        int
		branches []int
		want     string
		levels   int
	}{
		{1, nil, "1", 1},
		{8, nil, "8", 1},
		{8, []int{4}, "4x2", 2},
		{16, []int{4, 2}, "4x2x2", 3},
		{1024, []int{32}, "32x32", 2},
		// Non-power-of-two: remainder spreads, sizes differ by ≤1.
		{10, []int{3}, "3x4", 2},
		{7, []int{2}, "2x4", 2},
		// Branching factor ≥ n collapses to flat.
		{6, []int{8}, "6", 1},
	}
	for _, c := range cases {
		p, err := UniformPlan(c.n, c.branches)
		if err != nil {
			t.Fatalf("UniformPlan(%d, %v): %v", c.n, c.branches, err)
		}
		checkPartition(t, p)
		if got := p.String(); got != c.want {
			t.Errorf("UniformPlan(%d, %v) = %s, want %s", c.n, c.branches, got, c.want)
		}
		if len(p.Levels) != c.levels {
			t.Errorf("UniformPlan(%d, %v) has %d levels, want %d", c.n, c.branches, len(p.Levels), c.levels)
		}
	}
}

func TestUniformPlanBalance(t *testing.T) {
	// 100 ranks in groups of 8 → 13 groups, sizes 7 or 8.
	p, err := UniformPlan(100, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, p)
	if len(p.Levels[0]) != 13 {
		t.Fatalf("level 0 has %d groups, want 13", len(p.Levels[0]))
	}
	for gi, g := range p.Levels[0] {
		if g.Size() < 7 || g.Size() > 8 {
			t.Errorf("group %d has %d members, want 7..8", gi, g.Size())
		}
	}
}

func TestUniformPlanRejectsBadBranch(t *testing.T) {
	if _, err := UniformPlan(8, []int{1}); err == nil {
		t.Error("branching factor 1 should error")
	}
	if _, err := UniformPlan(0, nil); err == nil {
		t.Error("zero ranks should error")
	}
}

func TestPlanValidateRejectsBadPlans(t *testing.T) {
	bad := []*Plan{
		{Ranks: 4, Levels: [][]Group{}},                                                                           // no levels
		{Ranks: 4, Levels: [][]Group{{{Members: []int{0, 1}}}}},                                                   // level 0 misses ranks
		{Ranks: 2, Levels: [][]Group{{{Members: []int{0, 1}}, {Members: []int{1}}}}},                              // duplicate
		{Ranks: 2, Levels: [][]Group{{{Members: []int{0}}, {Members: []int{1}}}}},                                 // top level not single
		{Ranks: 2, Levels: [][]Group{{{Members: []int{0, 2}}}}},                                                   // out of range
		{Ranks: 4, Levels: [][]Group{{{Members: []int{0, 1}}, {Members: []int{2, 3}}}, {{Members: []int{0, 1}}}}}, // level 1 over non-leaders
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d validated: %+v", i, p.Levels)
		}
	}
}

func TestPlanParticipants(t *testing.T) {
	p, err := UniformPlan(16, []int{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	l0 := p.Participants(0)
	if len(l0) != 16 {
		t.Fatalf("level 0 participants = %v", l0)
	}
	l1 := p.Participants(1)
	want1 := []int{0, 4, 8, 12}
	if len(l1) != len(want1) {
		t.Fatalf("level 1 participants = %v, want %v", l1, want1)
	}
	for i := range want1 {
		if l1[i] != want1[i] {
			t.Fatalf("level 1 participants = %v, want %v", l1, want1)
		}
	}
	l2 := p.Participants(2)
	want2 := []int{0, 8}
	for i := range want2 {
		if l2[i] != want2[i] {
			t.Fatalf("level 2 participants = %v, want %v", l2, want2)
		}
	}
}

// uniformBW builds a symmetric bandwidth matrix where rank pairs in the
// same block of `blockSize` see `fast` bytes/sec and cross-block pairs see
// `slow`.
func blockBW(n, blockSize int, fast, slow float64) [][]float64 {
	bw := make([][]float64, n)
	for i := range bw {
		bw[i] = make([]float64, n)
		for j := range bw[i] {
			if i == j {
				continue
			}
			if i/blockSize == j/blockSize {
				bw[i][j] = fast
			} else {
				bw[i][j] = slow
			}
		}
	}
	return bw
}

func TestPlanFromLinksUniformIsFlat(t *testing.T) {
	bw := blockBW(8, 8, 1e9, 1e9)
	p, err := PlanFromLinks(bw)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, p)
	if len(p.Levels) != 1 || len(p.Levels[0]) != 1 {
		t.Fatalf("uniform fabric planned %v, want flat", p)
	}
}

func TestPlanFromLinksUnobservedIsFlat(t *testing.T) {
	p, err := PlanFromLinks(blockBW(6, 6, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Levels) != 1 {
		t.Fatalf("unobserved fabric planned %v, want flat", p)
	}
}

func TestPlanFromLinksTwoClasses(t *testing.T) {
	// 12 ranks, 3 machines of 4: intra 10 GB/s, inter 1 GB/s.
	p, err := PlanFromLinks(blockBW(12, 4, 10e9, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, p)
	if len(p.Levels) != 2 {
		t.Fatalf("two-class fabric planned %d levels (%v), want 2", len(p.Levels), p)
	}
	if len(p.Levels[0]) != 3 {
		t.Fatalf("level 0 = %d groups, want 3", len(p.Levels[0]))
	}
	for gi, g := range p.Levels[0] {
		if g.Size() != 4 {
			t.Errorf("group %d size %d, want 4", gi, g.Size())
		}
		for _, r := range g.Members {
			if r/4 != gi {
				t.Errorf("rank %d landed in group %d", r, gi)
			}
		}
	}
	top := p.Levels[1][0].Members
	if len(top) != 3 || top[0] != 0 || top[1] != 4 || top[2] != 8 {
		t.Errorf("top level members = %v, want [0 4 8]", top)
	}
}

func TestPlanFromLinksThreeClasses(t *testing.T) {
	// 8 ranks: pairs share 100 GB/s, quads 10 GB/s, the rest 1 GB/s —
	// a skewed topology that should plan 3 levels.
	n := 8
	bw := make([][]float64, n)
	for i := range bw {
		bw[i] = make([]float64, n)
		for j := range bw[i] {
			if i == j {
				continue
			}
			switch {
			case i/2 == j/2:
				bw[i][j] = 100e9
			case i/4 == j/4:
				bw[i][j] = 10e9
			default:
				bw[i][j] = 1e9
			}
		}
	}
	p, err := PlanFromLinks(bw)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, p)
	if len(p.Levels) != 3 {
		t.Fatalf("three-class fabric planned %d levels (%v), want 3", len(p.Levels), p)
	}
	if got := p.String(); got != "2x2x2" {
		t.Errorf("plan shape = %s, want 2x2x2", got)
	}
}

func TestPlanFromLinksAsymmetricLink(t *testing.T) {
	// The slower direction governs: one fast-only direction must not merge
	// a pair into the fast class.
	bw := blockBW(4, 2, 10e9, 1e9)
	bw[0][2] = 10e9 // 2→0 stays slow
	p, err := PlanFromLinks(bw)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Levels) != 2 || len(p.Levels[0]) != 2 {
		t.Fatalf("asymmetric fast direction merged groups: %v", p)
	}
}
